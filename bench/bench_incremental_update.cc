// Incremental peer-graph maintenance vs full rebuild: after a batch of
// rating arrivals touching a given fraction of the item universe, compare
//
//   * delta-apply — IncrementalPeerGraph::ApplyDelta: corpus merge, a sweep
//     of only the touched item columns, a moment-store fold, and a
//     PeerIndex::PatchBuilder splice of the affected rows;
//   * full rebuild — PairwiseSimilarityEngine::BuildPeerIndex on the
//     post-delta corpus (the static pipeline's answer to any change).
//
// The run verifies the patched index is byte-identical to the rebuild after
// every batch (exit 2 on any mismatch — the parity contract of
// sim/incremental_peer_graph.h; the corpus uses the paper's integer scale,
// so moments are exact) and writes the timings, patch accounting, and the
// moment store's peak bytes to JSON. Defaults reproduce the acceptance
// corpus (10k users x 2k items at ~1% density, delta 0.1, 64 peers/user)
// with batches from a handful of active users at 1% and 5% touched-item
// fractions, applied sequentially to the evolving graph.
//
//   bench_incremental_update [--users N] [--items N] [--density F]
//                            [--seed N] [--threads N] [--block N]
//                            [--delta F] [--max-peers N] [--tile-users N]
//                            [--delta-users N]
//                            [--check-speedup-min F]
//                            [--check-peak-bytes-max N]
//                            [--out BENCH_incremental.json]
//
// --check-speedup-min gates the speedup at the *first* (1%) fraction;
// --check-peak-bytes-max gates the moment store's peak resident bytes
// (deterministic for a fixed corpus). Exit status: 0 ok, 1 argument/IO
// errors, 2 parity mismatch, 3 a --check-* regression gate failed.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/stopwatch.h"
#include "ratings/rating_delta.h"
#include "ratings/rating_matrix.h"
#include "sim/incremental_peer_graph.h"
#include "sim/pairwise_engine.h"
#include "sim/peer_index.h"

namespace fairrec {
namespace {

struct BenchConfig {
  int32_t num_users = 10000;
  int32_t num_items = 2000;
  double density = 0.01;
  uint64_t seed = 20170417;
  size_t threads = 1;
  int32_t block_users = 512;
  double delta = 0.1;
  int32_t max_peers = 64;
  int32_t tile_users = 2048;
  /// Existing users contributing to each batch (plus one brand-new user).
  int32_t delta_users = 4;
  /// Fail (exit 3) when the delta-apply speedup at the first fraction drops
  /// below this (0 = no gate).
  double check_speedup_min = 0.0;
  /// Fail (exit 3) when the moment store's peak resident bytes exceed this
  /// (0 = no gate). The memory contract of the store: O(co-rated pairs),
  /// never the packed triangle.
  size_t check_peak_bytes_max = 0;
  std::string out_path = "BENCH_incremental.json";
};

/// Touched-item fractions, applied in order to the evolving graph. The
/// first is the gated one.
constexpr double kFractions[] = {0.01, 0.05};

RatingMatrix GenerateCorpus(const BenchConfig& config) {
  Rng rng(config.seed);
  RatingMatrixBuilder builder;
  builder.Reserve(config.num_users, config.num_items);
  for (UserId u = 0; u < config.num_users; ++u) {
    for (ItemId i = 0; i < config.num_items; ++i) {
      if (!rng.NextBool(config.density)) continue;
      const auto status =
          builder.Add(u, i, static_cast<Rating>(rng.UniformInt(1, 5)));
      if (!status.ok()) {
        std::fprintf(stderr, "corpus generation failed: %s\n",
                     status.ToString().c_str());
        std::exit(1);
      }
    }
  }
  return std::move(builder.Build()).ValueOrDie();
}

/// One arrival batch: `delta_users` existing users plus one brand-new user
/// spread upserts over ~`fraction` of the item universe. Roughly half the
/// existing-user upserts are steered onto cells the writer already rated
/// (updates — exercising the superseded-co-rating Remove path), the rest
/// are appends; the brand-new user can only append.
RatingDelta MakeDelta(const RatingMatrix& matrix, double fraction,
                      int32_t delta_users, Rng& rng) {
  const int32_t target_items = std::max<int32_t>(
      1, static_cast<int32_t>(fraction * matrix.num_items() + 0.5));
  const std::vector<int32_t> items =
      rng.SampleWithoutReplacement(matrix.num_items(), target_items);
  std::vector<UserId> writers;
  for (int32_t k = 0; k < delta_users; ++k) {
    writers.push_back(
        static_cast<UserId>(rng.UniformInt(0, matrix.num_users() - 1)));
  }
  writers.push_back(matrix.num_users());  // one brand-new user per batch

  RatingDelta delta;
  for (size_t k = 0; k < items.size(); ++k) {
    const UserId writer = writers[k % writers.size()];
    ItemId item = static_cast<ItemId>(items[k]);
    if (k % 2 == 1 && writer < matrix.num_users()) {
      const auto row = matrix.ItemsRatedBy(writer);
      if (!row.empty()) {
        item = row[static_cast<size_t>(rng.UniformInt(
                       0, static_cast<int64_t>(row.size()) - 1))]
                   .item;
      }
    }
    const auto value = static_cast<Rating>(rng.UniformInt(1, 5));
    const auto status = delta.Add(writer, item, value);
    if (!status.ok()) {
      std::fprintf(stderr, "delta generation failed: %s\n",
                   status.ToString().c_str());
      std::exit(1);
    }
  }
  return delta;
}

size_t CountMismatches(const PeerIndex& patched, const PeerIndex& rebuilt) {
  if (patched.num_users() != rebuilt.num_users()) {
    return static_cast<size_t>(
        std::max(patched.num_users(), rebuilt.num_users()));
  }
  size_t mismatches = 0;
  for (UserId u = 0; u < rebuilt.num_users(); ++u) {
    const auto a = patched.PeersOf(u);
    const auto b = rebuilt.PeersOf(u);
    if (a.size() != b.size() || !std::equal(a.begin(), a.end(), b.begin())) {
      ++mismatches;
    }
  }
  return mismatches;
}

struct FractionResult {
  double fraction = 0.0;
  int64_t touched_items = 0;
  int64_t upserts = 0;
  double apply_seconds = 0.0;
  double rebuild_seconds = 0.0;
  DeltaApplyStats stats;
  size_t mismatching_users = 0;
};

int Run(const BenchConfig& config) {
  std::printf("generating corpus: %d users x %d items at %.2f%% density...\n",
              config.num_users, config.num_items, 100.0 * config.density);
  RatingMatrix matrix = GenerateCorpus(config);
  std::printf("  %lld ratings (density %.3f%%)\n",
              static_cast<long long>(matrix.num_ratings()),
              100.0 * matrix.Density());

  IncrementalPeerGraphOptions options;
  options.engine.num_threads = config.threads;
  options.engine.block_users = config.block_users;
  options.peers.delta = config.delta;
  options.peers.max_peers_per_user = config.max_peers;
  options.store.tile_users = config.tile_users;

  Stopwatch seed_clock;
  auto graph_result = IncrementalPeerGraph::Build(std::move(matrix), options);
  const double seed_seconds = seed_clock.ElapsedSeconds();
  if (!graph_result.ok()) {
    std::fprintf(stderr, "seed build failed: %s\n",
                 graph_result.status().ToString().c_str());
    return 1;
  }
  IncrementalPeerGraph graph = std::move(graph_result).ValueOrDie();
  std::printf(
      "seed build (store + index):     %8.3f s   store %8.2f MiB "
      "(%lld pairs)   index %.2f MiB\n",
      seed_seconds,
      static_cast<double>(graph.store().ResidentBytes()) / (1024.0 * 1024.0),
      static_cast<long long>(graph.store().num_pairs()),
      static_cast<double>(graph.index()->StorageBytes()) / (1024.0 * 1024.0));

  Rng delta_rng(config.seed ^ 0x5eed5eedull);
  std::vector<FractionResult> results;
  for (const double fraction : kFractions) {
    FractionResult r;
    r.fraction = fraction;
    const RatingDelta delta =
        MakeDelta(graph.matrix(), fraction, config.delta_users, delta_rng);
    r.touched_items = static_cast<int64_t>(delta.TouchedItems().size());
    r.upserts = delta.size();

    Stopwatch apply_clock;
    auto stats = graph.ApplyDelta(delta);
    r.apply_seconds = apply_clock.ElapsedSeconds();
    if (!stats.ok()) {
      std::fprintf(stderr, "delta apply failed: %s\n",
                   stats.status().ToString().c_str());
      return 1;
    }
    r.stats = *stats;

    // The static answer to the same arrivals: a full engine sweep over the
    // post-delta corpus.
    const PairwiseSimilarityEngine engine(&graph.matrix(), options.similarity,
                                          options.engine);
    Stopwatch rebuild_clock;
    auto rebuilt = engine.BuildPeerIndex(options.peers);
    r.rebuild_seconds = rebuild_clock.ElapsedSeconds();
    if (!rebuilt.ok()) {
      std::fprintf(stderr, "full rebuild failed: %s\n",
                   rebuilt.status().ToString().c_str());
      return 1;
    }
    r.mismatching_users = CountMismatches(*graph.index(), *rebuilt);

    std::printf(
        "fraction %4.1f%%: apply %7.4f s  rebuild %7.4f s  speedup %6.1fx  "
        "(%lld upserts, %lld pairs changed, %lld rows patched, %lld rows "
        "refinished, %zu mismatches)\n",
        100.0 * fraction, r.apply_seconds, r.rebuild_seconds,
        r.rebuild_seconds / r.apply_seconds,
        static_cast<long long>(r.upserts),
        static_cast<long long>(r.stats.changed_pairs),
        static_cast<long long>(r.stats.rows_patched),
        static_cast<long long>(r.stats.rows_refinished),
        r.mismatching_users);
    results.push_back(r);
  }

  std::FILE* out = std::fopen(config.out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", config.out_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"incremental_update\",\n"
               "  \"corpus\": {\n"
               "    \"num_users\": %d,\n"
               "    \"num_items\": %d,\n"
               "    \"density\": %.6f,\n"
               "    \"seed\": %llu\n"
               "  },\n"
               "  \"options\": {\n"
               "    \"delta\": %.6f,\n"
               "    \"max_peers_per_user\": %d,\n"
               "    \"min_overlap\": %d,\n"
               "    \"intersection_means\": %s,\n"
               "    \"shift_to_unit_interval\": %s,\n"
               "    \"tile_users\": %d,\n"
               "    \"delta_users\": %d\n"
               "  },\n"
               "  \"threads\": %zu,\n"
               "  \"block_users\": %d,\n"
               "  \"seed_build\": {\n"
               "    \"seconds\": %.6f,\n"
               "    \"store_bytes\": %zu,\n"
               "    \"store_pairs\": %lld,\n"
               "    \"index_entries\": %lld\n"
               "  },\n"
               "  \"store_peak_bytes\": %zu,\n",
               config.num_users, config.num_items, config.density,
               static_cast<unsigned long long>(config.seed), config.delta,
               config.max_peers, options.similarity.min_overlap,
               options.similarity.intersection_means ? "true" : "false",
               options.similarity.shift_to_unit_interval ? "true" : "false",
               config.tile_users, config.delta_users, config.threads,
               config.block_users, seed_seconds,
               graph.store().ResidentBytes(),
               static_cast<long long>(graph.store().num_pairs()),
               static_cast<long long>(graph.index()->num_entries()),
               graph.store().peak_bytes());
  std::fprintf(out, "  \"fractions\": [\n");
  for (size_t k = 0; k < results.size(); ++k) {
    const FractionResult& r = results[k];
    std::fprintf(out,
                 "    {\n"
                 "      \"fraction\": %.4f,\n"
                 "      \"touched_items\": %lld,\n"
                 "      \"upserts\": %lld,\n"
                 "      \"apply_seconds\": %.6f,\n"
                 "      \"rebuild_seconds\": %.6f,\n"
                 "      \"speedup\": %.3f,\n"
                 "      \"changed_pairs\": %lld,\n"
                 "      \"refinished_pairs\": %lld,\n"
                 "      \"rows_patched\": %lld,\n"
                 "      \"rows_refinished\": %lld,\n"
                 "      \"mismatching_users\": %zu\n"
                 "    }%s\n",
                 r.fraction, static_cast<long long>(r.touched_items),
                 static_cast<long long>(r.upserts), r.apply_seconds,
                 r.rebuild_seconds, r.rebuild_seconds / r.apply_seconds,
                 static_cast<long long>(r.stats.changed_pairs),
                 static_cast<long long>(r.stats.refinished_pairs),
                 static_cast<long long>(r.stats.rows_patched),
                 static_cast<long long>(r.stats.rows_refinished),
                 r.mismatching_users,
                 k + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", config.out_path.c_str());

  size_t total_mismatches = 0;
  for (const FractionResult& r : results) {
    total_mismatches += r.mismatching_users;
  }
  if (total_mismatches > 0) {
    std::fprintf(stderr, "FAIL: patched index disagrees with rebuild for %zu "
                         "user rows\n",
                 total_mismatches);
    return 2;
  }
  if (config.check_peak_bytes_max > 0 &&
      graph.store().peak_bytes() > config.check_peak_bytes_max) {
    std::fprintf(stderr,
                 "FAIL: store peak %zu bytes above the gate %zu bytes\n",
                 graph.store().peak_bytes(), config.check_peak_bytes_max);
    return 3;
  }
  const double gated_speedup =
      results[0].rebuild_seconds / results[0].apply_seconds;
  if (config.check_speedup_min > 0.0 &&
      gated_speedup < config.check_speedup_min) {
    std::fprintf(stderr,
                 "FAIL: speedup %.2fx at the %.1f%% fraction below the gate "
                 "%.2fx\n",
                 gated_speedup, 100.0 * results[0].fraction,
                 config.check_speedup_min);
    return 3;
  }
  return 0;
}

}  // namespace
}  // namespace fairrec

int main(int argc, char** argv) {
  fairrec::BenchConfig config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(1);
      }
      return argv[++i];
    };
    if (arg == "--users") {
      config.num_users = std::atoi(next());
    } else if (arg == "--items") {
      config.num_items = std::atoi(next());
    } else if (arg == "--density") {
      config.density = std::atof(next());
    } else if (arg == "--seed") {
      config.seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--threads") {
      config.threads = static_cast<size_t>(std::atoi(next()));
    } else if (arg == "--block") {
      config.block_users = std::atoi(next());
    } else if (arg == "--delta") {
      config.delta = std::atof(next());
    } else if (arg == "--max-peers") {
      config.max_peers = std::atoi(next());
    } else if (arg == "--tile-users") {
      config.tile_users = std::atoi(next());
    } else if (arg == "--delta-users") {
      config.delta_users = std::atoi(next());
    } else if (arg == "--check-speedup-min") {
      config.check_speedup_min = std::atof(next());
    } else if (arg == "--check-peak-bytes-max") {
      config.check_peak_bytes_max = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--out") {
      config.out_path = next();
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 1;
    }
  }
  if (config.num_users < 2 || config.num_items < 1 || config.density <= 0.0 ||
      config.density > 1.0 || config.max_peers < 0 || config.delta <= 0.0 ||
      config.tile_users < 1 || config.delta_users < 1) {
    std::fprintf(stderr, "invalid configuration\n");
    return 1;
  }
  return fairrec::Run(config);
}
