// All-pairs similarity precompute: naive O(U^2 * merge) vs the
// sufficient-statistics engine's O(co-ratings) inverted-index sweep.
//
// Generates a synthetic sparse corpus (defaults: 10k users, 2k items, ~1%
// density — the regime of the paper's MapReduce scaling argument), runs both
// paths on the identical matrix, checks they agree, and writes the timings to
// a JSON file so the perf trajectory is tracked across PRs.
//
//   bench_similarity_precompute [--users N] [--items N] [--density F]
//                               [--seed N] [--threads N] [--block N]
//                               [--check-speedup-min F]
//                               [--out BENCH_similarity.json]
//
// Exit status: 0 on success, 1 on argument/IO errors, 2 if the two paths
// disagree beyond 1e-9, 3 if the --check-speedup-min regression gate fails.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <cmath>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/stopwatch.h"
#include "ratings/rating_matrix.h"
#include "sim/pairwise_engine.h"
#include "sim/rating_similarity.h"

namespace fairrec {
namespace {

struct BenchConfig {
  int32_t num_users = 10000;
  int32_t num_items = 2000;
  double density = 0.01;
  uint64_t seed = 20170417;
  size_t threads = 1;
  int32_t block_users = 512;
  /// Fail (exit 3) when naive/engine speedup drops below this (0 = no gate).
  /// CI uses a conservative floor so the bench is a regression contract, not
  /// just an uploaded artifact.
  double check_speedup_min = 0.0;
  std::string out_path = "BENCH_similarity.json";
};

RatingMatrix GenerateCorpus(const BenchConfig& config) {
  Rng rng(config.seed);
  RatingMatrixBuilder builder;
  builder.Reserve(config.num_users, config.num_items);
  for (UserId u = 0; u < config.num_users; ++u) {
    for (ItemId i = 0; i < config.num_items; ++i) {
      if (!rng.NextBool(config.density)) continue;
      const auto status =
          builder.Add(u, i, static_cast<Rating>(rng.UniformInt(1, 5)));
      if (!status.ok()) {
        std::fprintf(stderr, "corpus generation failed: %s\n",
                     status.ToString().c_str());
        std::exit(1);
      }
    }
  }
  return std::move(builder.Build()).ValueOrDie();
}

int Run(const BenchConfig& config) {
  std::printf("generating corpus: %d users x %d items at %.2f%% density...\n",
              config.num_users, config.num_items, 100.0 * config.density);
  const RatingMatrix matrix = GenerateCorpus(config);
  const size_t num_pairs =
      PairwiseSimilarityEngine::PackedTriangleSize(matrix.num_users());
  std::printf("  %lld ratings (density %.3f%%), %zu user pairs\n",
              static_cast<long long>(matrix.num_ratings()),
              100.0 * matrix.Density(), num_pairs);

  RatingSimilarityOptions sim_options;  // paper defaults: global means, raw r
  const RatingSimilarity naive(&matrix, sim_options);

  // --- Naive all-pairs path: sorted-merge per pair (the pre-engine
  // SimilarityMatrix::Precompute inner loop, single-threaded). ---
  std::vector<double> naive_out(num_pairs, 0.0);
  RatingSimilarity::PairScratch scratch;
  Stopwatch naive_clock;
  {
    size_t index = 0;
    for (UserId a = 0; a < matrix.num_users(); ++a) {
      for (UserId b = a + 1; b < matrix.num_users(); ++b, ++index) {
        naive_out[index] = naive.Compute(a, b, scratch);
      }
    }
  }
  const double naive_seconds = naive_clock.ElapsedSeconds();
  std::printf("naive all-pairs merge:      %8.3f s  (%.2fM pairs/s)\n",
              naive_seconds, static_cast<double>(num_pairs) / naive_seconds / 1e6);

  // --- Sufficient-statistics engine. ---
  PairwiseEngineOptions engine_options;
  engine_options.num_threads = config.threads;
  engine_options.block_users = config.block_users;
  const PairwiseSimilarityEngine engine(&matrix, sim_options, engine_options);
  std::vector<double> engine_out(num_pairs, 0.0);
  PairwiseEngineStats engine_stats;
  Stopwatch engine_clock;
  const Status status =
      engine.ComputeAll(std::span<double>(engine_out), &engine_stats);
  const double engine_seconds = engine_clock.ElapsedSeconds();
  if (!status.ok()) {
    std::fprintf(stderr, "engine failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("sufficient-stats engine:    %8.3f s  (%.2fM pairs/s)\n",
              engine_seconds,
              static_cast<double>(num_pairs) / engine_seconds / 1e6);
  // The phase split isolates the batched-finish-kernel win from the
  // accumulation sweep (seconds are summed across workers; equal to the
  // wall split at --threads 1).
  std::printf("  phase split: accumulate  %8.3f s   finish %8.3f s  "
              "(%.2fM finishes/s)\n",
              engine_stats.accumulate_seconds, engine_stats.finish_seconds,
              static_cast<double>(engine_stats.pairs_finished) /
                  engine_stats.finish_seconds / 1e6);

  // --- Agreement check. ---
  double max_abs_diff = 0.0;
  size_t nonzero = 0;
  for (size_t k = 0; k < num_pairs; ++k) {
    max_abs_diff = std::max(max_abs_diff, std::fabs(naive_out[k] - engine_out[k]));
    if (engine_out[k] != 0.0) ++nonzero;
  }
  const double speedup = naive_seconds / engine_seconds;
  std::printf("speedup: %.2fx   max |diff|: %.3e   nonzero pairs: %zu\n",
              speedup, max_abs_diff, nonzero);

  std::FILE* out = std::fopen(config.out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", config.out_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"similarity_precompute\",\n"
               "  \"corpus\": {\n"
               "    \"num_users\": %d,\n"
               "    \"num_items\": %d,\n"
               "    \"num_ratings\": %lld,\n"
               "    \"density\": %.6f,\n"
               "    \"seed\": %llu\n"
               "  },\n"
               "  \"options\": {\n"
               "    \"min_overlap\": %d,\n"
               "    \"intersection_means\": %s,\n"
               "    \"shift_to_unit_interval\": %s\n"
               "  },\n"
               "  \"threads\": %zu,\n"
               "  \"block_users\": %d,\n"
               "  \"num_pairs\": %zu,\n"
               "  \"nonzero_pairs\": %zu,\n"
               "  \"naive_seconds\": %.6f,\n"
               "  \"engine_seconds\": %.6f,\n"
               "  \"accumulate_seconds\": %.6f,\n"
               "  \"finish_seconds\": %.6f,\n"
               "  \"speedup\": %.3f,\n"
               "  \"max_abs_diff\": %.3e\n"
               "}\n",
               matrix.num_users(), matrix.num_items(),
               static_cast<long long>(matrix.num_ratings()), matrix.Density(),
               static_cast<unsigned long long>(config.seed),
               naive.options().min_overlap,
               naive.options().intersection_means ? "true" : "false",
               naive.options().shift_to_unit_interval ? "true" : "false",
               config.threads, config.block_users, num_pairs, nonzero,
               naive_seconds, engine_seconds, engine_stats.accumulate_seconds,
               engine_stats.finish_seconds, speedup, max_abs_diff);
  std::fclose(out);
  std::printf("wrote %s\n", config.out_path.c_str());

  if (max_abs_diff > 1e-9) {
    std::fprintf(stderr, "FAIL: paths disagree (max |diff| %.3e)\n", max_abs_diff);
    return 2;
  }
  if (config.check_speedup_min > 0.0 && speedup < config.check_speedup_min) {
    std::fprintf(stderr, "FAIL: speedup %.2fx below the gate %.2fx\n", speedup,
                 config.check_speedup_min);
    return 3;
  }
  return 0;
}

}  // namespace
}  // namespace fairrec

int main(int argc, char** argv) {
  fairrec::BenchConfig config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(1);
      }
      return argv[++i];
    };
    if (arg == "--users") {
      config.num_users = std::atoi(next());
    } else if (arg == "--items") {
      config.num_items = std::atoi(next());
    } else if (arg == "--density") {
      config.density = std::atof(next());
    } else if (arg == "--seed") {
      config.seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--threads") {
      config.threads = static_cast<size_t>(std::atoi(next()));
    } else if (arg == "--block") {
      config.block_users = std::atoi(next());
    } else if (arg == "--check-speedup-min") {
      config.check_speedup_min = std::atof(next());
    } else if (arg == "--out") {
      config.out_path = next();
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 1;
    }
  }
  if (config.num_users < 2 || config.num_items < 1 || config.density <= 0.0 ||
      config.density > 1.0) {
    std::fprintf(stderr, "invalid corpus shape\n");
    return 1;
  }
  return fairrec::Run(config);
}
