// Proposition 1 series: fairness(G, D) as a function of z for several group
// sizes, for both selectors.
//
// The paper states Prop. 1 (z >= |G| implies fairness 1 for Algorithm 1) and
// observes identical fairness for the brute force in Table II. This bench
// regenerates the underlying series: fairness ramps up with z and clamps at
// 1.0 exactly at z = |G| for Algorithm 1; the exact optimum reaches 1.0 at
// or before the same point on these workloads.

#include <cstdio>
#include <vector>

#include "cf/recommender.h"
#include "core/brute_force.h"
#include "core/fairness_heuristic.h"
#include "core/group_recommender.h"
#include "data/scenario.h"
#include "common/string_util.h"
#include "eval/table.h"
#include "sim/pairwise_engine.h"
#include "sim/peer_index.h"
#include "sim/rating_similarity.h"

using namespace fairrec;

int main() {
  ScenarioConfig config;
  config.num_patients = 300;
  config.num_documents = 200;
  config.num_clusters = 6;
  config.rating_density = 0.08;
  config.seed = 99;
  const Scenario scenario = std::move(BuildScenario(config)).ValueOrDie();

  // Thresholded peers only -> serve them from the engine-built sparse peer
  // graph (no per-member O(U) similarity scans).
  RatingSimilarityOptions sim_options;
  sim_options.shift_to_unit_interval = true;
  const PairwiseSimilarityEngine engine(&scenario.ratings, sim_options);
  PeerIndexOptions peer_options;
  peer_options.delta = 0.55;
  const PeerIndex peers =
      std::move(engine.BuildPeerIndex(peer_options)).ValueOrDie();
  RecommenderOptions rec_options;
  rec_options.peers.delta = 0.55;
  rec_options.top_k = 10;
  const Recommender recommender(&scenario.ratings, &peers, rec_options);
  const GroupRecommender group_rec(&recommender, {});

  const FairnessHeuristic heuristic;
  const BruteForceSelector brute_force;
  const std::vector<int32_t> group_sizes{2, 4, 6, 8};
  const std::vector<int32_t> z_values{1, 2, 3, 4, 6, 8, 12, 16, 20, 24};
  const int32_t m = 24;  // candidate pool per group

  std::printf("fairness(G, D) vs z (m=%d candidates; heterogeneous groups)\n\n",
              m);
  AsciiTable table({"|G|", "z", "heuristic fairness", "heuristic value",
                    "exact fairness", "exact value", "z >= |G|"});
  bool prop1_holds = true;
  for (const int32_t g : group_sizes) {
    const Group group = scenario.MakeRandomGroup(g, 1000 + g);
    const GroupContext full =
        std::move(group_rec.BuildContext(group)).ValueOrDie();
    const GroupContext pool = full.RestrictToTopM(m);
    for (const int32_t z : z_values) {
      if (z > m) continue;
      const Selection h = std::move(heuristic.Select(pool, z)).ValueOrDie();
      // The brute force stays tractable: C(24, 12) ~ 2.7M worst case.
      const Selection e = std::move(brute_force.Select(pool, z)).ValueOrDie();
      table.AddRow({std::to_string(g), std::to_string(z),
                    FormatDouble(h.score.fairness, 3),
                    FormatDouble(h.score.value, 2),
                    FormatDouble(e.score.fairness, 3),
                    FormatDouble(e.score.value, 2),
                    z >= g ? "yes" : "no"});
      if (z >= g && h.score.fairness != 1.0) prop1_holds = false;
    }
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("\nshape check — Prop. 1 (heuristic fairness == 1 whenever "
              "z >= |G|): %s\n",
              prop1_holds ? "YES" : "NO");
  return prop1_holds ? 0 : 1;
}
