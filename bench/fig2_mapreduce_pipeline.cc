// Fig. 2 behavioural reproduction: the three-job MapReduce pipeline.
//
// The paper's Fig. 2 is pseudocode, not a measurement; this bench validates
// the dataflow *behaviourally* (pipeline output must equal the serial
// reference exactly) and reports how the three jobs scale with the rating
// log size and the worker count.

#include <cstdio>
#include <vector>

#include "cf/recommender.h"
#include "common/stopwatch.h"
#include "core/group_recommender.h"
#include "data/scenario.h"
#include "common/string_util.h"
#include "eval/table.h"
#include "mapreduce/pipeline.h"
#include "sim/rating_similarity.h"

using namespace fairrec;

namespace {

Selection SerialSelection(const Scenario& scenario, const Group& group,
                          const PipelineOptions& options, int32_t z) {
  RatingSimilarityOptions rs_options = options.similarity;
  const RatingSimilarity similarity(&scenario.ratings, rs_options);
  RecommenderOptions rec_options;
  rec_options.peers.delta = options.delta;
  rec_options.top_k = options.top_k;
  const Recommender recommender =
      Recommender::ForSimilarityScan(&scenario.ratings, &similarity, rec_options);
  GroupContextOptions ctx_options;
  ctx_options.top_k = options.top_k;
  ctx_options.aggregation = options.aggregation;
  const GroupRecommender group_rec(&recommender, ctx_options);
  const GroupContext ctx = std::move(group_rec.BuildContext(group)).ValueOrDie();
  const FairnessHeuristic heuristic;
  return std::move(heuristic.Select(ctx, z)).ValueOrDie();
}

}  // namespace

int main() {
  AsciiTable table({"users", "ratings", "workers", "job1 interm.", "pairs>=delta",
                    "candidates", "pipeline ms", "== serial"});
  bool all_equal = true;

  for (const int32_t users : {200, 400, 800}) {
    ScenarioConfig config;
    config.num_patients = users;
    config.num_documents = 250;
    config.num_clusters = 6;
    config.rating_density = 0.08;
    config.seed = 4242;
    const Scenario scenario = std::move(BuildScenario(config)).ValueOrDie();
    const Group group = scenario.MakeCohesiveGroup(4, 1);

    PipelineOptions options;
    options.similarity.shift_to_unit_interval = true;
    options.delta = 0.55;
    options.top_k = 10;

    const Selection serial = SerialSelection(scenario, group, options, 8);

    for (const size_t workers : {1u, 2u, 4u}) {
      options.mapreduce.num_workers = workers;
      options.mapreduce.num_map_shards = workers * 2;
      options.mapreduce.num_reduce_partitions = workers * 2;
      const GroupRecommendationPipeline pipeline(options);

      Stopwatch watch;
      const PipelineResult result =
          std::move(pipeline.Run(scenario.ratings, group, 8)).ValueOrDie();
      const double ms = watch.ElapsedMillis();
      const bool equal = result.selection.items == serial.items;
      all_equal = all_equal && equal;

      table.AddRow(
          {std::to_string(users),
           std::to_string(scenario.ratings.num_ratings()),
           std::to_string(workers),
           std::to_string(result.job1_stats.intermediate_records),
           std::to_string(result.num_similarity_pairs),
           std::to_string(result.num_candidate_items), FormatDouble(ms, 1),
           equal ? "yes" : "NO"});
    }
  }
  std::printf("Fig. 2 pipeline: scaling + serial equivalence\n\n%s",
              table.ToString().c_str());
  std::printf("\nshape check — MapReduce output identical to the serial "
              "reference on every configuration: %s\n",
              all_equal ? "YES" : "NO");
  return all_equal ? 0 : 1;
}
