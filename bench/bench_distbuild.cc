// Distributed peer-graph build: prove that sharding the pairwise sweep over
// N coordinated workers buys wall-clock without buying drift — the merged
// index is byte-identical to the single-process engine at every partition
// count — and that the failure machinery earns its keep: with a seeded
// fraction of worker attempts killed, the build still converges to the same
// bytes, and the recovery overhead (retries + rebuilt partials) is measured
// against the clean run.
//
//   bench_distbuild [--users N] [--items N] [--degree N] [--seed N]
//                   [--dir DIR] [--failure-rate X] [--max-attempts N]
//                   [--check-parity] [--check-speedup-min X]
//                   [--out BENCH_distbuild.json]
//
// Partition counts {1, 2, 4, 8} are fixed: 1 is the single-worker baseline
// the speedups are measured against. --check-parity fails (exit 2) unless
// every run — including the failure-injected one — fingerprints identical to
// the engine build; --check-speedup-min X fails (exit 3) when the best
// multi-worker speedup over the 1-worker baseline falls below X (on a
// single-core runner the honest expectation is ~1.0: the sweep is CPU-bound,
// so the gate guards against coordination *overhead*, not for parallelism the
// hardware cannot give). Exit status: 0 ok, 1 argument/IO errors, 2 parity
// mismatch, 3 a gate failed.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/blob_io.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "dist/coordinator.h"
#include "dist/partial_artifact.h"
#include "ratings/rating_matrix.h"
#include "sim/pairwise_engine.h"
#include "sim/peer_index.h"

namespace fairrec {
namespace {

struct BenchConfig {
  int32_t users = 30000;
  int32_t items = 10000;
  int32_t degree = 8;
  uint64_t seed = 20170417;
  std::string dir = "bench_distbuild_artifacts";
  /// Probability that a worker attempt (attempt < 3, so the build always
  /// terminates) is killed right before reporting, seeded and deterministic.
  double failure_rate = 0.10;
  int32_t max_attempts = 6;
  bool check_parity = false;
  double check_speedup_min = 0.0;
  std::string out_path = "BENCH_distbuild.json";
};

constexpr int32_t kPartitionCounts[] = {1, 2, 4, 8};

RatingMatrix GenerateCorpus(const BenchConfig& config) {
  Rng rng(config.seed);
  RatingMatrixBuilder builder;
  builder.Reserve(config.users, config.items);
  std::vector<ItemId> picked;
  picked.reserve(static_cast<size_t>(config.degree));
  for (UserId u = 0; u < config.users; ++u) {
    picked.clear();
    while (picked.size() < static_cast<size_t>(config.degree)) {
      const auto item =
          static_cast<ItemId>(rng.UniformInt(0, config.items - 1));
      if (std::find(picked.begin(), picked.end(), item) != picked.end()) {
        continue;
      }
      picked.push_back(item);
      const auto status =
          builder.Add(u, item, static_cast<Rating>(rng.UniformInt(1, 5)));
      if (!status.ok()) {
        std::fprintf(stderr, "corpus generation failed: %s\n",
                     status.ToString().c_str());
        std::exit(1);
      }
    }
  }
  return std::move(builder.Build()).ValueOrDie();
}

uint64_t FingerprintIndex(const PeerIndex& index) {
  uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      h ^= (v >> (8 * b)) & 0xffu;
      h *= 1099511628211ull;
    }
  };
  mix(static_cast<uint64_t>(index.num_users()));
  for (UserId u = 0; u < index.num_users(); ++u) {
    for (const Peer& p : index.PeersOf(u)) {
      mix(static_cast<uint64_t>(u));
      mix(static_cast<uint64_t>(p.user));
      uint64_t bits = 0;
      static_assert(sizeof(bits) == sizeof(p.similarity));
      std::memcpy(&bits, &p.similarity, sizeof(bits));
      mix(bits);
    }
  }
  return h;
}

DistWorkerOptions WorkerOptions() {
  DistWorkerOptions options;
  options.peers.delta = 0.1;
  options.peers.max_peers_per_user = 64;
  return options;
}

struct RunResult {
  int32_t partitions = 0;
  double wall_seconds = 0.0;
  bool parity_ok = false;
  DistBuildStats stats;
};

void ClearArtifacts(const std::string& dir) {
  const auto files = ListPartialArtifactFiles(dir);
  if (!files.ok()) return;
  for (const std::string& path : *files) (void)RemovePath(path);
}

/// One coordinator run against `reference`. `inject_failures` kills attempts
/// deterministically (seeded splitmix over (partition, attempt)) right
/// before they report, leaving their artifact behind when `after_write` —
/// both halves of the crash window the retry loop must absorb.
int RunOnce(const RatingMatrix& matrix, const PeerIndex& reference,
            const BenchConfig& config, int32_t partitions,
            bool inject_failures, RunResult& r) {
  const std::string dir =
      config.dir + "/p" + std::to_string(partitions) +
      (inject_failures ? "_faulty" : "");
  if (!EnsureDirectory(dir).ok()) {
    std::fprintf(stderr, "cannot create artifact dir %s\n", dir.c_str());
    return 1;
  }
  ClearArtifacts(dir);

  DistBuildOptions options;
  options.num_partitions = partitions;
  options.artifact_dir = dir;
  options.worker = WorkerOptions();
  options.retry.max_attempts = config.max_attempts;
  // Recovery overhead should measure re-computation, not sleeping: the
  // backoff schedule is compressed to milliseconds.
  options.retry.initial_backoff_millis = 1;
  options.retry.max_backoff_millis = 8;
  DistBuildCoordinator coordinator(&matrix, options);
  if (inject_failures) {
    const uint64_t salt = config.seed ^ 0x9e3779b97f4a7c15ull;
    const double rate = config.failure_rate;
    coordinator.set_worker_fn(
        [salt, rate](const RatingMatrix& m,
                     const PartitionDescriptor& partition, int32_t attempt,
                     const DistWorkerOptions& worker_options,
                     const std::string& path) -> Status {
          auto artifact =
              BuildPartialPeerArtifact(m, partition, attempt, worker_options);
          if (!artifact.ok()) return artifact.status();
          // splitmix64 over (partition, attempt): the kill schedule is a
          // pure function of the seed, so runs are reproducible.
          uint64_t x = salt ^ (static_cast<uint64_t>(partition.index) << 32) ^
                       static_cast<uint64_t>(attempt);
          x += 0x9e3779b97f4a7c15ull;
          x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
          x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
          x ^= x >> 31;
          const double unit =
              static_cast<double>(x >> 11) / 9007199254740992.0;
          if (attempt < 3 && unit < rate) {
            const bool after_write = (x & 1) != 0;
            if (after_write) {
              FAIRREC_RETURN_NOT_OK(artifact->WriteFile(path));
            }
            return Status::IOError("injected worker kill (" +
                                   std::string(after_write ? "after" : "before") +
                                   " commit)");
          }
          FAIRREC_RETURN_NOT_OK(artifact->WriteFile(path));
          return Status::OK();
        });
  }

  Stopwatch clock;
  auto result = coordinator.Run();
  r.wall_seconds = clock.ElapsedSeconds();
  if (!result.ok()) {
    std::fprintf(stderr, "dist build (%d partitions%s) failed: %s\n",
                 partitions, inject_failures ? ", faulty" : "",
                 result.status().ToString().c_str());
    return 1;
  }
  r.partitions = partitions;
  r.stats = result->stats;
  r.parity_ok = result->index == reference;
  std::printf(
      "%2d workers%s: %7.2f s  parity %s  (%d launched, %d failed, %d "
      "speculative)\n",
      partitions, inject_failures ? " +faults" : "        ", r.wall_seconds,
      r.parity_ok ? "ok" : "MISMATCH", r.stats.attempts_launched,
      r.stats.attempts_failed, r.stats.speculative_attempts);
  ClearArtifacts(dir);
  return 0;
}

void WriteRunJson(std::FILE* out, const RunResult& r, double baseline_seconds,
                  bool last) {
  std::fprintf(out,
               "    {\n"
               "      \"partitions\": %d,\n"
               "      \"wall_seconds\": %.6f,\n"
               "      \"speedup_vs_single\": %.4f,\n"
               "      \"parity_ok\": %s,\n"
               "      \"attempts_launched\": %d,\n"
               "      \"attempts_failed\": %d,\n"
               "      \"speculative_attempts\": %d\n"
               "    }%s\n",
               r.partitions, r.wall_seconds,
               baseline_seconds / r.wall_seconds, r.parity_ok ? "true" : "false",
               r.stats.attempts_launched, r.stats.attempts_failed,
               r.stats.speculative_attempts, last ? "" : ",");
}

int Run(const BenchConfig& config) {
  if (!EnsureDirectory(config.dir).ok()) {
    std::fprintf(stderr, "cannot create artifact dir %s\n",
                 config.dir.c_str());
    return 1;
  }
  std::printf("corpus: %d users x %d items, degree %d...\n", config.users,
              config.items, config.degree);
  Stopwatch corpus_clock;
  const RatingMatrix matrix = GenerateCorpus(config);
  const double corpus_seconds = corpus_clock.ElapsedSeconds();

  const DistWorkerOptions worker = WorkerOptions();
  const PairwiseSimilarityEngine engine(&matrix, worker.similarity, {});
  Stopwatch engine_clock;
  auto reference = engine.BuildPeerIndex(worker.peers);
  const double engine_seconds = engine_clock.ElapsedSeconds();
  if (!reference.ok()) {
    std::fprintf(stderr, "engine build failed: %s\n",
                 reference.status().ToString().c_str());
    return 1;
  }
  std::printf("single-process engine: %lld entries in %.2f s\n",
              static_cast<long long>(reference->num_entries()),
              engine_seconds);

  std::vector<RunResult> runs;
  for (const int32_t partitions : kPartitionCounts) {
    RunResult r;
    if (const int rc =
            RunOnce(matrix, *reference, config, partitions, false, r);
        rc != 0) {
      return rc;
    }
    runs.push_back(r);
  }
  const double baseline_seconds = runs.front().wall_seconds;
  double best_speedup = 0.0;
  for (size_t i = 1; i < runs.size(); ++i) {
    best_speedup =
        std::max(best_speedup, baseline_seconds / runs[i].wall_seconds);
  }

  // Recovery overhead: the widest layout, with the seeded kill schedule.
  RunResult faulty;
  if (const int rc = RunOnce(matrix, *reference, config,
                             kPartitionCounts[3], true, faulty);
      rc != 0) {
    return rc;
  }
  const double clean_wall = runs.back().wall_seconds;
  const double recovery_overhead =
      faulty.wall_seconds / clean_wall - 1.0;
  std::printf("recovery overhead at %.0f%% failure rate: %.1f%% "
              "(%d attempts failed)\n",
              config.failure_rate * 100.0, recovery_overhead * 100.0,
              faulty.stats.attempts_failed);

  bool all_parity = faulty.parity_ok;
  for (const RunResult& r : runs) all_parity = all_parity && r.parity_ok;

  std::FILE* out = std::fopen(config.out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", config.out_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"distbuild\",\n"
               "  \"seed\": %llu,\n"
               "  \"num_users\": %d,\n"
               "  \"num_items\": %d,\n"
               "  \"degree\": %d,\n"
               "  \"corpus_seconds\": %.6f,\n"
               "  \"engine_seconds\": %.6f,\n"
               "  \"engine_entries\": %lld,\n"
               "  \"engine_fingerprint\": \"0x%016llx\",\n"
               "  \"runs\": [\n",
               static_cast<unsigned long long>(config.seed), config.users,
               config.items, config.degree, corpus_seconds, engine_seconds,
               static_cast<long long>(reference->num_entries()),
               static_cast<unsigned long long>(FingerprintIndex(*reference)));
  for (size_t i = 0; i < runs.size(); ++i) {
    WriteRunJson(out, runs[i], baseline_seconds, i + 1 == runs.size());
  }
  std::fprintf(out,
               "  ],\n"
               "  \"best_speedup_vs_single\": %.4f,\n"
               "  \"recovery\": {\n"
               "    \"failure_rate\": %.4f,\n"
               "    \"partitions\": %d,\n"
               "    \"wall_seconds\": %.6f,\n"
               "    \"clean_wall_seconds\": %.6f,\n"
               "    \"overhead_fraction\": %.4f,\n"
               "    \"attempts_launched\": %d,\n"
               "    \"attempts_failed\": %d,\n"
               "    \"parity_ok\": %s\n"
               "  },\n"
               "  \"all_parity_ok\": %s\n"
               "}\n",
               best_speedup, config.failure_rate, faulty.partitions,
               faulty.wall_seconds, clean_wall, recovery_overhead,
               faulty.stats.attempts_launched, faulty.stats.attempts_failed,
               faulty.parity_ok ? "true" : "false",
               all_parity ? "true" : "false");
  std::fclose(out);
  std::printf("wrote %s\n", config.out_path.c_str());

  if (config.check_parity && !all_parity) {
    std::fprintf(stderr,
                 "FAIL: a distributed build disagrees with the "
                 "single-process engine\n");
    return 2;
  }
  if (config.check_speedup_min > 0.0 &&
      best_speedup < config.check_speedup_min) {
    std::fprintf(stderr,
                 "FAIL: best multi-worker speedup %.3fx below the gate "
                 "%.3fx\n",
                 best_speedup, config.check_speedup_min);
    return 3;
  }
  return 0;
}

}  // namespace
}  // namespace fairrec

int main(int argc, char** argv) {
  fairrec::BenchConfig config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(1);
      }
      return argv[++i];
    };
    if (arg == "--users") {
      config.users = std::atoi(next());
    } else if (arg == "--items") {
      config.items = std::atoi(next());
    } else if (arg == "--degree") {
      config.degree = std::atoi(next());
    } else if (arg == "--seed") {
      config.seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--dir") {
      config.dir = next();
    } else if (arg == "--failure-rate") {
      config.failure_rate = std::atof(next());
    } else if (arg == "--max-attempts") {
      config.max_attempts = std::atoi(next());
    } else if (arg == "--check-parity") {
      config.check_parity = true;
    } else if (arg == "--check-speedup-min") {
      config.check_speedup_min = std::atof(next());
    } else if (arg == "--out") {
      config.out_path = next();
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 1;
    }
  }
  if (config.users < 2 || config.items < 1 || config.degree < 1 ||
      config.degree > config.items || config.failure_rate < 0.0 ||
      config.failure_rate >= 1.0 || config.max_attempts < 4) {
    std::fprintf(stderr, "invalid configuration\n");
    return 1;
  }
  return fairrec::Run(config);
}
