// Continuous-stream soak harness for the durable incremental peer-graph
// pipeline: Poisson-sized batches of rating arrivals flow through
// DurablePeerGraph::ApplyDelta (journal-append-then-apply) with periodic
// checkpoints, and the process "crashes" on a schedule — the in-memory state
// is dropped and Open() recovers from checkpoint + journal tail, exactly the
// code path a kill would exercise. (Failpoint-driven torn writes live in the
// kill-point test suite; this bench runs in Release builds, where failpoints
// are compiled away, so its faults are whole-process crashes.)
//
// An uninterrupted twin (plain IncrementalPeerGraph, same stream) runs
// alongside; after every recovery the recovered state must match the twin
// bit for bit (integer rating scale, so patch/rebuild parity is exact).
// The run reports sustained updates/sec through the durability layer,
// checkpoint cost, recovery time, and replay accounting to JSON.
//
//   bench_stream [--users N] [--items N] [--density F] [--seed N]
//                [--threads N] [--block N] [--delta F] [--max-peers N]
//                [--tile-users N] [--batches N] [--mean-batch F]
//                [--checkpoint-every N] [--crash-every N] [--dir PATH]
//                [--check-updates-per-sec-min F] [--check-recovery-parity]
//                [--out BENCH_stream.json]
//
// Exit status: 0 ok, 1 argument/IO errors, 2 recovery parity mismatch (only
// fatal under --check-recovery-parity; always reported in the JSON), 3 the
// --check-updates-per-sec-min floor failed.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "common/blob_io.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "ratings/rating_delta.h"
#include "ratings/rating_matrix.h"
#include "sim/durable_peer_graph.h"
#include "sim/incremental_peer_graph.h"

namespace fairrec {
namespace {

struct BenchConfig {
  int32_t num_users = 5000;
  int32_t num_items = 1000;
  double density = 0.01;
  uint64_t seed = 20170417;
  size_t threads = 1;
  int32_t block_users = 512;
  double delta = 0.1;
  int32_t max_peers = 64;
  int32_t tile_users = 2048;
  /// Batches streamed through the durable pipeline.
  int32_t batches = 120;
  /// Mean Poisson batch size, in upserts.
  double mean_batch = 8.0;
  /// Checkpoint after every N applied batches.
  int32_t checkpoint_every = 20;
  /// Simulated crash (drop + recover) after every N applied batches.
  int32_t crash_every = 50;
  std::string dir;  // default: under TMPDIR
  /// Fail (exit 3) when sustained updates/sec drops below this (0 = off).
  double check_updates_per_sec_min = 0.0;
  /// Make a recovery parity mismatch fatal (exit 2). Always reported.
  bool check_recovery_parity = false;
  std::string out_path = "BENCH_stream.json";
};

RatingMatrix GenerateCorpus(const BenchConfig& config) {
  Rng rng(config.seed);
  RatingMatrixBuilder builder;
  builder.Reserve(config.num_users, config.num_items);
  for (UserId u = 0; u < config.num_users; ++u) {
    for (ItemId i = 0; i < config.num_items; ++i) {
      if (!rng.NextBool(config.density)) continue;
      const auto status =
          builder.Add(u, i, static_cast<Rating>(rng.UniformInt(1, 5)));
      if (!status.ok()) {
        std::fprintf(stderr, "corpus generation failed: %s\n",
                     status.ToString().c_str());
        std::exit(1);
      }
    }
  }
  return std::move(builder.Build()).ValueOrDie();
}

/// Poisson sample via Knuth's product-of-uniforms (fine at soak-sized means).
int64_t SamplePoisson(double mean, Rng& rng) {
  const double limit = std::exp(-mean);
  int64_t k = 0;
  double p = 1.0;
  do {
    ++k;
    p *= rng.NextDouble();
  } while (p > limit);
  return k - 1;
}

/// One arrival batch: Poisson-many upserts from a handful of active users
/// (integer ratings — the exact-parity regime).
RatingDelta MakeBatch(const RatingMatrix& matrix, double mean_batch,
                      Rng& rng) {
  const int64_t upserts = std::max<int64_t>(1, SamplePoisson(mean_batch, rng));
  RatingDelta delta;
  for (int64_t k = 0; k < upserts; ++k) {
    const auto user =
        static_cast<UserId>(rng.UniformInt(0, matrix.num_users() - 1));
    const auto item =
        static_cast<ItemId>(rng.UniformInt(0, matrix.num_items() - 1));
    const auto status =
        delta.Add(user, item, static_cast<Rating>(rng.UniformInt(1, 5)));
    if (!status.ok()) {
      std::fprintf(stderr, "batch generation failed: %s\n",
                   status.ToString().c_str());
      std::exit(1);
    }
  }
  return delta;
}

bool SameState(const DurablePeerGraph& durable,
               const IncrementalPeerGraph& twin) {
  return durable.graph().matrix() == twin.matrix() &&
         durable.graph().store() == twin.store() &&
         *durable.graph().index() == *twin.index();
}

struct RecoveryEvent {
  int32_t at_batch = 0;
  double seconds = 0.0;
  int64_t replayed = 0;
  int64_t skipped = 0;
  bool parity_ok = false;
};

int Run(const BenchConfig& config) {
  std::printf("generating corpus: %d users x %d items at %.2f%% density...\n",
              config.num_users, config.num_items, 100.0 * config.density);
  const RatingMatrix seed_matrix = GenerateCorpus(config);
  std::printf("  %lld ratings\n",
              static_cast<long long>(seed_matrix.num_ratings()));

  IncrementalPeerGraphOptions options;
  options.engine.num_threads = config.threads;
  options.engine.block_users = config.block_users;
  options.peers.delta = config.delta;
  options.peers.max_peers_per_user = config.max_peers;
  options.store.tile_users = config.tile_users;

  const std::string dir =
      config.dir.empty() ? std::string("bench_stream_state") : config.dir;
  if (const auto status = EnsureDirectory(dir); !status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  // A soak run always starts from its own seed, never a stale state dir.
  (void)RemovePath(DurablePeerGraph::CheckpointPathOf(dir));
  (void)RemovePath(DurablePeerGraph::JournalPathOf(dir));

  Stopwatch seed_clock;
  auto durable_result = DurablePeerGraph::Open(dir, seed_matrix, options);
  const double seed_seconds = seed_clock.ElapsedSeconds();
  if (!durable_result.ok()) {
    std::fprintf(stderr, "seed open failed: %s\n",
                 durable_result.status().ToString().c_str());
    return 1;
  }
  std::optional<DurablePeerGraph> durable =
      std::move(durable_result).ValueOrDie();
  auto twin_result = IncrementalPeerGraph::Build(seed_matrix, options);
  if (!twin_result.ok()) {
    std::fprintf(stderr, "twin build failed: %s\n",
                 twin_result.status().ToString().c_str());
    return 1;
  }
  IncrementalPeerGraph twin = std::move(twin_result).ValueOrDie();
  std::printf("seed open (build + initial checkpoint): %.3f s\n",
              seed_seconds);

  Rng stream_rng(config.seed ^ 0x5eed5eedull);
  int64_t total_upserts = 0;
  double apply_seconds = 0.0;
  double checkpoint_seconds = 0.0;
  int32_t checkpoints = 0;
  uint64_t max_journal_bytes = 0;
  std::vector<RecoveryEvent> recoveries;

  for (int32_t b = 1; b <= config.batches; ++b) {
    const RatingDelta batch = MakeBatch(durable->graph().matrix(),
                                        config.mean_batch, stream_rng);
    total_upserts += batch.size();

    Stopwatch apply_clock;
    const auto stats = durable->ApplyDelta(batch);
    apply_seconds += apply_clock.ElapsedSeconds();
    if (!stats.ok()) {
      std::fprintf(stderr, "apply failed at batch %d: %s\n", b,
                   stats.status().ToString().c_str());
      return 1;
    }
    const auto twin_stats = twin.ApplyDelta(batch);
    if (!twin_stats.ok()) {
      std::fprintf(stderr, "twin apply failed at batch %d: %s\n", b,
                   twin_stats.status().ToString().c_str());
      return 1;
    }
    max_journal_bytes = std::max(max_journal_bytes, durable->journal_bytes());

    if (config.checkpoint_every > 0 && b % config.checkpoint_every == 0) {
      Stopwatch checkpoint_clock;
      if (const auto status = durable->Checkpoint(); !status.ok()) {
        std::fprintf(stderr, "checkpoint failed at batch %d: %s\n", b,
                     status.ToString().c_str());
        return 1;
      }
      checkpoint_seconds += checkpoint_clock.ElapsedSeconds();
      ++checkpoints;
    }

    const bool last = b == config.batches;
    if ((config.crash_every > 0 && b % config.crash_every == 0) || last) {
      // The simulated kill: the in-memory state vanishes, disk is truth.
      durable.reset();
      Stopwatch recover_clock;
      auto recovered = DurablePeerGraph::Open(dir, seed_matrix, options);
      RecoveryEvent event;
      event.at_batch = b;
      event.seconds = recover_clock.ElapsedSeconds();
      if (!recovered.ok()) {
        std::fprintf(stderr, "recovery failed at batch %d: %s\n", b,
                     recovered.status().ToString().c_str());
        return 1;
      }
      durable = std::move(recovered).ValueOrDie();
      event.replayed = durable->recovery_info().replayed_batches;
      event.skipped = durable->recovery_info().skipped_batches;
      event.parity_ok = SameState(*durable, twin);
      std::printf(
          "batch %4d: recovered in %.3f s (replayed %lld, skipped %lld, "
          "parity %s)\n",
          b, event.seconds, static_cast<long long>(event.replayed),
          static_cast<long long>(event.skipped),
          event.parity_ok ? "ok" : "MISMATCH");
      recoveries.push_back(event);
    }
  }

  const double updates_per_sec =
      apply_seconds > 0.0 ? static_cast<double>(total_upserts) / apply_seconds
                          : 0.0;
  double recovery_seconds_max = 0.0;
  double recovery_seconds_sum = 0.0;
  int64_t replayed_total = 0;
  bool parity_ok = true;
  for (const RecoveryEvent& event : recoveries) {
    recovery_seconds_max = std::max(recovery_seconds_max, event.seconds);
    recovery_seconds_sum += event.seconds;
    replayed_total += event.replayed;
    parity_ok = parity_ok && event.parity_ok;
  }
  std::printf(
      "stream: %lld upserts in %d batches, %.0f updates/sec sustained, "
      "%d checkpoints (%.3f s total), %zu recoveries (max %.3f s), "
      "parity %s\n",
      static_cast<long long>(total_upserts), config.batches, updates_per_sec,
      checkpoints, checkpoint_seconds, recoveries.size(),
      recovery_seconds_max, parity_ok ? "ok" : "MISMATCH");

  std::FILE* out = std::fopen(config.out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", config.out_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"stream\",\n"
               "  \"corpus\": {\n"
               "    \"num_users\": %d,\n"
               "    \"num_items\": %d,\n"
               "    \"density\": %.6f,\n"
               "    \"seed\": %llu\n"
               "  },\n"
               "  \"options\": {\n"
               "    \"delta\": %.6f,\n"
               "    \"max_peers_per_user\": %d,\n"
               "    \"tile_users\": %d,\n"
               "    \"mean_batch\": %.3f,\n"
               "    \"checkpoint_every\": %d,\n"
               "    \"crash_every\": %d\n"
               "  },\n"
               "  \"threads\": %zu,\n"
               "  \"seed_open_seconds\": %.6f,\n"
               "  \"stream\": {\n"
               "    \"batches\": %d,\n"
               "    \"upserts\": %lld,\n"
               "    \"apply_seconds\": %.6f,\n"
               "    \"updates_per_sec\": %.3f,\n"
               "    \"checkpoints\": %d,\n"
               "    \"checkpoint_seconds\": %.6f,\n"
               "    \"max_journal_bytes\": %llu\n"
               "  },\n",
               config.num_users, config.num_items, config.density,
               static_cast<unsigned long long>(config.seed), config.delta,
               config.max_peers, config.tile_users, config.mean_batch,
               config.checkpoint_every, config.crash_every, config.threads,
               seed_seconds, config.batches,
               static_cast<long long>(total_upserts), apply_seconds,
               updates_per_sec, checkpoints, checkpoint_seconds,
               static_cast<unsigned long long>(max_journal_bytes));
  std::fprintf(out,
               "  \"recovery\": {\n"
               "    \"count\": %zu,\n"
               "    \"seconds_max\": %.6f,\n"
               "    \"seconds_mean\": %.6f,\n"
               "    \"replayed_batches\": %lld,\n"
               "    \"parity_ok\": %s\n"
               "  },\n",
               recoveries.size(), recovery_seconds_max,
               recoveries.empty() ? 0.0
                                  : recovery_seconds_sum /
                                        static_cast<double>(recoveries.size()),
               static_cast<long long>(replayed_total),
               parity_ok ? "true" : "false");
  std::fprintf(out, "  \"recoveries\": [\n");
  for (size_t k = 0; k < recoveries.size(); ++k) {
    const RecoveryEvent& event = recoveries[k];
    std::fprintf(out,
                 "    {\n"
                 "      \"at_batch\": %d,\n"
                 "      \"seconds\": %.6f,\n"
                 "      \"replayed\": %lld,\n"
                 "      \"skipped\": %lld,\n"
                 "      \"parity_ok\": %s\n"
                 "    }%s\n",
                 event.at_batch, event.seconds,
                 static_cast<long long>(event.replayed),
                 static_cast<long long>(event.skipped),
                 event.parity_ok ? "true" : "false",
                 k + 1 < recoveries.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", config.out_path.c_str());

  if (!parity_ok && config.check_recovery_parity) {
    std::fprintf(stderr, "FAIL: recovered state diverged from the "
                         "uninterrupted twin\n");
    return 2;
  }
  if (config.check_updates_per_sec_min > 0.0 &&
      updates_per_sec < config.check_updates_per_sec_min) {
    std::fprintf(stderr,
                 "FAIL: %.0f updates/sec below the %.0f floor\n",
                 updates_per_sec, config.check_updates_per_sec_min);
    return 3;
  }
  return 0;
}

}  // namespace
}  // namespace fairrec

int main(int argc, char** argv) {
  fairrec::BenchConfig config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(1);
      }
      return argv[++i];
    };
    if (arg == "--users") {
      config.num_users = std::atoi(next());
    } else if (arg == "--items") {
      config.num_items = std::atoi(next());
    } else if (arg == "--density") {
      config.density = std::atof(next());
    } else if (arg == "--seed") {
      config.seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--threads") {
      config.threads = static_cast<size_t>(std::atoi(next()));
    } else if (arg == "--block") {
      config.block_users = std::atoi(next());
    } else if (arg == "--delta") {
      config.delta = std::atof(next());
    } else if (arg == "--max-peers") {
      config.max_peers = std::atoi(next());
    } else if (arg == "--tile-users") {
      config.tile_users = std::atoi(next());
    } else if (arg == "--batches") {
      config.batches = std::atoi(next());
    } else if (arg == "--mean-batch") {
      config.mean_batch = std::atof(next());
    } else if (arg == "--checkpoint-every") {
      config.checkpoint_every = std::atoi(next());
    } else if (arg == "--crash-every") {
      config.crash_every = std::atoi(next());
    } else if (arg == "--dir") {
      config.dir = next();
    } else if (arg == "--check-updates-per-sec-min") {
      config.check_updates_per_sec_min = std::atof(next());
    } else if (arg == "--check-recovery-parity") {
      config.check_recovery_parity = true;
    } else if (arg == "--out") {
      config.out_path = next();
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 1;
    }
  }
  if (config.num_users < 2 || config.num_items < 1 || config.density <= 0.0 ||
      config.density > 1.0 || config.max_peers < 0 || config.delta <= 0.0 ||
      config.tile_users < 1 || config.batches < 1 ||
      config.mean_batch <= 0.0) {
    std::fprintf(stderr, "invalid configuration\n");
    return 1;
  }
  return fairrec::Run(config);
}
