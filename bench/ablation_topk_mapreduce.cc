// EXT-D ablation: the distributed top-k of [5] vs the centralized heap.
//
// §IV: "The final sorting and top-k selection of those relevance values is
// trivial when k elements are small enough to fit in memory. When this is
// not the case, we can use the top-k MapReduce algorithm suggested in [5]."
// This bench measures the crossover economics of that advice in-process:
// centralized SelectTopK is a single O(n log k) pass; MapReduceTopK pays
// shuffle overhead but prunes to partitions * k survivors.

#include <vector>

#include <benchmark/benchmark.h>

#include "cf/top_k.h"
#include "common/random.h"
#include "mapreduce/topk_mapreduce.h"

namespace fairrec {
namespace {

std::vector<ScoredItem> MakeScores(int64_t n) {
  Rng rng(1234);
  std::vector<ScoredItem> scored;
  scored.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    scored.push_back({static_cast<ItemId>(i), rng.NextDouble() * 5.0});
  }
  return scored;
}

void BM_CentralizedTopK(benchmark::State& state) {
  const auto scored = MakeScores(state.range(0));
  const auto k = static_cast<int32_t>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(SelectTopK(scored, k));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CentralizedTopK)
    ->Args({1 << 10, 10})
    ->Args({1 << 14, 10})
    ->Args({1 << 18, 10})
    ->Args({1 << 20, 10})
    ->Args({1 << 18, 100})
    ->Args({1 << 18, 1000});

void BM_MapReduceTopK(benchmark::State& state) {
  const auto scored = MakeScores(state.range(0));
  const auto k = static_cast<int32_t>(state.range(1));
  MapReduceOptions options;
  options.num_workers = 2;
  options.num_reduce_partitions = 4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(MapReduceTopK(scored, k, options));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MapReduceTopK)
    ->Args({1 << 10, 10})
    ->Args({1 << 14, 10})
    ->Args({1 << 18, 10})
    ->Args({1 << 20, 10})
    ->Args({1 << 18, 100})
    ->Args({1 << 18, 1000});

}  // namespace
}  // namespace fairrec

BENCHMARK_MAIN();
