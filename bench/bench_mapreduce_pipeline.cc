// Moment-sharded MapReduce similarity pipeline: Job 1 (per-shard sufficient
// statistics) + Job 2 (moment merge -> PeerIndex) vs the in-memory engine.
//
// Generates the same synthetic corpus family as bench_similarity_precompute,
// forms a group, and runs the Job 1/2 flow at several simulated shard counts.
// Each run's PeerIndex is checked byte-for-byte against the engine's (member
// rows, fellow members excluded — the Job 1 stream is directional), and the
// shuffle accounting (fixed-size moment records vs the retired per-co-rating
// record stream) is written to a JSON file so the scaling trajectory is
// tracked across PRs next to BENCH_similarity.json / BENCH_peer_index.json.
//
//   bench_mapreduce_pipeline [--users N] [--items N] [--density F] [--seed N]
//                            [--group-size N] [--delta F]
//                            [--check-compression-min F]
//                            [--out BENCH_mapreduce.json]
//
// Exit status: 0 on success, 1 on argument/IO errors, 2 if any shard layout
// produces a PeerIndex differing from the engine's, 3 if the shuffle
// compression gate fails.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/stopwatch.h"
#include "mapreduce/jobs.h"
#include "ratings/rating_matrix.h"
#include "sim/pairwise_engine.h"
#include "sim/peer_index.h"
#include "sim/rating_similarity.h"

namespace fairrec {
namespace {

struct BenchConfig {
  // Unlike the similarity benches (10k x 2k at 1%, where most pairs share at
  // most one item), the default corpus here is the deep-overlap regime the
  // paper's MapReduce section is about: heavy per-user profiles over a
  // compact catalog, so each pair co-rates many items and the per-co-rating
  // record stream the moment refactor retired is genuinely larger than the
  // moment stream.
  int32_t num_users = 5000;
  int32_t num_items = 200;
  double density = 0.2;
  uint64_t seed = 20170417;
  int32_t group_size = 8;
  double delta = 0.1;
  /// Fail (exit 3) when co_rating_records / moment_records at one shard is
  /// below this (0 = no gate). Record counts are corpus-deterministic, so
  /// this gate is immune to CI timing noise.
  double check_compression_min = 0.0;
  std::string out_path = "BENCH_mapreduce.json";
};

RatingMatrix GenerateCorpus(const BenchConfig& config) {
  Rng rng(config.seed);
  RatingMatrixBuilder builder;
  builder.Reserve(config.num_users, config.num_items);
  for (UserId u = 0; u < config.num_users; ++u) {
    for (ItemId i = 0; i < config.num_items; ++i) {
      if (!rng.NextBool(config.density)) continue;
      const auto status =
          builder.Add(u, i, static_cast<Rating>(rng.UniformInt(1, 5)));
      if (!status.ok()) {
        std::fprintf(stderr, "corpus generation failed: %s\n",
                     status.ToString().c_str());
        std::exit(1);
      }
    }
  }
  return std::move(builder.Build()).ValueOrDie();
}

/// One shard layout's measurements.
struct ShardResult {
  int32_t moment_shards = 0;
  double job1_seconds = 0.0;
  double job2_seconds = 0.0;
  int64_t moment_records = 0;
  int64_t peer_entries = 0;
  size_t mismatching_members = 0;
};

int Run(const BenchConfig& config) {
  std::printf("generating corpus: %d users x %d items at %.2f%% density...\n",
              config.num_users, config.num_items, 100.0 * config.density);
  const RatingMatrix matrix = GenerateCorpus(config);
  std::printf("  %lld ratings (density %.3f%%)\n",
              static_cast<long long>(matrix.num_ratings()),
              100.0 * matrix.Density());

  // Deterministic spread of members across the id space.
  Group group;
  for (int32_t g = 0; g < config.group_size; ++g) {
    group.push_back(static_cast<UserId>(
        static_cast<int64_t>(g) * config.num_users / config.group_size));
  }

  RatingSimilarityOptions sim_options;  // paper defaults: global means, raw r
  const std::vector<RatingTriple> triples = matrix.ToTriples();
  const std::vector<double> means =
      RunUserMeanJob(triples, matrix.num_users(), {});

  // --- In-memory reference: the engine's peer graph. ---
  PeerIndexOptions peer_options;
  peer_options.delta = config.delta;
  PairwiseEngineOptions engine_options;
  engine_options.num_threads = 1;
  const PairwiseSimilarityEngine engine(&matrix, sim_options, engine_options);
  Stopwatch engine_clock;
  const auto engine_result = engine.BuildPeerIndex(peer_options);
  const double engine_seconds = engine_clock.ElapsedSeconds();
  if (!engine_result.ok()) {
    std::fprintf(stderr, "engine build failed: %s\n",
                 engine_result.status().ToString().c_str());
    return 1;
  }
  const PeerIndex& reference = *engine_result;
  std::printf("engine (in-memory reference):  %8.3f s  (%lld peer entries "
              "across the whole population)\n",
              engine_seconds, static_cast<long long>(reference.num_entries()));

  // A member's expected row: the engine's, minus fellow members (the Job 1
  // stream is member -> outside-user only).
  const auto expected_row = [&](UserId u) {
    std::vector<Peer> expected;
    for (const Peer& p : reference.PeersOf(u)) {
      if (std::find(group.begin(), group.end(), p.user) == group.end()) {
        expected.push_back(p);
      }
    }
    return expected;
  };

  // --- Sharded MapReduce flow, one run per simulated layout. ---
  int64_t co_rating_records = 0;
  std::vector<ShardResult> runs;
  for (const int32_t shards : {1, 4, 16, 64}) {
    ShardResult run;
    run.moment_shards = shards;

    Stopwatch job1_clock;
    auto job1_result = RunJob1(triples, group, matrix.num_users(), {}, shards);
    run.job1_seconds = job1_clock.ElapsedSeconds();
    if (!job1_result.ok()) {
      std::fprintf(stderr, "job 1 failed: %s\n",
                   job1_result.status().ToString().c_str());
      return 1;
    }
    const Job1Output& job1 = *job1_result;
    run.moment_records = static_cast<int64_t>(job1.partial_moments.size());
    co_rating_records = job1.co_rating_records;

    Stopwatch job2_clock;
    const auto index_result =
        RunJob2PeerIndex(job1.partial_moments, means, sim_options,
                         config.delta, matrix.num_users());
    run.job2_seconds = job2_clock.ElapsedSeconds();
    if (!index_result.ok()) {
      std::fprintf(stderr, "job 2 failed: %s\n",
                   index_result.status().ToString().c_str());
      return 1;
    }
    const PeerIndex& sharded = *index_result;
    run.peer_entries = sharded.num_entries();

    // --- Parity: byte-identical member rows, empty everywhere else. ---
    for (UserId u = 0; u < matrix.num_users(); ++u) {
      const auto row = sharded.PeersOf(u);
      const std::vector<Peer> actual(row.begin(), row.end());
      const bool is_member =
          std::find(group.begin(), group.end(), u) != group.end();
      if (!is_member) {
        if (!actual.empty()) ++run.mismatching_members;
        continue;
      }
      if (actual != expected_row(u)) ++run.mismatching_members;
    }

    std::printf("shards %3d:  job1 %8.3f s  job2 %8.3f s  "
                "%8lld moment records (%.1fx compressed)  parity %s\n",
                shards, run.job1_seconds, run.job2_seconds,
                static_cast<long long>(run.moment_records),
                static_cast<double>(co_rating_records) /
                    static_cast<double>(std::max<int64_t>(run.moment_records, 1)),
                run.mismatching_members == 0 ? "ok" : "FAILED");
    runs.push_back(run);
  }

  const double max_compression =
      static_cast<double>(co_rating_records) /
      static_cast<double>(std::max<int64_t>(runs.front().moment_records, 1));

  std::FILE* out = std::fopen(config.out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", config.out_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"mapreduce_pipeline\",\n"
               "  \"corpus\": {\n"
               "    \"num_users\": %d,\n"
               "    \"num_items\": %d,\n"
               "    \"num_ratings\": %lld,\n"
               "    \"density\": %.6f,\n"
               "    \"seed\": %llu\n"
               "  },\n"
               "  \"group_size\": %d,\n"
               "  \"options\": {\n"
               "    \"delta\": %.6f,\n"
               "    \"min_overlap\": %d,\n"
               "    \"intersection_means\": %s,\n"
               "    \"shift_to_unit_interval\": %s\n"
               "  },\n"
               "  \"engine\": {\n"
               "    \"build_seconds\": %.6f,\n"
               "    \"peer_entries\": %lld\n"
               "  },\n"
               "  \"co_rating_records\": %lld,\n"
               "  \"max_shuffle_compression\": %.3f,\n"
               "  \"shards\": [\n",
               matrix.num_users(), matrix.num_items(),
               static_cast<long long>(matrix.num_ratings()), matrix.Density(),
               static_cast<unsigned long long>(config.seed), config.group_size,
               config.delta, sim_options.min_overlap,
               sim_options.intersection_means ? "true" : "false",
               sim_options.shift_to_unit_interval ? "true" : "false",
               engine_seconds, static_cast<long long>(reference.num_entries()),
               static_cast<long long>(co_rating_records), max_compression);
  for (size_t i = 0; i < runs.size(); ++i) {
    const ShardResult& run = runs[i];
    std::fprintf(out,
                 "    {\n"
                 "      \"moment_shards\": %d,\n"
                 "      \"job1_seconds\": %.6f,\n"
                 "      \"job2_seconds\": %.6f,\n"
                 "      \"moment_records\": %lld,\n"
                 "      \"peer_entries\": %lld,\n"
                 "      \"mismatching_members\": %zu\n"
                 "    }%s\n",
                 run.moment_shards, run.job1_seconds, run.job2_seconds,
                 static_cast<long long>(run.moment_records),
                 static_cast<long long>(run.peer_entries),
                 run.mismatching_members, i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", config.out_path.c_str());

  size_t total_mismatches = 0;
  for (const ShardResult& run : runs) total_mismatches += run.mismatching_members;
  if (total_mismatches > 0) {
    std::fprintf(stderr,
                 "FAIL: sharded PeerIndex differs from the engine's for %zu "
                 "user rows across layouts\n",
                 total_mismatches);
    return 2;
  }
  if (config.check_compression_min > 0.0 &&
      max_compression < config.check_compression_min) {
    std::fprintf(stderr,
                 "FAIL: shuffle compression %.2fx below the gate %.2fx\n",
                 max_compression, config.check_compression_min);
    return 3;
  }
  return 0;
}

}  // namespace
}  // namespace fairrec

int main(int argc, char** argv) {
  fairrec::BenchConfig config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(1);
      }
      return argv[++i];
    };
    if (arg == "--users") {
      config.num_users = std::atoi(next());
    } else if (arg == "--items") {
      config.num_items = std::atoi(next());
    } else if (arg == "--density") {
      config.density = std::atof(next());
    } else if (arg == "--seed") {
      config.seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--group-size") {
      config.group_size = std::atoi(next());
    } else if (arg == "--delta") {
      config.delta = std::atof(next());
    } else if (arg == "--check-compression-min") {
      config.check_compression_min = std::atof(next());
    } else if (arg == "--out") {
      config.out_path = next();
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 1;
    }
  }
  if (config.num_users < 2 || config.num_items < 1 || config.density <= 0.0 ||
      config.density > 1.0 || config.group_size < 1 ||
      config.group_size > config.num_users) {
    std::fprintf(stderr, "invalid configuration\n");
    return 1;
  }
  return fairrec::Run(config);
}
