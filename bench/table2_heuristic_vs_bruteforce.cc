// Table II regenerator: brute force vs the Algorithm 1 heuristic.
//
// Reproduces the paper's §VI sweep — m in {10, 20, 30} candidate items,
// z in {4, 8, 12, 16, 20} (cells with z < m) — over a synthetic cohort, and
// prints measured times next to the paper's reported milliseconds.
//
// Expected *shape* (absolute numbers differ; the authors' testbed is not
// ours, and our brute force enumerates incrementally):
//   * brute-force time tracks C(m, z): combinatorial growth in m, worst in
//     the middle of the z range (the paper's non-monotone m=30 column);
//   * the heuristic stays flat in the sub-millisecond-to-ms range;
//   * fairness is identical for both selectors on every cell (Prop. 1).
//
// Environment knobs:
//   FAIRREC_TABLE2_MAX_COMBOS=N   skip brute-force cells with C(m,z) > N
//   FAIRREC_TABLE2_SKIP_BRUTE=1   heuristic only

#include <cstdio>
#include <cstdlib>

#include "eval/table2_experiment.h"

int main() {
  fairrec::Table2Config config;
  config.scenario.num_patients = 400;
  config.scenario.num_documents = 200;
  config.scenario.num_clusters = 6;
  config.scenario.rating_density = 0.08;
  config.scenario.seed = 20170417;
  config.group_size = 4;
  config.top_k = 10;
  config.heuristic_repetitions = 5;

  if (const char* cap = std::getenv("FAIRREC_TABLE2_MAX_COMBOS")) {
    config.max_combinations = std::strtoull(cap, nullptr, 10);
  }
  if (const char* skip = std::getenv("FAIRREC_TABLE2_SKIP_BRUTE")) {
    config.run_brute_force = skip[0] != '1';
  }

  std::printf("Table II: brute-force vs heuristic fairness "
              "(|G|=%d, top-k=%d, synthetic cohort %d users x %d docs)\n\n",
              config.group_size, config.top_k, config.scenario.num_patients,
              config.scenario.num_documents);

  const auto result = fairrec::RunTable2Experiment(config);
  if (!result.ok()) {
    std::fprintf(stderr, "FAILED: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", fairrec::FormatTable2(*result).c_str());

  // Shape checks the harness asserts on its own output.
  bool fairness_identical = true;
  bool value_dominance = true;
  for (const fairrec::Table2Row& row : result->rows) {
    if (row.brute_force_ms < 0) continue;
    if (row.brute_force_fairness != row.heuristic_fairness) {
      fairness_identical = false;
    }
    if (row.brute_force_value + 1e-9 < row.heuristic_value) {
      value_dominance = false;
    }
  }
  std::printf(
      "\nshape checks: fairness identical on all cells (Prop. 1): %s; "
      "brute-force value >= heuristic value on all cells: %s\n",
      fairness_identical ? "YES" : "NO", value_dominance ? "YES" : "NO");
  std::printf("candidate pool before top-m restriction: %d items\n",
              result->candidate_pool_size);
  return (fairness_identical && value_dominance) ? 0 : 1;
}
