// Load harness for the online serving layer: closed-loop client threads
// drive mixed single-user / group traffic through ServingServer while an
// updater thread publishes rating-delta generations through LivePeerGraph —
// the serving tentpole's claim measured end to end: sustained QPS and tail
// latency with index swaps happening underneath.
//
// Each client also retains a sample of (snapshot, request, response)
// triples taken directly against acquired snapshots; after the run
// quiesces, every sample is replayed on its retained snapshot and must come
// back bit-identical. That is the torn-generation detector: a query that
// had observed a half-published generation (or an artifact mutated in
// place) cannot replay identically from the one consistent pair the
// snapshot holds.
//
//   bench_serving [--users N] [--items N] [--density F] [--seed N]
//                 [--seconds F] [--clients N] [--workers N] [--queue N]
//                 [--group-fraction F] [--group-size N] [--z N]
//                 [--top-k N] [--delta F] [--max-peers N]
//                 [--update-batch F] [--updates N]
//                 [--check-qps-min F] [--check-p99-max-ms F]
//                 [--check-replay-parity] [--out BENCH_serving.json]
//
// Exit status: 0 ok, 1 argument errors, 2 replay parity mismatch (fatal
// only under --check-replay-parity; always reported), 3 a --check-* floor
// failed.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/stopwatch.h"
#include "ratings/rating_delta.h"
#include "ratings/rating_matrix.h"
#include "serve/recommendation_service.h"
#include "serve/server.h"
#include "serve/snapshot_source.h"
#include "sim/incremental_peer_graph.h"

namespace fairrec {
namespace {

using serve::GroupRecRequest;
using serve::GroupRecResponse;
using serve::LivePeerGraph;
using serve::RecommendationService;
using serve::ServingServer;
using serve::ServingServerOptions;
using serve::ServingServerStats;
using serve::ServingSnapshot;
using serve::UserRecRequest;
using serve::UserRecResponse;

struct BenchConfig {
  int32_t num_users = 2000;
  int32_t num_items = 400;
  // Dense enough that 4-member groups usually have >= z predictable
  // candidates at delta = 0.1 — the group path should succeed, not
  // short-circuit into OutOfRange.
  double density = 0.05;
  uint64_t seed = 20170417;
  double seconds = 5.0;
  int32_t clients = 4;
  int32_t workers = 4;
  int32_t max_queue = 256;
  double group_fraction = 0.3;
  int32_t group_size = 4;
  int32_t z = 5;
  int32_t top_k = 10;
  double delta = 0.1;
  int32_t max_peers = 64;
  /// Mean Poisson size of each published delta batch.
  double update_batch = 16.0;
  /// Delta batches to publish, spread evenly over the run.
  int32_t updates = 20;
  double check_qps_min = 0.0;
  double check_p99_max_ms = 0.0;
  bool check_replay_parity = false;
  std::string out_path = "BENCH_serving.json";
};

RatingMatrix GenerateCorpus(const BenchConfig& config) {
  Rng rng(config.seed);
  RatingMatrixBuilder builder;
  builder.Reserve(config.num_users, config.num_items);
  for (UserId u = 0; u < config.num_users; ++u) {
    for (ItemId i = 0; i < config.num_items; ++i) {
      if (!rng.NextBool(config.density)) continue;
      const auto status =
          builder.Add(u, i, static_cast<Rating>(rng.UniformInt(1, 5)));
      if (!status.ok()) {
        std::fprintf(stderr, "corpus generation failed: %s\n",
                     status.ToString().c_str());
        std::exit(1);
      }
    }
  }
  return std::move(builder.Build()).ValueOrDie();
}

int64_t SamplePoisson(double mean, Rng& rng) {
  const double limit = std::exp(-mean);
  int64_t k = 0;
  double p = 1.0;
  do {
    ++k;
    p *= rng.NextDouble();
  } while (p > limit);
  return k - 1;
}

RatingDelta MakeBatch(int32_t num_users, int32_t num_items, double mean_batch,
                      Rng& rng) {
  const int64_t upserts = std::max<int64_t>(1, SamplePoisson(mean_batch, rng));
  RatingDelta delta;
  for (int64_t k = 0; k < upserts; ++k) {
    const auto user = static_cast<UserId>(rng.UniformInt(0, num_users - 1));
    const auto item = static_cast<ItemId>(rng.UniformInt(0, num_items - 1));
    const auto status =
        delta.Add(user, item, static_cast<Rating>(rng.UniformInt(1, 5)));
    if (!status.ok()) {
      std::fprintf(stderr, "batch generation failed: %s\n",
                   status.ToString().c_str());
      std::exit(1);
    }
  }
  return delta;
}

/// Retained replay material: the exact generation a sampled query ran on.
struct GroupSample {
  ServingSnapshot snapshot;
  GroupRecRequest request;
  GroupRecResponse response;
};

struct UserSample {
  ServingSnapshot snapshot;
  UserRecRequest request;
  UserRecResponse response;
};

struct ClientResult {
  std::vector<double> latencies_ms;
  int64_t user_requests = 0;
  int64_t group_requests = 0;
  int64_t shed = 0;
  int64_t out_of_range = 0;
  std::vector<UserSample> user_samples;
  std::vector<GroupSample> group_samples;
};

double Percentile(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto rank = static_cast<size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  return sorted[std::min(sorted.size() - 1, rank == 0 ? 0 : rank - 1)];
}

bool SameItems(const std::vector<ScoredItem>& a,
               const std::vector<ScoredItem>& b) {
  if (a.size() != b.size()) return false;
  for (size_t k = 0; k < a.size(); ++k) {
    if (!(a[k] == b[k])) return false;
  }
  return true;
}

int Run(const BenchConfig& config) {
  std::printf("generating corpus: %d users x %d items at %.2f%% density...\n",
              config.num_users, config.num_items, 100.0 * config.density);
  const RatingMatrix corpus = GenerateCorpus(config);
  std::printf("  %lld ratings\n",
              static_cast<long long>(corpus.num_ratings()));

  IncrementalPeerGraphOptions graph_options;
  graph_options.peers.delta = config.delta;
  graph_options.peers.max_peers_per_user = config.max_peers;

  Stopwatch seed_clock;
  auto graph = IncrementalPeerGraph::Build(corpus, graph_options);
  if (!graph.ok()) {
    std::fprintf(stderr, "seed build failed: %s\n",
                 graph.status().ToString().c_str());
    return 1;
  }
  std::printf("seed peer-graph build: %.3f s\n", seed_clock.ElapsedSeconds());
  LivePeerGraph live(std::move(graph).ValueOrDie());

  serve::RecommendationServiceOptions service_options;
  service_options.recommender.peers.delta = config.delta;
  service_options.recommender.top_k = config.top_k;
  service_options.context.top_k = config.top_k;
  const RecommendationService service(&live, service_options);

  ServingServerOptions server_options;
  server_options.num_workers = config.workers;
  server_options.max_queue = config.max_queue;
  ServingServer server(&service, server_options);

  std::atomic<bool> stop{false};
  std::vector<ClientResult> results(static_cast<size_t>(config.clients));
  std::vector<std::thread> clients;
  clients.reserve(static_cast<size_t>(config.clients));
  Stopwatch run_clock;

  for (int32_t c = 0; c < config.clients; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(config.seed ^ (0xc11e47ull + static_cast<uint64_t>(c)));
      ClientResult& mine = results[static_cast<size_t>(c)];
      // Direct-path scratch for the sampled (retained-snapshot) queries.
      RecommendationService::Scratch scratch;
      int64_t n = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        ++n;
        // Every 64th request bypasses the server to retain a replay sample
        // against an explicitly acquired snapshot.
        const bool sample = (n % 64) == 0;
        if (rng.NextDouble() < config.group_fraction) {
          GroupRecRequest request;
          const std::vector<int32_t> picks = rng.SampleWithoutReplacement(
              config.num_users, config.group_size);
          for (const int32_t u : picks) {
            request.members.push_back(static_cast<UserId>(u));
          }
          request.z = config.z;
          ++mine.group_requests;
          if (sample) {
            const ServingSnapshot snapshot = live.Acquire();
            auto response =
                service.RecommendGroupOn(snapshot, request, scratch);
            if (response.ok()) {
              mine.group_samples.push_back(
                  {snapshot, request, std::move(response).ValueOrDie()});
            } else if (response.status().IsOutOfRange()) {
              ++mine.out_of_range;
            }
            continue;
          }
          Stopwatch latency;
          const auto response = server.CallGroup(request);
          if (response.ok()) {
            mine.latencies_ms.push_back(latency.ElapsedSeconds() * 1e3);
          } else if (response.status().IsResourceExhausted()) {
            ++mine.shed;
            std::this_thread::yield();
          } else if (response.status().IsOutOfRange()) {
            ++mine.out_of_range;
          } else {
            std::fprintf(stderr, "group request failed: %s\n",
                         response.status().ToString().c_str());
            std::exit(1);
          }
        } else {
          UserRecRequest request;
          request.user =
              static_cast<UserId>(rng.UniformInt(0, config.num_users - 1));
          ++mine.user_requests;
          if (sample) {
            const ServingSnapshot snapshot = live.Acquire();
            auto response = service.RecommendUserOn(snapshot, request, scratch);
            if (response.ok()) {
              mine.user_samples.push_back(
                  {snapshot, request, std::move(response).ValueOrDie()});
            }
            continue;
          }
          Stopwatch latency;
          const auto response = server.CallUser(request);
          if (response.ok()) {
            mine.latencies_ms.push_back(latency.ElapsedSeconds() * 1e3);
          } else if (response.status().IsResourceExhausted()) {
            ++mine.shed;
            std::this_thread::yield();
          } else {
            std::fprintf(stderr, "user request failed: %s\n",
                         response.status().ToString().c_str());
            std::exit(1);
          }
        }
      }
    });
  }

  // The updater: publish config.updates generations, evenly spread.
  int64_t update_upserts = 0;
  double update_seconds = 0.0;
  int32_t updates_applied = 0;
  {
    Rng update_rng(config.seed ^ 0xde17a5ull);
    const double interval = config.seconds / (config.updates + 1);
    for (int32_t d = 0; d < config.updates; ++d) {
      const double due = interval * (d + 1);
      while (run_clock.ElapsedSeconds() < due &&
             run_clock.ElapsedSeconds() < config.seconds) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
      if (run_clock.ElapsedSeconds() >= config.seconds) break;
      const RatingDelta batch = MakeBatch(config.num_users, config.num_items,
                                          config.update_batch, update_rng);
      update_upserts += batch.size();
      Stopwatch apply_clock;
      const auto stats = live.ApplyDelta(batch);
      update_seconds += apply_clock.ElapsedSeconds();
      if (!stats.ok()) {
        std::fprintf(stderr, "delta apply failed: %s\n",
                     stats.status().ToString().c_str());
        return 1;
      }
      ++updates_applied;
    }
    while (run_clock.ElapsedSeconds() < config.seconds) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : clients) t.join();
  const double elapsed = run_clock.ElapsedSeconds();
  server.Shutdown();

  // ---- Quiesced replay: every retained sample, bit for bit. ----
  RecommendationService::Scratch scratch;
  int64_t replayed = 0;
  int64_t mismatches = 0;
  for (const ClientResult& result : results) {
    for (const UserSample& sample : result.user_samples) {
      const auto replay =
          service.RecommendUserOn(sample.snapshot, sample.request, scratch);
      ++replayed;
      if (!replay.ok() || replay->generation != sample.response.generation ||
          !SameItems(replay->items, sample.response.items)) {
        ++mismatches;
      }
    }
    for (const GroupSample& sample : result.group_samples) {
      const auto replay =
          service.RecommendGroupOn(sample.snapshot, sample.request, scratch);
      ++replayed;
      if (!replay.ok() || replay->generation != sample.response.generation ||
          !SameItems(replay->items, sample.response.items) ||
          replay->score.value != sample.response.score.value) {
        ++mismatches;
      }
    }
  }
  const bool replay_parity_ok = mismatches == 0;

  // ---- Aggregate. ----
  std::vector<double> latencies;
  int64_t user_requests = 0;
  int64_t group_requests = 0;
  int64_t shed_seen = 0;
  int64_t out_of_range = 0;
  for (ClientResult& result : results) {
    latencies.insert(latencies.end(), result.latencies_ms.begin(),
                     result.latencies_ms.end());
    user_requests += result.user_requests;
    group_requests += result.group_requests;
    shed_seen += result.shed;
    out_of_range += result.out_of_range;
  }
  std::sort(latencies.begin(), latencies.end());
  const auto completed = static_cast<int64_t>(latencies.size());
  const double qps =
      elapsed > 0.0 ? static_cast<double>(completed) / elapsed : 0.0;
  const double p50 = Percentile(latencies, 0.50);
  const double p90 = Percentile(latencies, 0.90);
  const double p99 = Percentile(latencies, 0.99);
  const double max_ms = latencies.empty() ? 0.0 : latencies.back();
  const ServingServerStats stats = server.stats();

  std::printf(
      "serving: %lld completed (%lld user + %lld group issued) in %.2f s "
      "= %.0f QPS; p50 %.2f ms, p90 %.2f ms, p99 %.2f ms, max %.2f ms\n",
      static_cast<long long>(completed),
      static_cast<long long>(user_requests),
      static_cast<long long>(group_requests), elapsed, qps, p50, p90, p99,
      max_ms);
  std::printf(
      "updates: %d generations (%lld upserts, %.3f s applying); shed %lld; "
      "replay %lld samples, parity %s\n",
      updates_applied, static_cast<long long>(update_upserts), update_seconds,
      static_cast<long long>(shed_seen), static_cast<long long>(replayed),
      replay_parity_ok ? "ok" : "MISMATCH");

  std::FILE* out = std::fopen(config.out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", config.out_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"serving\",\n"
               "  \"corpus\": {\n"
               "    \"num_users\": %d,\n"
               "    \"num_items\": %d,\n"
               "    \"density\": %.6f,\n"
               "    \"seed\": %llu\n"
               "  },\n"
               "  \"options\": {\n"
               "    \"clients\": %d,\n"
               "    \"workers\": %d,\n"
               "    \"max_queue\": %d,\n"
               "    \"group_fraction\": %.3f,\n"
               "    \"group_size\": %d,\n"
               "    \"z\": %d,\n"
               "    \"top_k\": %d,\n"
               "    \"delta\": %.6f,\n"
               "    \"max_peers_per_user\": %d,\n"
               "    \"update_batch\": %.3f\n"
               "  },\n",
               config.num_users, config.num_items, config.density,
               static_cast<unsigned long long>(config.seed), config.clients,
               config.workers, config.max_queue, config.group_fraction,
               config.group_size, config.z, config.top_k, config.delta,
               config.max_peers, config.update_batch);
  std::fprintf(out,
               "  \"traffic\": {\n"
               "    \"seconds\": %.6f,\n"
               "    \"completed\": %lld,\n"
               "    \"user_requests\": %lld,\n"
               "    \"group_requests\": %lld,\n"
               "    \"qps\": %.3f,\n"
               "    \"latency_ms\": {\n"
               "      \"p50\": %.4f,\n"
               "      \"p90\": %.4f,\n"
               "      \"p99\": %.4f,\n"
               "      \"max\": %.4f\n"
               "    },\n"
               "    \"shed\": %lld,\n"
               "    \"out_of_range\": %lld,\n"
               "    \"accepted\": %llu,\n"
               "    \"completed_ok\": %llu,\n"
               "    \"completed_error\": %llu,\n"
               "    \"queue_peak\": %llu\n"
               "  },\n"
               "  \"updates\": {\n"
               "    \"generations\": %d,\n"
               "    \"upserts\": %lld,\n"
               "    \"apply_seconds\": %.6f\n"
               "  },\n"
               "  \"replay\": {\n"
               "    \"samples\": %lld,\n"
               "    \"mismatches\": %lld,\n"
               "    \"parity_ok\": %s\n"
               "  }\n"
               "}\n",
               elapsed, static_cast<long long>(completed),
               static_cast<long long>(user_requests),
               static_cast<long long>(group_requests), qps, p50, p90, p99,
               max_ms, static_cast<long long>(shed_seen),
               static_cast<long long>(out_of_range),
               static_cast<unsigned long long>(stats.accepted),
               static_cast<unsigned long long>(stats.completed_ok),
               static_cast<unsigned long long>(stats.completed_error),
               static_cast<unsigned long long>(stats.queue_peak),
               updates_applied, static_cast<long long>(update_upserts),
               update_seconds, static_cast<long long>(replayed),
               static_cast<long long>(mismatches),
               replay_parity_ok ? "true" : "false");
  std::fclose(out);
  std::printf("wrote %s\n", config.out_path.c_str());

  if (!replay_parity_ok && config.check_replay_parity) {
    std::fprintf(stderr,
                 "FAIL: %lld of %lld retained samples did not replay "
                 "bit-identically\n",
                 static_cast<long long>(mismatches),
                 static_cast<long long>(replayed));
    return 2;
  }
  if (config.check_qps_min > 0.0 && qps < config.check_qps_min) {
    std::fprintf(stderr, "FAIL: %.0f QPS below the %.0f floor\n", qps,
                 config.check_qps_min);
    return 3;
  }
  if (config.check_p99_max_ms > 0.0 && p99 > config.check_p99_max_ms) {
    std::fprintf(stderr, "FAIL: p99 %.2f ms above the %.2f ms ceiling\n", p99,
                 config.check_p99_max_ms);
    return 3;
  }
  return 0;
}

}  // namespace
}  // namespace fairrec

int main(int argc, char** argv) {
  fairrec::BenchConfig config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(1);
      }
      return argv[++i];
    };
    if (arg == "--users") {
      config.num_users = std::atoi(next());
    } else if (arg == "--items") {
      config.num_items = std::atoi(next());
    } else if (arg == "--density") {
      config.density = std::atof(next());
    } else if (arg == "--seed") {
      config.seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--seconds") {
      config.seconds = std::atof(next());
    } else if (arg == "--clients") {
      config.clients = std::atoi(next());
    } else if (arg == "--workers") {
      config.workers = std::atoi(next());
    } else if (arg == "--queue") {
      config.max_queue = std::atoi(next());
    } else if (arg == "--group-fraction") {
      config.group_fraction = std::atof(next());
    } else if (arg == "--group-size") {
      config.group_size = std::atoi(next());
    } else if (arg == "--z") {
      config.z = std::atoi(next());
    } else if (arg == "--top-k") {
      config.top_k = std::atoi(next());
    } else if (arg == "--delta") {
      config.delta = std::atof(next());
    } else if (arg == "--max-peers") {
      config.max_peers = std::atoi(next());
    } else if (arg == "--update-batch") {
      config.update_batch = std::atof(next());
    } else if (arg == "--updates") {
      config.updates = std::atoi(next());
    } else if (arg == "--check-qps-min") {
      config.check_qps_min = std::atof(next());
    } else if (arg == "--check-p99-max-ms") {
      config.check_p99_max_ms = std::atof(next());
    } else if (arg == "--check-replay-parity") {
      config.check_replay_parity = true;
    } else if (arg == "--out") {
      config.out_path = next();
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 1;
    }
  }
  if (config.num_users < 2 || config.num_items < 1 || config.density <= 0.0 ||
      config.density > 1.0 || config.seconds <= 0.0 || config.clients < 1 ||
      config.workers < 1 || config.max_queue < 1 ||
      config.group_fraction < 0.0 || config.group_fraction > 1.0 ||
      config.group_size < 1 || config.group_size > config.num_users ||
      config.z < 1 || config.top_k < 1 || config.delta <= 0.0 ||
      config.max_peers < 0 || config.update_batch <= 0.0 ||
      config.updates < 0) {
    std::fprintf(stderr, "invalid configuration\n");
    return 1;
  }
  return fairrec::Run(config);
}
