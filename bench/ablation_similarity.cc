// EXT-A ablation: throughput of the three simU measures of §V (plus the
// hybrid blend and the precomputed matrix), via google-benchmark.
//
// The three measures have very different cost profiles:
//   * RS (Pearson): O(|I(u)| + |I(u')|) sorted merge per pair;
//   * CS (TF-IDF cosine): sparse dot product over precomputed vectors;
//   * SS (semantic): O(problems^2) memoized ontology distances;
//   * SimilarityMatrix: O(1) lookups after an O(n^2) precomputation.

#include <memory>

#include <benchmark/benchmark.h>

#include "data/scenario.h"
#include "sim/hybrid_similarity.h"
#include "sim/profile_similarity.h"
#include "sim/rating_similarity.h"
#include "sim/semantic_similarity.h"
#include "sim/similarity_matrix.h"

namespace fairrec {
namespace {

/// Shared world, built once.
struct World {
  Scenario scenario;
  std::unique_ptr<RatingSimilarity> rs;
  std::unique_ptr<ProfileSimilarity> cs;
  std::unique_ptr<SemanticSimilarity> ss;
  std::unique_ptr<HybridSimilarity> hybrid;

  static const World& Get() {
    static World* world = [] {
      auto* w = new World();
      ScenarioConfig config;
      config.num_patients = 500;
      config.num_documents = 300;
      config.num_clusters = 8;
      config.rating_density = 0.08;
      config.seed = 11;
      w->scenario = std::move(BuildScenario(config)).ValueOrDie();
      RatingSimilarityOptions rs_options;
      rs_options.shift_to_unit_interval = true;
      w->rs = std::make_unique<RatingSimilarity>(&w->scenario.ratings, rs_options);
      w->cs = std::move(ProfileSimilarity::Create(w->scenario.cohort.profiles,
                                                  w->scenario.ontology.ontology))
                  .ValueOrDie();
      w->ss = std::make_unique<SemanticSimilarity>(&w->scenario.cohort.profiles,
                                                   &w->scenario.ontology.ontology);
      w->hybrid = std::move(HybridSimilarity::Create({{w->rs.get(), 0.5},
                                                      {w->cs.get(), 0.25},
                                                      {w->ss.get(), 0.25}}))
                      .ValueOrDie();
      return w;
    }();
    return *world;
  }
};

void PairSweep(benchmark::State& state, const UserSimilarity& sim,
               int32_t num_users) {
  UserId a = 0;
  UserId b = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.Compute(a, b));
    b += 7;
    if (b >= num_users) {
      ++a;
      if (a >= num_users) a = 0;
      b = (a + 1) % num_users;
    }
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_RatingSimilarity(benchmark::State& state) {
  const World& w = World::Get();
  PairSweep(state, *w.rs, w.scenario.ratings.num_users());
}
BENCHMARK(BM_RatingSimilarity);

void BM_ProfileSimilarity(benchmark::State& state) {
  const World& w = World::Get();
  PairSweep(state, *w.cs, w.scenario.ratings.num_users());
}
BENCHMARK(BM_ProfileSimilarity);

void BM_SemanticSimilarity(benchmark::State& state) {
  const World& w = World::Get();
  PairSweep(state, *w.ss, w.scenario.ratings.num_users());
}
BENCHMARK(BM_SemanticSimilarity);

void BM_HybridSimilarity(benchmark::State& state) {
  const World& w = World::Get();
  PairSweep(state, *w.hybrid, w.scenario.ratings.num_users());
}
BENCHMARK(BM_HybridSimilarity);

void BM_PrecomputeSimilarityMatrix(benchmark::State& state) {
  const World& w = World::Get();
  const auto num_users = static_cast<int32_t>(state.range(0));
  for (auto _ : state) {
    auto matrix = SimilarityMatrix::Precompute(*w.ss, num_users);
    benchmark::DoNotOptimize(matrix);
  }
  state.SetItemsProcessed(state.iterations() * num_users *
                          (num_users - 1) / 2);
}
BENCHMARK(BM_PrecomputeSimilarityMatrix)->Arg(100)->Arg(250)->Arg(500);

void BM_CachedLookup(benchmark::State& state) {
  const World& w = World::Get();
  static const SimilarityMatrix* cached =
      std::move(SimilarityMatrix::Precompute(*w.ss, 500)).ValueOrDie().release();
  PairSweep(state, *cached, 500);
}
BENCHMARK(BM_CachedLookup);

}  // namespace
}  // namespace fairrec

BENCHMARK_MAIN();
