// Pearson finish kernel microbench: the scalar per-pair finish
// (FinishPearsonFromMoments, the pre-batch code path) vs the batched kernel
// of sim/pearson_finish_batch.h in both its portable-scalar and AVX2 forms.
//
// The finish is the O(U^2) constant every similarity artifact pays — the
// packed triangle, the PeerIndex build, the incremental re-finish, and the
// MapReduce Job 2 reducers all funnel through it — so this bench isolates
// exactly that constant: a pool of synthetic sufficient statistics is
// finished repeatedly until the requested number of pair finishes is
// reached. Batch timings include the staging cost (FinishBatch::Push),
// i.e. they measure the kernel as its callers experience it.
//
// The default pool is the population the kernel actually sees: pairs that
// *passed* the overlap guard (every caller short-circuits guard-failed
// pairs to a literal 0 before staging — PairwiseSimilarityEngine::
// SkipsFinish and the mapreduce/incremental equivalents), plus the
// constant-row pairs whose zero-variance cancellation the kernel's mask
// pass must catch. --mix-empty / --mix-below-overlap re-add guard-failed
// pairs for exploring the pre-staging regime.
//
// The run also self-checks the bit-parity contract: all available paths
// must produce identical bits for every pool element (`max_bit_diff` is the
// largest absolute difference between the 64-bit patterns of any two
// paths' outputs — 0 on any conforming build; exit 2 otherwise).
//
//   bench_finish_kernel [--pool N] [--finishes N] [--seed N]
//                       [--intersection-means] [--shift]
//                       [--mix-empty F] [--mix-below-overlap F]
//                       [--mix-constant F]
//                       [--check-speedup-min F]
//                       [--out BENCH_finish.json]
//
// Exit status: 0 ok, 1 argument/IO errors, 2 bit-parity mismatch, 3 the
// --check-speedup-min gate (best batch kernel vs the scalar loop) failed.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <bit>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/stopwatch.h"
#include "sim/pearson_finish.h"
#include "sim/pearson_finish_batch.h"
#include "sim/rating_similarity.h"

namespace fairrec {
namespace {

struct BenchConfig {
  /// Distinct synthetic pairs in the working set. The default (~768 KiB of
  /// moments + 256 KiB of means) stays L2-resident so the bench measures
  /// the finish constant itself, not L3/DRAM streaming — the regime of the
  /// engine's drain, which finishes accumulator cells the sweep just
  /// wrote. Raise it to measure the memory-bound regime.
  int64_t pool = 1 << 14;
  /// Total pair finishes per timed path (the pool is swept repeatedly).
  int64_t finishes = 50'000'000;
  uint64_t seed = 20170417;
  bool intersection_means = false;
  bool shift = false;
  /// Fail (exit 3) when best-batch/scalar-loop speedup drops below this
  /// (0 = no gate).
  double check_speedup_min = 0.0;
  std::string out_path = "BENCH_finish.json";

  /// Pool composition (fractions; the remainder is regular co-rating
  /// runs). Defaults model the post-guard population — see the header
  /// comment.
  double mix_empty = 0.0;          // n == 0: no co-ratings
  double mix_below_overlap = 0.0;  // n == 1 < default min_overlap
  double mix_constant = 0.05;      // constant co-ratings -> variance guard
};

struct Pool {
  std::vector<PairMoments> moments;
  std::vector<double> mean_a;
  std::vector<double> mean_b;
};

Pool GeneratePool(const BenchConfig& config) {
  Rng rng(config.seed);
  Pool pool;
  pool.moments.resize(static_cast<size_t>(config.pool));
  pool.mean_a.resize(static_cast<size_t>(config.pool));
  pool.mean_b.resize(static_cast<size_t>(config.pool));
  for (int64_t k = 0; k < config.pool; ++k) {
    PairMoments m;
    const double regime = rng.NextDouble();
    if (regime < config.mix_empty) {
      // no co-ratings
    } else if (regime < config.mix_empty + config.mix_below_overlap) {
      m.Add(static_cast<double>(rng.UniformInt(1, 5)),
            static_cast<double>(rng.UniformInt(1, 5)));
    } else if (regime <
               config.mix_empty + config.mix_below_overlap + config.mix_constant) {
      // A constant row whose value is not exactly representable: the raw
      // expansion cancels to rounding noise and must hit the relative
      // epsilon guard.
      const int32_t n = static_cast<int32_t>(rng.UniformInt(2, 8));
      for (int32_t i = 0; i < n; ++i) m.Add(3.1, 3.1);
    } else {
      const int32_t n = static_cast<int32_t>(rng.UniformInt(2, 32));
      for (int32_t i = 0; i < n; ++i) {
        m.Add(static_cast<double>(rng.UniformInt(1, 5)),
              static_cast<double>(rng.UniformInt(1, 5)));
      }
    }
    pool.moments[static_cast<size_t>(k)] = m;
    pool.mean_a[static_cast<size_t>(k)] = rng.UniformReal(1.0, 5.0);
    pool.mean_b[static_cast<size_t>(k)] = rng.UniformReal(1.0, 5.0);
  }
  return pool;
}

/// One pass of the pre-batch code path: the scalar finish per pair. Four
/// independent checksum chains keep the harness's accumulation off the
/// critical path (a single serial addsd chain would bound both paths).
double ScalarLoopPass(const Pool& pool, const RatingSimilarityOptions& options,
                      std::vector<double>* out) {
  double c0 = 0.0, c1 = 0.0, c2 = 0.0, c3 = 0.0;
  for (size_t k = 0; k < pool.moments.size(); ++k) {
    const double sim = FinishPearsonFromMoments(
        pool.moments[k], pool.mean_a[k], pool.mean_b[k], options);
    switch (k & 3) {
      case 0: c0 += sim; break;
      case 1: c1 += sim; break;
      case 2: c2 += sim; break;
      default: c3 += sim; break;
    }
    if (out != nullptr) (*out)[k] = sim;
  }
  return (c0 + c1) + (c2 + c3);
}

using KernelFn = void (*)(const FinishBatch&, const RatingSimilarityOptions&,
                          double*);

/// One pass through a pinned batch kernel, staging included. The checksum
/// consumes lanes through four independent chains, like ScalarLoopPass.
double BatchPass(const Pool& pool, const RatingSimilarityOptions& options,
                 KernelFn kernel, std::vector<double>* out) {
  double c0 = 0.0, c1 = 0.0, c2 = 0.0, c3 = 0.0;
  FinishBatch batch;
  double finished[FinishBatch::kCapacity];
  size_t flushed = 0;
  const auto flush = [&] {
    kernel(batch, options, finished);
    const int32_t size = batch.size();
    int32_t i = 0;
    for (; i + 4 <= size; i += 4) {
      c0 += finished[i];
      c1 += finished[i + 1];
      c2 += finished[i + 2];
      c3 += finished[i + 3];
    }
    for (; i < size; ++i) c0 += finished[i];
    if (out != nullptr) {
      for (int32_t j = 0; j < size; ++j) {
        (*out)[flushed + static_cast<size_t>(j)] = finished[j];
      }
    }
    flushed += static_cast<size_t>(size);
    batch.Clear();
  };
  for (size_t k = 0; k < pool.moments.size(); ++k) {
    batch.Push(pool.moments[k], pool.mean_a[k], pool.mean_b[k]);
    if (batch.full()) flush();
  }
  flush();
  return (c0 + c1) + (c2 + c3);
}

/// Largest absolute difference between the 64-bit patterns of two outputs.
/// 0 iff the paths are bit-identical on every pool element.
uint64_t MaxBitDiff(const std::vector<double>& x, const std::vector<double>& y) {
  uint64_t max_diff = 0;
  for (size_t k = 0; k < x.size(); ++k) {
    const int64_t xb = static_cast<int64_t>(std::bit_cast<uint64_t>(x[k]));
    const int64_t yb = static_cast<int64_t>(std::bit_cast<uint64_t>(y[k]));
    const uint64_t diff =
        xb >= yb ? static_cast<uint64_t>(xb - yb) : static_cast<uint64_t>(yb - xb);
    if (diff > max_diff) max_diff = diff;
  }
  return max_diff;
}

struct PathResult {
  bool ran = false;
  double seconds = 0.0;
  double pairs_per_sec = 0.0;
  double checksum = 0.0;
};

int Run(const BenchConfig& config) {
  RatingSimilarityOptions options;  // paper defaults: min_overlap 2, global µ
  options.intersection_means = config.intersection_means;
  options.shift_to_unit_interval = config.shift;

  std::printf("generating pool: %lld pairs (%.1f MiB of moments)...\n",
              static_cast<long long>(config.pool),
              static_cast<double>(config.pool) * sizeof(PairMoments) /
                  (1024.0 * 1024.0));
  const Pool pool = GeneratePool(config);
  const int64_t passes =
      std::max<int64_t>(1, (config.finishes + config.pool - 1) / config.pool);
  const int64_t total = passes * config.pool;
  [[maybe_unused]] const bool has_avx2 = internal::FinishPearsonBatchHasAvx2();
  std::printf("  %lld passes -> %lld finishes per path; dispatch kernel: %s\n",
              static_cast<long long>(passes), static_cast<long long>(total),
              FinishPearsonBatchKernel());

  // ---- Bit-parity self-check (one pass per path, outputs kept). ----
  std::vector<double> out_scalar(pool.moments.size());
  std::vector<double> out_batch_scalar(pool.moments.size());
  ScalarLoopPass(pool, options, &out_scalar);
  BatchPass(pool, options, internal::FinishPearsonBatchScalar,
            &out_batch_scalar);
  uint64_t max_bit_diff = MaxBitDiff(out_scalar, out_batch_scalar);
#if defined(FAIRREC_ENABLE_AVX2)
  if (has_avx2) {
    std::vector<double> out_avx2(pool.moments.size());
    BatchPass(pool, options, internal::FinishPearsonBatchAvx2, &out_avx2);
    max_bit_diff = std::max(max_bit_diff, MaxBitDiff(out_scalar, out_avx2));
  }
#endif
  std::printf("bit-parity self-check: max_bit_diff %llu\n",
              static_cast<unsigned long long>(max_bit_diff));

  // ---- Timed passes. ----
  PathResult scalar_loop;
  PathResult batch_scalar;
  PathResult batch_avx2;
  {
    Stopwatch clock;
    for (int64_t p = 0; p < passes; ++p) {
      scalar_loop.checksum += ScalarLoopPass(pool, options, nullptr);
    }
    scalar_loop.seconds = clock.ElapsedSeconds();
    scalar_loop.ran = true;
  }
  {
    Stopwatch clock;
    for (int64_t p = 0; p < passes; ++p) {
      batch_scalar.checksum +=
          BatchPass(pool, options, internal::FinishPearsonBatchScalar, nullptr);
    }
    batch_scalar.seconds = clock.ElapsedSeconds();
    batch_scalar.ran = true;
  }
#if defined(FAIRREC_ENABLE_AVX2)
  if (has_avx2) {
    Stopwatch clock;
    for (int64_t p = 0; p < passes; ++p) {
      batch_avx2.checksum +=
          BatchPass(pool, options, internal::FinishPearsonBatchAvx2, nullptr);
    }
    batch_avx2.seconds = clock.ElapsedSeconds();
    batch_avx2.ran = true;
  }
#endif

  const auto report = [total](const char* name, PathResult& r) {
    if (!r.ran) {
      std::printf("%-22s      (not available on this build/host)\n", name);
      return;
    }
    r.pairs_per_sec = static_cast<double>(total) / r.seconds;
    std::printf("%-22s %8.3f s  (%7.2fM pairs/s)\n", name, r.seconds,
                r.pairs_per_sec / 1e6);
  };
  report("scalar loop:", scalar_loop);
  report("batch kernel (scalar):", batch_scalar);
  report("batch kernel (avx2):", batch_avx2);

  const double speedup_batch_scalar =
      scalar_loop.seconds / batch_scalar.seconds;
  const double best_batch_seconds =
      batch_avx2.ran ? std::min(batch_scalar.seconds, batch_avx2.seconds)
                     : batch_scalar.seconds;
  const double speedup_best = scalar_loop.seconds / best_batch_seconds;
  std::printf("speedup: batch-scalar %.2fx   best batch %.2fx\n",
              speedup_batch_scalar, speedup_best);

  std::FILE* out = std::fopen(config.out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", config.out_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"finish_kernel\",\n"
               "  \"pool\": %lld,\n"
               "  \"finishes_per_path\": %lld,\n"
               "  \"seed\": %llu,\n"
               "  \"mixture\": {\n"
               "    \"empty\": %.3f,\n"
               "    \"below_overlap\": %.3f,\n"
               "    \"constant_row\": %.3f\n"
               "  },\n"
               "  \"options\": {\n"
               "    \"min_overlap\": %d,\n"
               "    \"intersection_means\": %s,\n"
               "    \"shift_to_unit_interval\": %s\n"
               "  },\n"
               "  \"dispatch_kernel\": \"%s\",\n"
               "  \"scalar_loop_seconds\": %.6f,\n"
               "  \"batch_scalar_seconds\": %.6f,\n",
               static_cast<long long>(config.pool),
               static_cast<long long>(total),
               static_cast<unsigned long long>(config.seed), config.mix_empty,
               config.mix_below_overlap, config.mix_constant,
               options.min_overlap,
               options.intersection_means ? "true" : "false",
               options.shift_to_unit_interval ? "true" : "false",
               FinishPearsonBatchKernel(), scalar_loop.seconds,
               batch_scalar.seconds);
  if (batch_avx2.ran) {
    std::fprintf(out, "  \"batch_avx2_seconds\": %.6f,\n", batch_avx2.seconds);
  } else {
    std::fprintf(out, "  \"batch_avx2_seconds\": null,\n");
  }
  std::fprintf(out,
               "  \"speedup_batch_scalar\": %.3f,\n"
               "  \"speedup_batch_best\": %.3f,\n"
               "  \"max_bit_diff\": %llu\n"
               "}\n",
               speedup_batch_scalar, speedup_best,
               static_cast<unsigned long long>(max_bit_diff));
  std::fclose(out);
  std::printf("wrote %s\n", config.out_path.c_str());

  if (max_bit_diff != 0) {
    std::fprintf(stderr,
                 "FAIL: batch kernels are not bit-identical to the scalar "
                 "finish (max_bit_diff %llu)\n",
                 static_cast<unsigned long long>(max_bit_diff));
    return 2;
  }
  if (config.check_speedup_min > 0.0 &&
      speedup_best < config.check_speedup_min) {
    std::fprintf(stderr, "FAIL: best batch speedup %.2fx below the gate %.2fx\n",
                 speedup_best, config.check_speedup_min);
    return 3;
  }
  return 0;
}

}  // namespace
}  // namespace fairrec

int main(int argc, char** argv) {
  fairrec::BenchConfig config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(1);
      }
      return argv[++i];
    };
    if (arg == "--pool") {
      config.pool = std::strtoll(next(), nullptr, 10);
    } else if (arg == "--finishes") {
      config.finishes = std::strtoll(next(), nullptr, 10);
    } else if (arg == "--seed") {
      config.seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--intersection-means") {
      config.intersection_means = true;
    } else if (arg == "--shift") {
      config.shift = true;
    } else if (arg == "--mix-empty") {
      config.mix_empty = std::atof(next());
    } else if (arg == "--mix-below-overlap") {
      config.mix_below_overlap = std::atof(next());
    } else if (arg == "--mix-constant") {
      config.mix_constant = std::atof(next());
    } else if (arg == "--check-speedup-min") {
      config.check_speedup_min = std::atof(next());
    } else if (arg == "--out") {
      config.out_path = next();
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 1;
    }
  }
  if (config.pool < 1 || config.finishes < 1 || config.mix_empty < 0.0 ||
      config.mix_below_overlap < 0.0 || config.mix_constant < 0.0 ||
      config.mix_empty + config.mix_below_overlap + config.mix_constant >
          1.0) {
    std::fprintf(stderr, "invalid configuration\n");
    return 1;
  }
  return fairrec::Run(config);
}
