// EXT-C ablation: selector *quality* (not just speed).
//
// Table II only times the two selectors; this ablation asks how close the
// heuristics get to the exact optimum value(G, D). The candidate pool is
// kept small enough (m <= 22) for the brute force to serve as ground truth.

#include <cstdio>
#include <vector>

#include "cf/recommender.h"
#include "core/brute_force.h"
#include "core/fairness_heuristic.h"
#include "core/greedy_selector.h"
#include "core/group_recommender.h"
#include "core/local_search.h"
#include "data/scenario.h"
#include "common/string_util.h"
#include "eval/table.h"
#include "sim/pairwise_engine.h"
#include "sim/peer_index.h"
#include "sim/rating_similarity.h"

using namespace fairrec;

int main() {
  ScenarioConfig config;
  config.num_patients = 300;
  config.num_documents = 200;
  config.num_clusters = 6;
  config.rating_density = 0.08;
  config.seed = 777;
  const Scenario scenario = std::move(BuildScenario(config)).ValueOrDie();

  // Thresholded peers only -> serve them from the engine-built sparse peer
  // graph (no per-member O(U) similarity scans).
  RatingSimilarityOptions sim_options;
  sim_options.shift_to_unit_interval = true;
  const PairwiseSimilarityEngine engine(&scenario.ratings, sim_options);
  PeerIndexOptions peer_options;
  peer_options.delta = 0.55;
  const PeerIndex peers =
      std::move(engine.BuildPeerIndex(peer_options)).ValueOrDie();
  RecommenderOptions rec_options;
  rec_options.peers.delta = 0.55;
  rec_options.top_k = 10;
  const Recommender recommender(&scenario.ratings, &peers, rec_options);
  const GroupRecommender group_rec(&recommender, {});

  const FairnessHeuristic algorithm1;
  const GreedyValueSelector greedy;
  const LocalSearchSelector local_search;
  const BruteForceSelector brute_force;

  AsciiTable table({"group kind", "|G|", "m", "z", "alg1 / opt", "greedy / opt",
                    "swap / opt", "alg1 fair", "greedy fair", "opt fair"});
  double worst_alg1 = 1.0;
  double worst_greedy = 1.0;
  double worst_swap = 1.0;
  for (const bool cohesive : {true, false}) {
    for (const int32_t g : {3, 5}) {
      for (const int32_t m : {14, 22}) {
        for (const int32_t z : {4, 8}) {
          const Group group = cohesive
                                  ? scenario.MakeCohesiveGroup(g, 100 + g + m)
                                  : scenario.MakeRandomGroup(g, 200 + g + m);
          const GroupContext full =
              std::move(group_rec.BuildContext(group)).ValueOrDie();
          const GroupContext pool = full.RestrictToTopM(m);
          const Selection a = std::move(algorithm1.Select(pool, z)).ValueOrDie();
          const Selection b = std::move(greedy.Select(pool, z)).ValueOrDie();
          const Selection c =
              std::move(local_search.Select(pool, z)).ValueOrDie();
          const Selection opt =
              std::move(brute_force.Select(pool, z)).ValueOrDie();
          const double ra = opt.score.value > 0
                                ? a.score.value / opt.score.value
                                : 1.0;
          const double rb = opt.score.value > 0
                                ? b.score.value / opt.score.value
                                : 1.0;
          const double rc = opt.score.value > 0
                                ? c.score.value / opt.score.value
                                : 1.0;
          worst_alg1 = std::min(worst_alg1, ra);
          worst_greedy = std::min(worst_greedy, rb);
          worst_swap = std::min(worst_swap, rc);
          table.AddRow({cohesive ? "cohesive" : "random", std::to_string(g),
                        std::to_string(m), std::to_string(z),
                        FormatDouble(ra, 4), FormatDouble(rb, 4),
                        FormatDouble(rc, 4),
                        FormatDouble(a.score.fairness, 2),
                        FormatDouble(b.score.fairness, 2),
                        FormatDouble(opt.score.fairness, 2)});
        }
      }
    }
  }
  std::printf("selector quality vs the exact optimum (value ratio)\n\n%s",
              table.ToString().c_str());
  std::printf("\nworst-case value ratio: Algorithm 1 %.4f, greedy %.4f, "
              "swap local search %.4f\n",
              worst_alg1, worst_greedy, worst_swap);
  std::printf("(Algorithm 1 trades a little relevance for its fairness "
              "guarantee; greedy chases value directly; swap search closes "
              "the remaining gap from the Algorithm 1 seed.)\n");
  return 0;
}
