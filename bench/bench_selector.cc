// Selector-path benchmark: every selector the SelectorRegistry knows,
// head-to-head on one synthetic health scenario, with a JSON record for the
// perf trajectory (the BENCH_selector.json companion of the similarity /
// peer-index / mapreduce benches).
//
// For each (group shape, |G|, m, z) configuration the run builds the group's
// candidate context once (sparse peer graph -> GroupRecommender ->
// RestrictToTopM), then times each registered selector over --reps
// repetitions. Group shapes come from data/scenario.h: cohesive and random
// (the original sweep) plus the fairness stress shapes — skewed (one
// minority member), coldstart (half the group are the corpus's thinnest
// raters), and adversarial (an even two-cluster taste split).
//
// Quality is value(G, D) relative to the brute-force optimum, plus the
// per-member fairness metrics of eval/fairness_metrics.h (min/max
// satisfaction ratio, satisfaction spread, mean pairwise envy, package
// feasibility). Value ratios, selections, and fairness metrics are
// corpus-deterministic, so all gates except --check-speedup-min are immune
// to runner noise (and that one has orders-of-magnitude headroom):
//
//   --check-value-ratio-min F    exit 3 when Algorithm 1's worst value ratio
//                                across configurations drops below F
//   --check-speedup-min F        exit 3 when brute/algorithm1 speedup at the
//                                largest configuration drops below F
//   --check-min-max-ratio-min F  exit 3 when Algorithm 1's worst min/max
//                                satisfaction ratio drops below F
//
// Exit status: 0 ok, 1 argument/IO errors, 2 if any heuristic beats the
// exhaustive optimum (impossible unless a selector is broken), 3 if a
// --check-* regression gate fails.
//
//   bench_selector [--patients N] [--documents N] [--density F] [--seed N]
//                  [--reps N] [--check-value-ratio-min F]
//                  [--check-speedup-min F] [--check-min-max-ratio-min F]
//                  [--out BENCH_selector.json]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/stopwatch.h"
#include "core/brute_force.h"
#include "core/group_recommender.h"
#include "core/selector_registry.h"
#include "data/scenario.h"
#include "eval/fairness_metrics.h"
#include "sim/pairwise_engine.h"
#include "sim/peer_index.h"
#include "sim/rating_similarity.h"

namespace fairrec {
namespace {

struct BenchConfig {
  int32_t num_patients = 300;
  int32_t num_documents = 200;
  double rating_density = 0.08;
  uint64_t seed = 777;
  int32_t reps = 10;
  double check_value_ratio_min = 0.0;
  double check_speedup_min = 0.0;
  double check_min_max_ratio_min = 0.0;
  std::string out_path = "BENCH_selector.json";
};

struct SelectorRun {
  std::string name;
  double seconds_per_select = 0.0;
  double value = 0.0;
  double fairness = 0.0;
  double relevance_sum = 0.0;
  double value_ratio = 1.0;  // vs the brute-force optimum
  // Per-member fairness of the selection (eval/fairness_metrics.h).
  double min_max_ratio = 1.0;
  double satisfaction_spread = 0.0;
  double envy_mean = 0.0;
  double package_feasibility = 0.0;
};

struct ConfigResult {
  std::string group_shape;
  int32_t group_size = 0;
  int32_t m = 0;
  int32_t z = 0;
  std::vector<SelectorRun> selectors;
};

double TimeSelect(const ItemSetSelector& selector, const GroupContext& pool,
                  int32_t z, int32_t reps, Selection* out) {
  // One warm-up select (also the returned Selection — selectors are
  // deterministic), then the timed repetitions.
  auto first = selector.Select(pool, z);
  if (!first.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", selector.name().c_str(),
                 first.status().ToString().c_str());
    std::exit(1);
  }
  *out = *first;
  Stopwatch clock;
  for (int32_t r = 0; r < reps; ++r) {
    auto result = selector.Select(pool, z);
    if (!result.ok()) std::exit(1);
  }
  return clock.ElapsedSeconds() / std::max<int32_t>(reps, 1);
}

SelectorRun MakeRun(const ItemSetSelector& selector, const GroupContext& pool,
                    const Selection& selection, double seconds,
                    const Selection& opt) {
  SelectorRun run;
  run.name = selector.name();
  run.seconds_per_select = seconds;
  run.value = selection.score.value;
  run.fairness = selection.score.fairness;
  run.relevance_sum = selection.score.relevance_sum;
  run.value_ratio = opt.score.value > 0.0
                        ? selection.score.value / opt.score.value
                        : 1.0;
  const FairnessReport report = ComputeFairnessReport(pool, selection);
  run.min_max_ratio = report.min_max_ratio;
  run.satisfaction_spread = report.satisfaction_spread;
  run.envy_mean = report.envy_mean;
  run.package_feasibility = report.package_feasibility;
  return run;
}

int Run(const BenchConfig& config) {
  ScenarioConfig scenario_config;
  scenario_config.num_patients = config.num_patients;
  scenario_config.num_documents = config.num_documents;
  scenario_config.num_clusters = 6;
  scenario_config.rating_density = config.rating_density;
  scenario_config.seed = config.seed;
  const Scenario scenario =
      std::move(BuildScenario(scenario_config)).ValueOrDie();
  std::printf("scenario: %d patients x %d documents, %lld ratings\n",
              config.num_patients, config.num_documents,
              static_cast<long long>(scenario.ratings.num_ratings()));

  // Serving-path context build: engine-built sparse peer graph.
  RatingSimilarityOptions sim_options;
  sim_options.shift_to_unit_interval = true;
  const PairwiseSimilarityEngine engine(&scenario.ratings, sim_options);
  PeerIndexOptions peer_options;
  peer_options.delta = 0.55;
  const PeerIndex peers =
      std::move(engine.BuildPeerIndex(peer_options)).ValueOrDie();
  RecommenderOptions rec_options;
  rec_options.peers.delta = 0.55;
  rec_options.top_k = 10;
  // Cold-start members rarely have peer evidence on every candidate; keeping
  // items any member can score is what makes the coldstart shape a fairness
  // stress instead of an empty candidate pool.
  GroupContextOptions context_options;
  context_options.top_k = rec_options.top_k;
  context_options.require_all_members = false;
  const GroupRecommender group_rec(&scenario.ratings, &peers, rec_options,
                                   context_options);

  // The zoo under test: every registered selector except the exhaustive
  // enumerator, which runs separately as ground truth.
  const SelectorRegistry& registry = SelectorRegistry::Global();
  std::vector<std::unique_ptr<ItemSetSelector>> zoo;
  for (const std::string& name : registry.Names()) {
    if (name == "brute-force") continue;
    zoo.push_back(std::move(registry.Create(name)).ValueOrDie());
  }
  const BruteForceSelector brute_force;

  const GroupShape shapes[] = {GroupShape::kCohesive, GroupShape::kRandom,
                               GroupShape::kSkewed, GroupShape::kColdStart,
                               GroupShape::kAdversarial};

  std::vector<ConfigResult> results;
  double worst_alg1_ratio = 1.0;
  double worst_alg1_min_max_ratio = 1.0;
  double largest_config_speedup = 0.0;
  uint64_t largest_config_combinations = 0;
  bool heuristic_beat_optimum = false;
  for (size_t shape_index = 0; shape_index < std::size(shapes); ++shape_index) {
    const GroupShape shape = shapes[shape_index];
    for (const int32_t g : {3, 5}) {
      for (const auto& [m, z] : {std::pair<int32_t, int32_t>{14, 4},
                                 std::pair<int32_t, int32_t>{20, 6}}) {
        const Group group = scenario.MakeGroup(
            shape, g, 100 * (shape_index + 1) + static_cast<uint64_t>(g + m));
        const GroupContext full =
            std::move(group_rec.BuildContext(group)).ValueOrDie();
        const GroupContext pool = full.RestrictToTopM(m);

        ConfigResult r;
        r.group_shape = GroupShapeName(shape);
        r.group_size = g;
        r.m = std::min(m, pool.num_candidates());
        r.z = z;

        Selection opt;
        const double brute_seconds =
            TimeSelect(brute_force, pool, z, std::max(1, config.reps / 5),
                       &opt);
        double alg1_seconds = 0.0;
        for (const std::unique_ptr<ItemSetSelector>& selector : zoo) {
          Selection selection;
          const double seconds =
              TimeSelect(*selector, pool, z, config.reps, &selection);
          if (selection.score.value > opt.score.value + 1e-9) {
            heuristic_beat_optimum = true;
          }
          const SelectorRun run =
              MakeRun(*selector, pool, selection, seconds, opt);
          if (run.name == "algorithm1") {
            alg1_seconds = seconds;
            worst_alg1_ratio = std::min(worst_alg1_ratio, run.value_ratio);
            worst_alg1_min_max_ratio =
                std::min(worst_alg1_min_max_ratio, run.min_max_ratio);
          }
          r.selectors.push_back(run);
        }
        r.selectors.push_back(
            MakeRun(brute_force, pool, opt, brute_seconds, opt));

        // "Largest configuration" = the one with the most brute-force
        // enumerations, independent of loop order.
        const uint64_t combinations =
            BruteForceSelector::CountCombinations(r.m, z);
        if (combinations >= largest_config_combinations) {
          largest_config_combinations = combinations;
          largest_config_speedup =
              brute_seconds / std::max(alg1_seconds, 1e-12);
        }
        const SelectorRun& alg1 = r.selectors.front();
        std::printf(
            "%-11s |G|=%d m=%2d z=%d: alg1 %8.1f us (ratio %.4f, min/max "
            "%.3f)  brute %10.1f us  [%zu selectors]\n",
            r.group_shape.c_str(), g, r.m, z, 1e6 * alg1.seconds_per_select,
            alg1.value_ratio, alg1.min_max_ratio, 1e6 * brute_seconds,
            r.selectors.size());
        results.push_back(std::move(r));
      }
    }
  }

  std::FILE* out = std::fopen(config.out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", config.out_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"selector\",\n"
               "  \"schema_version\": 2,\n"
               "  \"scenario\": {\n"
               "    \"num_patients\": %d,\n"
               "    \"num_documents\": %d,\n"
               "    \"num_ratings\": %lld,\n"
               "    \"rating_density\": %.6f,\n"
               "    \"seed\": %llu\n"
               "  },\n"
               "  \"options\": {\n"
               "    \"delta\": %.6f,\n"
               "    \"top_k\": %d,\n"
               "    \"reps\": %d\n"
               "  },\n",
               config.num_patients, config.num_documents,
               static_cast<long long>(scenario.ratings.num_ratings()),
               config.rating_density,
               static_cast<unsigned long long>(config.seed),
               rec_options.peers.delta, rec_options.top_k, config.reps);
  std::fprintf(out, "  \"configs\": [\n");
  for (size_t k = 0; k < results.size(); ++k) {
    const ConfigResult& r = results[k];
    std::fprintf(out,
                 "    {\n"
                 "      \"group_shape\": \"%s\",\n"
                 "      \"group_size\": %d,\n"
                 "      \"m\": %d,\n"
                 "      \"z\": %d,\n"
                 "      \"selectors\": [\n",
                 r.group_shape.c_str(), r.group_size, r.m, r.z);
    for (size_t s = 0; s < r.selectors.size(); ++s) {
      const SelectorRun& run = r.selectors[s];
      std::fprintf(out,
                   "        {\"name\": \"%s\", \"seconds_per_select\": %.9f, "
                   "\"value\": %.6f, \"fairness\": %.6f, "
                   "\"relevance_sum\": %.6f, \"value_ratio\": %.6f, "
                   "\"min_max_ratio\": %.6f, \"satisfaction_spread\": %.6f, "
                   "\"envy_mean\": %.6f, \"package_feasibility\": %.6f}%s\n",
                   run.name.c_str(), run.seconds_per_select, run.value,
                   run.fairness, run.relevance_sum, run.value_ratio,
                   run.min_max_ratio, run.satisfaction_spread, run.envy_mean,
                   run.package_feasibility,
                   s + 1 < r.selectors.size() ? "," : "");
    }
    std::fprintf(out, "      ]\n    }%s\n",
                 k + 1 < results.size() ? "," : "");
  }
  std::fprintf(out,
               "  ],\n"
               "  \"worst_algorithm1_value_ratio\": %.6f,\n"
               "  \"worst_algorithm1_min_max_ratio\": %.6f,\n"
               "  \"brute_over_algorithm1_speedup\": %.3f\n"
               "}\n",
               worst_alg1_ratio, worst_alg1_min_max_ratio,
               largest_config_speedup);
  std::fclose(out);
  std::printf("wrote %s\n", config.out_path.c_str());
  std::printf("worst Algorithm 1 value ratio: %.4f   min/max satisfaction "
              "ratio: %.4f   brute/alg1 speedup at the largest config: "
              "%.0fx\n",
              worst_alg1_ratio, worst_alg1_min_max_ratio,
              largest_config_speedup);

  if (heuristic_beat_optimum) {
    std::fprintf(stderr,
                 "FAIL: a heuristic exceeded the exhaustive optimum\n");
    return 2;
  }
  if (config.check_value_ratio_min > 0.0 &&
      worst_alg1_ratio < config.check_value_ratio_min) {
    std::fprintf(stderr,
                 "FAIL: Algorithm 1 value ratio %.4f below the gate %.4f\n",
                 worst_alg1_ratio, config.check_value_ratio_min);
    return 3;
  }
  if (config.check_speedup_min > 0.0 &&
      largest_config_speedup < config.check_speedup_min) {
    std::fprintf(stderr, "FAIL: brute/alg1 speedup %.1fx below the gate "
                         "%.1fx\n",
                 largest_config_speedup, config.check_speedup_min);
    return 3;
  }
  if (config.check_min_max_ratio_min > 0.0 &&
      worst_alg1_min_max_ratio < config.check_min_max_ratio_min) {
    std::fprintf(stderr,
                 "FAIL: Algorithm 1 min/max satisfaction ratio %.4f below "
                 "the gate %.4f\n",
                 worst_alg1_min_max_ratio, config.check_min_max_ratio_min);
    return 3;
  }
  return 0;
}

}  // namespace
}  // namespace fairrec

int main(int argc, char** argv) {
  fairrec::BenchConfig config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(1);
      }
      return argv[++i];
    };
    if (arg == "--patients") {
      config.num_patients = std::atoi(next());
    } else if (arg == "--documents") {
      config.num_documents = std::atoi(next());
    } else if (arg == "--density") {
      config.rating_density = std::atof(next());
    } else if (arg == "--seed") {
      config.seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--reps") {
      config.reps = std::atoi(next());
    } else if (arg == "--check-value-ratio-min") {
      config.check_value_ratio_min = std::atof(next());
    } else if (arg == "--check-speedup-min") {
      config.check_speedup_min = std::atof(next());
    } else if (arg == "--check-min-max-ratio-min") {
      config.check_min_max_ratio_min = std::atof(next());
    } else if (arg == "--out") {
      config.out_path = next();
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 1;
    }
  }
  if (config.num_patients < 10 || config.num_documents < 10 ||
      config.rating_density <= 0.0 || config.rating_density > 1.0 ||
      config.reps < 1) {
    std::fprintf(stderr, "invalid configuration\n");
    return 1;
  }
  return fairrec::Run(config);
}
