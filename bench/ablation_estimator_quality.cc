// EXT-E ablation: relevance estimator quality on held-out ratings.
//
// The paper picks the collaborative Eq. 1 estimator and names two
// alternatives: the content-based approach of §III-A ([16]) and, as future
// work (§VIII), machine-learning models. This bench trains all three on the
// same 80/20 split of a synthetic corpus and compares held-out RMSE / MAE /
// coverage, next to the constant baselines.
//
// Expected shape: CF and MF beat the mean baselines on accuracy; CF abstains
// on cells without peer evidence (coverage < 1) while MF always predicts;
// content-based sits between, limited by the title-text signal.

#include <cstdio>
#include <unordered_map>
#include <vector>

#include "cf/content_based.h"
#include "cf/peer_finder.h"
#include "cf/relevance_estimator.h"
#include "common/string_util.h"
#include "data/scenario.h"
#include "eval/accuracy.h"
#include "eval/table.h"
#include "mf/matrix_factorization.h"
#include "ratings/splits.h"
#include "sim/pairwise_engine.h"
#include "sim/peer_index.h"
#include "sim/rating_similarity.h"
#include "text/tfidf.h"

using namespace fairrec;

int main() {
  ScenarioConfig config;
  config.num_patients = 400;
  config.num_documents = 250;
  config.num_clusters = 6;
  config.rating_density = 0.1;
  config.seed = 515;
  const Scenario scenario = std::move(BuildScenario(config)).ValueOrDie();
  const TrainTestSplit split =
      std::move(RandomHoldoutSplit(scenario.ratings, 0.2, 77)).ValueOrDie();
  std::printf("held-out evaluation: %lld train / %zu test ratings\n\n",
              static_cast<long long>(split.train.num_ratings()),
              split.test.size());

  AsciiTable table({"estimator", "RMSE", "MAE", "coverage"});
  auto report = [&table](const char* name, const AccuracyStats& stats) {
    table.AddRow({name, FormatDouble(stats.rmse, 4), FormatDouble(stats.mae, 4),
                  FormatDouble(stats.coverage, 3)});
  };

  // ---- Constant baselines --------------------------------------------
  double train_sum = 0.0;
  for (const RatingTriple& t : split.train.ToTriples()) train_sum += t.value;
  const double global_mean =
      train_sum / static_cast<double>(split.train.num_ratings());
  report("global mean", EvaluatePredictor(split.test, [global_mean](UserId, ItemId) {
           return global_mean;
         }));
  report("user mean",
         EvaluatePredictor(split.test,
                           [&split, global_mean](UserId u, ItemId) {
                             return split.train.UserDegree(u) > 0
                                        ? split.train.UserMean(u)
                                        : global_mean;
                           }));

  // ---- Eq. 1 collaborative filtering ----------------------------------
  // Thresholded peers only -> the engine-built sparse peer graph over the
  // train split; PeerFinder runs in thin-filter mode over the stored lists.
  RatingSimilarityOptions sim_options;
  sim_options.shift_to_unit_interval = true;
  const PairwiseSimilarityEngine engine(&split.train, sim_options);
  PeerFinderOptions peer_options;
  peer_options.delta = 0.55;
  PeerIndexOptions index_options;
  index_options.delta = peer_options.delta;
  const PeerIndex peer_graph =
      std::move(engine.BuildPeerIndex(index_options)).ValueOrDie();
  const PeerFinder finder(&peer_graph, peer_options);
  const RelevanceEstimator estimator(&split.train);
  std::unordered_map<UserId, std::vector<Peer>> peer_cache;
  report("Eq. 1 CF (Pearson peers, delta=0.55)",
         EvaluatePredictor(split.test, [&](UserId u, ItemId i) {
           auto [it, inserted] = peer_cache.try_emplace(u);
           if (inserted) it->second = finder.FindPeers(u);
           return estimator.Estimate(it->second, i);
         }));

  // ---- Content-based (§III-A alternative) -----------------------------
  std::vector<std::string> titles;
  titles.reserve(scenario.corpus.documents.size());
  for (const Document& doc : scenario.corpus.documents) titles.push_back(doc.title);
  TfIdfVectorizer vectorizer;
  const auto vectors = std::move(vectorizer.FitTransform(titles)).ValueOrDie();
  const auto content =
      std::move(ContentBasedEstimator::Create(&split.train, vectors)).ValueOrDie();
  report("content-based kNN (title TF-IDF)",
         EvaluatePredictor(split.test, [&content](UserId u, ItemId i) {
           return content.Predict(u, i);
         }));

  // ---- Matrix factorization (§VIII future work) ------------------------
  MfConfig mf_config;
  mf_config.num_factors = 16;
  mf_config.num_epochs = 40;
  const auto model =
      std::move(MatrixFactorizationModel::Train(split.train, mf_config))
          .ValueOrDie();
  report("matrix factorization (16 factors)",
         EvaluatePredictor(split.test, [&model](UserId u, ItemId i) {
           return model.Predict(u, i);
         }));

  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\nexpected shape: personalized estimators beat the constant baselines;\n"
      "CF abstains where no peer rated the item (coverage < 1) while MF\n"
      "covers every cell — the trade the paper's future-work section opens.\n");
  return 0;
}
