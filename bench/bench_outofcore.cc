// Memory-budgeted out-of-core peer-graph build: prove that a corpus whose
// sufficient-statistics store exceeds the configured byte budget still
// builds — tiles spilling to checksummed blobs as the residency manager
// demands — and that the budget buys no accuracy: the assembled store and
// the finished PeerIndex are byte-identical to the unbounded in-memory
// engine. Two phases:
//
//   * cross-check (default 100k users) — the unbounded
//     PairwiseSimilarityEngine build is the reference; the budgeted
//     BuildMomentStoreOutOfCore + BuildPeerIndexFromStore run under a
//     budget a fraction of the store's real size. Parity is asserted
//     directly (store and index operator==) and the wall-time slowdown of
//     paying for disk is reported.
//   * big (default 1M users x 250k items, degree 5, 2 GiB budget — the
//     "laptop budget" shape) — no in-memory reference is built (that is
//     the point); the gates are peak resident bytes <= budget and a
//     deterministic index fingerprint for cross-run comparison.
//
//   bench_outofcore [--cross-users N] [--cross-items N] [--cross-degree N]
//                   [--cross-budget-mb N] [--big-users N] [--big-items N]
//                   [--big-degree N] [--big-budget-mb N] [--tile-users N]
//                   [--seed N] [--threads N] [--spill-dir DIR] [--skip-big]
//                   [--check-parity] [--check-peak-resident-max N]
//                   [--out BENCH_outofcore.json]
//
// --check-parity fails (exit 2) unless the cross-check store and index both
// match the engine bit-for-bit; --check-peak-resident-max N fails (exit 3)
// when any budgeted phase's peak resident bytes exceed N. Exit status: 0 ok,
// 1 argument/IO errors, 2 parity mismatch, 3 a --check-* gate failed.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/blob_io.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "ratings/rating_matrix.h"
#include "sim/moment_store.h"
#include "sim/pairwise_engine.h"
#include "sim/peer_index.h"
#include "sim/tile_residency.h"

namespace fairrec {
namespace {

struct BenchConfig {
  // Cross-check shape: small enough that the unbounded engine reference is
  // cheap, dense enough that the budget actually forces spilling.
  int32_t cross_users = 100000;
  int32_t cross_items = 25000;
  int32_t cross_degree = 8;
  size_t cross_budget_mb = 256;
  // The laptop-budget shape.
  int32_t big_users = 1000000;
  int32_t big_items = 250000;
  int32_t big_degree = 5;
  size_t big_budget_mb = 2048;
  int32_t tile_users = 2048;
  uint64_t seed = 20170417;
  size_t threads = 1;
  std::string spill_dir = "bench_outofcore_spill";
  bool skip_big = false;
  bool check_parity = false;
  /// Fail (exit 3) when any budgeted phase's peak resident bytes exceed
  /// this (0 = no gate).
  size_t check_peak_resident_max = 0;
  std::string out_path = "BENCH_outofcore.json";
};

/// Fixed-degree corpus: every user rates `degree` distinct items sampled
/// uniformly from the universe. Rejection sampling, not the O(items)
/// partial-Fisher-Yates of Rng::SampleWithoutReplacement — at a million
/// users the pool allocation would dominate the corpus, while degree <<
/// items makes collisions vanishingly rare.
RatingMatrix GenerateCorpus(int32_t num_users, int32_t num_items,
                            int32_t degree, uint64_t seed) {
  Rng rng(seed);
  RatingMatrixBuilder builder;
  builder.Reserve(num_users, num_items);
  std::vector<ItemId> picked;
  picked.reserve(static_cast<size_t>(degree));
  for (UserId u = 0; u < num_users; ++u) {
    picked.clear();
    while (picked.size() < static_cast<size_t>(degree)) {
      const auto item = static_cast<ItemId>(rng.UniformInt(0, num_items - 1));
      if (std::find(picked.begin(), picked.end(), item) != picked.end()) {
        continue;
      }
      picked.push_back(item);
      const auto status =
          builder.Add(u, item, static_cast<Rating>(rng.UniformInt(1, 5)));
      if (!status.ok()) {
        std::fprintf(stderr, "corpus generation failed: %s\n",
                     status.ToString().c_str());
        std::exit(1);
      }
    }
  }
  return std::move(builder.Build()).ValueOrDie();
}

/// Deterministic FNV-1a fingerprint of a PeerIndex — the cross-run identity
/// of the big phase, where no in-memory reference exists to operator==
/// against.
uint64_t FingerprintIndex(const PeerIndex& index) {
  uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      h ^= (v >> (8 * b)) & 0xffu;
      h *= 1099511628211ull;
    }
  };
  mix(static_cast<uint64_t>(index.num_users()));
  for (UserId u = 0; u < index.num_users(); ++u) {
    for (const Peer& p : index.PeersOf(u)) {
      mix(static_cast<uint64_t>(u));
      mix(static_cast<uint64_t>(p.user));
      uint64_t bits = 0;
      static_assert(sizeof(bits) == sizeof(p.similarity));
      std::memcpy(&bits, &p.similarity, sizeof(bits));
      mix(bits);
    }
  }
  return h;
}

struct PhaseResult {
  double corpus_seconds = 0.0;
  double build_seconds = 0.0;
  double finish_seconds = 0.0;
  size_t budget_bytes = 0;
  size_t store_bytes = 0;
  int64_t store_pairs = 0;
  int64_t index_entries = 0;
  uint64_t index_fingerprint = 0;
  OutOfCoreBuildStats build_stats;
  TileResidencyStats residency;
  PairwiseEngineStats sweep_stats;
};

/// Budgeted corpus -> store -> index, shared by both phases.
int RunBudgetedBuild(const RatingMatrix& matrix, const BenchConfig& config,
                     size_t budget_bytes, const std::string& spill_dir,
                     PhaseResult& r, OutOfCoreStore* keep_store) {
  OutOfCoreBuildOptions build_options;
  build_options.store.tile_users = config.tile_users;
  build_options.budget_bytes = budget_bytes;
  build_options.spill_dir = spill_dir;
  r.budget_bytes = budget_bytes;

  Stopwatch build_clock;
  auto store = BuildMomentStoreOutOfCore(matrix, build_options,
                                         &r.build_stats);
  r.build_seconds = build_clock.ElapsedSeconds();
  if (!store.ok()) {
    std::fprintf(stderr, "out-of-core build failed: %s\n",
                 store.status().ToString().c_str());
    return 1;
  }

  RatingSimilarityOptions sim_options;
  PeerIndexOptions peer_options;
  peer_options.delta = 0.1;
  peer_options.max_peers_per_user = 64;
  Stopwatch finish_clock;
  auto index =
      BuildPeerIndexFromStore(matrix, *store->store, store->residency.get(),
                              sim_options, peer_options, &r.sweep_stats);
  r.finish_seconds = finish_clock.ElapsedSeconds();
  if (!index.ok()) {
    std::fprintf(stderr, "store-backed peer sweep failed: %s\n",
                 index.status().ToString().c_str());
    return 1;
  }
  if (store->residency != nullptr) {
    r.residency = store->residency->stats();
  }
  r.store_pairs = store->store->num_pairs();
  r.index_entries = index->num_entries();
  r.index_fingerprint = FingerprintIndex(*index);
  if (keep_store != nullptr) *keep_store = std::move(*store);
  return 0;
}

void PrintResidency(const char* label, const PhaseResult& r) {
  std::printf(
      "%s: build %7.2f s (emit %.2f + assemble %.2f)  sweep %7.2f s  "
      "peak resident %7.1f MiB / budget %7.1f MiB  "
      "(%lld spill writes, %lld restores, %.1f MiB spilled)\n",
      label, r.build_seconds, r.build_stats.emit_seconds,
      r.build_stats.assemble_seconds, r.finish_seconds,
      static_cast<double>(r.residency.peak_resident_bytes) / (1024.0 * 1024.0),
      static_cast<double>(r.budget_bytes) / (1024.0 * 1024.0),
      static_cast<long long>(r.residency.spill_writes),
      static_cast<long long>(r.residency.restores),
      static_cast<double>(r.residency.spill_bytes_written) /
          (1024.0 * 1024.0));
}

void WriteShuffleJson(std::FILE* out, const MomentShuffleStats& s,
                      const char* indent) {
  std::fprintf(out,
               "%s\"shuffle\": {\n"
               "%s  \"records_in\": %lld,\n"
               "%s  \"groups_out\": %lld,\n"
               "%s  \"runs_spilled\": %lld,\n"
               "%s  \"spilled_bytes\": %llu,\n"
               "%s  \"peak_buffer_bytes\": %zu\n"
               "%s},\n",
               indent, indent, static_cast<long long>(s.records_in), indent,
               static_cast<long long>(s.groups_out), indent,
               static_cast<long long>(s.runs_spilled), indent,
               static_cast<unsigned long long>(s.spilled_bytes), indent,
               s.peak_buffer_bytes, indent);
}

void WriteResidencyJson(std::FILE* out, const TileResidencyStats& s,
                        const char* indent) {
  std::fprintf(out,
               "%s\"residency\": {\n"
               "%s  \"restores\": %lld,\n"
               "%s  \"spill_writes\": %lld,\n"
               "%s  \"evictions\": %lld,\n"
               "%s  \"spill_bytes_written\": %llu,\n"
               "%s  \"restore_bytes_read\": %llu,\n"
               "%s  \"peak_resident_bytes\": %zu\n"
               "%s},\n",
               indent, indent, static_cast<long long>(s.restores), indent,
               static_cast<long long>(s.spill_writes), indent,
               static_cast<long long>(s.evictions), indent,
               static_cast<unsigned long long>(s.spill_bytes_written), indent,
               static_cast<unsigned long long>(s.restore_bytes_read), indent,
               s.peak_resident_bytes, indent);
}

int Run(const BenchConfig& config) {
  if (!EnsureDirectory(config.spill_dir).ok()) {
    std::fprintf(stderr, "cannot create spill dir %s\n",
                 config.spill_dir.c_str());
    return 1;
  }

  // ---- Phase 1: cross-check against the unbounded engine. ----
  std::printf("cross-check corpus: %d users x %d items, degree %d...\n",
              config.cross_users, config.cross_items, config.cross_degree);
  Stopwatch corpus_clock;
  const RatingMatrix cross = GenerateCorpus(
      config.cross_users, config.cross_items, config.cross_degree,
      config.seed);
  const double cross_corpus_seconds = corpus_clock.ElapsedSeconds();

  PairwiseEngineOptions engine_options;
  engine_options.num_threads = config.threads;
  RatingSimilarityOptions sim_options;
  PeerIndexOptions peer_options;
  peer_options.delta = 0.1;
  peer_options.max_peers_per_user = 64;
  const PairwiseSimilarityEngine engine(&cross, sim_options, engine_options);

  Stopwatch engine_clock;
  MomentStoreOptions store_options;
  store_options.tile_users = config.tile_users;
  auto reference_store = engine.BuildMomentStore(store_options);
  const double engine_store_seconds = engine_clock.ElapsedSeconds();
  if (!reference_store.ok()) {
    std::fprintf(stderr, "engine store build failed: %s\n",
                 reference_store.status().ToString().c_str());
    return 1;
  }
  Stopwatch engine_index_clock;
  auto reference_index = engine.BuildPeerIndex(peer_options);
  const double engine_index_seconds = engine_index_clock.ElapsedSeconds();
  if (!reference_index.ok()) {
    std::fprintf(stderr, "engine index build failed: %s\n",
                 reference_index.status().ToString().c_str());
    return 1;
  }
  const size_t unbounded_bytes = reference_store->ResidentBytes();
  std::printf(
      "unbounded engine: store %.1f MiB in %.2f s, index %lld entries in "
      "%.2f s\n",
      static_cast<double>(unbounded_bytes) / (1024.0 * 1024.0),
      engine_store_seconds,
      static_cast<long long>(reference_index->num_entries()),
      engine_index_seconds);

  PhaseResult cross_result;
  cross_result.corpus_seconds = cross_corpus_seconds;
  cross_result.store_bytes = unbounded_bytes;
  OutOfCoreStore cross_store;
  if (const int rc = RunBudgetedBuild(cross, config,
                                      config.cross_budget_mb << 20,
                                      config.spill_dir + "/cross",
                                      cross_result, &cross_store);
      rc != 0) {
    return rc;
  }
  PrintResidency("budgeted 100k-shape", cross_result);

  // Parity: restore everything (comparison walks every tile) and compare
  // bit-for-bit against the unbounded engine's artifacts.
  bool store_parity = false;
  bool index_parity = false;
  if (cross_store.residency != nullptr) {
    const Status restored = cross_store.residency->RestoreAll();
    if (!restored.ok()) {
      std::fprintf(stderr, "restore-all failed: %s\n",
                   restored.ToString().c_str());
      return 1;
    }
  }
  store_parity = *cross_store.store == *reference_store;
  index_parity =
      cross_result.index_fingerprint == FingerprintIndex(*reference_index);
  const double unbounded_seconds = engine_store_seconds + engine_index_seconds;
  const double budgeted_seconds =
      cross_result.build_seconds + cross_result.finish_seconds;
  std::printf(
      "parity: store %s, index %s; budgeted/unbounded wall %.2fx "
      "(%.2f s vs %.2f s)\n",
      store_parity ? "ok" : "MISMATCH", index_parity ? "ok" : "MISMATCH",
      budgeted_seconds / unbounded_seconds, budgeted_seconds,
      unbounded_seconds);
  // Free the cross-check stores before the big phase claims its budget.
  cross_store = OutOfCoreStore{};
  reference_store = Result<MomentStore>(Status::NotFound("released"));

  // ---- Phase 2: the laptop-budget shape. ----
  PhaseResult big_result;
  if (!config.skip_big) {
    std::printf("big corpus: %d users x %d items, degree %d...\n",
                config.big_users, config.big_items, config.big_degree);
    Stopwatch big_corpus_clock;
    const RatingMatrix big = GenerateCorpus(config.big_users, config.big_items,
                                            config.big_degree,
                                            config.seed ^ 0xb16b16ull);
    big_result.corpus_seconds = big_corpus_clock.ElapsedSeconds();
    if (const int rc = RunBudgetedBuild(big, config,
                                        config.big_budget_mb << 20,
                                        config.spill_dir + "/big", big_result,
                                        nullptr);
        rc != 0) {
      return rc;
    }
    big_result.store_bytes =
        big_result.residency.peak_resident_bytes +
        big_result.residency.spilled_blob_bytes;
    PrintResidency("budgeted 1M-shape  ", big_result);
    std::printf("big index fingerprint 0x%016llx (%lld entries)\n",
                static_cast<unsigned long long>(big_result.index_fingerprint),
                static_cast<long long>(big_result.index_entries));
  }

  std::FILE* out = std::fopen(config.out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", config.out_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"outofcore\",\n"
               "  \"seed\": %llu,\n"
               "  \"threads\": %zu,\n"
               "  \"tile_users\": %d,\n"
               "  \"cross_check\": {\n"
               "    \"num_users\": %d,\n"
               "    \"num_items\": %d,\n"
               "    \"degree\": %d,\n"
               "    \"budget_bytes\": %zu,\n"
               "    \"unbounded_store_bytes\": %zu,\n"
               "    \"engine_store_seconds\": %.6f,\n"
               "    \"engine_index_seconds\": %.6f,\n"
               "    \"build_seconds\": %.6f,\n"
               "    \"emit_seconds\": %.6f,\n"
               "    \"assemble_seconds\": %.6f,\n"
               "    \"sweep_seconds\": %.6f,\n",
               static_cast<unsigned long long>(config.seed), config.threads,
               config.tile_users, config.cross_users, config.cross_items,
               config.cross_degree, cross_result.budget_bytes, unbounded_bytes,
               engine_store_seconds, engine_index_seconds,
               cross_result.build_seconds, cross_result.build_stats.emit_seconds,
               cross_result.build_stats.assemble_seconds,
               cross_result.finish_seconds);
  WriteShuffleJson(out, cross_result.build_stats.shuffle, "    ");
  WriteResidencyJson(out, cross_result.residency, "    ");
  std::fprintf(out,
               "    \"store_pairs\": %lld,\n"
               "    \"index_entries\": %lld,\n"
               "    \"index_fingerprint\": \"0x%016llx\",\n"
               "    \"store_parity_ok\": %s,\n"
               "    \"index_parity_ok\": %s,\n"
               "    \"budgeted_over_unbounded_wall\": %.4f\n"
               "  }",
               static_cast<long long>(cross_result.store_pairs),
               static_cast<long long>(cross_result.index_entries),
               static_cast<unsigned long long>(cross_result.index_fingerprint),
               store_parity ? "true" : "false",
               index_parity ? "true" : "false",
               budgeted_seconds / unbounded_seconds);
  if (config.skip_big) {
    std::fprintf(out, ",\n  \"big\": null\n}\n");
  } else {
    std::fprintf(out,
                 ",\n"
                 "  \"big\": {\n"
                 "    \"num_users\": %d,\n"
                 "    \"num_items\": %d,\n"
                 "    \"degree\": %d,\n"
                 "    \"budget_bytes\": %zu,\n"
                 "    \"corpus_seconds\": %.6f,\n"
                 "    \"build_seconds\": %.6f,\n"
                 "    \"emit_seconds\": %.6f,\n"
                 "    \"assemble_seconds\": %.6f,\n"
                 "    \"sweep_seconds\": %.6f,\n",
                 config.big_users, config.big_items, config.big_degree,
                 big_result.budget_bytes, big_result.corpus_seconds,
                 big_result.build_seconds, big_result.build_stats.emit_seconds,
                 big_result.build_stats.assemble_seconds,
                 big_result.finish_seconds);
    WriteShuffleJson(out, big_result.build_stats.shuffle, "    ");
    WriteResidencyJson(out, big_result.residency, "    ");
    std::fprintf(out,
                 "    \"store_pairs\": %lld,\n"
                 "    \"index_entries\": %lld,\n"
                 "    \"index_fingerprint\": \"0x%016llx\",\n"
                 "    \"peak_within_budget\": %s\n"
                 "  }\n}\n",
                 static_cast<long long>(big_result.store_pairs),
                 static_cast<long long>(big_result.index_entries),
                 static_cast<unsigned long long>(big_result.index_fingerprint),
                 big_result.residency.peak_resident_bytes <=
                         big_result.budget_bytes
                     ? "true"
                     : "false");
  }
  std::fclose(out);
  std::printf("wrote %s\n", config.out_path.c_str());

  if (config.check_parity && !(store_parity && index_parity)) {
    std::fprintf(stderr,
                 "FAIL: budgeted build disagrees with the unbounded engine "
                 "(store %s, index %s)\n",
                 store_parity ? "ok" : "mismatch",
                 index_parity ? "ok" : "mismatch");
    return 2;
  }
  if (config.check_peak_resident_max > 0) {
    size_t worst = cross_result.residency.peak_resident_bytes;
    if (!config.skip_big) {
      worst = std::max(worst, big_result.residency.peak_resident_bytes);
    }
    if (worst > config.check_peak_resident_max) {
      std::fprintf(stderr,
                   "FAIL: peak resident %zu bytes above the gate %zu bytes\n",
                   worst, config.check_peak_resident_max);
      return 3;
    }
  }
  return 0;
}

}  // namespace
}  // namespace fairrec

int main(int argc, char** argv) {
  fairrec::BenchConfig config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(1);
      }
      return argv[++i];
    };
    if (arg == "--cross-users") {
      config.cross_users = std::atoi(next());
    } else if (arg == "--cross-items") {
      config.cross_items = std::atoi(next());
    } else if (arg == "--cross-degree") {
      config.cross_degree = std::atoi(next());
    } else if (arg == "--cross-budget-mb") {
      config.cross_budget_mb = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--big-users") {
      config.big_users = std::atoi(next());
    } else if (arg == "--big-items") {
      config.big_items = std::atoi(next());
    } else if (arg == "--big-degree") {
      config.big_degree = std::atoi(next());
    } else if (arg == "--big-budget-mb") {
      config.big_budget_mb = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--tile-users") {
      config.tile_users = std::atoi(next());
    } else if (arg == "--seed") {
      config.seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--threads") {
      config.threads = static_cast<size_t>(std::atoi(next()));
    } else if (arg == "--spill-dir") {
      config.spill_dir = next();
    } else if (arg == "--skip-big") {
      config.skip_big = true;
    } else if (arg == "--check-parity") {
      config.check_parity = true;
    } else if (arg == "--check-peak-resident-max") {
      config.check_peak_resident_max = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--out") {
      config.out_path = next();
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 1;
    }
  }
  if (config.cross_users < 2 || config.cross_items < 1 ||
      config.cross_degree < 1 || config.cross_degree > config.cross_items ||
      config.cross_budget_mb == 0 || config.tile_users < 1 ||
      (!config.skip_big &&
       (config.big_users < 2 || config.big_items < 1 ||
        config.big_degree < 1 || config.big_degree > config.big_items ||
        config.big_budget_mb == 0))) {
    std::fprintf(stderr, "invalid configuration\n");
    return 1;
  }
  return fairrec::Run(config);
}
