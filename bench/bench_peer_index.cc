// Peer-graph build: the sparse serving path (engine -> PeerIndex, no U^2
// triangle ever allocated) vs the retired dense route (engine -> packed
// triangle -> thresholded per-user scan).
//
// Generates the same synthetic corpus as bench_similarity_precompute
// (defaults: 10k users, 2k items, ~1% density), builds the Def. 1 peer graph
// both ways, verifies the peer sets agree exactly, and writes timings plus
// peak similarity-storage bytes to a JSON file so the memory trajectory is
// tracked across PRs alongside the speed trajectory.
//
//   bench_peer_index [--users N] [--items N] [--density F] [--seed N]
//                    [--threads N] [--block N] [--delta F] [--max-peers N]
//                    [--skip-dense] [--check-speedup-min F]
//                    [--check-peak-bytes-max N]
//                    [--out BENCH_peer_index.json]
//
// Exit status: 0 on success, 1 on argument/IO errors, 2 if the two paths
// produce different peer sets, 3 if a --check-* regression gate fails.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "ratings/rating_matrix.h"
#include "sim/pairwise_engine.h"
#include "sim/peer_index.h"
#include "sim/rating_similarity.h"

namespace fairrec {
namespace {

struct BenchConfig {
  int32_t num_users = 10000;
  int32_t num_items = 2000;
  double density = 0.01;
  uint64_t seed = 20170417;
  size_t threads = 1;
  int32_t block_users = 512;
  double delta = 0.1;
  int32_t max_peers = 64;
  bool skip_dense = false;
  /// Fail (exit 3) when dense/sparse speedup drops below this (0 = no gate;
  /// ignored under --skip-dense, which leaves nothing to compare against).
  double check_speedup_min = 0.0;
  /// Fail (exit 3) when the sparse build's peak similarity-storage bytes
  /// exceed this (0 = no gate). The memory contract of the peer-graph
  /// subsystem: O(U * k) lists, never the packed triangle.
  size_t check_peak_bytes_max = 0;
  std::string out_path = "BENCH_peer_index.json";
};

RatingMatrix GenerateCorpus(const BenchConfig& config) {
  Rng rng(config.seed);
  RatingMatrixBuilder builder;
  builder.Reserve(config.num_users, config.num_items);
  for (UserId u = 0; u < config.num_users; ++u) {
    for (ItemId i = 0; i < config.num_items; ++i) {
      if (!rng.NextBool(config.density)) continue;
      const auto status =
          builder.Add(u, i, static_cast<Rating>(rng.UniformInt(1, 5)));
      if (!status.ok()) {
        std::fprintf(stderr, "corpus generation failed: %s\n",
                     status.ToString().c_str());
        std::exit(1);
      }
    }
  }
  return std::move(builder.Build()).ValueOrDie();
}

int Run(const BenchConfig& config) {
  std::printf("generating corpus: %d users x %d items at %.2f%% density...\n",
              config.num_users, config.num_items, 100.0 * config.density);
  const RatingMatrix matrix = GenerateCorpus(config);
  const size_t num_pairs =
      PairwiseSimilarityEngine::PackedTriangleSize(matrix.num_users());
  const size_t triangle_bytes = num_pairs * sizeof(double);
  std::printf("  %lld ratings (density %.3f%%), %zu user pairs\n",
              static_cast<long long>(matrix.num_ratings()),
              100.0 * matrix.Density(), num_pairs);

  RatingSimilarityOptions sim_options;  // paper defaults: global means, raw r
  PairwiseEngineOptions engine_options;
  engine_options.num_threads = config.threads;
  engine_options.block_users = config.block_users;
  const PairwiseSimilarityEngine engine(&matrix, sim_options, engine_options);

  PeerIndexOptions peer_options;
  peer_options.delta = config.delta;
  peer_options.max_peers_per_user = config.max_peers;

  // --- Sparse path: the engine emits the peer graph directly. ---
  Stopwatch sparse_clock;
  const auto sparse_result = engine.BuildPeerIndex(peer_options);
  const double sparse_seconds = sparse_clock.ElapsedSeconds();
  if (!sparse_result.ok()) {
    std::fprintf(stderr, "sparse build failed: %s\n",
                 sparse_result.status().ToString().c_str());
    return 1;
  }
  const PeerIndex& sparse = *sparse_result;
  // The accumulator tiles are the only other similarity-adjacent allocation
  // on this path; they are bounded by the block shape, not by U^2.
  const size_t workers =
      config.threads == 0 ? ThreadPool().num_threads() : config.threads;
  const int32_t block = std::min(config.block_users, config.num_users);
  const size_t tile_scratch_bytes =
      workers * static_cast<size_t>(block) * static_cast<size_t>(block) * 48;
  std::printf(
      "sparse (engine -> PeerIndex):   %8.3f s   peak %10.2f MiB  "
      "(index %.2f MiB, %lld entries)\n",
      sparse_seconds,
      static_cast<double>(sparse.build_peak_bytes()) / (1024.0 * 1024.0),
      static_cast<double>(sparse.StorageBytes()) / (1024.0 * 1024.0),
      static_cast<long long>(sparse.num_entries()));

  // --- Dense path (retired): packed triangle, then a thresholded scan. ---
  double dense_seconds = 0.0;
  size_t dense_peak_bytes = 0;
  size_t mismatches = 0;
  if (!config.skip_dense) {
    Stopwatch dense_clock;
    const auto triangle_result = engine.ComputeAll();
    if (!triangle_result.ok()) {
      std::fprintf(stderr, "dense build failed: %s\n",
                   triangle_result.status().ToString().c_str());
      return 1;
    }
    const std::vector<double>& triangle = *triangle_result;
    // PeerFinder-over-SimilarityMatrix equivalent: scan each user's row of
    // the triangle, keep sim >= delta, cap per user — reusing the same
    // builder so selection semantics are identical by construction.
    PeerIndex::Builder dense_builder(matrix.num_users(), peer_options);
    {
      ThreadPool pool(config.threads);
      const int32_t num_users = matrix.num_users();
      pool.ParallelFor(static_cast<size_t>(num_users), [&](size_t row) {
        const auto u = static_cast<UserId>(row);
        for (UserId v = u + 1; v < num_users; ++v) {
          const double sim =
              triangle[PairwiseSimilarityEngine::PackedTriangleIndex(
                  u, v, num_users)];
          if (sim >= config.delta) dense_builder.OfferPair(u, v, sim);
        }
      });
    }
    const PeerIndex dense = std::move(dense_builder).Build();
    dense_seconds = dense_clock.ElapsedSeconds();
    dense_peak_bytes = triangle_bytes + dense.build_peak_bytes();
    std::printf(
        "dense  (triangle -> scan):      %8.3f s   peak %10.2f MiB  "
        "(triangle alone %.2f MiB)\n",
        dense_seconds,
        static_cast<double>(dense_peak_bytes) / (1024.0 * 1024.0),
        static_cast<double>(triangle_bytes) / (1024.0 * 1024.0));

    // --- Parity: identical peer sets, including order. ---
    for (UserId u = 0; u < matrix.num_users(); ++u) {
      const auto a = sparse.PeersOf(u);
      const auto b = dense.PeersOf(u);
      if (a.size() != b.size()) {
        ++mismatches;
        continue;
      }
      for (size_t k = 0; k < a.size(); ++k) {
        if (a[k] != b[k]) {
          ++mismatches;
          break;
        }
      }
    }
    std::printf("parity: %zu mismatching users   speedup: %.2fx   "
                "bytes ratio: %.1fx\n",
                mismatches, dense_seconds / sparse_seconds,
                static_cast<double>(dense_peak_bytes) /
                    static_cast<double>(std::max<size_t>(
                        sparse.build_peak_bytes(), 1)));
  }

  std::FILE* out = std::fopen(config.out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", config.out_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"peer_index\",\n"
               "  \"corpus\": {\n"
               "    \"num_users\": %d,\n"
               "    \"num_items\": %d,\n"
               "    \"num_ratings\": %lld,\n"
               "    \"density\": %.6f,\n"
               "    \"seed\": %llu\n"
               "  },\n"
               "  \"options\": {\n"
               "    \"delta\": %.6f,\n"
               "    \"max_peers_per_user\": %d,\n"
               "    \"min_overlap\": %d,\n"
               "    \"intersection_means\": %s,\n"
               "    \"shift_to_unit_interval\": %s\n"
               "  },\n"
               "  \"threads\": %zu,\n"
               "  \"block_users\": %d,\n"
               "  \"sparse\": {\n"
               "    \"build_seconds\": %.6f,\n"
               "    \"peak_bytes\": %zu,\n"
               "    \"index_bytes\": %zu,\n"
               "    \"tile_scratch_bytes\": %zu,\n"
               "    \"entries\": %lld\n"
               "  },\n"
               "  \"dense\": {\n"
               "    \"measured\": %s,\n"
               "    \"build_seconds\": %.6f,\n"
               "    \"peak_bytes\": %zu,\n"
               "    \"triangle_bytes\": %zu\n"
               "  },\n"
               "  \"speedup\": %.3f,\n"
               "  \"peak_bytes_ratio\": %.3f,\n"
               "  \"mismatching_users\": %zu\n"
               "}\n",
               matrix.num_users(), matrix.num_items(),
               static_cast<long long>(matrix.num_ratings()), matrix.Density(),
               static_cast<unsigned long long>(config.seed), config.delta,
               config.max_peers, sim_options.min_overlap,
               sim_options.intersection_means ? "true" : "false",
               sim_options.shift_to_unit_interval ? "true" : "false",
               config.threads, config.block_users, sparse_seconds,
               sparse.build_peak_bytes(), sparse.StorageBytes(),
               tile_scratch_bytes,
               static_cast<long long>(sparse.num_entries()),
               config.skip_dense ? "false" : "true", dense_seconds,
               dense_peak_bytes, config.skip_dense ? 0 : triangle_bytes,
               config.skip_dense ? 0.0 : dense_seconds / sparse_seconds,
               config.skip_dense
                   ? 0.0
                   : static_cast<double>(dense_peak_bytes) /
                         static_cast<double>(
                             std::max<size_t>(sparse.build_peak_bytes(), 1)),
               mismatches);
  std::fclose(out);
  std::printf("wrote %s\n", config.out_path.c_str());

  if (!config.skip_dense && mismatches > 0) {
    std::fprintf(stderr, "FAIL: peer sets disagree for %zu users\n",
                 mismatches);
    return 2;
  }
  if (config.check_peak_bytes_max > 0 &&
      sparse.build_peak_bytes() > config.check_peak_bytes_max) {
    std::fprintf(stderr,
                 "FAIL: sparse peak %zu bytes above the gate %zu bytes\n",
                 sparse.build_peak_bytes(), config.check_peak_bytes_max);
    return 3;
  }
  if (!config.skip_dense && config.check_speedup_min > 0.0 &&
      dense_seconds / sparse_seconds < config.check_speedup_min) {
    std::fprintf(stderr, "FAIL: speedup %.2fx below the gate %.2fx\n",
                 dense_seconds / sparse_seconds, config.check_speedup_min);
    return 3;
  }
  return 0;
}

}  // namespace
}  // namespace fairrec

int main(int argc, char** argv) {
  fairrec::BenchConfig config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(1);
      }
      return argv[++i];
    };
    if (arg == "--users") {
      config.num_users = std::atoi(next());
    } else if (arg == "--items") {
      config.num_items = std::atoi(next());
    } else if (arg == "--density") {
      config.density = std::atof(next());
    } else if (arg == "--seed") {
      config.seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--threads") {
      config.threads = static_cast<size_t>(std::atoi(next()));
    } else if (arg == "--block") {
      config.block_users = std::atoi(next());
    } else if (arg == "--delta") {
      config.delta = std::atof(next());
    } else if (arg == "--max-peers") {
      config.max_peers = std::atoi(next());
    } else if (arg == "--skip-dense") {
      config.skip_dense = true;
    } else if (arg == "--check-speedup-min") {
      config.check_speedup_min = std::atof(next());
    } else if (arg == "--check-peak-bytes-max") {
      config.check_peak_bytes_max = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--out") {
      config.out_path = next();
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 1;
    }
  }
  if (config.num_users < 2 || config.num_items < 1 || config.density <= 0.0 ||
      config.density > 1.0 || config.max_peers < 0) {
    std::fprintf(stderr, "invalid configuration\n");
    return 1;
  }
  return fairrec::Run(config);
}
