// EXT-B ablation: the two Def. 2 aggregation designs, measured.
//
// "Strong user preferences act as a veto" (minimum) vs "satisfying the
// majority" (average): the designs pick different plain top-k sets, so we
// compare those sets via per-member satisfaction. Expected shape: min
// aggregation protects the least-served member (higher min satisfaction) on
// heterogeneous groups, average maximizes the group total (higher mean).
// The fairness-aware selector (Algorithm 1) is shown alongside: its picks
// come from the members' A_u lists, so it lifts min satisfaction under
// *either* design — fairness and least-misery are complementary here.

#include <cstdio>
#include <vector>

#include "cf/recommender.h"
#include "cf/top_k.h"
#include "common/string_util.h"
#include "core/fairness_heuristic.h"
#include "core/group_recommender.h"
#include "data/scenario.h"
#include "eval/metrics.h"
#include "eval/table.h"
#include "sim/pairwise_engine.h"
#include "sim/peer_index.h"
#include "sim/rating_similarity.h"

using namespace fairrec;

int main() {
  ScenarioConfig config;
  config.num_patients = 300;
  config.num_documents = 200;
  config.num_clusters = 6;
  config.rating_density = 0.08;
  config.seed = 606;
  const Scenario scenario = std::move(BuildScenario(config)).ValueOrDie();

  // Thresholded peers only -> serve them from the engine-built sparse peer
  // graph (no per-member O(U) similarity scans).
  RatingSimilarityOptions sim_options;
  sim_options.shift_to_unit_interval = true;
  const PairwiseSimilarityEngine engine(&scenario.ratings, sim_options);
  PeerIndexOptions peer_options;
  peer_options.delta = 0.55;
  const PeerIndex peers =
      std::move(engine.BuildPeerIndex(peer_options)).ValueOrDie();
  RecommenderOptions rec_options;
  rec_options.peers.delta = 0.55;
  rec_options.top_k = 10;
  const Recommender recommender(&scenario.ratings, &peers, rec_options);

  const FairnessHeuristic heuristic;
  const int32_t z = 6;
  const int trials = 8;

  AsciiTable table({"group kind", "|G|", "selection", "Aggr", "min sat",
                    "mean sat", "fairness"});
  for (const bool cohesive : {true, false}) {
    for (const int32_t g : {3, 6}) {
      for (const auto kind :
           {AggregationKind::kMinimum, AggregationKind::kAverage}) {
        double plain_min = 0.0;
        double plain_mean = 0.0;
        double plain_fair = 0.0;
        double fair_min = 0.0;
        double fair_mean = 0.0;
        double fair_fair = 0.0;
        for (int t = 0; t < trials; ++t) {
          const Group group = cohesive
                                  ? scenario.MakeCohesiveGroup(g, 300 + t)
                                  : scenario.MakeRandomGroup(g, 400 + t);
          GroupContextOptions options;
          options.aggregation = kind;
          options.top_k = 10;
          const GroupRecommender group_rec(&recommender, options);
          const GroupContext ctx =
              std::move(group_rec.BuildContext(group)).ValueOrDie();

          // Plain Def. 2 group top-z: the aggregation picks the set.
          std::vector<ScoredItem> scored;
          for (const GroupCandidate& c : ctx.candidates()) {
            scored.push_back({c.item, c.group_relevance});
          }
          std::vector<ItemId> plain_items;
          for (const ScoredItem& s : SelectTopK(scored, z)) {
            plain_items.push_back(s.item);
          }
          const SatisfactionStats ps = GroupSatisfactionByItems(ctx, plain_items);
          plain_min += ps.min;
          plain_mean += ps.mean;
          plain_fair += EvaluateSelectionByItems(ctx, plain_items).fairness;

          // Fairness-aware top-z (Algorithm 1) under the same design.
          const Selection s = std::move(heuristic.Select(ctx, z)).ValueOrDie();
          const SatisfactionStats fs = GroupSatisfactionByItems(ctx, s.items);
          fair_min += fs.min;
          fair_mean += fs.mean;
          fair_fair += s.score.fairness;
        }
        const std::string kind_name(AggregationKindToString(kind));
        table.AddRow({cohesive ? "cohesive" : "random", std::to_string(g),
                      "plain top-z", kind_name,
                      FormatDouble(plain_min / trials, 3),
                      FormatDouble(plain_mean / trials, 3),
                      FormatDouble(plain_fair / trials, 2)});
        table.AddRow({cohesive ? "cohesive" : "random", std::to_string(g),
                      "algorithm 1", kind_name,
                      FormatDouble(fair_min / trials, 3),
                      FormatDouble(fair_mean / trials, 3),
                      FormatDouble(fair_fair / trials, 2)});
      }
    }
  }
  std::printf("Def. 2 aggregation designs x selection policy, averaged over "
              "%d groups each (z=%d)\n\n%s",
              trials, z, table.ToString().c_str());
  std::printf(
      "\nexpected shape: plain top-z loses fairness as groups grow larger and\n"
      "more heterogeneous (random |G|=6 is the worst cell), while Algorithm 1\n"
      "holds fairness at 1.0 under either Def. 2 design (Prop. 1) and lifts\n"
      "the worst member's satisfaction where plain top-z under-serves them.\n");
  return 0;
}
