// fairrec_cli — command-line front end for the FairRec library.
//
// Lets a downstream user run the paper's pipeline on their own
// `user,item,rating` CSV (or a generated synthetic one) without writing C++:
//
//   fairrec_cli generate  --out ratings.csv [--users 400] [--docs 200] [--seed 7]
//   fairrec_cli stats     --ratings ratings.csv
//   fairrec_cli recommend --ratings ratings.csv --user 3 [--k 10] [--delta 0.55]
//   fairrec_cli group     --ratings ratings.csv --members 1,2,3 --z 6
//                         [--selector NAME[:k=v,...]]
//                         [--aggregation min|avg|max|median] [--k 10]
//                         [--delta 0.55] [--max-memory-mb 256 --spill-dir /tmp/x]
//   fairrec_cli list-selectors
//
// `--selector` accepts any SelectorRegistry name or alias, optionally with a
// `:key=value,...` option tail (e.g. `local-search:max_swaps=50`); the
// list-selectors command prints the whole zoo with its options.
//
// Distributed peer-graph build (src/dist): `build-worker` computes one user
// partition's PartialPeerArtifact (the subprocess form of the in-process
// worker — one invocation per partition, any order, any machine sharing the
// artifact directory), `merge-partials` unions a directory of partials into
// the peer graph that is byte-identical to the single-process build, and
// `dist-build` runs the whole failure-aware coordinator in one process:
//
//   fairrec_cli build-worker   --ratings FILE --partition I --num-partitions N
//                              --dir DIR [--attempt N] [--delta X]
//                              [--max-peers N] [--min-overlap N]
//   fairrec_cli merge-partials --dir DIR [--out FILE]
//   fairrec_cli dist-build     --ratings FILE --partitions N --dir DIR
//                              [--workers N] [--timeout-ms N] [--max-attempts N]
//                              [--out FILE]
//
// Exit status: 0 on success, 1 on usage/runtime errors.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cf/recommender.h"
#include "common/blob_io.h"
#include "common/string_util.h"
#include "core/group_recommender.h"
#include "dist/coordinator.h"
#include "dist/partial_artifact.h"
#include "core/selector_registry.h"
#include "data/scenario.h"
#include "eval/table.h"
#include "ratings/dataset.h"
#include "sim/pairwise_engine.h"
#include "sim/peer_index.h"
#include "sim/rating_similarity.h"
#include "sim/tile_residency.h"

namespace fairrec {
namespace {

/// Minimal --flag=value / --flag value parser.
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 2; i < argc; ++i) {
      std::string token = argv[i];
      if (!StartsWith(token, "--")) continue;
      token = token.substr(2);
      const size_t eq = token.find('=');
      if (eq != std::string::npos) {
        values_[token.substr(0, eq)] = token.substr(eq + 1);
      } else if (i + 1 < argc && !StartsWith(argv[i + 1], "--")) {
        values_[token] = argv[++i];
      } else {
        values_[token] = "true";
      }
    }
  }

  std::string Get(const std::string& key, const std::string& fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  int64_t GetInt(const std::string& key, int64_t fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::strtoll(it->second.c_str(), nullptr, 10);
  }
  double GetDouble(const std::string& key, double fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::strtod(it->second.c_str(), nullptr);
  }
  bool Has(const std::string& key) const { return values_.contains(key); }

 private:
  std::map<std::string, std::string> values_;
};

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  fairrec_cli generate  --out FILE [--users N] [--docs N] [--seed N]\n"
               "  fairrec_cli stats     --ratings FILE\n"
               "  fairrec_cli recommend --ratings FILE --user ID [--k N] [--delta X]\n"
               "  fairrec_cli group     --ratings FILE --members a,b,c --z N\n"
               "                        [--selector NAME[:k=v,...]]\n"
               "                        [--aggregation min|avg|max|median] [--k N] [--delta X]\n"
               "                        [--any-member] [--max-memory-mb N --spill-dir DIR]\n"
               "  fairrec_cli list-selectors\n"
               "  fairrec_cli build-worker   --ratings FILE --partition I "
               "--num-partitions N --dir DIR\n"
               "                             [--attempt N] [--delta X] "
               "[--max-peers N] [--min-overlap N]\n"
               "  fairrec_cli merge-partials --dir DIR [--out FILE]\n"
               "  fairrec_cli dist-build     --ratings FILE --partitions N "
               "--dir DIR [--workers N]\n"
               "                             [--timeout-ms N] "
               "[--max-attempts N] [--out FILE]\n");
  return 1;
}

int RunListSelectors() {
  AsciiTable table({"name", "aliases", "objective", "options"});
  for (const SelectorInfo& info : SelectorRegistry::Global().List()) {
    table.AddRow({info.name, Join(info.aliases, ","),
                  info.objective, Join(info.option_keys, "; ")});
  }
  std::printf("%s", table.ToString().c_str());
  return 0;
}

Result<Dataset> LoadRatings(const Args& args) {
  const std::string path = args.Get("ratings", "");
  if (path.empty()) return Status::InvalidArgument("--ratings is required");
  return LoadDatasetCsv(path);
}

/// The CLI's serving artifact: the sparse Def. 1 peer graph, emitted by the
/// sufficient-statistics engine without ever materializing the dense U^2
/// similarity triangle. A non-zero `budget_bytes` routes the build through
/// the out-of-core path instead (sim/tile_residency.h): the moment store is
/// assembled via the spilling shuffle and swept under the byte budget, with
/// overflow tiles paged to `spill_dir` — same artifact, bounded memory.
Result<PeerIndex> BuildPeerGraph(const RatingMatrix& matrix, double delta,
                                 size_t budget_bytes,
                                 const std::string& spill_dir) {
  RatingSimilarityOptions sim_options;
  sim_options.shift_to_unit_interval = true;
  PeerIndexOptions peer_options;
  peer_options.delta = delta;
  if (budget_bytes == 0) {
    const PairwiseSimilarityEngine engine(&matrix, sim_options);
    return engine.BuildPeerIndex(peer_options);
  }
  OutOfCoreBuildOptions build_options;
  build_options.budget_bytes = budget_bytes;
  build_options.spill_dir = spill_dir;
  FAIRREC_ASSIGN_OR_RETURN(OutOfCoreStore store,
                           BuildMomentStoreOutOfCore(matrix, build_options));
  return BuildPeerIndexFromStore(matrix, *store.store, store.residency.get(),
                                 sim_options, peer_options);
}

int RunGenerate(const Args& args) {
  const std::string out = args.Get("out", "");
  if (out.empty()) {
    std::fprintf(stderr, "error: --out is required\n");
    return 1;
  }
  ScenarioConfig config;
  config.num_patients = static_cast<int32_t>(args.GetInt("users", 400));
  config.num_documents = static_cast<int32_t>(args.GetInt("docs", 200));
  config.seed = static_cast<uint64_t>(args.GetInt("seed", 7));
  config.rating_density = args.GetDouble("density", 0.08);
  const auto scenario = BuildScenario(config);
  if (!scenario.ok()) {
    std::fprintf(stderr, "error: %s\n", scenario.status().ToString().c_str());
    return 1;
  }
  Dataset dataset;
  dataset.matrix = scenario->ratings;
  const Status st = SaveDatasetCsv(dataset, out);
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("wrote %lld ratings (%d users x %d items) to %s\n",
              static_cast<long long>(dataset.matrix.num_ratings()),
              dataset.matrix.num_users(), dataset.matrix.num_items(),
              out.c_str());
  return 0;
}

int RunStats(const Args& args) {
  const auto dataset = LoadRatings(args);
  if (!dataset.ok()) {
    std::fprintf(stderr, "error: %s\n", dataset.status().ToString().c_str());
    return 1;
  }
  const DatasetStats stats = dataset->ComputeStats();
  AsciiTable table({"metric", "value"});
  table.AddRow({"users", std::to_string(stats.num_users)});
  table.AddRow({"items", std::to_string(stats.num_items)});
  table.AddRow({"ratings", std::to_string(stats.num_ratings)});
  table.AddRow({"density", FormatDouble(stats.density * 100.0, 2) + "%"});
  table.AddRow({"mean rating", FormatDouble(stats.mean_rating, 3)});
  for (int s = 1; s <= 5; ++s) {
    table.AddRow({"ratings = " + std::to_string(s),
                  std::to_string(stats.histogram[static_cast<size_t>(s - 1)])});
  }
  table.AddRow({"user degree (min/mean/max)",
                std::to_string(stats.min_user_degree) + " / " +
                    FormatDouble(stats.mean_user_degree, 1) + " / " +
                    std::to_string(stats.max_user_degree)});
  std::printf("%s", table.ToString().c_str());
  return 0;
}

int RunRecommend(const Args& args) {
  const auto dataset = LoadRatings(args);
  if (!dataset.ok()) {
    std::fprintf(stderr, "error: %s\n", dataset.status().ToString().c_str());
    return 1;
  }
  if (!args.Has("user")) {
    std::fprintf(stderr, "error: --user is required\n");
    return 1;
  }
  RecommenderOptions options;
  options.peers.delta = args.GetDouble("delta", 0.55);
  options.top_k = static_cast<int32_t>(args.GetInt("k", 10));
  // One user, one query: the O(U) scan of this user's similarity row beats
  // building the whole population's peer graph. The group command amortizes
  // the sparse build across members; this command cannot.
  RatingSimilarityOptions sim_options;
  sim_options.shift_to_unit_interval = true;
  const RatingSimilarity similarity(&dataset->matrix, sim_options);
  const Recommender recommender =
      Recommender::ForSimilarityScan(&dataset->matrix, &similarity, options);
  const auto recs =
      recommender.RecommendForUser(static_cast<UserId>(args.GetInt("user", -1)));
  if (!recs.ok()) {
    std::fprintf(stderr, "error: %s\n", recs.status().ToString().c_str());
    return 1;
  }
  AsciiTable table({"rank", "item", "relevance (Eq. 1)"});
  for (size_t i = 0; i < recs->size(); ++i) {
    table.AddRow({std::to_string(i + 1), std::to_string((*recs)[i].item),
                  FormatDouble((*recs)[i].score, 3)});
  }
  std::printf("%s", table.ToString().c_str());
  return 0;
}

int RunGroup(const Args& args) {
  const auto dataset = LoadRatings(args);
  if (!dataset.ok()) {
    std::fprintf(stderr, "error: %s\n", dataset.status().ToString().c_str());
    return 1;
  }
  Group group;
  for (const std::string& token : Split(args.Get("members", ""), ',')) {
    if (!Trim(token).empty()) {
      group.push_back(static_cast<UserId>(std::strtol(token.c_str(), nullptr, 10)));
    }
  }
  if (group.empty()) {
    std::fprintf(stderr, "error: --members is required (comma-separated ids)\n");
    return 1;
  }
  const auto z = static_cast<int32_t>(args.GetInt("z", 6));

  RecommenderOptions rec_options;
  rec_options.peers.delta = args.GetDouble("delta", 0.55);
  rec_options.top_k = static_cast<int32_t>(args.GetInt("k", 10));
  // --max-memory-mb caps the peer-graph build's resident moment bytes (the
  // laptop-budget knob); overflow tiles page to --spill-dir.
  const int64_t max_memory_mb = args.GetInt("max-memory-mb", 0);
  const std::string spill_dir = args.Get("spill-dir", "");
  if (max_memory_mb < 0) {
    std::fprintf(stderr, "error: --max-memory-mb must be >= 0\n");
    return 1;
  }
  if (max_memory_mb > 0 && spill_dir.empty()) {
    std::fprintf(stderr, "error: --max-memory-mb requires --spill-dir\n");
    return 1;
  }
  const auto peers =
      BuildPeerGraph(dataset->matrix, rec_options.peers.delta,
                     static_cast<size_t>(max_memory_mb) << 20, spill_dir);
  if (!peers.ok()) {
    std::fprintf(stderr, "error: %s\n", peers.status().ToString().c_str());
    return 1;
  }
  const Recommender recommender(&dataset->matrix, &*peers, rec_options);

  GroupContextOptions ctx_options;
  ctx_options.top_k = rec_options.top_k;
  // On sparse data, requiring every member to have peer evidence for an item
  // can empty the candidate pool; --any-member keeps items any member can
  // score (aggregation then runs over the defined subset).
  ctx_options.require_all_members = !args.Has("any-member");
  const std::string aggregation = args.Get("aggregation", "avg");
  if (aggregation == "min") {
    ctx_options.aggregation = AggregationKind::kMinimum;
  } else if (aggregation == "avg") {
    ctx_options.aggregation = AggregationKind::kAverage;
  } else if (aggregation == "max") {
    ctx_options.aggregation = AggregationKind::kMaximum;
  } else if (aggregation == "median") {
    ctx_options.aggregation = AggregationKind::kMedian;
  } else {
    std::fprintf(stderr, "error: unknown --aggregation '%s'\n",
                 aggregation.c_str());
    return 1;
  }

  std::string selector_spec = args.Get("selector", "algorithm1");
  if (selector_spec.find(':') == std::string::npos) {
    const auto info = SelectorRegistry::Global().Describe(selector_spec);
    if (info.ok() && info->name == "brute-force") {
      // Refuse multi-hour requests unless the user set their own cap.
      selector_spec += ":max_combinations=200000000";
    }
  }
  auto selector_or = SelectorRegistry::Global().CreateFromSpec(selector_spec);
  if (!selector_or.ok()) {
    std::fprintf(stderr,
                 "error: %s\n(run `fairrec_cli list-selectors` for the "
                 "available selectors and options)\n",
                 selector_or.status().ToString().c_str());
    return 1;
  }
  const std::unique_ptr<ItemSetSelector> selector =
      std::move(selector_or).value();

  const GroupRecommender group_rec(&recommender, ctx_options);
  const auto selection = group_rec.RecommendFair(group, z, *selector);
  if (!selection.ok()) {
    std::fprintf(stderr, "error: %s\n", selection.status().ToString().c_str());
    return 1;
  }
  if (selection->items.empty()) {
    std::fprintf(stderr,
                 "no recommendable items: no candidate had peer evidence for "
                 "%s. Try a lower --delta or --any-member.\n",
                 ctx_options.require_all_members ? "every member"
                                                 : "any member");
    return 1;
  }
  AsciiTable table({"rank", "item"});
  for (size_t i = 0; i < selection->items.size(); ++i) {
    table.AddRow({std::to_string(i + 1), std::to_string(selection->items[i])});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("selector=%s aggregation=%s fairness=%.3f relevance_sum=%.3f "
              "value=%.3f\n",
              selector->name().c_str(), aggregation.c_str(),
              selection->score.fairness, selection->score.relevance_sum,
              selection->score.value);

  AsciiTable member_table({"member", "satisfied", "relevance", "satisfaction"});
  double sat_min = 1.0, sat_max = 0.0;
  for (size_t m = 0; m < selection->members.size(); ++m) {
    const MemberBreakdown& row = selection->members[m];
    member_table.AddRow(
        {std::to_string(group[m]), row.satisfied ? "yes" : "no",
         FormatDouble(row.relevance_sum, 3),
         row.satisfaction < 0.0 ? "n/a" : FormatDouble(row.satisfaction, 3)});
    if (row.satisfaction >= 0.0) {
      sat_min = std::min(sat_min, row.satisfaction);
      sat_max = std::max(sat_max, row.satisfaction);
    }
  }
  std::printf("%s", member_table.ToString().c_str());
  std::printf("satisfaction min/max ratio = %.3f\n",
              sat_max > 0.0 ? sat_min / sat_max : 1.0);
  return 0;
}

/// Shared build knobs of the dist commands. Defaults mirror the `group`
/// command's peer-graph build (shifted similarities, delta 0.55) so a
/// distributed build serves the same graph the serial CLI path would.
DistWorkerOptions DistOptionsFromArgs(const Args& args) {
  DistWorkerOptions options;
  options.similarity.shift_to_unit_interval = true;
  options.similarity.min_overlap =
      static_cast<int32_t>(args.GetInt("min-overlap", 1));
  options.peers.delta = args.GetDouble("delta", 0.55);
  options.peers.max_peers_per_user =
      static_cast<int32_t>(args.GetInt("max-peers", 0));
  return options;
}

/// Commits a merged peer graph as a single-slice artifact (partition 0 of 1),
/// so `--out` files are themselves admissible inputs to merge-partials.
int WriteMergedArtifact(const PeerIndex& index,
                        const PartialArtifactManifest& base,
                        const std::string& out) {
  PartialPeerArtifact merged;
  merged.manifest = base;
  merged.manifest.partition = MakePartition(0, 1, index.num_users());
  merged.manifest.attempt = 0;
  merged.manifest.peers = index.options();
  merged.rows = index;
  const Status st = merged.WriteFile(out);
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("wrote merged peer graph to %s\n", out.c_str());
  return 0;
}

int RunBuildWorker(const Args& args) {
  const auto dataset = LoadRatings(args);
  if (!dataset.ok()) {
    std::fprintf(stderr, "error: %s\n", dataset.status().ToString().c_str());
    return 1;
  }
  const std::string dir = args.Get("dir", "");
  if (dir.empty() || !args.Has("partition") || !args.Has("num-partitions")) {
    std::fprintf(stderr,
                 "error: --dir, --partition, and --num-partitions are "
                 "required\n");
    return 1;
  }
  const auto index = static_cast<int32_t>(args.GetInt("partition", -1));
  const auto count = static_cast<int32_t>(args.GetInt("num-partitions", 0));
  const auto attempt = static_cast<int32_t>(args.GetInt("attempt", 0));
  if (index < 0 || count < 1 || index >= count) {
    std::fprintf(stderr, "error: need 0 <= --partition < --num-partitions\n");
    return 1;
  }
  const Status dir_st = EnsureDirectory(dir);
  if (!dir_st.ok()) {
    std::fprintf(stderr, "error: %s\n", dir_st.ToString().c_str());
    return 1;
  }
  const auto artifact = BuildPartialPeerArtifact(
      dataset->matrix, MakePartition(index, count, dataset->matrix.num_users()),
      attempt, DistOptionsFromArgs(args));
  if (!artifact.ok()) {
    std::fprintf(stderr, "error: %s\n", artifact.status().ToString().c_str());
    return 1;
  }
  const std::string path = dir + "/" + PartialArtifactFileName(index, attempt);
  const Status st = artifact->WriteFile(path);
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("partition %d/%d attempt %d: users [%d, %d), %lld peer entries "
              "-> %s\n",
              index, count, attempt, artifact->manifest.partition.user_first,
              artifact->manifest.partition.user_last,
              static_cast<long long>(artifact->rows.num_entries()),
              path.c_str());
  return 0;
}

int RunMergePartials(const Args& args) {
  const std::string dir = args.Get("dir", "");
  if (dir.empty()) {
    std::fprintf(stderr, "error: --dir is required\n");
    return 1;
  }
  const auto paths = ListPartialArtifactFiles(dir);
  if (!paths.ok()) {
    std::fprintf(stderr, "error: %s\n", paths.status().ToString().c_str());
    return 1;
  }
  if (paths->empty()) {
    std::fprintf(stderr, "error: no partial artifacts under %s\n", dir.c_str());
    return 1;
  }
  std::vector<PartialPeerArtifact> partials;
  partials.reserve(paths->size());
  for (const std::string& path : *paths) {
    auto artifact = PartialPeerArtifact::ReadFile(path);
    if (!artifact.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   artifact.status().ToString().c_str());
      return 1;
    }
    partials.push_back(std::move(*artifact));
  }
  const auto merged = MergePartialArtifacts(partials);
  if (!merged.ok()) {
    std::fprintf(stderr, "error: %s\n", merged.status().ToString().c_str());
    return 1;
  }
  AsciiTable table({"metric", "value"});
  table.AddRow({"partials merged", std::to_string(partials.size())});
  table.AddRow(
      {"partitions", std::to_string(partials.front().manifest.partition.count)});
  table.AddRow({"users", std::to_string(merged->num_users())});
  table.AddRow({"peer entries", std::to_string(merged->num_entries())});
  std::printf("%s", table.ToString().c_str());
  const std::string out = args.Get("out", "");
  if (!out.empty()) {
    return WriteMergedArtifact(*merged, partials.front().manifest, out);
  }
  return 0;
}

int RunDistBuild(const Args& args) {
  const auto dataset = LoadRatings(args);
  if (!dataset.ok()) {
    std::fprintf(stderr, "error: %s\n", dataset.status().ToString().c_str());
    return 1;
  }
  DistBuildOptions options;
  options.num_partitions = static_cast<int32_t>(args.GetInt("partitions", 0));
  options.worker_slots = static_cast<size_t>(args.GetInt("workers", 0));
  options.artifact_dir = args.Get("dir", "");
  options.worker = DistOptionsFromArgs(args);
  options.task_timeout_millis = args.GetInt("timeout-ms", 0);
  options.retry.max_attempts =
      static_cast<int32_t>(args.GetInt("max-attempts", 4));
  if (options.num_partitions < 1 || options.artifact_dir.empty()) {
    std::fprintf(stderr, "error: --partitions and --dir are required\n");
    return 1;
  }
  DistBuildCoordinator coordinator(&dataset->matrix, options);
  const auto result = coordinator.Run();
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
    return 1;
  }
  AsciiTable table({"metric", "value"});
  table.AddRow({"partitions", std::to_string(options.num_partitions)});
  table.AddRow({"attempts launched",
                std::to_string(result->stats.attempts_launched)});
  table.AddRow(
      {"attempts failed", std::to_string(result->stats.attempts_failed)});
  table.AddRow({"speculative attempts",
                std::to_string(result->stats.speculative_attempts)});
  table.AddRow(
      {"artifacts reused", std::to_string(result->stats.artifacts_reused)});
  table.AddRow(
      {"artifacts rejected", std::to_string(result->stats.artifacts_rejected)});
  table.AddRow({"peer entries", std::to_string(result->index.num_entries())});
  std::printf("%s", table.ToString().c_str());
  const std::string out = args.Get("out", "");
  if (!out.empty()) {
    PartialArtifactManifest base;
    base.fingerprint = FingerprintCorpus(dataset->matrix);
    base.similarity = options.worker.similarity;
    return WriteMergedArtifact(result->index, base, out);
  }
  return 0;
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  const Args args(argc, argv);
  if (command == "generate") return RunGenerate(args);
  if (command == "stats") return RunStats(args);
  if (command == "recommend") return RunRecommend(args);
  if (command == "group") return RunGroup(args);
  if (command == "list-selectors" || command == "--list-selectors") {
    return RunListSelectors();
  }
  if (command == "build-worker") return RunBuildWorker(args);
  if (command == "merge-partials") return RunMergePartials(args);
  if (command == "dist-build") return RunDistBuild(args);
  return Usage();
}

}  // namespace
}  // namespace fairrec

int main(int argc, char** argv) { return fairrec::Main(argc, argv); }
