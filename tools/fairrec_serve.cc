// Interactive-scale traffic driver for the online serving layer: builds a
// synthetic corpus, seeds a LivePeerGraph, and drives mixed single-user /
// group-recommendation traffic through a ServingServer while rating deltas
// publish new generations underneath — the end-to-end smoke of the serving
// stack, with a human-readable report (the machine-readable twin with
// latency floors is bench/bench_serving.cc).
//
//   fairrec_serve [--users N] [--items N] [--density F] [--seed N]
//                 [--seconds F] [--clients N] [--workers N] [--queue N]
//                 [--group-fraction F] [--group-size N] [--z N]
//                 [--selector <registry-name>]
//                 [--update-batch F] [--updates N] [--verbose]

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/stopwatch.h"
#include "core/selector_registry.h"
#include "ratings/rating_delta.h"
#include "ratings/rating_matrix.h"
#include "serve/recommendation_service.h"
#include "serve/server.h"
#include "serve/snapshot_source.h"
#include "sim/incremental_peer_graph.h"

namespace fairrec {
namespace {

using serve::GroupRecRequest;
using serve::GroupRecResponse;
using serve::LivePeerGraph;
using serve::RecommendationService;
using serve::ServingServer;
using serve::ServingServerOptions;
using serve::ServingServerStats;
using serve::UserRecRequest;
using serve::UserRecResponse;

struct Config {
  int32_t num_users = 1000;
  int32_t num_items = 300;
  double density = 0.03;
  uint64_t seed = 20170417;
  double seconds = 3.0;
  int32_t clients = 3;
  int32_t workers = 3;
  int32_t max_queue = 128;
  double group_fraction = 0.3;
  int32_t group_size = 4;
  int32_t z = 5;
  std::string selector = "algorithm1";
  double update_batch = 12.0;
  int32_t updates = 10;
  bool verbose = false;
};

RatingMatrix GenerateCorpus(const Config& config) {
  Rng rng(config.seed);
  RatingMatrixBuilder builder;
  builder.Reserve(config.num_users, config.num_items);
  for (UserId u = 0; u < config.num_users; ++u) {
    for (ItemId i = 0; i < config.num_items; ++i) {
      if (!rng.NextBool(config.density)) continue;
      const auto status =
          builder.Add(u, i, static_cast<Rating>(rng.UniformInt(1, 5)));
      if (!status.ok()) {
        std::fprintf(stderr, "corpus generation failed: %s\n",
                     status.ToString().c_str());
        std::exit(1);
      }
    }
  }
  return std::move(builder.Build()).ValueOrDie();
}

RatingDelta MakeBatch(const Config& config, Rng& rng) {
  RatingDelta delta;
  const auto size = static_cast<int64_t>(
      std::max(1.0, config.update_batch * (0.5 + rng.NextDouble())));
  for (int64_t k = 0; k < size; ++k) {
    const auto user =
        static_cast<UserId>(rng.UniformInt(0, config.num_users - 1));
    const auto item =
        static_cast<ItemId>(rng.UniformInt(0, config.num_items - 1));
    if (const auto status =
            delta.Add(user, item, static_cast<Rating>(rng.UniformInt(1, 5)));
        !status.ok()) {
      std::fprintf(stderr, "batch generation failed: %s\n",
                   status.ToString().c_str());
      std::exit(1);
    }
  }
  return delta;
}

struct ClientTally {
  int64_t user_ok = 0;
  int64_t group_ok = 0;
  int64_t shed = 0;
  int64_t out_of_range = 0;
  double latency_ms_sum = 0.0;
  double latency_ms_max = 0.0;
};

int Run(const Config& config) {
  std::printf("corpus: %d users x %d items at %.2f%% density\n",
              config.num_users, config.num_items, 100.0 * config.density);
  const RatingMatrix corpus = GenerateCorpus(config);
  std::printf("  %lld ratings\n",
              static_cast<long long>(corpus.num_ratings()));

  IncrementalPeerGraphOptions graph_options;
  graph_options.peers.delta = 0.1;
  graph_options.peers.max_peers_per_user = 64;
  Stopwatch seed_clock;
  auto graph = IncrementalPeerGraph::Build(corpus, graph_options);
  if (!graph.ok()) {
    std::fprintf(stderr, "seed build failed: %s\n",
                 graph.status().ToString().c_str());
    return 1;
  }
  std::printf("peer graph seeded in %.3f s\n", seed_clock.ElapsedSeconds());
  LivePeerGraph live(std::move(graph).ValueOrDie());

  serve::RecommendationServiceOptions service_options;
  service_options.recommender.peers.delta = 0.1;
  const RecommendationService service(&live, service_options);
  ServingServerOptions server_options;
  server_options.num_workers = config.workers;
  server_options.max_queue = config.max_queue;
  ServingServer server(&service, server_options);

  std::printf(
      "serving with %d workers (queue %d), %d clients, %.0f%% group traffic "
      "via %s, %d update batches over %.1f s\n",
      config.workers, config.max_queue, config.clients,
      100.0 * config.group_fraction, config.selector.c_str(), config.updates,
      config.seconds);

  std::atomic<bool> stop{false};
  std::vector<ClientTally> tallies(static_cast<size_t>(config.clients));
  std::vector<std::thread> clients;
  Stopwatch run_clock;
  for (int32_t c = 0; c < config.clients; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(config.seed ^ (0xc0ffeeull + static_cast<uint64_t>(c)));
      ClientTally& mine = tallies[static_cast<size_t>(c)];
      while (!stop.load(std::memory_order_relaxed)) {
        Stopwatch latency;
        if (rng.NextDouble() < config.group_fraction) {
          GroupRecRequest request;
          for (const int32_t u : rng.SampleWithoutReplacement(
                   config.num_users, config.group_size)) {
            request.members.push_back(static_cast<UserId>(u));
          }
          request.z = config.z;
          request.selector = config.selector;
          const auto response = server.CallGroup(request);
          if (response.ok()) {
            ++mine.group_ok;
          } else if (response.status().IsResourceExhausted()) {
            ++mine.shed;
            std::this_thread::yield();
            continue;
          } else if (response.status().IsOutOfRange()) {
            ++mine.out_of_range;
            continue;
          } else {
            std::fprintf(stderr, "group request failed: %s\n",
                         response.status().ToString().c_str());
            std::exit(1);
          }
        } else {
          UserRecRequest request;
          request.user =
              static_cast<UserId>(rng.UniformInt(0, config.num_users - 1));
          const auto response = server.CallUser(request);
          if (response.ok()) {
            ++mine.user_ok;
          } else if (response.status().IsResourceExhausted()) {
            ++mine.shed;
            std::this_thread::yield();
            continue;
          } else {
            std::fprintf(stderr, "user request failed: %s\n",
                         response.status().ToString().c_str());
            std::exit(1);
          }
        }
        const double ms = latency.ElapsedSeconds() * 1e3;
        mine.latency_ms_sum += ms;
        mine.latency_ms_max = std::max(mine.latency_ms_max, ms);
      }
    });
  }

  Rng update_rng(config.seed ^ 0xfeedull);
  const double interval =
      config.updates > 0 ? config.seconds / (config.updates + 1) : 0.0;
  int32_t applied = 0;
  for (int32_t d = 0; d < config.updates; ++d) {
    const double due = interval * (d + 1);
    while (run_clock.ElapsedSeconds() < due &&
           run_clock.ElapsedSeconds() < config.seconds) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    if (run_clock.ElapsedSeconds() >= config.seconds) break;
    const RatingDelta batch = MakeBatch(config, update_rng);
    const auto stats = live.ApplyDelta(batch);
    if (!stats.ok()) {
      std::fprintf(stderr, "delta apply failed: %s\n",
                   stats.status().ToString().c_str());
      return 1;
    }
    ++applied;
    if (config.verbose) {
      std::printf(
          "  generation %llu published: %lld upserts, %lld pairs changed%s\n",
          static_cast<unsigned long long>(live.generation()),
          static_cast<long long>(stats->num_upserts),
          static_cast<long long>(stats->changed_pairs),
          stats->used_full_rebuild ? " (full rebuild)" : "");
    }
  }
  while (run_clock.ElapsedSeconds() < config.seconds) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : clients) t.join();
  const double elapsed = run_clock.ElapsedSeconds();
  server.Shutdown();

  ClientTally total;
  for (const ClientTally& tally : tallies) {
    total.user_ok += tally.user_ok;
    total.group_ok += tally.group_ok;
    total.shed += tally.shed;
    total.out_of_range += tally.out_of_range;
    total.latency_ms_sum += tally.latency_ms_sum;
    total.latency_ms_max = std::max(total.latency_ms_max, tally.latency_ms_max);
  }
  const int64_t completed = total.user_ok + total.group_ok;
  const ServingServerStats stats = server.stats();
  std::printf("\n%.2f s of traffic against generations 1..%llu:\n", elapsed,
              static_cast<unsigned long long>(live.generation()));
  std::printf("  %lld completed (%lld user, %lld group) = %.0f QPS\n",
              static_cast<long long>(completed),
              static_cast<long long>(total.user_ok),
              static_cast<long long>(total.group_ok),
              elapsed > 0.0 ? static_cast<double>(completed) / elapsed : 0.0);
  std::printf("  mean latency %.2f ms, max %.2f ms\n",
              completed > 0
                  ? total.latency_ms_sum / static_cast<double>(completed)
                  : 0.0,
              total.latency_ms_max);
  std::printf("  %lld shed, %lld out-of-range, queue peak %llu\n",
              static_cast<long long>(total.shed),
              static_cast<long long>(total.out_of_range),
              static_cast<unsigned long long>(stats.queue_peak));
  std::printf("  %d delta batches published while serving\n", applied);
  return 0;
}

}  // namespace
}  // namespace fairrec

int main(int argc, char** argv) {
  fairrec::Config config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(1);
      }
      return argv[++i];
    };
    if (arg == "--users") {
      config.num_users = std::atoi(next());
    } else if (arg == "--items") {
      config.num_items = std::atoi(next());
    } else if (arg == "--density") {
      config.density = std::atof(next());
    } else if (arg == "--seed") {
      config.seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--seconds") {
      config.seconds = std::atof(next());
    } else if (arg == "--clients") {
      config.clients = std::atoi(next());
    } else if (arg == "--workers") {
      config.workers = std::atoi(next());
    } else if (arg == "--queue") {
      config.max_queue = std::atoi(next());
    } else if (arg == "--group-fraction") {
      config.group_fraction = std::atof(next());
    } else if (arg == "--group-size") {
      config.group_size = std::atoi(next());
    } else if (arg == "--z") {
      config.z = std::atoi(next());
    } else if (arg == "--selector") {
      config.selector = next();
      if (!fairrec::SelectorRegistry::Global().Has(config.selector)) {
        std::fprintf(stderr, "unknown selector: %s\n", config.selector.c_str());
        return 1;
      }
    } else if (arg == "--update-batch") {
      config.update_batch = std::atof(next());
    } else if (arg == "--updates") {
      config.updates = std::atoi(next());
    } else if (arg == "--verbose") {
      config.verbose = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 1;
    }
  }
  if (config.num_users < 2 || config.num_items < 1 || config.density <= 0.0 ||
      config.density > 1.0 || config.seconds <= 0.0 || config.clients < 1 ||
      config.workers < 1 || config.max_queue < 1 ||
      config.group_fraction < 0.0 || config.group_fraction > 1.0 ||
      config.group_size < 1 || config.group_size > config.num_users ||
      config.z < 1 || config.updates < 0 || config.update_batch <= 0.0) {
    std::fprintf(stderr, "invalid configuration\n");
    return 1;
  }
  return fairrec::Run(config);
}
