// Quickstart: the minimal FairRec flow.
//
// 1. Generate a synthetic world (ontology + cohort + corpus + ratings).
// 2. Recommend documents to a single patient (§III-A of the paper).
// 3. Recommend a fair set of documents to a caregiver's patient group
//    (§III-C/D, Algorithm 1).
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "cf/recommender.h"
#include "core/fairness_heuristic.h"
#include "core/group_recommender.h"
#include "data/scenario.h"
#include "ratings/dataset.h"
#include "sim/rating_similarity.h"

using namespace fairrec;  // examples only; library code never does this

int main() {
  // --- 1. A small synthetic world ------------------------------------
  ScenarioConfig config;
  config.num_patients = 200;
  config.num_documents = 150;
  config.num_clusters = 5;
  config.rating_density = 0.1;
  config.seed = 7;
  const Scenario scenario = std::move(BuildScenario(config)).ValueOrDie();
  const DatasetStats stats = Dataset{scenario.ratings}.ComputeStats();
  std::printf("world: %d patients, %d documents, %lld ratings (density %.1f%%)\n",
              stats.num_users, stats.num_items,
              static_cast<long long>(stats.num_ratings), 100.0 * stats.density);

  // --- 2. Single-user recommendations --------------------------------
  // simU = Pearson over co-rated documents (Eq. 2), shifted to [0, 1] so the
  // peer threshold delta and Eq. 1's weights are non-negative.
  RatingSimilarityOptions sim_options;
  sim_options.shift_to_unit_interval = true;
  const RatingSimilarity similarity(&scenario.ratings, sim_options);

  RecommenderOptions rec_options;
  rec_options.peers.delta = 0.55;  // Def. 1 threshold
  rec_options.top_k = 5;           // |A_u|
  const Recommender recommender =
      Recommender::ForSimilarityScan(&scenario.ratings, &similarity, rec_options);

  const UserId patient = 3;
  const auto personal = std::move(recommender.RecommendForUser(patient)).ValueOrDie();
  std::printf("\ntop-%zu documents for patient %d (Eq. 1 relevance):\n",
              personal.size(), patient);
  for (const ScoredItem& s : personal) {
    std::printf("  %-45s  relevance %.2f\n",
                scenario.corpus.documents[static_cast<size_t>(s.item)].title.c_str(),
                s.score);
  }

  // --- 3. Fair group recommendations ---------------------------------
  // A caregiver is responsible for 4 patients from one condition cluster.
  const Group group = scenario.MakeCohesiveGroup(4, 99);
  std::printf("\ncaregiver group: patients");
  for (const UserId u : group) std::printf(" %d", u);
  std::printf("\n");

  const GroupRecommender group_recommender(&recommender, {});
  const FairnessHeuristic algorithm1;  // the paper's Algorithm 1
  const int32_t z = 6;
  const Selection selection =
      std::move(group_recommender.RecommendFair(group, z, algorithm1)).ValueOrDie();

  std::printf("fairness-aware top-%d (fairness %.2f, value %.2f):\n", z,
              selection.score.fairness, selection.score.value);
  for (const ItemId item : selection.items) {
    std::printf("  %s\n",
                scenario.corpus.documents[static_cast<size_t>(item)].title.c_str());
  }
  // Proposition 1: z >= |G| guarantees fairness 1.0.
  std::printf("\nProposition 1 check: z=%d >= |G|=%zu -> fairness %.2f\n", z,
              group.size(), selection.score.fairness);
  return 0;
}
