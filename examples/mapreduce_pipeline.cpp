// MapReduce pipeline walkthrough: the paper's §IV implementation.
//
// Runs the three jobs of Fig. 2 over a synthetic rating log and reports what
// each job produced, then finishes with the centralized Algorithm 1 step —
// and cross-checks the whole flow against the serial reference path.
//
// Build & run:  ./build/examples/mapreduce_pipeline

#include <cstdio>

#include "cf/recommender.h"
#include "common/stopwatch.h"
#include "core/group_recommender.h"
#include "data/scenario.h"
#include "eval/table.h"
#include "mapreduce/pipeline.h"
#include "mapreduce/topk_mapreduce.h"
#include "sim/rating_similarity.h"

using namespace fairrec;  // examples only

int main() {
  ScenarioConfig config;
  config.num_patients = 400;
  config.num_documents = 250;
  config.num_clusters = 6;
  config.rating_density = 0.08;
  config.seed = 1337;
  const Scenario scenario = std::move(BuildScenario(config)).ValueOrDie();
  const Group group = scenario.MakeCohesiveGroup(4, 11);

  PipelineOptions options;
  options.similarity.shift_to_unit_interval = true;
  options.delta = 0.55;
  options.top_k = 8;
  options.aggregation = AggregationKind::kAverage;

  std::printf("input: %lld rating triples, group of %zu patients, delta=%.2f\n",
              static_cast<long long>(scenario.ratings.num_ratings()),
              group.size(), options.delta);

  const GroupRecommendationPipeline pipeline(options);
  Stopwatch watch;
  const PipelineResult result =
      std::move(pipeline.Run(scenario.ratings, group, 6)).ValueOrDie();
  const double total_ms = watch.ElapsedMillis();

  AsciiTable jobs({"job", "input records", "intermediate", "output"});
  auto add_job = [&jobs](const char* name, const MapReduceStats& s) {
    jobs.AddRow({name, std::to_string(s.input_records),
                 std::to_string(s.intermediate_records),
                 std::to_string(s.output_records)});
  };
  add_job("Job 1: moment stats + candidates", result.job1_stats);
  add_job("Job 2: merge moments, threshold", result.job2_stats);
  add_job("Job 3: user & group relevance", result.job3_stats);
  std::printf("\n%s", jobs.ToString().c_str());
  std::printf(
      "\ncandidate items (unrated by all members): %lld\n"
      "qualifying (member, peer) pairs:            %lld\n"
      "moment records shuffled to Job 2:           %lld (vs %lld rating-pair "
      "records in the retired stream)\n"
      "pipeline wall time:                         %.1f ms\n",
      static_cast<long long>(result.num_candidate_items),
      static_cast<long long>(result.num_similarity_pairs),
      static_cast<long long>(result.num_moment_records),
      static_cast<long long>(result.num_co_rating_records), total_ms);

  std::printf("\nAlgorithm 1 (centralized, as §IV prescribes) selected:\n");
  for (const ItemId item : result.selection.items) {
    std::printf("  %s\n",
                scenario.corpus.documents[static_cast<size_t>(item)].title.c_str());
  }
  std::printf("fairness %.2f, value %.2f\n", result.selection.score.fairness,
              result.selection.score.value);

  // ---- Cross-check against the serial reference ----------------------
  RatingSimilarityOptions rs_options;
  rs_options.shift_to_unit_interval = true;
  const RatingSimilarity similarity(&scenario.ratings, rs_options);
  RecommenderOptions rec_options;
  rec_options.peers.delta = options.delta;
  rec_options.top_k = options.top_k;
  const Recommender recommender =
      Recommender::ForSimilarityScan(&scenario.ratings, &similarity, rec_options);
  GroupContextOptions ctx_options;
  ctx_options.top_k = options.top_k;
  const GroupRecommender group_rec(&recommender, ctx_options);
  const FairnessHeuristic heuristic;
  const GroupContext serial_ctx =
      std::move(group_rec.BuildContext(group)).ValueOrDie();
  const Selection serial = std::move(heuristic.Select(serial_ctx, 6)).ValueOrDie();
  std::printf("\nserial reference selected the %s set of documents.\n",
              serial.items == result.selection.items ? "SAME" : "DIFFERENT");

  // ---- Bonus: the distributed top-k of [5] ---------------------------
  std::vector<ScoredItem> group_scores;
  for (const GroupCandidate& c : result.context.candidates()) {
    group_scores.push_back({c.item, c.group_relevance});
  }
  const auto top = MapReduceTopK(group_scores, 5);
  std::printf("\ndistributed top-5 by group relevance (MapReduce top-k [5]):\n");
  for (const ScoredItem& s : top) {
    std::printf("  %-45s  %.3f\n",
                scenario.corpus.documents[static_cast<size_t>(s.item)].title.c_str(),
                s.score);
  }
  return 0;
}
