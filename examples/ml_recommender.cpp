// Machine-learning recommender: the paper's §VIII future work, realized.
//
// Trains a matrix-factorization model on the rating log, validates it on a
// held-out split against the Eq. 1 collaborative estimator, then swaps it
// into the *same* fairness-aware group pipeline — demonstrating that the
// top-z machinery (Def. 2/3, Algorithm 1) is estimator-agnostic.
//
// Build & run:  ./build/examples/ml_recommender

#include <cstdio>
#include <unordered_map>

#include "cf/peer_finder.h"
#include "cf/recommender.h"
#include "cf/relevance_estimator.h"
#include "common/string_util.h"
#include "core/fairness_heuristic.h"
#include "core/group_context.h"
#include "data/scenario.h"
#include "eval/accuracy.h"
#include "eval/table.h"
#include "mf/matrix_factorization.h"
#include "ratings/splits.h"
#include "sim/rating_similarity.h"

using namespace fairrec;  // examples only

int main() {
  ScenarioConfig config;
  config.num_patients = 350;
  config.num_documents = 220;
  config.num_clusters = 6;
  config.rating_density = 0.1;
  config.seed = 404;
  const Scenario scenario = std::move(BuildScenario(config)).ValueOrDie();

  // ---- 1. Held-out validation ----------------------------------------
  const TrainTestSplit split =
      std::move(RandomHoldoutSplit(scenario.ratings, 0.2, 1)).ValueOrDie();
  std::printf("training on %lld ratings, validating on %zu held-out ones\n",
              static_cast<long long>(split.train.num_ratings()),
              split.test.size());

  MfConfig mf_config;
  mf_config.num_factors = 16;
  mf_config.num_epochs = 40;
  std::vector<double> epoch_rmse;
  const auto model = std::move(MatrixFactorizationModel::Train(
                                   split.train, mf_config, &epoch_rmse))
                         .ValueOrDie();
  std::printf("MF training: train RMSE %.3f (epoch 1) -> %.3f (epoch %zu)\n",
              epoch_rmse.front(), epoch_rmse.back(), epoch_rmse.size());

  RatingSimilarityOptions sim_options;
  sim_options.shift_to_unit_interval = true;
  const RatingSimilarity similarity(&split.train, sim_options);
  PeerFinderOptions peer_options;
  peer_options.delta = 0.55;
  const PeerFinder finder(&similarity, split.train.num_users(), peer_options);
  const RelevanceEstimator cf_estimator(&split.train);
  std::unordered_map<UserId, std::vector<Peer>> peers;

  AsciiTable accuracy({"estimator", "RMSE", "MAE", "coverage"});
  const AccuracyStats mf_stats = EvaluatePredictor(
      split.test, [&model](UserId u, ItemId i) { return model.Predict(u, i); });
  const AccuracyStats cf_stats =
      EvaluatePredictor(split.test, [&](UserId u, ItemId i) {
        auto [it, inserted] = peers.try_emplace(u);
        if (inserted) it->second = finder.FindPeers(u);
        return cf_estimator.Estimate(it->second, i);
      });
  accuracy.AddRow({"matrix factorization", FormatDouble(mf_stats.rmse, 3),
                   FormatDouble(mf_stats.mae, 3),
                   FormatDouble(mf_stats.coverage, 3)});
  accuracy.AddRow({"Eq. 1 collaborative", FormatDouble(cf_stats.rmse, 3),
                   FormatDouble(cf_stats.mae, 3),
                   FormatDouble(cf_stats.coverage, 3)});
  std::printf("\nheld-out accuracy:\n%s", accuracy.ToString().c_str());

  // ---- 2. The same fairness-aware flow, MF underneath -----------------
  const Group group = scenario.MakeRandomGroup(4, 21);
  const int32_t z = 6;
  GroupContextOptions ctx_options;
  ctx_options.top_k = 10;
  const auto members =
      std::move(model.RelevanceForGroup(scenario.ratings, group, ctx_options.top_k))
          .ValueOrDie();
  const GroupContext context =
      std::move(GroupContext::Build(members, ctx_options)).ValueOrDie();
  const FairnessHeuristic algorithm1;
  const Selection selection =
      std::move(algorithm1.Select(context, z)).ValueOrDie();

  std::printf("\nfairness-aware top-%d for a heterogeneous group, powered by "
              "MF relevance:\n", z);
  for (const ItemId item : selection.items) {
    std::printf("  %s\n",
                scenario.corpus.documents[static_cast<size_t>(item)].title.c_str());
  }
  std::printf("fairness %.2f (Prop. 1 holds regardless of the estimator: "
              "z=%d >= |G|=%zu), value %.2f\n",
              selection.score.fairness, z, group.size(), selection.score.value);
  return 0;
}
