// Similarity study: the three simU measures of §V, side by side.
//
// Part 1 reproduces the paper's Table I walkthrough: three patients whose
// profiles come verbatim from the paper, scored by all three measures.
// Part 2 runs the measures on a full synthetic cohort and reports how much
// their peer sets (Def. 1) agree — the practical question a deployment
// faces when choosing the simU slot.
//
// Build & run:  ./build/examples/similarity_study

#include <algorithm>
#include <cstdio>
#include <set>
#include <vector>

#include "cf/peer_finder.h"
#include "data/scenario.h"
#include "common/string_util.h"
#include "eval/table.h"
#include "ontology/snomed_generator.h"
#include "sim/hybrid_similarity.h"
#include "sim/profile_similarity.h"
#include "sim/rating_similarity.h"
#include "sim/semantic_similarity.h"

using namespace fairrec;  // examples only

namespace {

ProfileStore TableIPatients(const Ontology& ontology) {
  ProfileStore store;
  PatientProfile p1;  // Table I, Patient 1
  p1.user = 0;
  p1.problems = {ontology.FindByName("Acute bronchitis")};
  p1.medications = {"Ramipril 10 MG Oral Capsule"};
  p1.gender = Gender::kFemale;
  p1.age = 40;
  PatientProfile p2;  // Patient 2
  p2.user = 1;
  p2.problems = {ontology.FindByName("Chest pain")};
  p2.medications = {"Niacin 500 MG Extended Release Tablet"};
  p2.gender = Gender::kMale;
  p2.age = 53;
  PatientProfile p3;  // Patient 3
  p3.user = 2;
  p3.problems = {ontology.FindByName("Tracheobronchitis"),
                 ontology.FindByName("Broken arm")};
  p3.medications = {"Ramipril 10 MG Oral Capsule"};
  p3.gender = Gender::kMale;
  p3.age = 34;
  store.Add(std::move(p1)).CheckOK();
  store.Add(std::move(p2)).CheckOK();
  store.Add(std::move(p3)).CheckOK();
  return store;
}

double Jaccard(const std::vector<Peer>& a, const std::vector<Peer>& b) {
  std::set<UserId> sa;
  std::set<UserId> sb;
  for (const Peer& p : a) sa.insert(p.user);
  for (const Peer& p : b) sb.insert(p.user);
  if (sa.empty() && sb.empty()) return 1.0;
  std::vector<UserId> inter;
  std::set_intersection(sa.begin(), sa.end(), sb.begin(), sb.end(),
                        std::back_inserter(inter));
  return static_cast<double>(inter.size()) /
         static_cast<double>(sa.size() + sb.size() - inter.size());
}

}  // namespace

int main() {
  // ---- Part 1: the paper's own Table I example ----------------------
  const Ontology fixture = std::move(BuildPaperFixtureOntology()).ValueOrDie();
  const ProfileStore patients = TableIPatients(fixture);
  const SemanticSimilarity semantic(&patients, &fixture);
  const auto profile_sim =
      std::move(ProfileSimilarity::Create(patients, fixture)).ValueOrDie();

  std::printf("Table I patients, pairwise similarity:\n");
  AsciiTable table({"pair", "semantic SS (Eq. 4)", "profile CS (Eq. 3)"});
  const char* names[3] = {"Patient 1", "Patient 2", "Patient 3"};
  for (UserId a = 0; a < 3; ++a) {
    for (UserId b = a + 1; b < 3; ++b) {
      table.AddRow({std::string(names[a]) + " vs " + names[b],
                    FormatDouble(semantic.Compute(a, b), 4),
                    FormatDouble(profile_sim->Compute(a, b), 4)});
    }
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "as §V-C argues: SS(P1,P3)=%.3f > SS(P1,P2)=%.3f — tracheobronchitis is\n"
      "2 hops from acute bronchitis in the ontology, chest pain is 5 hops.\n\n",
      semantic.Compute(0, 2), semantic.Compute(0, 1));

  // ---- Part 2: peer-set agreement on a full cohort -------------------
  ScenarioConfig config;
  config.num_patients = 250;
  config.num_documents = 150;
  config.num_clusters = 5;
  config.rating_density = 0.12;
  config.seed = 31;
  const Scenario scenario = std::move(BuildScenario(config)).ValueOrDie();

  RatingSimilarityOptions rs_options;
  rs_options.shift_to_unit_interval = true;
  const RatingSimilarity ratings_sim(&scenario.ratings, rs_options);
  const auto cohort_profile_sim =
      std::move(ProfileSimilarity::Create(scenario.cohort.profiles,
                                          scenario.ontology.ontology))
          .ValueOrDie();
  const SemanticSimilarity cohort_semantic(&scenario.cohort.profiles,
                                           &scenario.ontology.ontology);
  const auto hybrid = std::move(HybridSimilarity::Create(
                                    {{&ratings_sim, 0.5},
                                     {cohort_profile_sim.get(), 0.25},
                                     {&cohort_semantic, 0.25}}))
                          .ValueOrDie();

  struct Measure {
    const UserSimilarity* sim;
    double delta;
  };
  const std::vector<Measure> measures{{&ratings_sim, 0.55},
                                      {cohort_profile_sim.get(), 0.15},
                                      {&cohort_semantic, 0.15},
                                      {hybrid.get(), 0.35}};

  // Peer sets of 20 probe users under each measure.
  std::vector<std::vector<std::vector<Peer>>> peers(measures.size());
  for (size_t s = 0; s < measures.size(); ++s) {
    PeerFinderOptions options;
    options.delta = measures[s].delta;
    const PeerFinder finder(measures[s].sim, scenario.ratings.num_users(), options);
    for (UserId u = 0; u < 20; ++u) peers[s].push_back(finder.FindPeers(u));
  }

  AsciiTable agreement(
      {"measure", "delta", "mean |P_u|", "jaccard vs ratings-peers"});
  for (size_t s = 0; s < measures.size(); ++s) {
    double total_size = 0.0;
    double total_jaccard = 0.0;
    for (size_t u = 0; u < peers[s].size(); ++u) {
      total_size += static_cast<double>(peers[s][u].size());
      total_jaccard += Jaccard(peers[s][u], peers[0][u]);
    }
    agreement.AddRow({measures[s].sim->name(),
                      FormatDouble(measures[s].delta, 2),
                      FormatDouble(total_size / 20.0, 1),
                      FormatDouble(total_jaccard / 20.0, 3)});
  }
  std::printf("peer-set structure on a %d-patient cohort (20 probe users):\n%s",
              config.num_patients, agreement.ToString().c_str());
  std::printf(
      "\nratings-based peers capture taste; profile/semantic peers capture the\n"
      "clinical state — the paper's motivation for exploiting health-specific\n"
      "information *in addition to* traditional ratings (§V).\n");
  return 0;
}
