// Caregiver scenario: the full Fig. 1 architecture, end to end.
//
// A caregiver is responsible for a *heterogeneous* group of patients (mixed
// condition clusters). We contrast:
//   * plain group top-k (Def. 2) under min ("veto") vs average aggregation,
//   * fairness-aware top-z via Algorithm 1, the greedy value baseline, and
//     the exact brute force,
// and report per-member satisfaction so the fairness effect is visible.
//
// Build & run:  ./build/examples/caregiver_group

#include <cstdio>
#include <vector>

#include "cf/recommender.h"
#include "core/brute_force.h"
#include "core/fairness_heuristic.h"
#include "core/greedy_selector.h"
#include "core/group_recommender.h"
#include "data/scenario.h"
#include "eval/metrics.h"
#include "common/string_util.h"
#include "eval/table.h"
#include "sim/pairwise_engine.h"
#include "sim/peer_index.h"
#include "sim/rating_similarity.h"

using namespace fairrec;  // examples only

namespace {

void ReportSelection(const char* name, const GroupContext& context,
                     const Selection& selection, const Scenario& scenario) {
  std::printf("\n%s: fairness %.2f, relevance sum %.2f, value %.2f\n", name,
              selection.score.fairness, selection.score.relevance_sum,
              selection.score.value);
  for (const ItemId item : selection.items) {
    std::printf("    %s\n",
                scenario.corpus.documents[static_cast<size_t>(item)].title.c_str());
  }
  const SatisfactionStats sat = GroupSatisfactionByItems(context, selection.items);
  std::printf("    member satisfaction: min %.2f  mean %.2f  max %.2f\n",
              sat.min, sat.mean, sat.max);
}

}  // namespace

int main() {
  ScenarioConfig config;
  config.num_patients = 300;
  config.num_documents = 200;
  config.num_clusters = 6;
  config.rating_density = 0.1;
  config.seed = 2017;
  const Scenario scenario = std::move(BuildScenario(config)).ValueOrDie();

  RatingSimilarityOptions sim_options;
  sim_options.shift_to_unit_interval = true;
  RecommenderOptions rec_options;
  rec_options.peers.delta = 0.55;
  rec_options.top_k = 8;

  // Sparse serving path: the sufficient-statistics engine emits the Def. 1
  // peer graph directly, so no dense U x U similarity structure is ever
  // built for this flow.
  PeerIndexOptions peer_options;
  peer_options.delta = rec_options.peers.delta;
  const PairwiseSimilarityEngine engine(&scenario.ratings, sim_options);
  const PeerIndex peers = std::move(engine.BuildPeerIndex(peer_options)).ValueOrDie();
  const Recommender recommender(&scenario.ratings, &peers, rec_options);

  // A heterogeneous group: patients drawn from different clusters — the case
  // where one member can be "the least satisfied user in the group for all
  // items" (§III-C) and fairness-aware selection matters.
  const Group group = scenario.MakeRandomGroup(4, 5);
  std::printf("caregiver group (heterogeneous):\n");
  for (const UserId u : group) {
    std::printf("  patient %3d  (condition cluster %d)\n", u,
                scenario.cohort.cluster_of_user[static_cast<size_t>(u)]);
  }

  // ---- Def. 2: min vs average aggregation, plain top-k ---------------
  AsciiTable table({"rank", "avg: document", "avg rel", "min: document", "min rel"});
  GroupContextOptions avg_options;
  avg_options.top_k = 8;
  GroupContextOptions min_options = avg_options;
  min_options.aggregation = AggregationKind::kMinimum;
  const GroupRecommender avg_rec(&recommender, avg_options);
  const GroupRecommender min_rec(&recommender, min_options);
  const auto avg_top = std::move(avg_rec.TopKForGroup(group, 5)).ValueOrDie();
  const auto min_top = std::move(min_rec.TopKForGroup(group, 5)).ValueOrDie();
  for (size_t i = 0; i < 5 && i < avg_top.size() && i < min_top.size(); ++i) {
    table.AddRow(
        {std::to_string(i + 1),
         scenario.corpus.documents[static_cast<size_t>(avg_top[i].item)].title,
         FormatDouble(avg_top[i].score, 2),
         scenario.corpus.documents[static_cast<size_t>(min_top[i].item)].title,
         FormatDouble(min_top[i].score, 2)});
  }
  std::printf("\nplain group top-5 under the two Def. 2 designs:\n%s",
              table.ToString().c_str());

  // ---- §III-D: fairness-aware top-z selectors ------------------------
  const GroupContext context = std::move(avg_rec.BuildContext(group)).ValueOrDie();
  const GroupContext pool = context.RestrictToTopM(20);
  const int32_t z = 6;

  const FairnessHeuristic algorithm1;
  const GreedyValueSelector greedy;
  const BruteForceSelector brute_force;
  ReportSelection("Algorithm 1 (paper heuristic)", pool,
                  std::move(algorithm1.Select(pool, z)).ValueOrDie(), scenario);
  ReportSelection("Greedy value baseline", pool,
                  std::move(greedy.Select(pool, z)).ValueOrDie(), scenario);
  ReportSelection("Brute force (exact optimum over C(20,6))", pool,
                  std::move(brute_force.Select(pool, z)).ValueOrDie(), scenario);

  // ---- The unfairness of plain top-k, quantified ----------------------
  std::vector<ItemId> plain_items;
  for (const ScoredItem& s :
       std::move(avg_rec.TopKForGroup(group, z)).ValueOrDie()) {
    plain_items.push_back(s.item);
  }
  const ValueBreakdown plain_score = EvaluateSelectionByItems(context, plain_items);
  const SatisfactionStats plain_sat = GroupSatisfactionByItems(context, plain_items);
  std::printf(
      "\nplain top-%d (no fairness): fairness %.2f, min satisfaction %.2f\n", z,
      plain_score.fairness, plain_sat.min);
  std::printf(
      "=> fairness-aware selection protects the least-served member of a\n"
      "   heterogeneous group at a small relevance cost (§III-C's motivation).\n");
  return 0;
}
