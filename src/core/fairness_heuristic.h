#ifndef FAIRREC_CORE_FAIRNESS_HEURISTIC_H_
#define FAIRREC_CORE_FAIRNESS_HEURISTIC_H_

#include <string>

#include "core/selector.h"

namespace fairrec {

/// Controls for FairnessHeuristic.
struct FairnessHeuristicOptions {
  /// Algorithm 1 line 7 picks "the item i in A_uy with the maximum
  /// relevance(ux, i)". The prose of §III-D states the transposed roles
  /// ("the item in A_ux with the maximum relevance score for uy"); setting
  /// this picks from A_ux scored by uy instead. Both satisfy Proposition 1;
  /// selection order (and thus D under truncation) can differ.
  bool pick_from_a_ux = false;
  /// When a full pass over all (x, y) pairs adds nothing and |D| < z, top up
  /// D with the best remaining candidates by group relevance. Keeps |D| == z
  /// whenever z <= m; disable to return exactly what Algorithm 1 yields.
  bool fill_shortfall = true;
};

/// The paper's Algorithm 1 (Fairness-aware Group Recommendations):
///
///   D = {}
///   while |D| < z:
///     for x in 0..n-1:
///       for y in 0..n-1, y != x:
///         i = argmax_{i in A_uy \ D} relevance(ux, i)
///         D = D ∪ {i}
///
/// Faithfulness notes (documented deviations where the pseudocode is
/// under-specified):
///  * "D = D ∪ i" is a set union, so re-picking a selected item would stall
///    the loop; we therefore take the argmax over A_uy *minus D*. When A_uy
///    is exhausted the pair is skipped (D already contains all of A_uy, so D
///    is trivially fair to uy).
///  * The while loop is exited the moment |D| reaches z (mid-round).
///  * Ties in the argmax break toward the smaller item id (deterministic).
///  * If a full round makes no progress, the loop would spin forever; we
///    stop and (optionally) fill, see FairnessHeuristicOptions.
///
/// Complexity: O(z * n^2 * k) in the worst case, versus the brute force's
/// O(C(m, z) * n) — the contrast measured in Table II.
class FairnessHeuristic final : public ItemSetSelector {
 public:
  explicit FairnessHeuristic(FairnessHeuristicOptions options = {});

  Result<Selection> Select(const GroupContext& context, int32_t z) const override;
  std::string name() const override { return "algorithm1"; }

  const FairnessHeuristicOptions& options() const { return options_; }

 private:
  FairnessHeuristicOptions options_;
};

}  // namespace fairrec

#endif  // FAIRREC_CORE_FAIRNESS_HEURISTIC_H_
