#include "core/fair_package_selector.h"

#include <algorithm>
#include <string>
#include <vector>

namespace fairrec {

FairPackageSelector::FairPackageSelector(FairPackageOptions options)
    : options_(options) {}

Result<Selection> FairPackageSelector::Select(const GroupContext& context,
                                              int32_t z) const {
  if (z <= 0) return Status::InvalidArgument("z must be positive");
  if (options_.min_per_member <= 0) {
    return Status::InvalidArgument("min_per_member must be positive, got " +
                                   std::to_string(options_.min_per_member));
  }
  const int32_t m = context.num_candidates();
  const int32_t n = context.group_size();
  const int32_t take = std::min(z, m);

  // Candidates in descending group relevance (ties ascending item id): the
  // enumeration order, which makes the prefix-sum relevance bound tight.
  std::vector<int32_t> ordered(static_cast<size_t>(m));
  for (int32_t c = 0; c < m; ++c) ordered[static_cast<size_t>(c)] = c;
  std::sort(ordered.begin(), ordered.end(), [&context](int32_t a, int32_t b) {
    const GroupCandidate& ca = context.candidate(a);
    const GroupCandidate& cb = context.candidate(b);
    if (ca.group_relevance != cb.group_relevance) {
      return ca.group_relevance > cb.group_relevance;
    }
    return ca.item < cb.item;
  });

  // prefix_rel[p] = sum of the p most relevant candidates; the upper bound
  // for filling `slots` remaining picks from position `pos` onward is
  // prefix_rel[pos + slots] - prefix_rel[pos] (order is descending, so the
  // next `slots` entries are the best the suffix can offer).
  std::vector<double> prefix_rel(static_cast<size_t>(m) + 1, 0.0);
  for (int32_t p = 0; p < m; ++p) {
    prefix_rel[static_cast<size_t>(p) + 1] =
        prefix_rel[static_cast<size_t>(p)] +
        context.candidate(ordered[static_cast<size_t>(p)]).group_relevance;
  }

  // hit[mem][pos]: ordered[pos] is in member mem's A_u.
  // suffix_hits[mem][pos]: # of A_u items among ordered[pos..m-1].
  std::vector<std::vector<uint8_t>> hit(
      static_cast<size_t>(n), std::vector<uint8_t>(static_cast<size_t>(m), 0));
  std::vector<std::vector<int32_t>> suffix_hits(
      static_cast<size_t>(n),
      std::vector<int32_t>(static_cast<size_t>(m) + 1, 0));
  std::vector<int32_t> quota(static_cast<size_t>(n), 0);
  for (int32_t mem = 0; mem < n; ++mem) {
    for (int32_t p = 0; p < m; ++p) {
      hit[static_cast<size_t>(mem)][static_cast<size_t>(p)] =
          context.InMemberTopK(mem, ordered[static_cast<size_t>(p)]) ? 1 : 0;
    }
    for (int32_t p = m - 1; p >= 0; --p) {
      suffix_hits[static_cast<size_t>(mem)][static_cast<size_t>(p)] =
          suffix_hits[static_cast<size_t>(mem)][static_cast<size_t>(p) + 1] +
          hit[static_cast<size_t>(mem)][static_cast<size_t>(p)];
    }
    // A member cannot be asked for more A_u items than they have (or than D
    // can hold).
    quota[static_cast<size_t>(mem)] =
        std::min({options_.min_per_member,
                  suffix_hits[static_cast<size_t>(mem)][0], take});
  }

  std::vector<int32_t> current;
  current.reserve(static_cast<size_t>(take));
  std::vector<int32_t> hits(static_cast<size_t>(n), 0);
  double current_rel = 0.0;

  std::vector<int32_t> best_positions;
  int32_t best_covered = -1;
  double best_rel = 0.0;
  int64_t nodes = 0;

  // DFS over positions; `covered` counts members already at quota.
  auto recurse = [&](auto&& self, int32_t pos, int32_t covered) -> void {
    if (nodes >= options_.max_nodes) return;
    ++nodes;
    const auto slots = take - static_cast<int32_t>(current.size());
    if (slots == 0) {
      if (covered > best_covered ||
          (covered == best_covered && current_rel > best_rel)) {
        best_covered = covered;
        best_rel = current_rel;
        best_positions = current;
      }
      return;
    }
    if (m - pos < slots) return;  // cannot fill the package

    // Coverage upper bound: a not-yet-covered member can still make quota
    // only if the suffix holds enough of their A_u items.
    int32_t covered_ub = covered;
    for (int32_t mem = 0; mem < n; ++mem) {
      const int32_t deficit =
          quota[static_cast<size_t>(mem)] - hits[static_cast<size_t>(mem)];
      if (deficit <= 0) continue;
      if (suffix_hits[static_cast<size_t>(mem)][static_cast<size_t>(pos)] >=
              deficit &&
          slots >= deficit) {
        ++covered_ub;
      }
    }
    if (covered_ub < best_covered) return;
    // Relevance upper bound, only binding at equal coverage.
    const double rel_ub = current_rel +
                          prefix_rel[static_cast<size_t>(pos + slots)] -
                          prefix_rel[static_cast<size_t>(pos)];
    if (covered_ub == best_covered && rel_ub <= best_rel) return;

    // Branch: take ordered[pos], then skip it.
    const int32_t cand = ordered[static_cast<size_t>(pos)];
    current.push_back(pos);
    current_rel += context.candidate(cand).group_relevance;
    int32_t covered_after = covered;
    for (int32_t mem = 0; mem < n; ++mem) {
      if (hit[static_cast<size_t>(mem)][static_cast<size_t>(pos)] != 0 &&
          ++hits[static_cast<size_t>(mem)] == quota[static_cast<size_t>(mem)] &&
          quota[static_cast<size_t>(mem)] > 0) {
        ++covered_after;
      }
    }
    self(self, pos + 1, covered_after);
    for (int32_t mem = 0; mem < n; ++mem) {
      if (hit[static_cast<size_t>(mem)][static_cast<size_t>(pos)] != 0) {
        --hits[static_cast<size_t>(mem)];
      }
    }
    current_rel -= context.candidate(cand).group_relevance;
    current.pop_back();

    self(self, pos + 1, covered);
  };
  // Members with a zero quota (empty A_u) are covered from the start.
  int32_t initially_covered = 0;
  for (int32_t mem = 0; mem < n; ++mem) {
    if (quota[static_cast<size_t>(mem)] == 0) ++initially_covered;
  }
  recurse(recurse, 0, initially_covered);
  if (best_covered < 0) {
    // The node cap fired before the leftmost (all-takes) leaf — only
    // possible when max_nodes < z. Fall back to the top-z by relevance.
    best_positions.resize(static_cast<size_t>(take));
    for (int32_t p = 0; p < take; ++p) {
      best_positions[static_cast<size_t>(p)] = p;
    }
  }

  // Report in descending-relevance selection order (the enumeration order).
  std::vector<int32_t> picked;
  picked.reserve(best_positions.size());
  for (const int32_t pos : best_positions) {
    picked.push_back(ordered[static_cast<size_t>(pos)]);
  }
  return FinalizeSelection(context, picked);
}

}  // namespace fairrec
