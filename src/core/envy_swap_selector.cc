#include "core/envy_swap_selector.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace fairrec {
namespace {

/// Total pairwise envy over normalized satisfactions; members with no
/// defined relevance anywhere (satisfaction -1) neither envy nor are envied.
double TotalEnvy(const std::vector<double>& satisfaction) {
  double total = 0.0;
  for (const double su : satisfaction) {
    if (su < 0.0) continue;
    for (const double sv : satisfaction) {
      if (sv < 0.0) continue;
      if (sv > su) total += sv - su;
    }
  }
  return total;
}

}  // namespace

EnvySwapSelector::EnvySwapSelector(EnvySwapOptions options)
    : options_(options) {}

Result<Selection> EnvySwapSelector::Select(const GroupContext& context,
                                           int32_t z) const {
  if (z <= 0) return Status::InvalidArgument("z must be positive");
  const int32_t m = context.num_candidates();
  const int32_t n = context.group_size();

  // best_possible[u]: the best relevance any candidate offers member u
  // (the satisfaction denominator); <= 0 marks "nothing defined".
  std::vector<double> best_possible(static_cast<size_t>(n), 0.0);
  for (int32_t mem = 0; mem < n; ++mem) {
    bool any = false;
    double best = 0.0;
    for (const GroupCandidate& c : context.candidates()) {
      const double score = c.member_relevance[static_cast<size_t>(mem)];
      if (std::isnan(score)) continue;
      best = any ? std::max(best, score) : score;
      any = true;
    }
    best_possible[static_cast<size_t>(mem)] = any ? best : 0.0;
  }

  // ---- Seed: best-z by group relevance ---------------------------------
  std::vector<int32_t> order(static_cast<size_t>(m));
  for (int32_t c = 0; c < m; ++c) order[static_cast<size_t>(c)] = c;
  std::sort(order.begin(), order.end(), [&context](int32_t a, int32_t b) {
    const GroupCandidate& ca = context.candidate(a);
    const GroupCandidate& cb = context.candidate(b);
    if (ca.group_relevance != cb.group_relevance) {
      return ca.group_relevance > cb.group_relevance;
    }
    return ca.item < cb.item;
  });
  order.resize(static_cast<size_t>(std::min(z, m)));
  std::vector<int32_t> selected_indexes = std::move(order);

  std::vector<uint8_t> in_d(static_cast<size_t>(m), 0);
  for (const int32_t c : selected_indexes) in_d[static_cast<size_t>(c)] = 1;

  // Satisfaction (and value) of an explicit candidate set; O(z * n). The
  // swap scan recomputes instead of maintaining incremental state because a
  // removal invalidates per-member maxima anyway.
  std::vector<double> satisfaction(static_cast<size_t>(n), 0.0);
  auto evaluate = [&](const std::vector<int32_t>& d, double* envy,
                      double* value) {
    for (int32_t mem = 0; mem < n; ++mem) {
      const double denom = best_possible[static_cast<size_t>(mem)];
      if (denom <= 0.0) {
        satisfaction[static_cast<size_t>(mem)] = -1.0;
        continue;
      }
      double best_in_d = 0.0;
      for (const int32_t c : d) {
        const double score =
            context.candidate(c).member_relevance[static_cast<size_t>(mem)];
        if (!std::isnan(score)) best_in_d = std::max(best_in_d, score);
      }
      satisfaction[static_cast<size_t>(mem)] = best_in_d / denom;
    }
    *envy = TotalEnvy(satisfaction);
    *value = EvaluateSelection(context, d).value;
  };

  double cur_envy = 0.0;
  double cur_value = 0.0;
  evaluate(selected_indexes, &cur_envy, &cur_value);

  std::vector<int32_t> trial = selected_indexes;
  for (int32_t round = 0; round < options_.max_swaps; ++round) {
    double best_envy = cur_envy;
    double best_value = cur_value;
    size_t best_slot = 0;
    int32_t best_in = -1;
    for (size_t slot = 0; slot < selected_indexes.size(); ++slot) {
      for (int32_t in = 0; in < m; ++in) {
        if (in_d[static_cast<size_t>(in)] != 0) continue;
        trial[slot] = in;
        double envy = 0.0;
        double value = 0.0;
        evaluate(trial, &envy, &value);
        // Lexicographic: strictly less envy, or equal envy and more value.
        const bool better = envy < best_envy - 1e-12 ||
                            (envy < best_envy + 1e-12 &&
                             value > best_value + 1e-12);
        if (better) {
          best_envy = envy;
          best_value = value;
          best_slot = slot;
          best_in = in;
        }
      }
      trial[slot] = selected_indexes[slot];
    }
    if (best_in < 0) break;  // local optimum
    in_d[static_cast<size_t>(selected_indexes[best_slot])] = 0;
    in_d[static_cast<size_t>(best_in)] = 1;
    selected_indexes[best_slot] = best_in;
    trial[best_slot] = best_in;
    cur_envy = best_envy;
    cur_value = best_value;
  }

  std::sort(selected_indexes.begin(), selected_indexes.end());
  return FinalizeSelection(context, selected_indexes);
}

}  // namespace fairrec
