#include "core/greedy_selector.h"

#include <algorithm>
#include <vector>

namespace fairrec {

Result<Selection> GreedyValueSelector::Select(const GroupContext& context,
                                              int32_t z) const {
  if (z <= 0) return Status::InvalidArgument("z must be positive");
  const int32_t m = context.num_candidates();
  const int32_t n = context.group_size();

  std::vector<uint8_t> selected(static_cast<size_t>(m), 0);
  std::vector<int32_t> member_hits(static_cast<size_t>(n), 0);
  int32_t fair_members = 0;
  double rel_sum = 0.0;
  const double inv_n = 1.0 / static_cast<double>(n);

  std::vector<int32_t> picked;
  picked.reserve(static_cast<size_t>(std::min(z, m)));

  for (int32_t round = 0; round < z && round < m; ++round) {
    int32_t best = -1;
    double best_value = 0.0;
    double best_rel = 0.0;
    for (int32_t c = 0; c < m; ++c) {
      if (selected[static_cast<size_t>(c)] != 0) continue;
      const GroupCandidate& cand = context.candidate(c);
      // Value of D ∪ {c} from the incremental state.
      int32_t fair_after = fair_members;
      for (int32_t mem = 0; mem < n; ++mem) {
        if (member_hits[static_cast<size_t>(mem)] == 0 &&
            context.InMemberTopK(mem, c)) {
          ++fair_after;
        }
      }
      const double value =
          static_cast<double>(fair_after) * inv_n * (rel_sum + cand.group_relevance);
      const bool better =
          best == -1 || value > best_value ||
          (value == best_value &&
           (cand.group_relevance > best_rel ||
            (cand.group_relevance == best_rel &&
             cand.item < context.candidate(best).item)));
      if (better) {
        best = c;
        best_value = value;
        best_rel = cand.group_relevance;
      }
    }
    if (best < 0) break;
    selected[static_cast<size_t>(best)] = 1;
    picked.push_back(best);
    rel_sum += context.candidate(best).group_relevance;
    for (int32_t mem = 0; mem < n; ++mem) {
      if (context.InMemberTopK(mem, best)) {
        if (member_hits[static_cast<size_t>(mem)]++ == 0) ++fair_members;
      }
    }
  }

  return FinalizeSelection(context, picked);
}

}  // namespace fairrec
