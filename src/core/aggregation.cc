#include "core/aggregation.h"

#include <algorithm>
#include <vector>

#include "common/logging.h"

namespace fairrec {

std::string_view AggregationKindToString(AggregationKind kind) {
  switch (kind) {
    case AggregationKind::kMinimum:
      return "min";
    case AggregationKind::kAverage:
      return "avg";
    case AggregationKind::kMaximum:
      return "max";
    case AggregationKind::kMedian:
      return "median";
    case AggregationKind::kMiseryBlend:
      return "misery-blend";
  }
  return "?";
}

namespace {

double Minimum(std::span<const double> scores) {
  return *std::min_element(scores.begin(), scores.end());
}

double Average(std::span<const double> scores) {
  double sum = 0.0;
  for (const double s : scores) sum += s;
  return sum / static_cast<double>(scores.size());
}

double Median(std::span<const double> scores) {
  std::vector<double> sorted(scores.begin(), scores.end());
  std::sort(sorted.begin(), sorted.end());
  const size_t n = sorted.size();
  if (n % 2 == 1) return sorted[n / 2];
  return (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0;
}

}  // namespace

double Aggregate(std::span<const double> member_scores, AggregationKind kind,
                 const AggregationParams& params) {
  FAIRREC_DCHECK(!member_scores.empty());
  switch (kind) {
    case AggregationKind::kMinimum:
      return Minimum(member_scores);
    case AggregationKind::kAverage:
      return Average(member_scores);
    case AggregationKind::kMaximum:
      return *std::max_element(member_scores.begin(), member_scores.end());
    case AggregationKind::kMedian:
      return Median(member_scores);
    case AggregationKind::kMiseryBlend: {
      const double alpha = std::clamp(params.misery_alpha, 0.0, 1.0);
      return alpha * Minimum(member_scores) +
             (1.0 - alpha) * Average(member_scores);
    }
  }
  return 0.0;
}

}  // namespace fairrec
