#include "core/fairness.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "core/selector.h"

namespace fairrec {

bool IsFairToMember(const GroupContext& context, int32_t member_index,
                    const std::vector<int32_t>& candidate_indexes) {
  for (const int32_t c : candidate_indexes) {
    if (context.InMemberTopK(member_index, c)) return true;
  }
  return false;
}

ValueBreakdown EvaluateSelection(const GroupContext& context,
                                 const std::vector<int32_t>& candidate_indexes) {
  ValueBreakdown out;
  const int32_t n = context.group_size();
  FAIRREC_DCHECK(n > 0);
  int32_t fair_members = 0;
  for (int32_t m = 0; m < n; ++m) {
    if (IsFairToMember(context, m, candidate_indexes)) ++fair_members;
  }
  out.fairness = static_cast<double>(fair_members) / static_cast<double>(n);
  for (const int32_t c : candidate_indexes) {
    out.relevance_sum += context.candidate(c).group_relevance;
  }
  out.value = out.fairness * out.relevance_sum;
  return out;
}

std::vector<MemberBreakdown> ComputeMemberBreakdowns(
    const GroupContext& context, const std::vector<int32_t>& candidate_indexes) {
  const int32_t n = context.group_size();
  std::vector<MemberBreakdown> out(static_cast<size_t>(n));
  for (int32_t m = 0; m < n; ++m) {
    MemberBreakdown& row = out[static_cast<size_t>(m)];
    const auto mem = static_cast<size_t>(m);
    double best_possible = 0.0;
    bool any_defined = false;
    for (const GroupCandidate& c : context.candidates()) {
      const double score = c.member_relevance[mem];
      if (std::isnan(score)) continue;
      best_possible = any_defined ? std::max(best_possible, score) : score;
      any_defined = true;
    }
    for (const int32_t c : candidate_indexes) {
      if (context.InMemberTopK(m, c)) {
        row.satisfied = true;
        ++row.top_k_hits;
      }
      const double score = context.candidate(c).member_relevance[mem];
      if (std::isnan(score)) continue;
      row.relevance_sum += score;
      row.best_relevance = std::max(row.best_relevance, score);
    }
    if (any_defined && best_possible > 0.0) {
      row.satisfaction = row.best_relevance / best_possible;
    }
  }
  return out;
}

Selection FinalizeSelection(const GroupContext& context,
                            const std::vector<int32_t>& candidate_indexes) {
  Selection out;
  out.score = EvaluateSelection(context, candidate_indexes);
  out.members = ComputeMemberBreakdowns(context, candidate_indexes);
  out.items.reserve(candidate_indexes.size());
  for (const int32_t c : candidate_indexes) {
    out.items.push_back(context.candidate(c).item);
  }
  return out;
}

ValueBreakdown EvaluateSelectionByItems(const GroupContext& context,
                                        const std::vector<ItemId>& items) {
  std::vector<int32_t> indexes;
  indexes.reserve(items.size());
  for (const ItemId item : items) {
    const int32_t index = context.CandidateIndexOf(item);
    if (index >= 0) indexes.push_back(index);
  }
  return EvaluateSelection(context, indexes);
}

}  // namespace fairrec
