#include "core/fairness.h"

#include "common/logging.h"

namespace fairrec {

bool IsFairToMember(const GroupContext& context, int32_t member_index,
                    const std::vector<int32_t>& candidate_indexes) {
  for (const int32_t c : candidate_indexes) {
    if (context.InMemberTopK(member_index, c)) return true;
  }
  return false;
}

ValueBreakdown EvaluateSelection(const GroupContext& context,
                                 const std::vector<int32_t>& candidate_indexes) {
  ValueBreakdown out;
  const int32_t n = context.group_size();
  FAIRREC_DCHECK(n > 0);
  int32_t fair_members = 0;
  for (int32_t m = 0; m < n; ++m) {
    if (IsFairToMember(context, m, candidate_indexes)) ++fair_members;
  }
  out.fairness = static_cast<double>(fair_members) / static_cast<double>(n);
  for (const int32_t c : candidate_indexes) {
    out.relevance_sum += context.candidate(c).group_relevance;
  }
  out.value = out.fairness * out.relevance_sum;
  return out;
}

ValueBreakdown EvaluateSelectionByItems(const GroupContext& context,
                                        const std::vector<ItemId>& items) {
  std::vector<int32_t> indexes;
  indexes.reserve(items.size());
  for (const ItemId item : items) {
    const int32_t index = context.CandidateIndexOf(item);
    if (index >= 0) indexes.push_back(index);
  }
  return EvaluateSelection(context, indexes);
}

}  // namespace fairrec
