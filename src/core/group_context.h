#ifndef FAIRREC_CORE_GROUP_CONTEXT_H_
#define FAIRREC_CORE_GROUP_CONTEXT_H_

#include <vector>

#include "cf/recommender.h"
#include "common/result.h"
#include "core/aggregation.h"
#include "ratings/types.h"

namespace fairrec {

/// One group candidate item with its aggregated and per-member relevance.
struct GroupCandidate {
  ItemId item = kInvalidItemId;
  /// relevanceG(G, i) under the context's aggregation (Def. 2).
  double group_relevance = 0.0;
  /// relevance(u, i) per member, aligned with GroupContext::members().
  std::vector<double> member_relevance;
};

/// Controls for GroupContext::Build.
struct GroupContextOptions {
  AggregationKind aggregation = AggregationKind::kAverage;
  /// Parameters for the parameterized extension designs (kMiseryBlend).
  AggregationParams aggregation_params;
  /// k of the per-member A_u sets that fairness (Def. 3) tests against.
  int32_t top_k = 10;
  /// Keep only items whose relevance is defined for *every* member (default).
  /// When false, items defined for at least one member are kept and the
  /// aggregation runs over the defined subset only.
  bool require_all_members = true;
};

/// The immutable working set shared by all top-z selectors: the group's
/// candidate items (with per-member and aggregated relevance) and each
/// member's A_u. A_u is the member's top-k *within the candidate set*, so
/// every fairness witness is actually selectable — this keeps Algorithm 1,
/// the brute force, and Proposition 1 mutually consistent.
class GroupContext {
 public:
  /// An empty context (no members, no candidates). Useful as a placeholder
  /// in aggregates; every accessor taking an index DCHECKs, so an empty
  /// context must be replaced via Build() before use.
  GroupContext() = default;

  /// Builds from per-member relevance tables (cf::Recommender output).
  /// Fails when `members` is empty or member relevance vectors disagree on
  /// the item universe ordering.
  static Result<GroupContext> Build(const std::vector<MemberRelevance>& members,
                                    GroupContextOptions options = {});

  /// Returns a context restricted to the m candidates with the highest group
  /// relevance (ties: ascending item id) — the "m candidate recommendations
  /// to choose from" knob of the paper's evaluation (§VI). A_u sets are
  /// recomputed within the restricted universe. m >= candidates() is a copy.
  GroupContext RestrictToTopM(int32_t m) const;

  int32_t group_size() const { return static_cast<int32_t>(members_.size()); }
  const Group& members() const { return members_; }
  const GroupContextOptions& options() const { return options_; }

  int32_t num_candidates() const { return static_cast<int32_t>(candidates_.size()); }
  const std::vector<GroupCandidate>& candidates() const { return candidates_; }
  const GroupCandidate& candidate(int32_t index) const;

  /// Candidate index of an item id, or -1.
  int32_t CandidateIndexOf(ItemId item) const;

  /// True iff candidate `candidate_index` is in member `member_index`'s A_u.
  bool InMemberTopK(int32_t member_index, int32_t candidate_index) const;

  /// The A_u list of a member (descending relevance, ties ascending item id).
  const std::vector<ScoredItem>& MemberTopK(int32_t member_index) const;

 private:
  void RebuildTopKSets();

  Group members_;
  GroupContextOptions options_;
  std::vector<GroupCandidate> candidates_;        // ascending item id
  std::vector<std::vector<ScoredItem>> top_k_;    // per member: A_u
  // top_k_flags_[member][candidate_index]: candidate in A_u?
  std::vector<std::vector<uint8_t>> top_k_flags_;
};

}  // namespace fairrec

#endif  // FAIRREC_CORE_GROUP_CONTEXT_H_
