#ifndef FAIRREC_CORE_AGGREGATION_H_
#define FAIRREC_CORE_AGGREGATION_H_

#include <span>
#include <string_view>

namespace fairrec {

/// The Aggr designs of Definition 2 (first two), plus extension designs from
/// the group-recommendation literature the paper builds on ([1], [17], [21])
/// for the EXT-B ablation.
enum class AggregationKind {
  /// "Strong user preferences act as a veto": group relevance is the
  /// minimum member relevance (least misery).
  kMinimum,
  /// "Satisfying the majority": group relevance is the average member
  /// relevance.
  kAverage,
  /// Most-pleasure upper bound (extension).
  kMaximum,
  /// Outlier-robust majority: the median member relevance (extension).
  kMedian,
  /// Convex blend alpha * min + (1 - alpha) * avg — least misery softened
  /// toward the majority (extension; alpha from AggregationParams).
  kMiseryBlend,
};

/// Parameters for the parameterized designs; ignored by the others.
struct AggregationParams {
  /// Weight of the least-misery term in kMiseryBlend, in [0, 1].
  double misery_alpha = 0.5;
};

std::string_view AggregationKindToString(AggregationKind kind);

/// Applies the aggregation to one item's member relevance scores.
/// Precondition: `member_scores` is non-empty.
double Aggregate(std::span<const double> member_scores, AggregationKind kind,
                 const AggregationParams& params = {});

}  // namespace fairrec

#endif  // FAIRREC_CORE_AGGREGATION_H_
