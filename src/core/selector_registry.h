#ifndef FAIRREC_CORE_SELECTOR_REGISTRY_H_
#define FAIRREC_CORE_SELECTOR_REGISTRY_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "core/selector.h"

namespace fairrec {

/// A parsed selector option bag: the `key=value,key=value` tail of a selector
/// spec, with typed accessors. Factories consume keys through the getters;
/// SelectorRegistry::Create rejects a bag with keys no getter ever read, so a
/// typoed option is an InvalidArgument instead of a silent default.
class SelectorOptionBag {
 public:
  SelectorOptionBag() = default;

  /// Parses "k1=v1,k2=v2" (empty spec = empty bag). Duplicate or malformed
  /// (no '=', empty key) entries are InvalidArgument.
  static Result<SelectorOptionBag> Parse(std::string_view spec);

  bool Has(const std::string& key) const { return values_.count(key) != 0; }
  bool empty() const { return values_.empty(); }

  /// Typed getters: the default when the key is absent, InvalidArgument when
  /// present but unparsable. Reading a key marks it consumed.
  Result<int64_t> GetInt(const std::string& key, int64_t default_value) const;
  Result<double> GetDouble(const std::string& key, double default_value) const;
  /// Accepts true/false/1/0 (case-insensitive).
  Result<bool> GetBool(const std::string& key, bool default_value) const;
  std::string GetString(const std::string& key,
                        std::string default_value) const;

  /// Keys present in the bag that no getter has read yet (sorted).
  std::vector<std::string> UnconsumedKeys() const;

 private:
  std::map<std::string, std::string> values_;
  // Consumption is observational bookkeeping over a logically-const bag.
  mutable std::map<std::string, bool> consumed_;
};

/// Self-describing selector metadata, the registry's `--list-selectors` and
/// docs surface.
struct SelectorInfo {
  /// Canonical registry name; must equal the constructed selector's name().
  std::string name;
  /// One-line human description.
  std::string summary;
  /// The objective the selector optimizes, for docs/UI.
  std::string objective;
  /// Accepted option keys as "key (type, default)" strings.
  std::vector<std::string> option_keys;
  /// Alternate lookup names (legacy CLI spellings).
  std::vector<std::string> aliases;
};

/// The single construction path for ItemSetSelector implementations: every
/// consumer (CLI, serving, eval, benches) resolves selectors by name here,
/// so adding a selector is one file plus one registration — no call-site
/// edits. Thread-safe; the global instance self-registers the built-in zoo
/// on first use.
class SelectorRegistry {
 public:
  using Factory = std::function<Result<std::unique_ptr<ItemSetSelector>>(
      const SelectorOptionBag& options)>;

  /// The process-wide registry, with all built-in selectors registered.
  static SelectorRegistry& Global();

  /// Registers a selector. AlreadyExists when the name or an alias collides.
  Status Register(SelectorInfo info, Factory factory);

  /// Constructs by canonical name or alias. Unknown names and unconsumed
  /// (typoed) option keys are InvalidArgument.
  Result<std::unique_ptr<ItemSetSelector>> Create(
      std::string_view name, const SelectorOptionBag& options = {}) const;

  /// Constructs from a spec string: "name" or "name:k1=v1,k2=v2".
  Result<std::unique_ptr<ItemSetSelector>> CreateFromSpec(
      std::string_view spec) const;

  /// True when `name` resolves (canonical or alias).
  bool Has(std::string_view name) const;

  /// Metadata of one selector; InvalidArgument when unknown.
  Result<SelectorInfo> Describe(std::string_view name) const;

  /// All registered selectors, sorted by canonical name.
  std::vector<SelectorInfo> List() const;

  /// Canonical names only, sorted.
  std::vector<std::string> Names() const;

 private:
  SelectorRegistry() = default;

  struct Entry {
    SelectorInfo info;
    Factory factory;
  };
  const Entry* Find(std::string_view name) const;

  mutable std::mutex mutex_;
  std::map<std::string, Entry, std::less<>> entries_;  // by canonical name
  std::map<std::string, std::string, std::less<>> aliases_;
};

}  // namespace fairrec

#endif  // FAIRREC_CORE_SELECTOR_REGISTRY_H_
