#ifndef FAIRREC_CORE_GREEDY_SELECTOR_H_
#define FAIRREC_CORE_GREEDY_SELECTOR_H_

#include <string>

#include "core/selector.h"

namespace fairrec {

/// Greedy marginal-value baseline (EXT-C ablation): grow D one item at a
/// time, always adding the candidate with the largest increase of
/// value(G, D) = fairness(G, D) * sum relevance. This is the classic
/// lower-complexity subset-construction family the paper cites ([6],
/// p-dispersion heuristics) applied directly to the value objective; it
/// brackets Algorithm 1 from the "pure objective chasing" side.
///
/// Ties break toward higher group relevance, then smaller item id.
/// Complexity: O(z * m * |G|).
class GreedyValueSelector final : public ItemSetSelector {
 public:
  GreedyValueSelector() = default;

  Result<Selection> Select(const GroupContext& context, int32_t z) const override;
  std::string name() const override { return "greedy-value"; }
};

}  // namespace fairrec

#endif  // FAIRREC_CORE_GREEDY_SELECTOR_H_
