#include "core/fairness_heuristic.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/logging.h"

namespace fairrec {

FairnessHeuristic::FairnessHeuristic(FairnessHeuristicOptions options)
    : options_(options) {}

Result<Selection> FairnessHeuristic::Select(const GroupContext& context,
                                            int32_t z) const {
  if (z <= 0) return Status::InvalidArgument("z must be positive");
  const int32_t n = context.group_size();
  const int32_t m = context.num_candidates();

  std::vector<uint8_t> selected(static_cast<size_t>(m), 0);
  std::vector<int32_t> picked;  // candidate indexes in selection order
  picked.reserve(static_cast<size_t>(std::min(z, m)));

  // Picks argmax_{i in A_source \ D} relevance(u_scorer, i); returns the
  // candidate index or -1 when A_source is exhausted.
  auto pick_for_pair = [&](int32_t source, int32_t scorer) -> int32_t {
    int32_t best = -1;
    double best_score = 0.0;
    for (const ScoredItem& entry : context.MemberTopK(source)) {
      const int32_t c = context.CandidateIndexOf(entry.item);
      FAIRREC_DCHECK(c >= 0);
      if (selected[static_cast<size_t>(c)] != 0) continue;
      const double score =
          context.candidate(c).member_relevance[static_cast<size_t>(scorer)];
      if (std::isnan(score)) continue;  // undefined for the scorer
      if (best == -1 || score > best_score ||
          (score == best_score && context.candidate(c).item <
                                      context.candidate(best).item)) {
        best = c;
        best_score = score;
      }
    }
    return best;
  };

  bool progressed = true;
  while (static_cast<int32_t>(picked.size()) < z && progressed) {
    progressed = false;
    for (int32_t x = 0; x < n && static_cast<int32_t>(picked.size()) < z; ++x) {
      for (int32_t y = 0; y < n && static_cast<int32_t>(picked.size()) < z; ++y) {
        if (x == y) continue;
        // Line 7: item from A_uy scored by ux (or the prose's transpose).
        const int32_t source = options_.pick_from_a_ux ? x : y;
        const int32_t scorer = options_.pick_from_a_ux ? y : x;
        const int32_t best = pick_for_pair(source, scorer);
        if (best < 0) continue;
        selected[static_cast<size_t>(best)] = 1;
        picked.push_back(best);
        progressed = true;
      }
    }
  }

  if (options_.fill_shortfall && static_cast<int32_t>(picked.size()) < z) {
    // Top up with the best remaining candidates by group relevance.
    std::vector<int32_t> remaining;
    for (int32_t c = 0; c < m; ++c) {
      if (selected[static_cast<size_t>(c)] == 0) remaining.push_back(c);
    }
    std::sort(remaining.begin(), remaining.end(), [&](int32_t a, int32_t b) {
      const GroupCandidate& ca = context.candidate(a);
      const GroupCandidate& cb = context.candidate(b);
      if (ca.group_relevance != cb.group_relevance) {
        return ca.group_relevance > cb.group_relevance;
      }
      return ca.item < cb.item;
    });
    for (const int32_t c : remaining) {
      if (static_cast<int32_t>(picked.size()) >= z) break;
      picked.push_back(c);
    }
  }

  return FinalizeSelection(context, picked);
}

}  // namespace fairrec
