#ifndef FAIRREC_CORE_SELECTOR_H_
#define FAIRREC_CORE_SELECTOR_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/fairness.h"
#include "core/group_context.h"
#include "ratings/types.h"

namespace fairrec {

/// The output of a top-z selector: D, with its value decomposition and the
/// per-member satisfaction decomposition behind it.
struct Selection {
  /// The selected items, in selection order (|items| <= z; smaller only when
  /// the candidate pool is exhausted).
  std::vector<ItemId> items;
  ValueBreakdown score;
  /// One row per group member, aligned with GroupContext::members(): how D
  /// treats each individual, not just the group aggregate.
  std::vector<MemberBreakdown> members;
};

/// Assembles a Selection from candidate indexes (kept in the given order):
/// items, the group-level score, and the per-member breakdowns. Every
/// selector funnels its picks through here so all three views stay
/// consistent by construction.
Selection FinalizeSelection(const GroupContext& context,
                            const std::vector<int32_t>& candidate_indexes);

/// Interface for the top-z "most valuable recommendations" selectors of
/// §III-D: given the group's candidate context and a budget z, produce the
/// set D maximizing (exactly or heuristically) value(G, D).
class ItemSetSelector {
 public:
  virtual ~ItemSetSelector() = default;

  /// Selects up to z items. z must be positive.
  virtual Result<Selection> Select(const GroupContext& context,
                                   int32_t z) const = 0;

  /// Short diagnostic name ("algorithm1", "brute-force", "greedy-value").
  virtual std::string name() const = 0;
};

}  // namespace fairrec

#endif  // FAIRREC_CORE_SELECTOR_H_
