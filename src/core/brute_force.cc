#include "core/brute_force.h"

#include <algorithm>
#include <string>
#include <vector>

#include "common/logging.h"

namespace fairrec {

BruteForceSelector::BruteForceSelector(BruteForceOptions options)
    : options_(options) {}

uint64_t BruteForceSelector::CountCombinations(int32_t m, int32_t z) {
  if (z < 0 || z > m) return 0;
  z = std::min(z, m - z);
  // C(m, z) = prod_{i=1..z} (m - z + i) / i, exact at every step.
  unsigned __int128 result = 1;
  for (int32_t i = 1; i <= z; ++i) {
    result = result * static_cast<uint64_t>(m - z + i) / static_cast<uint64_t>(i);
    if (result > UINT64_MAX) return UINT64_MAX;
  }
  return static_cast<uint64_t>(result);
}

Result<Selection> BruteForceSelector::Select(const GroupContext& context,
                                             int32_t z) const {
  if (z <= 0) return Status::InvalidArgument("z must be positive");
  const int32_t m = context.num_candidates();
  const int32_t n = context.group_size();

  if (z >= m) {
    // Only one subset exists: everything.
    std::vector<int32_t> all(static_cast<size_t>(m));
    for (int32_t c = 0; c < m; ++c) all[static_cast<size_t>(c)] = c;
    return FinalizeSelection(context, all);
  }

  const uint64_t combos = CountCombinations(m, z);
  if (options_.max_combinations != 0 && combos > options_.max_combinations) {
    return Status::FailedPrecondition(
        "brute force would enumerate " + std::to_string(combos) +
        " combinations, above the configured cap of " +
        std::to_string(options_.max_combinations));
  }

  // Flatten the per-candidate data for the hot loop.
  std::vector<double> group_rel(static_cast<size_t>(m));
  // hit_members[c]: members whose A_u contains candidate c.
  std::vector<std::vector<int32_t>> hit_members(static_cast<size_t>(m));
  for (int32_t c = 0; c < m; ++c) {
    group_rel[static_cast<size_t>(c)] = context.candidate(c).group_relevance;
    for (int32_t mem = 0; mem < n; ++mem) {
      if (context.InMemberTopK(mem, c)) {
        hit_members[static_cast<size_t>(c)].push_back(mem);
      }
    }
  }

  // Incremental state.
  double rel_sum = 0.0;
  std::vector<int32_t> member_hits(static_cast<size_t>(n), 0);
  int32_t fair_members = 0;
  auto add = [&](int32_t c) {
    rel_sum += group_rel[static_cast<size_t>(c)];
    for (const int32_t mem : hit_members[static_cast<size_t>(c)]) {
      if (member_hits[static_cast<size_t>(mem)]++ == 0) ++fair_members;
    }
  };
  auto remove = [&](int32_t c) {
    rel_sum -= group_rel[static_cast<size_t>(c)];
    for (const int32_t mem : hit_members[static_cast<size_t>(c)]) {
      if (--member_hits[static_cast<size_t>(mem)] == 0) --fair_members;
    }
  };

  std::vector<int32_t> combo(static_cast<size_t>(z));
  for (int32_t p = 0; p < z; ++p) {
    combo[static_cast<size_t>(p)] = p;
    add(p);
  }

  double best_value = -1.0;
  std::vector<int32_t> best_combo;
  const double inv_n = 1.0 / static_cast<double>(n);
  uint64_t steps = 0;
  auto evaluate = [&] {
    const double value = static_cast<double>(fair_members) * inv_n * rel_sum;
    if (value > best_value) {
      best_value = value;
      best_combo = combo;
    }
  };
  evaluate();

  // Lexicographic successor enumeration with suffix-only state updates.
  while (true) {
    int32_t p = z - 1;
    while (p >= 0 && combo[static_cast<size_t>(p)] == m - z + p) --p;
    if (p < 0) break;
    for (int32_t q = p; q < z; ++q) remove(combo[static_cast<size_t>(q)]);
    ++combo[static_cast<size_t>(p)];
    add(combo[static_cast<size_t>(p)]);
    for (int32_t q = p + 1; q < z; ++q) {
      combo[static_cast<size_t>(q)] = combo[static_cast<size_t>(q - 1)] + 1;
      add(combo[static_cast<size_t>(q)]);
    }
    // Bound floating-point drift of the running sum on very long runs.
    if ((++steps & ((1u << 20) - 1)) == 0) {
      rel_sum = 0.0;
      for (const int32_t c : combo) rel_sum += group_rel[static_cast<size_t>(c)];
    }
    evaluate();
  }

  return FinalizeSelection(context, best_combo);
}

}  // namespace fairrec
