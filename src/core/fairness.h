#ifndef FAIRREC_CORE_FAIRNESS_H_
#define FAIRREC_CORE_FAIRNESS_H_

#include <vector>

#include "core/group_context.h"
#include "ratings/types.h"

namespace fairrec {

/// The decomposition of value(G, D) = fairness(G, D) * sum_i relevanceG(G, i).
struct ValueBreakdown {
  /// fairness(G, D) of Definition 3: the fraction of members for whom D
  /// contains at least one of their top-k items.
  double fairness = 0.0;
  /// sum of group relevance over D.
  double relevance_sum = 0.0;
  /// The product, i.e. value(G, D).
  double value = 0.0;
};

/// How one member fares under a selection D — the per-member row of the
/// group-level ValueBreakdown. The offline fairness metrics (eval/
/// fairness_metrics.h) and the serving responses are both derived from it.
struct MemberBreakdown {
  /// Def. 3's per-member test: D contains at least one item of A_u.
  bool satisfied = false;
  /// How many of the member's A_u items D contains (the Sato-style package
  /// coverage count; satisfied == (top_k_hits >= 1)).
  int32_t top_k_hits = 0;
  /// Sum of the member's relevance over D (undefined scores contribute 0).
  double relevance_sum = 0.0;
  /// The single best relevance D offers the member (0 when none defined).
  double best_relevance = 0.0;
  /// best_relevance normalized by the best relevance ANY candidate offers
  /// the member — 1.0 means D contains their favourite candidate. -1.0 when
  /// the member has no defined relevance anywhere (nothing to satisfy).
  double satisfaction = -1.0;
};

/// Per-member decomposition of a selection over candidate indexes, aligned
/// with GroupContext::members().
std::vector<MemberBreakdown> ComputeMemberBreakdowns(
    const GroupContext& context, const std::vector<int32_t>& candidate_indexes);

/// True iff D (given as candidate indexes) is fair to `member_index`: it
/// contains at least one item of the member's A_u (Def. 3's G_D test).
bool IsFairToMember(const GroupContext& context, int32_t member_index,
                    const std::vector<int32_t>& candidate_indexes);

/// Computes fairness(G, D) and value(G, D) over candidate indexes.
/// Out-of-range indexes are a programming error (DCHECK).
ValueBreakdown EvaluateSelection(const GroupContext& context,
                                 const std::vector<int32_t>& candidate_indexes);

/// Convenience overload on item ids; ids not in the candidate set contribute
/// nothing to either factor.
ValueBreakdown EvaluateSelectionByItems(const GroupContext& context,
                                        const std::vector<ItemId>& items);

}  // namespace fairrec

#endif  // FAIRREC_CORE_FAIRNESS_H_
