#ifndef FAIRREC_CORE_BRUTE_FORCE_H_
#define FAIRREC_CORE_BRUTE_FORCE_H_

#include <cstdint>
#include <string>

#include "core/selector.h"

namespace fairrec {

/// Controls for BruteForceSelector.
struct BruteForceOptions {
  /// Refuse to run when C(m, z) exceeds this bound (0 = unlimited). Guards
  /// tests and examples against accidental multi-hour runs; the Table II
  /// bench runs unlimited.
  uint64_t max_combinations = 0;
};

/// The exact method of §III-D: enumerate all C(m, z) subsets of the candidate
/// pool and return the one maximizing value(G, D). Exponential — exactly the
/// behaviour Table II documents — but implemented with an incrementally
/// maintained state (running relevance sum + per-member A_u hit counters), so
/// each enumeration step costs O(|G| * changed positions) instead of O(z*|G|).
/// Enumeration order is lexicographic over candidate indexes; the first
/// maximum encountered wins, making the result deterministic.
class BruteForceSelector final : public ItemSetSelector {
 public:
  explicit BruteForceSelector(BruteForceOptions options = {});

  Result<Selection> Select(const GroupContext& context, int32_t z) const override;
  std::string name() const override { return "brute-force"; }

  /// C(m, z) with saturation at UINT64_MAX (no overflow UB).
  static uint64_t CountCombinations(int32_t m, int32_t z);

 private:
  BruteForceOptions options_;
};

}  // namespace fairrec

#endif  // FAIRREC_CORE_BRUTE_FORCE_H_
