#include "core/group_context.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "cf/top_k.h"
#include "common/logging.h"

namespace fairrec {

namespace {

constexpr double kUndefined = std::numeric_limits<double>::quiet_NaN();

bool IsDefined(double v) { return !std::isnan(v); }

}  // namespace

Result<GroupContext> GroupContext::Build(
    const std::vector<MemberRelevance>& members, GroupContextOptions options) {
  if (members.empty()) {
    return Status::InvalidArgument("group context needs >= 1 member");
  }
  if (options.top_k <= 0) {
    return Status::InvalidArgument("top_k must be positive");
  }
  for (const MemberRelevance& m : members) {
    for (size_t i = 1; i < m.relevance.size(); ++i) {
      if (m.relevance[i].item <= m.relevance[i - 1].item) {
        return Status::InvalidArgument(
            "member relevance lists must be strictly ascending by item id");
      }
    }
  }

  GroupContext ctx;
  ctx.options_ = options;
  for (const MemberRelevance& m : members) ctx.members_.push_back(m.user);
  const size_t n = members.size();

  // Merge the per-member (item-ascending) lists into per-item score rows.
  std::map<ItemId, std::vector<double>> rows;
  for (size_t m = 0; m < n; ++m) {
    for (const ScoredItem& s : members[m].relevance) {
      auto [it, inserted] = rows.try_emplace(s.item);
      if (inserted) it->second.assign(n, kUndefined);
      it->second[m] = s.score;
    }
  }

  for (auto& [item, scores] : rows) {
    std::vector<double> defined;
    defined.reserve(n);
    for (const double s : scores) {
      if (IsDefined(s)) defined.push_back(s);
    }
    if (options.require_all_members && defined.size() != n) continue;
    GroupCandidate candidate;
    candidate.item = item;
    candidate.group_relevance =
        Aggregate(std::span<const double>(defined), options.aggregation,
                  options.aggregation_params);
    candidate.member_relevance = std::move(scores);
    ctx.candidates_.push_back(std::move(candidate));
  }

  ctx.RebuildTopKSets();
  return ctx;
}

void GroupContext::RebuildTopKSets() {
  const size_t n = members_.size();
  top_k_.assign(n, {});
  top_k_flags_.assign(n, std::vector<uint8_t>(candidates_.size(), 0));
  for (size_t m = 0; m < n; ++m) {
    std::vector<ScoredItem> defined;
    defined.reserve(candidates_.size());
    for (const GroupCandidate& c : candidates_) {
      const double s = c.member_relevance[m];
      if (IsDefined(s)) defined.push_back({c.item, s});
    }
    top_k_[m] = SelectTopK(defined, options_.top_k);
    for (const ScoredItem& s : top_k_[m]) {
      const int32_t index = CandidateIndexOf(s.item);
      FAIRREC_DCHECK(index >= 0);
      top_k_flags_[m][static_cast<size_t>(index)] = 1;
    }
  }
}

GroupContext GroupContext::RestrictToTopM(int32_t m) const {
  GroupContext out;
  out.members_ = members_;
  out.options_ = options_;
  if (m >= num_candidates()) {
    out.candidates_ = candidates_;
  } else {
    std::vector<int32_t> order(candidates_.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int32_t>(i);
    std::sort(order.begin(), order.end(), [this](int32_t a, int32_t b) {
      const GroupCandidate& ca = candidates_[static_cast<size_t>(a)];
      const GroupCandidate& cb = candidates_[static_cast<size_t>(b)];
      if (ca.group_relevance != cb.group_relevance) {
        return ca.group_relevance > cb.group_relevance;
      }
      return ca.item < cb.item;
    });
    order.resize(static_cast<size_t>(std::max(m, 0)));
    std::sort(order.begin(), order.end());  // restore ascending item id order
    out.candidates_.reserve(order.size());
    for (const int32_t index : order) {
      out.candidates_.push_back(candidates_[static_cast<size_t>(index)]);
    }
  }
  out.RebuildTopKSets();
  return out;
}

const GroupCandidate& GroupContext::candidate(int32_t index) const {
  FAIRREC_DCHECK(index >= 0 && index < num_candidates());
  return candidates_[static_cast<size_t>(index)];
}

int32_t GroupContext::CandidateIndexOf(ItemId item) const {
  const auto it = std::lower_bound(
      candidates_.begin(), candidates_.end(), item,
      [](const GroupCandidate& c, ItemId target) { return c.item < target; });
  if (it == candidates_.end() || it->item != item) return -1;
  return static_cast<int32_t>(it - candidates_.begin());
}

bool GroupContext::InMemberTopK(int32_t member_index,
                                int32_t candidate_index) const {
  FAIRREC_DCHECK(member_index >= 0 && member_index < group_size());
  FAIRREC_DCHECK(candidate_index >= 0 && candidate_index < num_candidates());
  return top_k_flags_[static_cast<size_t>(member_index)]
                     [static_cast<size_t>(candidate_index)] != 0;
}

const std::vector<ScoredItem>& GroupContext::MemberTopK(
    int32_t member_index) const {
  FAIRREC_DCHECK(member_index >= 0 && member_index < group_size());
  return top_k_[static_cast<size_t>(member_index)];
}

}  // namespace fairrec
