#include "core/group_recommender.h"

#include "cf/top_k.h"
#include "common/logging.h"
#include "core/selector_registry.h"

namespace fairrec {

GroupRecommender::GroupRecommender(const Recommender* recommender,
                                   GroupContextOptions options)
    : recommender_(recommender), options_(options) {
  FAIRREC_CHECK(recommender != nullptr);
}

GroupRecommender::GroupRecommender(const RatingMatrix* matrix,
                                   const PeerProvider* peers,
                                   RecommenderOptions rec_options,
                                   GroupContextOptions options)
    : owned_recommender_(
          std::make_unique<Recommender>(matrix, peers, rec_options)),
      recommender_(owned_recommender_.get()),
      options_(options) {}

Result<GroupContext> GroupRecommender::BuildContext(const Group& group) const {
  RelevanceEstimator::Scratch scratch;
  return BuildContext(group, scratch);
}

Result<GroupContext> GroupRecommender::BuildContext(
    const Group& group, RelevanceEstimator::Scratch& scratch) const {
  FAIRREC_ASSIGN_OR_RETURN(std::vector<MemberRelevance> members,
                           recommender_->RelevanceForGroup(group, scratch));
  return GroupContext::Build(members, options_);
}

Result<GroupContext> GroupRecommender::BuildContext(
    const Group& group, const PeerProvider& peers) const {
  FAIRREC_ASSIGN_OR_RETURN(std::vector<MemberRelevance> members,
                           recommender_->RelevanceForGroup(group, peers));
  return GroupContext::Build(members, options_);
}

Result<std::vector<ScoredItem>> GroupRecommender::TopKForGroup(const Group& group,
                                                               int32_t k) const {
  FAIRREC_ASSIGN_OR_RETURN(GroupContext context, BuildContext(group));
  std::vector<ScoredItem> scored;
  scored.reserve(static_cast<size_t>(context.num_candidates()));
  for (const GroupCandidate& c : context.candidates()) {
    scored.push_back({c.item, c.group_relevance});
  }
  return SelectTopK(scored, k);
}

Result<Selection> GroupRecommender::RecommendFair(
    const Group& group, int32_t z, const ItemSetSelector& selector) const {
  FAIRREC_ASSIGN_OR_RETURN(GroupContext context, BuildContext(group));
  return selector.Select(context, z);
}

Result<Selection> GroupRecommender::RecommendFair(
    const Group& group, int32_t z, const ItemSetSelector& selector,
    RelevanceEstimator::Scratch& scratch) const {
  FAIRREC_ASSIGN_OR_RETURN(GroupContext context, BuildContext(group, scratch));
  return selector.Select(context, z);
}

Result<Selection> GroupRecommender::RecommendFair(
    const Group& group, int32_t z, std::string_view selector_spec) const {
  FAIRREC_ASSIGN_OR_RETURN(
      std::unique_ptr<ItemSetSelector> selector,
      SelectorRegistry::Global().CreateFromSpec(selector_spec));
  return RecommendFair(group, z, *selector);
}

}  // namespace fairrec
