#ifndef FAIRREC_CORE_ENVY_SWAP_SELECTOR_H_
#define FAIRREC_CORE_ENVY_SWAP_SELECTOR_H_

#include <string>

#include "core/selector.h"

namespace fairrec {

/// Controls for EnvySwapSelector.
struct EnvySwapOptions {
  /// Hard cap on improving swaps (each scans O(z * (m - z)) pairs).
  int32_t max_swaps = 1000;
};

/// Envy-minimizing swap local search (EXT: the within-group-harm view of
/// Pellegrini et al. — a member "envies" another when D serves the other
/// member strictly better than them). Member u's satisfaction is the
/// normalized best relevance D offers them (eval/metrics.h's measure:
/// best-in-D / best-any-candidate, so 1.0 = D contains their favourite);
/// the envy of u toward v is max(0, s_v - s_u) and the objective is the
/// total pairwise envy
///
///   envy(D) = sum_{u != v} max(0, s_v(D) - s_u(D))
///
/// minimized by best-improvement single swaps from a best-z-by-group-
/// relevance seed. Equal-envy swaps are taken only when they improve
/// value(G, D), so the search trades no group value away for free. Stops at
/// a local optimum or after max_swaps. Deterministic.
class EnvySwapSelector final : public ItemSetSelector {
 public:
  explicit EnvySwapSelector(EnvySwapOptions options = {});

  Result<Selection> Select(const GroupContext& context, int32_t z) const override;
  std::string name() const override { return "envy-swap"; }

  const EnvySwapOptions& options() const { return options_; }

 private:
  EnvySwapOptions options_;
};

}  // namespace fairrec

#endif  // FAIRREC_CORE_ENVY_SWAP_SELECTOR_H_
