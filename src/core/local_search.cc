#include "core/local_search.h"

#include <algorithm>
#include <vector>

#include "common/logging.h"

namespace fairrec {

LocalSearchSelector::LocalSearchSelector(LocalSearchOptions options)
    : options_(options) {}

Result<Selection> LocalSearchSelector::Select(const GroupContext& context,
                                              int32_t z) const {
  if (z <= 0) return Status::InvalidArgument("z must be positive");
  const int32_t m = context.num_candidates();
  const int32_t n = context.group_size();

  // ---- Seed ----------------------------------------------------------
  std::vector<int32_t> selected_indexes;
  if (options_.seed_with_algorithm1) {
    const FairnessHeuristic heuristic(options_.heuristic);
    FAIRREC_ASSIGN_OR_RETURN(const Selection seed, heuristic.Select(context, z));
    selected_indexes.reserve(seed.items.size());
    for (const ItemId item : seed.items) {
      const int32_t c = context.CandidateIndexOf(item);
      FAIRREC_DCHECK(c >= 0);
      selected_indexes.push_back(c);
    }
  } else {
    // Best-z by group relevance.
    std::vector<int32_t> order(static_cast<size_t>(m));
    for (int32_t c = 0; c < m; ++c) order[static_cast<size_t>(c)] = c;
    std::sort(order.begin(), order.end(), [&context](int32_t a, int32_t b) {
      const GroupCandidate& ca = context.candidate(a);
      const GroupCandidate& cb = context.candidate(b);
      if (ca.group_relevance != cb.group_relevance) {
        return ca.group_relevance > cb.group_relevance;
      }
      return ca.item < cb.item;
    });
    order.resize(static_cast<size_t>(std::min(z, m)));
    selected_indexes = std::move(order);
  }

  // ---- Incremental state (same bookkeeping as the brute force) --------
  std::vector<uint8_t> in_d(static_cast<size_t>(m), 0);
  std::vector<int32_t> member_hits(static_cast<size_t>(n), 0);
  int32_t fair_members = 0;
  double rel_sum = 0.0;
  auto add = [&](int32_t c) {
    in_d[static_cast<size_t>(c)] = 1;
    rel_sum += context.candidate(c).group_relevance;
    for (int32_t mem = 0; mem < n; ++mem) {
      if (context.InMemberTopK(mem, c) &&
          member_hits[static_cast<size_t>(mem)]++ == 0) {
        ++fair_members;
      }
    }
  };
  auto remove = [&](int32_t c) {
    in_d[static_cast<size_t>(c)] = 0;
    rel_sum -= context.candidate(c).group_relevance;
    for (int32_t mem = 0; mem < n; ++mem) {
      if (context.InMemberTopK(mem, c) &&
          --member_hits[static_cast<size_t>(mem)] == 0) {
        --fair_members;
      }
    }
  };
  for (const int32_t c : selected_indexes) add(c);
  const double inv_n = 1.0 / static_cast<double>(n);
  auto current_value = [&] {
    return static_cast<double>(fair_members) * inv_n * rel_sum;
  };

  // ---- Hill climbing: best-improvement single swaps --------------------
  for (int32_t round = 0; round < options_.max_swaps; ++round) {
    const double base = current_value();
    double best_value = base;
    int32_t best_out = -1;
    int32_t best_in = -1;
    for (size_t slot = 0; slot < selected_indexes.size(); ++slot) {
      const int32_t out = selected_indexes[slot];
      remove(out);
      for (int32_t in = 0; in < m; ++in) {
        if (in_d[static_cast<size_t>(in)] != 0 || in == out) continue;
        add(in);
        const double value = current_value();
        if (value > best_value + 1e-12) {
          best_value = value;
          best_out = out;
          best_in = in;
        }
        remove(in);
      }
      add(out);
    }
    if (best_out < 0) break;  // local optimum
    for (size_t slot = 0; slot < selected_indexes.size(); ++slot) {
      if (selected_indexes[slot] == best_out) {
        remove(best_out);
        add(best_in);
        selected_indexes[slot] = best_in;
        break;
      }
    }
  }

  std::sort(selected_indexes.begin(), selected_indexes.end());
  return FinalizeSelection(context, selected_indexes);
}

}  // namespace fairrec
