#ifndef FAIRREC_CORE_LOCAL_SEARCH_H_
#define FAIRREC_CORE_LOCAL_SEARCH_H_

#include <string>

#include "core/fairness_heuristic.h"
#include "core/selector.h"

namespace fairrec {

/// Controls for LocalSearchSelector.
struct LocalSearchOptions {
  /// Seed the search from Algorithm 1's output (default) — improving the
  /// paper's heuristic directly — or from the best-z by group relevance.
  bool seed_with_algorithm1 = true;
  FairnessHeuristicOptions heuristic;
  /// Hard cap on improving swaps (each scans O(z * (m - z)) pairs).
  int32_t max_swaps = 1000;
};

/// Swap-based hill climbing on value(G, D) (EXT: extends §III-D's heuristic
/// family; the paper's [6] benchmarks exactly this kind of interchange
/// heuristic for p-dispersion). Starting from a seed set of size z, repeat:
/// find the (selected, unselected) swap with the largest value improvement;
/// apply it; stop at a local optimum or after max_swaps.
///
/// Guarantees: never returns a worse set than its seed; with the Algorithm 1
/// seed and z >= |G| the Prop. 1 fairness-1.0 property is preserved, because
/// a swap that lowered fairness would lower value and is never taken —
/// unless a higher-value lower-fairness set exists, which is exactly the
/// improvement we want.
class LocalSearchSelector final : public ItemSetSelector {
 public:
  explicit LocalSearchSelector(LocalSearchOptions options = {});

  Result<Selection> Select(const GroupContext& context, int32_t z) const override;
  std::string name() const override { return "local-search"; }

  const LocalSearchOptions& options() const { return options_; }

 private:
  LocalSearchOptions options_;
};

}  // namespace fairrec

#endif  // FAIRREC_CORE_LOCAL_SEARCH_H_
