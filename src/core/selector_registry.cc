#include "core/selector_registry.h"

#include <cerrno>
#include <cstdlib>
#include <utility>

#include "common/logging.h"
#include "common/string_util.h"
#include "core/brute_force.h"
#include "core/envy_swap_selector.h"
#include "core/fair_package_selector.h"
#include "core/fairness_heuristic.h"
#include "core/greedy_selector.h"
#include "core/least_misery_selector.h"
#include "core/local_search.h"

namespace fairrec {

// ---------------------------------------------------------------------------
// SelectorOptionBag
// ---------------------------------------------------------------------------

Result<SelectorOptionBag> SelectorOptionBag::Parse(std::string_view spec) {
  SelectorOptionBag bag;
  if (Trim(spec).empty()) return bag;
  for (const std::string& entry : Split(spec, ',')) {
    const std::string_view trimmed = Trim(entry);
    if (trimmed.empty()) continue;
    const size_t eq = trimmed.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      return Status::InvalidArgument("malformed selector option '" +
                                     std::string(trimmed) +
                                     "' (expected key=value)");
    }
    const std::string key(Trim(trimmed.substr(0, eq)));
    const std::string value(Trim(trimmed.substr(eq + 1)));
    if (!bag.values_.emplace(key, value).second) {
      return Status::InvalidArgument("duplicate selector option '" + key + "'");
    }
  }
  return bag;
}

Result<int64_t> SelectorOptionBag::GetInt(const std::string& key,
                                          int64_t default_value) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return default_value;
  consumed_[key] = true;
  errno = 0;
  char* end = nullptr;
  const long long parsed = std::strtoll(it->second.c_str(), &end, 10);
  if (errno != 0 || end == it->second.c_str() || *end != '\0') {
    return Status::InvalidArgument("selector option " + key + "='" +
                                   it->second + "' is not an integer");
  }
  return static_cast<int64_t>(parsed);
}

Result<double> SelectorOptionBag::GetDouble(const std::string& key,
                                            double default_value) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return default_value;
  consumed_[key] = true;
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(it->second.c_str(), &end);
  if (errno != 0 || end == it->second.c_str() || *end != '\0') {
    return Status::InvalidArgument("selector option " + key + "='" +
                                   it->second + "' is not a number");
  }
  return parsed;
}

Result<bool> SelectorOptionBag::GetBool(const std::string& key,
                                        bool default_value) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return default_value;
  consumed_[key] = true;
  const std::string lowered = ToLower(it->second);
  if (lowered == "true" || lowered == "1") return true;
  if (lowered == "false" || lowered == "0") return false;
  return Status::InvalidArgument("selector option " + key + "='" + it->second +
                                 "' is not a bool (true/false/1/0)");
}

std::string SelectorOptionBag::GetString(const std::string& key,
                                         std::string default_value) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return default_value;
  consumed_[key] = true;
  return it->second;
}

std::vector<std::string> SelectorOptionBag::UnconsumedKeys() const {
  std::vector<std::string> out;
  for (const auto& [key, value] : values_) {
    const auto it = consumed_.find(key);
    if (it == consumed_.end() || !it->second) out.push_back(key);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Built-in registrations
// ---------------------------------------------------------------------------

namespace {

Result<FairnessHeuristicOptions> Algorithm1Options(
    const SelectorOptionBag& options) {
  FairnessHeuristicOptions out;
  FAIRREC_ASSIGN_OR_RETURN(out.pick_from_a_ux,
                           options.GetBool("pick_from_a_ux", out.pick_from_a_ux));
  FAIRREC_ASSIGN_OR_RETURN(out.fill_shortfall,
                           options.GetBool("fill_shortfall", out.fill_shortfall));
  return out;
}

void RegisterBuiltins(SelectorRegistry& registry) {
  auto must = [](Status status) { FAIRREC_CHECK(status.ok()); };

  must(registry.Register(
      {"algorithm1",
       "the paper's Algorithm 1: round-robin over member pairs, each pick "
       "the best unpicked A_u item",
       "value(G, D) = fairness(G, D) * sum relevanceG, heuristically",
       {"pick_from_a_ux (bool, false)", "fill_shortfall (bool, true)"},
       {}},
      [](const SelectorOptionBag& options)
          -> Result<std::unique_ptr<ItemSetSelector>> {
        FAIRREC_ASSIGN_OR_RETURN(const FairnessHeuristicOptions parsed,
                                 Algorithm1Options(options));
        return std::unique_ptr<ItemSetSelector>(
            std::make_unique<FairnessHeuristic>(parsed));
      }));

  must(registry.Register(
      {"greedy-value",
       "greedy marginal-value baseline: always add the item with the "
       "largest value(G, D) increase",
       "value(G, D), greedily",
       {},
       {"greedy"}},
      [](const SelectorOptionBag&) -> Result<std::unique_ptr<ItemSetSelector>> {
        return std::unique_ptr<ItemSetSelector>(
            std::make_unique<GreedyValueSelector>());
      }));

  must(registry.Register(
      {"local-search",
       "swap hill-climbing on value(G, D), seeded from Algorithm 1",
       "value(G, D), via best-improvement single swaps",
       {"max_swaps (int, 1000)", "seed_with_algorithm1 (bool, true)",
        "pick_from_a_ux (bool, false)", "fill_shortfall (bool, true)"},
       {"localsearch"}},
      [](const SelectorOptionBag& options)
          -> Result<std::unique_ptr<ItemSetSelector>> {
        LocalSearchOptions parsed;
        FAIRREC_ASSIGN_OR_RETURN(
            int64_t max_swaps, options.GetInt("max_swaps", parsed.max_swaps));
        parsed.max_swaps = static_cast<int32_t>(max_swaps);
        FAIRREC_ASSIGN_OR_RETURN(
            parsed.seed_with_algorithm1,
            options.GetBool("seed_with_algorithm1",
                            parsed.seed_with_algorithm1));
        FAIRREC_ASSIGN_OR_RETURN(parsed.heuristic, Algorithm1Options(options));
        return std::unique_ptr<ItemSetSelector>(
            std::make_unique<LocalSearchSelector>(parsed));
      }));

  must(registry.Register(
      {"brute-force",
       "exact §III-D optimum: enumerate all C(m, z) subsets",
       "value(G, D), exactly",
       {"max_combinations (int, 0 = unlimited)"},
       {"bruteforce"}},
      [](const SelectorOptionBag& options)
          -> Result<std::unique_ptr<ItemSetSelector>> {
        BruteForceOptions parsed;
        FAIRREC_ASSIGN_OR_RETURN(
            int64_t cap,
            options.GetInt("max_combinations",
                           static_cast<int64_t>(parsed.max_combinations)));
        if (cap < 0) {
          return Status::InvalidArgument("max_combinations must be >= 0");
        }
        parsed.max_combinations = static_cast<uint64_t>(cap);
        return std::unique_ptr<ItemSetSelector>(
            std::make_unique<BruteForceSelector>(parsed));
      }));

  must(registry.Register(
      {"least-misery",
       "grow D maximizing the worst-off member's relevance mass "
       "(individual fairness, after Rampisela et al.)",
       "max min_u sum_{i in D} relevance(u, i), greedily",
       {},
       {"leastmisery"}},
      [](const SelectorOptionBag&) -> Result<std::unique_ptr<ItemSetSelector>> {
        return std::unique_ptr<ItemSetSelector>(
            std::make_unique<LeastMiserySelector>());
      }));

  must(registry.Register(
      {"envy-swap",
       "swap local search minimizing total pairwise envy over normalized "
       "member satisfaction (after Pellegrini et al.)",
       "min sum_{u != v} max(0, s_v - s_u), then max value(G, D)",
       {"max_swaps (int, 1000)"},
       {"envyswap"}},
      [](const SelectorOptionBag& options)
          -> Result<std::unique_ptr<ItemSetSelector>> {
        EnvySwapOptions parsed;
        FAIRREC_ASSIGN_OR_RETURN(
            int64_t max_swaps, options.GetInt("max_swaps", parsed.max_swaps));
        parsed.max_swaps = static_cast<int32_t>(max_swaps);
        return std::unique_ptr<ItemSetSelector>(
            std::make_unique<EnvySwapSelector>(parsed));
      }));

  must(registry.Register(
      {"fair-package",
       "pruned enumeration for the most relevant package giving every "
       "member >= min_per_member of their A_u items (after Sato)",
       "max (#members at quota, sum relevanceG), exactly up to max_nodes",
       {"min_per_member (int, 1)", "max_nodes (int, 2000000)"},
       {"fairpackage"}},
      [](const SelectorOptionBag& options)
          -> Result<std::unique_ptr<ItemSetSelector>> {
        FairPackageOptions parsed;
        FAIRREC_ASSIGN_OR_RETURN(
            int64_t quota,
            options.GetInt("min_per_member", parsed.min_per_member));
        parsed.min_per_member = static_cast<int32_t>(quota);
        FAIRREC_ASSIGN_OR_RETURN(parsed.max_nodes,
                                 options.GetInt("max_nodes", parsed.max_nodes));
        if (parsed.min_per_member <= 0 || parsed.max_nodes <= 0) {
          return Status::InvalidArgument(
              "min_per_member and max_nodes must be positive");
        }
        return std::unique_ptr<ItemSetSelector>(
            std::make_unique<FairPackageSelector>(parsed));
      }));
}

}  // namespace

// ---------------------------------------------------------------------------
// SelectorRegistry
// ---------------------------------------------------------------------------

SelectorRegistry& SelectorRegistry::Global() {
  static SelectorRegistry* instance = [] {
    auto* registry = new SelectorRegistry();
    RegisterBuiltins(*registry);
    return registry;
  }();
  return *instance;
}

Status SelectorRegistry::Register(SelectorInfo info, Factory factory) {
  if (info.name.empty()) {
    return Status::InvalidArgument("selector name must not be empty");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (entries_.count(info.name) != 0 || aliases_.count(info.name) != 0) {
    return Status::AlreadyExists("selector '" + info.name +
                                 "' is already registered");
  }
  for (const std::string& alias : info.aliases) {
    if (entries_.count(alias) != 0 || aliases_.count(alias) != 0) {
      return Status::AlreadyExists("selector alias '" + alias +
                                   "' is already registered");
    }
  }
  for (const std::string& alias : info.aliases) {
    aliases_.emplace(alias, info.name);
  }
  const std::string name = info.name;
  entries_.emplace(name, Entry{std::move(info), std::move(factory)});
  return Status::OK();
}

const SelectorRegistry::Entry* SelectorRegistry::Find(
    std::string_view name) const {
  auto it = entries_.find(name);
  if (it != entries_.end()) return &it->second;
  const auto alias = aliases_.find(name);
  if (alias != aliases_.end()) {
    it = entries_.find(alias->second);
    if (it != entries_.end()) return &it->second;
  }
  return nullptr;
}

Result<std::unique_ptr<ItemSetSelector>> SelectorRegistry::Create(
    std::string_view name, const SelectorOptionBag& options) const {
  Factory factory;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const Entry* entry = Find(name);
    if (entry == nullptr) {
      return Status::InvalidArgument("unknown selector: " + std::string(name));
    }
    factory = entry->factory;
  }
  FAIRREC_ASSIGN_OR_RETURN(std::unique_ptr<ItemSetSelector> selector,
                           factory(options));
  const std::vector<std::string> leftover = options.UnconsumedKeys();
  if (!leftover.empty()) {
    std::string keys;
    for (const std::string& key : leftover) {
      if (!keys.empty()) keys += ", ";
      keys += key;
    }
    return Status::InvalidArgument("selector '" + std::string(name) +
                                   "' does not accept option(s): " + keys);
  }
  return selector;
}

Result<std::unique_ptr<ItemSetSelector>> SelectorRegistry::CreateFromSpec(
    std::string_view spec) const {
  const std::string_view trimmed = Trim(spec);
  const size_t colon = trimmed.find(':');
  const std::string_view name =
      colon == std::string_view::npos ? trimmed : trimmed.substr(0, colon);
  if (name.empty()) {
    return Status::InvalidArgument("empty selector spec");
  }
  SelectorOptionBag options;
  if (colon != std::string_view::npos) {
    FAIRREC_ASSIGN_OR_RETURN(options,
                             SelectorOptionBag::Parse(trimmed.substr(colon + 1)));
  }
  return Create(name, options);
}

bool SelectorRegistry::Has(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return Find(name) != nullptr;
}

Result<SelectorInfo> SelectorRegistry::Describe(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const Entry* entry = Find(name);
  if (entry == nullptr) {
    return Status::InvalidArgument("unknown selector: " + std::string(name));
  }
  return entry->info;
}

std::vector<SelectorInfo> SelectorRegistry::List() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<SelectorInfo> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) out.push_back(entry.info);
  return out;
}

std::vector<std::string> SelectorRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) out.push_back(name);
  return out;
}

}  // namespace fairrec
