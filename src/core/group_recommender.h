#ifndef FAIRREC_CORE_GROUP_RECOMMENDER_H_
#define FAIRREC_CORE_GROUP_RECOMMENDER_H_

#include <memory>
#include <string_view>
#include <vector>

#include "cf/recommender.h"
#include "common/result.h"
#include "core/group_context.h"
#include "core/selector.h"
#include "ratings/types.h"
#include "sim/peer_provider.h"

namespace fairrec {

/// Facade over the full group-recommendation flow of §III: per-member
/// relevance (via cf::Recommender), aggregation into group relevance
/// (Def. 2), plain group top-k, and fairness-aware top-z selection (§III-C/D)
/// through a pluggable ItemSetSelector.
///
/// Queries are const and freely concurrent; the Scratch overloads let a
/// serving worker reuse one relevance scratch across requests.
class GroupRecommender {
 public:
  /// `recommender` must outlive this object.
  GroupRecommender(const Recommender* recommender, GroupContextOptions options = {});

  /// Sparse serving path: owns an internal Recommender whose peers come from
  /// `peers` (an engine-built PeerIndex or a DensePeerAdapter), so no dense
  /// U^2 similarity structure is involved anywhere in the flow. `matrix` and
  /// `peers` must outlive this object.
  GroupRecommender(const RatingMatrix* matrix, const PeerProvider* peers,
                   RecommenderOptions rec_options = {},
                   GroupContextOptions options = {});

  // The owned recommender sits behind a unique_ptr, so moves transfer the
  // heap object and recommender_ stays valid in the destination; copying
  // would need a deep clone plus pointer fixup nobody asked for, so it
  // stays deleted.
  GroupRecommender(const GroupRecommender&) = delete;
  GroupRecommender& operator=(const GroupRecommender&) = delete;
  GroupRecommender(GroupRecommender&&) noexcept = default;
  GroupRecommender& operator=(GroupRecommender&&) noexcept = default;

  /// Runs the CF pipeline for the group and assembles the selector context.
  Result<GroupContext> BuildContext(const Group& group) const;

  /// Same, through a caller-owned relevance scratch (one per serving worker).
  Result<GroupContext> BuildContext(const Group& group,
                                    RelevanceEstimator::Scratch& scratch) const;

  /// Same, with the group's peers drawn from `peers` for this query only —
  /// e.g. the PeerIndex the MapReduce Job 2 emitted for exactly this group.
  Result<GroupContext> BuildContext(const Group& group,
                                    const PeerProvider& peers) const;

  /// Plain group recommendation: the k candidates with the highest group
  /// relevance (Def. 2), no fairness involved.
  Result<std::vector<ScoredItem>> TopKForGroup(const Group& group, int32_t k) const;

  /// Fairness-aware top-z recommendation through `selector`.
  Result<Selection> RecommendFair(const Group& group, int32_t z,
                                  const ItemSetSelector& selector) const;

  /// Same, through a caller-owned relevance scratch.
  Result<Selection> RecommendFair(const Group& group, int32_t z,
                                  const ItemSetSelector& selector,
                                  RelevanceEstimator::Scratch& scratch) const;

  /// Same, with the selector resolved from the global SelectorRegistry by
  /// spec ("algorithm1", "local-search:max_swaps=50", ...). InvalidArgument
  /// on unknown names or options.
  Result<Selection> RecommendFair(const Group& group, int32_t z,
                                  std::string_view selector_spec) const;

  const GroupContextOptions& options() const { return options_; }
  const Recommender& recommender() const { return *recommender_; }

 private:
  /// Set only by the (matrix, peers) constructor; recommender_ points at the
  /// heap object, whose address survives moves of this facade.
  std::unique_ptr<Recommender> owned_recommender_;
  const Recommender* recommender_;
  GroupContextOptions options_;
};

}  // namespace fairrec

#endif  // FAIRREC_CORE_GROUP_RECOMMENDER_H_
