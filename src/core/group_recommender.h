#ifndef FAIRREC_CORE_GROUP_RECOMMENDER_H_
#define FAIRREC_CORE_GROUP_RECOMMENDER_H_

#include <vector>

#include "cf/recommender.h"
#include "common/result.h"
#include "core/group_context.h"
#include "core/selector.h"
#include "ratings/types.h"

namespace fairrec {

/// Facade over the full group-recommendation flow of §III: per-member
/// relevance (via cf::Recommender), aggregation into group relevance
/// (Def. 2), plain group top-k, and fairness-aware top-z selection (§III-C/D)
/// through a pluggable ItemSetSelector.
class GroupRecommender {
 public:
  /// `recommender` must outlive this object.
  GroupRecommender(const Recommender* recommender, GroupContextOptions options = {});

  /// Runs the CF pipeline for the group and assembles the selector context.
  Result<GroupContext> BuildContext(const Group& group) const;

  /// Plain group recommendation: the k candidates with the highest group
  /// relevance (Def. 2), no fairness involved.
  Result<std::vector<ScoredItem>> TopKForGroup(const Group& group, int32_t k) const;

  /// Fairness-aware top-z recommendation through `selector`.
  Result<Selection> RecommendFair(const Group& group, int32_t z,
                                  const ItemSetSelector& selector) const;

  const GroupContextOptions& options() const { return options_; }

 private:
  const Recommender* recommender_;
  GroupContextOptions options_;
};

}  // namespace fairrec

#endif  // FAIRREC_CORE_GROUP_RECOMMENDER_H_
