#ifndef FAIRREC_CORE_LEAST_MISERY_SELECTOR_H_
#define FAIRREC_CORE_LEAST_MISERY_SELECTOR_H_

#include <string>

#include "core/selector.h"

namespace fairrec {

/// Least-misery fairness selector (EXT: the individual-fairness end of the
/// group-vs-individual spectrum Rampisela et al. map out in "Stairway to
/// Fairness"): grow D one item at a time, always adding the candidate that
/// maximizes the *minimum* per-member relevance mass
///
///   min_u sum_{i in D} relevance(u, i)
///
/// i.e. the worst-off member's haul, instead of the paper's group-aggregate
/// value. Undefined (NaN) relevance contributes nothing. Ties break toward
/// the larger total member relevance, then the larger group relevance, then
/// the smaller item id — all deterministic.
///
/// Complexity: O(z * m * |G|), the same shape as the greedy-value baseline.
class LeastMiserySelector final : public ItemSetSelector {
 public:
  LeastMiserySelector() = default;

  Result<Selection> Select(const GroupContext& context, int32_t z) const override;
  std::string name() const override { return "least-misery"; }
};

}  // namespace fairrec

#endif  // FAIRREC_CORE_LEAST_MISERY_SELECTOR_H_
