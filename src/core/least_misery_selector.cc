#include "core/least_misery_selector.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

namespace fairrec {

Result<Selection> LeastMiserySelector::Select(const GroupContext& context,
                                              int32_t z) const {
  if (z <= 0) return Status::InvalidArgument("z must be positive");
  const int32_t m = context.num_candidates();
  const int32_t n = context.group_size();

  std::vector<uint8_t> selected(static_cast<size_t>(m), 0);
  // member_mass[u]: sum of u's relevance over the current D.
  std::vector<double> member_mass(static_cast<size_t>(n), 0.0);
  std::vector<int32_t> picked;
  picked.reserve(static_cast<size_t>(std::min(z, m)));

  for (int32_t round = 0; round < z && round < m; ++round) {
    int32_t best = -1;
    double best_min = -std::numeric_limits<double>::infinity();
    double best_total = 0.0;
    double best_group_rel = 0.0;
    for (int32_t c = 0; c < m; ++c) {
      if (selected[static_cast<size_t>(c)] != 0) continue;
      const GroupCandidate& cand = context.candidate(c);
      double min_after = std::numeric_limits<double>::infinity();
      double total_after = 0.0;
      for (int32_t mem = 0; mem < n; ++mem) {
        const double score = cand.member_relevance[static_cast<size_t>(mem)];
        const double mass = member_mass[static_cast<size_t>(mem)] +
                            (std::isnan(score) ? 0.0 : score);
        min_after = std::min(min_after, mass);
        total_after += mass;
      }
      const bool better =
          best == -1 || min_after > best_min ||
          (min_after == best_min &&
           (total_after > best_total ||
            (total_after == best_total &&
             (cand.group_relevance > best_group_rel ||
              (cand.group_relevance == best_group_rel &&
               cand.item < context.candidate(best).item)))));
      if (better) {
        best = c;
        best_min = min_after;
        best_total = total_after;
        best_group_rel = cand.group_relevance;
      }
    }
    if (best < 0) break;
    selected[static_cast<size_t>(best)] = 1;
    picked.push_back(best);
    for (int32_t mem = 0; mem < n; ++mem) {
      const double score =
          context.candidate(best).member_relevance[static_cast<size_t>(mem)];
      if (!std::isnan(score)) member_mass[static_cast<size_t>(mem)] += score;
    }
  }

  return FinalizeSelection(context, picked);
}

}  // namespace fairrec
