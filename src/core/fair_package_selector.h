#ifndef FAIRREC_CORE_FAIR_PACKAGE_SELECTOR_H_
#define FAIRREC_CORE_FAIR_PACKAGE_SELECTOR_H_

#include <cstdint>
#include <string>

#include "core/selector.h"

namespace fairrec {

/// Controls for FairPackageSelector.
struct FairPackageOptions {
  /// The package quota: every member must find at least this many of their
  /// A_u items in D for the package to count as feasible. Members whose A_u
  /// is smaller than the quota have it capped at |A_u|, so feasibility is
  /// always attainable in principle.
  int32_t min_per_member = 1;
  /// Hard cap on DFS nodes. When exhausted the search stops and the best
  /// package found so far is returned (still deterministic: the cap cuts
  /// the same prefix of the enumeration every run).
  int64_t max_nodes = 2'000'000;
};

/// Package-feasibility enumeration selector, after Sato ("Enumerating Fair
/// Packages for Group Recommendations"): treat D as a package that is *fair*
/// only when every member gets at least `min_per_member` of their A_u items,
/// and search the C(m, z) space for the feasible package with the maximum
/// group relevance sum. The objective is lexicographic
///
///   maximize (#members meeting their quota, sum_i relevanceG(G, i))
///
/// so on instances where no fully feasible package exists the selector still
/// returns the closest-to-feasible package instead of failing.
///
/// The search is a DFS over candidates in descending group-relevance order
/// with two admissible prunes: a per-member suffix count of remaining A_u
/// items (a branch that can no longer seat every member's quota better than
/// the incumbent dies), and a prefix-sum relevance bound (a branch that
/// cannot beat the incumbent's sum at equal coverage dies). First maximum in
/// enumeration order wins — deterministic.
class FairPackageSelector final : public ItemSetSelector {
 public:
  explicit FairPackageSelector(FairPackageOptions options = {});

  Result<Selection> Select(const GroupContext& context, int32_t z) const override;
  std::string name() const override { return "fair-package"; }

  const FairPackageOptions& options() const { return options_; }

 private:
  FairPackageOptions options_;
};

}  // namespace fairrec

#endif  // FAIRREC_CORE_FAIR_PACKAGE_SELECTOR_H_
