#ifndef FAIRREC_TEXT_TFIDF_H_
#define FAIRREC_TEXT_TFIDF_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "text/sparse_vector.h"
#include "text/tokenizer.h"
#include "text/vocabulary.h"

namespace fairrec {

/// Controls for TfIdfVectorizer.
struct TfIdfOptions {
  TokenizerOptions tokenizer;
  /// tf = 1 + log(count) instead of the raw count.
  bool sublinear_tf = false;
  /// idf = log((1 + N) / (1 + df)) + 1 instead of the paper's log(N / df).
  /// The smooth form never hits idf = 0 on corpus-wide terms; the paper's
  /// form (default) deliberately zeroes terms present in every document.
  bool smooth_idf = false;
  /// L2-normalize the produced vectors. Cosine similarity is unchanged by
  /// this; it only matters if vectors are consumed directly.
  bool l2_normalize = false;
};

/// TF-IDF vectorizer over a fixed corpus, implementing Definition 4:
///   idf(t, D) = log(N / |{d in D : t in d}|)
/// and tf-idf(t, d) = tf(t, d) * idf(t, D).
///
/// Fit() freezes the vocabulary and document frequencies; Transform() maps any
/// text into the fitted space (unseen terms are ignored, matching the usual
/// IR convention).
class TfIdfVectorizer {
 public:
  explicit TfIdfVectorizer(TfIdfOptions options = {});

  /// Learns vocabulary + document frequencies from `documents`. Returns
  /// InvalidArgument if `documents` is empty.
  Status Fit(const std::vector<std::string>& documents);

  /// Tokenizes and embeds one document. Precondition: fitted.
  SparseVector Transform(const std::string& document) const;

  /// Fit() then Transform() each input in order.
  Result<std::vector<SparseVector>> FitTransform(
      const std::vector<std::string>& documents);

  bool fitted() const { return fitted_; }
  const Vocabulary& vocabulary() const { return vocabulary_; }

  /// idf score of a term id under the configured idf variant.
  /// Precondition: fitted, valid id.
  double IdfOf(int32_t term_id) const;

 private:
  TfIdfOptions options_;
  Tokenizer tokenizer_;
  Vocabulary vocabulary_;
  std::vector<double> idf_;  // indexed by term id
  bool fitted_ = false;
};

}  // namespace fairrec

#endif  // FAIRREC_TEXT_TFIDF_H_
