#include "text/sparse_vector.h"

#include <algorithm>
#include <cmath>

namespace fairrec {

SparseVector SparseVector::FromPairs(std::vector<Entry> entries) {
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.index < b.index; });
  SparseVector v;
  for (const Entry& e : entries) {
    if (!v.entries_.empty() && v.entries_.back().index == e.index) {
      v.entries_.back().value += e.value;
    } else {
      v.entries_.push_back(e);
    }
  }
  std::erase_if(v.entries_, [](const Entry& e) { return e.value == 0.0; });
  return v;
}

double SparseVector::ValueAt(int32_t index) const {
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), index,
      [](const Entry& e, int32_t target) { return e.index < target; });
  if (it == entries_.end() || it->index != index) return 0.0;
  return it->value;
}

double SparseVector::Dot(const SparseVector& other) const {
  double sum = 0.0;
  size_t i = 0;
  size_t j = 0;
  while (i < entries_.size() && j < other.entries_.size()) {
    const int32_t a = entries_[i].index;
    const int32_t b = other.entries_[j].index;
    if (a == b) {
      sum += entries_[i].value * other.entries_[j].value;
      ++i;
      ++j;
    } else if (a < b) {
      ++i;
    } else {
      ++j;
    }
  }
  return sum;
}

double SparseVector::NormL2() const {
  double sum = 0.0;
  for (const Entry& e : entries_) sum += e.value * e.value;
  return std::sqrt(sum);
}

void SparseVector::Normalize() {
  const double norm = NormL2();
  if (norm == 0.0) return;
  for (Entry& e : entries_) e.value /= norm;
}

double SparseVector::Cosine(const SparseVector& a, const SparseVector& b) {
  const double na = a.NormL2();
  const double nb = b.NormL2();
  if (na == 0.0 || nb == 0.0) return 0.0;
  return a.Dot(b) / (na * nb);
}

}  // namespace fairrec
