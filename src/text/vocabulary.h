#ifndef FAIRREC_TEXT_VOCABULARY_H_
#define FAIRREC_TEXT_VOCABULARY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace fairrec {

/// Interns terms to dense int ids and tracks per-term document frequency,
/// the |{d in D : t in d}| denominator of the paper's Definition 4.
class Vocabulary {
 public:
  static constexpr int32_t kUnknownTerm = -1;

  Vocabulary() = default;

  /// Returns the id for `term`, creating it if needed.
  int32_t GetOrAdd(const std::string& term);

  /// Returns the id for `term`, or kUnknownTerm.
  int32_t Lookup(std::string_view term) const;

  /// Registers one document's terms: document frequency of each *distinct*
  /// term in `tokens` is incremented by one.
  void AddDocument(const std::vector<std::string>& tokens);

  int32_t size() const { return static_cast<int32_t>(terms_.size()); }
  int64_t num_documents() const { return num_documents_; }

  /// Document frequency for a term id. Precondition: valid id.
  int64_t DocumentFrequency(int32_t term_id) const;

  /// The interned spelling of a term id. Precondition: valid id.
  const std::string& TermText(int32_t term_id) const;

 private:
  std::unordered_map<std::string, int32_t> index_;
  std::vector<std::string> terms_;
  std::vector<int64_t> doc_frequency_;
  int64_t num_documents_ = 0;
};

}  // namespace fairrec

#endif  // FAIRREC_TEXT_VOCABULARY_H_
