#include "text/vocabulary.h"

#include <algorithm>

#include "common/logging.h"

namespace fairrec {

int32_t Vocabulary::GetOrAdd(const std::string& term) {
  const auto [it, inserted] =
      index_.emplace(term, static_cast<int32_t>(terms_.size()));
  if (inserted) {
    terms_.push_back(term);
    doc_frequency_.push_back(0);
  }
  return it->second;
}

int32_t Vocabulary::Lookup(std::string_view term) const {
  const auto it = index_.find(std::string(term));
  return it == index_.end() ? kUnknownTerm : it->second;
}

void Vocabulary::AddDocument(const std::vector<std::string>& tokens) {
  ++num_documents_;
  std::vector<int32_t> ids;
  ids.reserve(tokens.size());
  for (const std::string& token : tokens) ids.push_back(GetOrAdd(token));
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  for (int32_t id : ids) doc_frequency_[static_cast<size_t>(id)]++;
}

int64_t Vocabulary::DocumentFrequency(int32_t term_id) const {
  FAIRREC_DCHECK(term_id >= 0 && term_id < size());
  return doc_frequency_[static_cast<size_t>(term_id)];
}

const std::string& Vocabulary::TermText(int32_t term_id) const {
  FAIRREC_DCHECK(term_id >= 0 && term_id < size());
  return terms_[static_cast<size_t>(term_id)];
}

}  // namespace fairrec
