#ifndef FAIRREC_TEXT_TOKENIZER_H_
#define FAIRREC_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace fairrec {

/// Controls for Tokenizer.
struct TokenizerOptions {
  /// Lowercase tokens before emitting.
  bool lowercase = true;
  /// Drop tokens shorter than this many characters.
  size_t min_token_length = 2;
  /// Drop common English stopwords (small built-in list tuned for the
  /// profile fields of Table I: articles, pronouns, units).
  bool remove_stopwords = true;
  /// Keep digit-only tokens (e.g. drug strengths like "500"). Default keeps
  /// them: dosage numbers are discriminative in medication strings.
  bool keep_numbers = true;
};

/// Splits free text into word tokens on non-alphanumeric boundaries.
/// Used to turn a patient profile rendered as a document (§V-B) into the
/// term sequence consumed by the TF-IDF vectorizer.
class Tokenizer {
 public:
  explicit Tokenizer(TokenizerOptions options = {});

  std::vector<std::string> Tokenize(std::string_view text) const;

  const TokenizerOptions& options() const { return options_; }

 private:
  bool IsStopword(const std::string& token) const;

  TokenizerOptions options_;
};

}  // namespace fairrec

#endif  // FAIRREC_TEXT_TOKENIZER_H_
