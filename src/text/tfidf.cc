#include "text/tfidf.h"

#include <cmath>
#include <unordered_map>

#include "common/logging.h"

namespace fairrec {

TfIdfVectorizer::TfIdfVectorizer(TfIdfOptions options)
    : options_(options), tokenizer_(options.tokenizer) {}

Status TfIdfVectorizer::Fit(const std::vector<std::string>& documents) {
  if (documents.empty()) {
    return Status::InvalidArgument("cannot fit TF-IDF on an empty corpus");
  }
  vocabulary_ = Vocabulary();
  for (const std::string& doc : documents) {
    vocabulary_.AddDocument(tokenizer_.Tokenize(doc));
  }
  const double n = static_cast<double>(vocabulary_.num_documents());
  idf_.assign(static_cast<size_t>(vocabulary_.size()), 0.0);
  for (int32_t t = 0; t < vocabulary_.size(); ++t) {
    const double df = static_cast<double>(vocabulary_.DocumentFrequency(t));
    idf_[static_cast<size_t>(t)] =
        options_.smooth_idf ? std::log((1.0 + n) / (1.0 + df)) + 1.0
                            : std::log(n / df);
  }
  fitted_ = true;
  return Status::OK();
}

SparseVector TfIdfVectorizer::Transform(const std::string& document) const {
  FAIRREC_DCHECK(fitted_);
  std::unordered_map<int32_t, double> counts;
  for (const std::string& token : tokenizer_.Tokenize(document)) {
    const int32_t id = vocabulary_.Lookup(token);
    if (id != Vocabulary::kUnknownTerm) counts[id] += 1.0;
  }
  std::vector<SparseVector::Entry> entries;
  entries.reserve(counts.size());
  for (const auto& [id, count] : counts) {
    const double tf = options_.sublinear_tf ? 1.0 + std::log(count) : count;
    entries.push_back({id, tf * idf_[static_cast<size_t>(id)]});
  }
  SparseVector v = SparseVector::FromPairs(std::move(entries));
  if (options_.l2_normalize) v.Normalize();
  return v;
}

Result<std::vector<SparseVector>> TfIdfVectorizer::FitTransform(
    const std::vector<std::string>& documents) {
  FAIRREC_RETURN_NOT_OK(Fit(documents));
  std::vector<SparseVector> out;
  out.reserve(documents.size());
  for (const std::string& doc : documents) out.push_back(Transform(doc));
  return out;
}

double TfIdfVectorizer::IdfOf(int32_t term_id) const {
  FAIRREC_DCHECK(fitted_);
  FAIRREC_DCHECK(term_id >= 0 && term_id < vocabulary_.size());
  return idf_[static_cast<size_t>(term_id)];
}

}  // namespace fairrec
