#ifndef FAIRREC_TEXT_SPARSE_VECTOR_H_
#define FAIRREC_TEXT_SPARSE_VECTOR_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace fairrec {

/// Sparse numeric vector with sorted, unique indexes. The TF-IDF profile
/// vectors of §V-B are stored in this form; cosine similarity (Eq. 3) runs a
/// sorted-merge dot product in O(nnz_a + nnz_b).
class SparseVector {
 public:
  struct Entry {
    int32_t index = 0;
    double value = 0.0;

    friend bool operator==(const Entry&, const Entry&) = default;
  };

  SparseVector() = default;

  /// Builds from unsorted (index, value) pairs: sorts, merges duplicate
  /// indexes by summing, and drops exact zeros.
  static SparseVector FromPairs(std::vector<Entry> entries);

  size_t nnz() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  const std::vector<Entry>& entries() const { return entries_; }

  /// Value at an index (0.0 if absent). O(log nnz).
  double ValueAt(int32_t index) const;

  double Dot(const SparseVector& other) const;
  double NormL2() const;

  /// Scales to unit L2 norm; no-op on the zero vector.
  void Normalize();

  /// Cosine similarity (Eq. 3); 0.0 if either vector is zero.
  static double Cosine(const SparseVector& a, const SparseVector& b);

  friend bool operator==(const SparseVector&, const SparseVector&) = default;

 private:
  std::vector<Entry> entries_;
};

}  // namespace fairrec

#endif  // FAIRREC_TEXT_SPARSE_VECTOR_H_
