#include "text/tokenizer.h"

#include <algorithm>
#include <array>
#include <cctype>

#include "common/string_util.h"

namespace fairrec {

namespace {
// Kept deliberately small: profile documents are short and domain-specific.
constexpr std::array<std::string_view, 32> kStopwords = {
    "a",    "an",   "and",  "are", "as",   "at",   "be",   "by",
    "for",  "from", "has",  "he",  "in",   "is",   "it",   "its",
    "of",   "on",   "or",   "she", "that", "the",  "to",   "was",
    "were", "will", "with", "mg",  "ml",   "oral", "dose", "per"};
}  // namespace

Tokenizer::Tokenizer(TokenizerOptions options) : options_(options) {}

bool Tokenizer::IsStopword(const std::string& token) const {
  return std::find(kStopwords.begin(), kStopwords.end(), token) !=
         kStopwords.end();
}

std::vector<std::string> Tokenizer::Tokenize(std::string_view text) const {
  std::vector<std::string> tokens;
  std::string current;
  auto flush = [&] {
    if (current.empty()) return;
    std::string token = options_.lowercase ? ToLower(current) : current;
    current.clear();
    if (token.size() < options_.min_token_length) return;
    if (!options_.keep_numbers &&
        std::all_of(token.begin(), token.end(), [](unsigned char c) {
          return std::isdigit(c);
        })) {
      return;
    }
    if (options_.remove_stopwords && IsStopword(token)) return;
    tokens.push_back(std::move(token));
  };
  for (char c : text) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      current += c;
    } else {
      flush();
    }
  }
  flush();
  return tokens;
}

}  // namespace fairrec
