#include "mapreduce/engine.h"

#include <thread>

namespace fairrec {

MapReduceOptions MapReduceOptions::Resolved() const {
  MapReduceOptions out = *this;
  if (out.num_workers == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    out.num_workers = hw == 0 ? 1 : hw;
  }
  if (out.num_map_shards == 0) out.num_map_shards = out.num_workers;
  if (out.num_reduce_partitions == 0) out.num_reduce_partitions = out.num_workers;
  return out;
}

}  // namespace fairrec
