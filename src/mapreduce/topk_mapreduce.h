#ifndef FAIRREC_MAPREDUCE_TOPK_MAPREDUCE_H_
#define FAIRREC_MAPREDUCE_TOPK_MAPREDUCE_H_

#include <cstdint>
#include <vector>

#include "mapreduce/engine.h"
#include "ratings/types.h"

namespace fairrec {

/// Distributed top-k selection following the pattern of Efthymiou et al.,
/// "Top-k computations in MapReduce" (paper's [5]), which §IV prescribes for
/// the final ranking step when k results do not fit in one reducer's memory:
///
///   phase 1 (MapReduce): records are hash-partitioned; each reduce partition
///            keeps only its *local* top-k (a combiner-style pruning);
///   phase 2: the <= partitions * k survivors are merged and the global
///            top-k is selected (the "single final reducer").
///
/// Produces exactly SelectTopK(scored, k) — the deterministic order is
/// descending score with ascending item id tie-breaks.
std::vector<ScoredItem> MapReduceTopK(const std::vector<ScoredItem>& scored,
                                      int32_t k,
                                      const MapReduceOptions& options = {},
                                      MapReduceStats* stats = nullptr);

}  // namespace fairrec

#endif  // FAIRREC_MAPREDUCE_TOPK_MAPREDUCE_H_
