#ifndef FAIRREC_MAPREDUCE_PIPELINE_H_
#define FAIRREC_MAPREDUCE_PIPELINE_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "core/fairness_heuristic.h"
#include "core/group_context.h"
#include "core/selector.h"
#include "mapreduce/engine.h"
#include "mapreduce/jobs.h"
#include "ratings/rating_matrix.h"
#include "ratings/types.h"
#include "sim/rating_similarity.h"

namespace fairrec {

/// Controls for GroupRecommendationPipeline.
struct PipelineOptions {
  /// Pearson configuration shared with the serial RatingSimilarity.
  RatingSimilarityOptions similarity;
  /// Peer threshold delta (Def. 1), applied by Job 2.
  double delta = 0.1;
  /// Size of the per-member A_u lists.
  int32_t top_k = 10;
  AggregationKind aggregation = AggregationKind::kAverage;
  /// Candidate policy fed to GroupContext::Build.
  bool require_all_members = true;
  /// Simulated multi-node item shards for the Job 1 moment combine (see
  /// RunJob1): shard s owns items with i % moment_shards == s, and each
  /// shard pre-combines its co-rating contributions into one PairMoments
  /// per pair before the Job 1 / Job 2 boundary. 1 = single-node layout,
  /// which reproduces the in-memory engine's accumulation order exactly.
  int32_t moment_shards = 1;
  /// Byte budget of the Job 1 -> Job 2 moment shuffle. 0 (the default)
  /// keeps the boundary fully in memory (the classic layout). > 0 routes
  /// it through RunJob1Spilled / the shuffle overload of RunJob2PeerIndex:
  /// moment records buffer up to this many bytes, overflow to sorted run
  /// files under `shuffle_spill_dir`, and Job 2 k-way-merge-reduces the
  /// runs — the peer index is byte-identical at every budget.
  size_t max_shuffle_bytes = 0;
  /// Directory for spilled shuffle runs (created if missing). Required when
  /// max_shuffle_bytes > 0.
  std::string shuffle_spill_dir;
  MapReduceOptions mapreduce;
  FairnessHeuristicOptions heuristic;
  /// When non-empty, Job 2's peer-list artifact is additionally committed to
  /// this path as a single-slice PartialPeerArtifact (partition 0 of 1,
  /// attempt 0) under the checksummed blob container — the bridge from the
  /// §IV flow into the distributed merge protocol (dist/partial_artifact.h):
  /// the emitted file round-trips through PartialPeerArtifact::ReadFile and
  /// is admissible to MergePartialArtifacts as a complete one-slice set.
  std::string artifact_path;
};

/// Everything a pipeline run produces, plus per-job instrumentation.
struct PipelineResult {
  /// The assembled selector context (candidates + per-member relevance +
  /// A_u sets) — byte-equivalent in content to the serial path's context.
  GroupContext context;
  /// Algorithm 1 output, computed centralized as §IV prescribes.
  Selection selection;
  /// Job 2's peer-list artifact: the thresholded peer graph of Def. 1 for
  /// the group's members (non-member rows empty) — the same PeerIndex shape
  /// the in-memory engine builds, reusable for follow-up queries against
  /// this group.
  PeerIndex peer_index;

  MapReduceStats job1_stats;
  MapReduceStats job2_stats;
  MapReduceStats job3_stats;
  int64_t num_candidate_items = 0;
  int64_t num_similarity_pairs = 0;
  /// Shuffle accounting for the Job 1 -> Job 2 boundary: the moment records
  /// actually shipped vs the per-co-rating records the retired
  /// PartialSimilarity stream would have shipped.
  int64_t num_moment_records = 0;
  int64_t num_co_rating_records = 0;
  /// External-sort accounting of the budgeted boundary (all zeros when
  /// max_shuffle_bytes == 0 and the classic in-memory layout ran).
  MomentShuffleStats shuffle_stats;
  /// Where the peer-list artifact was committed (empty when
  /// PipelineOptions::artifact_path was not set).
  std::string artifact_path;
};

/// The paper's §IV flow, end to end:
///
///   Job 1: partial similarities + the unrated candidate stream;
///   Job 2: finish simU, threshold by delta (peer sets of Def. 1);
///   Job 3: Eq. 1 per member + Def. 2 group relevance per candidate;
///   finally Algorithm 1 runs centralized on the assembled context.
///
/// The pipeline is the ratings-based (Pearson) instantiation — the one whose
/// partial scores Fig. 2 sketches. Profile/semantic similarities have no
/// per-item partial decomposition and are served by the serial path instead.
class GroupRecommendationPipeline {
 public:
  explicit GroupRecommendationPipeline(PipelineOptions options = {});

  /// Runs all three jobs plus the centralized Algorithm 1 finishing step.
  Result<PipelineResult> Run(const RatingMatrix& matrix, const Group& group,
                             int32_t z) const;

  const PipelineOptions& options() const { return options_; }

 private:
  PipelineOptions options_;
};

}  // namespace fairrec

#endif  // FAIRREC_MAPREDUCE_PIPELINE_H_
