#include "mapreduce/pipeline.h"

#include <algorithm>
#include <cmath>

#include "cf/top_k.h"
#include "dist/partial_artifact.h"

namespace fairrec {

GroupRecommendationPipeline::GroupRecommendationPipeline(PipelineOptions options)
    : options_(options) {}

Result<PipelineResult> GroupRecommendationPipeline::Run(
    const RatingMatrix& matrix, const Group& group, int32_t z) const {
  PipelineResult result;
  const std::vector<RatingTriple> triples = matrix.ToTriples();

  // Job 0 (supporting): per-user means for the Pearson global-mean variant.
  const std::vector<double> means =
      RunUserMeanJob(triples, matrix.num_users(), options_.mapreduce);

  // Jobs 1 + 2: candidates, the partial sufficient statistics, and the
  // peer-list artifact. Two layouts of the Job 1 -> Job 2 boundary share
  // the byte-identical-artifact contract: the classic in-memory moment
  // vector, and (under max_shuffle_bytes) the external-sort shuffle whose
  // runs Job 2 k-way-merge-reduces.
  std::vector<KeyValue<ItemId, std::vector<UserRating>>> candidate_items;
  if (options_.max_shuffle_bytes > 0) {
    MomentShuffleOptions shuffle_options;
    shuffle_options.max_buffer_bytes = options_.max_shuffle_bytes;
    shuffle_options.temp_dir = options_.shuffle_spill_dir;
    FAIRREC_ASSIGN_OR_RETURN(
        Job1SpilledOutput job1,
        RunJob1Spilled(triples, group, matrix.num_users(), shuffle_options,
                       options_.mapreduce, options_.moment_shards));
    result.job1_stats = job1.stats;
    result.num_candidate_items =
        static_cast<int64_t>(job1.candidate_items.size());
    result.num_co_rating_records = job1.co_rating_records;
    FAIRREC_ASSIGN_OR_RETURN(
        result.peer_index,
        RunJob2PeerIndex(job1.moments, means, options_.similarity,
                         options_.delta, matrix.num_users(),
                         /*max_peers_per_member=*/0, &result.job2_stats));
    result.shuffle_stats = job1.moments.stats();
    result.num_moment_records = result.shuffle_stats.groups_out;
    candidate_items = std::move(job1.candidate_items);
  } else {
    FAIRREC_ASSIGN_OR_RETURN(
        Job1Output job1,
        RunJob1(triples, group, matrix.num_users(), options_.mapreduce,
                options_.moment_shards));
    result.job1_stats = job1.stats;
    result.num_candidate_items =
        static_cast<int64_t>(job1.candidate_items.size());
    result.num_moment_records =
        static_cast<int64_t>(job1.partial_moments.size());
    result.num_co_rating_records = job1.co_rating_records;
    FAIRREC_ASSIGN_OR_RETURN(
        result.peer_index,
        RunJob2PeerIndex(job1.partial_moments, means, options_.similarity,
                         options_.delta, matrix.num_users(),
                         /*max_peers_per_member=*/0, options_.mapreduce,
                         &result.job2_stats));
    candidate_items = std::move(job1.candidate_items);
  }
  result.num_similarity_pairs = result.peer_index.num_entries();

  // Optional durable commit of the Job 2 artifact: a single-slice
  // PartialPeerArtifact, so the pipeline's peer graph enters the distributed
  // merge protocol unchanged (see PipelineOptions::artifact_path).
  if (!options_.artifact_path.empty()) {
    PartialPeerArtifact artifact;
    artifact.manifest.fingerprint = FingerprintCorpus(matrix);
    artifact.manifest.partition = MakePartition(0, 1, matrix.num_users());
    artifact.manifest.attempt = 0;
    artifact.manifest.similarity = options_.similarity;
    artifact.manifest.peers = result.peer_index.options();
    artifact.rows = result.peer_index;
    FAIRREC_RETURN_NOT_OK(artifact.WriteFile(options_.artifact_path));
    result.artifact_path = options_.artifact_path;
  }

  // Job 3: Eq. 1 per member + Def. 2 group relevance, straight off the
  // peer-list artifact (no per-pair re-sort).
  const auto relevance =
      RunJob3(candidate_items, result.peer_index, group,
              options_.aggregation, options_.mapreduce, &result.job3_stats);

  // Assemble the selector context in the same shape as the serial path; the
  // peer lists come out of the index already in the canonical order.
  std::vector<MemberRelevance> members(group.size());
  for (size_t m = 0; m < group.size(); ++m) {
    members[m].user = group[m];
    const auto peers = result.peer_index.PeersOf(group[m]);
    members[m].peers.assign(peers.begin(), peers.end());
  }
  // `relevance` is sorted by item id, so the per-member lists stay strictly
  // ascending as GroupContext::Build requires.
  for (const auto& kv : relevance) {
    for (size_t m = 0; m < group.size(); ++m) {
      const double score = kv.value.member_relevance[m];
      if (!std::isnan(score)) {
        members[m].relevance.push_back({kv.key, score});
      }
    }
  }
  GroupContextOptions context_options;
  context_options.aggregation = options_.aggregation;
  context_options.top_k = options_.top_k;
  context_options.require_all_members = options_.require_all_members;
  for (MemberRelevance& member : members) {
    member.top_k = SelectTopK(member.relevance, context_options.top_k);
  }
  FAIRREC_ASSIGN_OR_RETURN(result.context,
                           GroupContext::Build(members, context_options));

  // "After these jobs have completed ... we perform Algorithm 1 in a
  // centralized manner." (§IV)
  const FairnessHeuristic heuristic(options_.heuristic);
  FAIRREC_ASSIGN_OR_RETURN(result.selection,
                           heuristic.Select(result.context, z));
  return result;
}

}  // namespace fairrec
