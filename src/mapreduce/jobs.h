#ifndef FAIRREC_MAPREDUCE_JOBS_H_
#define FAIRREC_MAPREDUCE_JOBS_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/result.h"
#include "core/aggregation.h"
#include "mapreduce/engine.h"
#include "ratings/types.h"
#include "sim/peer_index.h"
#include "sim/rating_similarity.h"

namespace fairrec {

/// Key for the user-pair similarity records: (group member, outside user).
using UserPairKey = std::pair<UserId, UserId>;

/// One co-rated item's contribution to simU(member, peer): the raw rating
/// pair, tagged with the item so Job 2 can restore the canonical (ascending
/// item) accumulation order and finish Eq. 2 through the exact same
/// FinishPearson the serial path uses — making the two paths agree
/// bit-for-bit, not just within tolerance.
struct PartialSimilarity {
  ItemId item = kInvalidItemId;
  Rating member_rating = 0.0;  // r(member, i)
  Rating peer_rating = 0.0;    // r(peer, i)

  friend bool operator==(const PartialSimilarity&,
                         const PartialSimilarity&) = default;
};

/// The two outputs of Job 1 (Fig. 2): the candidate item stream (items that
/// no group member has rated, with their full rater lists) and the partial
/// similarity stream for (member, outside-user) pairs.
struct Job1Output {
  std::vector<KeyValue<ItemId, std::vector<UserRating>>> candidate_items;
  std::vector<KeyValue<UserPairKey, PartialSimilarity>> partial_similarities;
  MapReduceStats stats;
};

/// Job 0 (supporting job, not drawn in Fig. 2): per-user mean ratings — the
/// µ_u of Eq. 2. Hadoop deployments ship these to Job 2 via the distributed
/// cache; here they are returned densely indexed by user id (0.0 for users
/// with no ratings).
std::vector<double> RunUserMeanJob(const std::vector<RatingTriple>& ratings,
                                   int32_t num_users,
                                   const MapReduceOptions& options = {},
                                   MapReduceStats* stats = nullptr);

/// Job 1 — "Find partial users similarity score and the unrated items".
/// Map:    (u, i, rating) -> key i, value (u, rating).
/// Reduce: if no group member rated i, emit i into the candidate stream;
///         otherwise emit one PartialSimilarity per (member, non-member)
///         rater pair of i.
Result<Job1Output> RunJob1(const std::vector<RatingTriple>& ratings,
                           const Group& group, int32_t num_users,
                           const MapReduceOptions& options = {});

/// Job 2 — "Calculate simU". Sums the partial components per (member, user)
/// pair, finishes the Pearson correlation under `sim_options` (using
/// `user_means` for the global-mean variant), and keeps pairs with
/// simU >= delta (Def. 1's threshold).
std::vector<KeyValue<UserPairKey, double>> RunJob2(
    const std::vector<KeyValue<UserPairKey, PartialSimilarity>>& partials,
    const std::vector<double>& user_means,
    const RatingSimilarityOptions& sim_options, double delta,
    const MapReduceOptions& options = {}, MapReduceStats* stats = nullptr);

/// Job 2, peer-list output mode: finishes simU exactly like RunJob2 but
/// materializes the thresholded pairs as a sparse PeerIndex over
/// [0, num_users) — the same artifact the in-memory path gets from
/// PairwiseSimilarityEngine::BuildPeerIndex, so the §IV flow and the serial
/// flow share one peer-graph structure. Only (member -> outside-user) edges
/// exist in the Job 1 partial stream, so non-member rows are empty.
/// max_peers_per_member bounds each member's list (0 = unlimited; bounded
/// lists trade exact Def. 1 semantics for O(|G| * k) output, see
/// PeerIndexOptions).
Result<PeerIndex> RunJob2PeerIndex(
    const std::vector<KeyValue<UserPairKey, PartialSimilarity>>& partials,
    const std::vector<double>& user_means,
    const RatingSimilarityOptions& sim_options, double delta,
    int32_t num_users, int32_t max_peers_per_member = 0,
    const MapReduceOptions& options = {}, MapReduceStats* stats = nullptr);

/// Relevance scores of one candidate item for the group (Job 3 output).
struct GroupItemRelevance {
  /// relevance(u, i) per member, aligned with the group order; NaN when
  /// undefined (no peer of that member rated the item).
  std::vector<double> member_relevance;
  /// relevanceG(G, i) (Def. 2) over the defined member scores.
  double group_relevance = 0.0;
  /// True iff every member's relevance is defined.
  bool defined_for_all = false;
};

/// Job 3 — "Calculate user and group relevance".
/// Input:  the candidate stream of Job 1.
/// Side:   the thresholded similarities of Job 2 (the peer sets of Def. 1),
///         the group, and the aggregation design.
/// Reduce: per item, Eq. 1 per member plus the group aggregate. Items where
///         no member has a defined estimate are dropped; items partially
///         defined are kept (callers apply their require_all policy).
std::vector<KeyValue<ItemId, GroupItemRelevance>> RunJob3(
    const std::vector<KeyValue<ItemId, std::vector<UserRating>>>& candidates,
    const std::vector<KeyValue<UserPairKey, double>>& similarities,
    const Group& group, AggregationKind aggregation,
    const MapReduceOptions& options = {}, MapReduceStats* stats = nullptr);

/// Job 3 over the peer-list artifact: each member's peer set comes from
/// `peers.PeersOf(member)` (already thresholded and in the canonical
/// descending-similarity order), skipping the per-pair re-sort the record
/// stream needs.
std::vector<KeyValue<ItemId, GroupItemRelevance>> RunJob3(
    const std::vector<KeyValue<ItemId, std::vector<UserRating>>>& candidates,
    const PeerProvider& peers, const Group& group, AggregationKind aggregation,
    const MapReduceOptions& options = {}, MapReduceStats* stats = nullptr);

}  // namespace fairrec

#endif  // FAIRREC_MAPREDUCE_JOBS_H_
