#ifndef FAIRREC_MAPREDUCE_JOBS_H_
#define FAIRREC_MAPREDUCE_JOBS_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/result.h"
#include "core/aggregation.h"
#include "mapreduce/engine.h"
#include "ratings/types.h"
#include "sim/moment_shuffle.h"
#include "sim/moment_store.h"
#include "sim/pearson_finish.h"
#include "sim/peer_index.h"
#include "sim/rating_similarity.h"

namespace fairrec {

/// Key for the user-pair similarity records: (group member, outside user).
using UserPairKey = std::pair<UserId, UserId>;

/// The two outputs of Job 1 (Fig. 2): the candidate item stream (items that
/// no group member has rated, with their full rater lists) and the partial
/// sufficient-statistics stream for (member, outside-user) pairs.
///
/// The moment stream replaces the retired `PartialSimilarity` record stream
/// (one tagged rating pair per co-rated item, re-sorted per pair in Job 2):
/// each record now carries the six additive sufficient statistics
/// (n, Σa, Σb, Σa², Σb², Σab) of one pair's co-ratings within one item
/// shard, pre-combined map-side exactly like a Hadoop combiner would on the
/// node owning that shard. Job 2 just sums moments per pair and finishes —
/// the shuffle ships O(pairs · shards) fixed-size records instead of
/// O(co-ratings) rating pairs.
struct Job1Output {
  std::vector<KeyValue<ItemId, std::vector<UserRating>>> candidate_items;
  /// Per-(pair, item-shard) partial moments, sorted by pair with each pair's
  /// shard partials in ascending shard order (and each shard's co-ratings
  /// folded in ascending item order — the engine's accumulation order, so
  /// one shard reproduces the in-memory sweep bit-for-bit).
  std::vector<KeyValue<UserPairKey, PairMoments>> partial_moments;
  MapReduceStats stats;
  /// Size of the retired per-co-rating stream this run folded away: how many
  /// (pair, item) rating-pair records the old Job 1 would have shipped to
  /// Job 2. co_rating_records / partial_moments.size() is the shuffle
  /// compression the moment refactor buys.
  int64_t co_rating_records = 0;
};

/// Job 0 (supporting job, not drawn in Fig. 2): per-user mean ratings — the
/// µ_u of Eq. 2. Hadoop deployments ship these to Job 2 via the distributed
/// cache; here they are returned densely indexed by user id (0.0 for users
/// with no ratings).
std::vector<double> RunUserMeanJob(const std::vector<RatingTriple>& ratings,
                                   int32_t num_users,
                                   const MapReduceOptions& options = {},
                                   MapReduceStats* stats = nullptr);

/// Job 1 — "Find partial users similarity score and the unrated items".
/// Map:    (u, i, rating) -> key i, value (u, rating).
/// Reduce: if no group member rated i, emit i into the candidate stream;
///         otherwise fold one co-rating into the (member, non-member)
///         pair's sufficient statistics for i's shard.
///
/// `num_moment_shards` simulates multi-node sharding in-process: shard s
/// owns the items with i % num_moment_shards == s, and each shard's
/// co-rating contributions are pre-combined into one PairMoments per local
/// pair before the Job 1 / Job 2 boundary (a map-side combine). 1 — the
/// single-node layout — yields exactly one moment record per co-rating pair,
/// accumulated in the same ascending-item order as the in-memory engine's
/// tile sweep. On integer rating scales every sharding finishes to
/// bit-identical similarities (moments are exact); on non-representable
/// rating values shards > 1 can differ from the engine by reassociation
/// rounding (~1e-15).
Result<Job1Output> RunJob1(const std::vector<RatingTriple>& ratings,
                           const Group& group, int32_t num_users,
                           const MapReduceOptions& options = {},
                           int32_t num_moment_shards = 1);

/// Job 1 output in the memory-bounded shuffle layout: the candidate stream
/// is materialized as usual, but the moment records live inside a
/// PairMomentShuffle — buffered up to its byte budget, spilled to sorted
/// run files beyond it — instead of the in-memory partial_moments vector.
/// Job 2 consumes it with the shuffle overload of RunJob2PeerIndex, which
/// k-way-merges the runs back into the exact global (pair, shard, item)
/// order the unspilled sort produces.
struct Job1SpilledOutput {
  std::vector<KeyValue<ItemId, std::vector<UserRating>>> candidate_items;
  /// The undrained shuffle holding every per-co-rating moment record. Pass
  /// it to RunJob2PeerIndex; read stats() afterwards for spill accounting.
  PairMomentShuffle moments;
  MapReduceStats stats;
  /// Records offered to the shuffle — the same per-co-rating count
  /// Job1Output::co_rating_records reports.
  int64_t co_rating_records = 0;
};

/// RunJob1 under a shuffle byte budget: identical map and reduce logic, but
/// each (member, outside-user, shard, item) moment contribution goes
/// straight into a PairMomentShuffle configured by `shuffle_options`
/// (combine_on_spill is forced off — reducer emission order follows
/// partition scheduling, not items, and in-run pre-combining would change
/// the fold order). The per-(pair, shard) groups the shuffle's Drain later
/// delivers are bit-identical to Job1Output::partial_moments at every
/// budget, including 0 (unbounded buffer, no temp files).
Result<Job1SpilledOutput> RunJob1Spilled(
    const std::vector<RatingTriple>& ratings, const Group& group,
    int32_t num_users, const MomentShuffleOptions& shuffle_options,
    const MapReduceOptions& options = {}, int32_t num_moment_shards = 1);

/// Job 2 — "Calculate simU". Merges each pair's per-shard moments (they
/// arrive grouped and in shard order), finishes Eq. 2 through the engine's
/// FinishPearsonFromMoments under `sim_options` (using `user_means` for the
/// global-mean variant), and keeps pairs with simU >= delta (Def. 1's
/// threshold). No per-pair buffering or re-sort: the reduce is one additive
/// merge plus one finish per pair. Orientation is canonicalized to
/// (min id, max id) before finishing so the value is bit-identical to the
/// engine's, which always accumulates with a < b.
std::vector<KeyValue<UserPairKey, double>> RunJob2(
    const std::vector<KeyValue<UserPairKey, PairMoments>>& partial_moments,
    const std::vector<double>& user_means,
    const RatingSimilarityOptions& sim_options, double delta,
    const MapReduceOptions& options = {}, MapReduceStats* stats = nullptr);

/// Job 2, peer-list output mode: finishes simU exactly like RunJob2 but the
/// reducers feed qualifying pairs straight into a thread-safe
/// PeerIndex::Builder — no thresholded record stream is materialized — and
/// the result is the same sparse CSR artifact the in-memory path gets from
/// PairwiseSimilarityEngine::BuildPeerIndex. Only (member -> outside-user)
/// edges exist in the Job 1 moment stream, so non-member rows are empty.
/// max_peers_per_member bounds each member's list (0 = unlimited; bounded
/// lists trade exact Def. 1 semantics for O(|G| * k) output, see
/// PeerIndexOptions). stats->output_records reports the stored entry count.
Result<PeerIndex> RunJob2PeerIndex(
    const std::vector<KeyValue<UserPairKey, PairMoments>>& partial_moments,
    const std::vector<double>& user_means,
    const RatingSimilarityOptions& sim_options, double delta,
    int32_t num_users, int32_t max_peers_per_member = 0,
    const MapReduceOptions& options = {}, MapReduceStats* stats = nullptr);

/// Job 2 over a RunJob1Spilled boundary: a k-way merge-reduce. Drains the
/// shuffle (merging its sorted runs), sums each pair's per-shard groups in
/// the ascending shard order the merge delivers — the same association the
/// vector overload's reducers use — and finishes through the identical
/// batched kernel into the same PeerIndex artifact. Because the shuffle's
/// merge reproduces the unspilled sort's global record order bit-for-bit,
/// the returned index is byte-identical to the vector overload's at every
/// (shard layout x budget) combination. The shuffle is spent afterwards;
/// its stats() survive for spill accounting. `stats`, when non-null, gets
/// input_records = shuffle records, intermediate_records = merged
/// (pair, shard) groups, output_records = stored index entries.
Result<PeerIndex> RunJob2PeerIndex(PairMomentShuffle& moments,
                                   const std::vector<double>& user_means,
                                   const RatingSimilarityOptions& sim_options,
                                   double delta, int32_t num_users,
                                   int32_t max_peers_per_member = 0,
                                   MapReduceStats* stats = nullptr);

/// Folds the Job 1 moment stream into the persistent MomentStore the
/// incremental peer-graph maintenance subsystem consumes
/// (sim/incremental_peer_graph.h): per-shard partials of each pair are
/// merged in their canonical ascending-shard order (exactly as the Job 2
/// reducers sum them) and stored in the canonical (min id, max id)
/// orientation the in-memory engine accumulates. On integer rating scales
/// the stored statistics are bit-identical to
/// PairwiseSimilarityEngine::BuildMomentStore restricted to the
/// (member, outside-user) pairs the Job 1 stream covers — so a MapReduce
/// deployment can seed the incremental subsystem without an in-memory
/// re-sweep. `num_users` sizes the store's population.
Result<MomentStore> BuildMomentStoreFromPartialMoments(
    const std::vector<KeyValue<UserPairKey, PairMoments>>& partial_moments,
    int32_t num_users, const MomentStoreOptions& store_options = {});

/// Relevance scores of one candidate item for the group (Job 3 output).
struct GroupItemRelevance {
  /// relevance(u, i) per member, aligned with the group order; NaN when
  /// undefined (no peer of that member rated the item).
  std::vector<double> member_relevance;
  /// relevanceG(G, i) (Def. 2) over the defined member scores.
  double group_relevance = 0.0;
  /// True iff every member's relevance is defined.
  bool defined_for_all = false;
};

/// Job 3 — "Calculate user and group relevance".
/// Input:  the candidate stream of Job 1.
/// Side:   the thresholded similarities of Job 2 (the peer sets of Def. 1),
///         the group, and the aggregation design.
/// Reduce: per item, Eq. 1 per member plus the group aggregate. Items where
///         no member has a defined estimate are dropped; items partially
///         defined are kept (callers apply their require_all policy).
std::vector<KeyValue<ItemId, GroupItemRelevance>> RunJob3(
    const std::vector<KeyValue<ItemId, std::vector<UserRating>>>& candidates,
    const std::vector<KeyValue<UserPairKey, double>>& similarities,
    const Group& group, AggregationKind aggregation,
    const MapReduceOptions& options = {}, MapReduceStats* stats = nullptr);

/// Job 3 over the peer-list artifact: each member's peer set comes from
/// `peers.PeersOf(member)` (already thresholded and in the canonical
/// descending-similarity order).
std::vector<KeyValue<ItemId, GroupItemRelevance>> RunJob3(
    const std::vector<KeyValue<ItemId, std::vector<UserRating>>>& candidates,
    const PeerProvider& peers, const Group& group, AggregationKind aggregation,
    const MapReduceOptions& options = {}, MapReduceStats* stats = nullptr);

}  // namespace fairrec

#endif  // FAIRREC_MAPREDUCE_JOBS_H_
