#include "mapreduce/jobs.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <mutex>
#include <unordered_map>
#include <variant>

#include "cf/peer_finder.h"
#include "common/logging.h"
#include "sim/pearson_finish_batch.h"

namespace fairrec {

namespace {

constexpr double kUndefined = std::numeric_limits<double>::quiet_NaN();

/// One co-rated item's sufficient-statistics contribution, tagged with the
/// item so the Job 1 boundary can fold shards in the canonical ascending-item
/// order. Internal to Job 1: the tag is dropped once the shard is combined.
struct ItemMoment {
  ItemId item = kInvalidItemId;
  PairMoments moments;
};

/// Batched finish over a merged (pair, moments) stream — the Job 2 finish,
/// routed through the same vectorized kernel as the engine's tile drain
/// (sim/pearson_finish_batch.h), so all four similarity flows share one
/// finish implementation with one bit-parity contract. Job 1 accumulates
/// with a = member, but the engine always accumulates with a < b, so each
/// pair's moments are canonicalized to ascending ids before staging —
/// Pearson is symmetric in exact arithmetic, not bit-for-bit in floating
/// point, and the sharded path must match the in-memory artifact exactly.
/// Pairs failing the overlap guard short-circuit to the literal 0 the
/// kernel's mask pass would produce. `consume(key, sim)` is called once per
/// input record, in batch-flush order (not stream order).
template <typename Consume>
void FinishMergedPairs(
    const std::vector<KeyValue<UserPairKey, PairMoments>>& merged,
    const std::vector<double>& user_means,
    const RatingSimilarityOptions& options, const Consume& consume) {
  const auto mean_of = [&user_means](UserId u) {
    return (u >= 0 && static_cast<size_t>(u) < user_means.size())
               ? user_means[static_cast<size_t>(u)]
               : 0.0;
  };
  auto stream = MakePearsonFinishStream<const UserPairKey*>(
      options, [&consume](const UserPairKey* key, double sim) {
        consume(*key, sim);
      });
  for (const auto& kv : merged) {
    if (PearsonOverlapGuardFails(kv.value.n, options)) {
      consume(kv.key, 0.0);
      continue;
    }
    if (kv.key.first <= kv.key.second) {
      stream.Stage(kv.value, mean_of(kv.key.first), mean_of(kv.key.second),
                   &kv.key);
    } else {
      stream.Stage(kv.value.Swapped(), mean_of(kv.key.second),
                   mean_of(kv.key.first), &kv.key);
    }
  }
  // Falling off the scope flushes the stream's ragged tail.
}

/// The merge-only Job 2 reduce shared by both output modes: sums each
/// pair's per-shard moments in the canonical ascending-shard order the
/// stable shuffle preserves from the Job 1 boundary sort, and emits the
/// merged statistics. The finish happens downstream in one batched pass.
std::vector<KeyValue<UserPairKey, PairMoments>> MergeJob2Moments(
    const std::vector<KeyValue<UserPairKey, PairMoments>>& partial_moments,
    const MapReduceOptions& options, MapReduceStats* stats) {
  return RunMapReduce<UserPairKey, PairMoments, UserPairKey, PairMoments,
                      UserPairKey, PairMoments, PairHash>(
      partial_moments,
      // Map: identity re-key (the pair key is already in place).
      [](const UserPairKey& key, const PairMoments& value,
         MapEmitter<UserPairKey, PairMoments, PairHash>& out) {
        out.Emit(key, value);
      },
      [](const UserPairKey& key, std::span<const PairMoments> values,
         ReduceEmitter<UserPairKey, PairMoments>& out) {
        PairMoments total;
        for (const PairMoments& partial : values) total.Merge(partial);
        out.Emit(key, total);
      },
      options, stats);
}

}  // namespace

std::vector<double> RunUserMeanJob(const std::vector<RatingTriple>& ratings,
                                   int32_t num_users,
                                   const MapReduceOptions& options,
                                   MapReduceStats* stats) {
  std::vector<KeyValue<int64_t, RatingTriple>> input;
  input.reserve(ratings.size());
  int64_t index = 0;
  for (const RatingTriple& t : ratings) input.push_back({index++, t});

  const auto output = RunMapReduce<int64_t, RatingTriple, UserId, Rating, UserId,
                                   double>(
      input,
      [](const int64_t&, const RatingTriple& t, MapEmitter<UserId, Rating>& out) {
        out.Emit(t.user, t.value);
      },
      [](const UserId& user, std::span<const Rating> values,
         ReduceEmitter<UserId, double>& out) {
        double sum = 0.0;
        for (const Rating r : values) sum += r;
        out.Emit(user, sum / static_cast<double>(values.size()));
      },
      options, stats);

  std::vector<double> means(static_cast<size_t>(num_users), 0.0);
  for (const auto& kv : output) {
    if (kv.key >= 0 && kv.key < num_users) means[static_cast<size_t>(kv.key)] = kv.value;
  }
  return means;
}

Result<Job1Output> RunJob1(const std::vector<RatingTriple>& ratings,
                           const Group& group, int32_t num_users,
                           const MapReduceOptions& options,
                           int32_t num_moment_shards) {
  if (group.empty()) {
    return Status::InvalidArgument("group must not be empty");
  }
  if (num_moment_shards < 1) {
    return Status::InvalidArgument("num_moment_shards must be >= 1");
  }
  std::vector<uint8_t> is_member(static_cast<size_t>(num_users), 0);
  for (const UserId u : group) {
    if (u < 0 || u >= num_users) {
      return Status::InvalidArgument("group member out of range: " +
                                     std::to_string(u));
    }
    is_member[static_cast<size_t>(u)] = 1;
  }

  std::vector<KeyValue<int64_t, RatingTriple>> input;
  input.reserve(ratings.size());
  int64_t index = 0;
  for (const RatingTriple& t : ratings) input.push_back({index++, t});

  // Reducer output is a tagged stream: candidates keyed by (-1, item),
  // single-item moment contributions keyed by (member, peer).
  using Job1Value = std::variant<std::vector<UserRating>, ItemMoment>;
  constexpr UserId kCandidateTag = -1;

  Job1Output result;
  const auto output = RunMapReduce<int64_t, RatingTriple, ItemId, UserRating,
                                   UserPairKey, Job1Value>(
      input,
      // Map: (u, i, rating) -> (i, (u, rating)).
      [](const int64_t&, const RatingTriple& t,
         MapEmitter<ItemId, UserRating>& out) {
        out.Emit(t.item, {t.user, t.value});
      },
      // Reduce per item: candidate stream, or one sufficient-statistics
      // contribution per (member, outside-user) rater pair of i.
      [&is_member, kCandidateTag](const ItemId& item,
                                  std::span<const UserRating> raters,
                                  ReduceEmitter<UserPairKey, Job1Value>& out) {
        bool any_member = false;
        for (const UserRating& r : raters) {
          if (is_member[static_cast<size_t>(r.user)] != 0) {
            any_member = true;
            break;
          }
        }
        if (!any_member) {
          out.Emit({kCandidateTag, item},
                   std::vector<UserRating>(raters.begin(), raters.end()));
          return;
        }
        for (const UserRating& member : raters) {
          if (is_member[static_cast<size_t>(member.user)] == 0) continue;
          for (const UserRating& peer : raters) {
            if (is_member[static_cast<size_t>(peer.user)] != 0) continue;
            ItemMoment contribution;
            contribution.item = item;
            contribution.moments.Add(member.value, peer.value);
            out.Emit({member.user, peer.user}, contribution);
          }
        }
      },
      options, &result.stats);

  std::vector<KeyValue<UserPairKey, ItemMoment>> raw;
  for (const auto& kv : output) {
    if (kv.key.first == kCandidateTag) {
      result.candidate_items.push_back(
          {kv.key.second, std::get<std::vector<UserRating>>(kv.value)});
    } else {
      raw.push_back({kv.key, std::get<ItemMoment>(kv.value)});
    }
  }
  result.co_rating_records = static_cast<int64_t>(raw.size());

  // Deterministic downstream consumption regardless of partition layout.
  std::sort(result.candidate_items.begin(), result.candidate_items.end(),
            [](const auto& a, const auto& b) { return a.key < b.key; });

  // Map-side combine, simulated per item shard: canonical (pair, shard,
  // item) order, then each (pair, shard) run folds into one PairMoments in
  // ascending item order — the exact accumulation order of the engine's
  // inverted-index sweep, so a single shard reproduces it bit-for-bit.
  const int32_t shards = num_moment_shards;
  const auto shard_of = [shards](ItemId item) {
    return static_cast<int32_t>(item % shards);
  };
  std::sort(raw.begin(), raw.end(),
            [&shard_of](const auto& a, const auto& b) {
              if (a.key != b.key) return a.key < b.key;
              const int32_t sa = shard_of(a.value.item);
              const int32_t sb = shard_of(b.value.item);
              if (sa != sb) return sa < sb;
              return a.value.item < b.value.item;
            });
  for (size_t i = 0; i < raw.size();) {
    const UserPairKey pair = raw[i].key;
    const int32_t shard = shard_of(raw[i].value.item);
    PairMoments combined = raw[i].value.moments;
    size_t j = i + 1;
    while (j < raw.size() && raw[j].key == pair &&
           shard_of(raw[j].value.item) == shard) {
      combined.Merge(raw[j].value.moments);
      ++j;
    }
    result.partial_moments.push_back({pair, combined});
    i = j;
  }
  return result;
}

Result<Job1SpilledOutput> RunJob1Spilled(
    const std::vector<RatingTriple>& ratings, const Group& group,
    int32_t num_users, const MomentShuffleOptions& shuffle_options,
    const MapReduceOptions& options, int32_t num_moment_shards) {
  if (group.empty()) {
    return Status::InvalidArgument("group must not be empty");
  }
  if (num_moment_shards < 1) {
    return Status::InvalidArgument("num_moment_shards must be >= 1");
  }
  std::vector<uint8_t> is_member(static_cast<size_t>(num_users), 0);
  for (const UserId u : group) {
    if (u < 0 || u >= num_users) {
      return Status::InvalidArgument("group member out of range: " +
                                     std::to_string(u));
    }
    is_member[static_cast<size_t>(u)] = 1;
  }

  // The shuffle owns the order (global sort on drain), so reducer emission
  // interleaving never reaches the artifact — but in-run pre-combining
  // would fold in emission order, so it stays off regardless of what the
  // caller asked for.
  MomentShuffleOptions resolved_shuffle = shuffle_options;
  resolved_shuffle.combine_on_spill = false;
  FAIRREC_ASSIGN_OR_RETURN(PairMomentShuffle moments,
                           PairMomentShuffle::Create(resolved_shuffle));

  std::vector<KeyValue<int64_t, RatingTriple>> input;
  input.reserve(ratings.size());
  int64_t index = 0;
  for (const RatingTriple& t : ratings) input.push_back({index++, t});

  const int32_t shards = num_moment_shards;
  // Reducers run concurrently but the shuffle is single-writer; the first
  // spill failure latches and stops further Adds.
  std::mutex shuffle_mutex;
  Status shuffle_status = Status::OK();

  MapReduceStats stats;
  auto candidates = RunMapReduce<int64_t, RatingTriple, ItemId, UserRating,
                                 ItemId, std::vector<UserRating>>(
      input,
      [](const int64_t&, const RatingTriple& t,
         MapEmitter<ItemId, UserRating>& out) {
        out.Emit(t.item, {t.user, t.value});
      },
      [&is_member, &moments, &shuffle_mutex, &shuffle_status, shards](
          const ItemId& item, std::span<const UserRating> raters,
          ReduceEmitter<ItemId, std::vector<UserRating>>& out) {
        bool any_member = false;
        for (const UserRating& r : raters) {
          if (is_member[static_cast<size_t>(r.user)] != 0) {
            any_member = true;
            break;
          }
        }
        if (!any_member) {
          out.Emit(item, std::vector<UserRating>(raters.begin(), raters.end()));
          return;
        }
        const int32_t shard = static_cast<int32_t>(item % shards);
        std::lock_guard<std::mutex> lock(shuffle_mutex);
        if (!shuffle_status.ok()) return;
        for (const UserRating& member : raters) {
          if (is_member[static_cast<size_t>(member.user)] == 0) continue;
          for (const UserRating& peer : raters) {
            if (is_member[static_cast<size_t>(peer.user)] != 0) continue;
            PairMoments contribution;
            contribution.Add(member.value, peer.value);
            Status added =
                moments.Add(member.user, peer.user, shard, item, contribution);
            if (!added.ok()) {
              shuffle_status = std::move(added);
              return;
            }
          }
        }
      },
      options, &stats);
  FAIRREC_RETURN_NOT_OK(shuffle_status);

  std::sort(candidates.begin(), candidates.end(),
            [](const auto& a, const auto& b) { return a.key < b.key; });

  Job1SpilledOutput result{std::move(candidates), std::move(moments), stats,
                           /*co_rating_records=*/0};
  result.co_rating_records = result.moments.stats().records_in;
  return result;
}

std::vector<KeyValue<UserPairKey, double>> RunJob2(
    const std::vector<KeyValue<UserPairKey, PairMoments>>& partial_moments,
    const std::vector<double>& user_means,
    const RatingSimilarityOptions& sim_options, double delta,
    const MapReduceOptions& options, MapReduceStats* stats) {
  // Merge-only reduce, then one batched finish + Def. 1 threshold pass over
  // the merged stream (O(member pairs) records — no larger than the input).
  const auto merged = MergeJob2Moments(partial_moments, options, stats);
  std::vector<KeyValue<UserPairKey, double>> output;
  FinishMergedPairs(merged, user_means, sim_options,
                    [&output, delta](const UserPairKey& key, double sim) {
                      if (sim >= delta) output.push_back({key, sim});
                    });
  if (stats != nullptr) {
    // The thresholded record stream is the job's output, not the merged
    // moments RunMapReduce counted.
    stats->output_records = static_cast<int64_t>(output.size());
  }
  std::sort(output.begin(), output.end(),
            [](const auto& a, const auto& b) { return a.key < b.key; });
  return output;
}

Result<MomentStore> BuildMomentStoreFromPartialMoments(
    const std::vector<KeyValue<UserPairKey, PairMoments>>& partial_moments,
    int32_t num_users, const MomentStoreOptions& store_options) {
  if (num_users < 0) {
    return Status::InvalidArgument("num_users must be non-negative");
  }
  if (store_options.tile_users <= 0) {
    return Status::InvalidArgument("tile_users must be positive");
  }
  MomentStore::Builder builder(num_users, store_options);
  // The stream is sorted by pair with each pair's shard partials in
  // ascending shard order; merging in stream order therefore reproduces the
  // Job 2 reducers' sums (and, at one shard, the engine's accumulation)
  // deterministically.
  for (size_t first = 0; first < partial_moments.size();) {
    size_t last = first;
    while (last < partial_moments.size() &&
           partial_moments[last].key == partial_moments[first].key) {
      ++last;
    }
    const UserPairKey& key = partial_moments[first].key;
    PairMoments total;
    for (size_t k = first; k < last; ++k) {
      total.Merge(partial_moments[k].value);
    }
    if (key.first < key.second) {
      builder.Add(key.first, key.second, total);
    } else if (key.second < key.first) {
      builder.Add(key.second, key.first, total.Swapped());
    }
    first = last;
  }
  return std::move(builder).Build();
}

Result<PeerIndex> RunJob2PeerIndex(
    const std::vector<KeyValue<UserPairKey, PairMoments>>& partial_moments,
    const std::vector<double>& user_means,
    const RatingSimilarityOptions& sim_options, double delta,
    int32_t num_users, int32_t max_peers_per_member,
    const MapReduceOptions& options, MapReduceStats* stats) {
  if (num_users < 0) {
    return Status::InvalidArgument("num_users must be >= 0");
  }
  if (max_peers_per_member < 0) {
    return Status::InvalidArgument("max_peers_per_member must be >= 0");
  }

  PeerIndexOptions index_options;
  index_options.delta = delta;
  index_options.max_peers_per_user = max_peers_per_member;
  PeerIndex::Builder builder(num_users, index_options);

  // Same shape as RunJob2 — merge-only reduce, one batched finish pass —
  // but qualifying pairs feed straight into the builder instead of a
  // thresholded record stream. The Job 1 stream is directional (member ->
  // outside user), so only the member side of each pair gets a list entry;
  // OfferPair would invent edges for non-members that a whole-population
  // build wouldn't have.
  const auto merged = MergeJob2Moments(partial_moments, options, stats);
  FinishMergedPairs(merged, user_means, sim_options,
                    [&builder, delta](const UserPairKey& key, double sim) {
                      if (sim >= delta) {
                        builder.Offer(key.first, key.second, sim);
                      }
                    });

  PeerIndex index = std::move(builder).Build();
  // The reducers emit into the builder, not the record stream, so surface
  // the artifact size where the record count would have been.
  if (stats != nullptr) stats->output_records = index.num_entries();
  return index;
}

Result<PeerIndex> RunJob2PeerIndex(PairMomentShuffle& moments,
                                   const std::vector<double>& user_means,
                                   const RatingSimilarityOptions& sim_options,
                                   double delta, int32_t num_users,
                                   int32_t max_peers_per_member,
                                   MapReduceStats* stats) {
  if (num_users < 0) {
    return Status::InvalidArgument("num_users must be >= 0");
  }
  if (max_peers_per_member < 0) {
    return Status::InvalidArgument("max_peers_per_member must be >= 0");
  }

  PeerIndexOptions index_options;
  index_options.delta = delta;
  index_options.max_peers_per_user = max_peers_per_member;
  PeerIndex::Builder builder(num_users, index_options);

  const int64_t records_in = moments.stats().records_in;
  const auto mean_of = [&user_means](UserId u) {
    return (u >= 0 && static_cast<size_t>(u) < user_means.size())
               ? user_means[static_cast<size_t>(u)]
               : 0.0;
  };

  // The drain delivers (pair, shard) groups in ascending key order, so each
  // pair's shard partials arrive consecutively in ascending shard order —
  // the exact association MergeJob2Moments' reducers use. Merge them
  // pair-locally and finish through the shared batched kernel; the guarded
  // short-circuit to literal 0 mirrors FinishMergedPairs.
  {
    auto stream = MakePearsonFinishStream<UserPairKey>(
        sim_options, [&builder, delta](const UserPairKey& key, double sim) {
          if (sim >= delta) builder.Offer(key.first, key.second, sim);
        });
    bool have_pair = false;
    UserPairKey current{};
    PairMoments total;
    const auto finish_current = [&] {
      if (!have_pair) return;
      if (PearsonOverlapGuardFails(total.n, sim_options)) {
        if (0.0 >= delta) builder.Offer(current.first, current.second, 0.0);
      } else if (current.first <= current.second) {
        stream.Stage(total, mean_of(current.first), mean_of(current.second),
                     current);
      } else {
        stream.Stage(total.Swapped(), mean_of(current.second),
                     mean_of(current.first), current);
      }
    };
    FAIRREC_RETURN_NOT_OK(moments.Drain(
        [&](UserId a, UserId b, int32_t /*shard*/,
            const PairMoments& group_moments) -> Status {
          const UserPairKey key{a, b};
          if (have_pair && key == current) {
            total.Merge(group_moments);
          } else {
            finish_current();
            current = key;
            // Zero-then-merge, not copy: the vector overload's reducers
            // fold each pair's first partial into a default PairMoments.
            total = PairMoments();
            total.Merge(group_moments);
            have_pair = true;
          }
          return Status::OK();
        }));
    finish_current();
    // Falling off the scope flushes the stream's ragged tail into the
    // builder before Build() freezes it.
  }

  PeerIndex index = std::move(builder).Build();
  if (stats != nullptr) {
    stats->input_records = records_in;
    stats->intermediate_records = moments.stats().groups_out;
    stats->output_records = index.num_entries();
  }
  return index;
}

namespace {

/// The shared Job 3 reduce, fed with each member's peer list already in the
/// canonical order (descending similarity, ties ascending id).
std::vector<KeyValue<ItemId, GroupItemRelevance>> RunJob3WithPeerLists(
    const std::vector<KeyValue<ItemId, std::vector<UserRating>>>& candidates,
    const std::vector<std::vector<Peer>>& peers, const Group& group,
    AggregationKind aggregation, const MapReduceOptions& options,
    MapReduceStats* stats) {
  auto output = RunMapReduce<ItemId, std::vector<UserRating>, ItemId, UserRating,
                             ItemId, GroupItemRelevance>(
      candidates,
      // Map: explode each candidate's rater list to (i, (user, rating)).
      [](const ItemId& item, const std::vector<UserRating>& raters,
         MapEmitter<ItemId, UserRating>& out) {
        for (const UserRating& r : raters) out.Emit(item, r);
      },
      // Reduce per item: Eq. 1 per member, then the group aggregate.
      [&peers, &group, aggregation](const ItemId& item,
                                    std::span<const UserRating> raters,
                                    ReduceEmitter<ItemId, GroupItemRelevance>& out) {
        std::unordered_map<UserId, Rating> rating_of;
        rating_of.reserve(raters.size());
        for (const UserRating& r : raters) rating_of.emplace(r.user, r.value);

        GroupItemRelevance rel;
        rel.member_relevance.assign(group.size(), kUndefined);
        std::vector<double> defined;
        defined.reserve(group.size());
        for (size_t m = 0; m < group.size(); ++m) {
          double weighted = 0.0;
          double total = 0.0;
          for (const Peer& peer : peers[m]) {
            const auto it = rating_of.find(peer.user);
            if (it == rating_of.end()) continue;
            weighted += peer.similarity * it->second;
            total += peer.similarity;
          }
          if (total > 0.0) {
            rel.member_relevance[m] = weighted / total;
            defined.push_back(rel.member_relevance[m]);
          }
        }
        if (defined.empty()) return;  // unrecommendable to every member
        rel.defined_for_all = defined.size() == group.size();
        rel.group_relevance =
            Aggregate(std::span<const double>(defined), aggregation);
        out.Emit(item, rel);
      },
      options, stats);

  std::sort(output.begin(), output.end(),
            [](const auto& a, const auto& b) { return a.key < b.key; });
  return output;
}

}  // namespace

std::vector<KeyValue<ItemId, GroupItemRelevance>> RunJob3(
    const std::vector<KeyValue<ItemId, std::vector<UserRating>>>& candidates,
    const std::vector<KeyValue<UserPairKey, double>>& similarities,
    const Group& group, AggregationKind aggregation,
    const MapReduceOptions& options, MapReduceStats* stats) {
  // Side data (a Hadoop distributed-cache equivalent): each member's peer
  // list in the serial PeerFinder order (descending similarity, ascending
  // id), so the Eq. 1 accumulation adds terms in the exact order the serial
  // RelevanceEstimator does.
  std::unordered_map<UserId, size_t> member_index;
  for (size_t m = 0; m < group.size(); ++m) member_index.emplace(group[m], m);
  std::vector<std::vector<Peer>> peers(group.size());
  for (const auto& kv : similarities) {
    const auto it = member_index.find(kv.key.first);
    if (it != member_index.end()) {
      peers[it->second].push_back({kv.key.second, kv.value});
    }
  }
  for (auto& list : peers) {
    std::sort(list.begin(), list.end(), BetterPeer);
  }
  return RunJob3WithPeerLists(candidates, peers, group, aggregation, options,
                              stats);
}

std::vector<KeyValue<ItemId, GroupItemRelevance>> RunJob3(
    const std::vector<KeyValue<ItemId, std::vector<UserRating>>>& candidates,
    const PeerProvider& peers, const Group& group, AggregationKind aggregation,
    const MapReduceOptions& options, MapReduceStats* stats) {
  std::vector<std::vector<Peer>> lists(group.size());
  for (size_t m = 0; m < group.size(); ++m) {
    const auto span = peers.PeersOf(group[m]);
    lists[m].assign(span.begin(), span.end());
  }
  return RunJob3WithPeerLists(candidates, lists, group, aggregation, options,
                              stats);
}

}  // namespace fairrec
