#include "mapreduce/jobs.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>
#include <variant>

#include "cf/peer_finder.h"
#include "common/logging.h"

namespace fairrec {

namespace {
constexpr double kUndefined = std::numeric_limits<double>::quiet_NaN();
}  // namespace

std::vector<double> RunUserMeanJob(const std::vector<RatingTriple>& ratings,
                                   int32_t num_users,
                                   const MapReduceOptions& options,
                                   MapReduceStats* stats) {
  std::vector<KeyValue<int64_t, RatingTriple>> input;
  input.reserve(ratings.size());
  int64_t index = 0;
  for (const RatingTriple& t : ratings) input.push_back({index++, t});

  const auto output = RunMapReduce<int64_t, RatingTriple, UserId, Rating, UserId,
                                   double>(
      input,
      [](const int64_t&, const RatingTriple& t, MapEmitter<UserId, Rating>& out) {
        out.Emit(t.user, t.value);
      },
      [](const UserId& user, std::span<const Rating> values,
         ReduceEmitter<UserId, double>& out) {
        double sum = 0.0;
        for (const Rating r : values) sum += r;
        out.Emit(user, sum / static_cast<double>(values.size()));
      },
      options, stats);

  std::vector<double> means(static_cast<size_t>(num_users), 0.0);
  for (const auto& kv : output) {
    if (kv.key >= 0 && kv.key < num_users) means[static_cast<size_t>(kv.key)] = kv.value;
  }
  return means;
}

Result<Job1Output> RunJob1(const std::vector<RatingTriple>& ratings,
                           const Group& group, int32_t num_users,
                           const MapReduceOptions& options) {
  if (group.empty()) {
    return Status::InvalidArgument("group must not be empty");
  }
  std::vector<uint8_t> is_member(static_cast<size_t>(num_users), 0);
  for (const UserId u : group) {
    if (u < 0 || u >= num_users) {
      return Status::InvalidArgument("group member out of range: " +
                                     std::to_string(u));
    }
    is_member[static_cast<size_t>(u)] = 1;
  }

  std::vector<KeyValue<int64_t, RatingTriple>> input;
  input.reserve(ratings.size());
  int64_t index = 0;
  for (const RatingTriple& t : ratings) input.push_back({index++, t});

  // Reducer output is a tagged stream: candidates keyed by (-1, item),
  // partials keyed by (member, peer).
  using Job1Value = std::variant<std::vector<UserRating>, PartialSimilarity>;
  constexpr UserId kCandidateTag = -1;

  Job1Output result;
  const auto output = RunMapReduce<int64_t, RatingTriple, ItemId, UserRating,
                                   UserPairKey, Job1Value>(
      input,
      // Map: (u, i, rating) -> (i, (u, rating)).
      [](const int64_t&, const RatingTriple& t,
         MapEmitter<ItemId, UserRating>& out) {
        out.Emit(t.item, {t.user, t.value});
      },
      // Reduce per item: candidate stream or partial similarity pairs.
      [&is_member, kCandidateTag](const ItemId& item,
                                  std::span<const UserRating> raters,
                                  ReduceEmitter<UserPairKey, Job1Value>& out) {
        bool any_member = false;
        for (const UserRating& r : raters) {
          if (is_member[static_cast<size_t>(r.user)] != 0) {
            any_member = true;
            break;
          }
        }
        if (!any_member) {
          out.Emit({kCandidateTag, item},
                   std::vector<UserRating>(raters.begin(), raters.end()));
          return;
        }
        for (const UserRating& member : raters) {
          if (is_member[static_cast<size_t>(member.user)] == 0) continue;
          for (const UserRating& peer : raters) {
            if (is_member[static_cast<size_t>(peer.user)] != 0) continue;
            out.Emit({member.user, peer.user},
                     PartialSimilarity{item, member.value, peer.value});
          }
        }
      },
      options, &result.stats);

  for (const auto& kv : output) {
    if (kv.key.first == kCandidateTag) {
      result.candidate_items.push_back(
          {kv.key.second, std::get<std::vector<UserRating>>(kv.value)});
    } else {
      result.partial_similarities.push_back(
          {kv.key, std::get<PartialSimilarity>(kv.value)});
    }
  }
  // Deterministic downstream consumption regardless of partition layout.
  std::sort(result.candidate_items.begin(), result.candidate_items.end(),
            [](const auto& a, const auto& b) { return a.key < b.key; });
  std::sort(result.partial_similarities.begin(),
            result.partial_similarities.end(), [](const auto& a, const auto& b) {
              if (a.key != b.key) return a.key < b.key;
              return a.value.item < b.value.item;
            });
  return result;
}

std::vector<KeyValue<UserPairKey, double>> RunJob2(
    const std::vector<KeyValue<UserPairKey, PartialSimilarity>>& partials,
    const std::vector<double>& user_means,
    const RatingSimilarityOptions& sim_options, double delta,
    const MapReduceOptions& options, MapReduceStats* stats) {
  auto mean_of = [&user_means](UserId u) {
    return (u >= 0 && static_cast<size_t>(u) < user_means.size())
               ? user_means[static_cast<size_t>(u)]
               : 0.0;
  };

  auto output = RunMapReduce<UserPairKey, PartialSimilarity, UserPairKey,
                             PartialSimilarity, UserPairKey, double, PairHash>(
      partials,
      // Map: identity re-key (the pair key is already in place).
      [](const UserPairKey& key, const PartialSimilarity& value,
         MapEmitter<UserPairKey, PartialSimilarity, PairHash>& out) {
        out.Emit(key, value);
      },
      // Reduce: restore the canonical co-rated item order, finish Eq. 2 via
      // the shared FinishPearson, apply the Def. 1 threshold.
      [&mean_of, &sim_options, delta](const UserPairKey& key,
                                      std::span<const PartialSimilarity> values,
                                      ReduceEmitter<UserPairKey, double>& out) {
        std::vector<PartialSimilarity> sorted(values.begin(), values.end());
        std::sort(sorted.begin(), sorted.end(),
                  [](const PartialSimilarity& a, const PartialSimilarity& b) {
                    return a.item < b.item;
                  });
        std::vector<std::pair<Rating, Rating>> shared;
        shared.reserve(sorted.size());
        for (const PartialSimilarity& p : sorted) {
          shared.emplace_back(p.member_rating, p.peer_rating);
        }
        const double sim = FinishPearson(shared, mean_of(key.first),
                                         mean_of(key.second), sim_options);
        if (sim >= delta) out.Emit(key, sim);
      },
      options, stats);

  std::sort(output.begin(), output.end(),
            [](const auto& a, const auto& b) { return a.key < b.key; });
  return output;
}

Result<PeerIndex> RunJob2PeerIndex(
    const std::vector<KeyValue<UserPairKey, PartialSimilarity>>& partials,
    const std::vector<double>& user_means,
    const RatingSimilarityOptions& sim_options, double delta,
    int32_t num_users, int32_t max_peers_per_member,
    const MapReduceOptions& options, MapReduceStats* stats) {
  if (num_users < 0) {
    return Status::InvalidArgument("num_users must be >= 0");
  }
  if (max_peers_per_member < 0) {
    return Status::InvalidArgument("max_peers_per_member must be >= 0");
  }
  const auto thresholded =
      RunJob2(partials, user_means, sim_options, delta, options, stats);

  PeerIndexOptions index_options;
  index_options.delta = delta;
  index_options.max_peers_per_user = max_peers_per_member;
  PeerIndex::Builder builder(num_users, index_options);
  // The Job 1 stream is directional (member -> outside user), so only the
  // member side of each record gets a list entry; OfferPair would invent
  // edges for non-members that a whole-population build wouldn't have.
  for (const auto& kv : thresholded) {
    builder.Offer(kv.key.first, kv.key.second, kv.value);
  }
  return std::move(builder).Build();
}

namespace {

/// The shared Job 3 reduce, fed with each member's peer list already in the
/// canonical order (descending similarity, ties ascending id).
std::vector<KeyValue<ItemId, GroupItemRelevance>> RunJob3WithPeerLists(
    const std::vector<KeyValue<ItemId, std::vector<UserRating>>>& candidates,
    const std::vector<std::vector<Peer>>& peers, const Group& group,
    AggregationKind aggregation, const MapReduceOptions& options,
    MapReduceStats* stats) {
  auto output = RunMapReduce<ItemId, std::vector<UserRating>, ItemId, UserRating,
                             ItemId, GroupItemRelevance>(
      candidates,
      // Map: explode each candidate's rater list to (i, (user, rating)).
      [](const ItemId& item, const std::vector<UserRating>& raters,
         MapEmitter<ItemId, UserRating>& out) {
        for (const UserRating& r : raters) out.Emit(item, r);
      },
      // Reduce per item: Eq. 1 per member, then the group aggregate.
      [&peers, &group, aggregation](const ItemId& item,
                                    std::span<const UserRating> raters,
                                    ReduceEmitter<ItemId, GroupItemRelevance>& out) {
        std::unordered_map<UserId, Rating> rating_of;
        rating_of.reserve(raters.size());
        for (const UserRating& r : raters) rating_of.emplace(r.user, r.value);

        GroupItemRelevance rel;
        rel.member_relevance.assign(group.size(), kUndefined);
        std::vector<double> defined;
        defined.reserve(group.size());
        for (size_t m = 0; m < group.size(); ++m) {
          double weighted = 0.0;
          double total = 0.0;
          for (const Peer& peer : peers[m]) {
            const auto it = rating_of.find(peer.user);
            if (it == rating_of.end()) continue;
            weighted += peer.similarity * it->second;
            total += peer.similarity;
          }
          if (total > 0.0) {
            rel.member_relevance[m] = weighted / total;
            defined.push_back(rel.member_relevance[m]);
          }
        }
        if (defined.empty()) return;  // unrecommendable to every member
        rel.defined_for_all = defined.size() == group.size();
        rel.group_relevance =
            Aggregate(std::span<const double>(defined), aggregation);
        out.Emit(item, rel);
      },
      options, stats);

  std::sort(output.begin(), output.end(),
            [](const auto& a, const auto& b) { return a.key < b.key; });
  return output;
}

}  // namespace

std::vector<KeyValue<ItemId, GroupItemRelevance>> RunJob3(
    const std::vector<KeyValue<ItemId, std::vector<UserRating>>>& candidates,
    const std::vector<KeyValue<UserPairKey, double>>& similarities,
    const Group& group, AggregationKind aggregation,
    const MapReduceOptions& options, MapReduceStats* stats) {
  // Side data (a Hadoop distributed-cache equivalent): each member's peer
  // list in the serial PeerFinder order (descending similarity, ascending
  // id), so the Eq. 1 accumulation adds terms in the exact order the serial
  // RelevanceEstimator does.
  std::unordered_map<UserId, size_t> member_index;
  for (size_t m = 0; m < group.size(); ++m) member_index.emplace(group[m], m);
  std::vector<std::vector<Peer>> peers(group.size());
  for (const auto& kv : similarities) {
    const auto it = member_index.find(kv.key.first);
    if (it != member_index.end()) {
      peers[it->second].push_back({kv.key.second, kv.value});
    }
  }
  for (auto& list : peers) {
    std::sort(list.begin(), list.end(), BetterPeer);
  }
  return RunJob3WithPeerLists(candidates, peers, group, aggregation, options,
                              stats);
}

std::vector<KeyValue<ItemId, GroupItemRelevance>> RunJob3(
    const std::vector<KeyValue<ItemId, std::vector<UserRating>>>& candidates,
    const PeerProvider& peers, const Group& group, AggregationKind aggregation,
    const MapReduceOptions& options, MapReduceStats* stats) {
  std::vector<std::vector<Peer>> lists(group.size());
  for (size_t m = 0; m < group.size(); ++m) {
    const auto span = peers.PeersOf(group[m]);
    lists[m].assign(span.begin(), span.end());
  }
  return RunJob3WithPeerLists(candidates, lists, group, aggregation, options,
                              stats);
}

}  // namespace fairrec
