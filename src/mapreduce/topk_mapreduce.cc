#include "mapreduce/topk_mapreduce.h"

#include "cf/top_k.h"

namespace fairrec {

std::vector<ScoredItem> MapReduceTopK(const std::vector<ScoredItem>& scored,
                                      int32_t k, const MapReduceOptions& options,
                                      MapReduceStats* stats) {
  if (k <= 0) return {};

  const size_t num_partitions =
      std::max<size_t>(1, options.Resolved().num_reduce_partitions);

  std::vector<KeyValue<int64_t, ScoredItem>> input;
  input.reserve(scored.size());
  int64_t index = 0;
  for (const ScoredItem& s : scored) input.push_back({index++, s});

  // Phase 1: local top-k per hash partition.
  const auto survivors = RunMapReduce<int64_t, ScoredItem, int32_t, ScoredItem,
                                      int32_t, ScoredItem>(
      input,
      [num_partitions](const int64_t&, const ScoredItem& s,
                       MapEmitter<int32_t, ScoredItem>& out) {
        out.Emit(static_cast<int32_t>(static_cast<uint32_t>(s.item) %
                                      num_partitions),
                 s);
      },
      [k](const int32_t& partition, std::span<const ScoredItem> values,
          ReduceEmitter<int32_t, ScoredItem>& out) {
        const std::vector<ScoredItem> local(values.begin(), values.end());
        for (const ScoredItem& s : SelectTopK(local, k)) out.Emit(partition, s);
      },
      options, stats);

  // Phase 2: merge the survivors ("single final reducer").
  std::vector<ScoredItem> merged;
  merged.reserve(survivors.size());
  for (const auto& kv : survivors) merged.push_back(kv.value);
  return SelectTopK(merged, k);
}

}  // namespace fairrec
