#ifndef FAIRREC_MAPREDUCE_ENGINE_H_
#define FAIRREC_MAPREDUCE_ENGINE_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <utility>
#include <vector>

#include "common/thread_pool.h"

namespace fairrec {

/// One record flowing through a MapReduce job.
template <typename K, typename V>
struct KeyValue {
  K key;
  V value;

  friend bool operator==(const KeyValue&, const KeyValue&) = default;
};

/// Engine tuning knobs. The defaults parallelize across hardware threads.
struct MapReduceOptions {
  /// Worker threads (0 = hardware concurrency).
  size_t num_workers = 0;
  /// Map shards; each shard is one map task (0 = number of workers).
  size_t num_map_shards = 0;
  /// Reduce partitions, i.e. parallel reduce tasks (0 = number of workers).
  size_t num_reduce_partitions = 0;

  /// Returns a copy with all zeros resolved against the machine.
  MapReduceOptions Resolved() const;
};

/// Per-run instrumentation, reported by RunMapReduce.
struct MapReduceStats {
  int64_t input_records = 0;
  int64_t intermediate_records = 0;
  int64_t output_records = 0;
  size_t map_shards = 0;
  size_t reduce_partitions = 0;
};

/// Hash functor usable for std::pair intermediate keys.
struct PairHash {
  template <typename A, typename B>
  size_t operator()(const std::pair<A, B>& p) const {
    const size_t h1 = std::hash<A>{}(p.first);
    const size_t h2 = std::hash<B>{}(p.second);
    return h1 ^ (h2 + 0x9e3779b97f4a7c15ULL + (h1 << 6) + (h1 >> 2));
  }
};

/// Collects the (K2, V2) pairs emitted by one map task, spread over the
/// reduce partitions by the key hash.
template <typename K2, typename V2, typename Hash = std::hash<K2>>
class MapEmitter {
 public:
  MapEmitter(size_t num_partitions, Hash hash = {})
      : partitions_(num_partitions), hash_(hash) {}

  void Emit(K2 key, V2 value) {
    const size_t p = hash_(key) % partitions_.size();
    partitions_[p].push_back({std::move(key), std::move(value)});
  }

  std::vector<KeyValue<K2, V2>>& partition(size_t p) { return partitions_[p]; }
  size_t num_partitions() const { return partitions_.size(); }

 private:
  std::vector<std::vector<KeyValue<K2, V2>>> partitions_;
  Hash hash_;
};

/// Collects the (K3, V3) pairs emitted by one reduce task.
template <typename K3, typename V3>
class ReduceEmitter {
 public:
  void Emit(K3 key, V3 value) { out_.push_back({std::move(key), std::move(value)}); }

  std::vector<KeyValue<K3, V3>>& records() { return out_; }

 private:
  std::vector<KeyValue<K3, V3>> out_;
};

/// Runs one MapReduce job in-process:
///
///   map phase:    map_fn(key, value, emitter) per input record, one task per
///                 shard, tasks scheduled on a thread pool;
///   shuffle:      intermediate records routed to hash(key) % R partitions;
///   sort+reduce:  per partition, records are stably sorted by key (Less),
///                 grouped, and reduce_fn(key, values, emitter) is invoked
///                 once per distinct key with all its values.
///
/// Semantics preserved from the Hadoop model the paper targets: per-key
/// grouping, reducers see each key exactly once, values arrive in mapper
/// emission order (stable sort; shards concatenated in shard order), and the
/// output is deterministic for a fixed options.Resolved() shape.
///
/// K2 needs Hash and Less; all types need to be movable. MapFn must be
/// callable as map_fn(const K1&, const V1&, MapEmitter<K2, V2, Hash>&) and
/// ReduceFn as reduce_fn(const K2&, std::span<const V2>,
/// ReduceEmitter<K3, V3>&); both must be safe to invoke concurrently.
template <typename K1, typename V1, typename K2, typename V2, typename K3,
          typename V3, typename Hash = std::hash<K2>,
          typename Less = std::less<K2>, typename MapFn, typename ReduceFn>
std::vector<KeyValue<K3, V3>> RunMapReduce(
    const std::vector<KeyValue<K1, V1>>& input, const MapFn& map_fn,
    const ReduceFn& reduce_fn, const MapReduceOptions& options = {},
    MapReduceStats* stats = nullptr) {
  const MapReduceOptions opts = options.Resolved();
  const size_t num_shards = std::max<size_t>(1, opts.num_map_shards);
  const size_t num_partitions = std::max<size_t>(1, opts.num_reduce_partitions);

  ThreadPool pool(opts.num_workers);

  // ---- Map phase ----
  std::vector<MapEmitter<K2, V2, Hash>> emitters;
  emitters.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) emitters.emplace_back(num_partitions);

  const size_t n = input.size();
  pool.ParallelFor(num_shards, [&](size_t s) {
    const size_t begin = n * s / num_shards;
    const size_t end = n * (s + 1) / num_shards;
    for (size_t i = begin; i < end; ++i) {
      map_fn(input[i].key, input[i].value, emitters[s]);
    }
  });

  int64_t intermediate = 0;
  for (auto& e : emitters) {
    for (size_t p = 0; p < num_partitions; ++p) {
      intermediate += static_cast<int64_t>(e.partition(p).size());
    }
  }

  // ---- Shuffle + sort + reduce phase ----
  std::vector<std::vector<KeyValue<K3, V3>>> outputs(num_partitions);
  pool.ParallelFor(num_partitions, [&](size_t p) {
    std::vector<KeyValue<K2, V2>> bucket;
    for (auto& e : emitters) {
      auto& part = e.partition(p);
      bucket.insert(bucket.end(), std::make_move_iterator(part.begin()),
                    std::make_move_iterator(part.end()));
      part.clear();
    }
    Less less;
    std::stable_sort(bucket.begin(), bucket.end(),
                     [&less](const KeyValue<K2, V2>& a, const KeyValue<K2, V2>& b) {
                       return less(a.key, b.key);
                     });
    ReduceEmitter<K3, V3> out;
    size_t i = 0;
    std::vector<V2> values;
    while (i < bucket.size()) {
      size_t j = i;
      values.clear();
      while (j < bucket.size() && !less(bucket[i].key, bucket[j].key) &&
             !less(bucket[j].key, bucket[i].key)) {
        values.push_back(std::move(bucket[j].value));
        ++j;
      }
      reduce_fn(bucket[i].key, std::span<const V2>(values), out);
      i = j;
    }
    outputs[p] = std::move(out.records());
  });

  std::vector<KeyValue<K3, V3>> result;
  for (auto& part : outputs) {
    result.insert(result.end(), std::make_move_iterator(part.begin()),
                  std::make_move_iterator(part.end()));
  }

  if (stats != nullptr) {
    stats->input_records = static_cast<int64_t>(input.size());
    stats->intermediate_records = intermediate;
    stats->output_records = static_cast<int64_t>(result.size());
    stats->map_shards = num_shards;
    stats->reduce_partitions = num_partitions;
  }
  return result;
}

}  // namespace fairrec

#endif  // FAIRREC_MAPREDUCE_ENGINE_H_
