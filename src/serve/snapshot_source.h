#ifndef FAIRREC_SERVE_SNAPSHOT_SOURCE_H_
#define FAIRREC_SERVE_SNAPSHOT_SOURCE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>

#include "common/result.h"
#include "ratings/rating_delta.h"
#include "ratings/rating_matrix.h"
#include "serve/serving_snapshot.h"
#include "sim/incremental_peer_graph.h"
#include "sim/peer_index.h"
#include "sim/rating_similarity.h"

namespace fairrec {
namespace serve {

/// Where the serving layer gets its generations from. Acquire must be safe
/// to call concurrently from any number of request threads, and every
/// returned snapshot must be internally consistent (matrix and peers from
/// the same publication).
class SnapshotSource {
 public:
  virtual ~SnapshotSource() = default;

  /// The current generation. The snapshot is acquired once per request; the
  /// caller keeps it for the whole query and drops it when done.
  virtual ServingSnapshot Acquire() const = 0;
};

/// Fixed artifacts, generation 1 forever — the source for evaluation runs,
/// tests, and any deployment without live rating traffic.
class StaticSnapshotSource final : public SnapshotSource {
 public:
  /// Both pointers must be non-null; `peers` must index the same user
  /// population as `matrix`.
  StaticSnapshotSource(std::shared_ptr<const RatingMatrix> matrix,
                       std::shared_ptr<const PeerProvider> peers);

  /// Convenience: builds the Def. 1 peer graph from the corpus with one
  /// engine sweep and wraps both as a source.
  static Result<StaticSnapshotSource> FromMatrix(
      RatingMatrix matrix, RatingSimilarityOptions similarity = {},
      PeerIndexOptions peers = {});

  ServingSnapshot Acquire() const override { return snapshot_; }

 private:
  ServingSnapshot snapshot_;
};

/// The live source: wraps an IncrementalPeerGraph and republishes its
/// artifacts as a fresh generation after every delta batch.
///
/// Concurrency contract:
///   * ApplyDelta calls are serialized among themselves (update mutex) —
///     writers queue, they do not interleave;
///   * Acquire is a mutex-guarded copy of two shared_ptrs and the generation
///     counter, so readers never observe a half-published generation (a new
///     matrix with the old index, or vice versa);
///   * published generations are immutable: ApplyDelta builds the merged
///     corpus and patched index as new objects and swaps pointers
///     (sim/incremental_peer_graph.h), so snapshots acquired before a delta
///     remain fully readable during and after it.
class LivePeerGraph final : public SnapshotSource {
 public:
  /// Takes ownership of a seeded graph and publishes its artifacts as
  /// generation 1.
  explicit LivePeerGraph(IncrementalPeerGraph graph);

  ServingSnapshot Acquire() const override;

  /// Folds one rating batch into the graph and publishes the result as the
  /// next generation. Returns the patch accounting. On error nothing is
  /// published and the current generation stays served.
  Result<DeltaApplyStats> ApplyDelta(const RatingDelta& delta);

  /// The generation currently being handed out.
  uint64_t generation() const;

  /// The wrapped subsystem, for checkpointing and inspection. Not
  /// synchronized against ApplyDelta — quiesce updates first.
  const IncrementalPeerGraph& graph() const { return graph_; }

 private:
  /// Serializes ApplyDelta callers.
  std::mutex update_mu_;
  /// Guards current_: held for the pointer swap on publish and the pointer
  /// copy in Acquire, never across a build.
  mutable std::mutex publish_mu_;
  IncrementalPeerGraph graph_;
  ServingSnapshot current_;
};

}  // namespace serve
}  // namespace fairrec

#endif  // FAIRREC_SERVE_SNAPSHOT_SOURCE_H_
