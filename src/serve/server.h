#ifndef FAIRREC_SERVE_SERVER_H_
#define FAIRREC_SERVE_SERVER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/result.h"
#include "serve/recommendation_service.h"

namespace fairrec {
namespace serve {

struct ServingServerOptions {
  /// Worker threads executing requests. Each owns one reusable Eq. 1
  /// scratch for its whole lifetime.
  int32_t num_workers = 4;
  /// Admission bound: a Submit arriving while this many requests are
  /// already queued (not yet picked up by a worker) is shed with
  /// ResourceExhausted instead of queued. In-flight requests do not count.
  int32_t max_queue = 256;
};

/// Counters since construction. Monotonic; read at any time.
struct ServingServerStats {
  /// Requests admitted to the queue.
  uint64_t accepted = 0;
  /// Requests declined with ResourceExhausted at Submit.
  uint64_t shed = 0;
  /// Completed requests whose response was ok.
  uint64_t completed_ok = 0;
  /// Completed requests that returned an error status to their callback.
  uint64_t completed_error = 0;
  /// High-water mark of the queue depth.
  uint64_t queue_peak = 0;
};

/// The request loop of the serving layer: a bounded queue in front of a
/// fixed worker pool, each worker draining requests through one
/// RecommendationService with a per-worker relevance scratch.
///
/// Admission policy is shed-on-full: a full queue means the pool is already
/// saturated past its bound, and queuing deeper would only grow latency
/// without growing throughput — so Submit returns ResourceExhausted
/// immediately (the one retryable code; see common/status.h) and the caller
/// decides whether to back off or drop. Submitted callbacks run on worker
/// threads, exactly once each, including during shutdown.
///
/// Shutdown is graceful: Shutdown() stops admissions (further Submits get
/// FailedPrecondition), lets the workers drain every accepted request, then
/// joins them. The destructor calls Shutdown().
class ServingServer {
 public:
  using UserCallback = std::function<void(Result<UserRecResponse>)>;
  using GroupCallback = std::function<void(Result<GroupRecResponse>)>;

  /// `service` must outlive the server.
  ServingServer(const RecommendationService* service,
                ServingServerOptions options = {});
  ~ServingServer();

  ServingServer(const ServingServer&) = delete;
  ServingServer& operator=(const ServingServer&) = delete;

  /// Enqueues a single-user query. OK means `done` will run exactly once on
  /// a worker thread; ResourceExhausted means the request was shed and
  /// `done` will never run; FailedPrecondition means the server is shut
  /// down.
  Status SubmitUser(UserRecRequest request, UserCallback done);

  /// Enqueues a group query. Same admission contract as SubmitUser.
  Status SubmitGroup(GroupRecRequest request, GroupCallback done);

  /// Blocking conveniences for callers without their own completion
  /// plumbing: Submit + wait. Shed/shutdown verdicts come back directly.
  Result<UserRecResponse> CallUser(UserRecRequest request);
  Result<GroupRecResponse> CallGroup(GroupRecRequest request);

  /// Stops admissions, drains the queue, joins the workers. Idempotent.
  void Shutdown();

  ServingServerStats stats() const;
  const ServingServerOptions& options() const { return options_; }

 private:
  /// A queued request, already bound to its request payload and callback;
  /// the worker just supplies its scratch.
  using Job = std::function<void(RecommendationService::Scratch&)>;

  Status Enqueue(Job job);
  void RecordCompletion(bool ok);
  void WorkerLoop();

  const RecommendationService* service_;
  ServingServerOptions options_;

  mutable std::mutex mu_;
  std::condition_variable queue_cv_;
  std::deque<Job> queue_;
  bool shutdown_ = false;
  ServingServerStats stats_;

  std::vector<std::thread> workers_;
};

}  // namespace serve
}  // namespace fairrec

#endif  // FAIRREC_SERVE_SERVER_H_
