#ifndef FAIRREC_SERVE_RECOMMENDATION_SERVICE_H_
#define FAIRREC_SERVE_RECOMMENDATION_SERVICE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "cf/recommender.h"
#include "common/result.h"
#include "core/fairness.h"
#include "core/fairness_heuristic.h"
#include "core/greedy_selector.h"
#include "core/group_context.h"
#include "core/local_search.h"
#include "ratings/types.h"
#include "serve/serving_snapshot.h"
#include "serve/snapshot_source.h"

namespace fairrec {
namespace serve {

/// The selectors a request can name. Each service instance owns one
/// configured instance of each, so requests just pick.
enum class SelectorKind {
  /// The paper's Algorithm 1 (core/fairness_heuristic.h).
  kAlgorithm1,
  /// Greedy marginal-value baseline (core/greedy_selector.h).
  kGreedyValue,
  /// Swap hill-climbing seeded from Algorithm 1 (core/local_search.h).
  kLocalSearch,
};

/// "algorithm1", "greedy-value", "local-search".
std::string SelectorKindName(SelectorKind kind);

/// Inverse of SelectorKindName; InvalidArgument on anything else.
Result<SelectorKind> ParseSelectorKind(std::string_view name);

/// One single-user query: the member's A_u against the current corpus.
struct UserRecRequest {
  UserId user = kInvalidUserId;
  /// Length of the returned list; 0 uses the service's configured top_k.
  int32_t top_k = 0;
};

/// One group query: fairness-aware top-z for an ad-hoc group.
struct GroupRecRequest {
  Group members;
  /// Size of the recommended set D. Must be positive and at most the size
  /// of the group's candidate set (items unrated by every member).
  int32_t z = 0;
  SelectorKind selector = SelectorKind::kAlgorithm1;
};

struct UserRecResponse {
  /// Generation of the snapshot the query ran against.
  uint64_t generation = 0;
  /// A_u, descending relevance.
  std::vector<ScoredItem> items;
};

/// How one member fared under the returned D.
struct MemberSatisfaction {
  UserId user = kInvalidUserId;
  /// Def. 3: D contains at least one item of the member's A_u.
  bool satisfied = false;
  /// The member's summed relevance over D.
  double relevance_sum = 0.0;
};

struct GroupRecResponse {
  uint64_t generation = 0;
  /// D in selection order; each item's score is its group relevance
  /// (Def. 2 under the service's configured aggregation).
  std::vector<ScoredItem> items;
  /// value(G, D) and its fairness x relevance decomposition.
  ValueBreakdown score;
  /// Aligned with GroupRecRequest::members.
  std::vector<MemberSatisfaction> members;
};

struct RecommendationServiceOptions {
  RecommenderOptions recommender;
  GroupContextOptions context;
  FairnessHeuristicOptions algorithm1;
  LocalSearchOptions local_search;
};

/// The online facade over the whole query side of the library: plain
/// request/response structs in, one snapshot acquisition per request, every
/// pipeline stage (peers -> Eq. 1 -> Def. 2 -> selector) run against that
/// snapshot.
///
/// Error taxonomy of the query path — one distinct, documented code per
/// caller mistake, so a transport can map them without parsing messages:
///   * NotFound          — a user id (single-user query or group member)
///                         beyond the corpus's population;
///   * InvalidArgument   — a malformed request: empty group, duplicate
///                         member, non-positive z or top_k override < 0;
///   * OutOfRange        — z exceeds the group's candidate set (the request
///                         was well-formed, the corpus cannot satisfy it;
///                         retrying with smaller z works);
///   * ResourceExhausted — not produced here: the ServingServer's verdict
///                         when its queue is full (serve/server.h).
///
/// Queries are const and freely concurrent. The Scratch overloads let a
/// serving worker reuse one set of Eq. 1 accumulators across requests; the
/// ...On overloads run against a caller-held snapshot instead of acquiring
/// one, which is what replay/parity harnesses use to re-ask a question of a
/// specific retained generation.
class RecommendationService {
 public:
  using Scratch = RelevanceEstimator::Scratch;

  /// `source` must outlive the service.
  explicit RecommendationService(const SnapshotSource* source,
                                 RecommendationServiceOptions options = {});

  Result<UserRecResponse> RecommendUser(const UserRecRequest& request) const;
  Result<UserRecResponse> RecommendUser(const UserRecRequest& request,
                                        Scratch& scratch) const;
  Result<UserRecResponse> RecommendUserOn(const ServingSnapshot& snapshot,
                                          const UserRecRequest& request,
                                          Scratch& scratch) const;

  Result<GroupRecResponse> RecommendGroup(const GroupRecRequest& request) const;
  Result<GroupRecResponse> RecommendGroup(const GroupRecRequest& request,
                                          Scratch& scratch) const;
  Result<GroupRecResponse> RecommendGroupOn(const ServingSnapshot& snapshot,
                                            const GroupRecRequest& request,
                                            Scratch& scratch) const;

  const ItemSetSelector& selector(SelectorKind kind) const;
  const RecommendationServiceOptions& options() const { return options_; }
  const SnapshotSource& source() const { return *source_; }

 private:
  const SnapshotSource* source_;
  RecommendationServiceOptions options_;
  FairnessHeuristic algorithm1_;
  GreedyValueSelector greedy_;
  LocalSearchSelector local_search_;
};

}  // namespace serve
}  // namespace fairrec

#endif  // FAIRREC_SERVE_RECOMMENDATION_SERVICE_H_
