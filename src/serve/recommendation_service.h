#ifndef FAIRREC_SERVE_RECOMMENDATION_SERVICE_H_
#define FAIRREC_SERVE_RECOMMENDATION_SERVICE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "cf/recommender.h"
#include "common/result.h"
#include "core/fairness.h"
#include "core/fairness_heuristic.h"
#include "core/group_context.h"
#include "core/local_search.h"
#include "core/selector.h"
#include "ratings/types.h"
#include "serve/serving_snapshot.h"
#include "serve/snapshot_source.h"

namespace fairrec {
namespace serve {

/// One single-user query: the member's A_u against the current corpus.
struct UserRecRequest {
  UserId user = kInvalidUserId;
  /// Length of the returned list; 0 uses the service's configured top_k.
  int32_t top_k = 0;
};

/// One group query: fairness-aware top-z for an ad-hoc group.
struct GroupRecRequest {
  Group members;
  /// Size of the recommended set D. Must be positive and at most the size
  /// of the group's candidate set (items unrated by every member).
  int32_t z = 0;
  /// SelectorRegistry name (canonical or alias) of the selector to run.
  /// The service pre-builds one instance of every registered selector at
  /// construction; an unknown name is InvalidArgument.
  std::string selector = "algorithm1";
};

struct UserRecResponse {
  /// Generation of the snapshot the query ran against.
  uint64_t generation = 0;
  /// A_u, descending relevance.
  std::vector<ScoredItem> items;
};

/// How one member fared under the returned D.
struct MemberSatisfaction {
  UserId user = kInvalidUserId;
  /// Def. 3: D contains at least one item of the member's A_u.
  bool satisfied = false;
  /// The member's summed relevance over D (NaN entries skipped).
  double relevance_sum = 0.0;
  /// Normalized satisfaction: the member's best relevance in D divided by
  /// their best over all candidates; -1 when the member has no defined
  /// relevance anywhere.
  double satisfaction = -1.0;
};

struct GroupRecResponse {
  uint64_t generation = 0;
  /// Canonical name of the selector that produced this response.
  std::string selector;
  /// D in selection order; each item's score is its group relevance
  /// (Def. 2 under the service's configured aggregation).
  std::vector<ScoredItem> items;
  /// value(G, D) and its fairness x relevance decomposition.
  ValueBreakdown score;
  /// Aligned with GroupRecRequest::members.
  std::vector<MemberSatisfaction> members;
};

struct RecommendationServiceOptions {
  RecommenderOptions recommender;
  GroupContextOptions context;
  FairnessHeuristicOptions algorithm1;
  LocalSearchOptions local_search;
};

/// The online facade over the whole query side of the library: plain
/// request/response structs in, one snapshot acquisition per request, every
/// pipeline stage (peers -> Eq. 1 -> Def. 2 -> selector) run against that
/// snapshot.
///
/// Error taxonomy of the query path — one distinct, documented code per
/// caller mistake, so a transport can map them without parsing messages:
///   * NotFound          — a user id (single-user query or group member)
///                         beyond the corpus's population;
///   * InvalidArgument   — a malformed request: empty group, duplicate
///                         member, non-positive z, top_k override < 0, or a
///                         selector name no registry entry answers to;
///   * OutOfRange        — z exceeds the group's candidate set (the request
///                         was well-formed, the corpus cannot satisfy it;
///                         retrying with smaller z works);
///   * ResourceExhausted — not produced here: the ServingServer's verdict
///                         when its queue is full (serve/server.h).
///
/// Queries are const and freely concurrent. The Scratch overloads let a
/// serving worker reuse one set of Eq. 1 accumulators across requests; the
/// ...On overloads run against a caller-held snapshot instead of acquiring
/// one, which is what replay/parity harnesses use to re-ask a question of a
/// specific retained generation.
class RecommendationService {
 public:
  using Scratch = RelevanceEstimator::Scratch;

  /// `source` must outlive the service.
  explicit RecommendationService(const SnapshotSource* source,
                                 RecommendationServiceOptions options = {});

  Result<UserRecResponse> RecommendUser(const UserRecRequest& request) const;
  Result<UserRecResponse> RecommendUser(const UserRecRequest& request,
                                        Scratch& scratch) const;
  Result<UserRecResponse> RecommendUserOn(const ServingSnapshot& snapshot,
                                          const UserRecRequest& request,
                                          Scratch& scratch) const;

  Result<GroupRecResponse> RecommendGroup(const GroupRecRequest& request) const;
  Result<GroupRecResponse> RecommendGroup(const GroupRecRequest& request,
                                          Scratch& scratch) const;
  Result<GroupRecResponse> RecommendGroupOn(const ServingSnapshot& snapshot,
                                            const GroupRecRequest& request,
                                            Scratch& scratch) const;

  /// The pre-built selector answering to `name` (canonical or alias);
  /// InvalidArgument when unknown.
  Result<const ItemSetSelector*> selector(std::string_view name) const;

  /// Canonical names of every selector this service can run, sorted.
  std::vector<std::string> selector_names() const;

  const RecommendationServiceOptions& options() const { return options_; }
  const SnapshotSource& source() const { return *source_; }

 private:
  const SnapshotSource* source_;
  RecommendationServiceOptions options_;
  /// One instance of every registered selector, built at construction with
  /// the service's configured options; selectors_ maps every canonical name
  /// and alias onto them.
  std::vector<std::unique_ptr<ItemSetSelector>> owned_selectors_;
  std::map<std::string, const ItemSetSelector*, std::less<>> selectors_;
};

}  // namespace serve
}  // namespace fairrec

#endif  // FAIRREC_SERVE_RECOMMENDATION_SERVICE_H_
