#include "serve/server.h"

#include <future>
#include <string>
#include <utility>

#include "common/logging.h"

namespace fairrec {
namespace serve {

ServingServer::ServingServer(const RecommendationService* service,
                             ServingServerOptions options)
    : service_(service), options_(options) {
  FAIRREC_CHECK(service != nullptr);
  FAIRREC_CHECK(options_.num_workers > 0);
  FAIRREC_CHECK(options_.max_queue > 0);
  workers_.reserve(static_cast<size_t>(options_.num_workers));
  for (int32_t i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ServingServer::~ServingServer() { Shutdown(); }

Status ServingServer::Enqueue(Job job) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      return Status::FailedPrecondition("server is shut down");
    }
    if (queue_.size() >= static_cast<size_t>(options_.max_queue)) {
      ++stats_.shed;
      return Status::ResourceExhausted(
          "request queue full (" + std::to_string(options_.max_queue) +
          " waiting)");
    }
    queue_.push_back(std::move(job));
    ++stats_.accepted;
    if (queue_.size() > stats_.queue_peak) stats_.queue_peak = queue_.size();
  }
  queue_cv_.notify_one();
  return Status::OK();
}

Status ServingServer::SubmitUser(UserRecRequest request, UserCallback done) {
  FAIRREC_CHECK(done != nullptr);
  return Enqueue([this, request = std::move(request), done = std::move(done)](
                     RecommendationService::Scratch& scratch) {
    Result<UserRecResponse> result = service_->RecommendUser(request, scratch);
    RecordCompletion(result.ok());
    done(std::move(result));
  });
}

Status ServingServer::SubmitGroup(GroupRecRequest request, GroupCallback done) {
  FAIRREC_CHECK(done != nullptr);
  return Enqueue([this, request = std::move(request), done = std::move(done)](
                     RecommendationService::Scratch& scratch) {
    Result<GroupRecResponse> result = service_->RecommendGroup(request, scratch);
    RecordCompletion(result.ok());
    done(std::move(result));
  });
}

void ServingServer::RecordCompletion(bool ok) {
  std::lock_guard<std::mutex> lock(mu_);
  if (ok) {
    ++stats_.completed_ok;
  } else {
    ++stats_.completed_error;
  }
}

Result<UserRecResponse> ServingServer::CallUser(UserRecRequest request) {
  std::promise<Result<UserRecResponse>> promise;
  std::future<Result<UserRecResponse>> future = promise.get_future();
  FAIRREC_RETURN_NOT_OK(SubmitUser(
      std::move(request),
      [&promise](Result<UserRecResponse> r) { promise.set_value(std::move(r)); }));
  return future.get();
}

Result<GroupRecResponse> ServingServer::CallGroup(GroupRecRequest request) {
  std::promise<Result<GroupRecResponse>> promise;
  std::future<Result<GroupRecResponse>> future = promise.get_future();
  FAIRREC_RETURN_NOT_OK(SubmitGroup(
      std::move(request),
      [&promise](Result<GroupRecResponse> r) { promise.set_value(std::move(r)); }));
  return future.get();
}

void ServingServer::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_ && workers_.empty()) return;
    shutdown_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

ServingServerStats ServingServer::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void ServingServer::WorkerLoop() {
  // One scratch per worker for its whole lifetime: consecutive requests on
  // this thread reuse the same dense Eq. 1 accumulators.
  RecommendationService::Scratch scratch;
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown_ and fully drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job(scratch);
  }
}

}  // namespace serve
}  // namespace fairrec
