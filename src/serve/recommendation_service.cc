#include "serve/recommendation_service.h"

#include <string>
#include <unordered_set>
#include <utility>

#include "common/logging.h"

namespace fairrec {
namespace serve {

std::string SelectorKindName(SelectorKind kind) {
  switch (kind) {
    case SelectorKind::kAlgorithm1:
      return "algorithm1";
    case SelectorKind::kGreedyValue:
      return "greedy-value";
    case SelectorKind::kLocalSearch:
      return "local-search";
  }
  FAIRREC_CHECK(false);
  return "";
}

Result<SelectorKind> ParseSelectorKind(std::string_view name) {
  if (name == "algorithm1") return SelectorKind::kAlgorithm1;
  if (name == "greedy-value") return SelectorKind::kGreedyValue;
  if (name == "local-search") return SelectorKind::kLocalSearch;
  return Status::InvalidArgument("unknown selector: " + std::string(name));
}

RecommendationService::RecommendationService(
    const SnapshotSource* source, RecommendationServiceOptions options)
    : source_(source),
      options_(options),
      algorithm1_(options.algorithm1),
      local_search_(options.local_search) {
  FAIRREC_CHECK(source != nullptr);
}

const ItemSetSelector& RecommendationService::selector(SelectorKind kind) const {
  switch (kind) {
    case SelectorKind::kAlgorithm1:
      return algorithm1_;
    case SelectorKind::kGreedyValue:
      return greedy_;
    case SelectorKind::kLocalSearch:
      return local_search_;
  }
  FAIRREC_CHECK(false);
  return algorithm1_;
}

Result<UserRecResponse> RecommendationService::RecommendUser(
    const UserRecRequest& request) const {
  Scratch scratch;
  return RecommendUser(request, scratch);
}

Result<UserRecResponse> RecommendationService::RecommendUser(
    const UserRecRequest& request, Scratch& scratch) const {
  return RecommendUserOn(source_->Acquire(), request, scratch);
}

Result<UserRecResponse> RecommendationService::RecommendUserOn(
    const ServingSnapshot& snapshot, const UserRecRequest& request,
    Scratch& scratch) const {
  FAIRREC_CHECK(snapshot.valid());
  if (request.top_k < 0) {
    return Status::InvalidArgument("top_k override must be >= 0, got " +
                                   std::to_string(request.top_k));
  }
  // NotFound, not InvalidArgument: the request is well-formed, the corpus
  // has no such user. (The Recommender beneath reports its own population
  // check as InvalidArgument; the service pre-empts it to keep the code
  // distinct from malformed-request errors.)
  if (!snapshot.matrix->IsValidUser(request.user)) {
    return Status::NotFound("unknown user id: " + std::to_string(request.user));
  }
  RecommenderOptions rec_options = options_.recommender;
  if (request.top_k > 0) rec_options.top_k = request.top_k;
  const Recommender recommender = snapshot.MakeRecommender(rec_options);

  UserRecResponse response;
  response.generation = snapshot.generation;
  FAIRREC_ASSIGN_OR_RETURN(response.items,
                           recommender.RecommendForUser(request.user, scratch));
  return response;
}

Result<GroupRecResponse> RecommendationService::RecommendGroup(
    const GroupRecRequest& request) const {
  Scratch scratch;
  return RecommendGroup(request, scratch);
}

Result<GroupRecResponse> RecommendationService::RecommendGroup(
    const GroupRecRequest& request, Scratch& scratch) const {
  return RecommendGroupOn(source_->Acquire(), request, scratch);
}

Result<GroupRecResponse> RecommendationService::RecommendGroupOn(
    const ServingSnapshot& snapshot, const GroupRecRequest& request,
    Scratch& scratch) const {
  FAIRREC_CHECK(snapshot.valid());
  if (request.members.empty()) {
    return Status::InvalidArgument("group must not be empty");
  }
  if (request.z <= 0) {
    return Status::InvalidArgument("z must be positive, got " +
                                   std::to_string(request.z));
  }
  std::unordered_set<UserId> seen;
  for (const UserId u : request.members) {
    if (!snapshot.matrix->IsValidUser(u)) {
      return Status::NotFound("unknown user id in group: " + std::to_string(u));
    }
    if (!seen.insert(u).second) {
      return Status::InvalidArgument("duplicate user id in group: " +
                                     std::to_string(u));
    }
  }

  const Recommender recommender =
      snapshot.MakeRecommender(options_.recommender);
  FAIRREC_ASSIGN_OR_RETURN(
      const std::vector<MemberRelevance> members,
      recommender.RelevanceForGroup(request.members, scratch));
  FAIRREC_ASSIGN_OR_RETURN(const GroupContext context,
                           GroupContext::Build(members, options_.context));
  // OutOfRange, not InvalidArgument: z was a legal request, this corpus
  // just cannot seat it — the group has fewer candidate items (items no
  // member rated, with a defined group relevance) than z. Retry with a
  // smaller z.
  if (request.z > context.num_candidates()) {
    return Status::OutOfRange(
        "z = " + std::to_string(request.z) + " exceeds the group's " +
        std::to_string(context.num_candidates()) + " candidate items");
  }
  FAIRREC_ASSIGN_OR_RETURN(const Selection selection,
                           selector(request.selector).Select(context, request.z));

  GroupRecResponse response;
  response.generation = snapshot.generation;
  response.score = selection.score;

  std::vector<int32_t> selected_indexes;
  selected_indexes.reserve(selection.items.size());
  response.items.reserve(selection.items.size());
  for (const ItemId item : selection.items) {
    const int32_t index = context.CandidateIndexOf(item);
    FAIRREC_CHECK(index >= 0);
    selected_indexes.push_back(index);
    response.items.push_back({item, context.candidate(index).group_relevance});
  }

  response.members.reserve(request.members.size());
  for (int32_t m = 0; m < context.group_size(); ++m) {
    MemberSatisfaction sat;
    sat.user = context.members()[static_cast<size_t>(m)];
    sat.satisfied = IsFairToMember(context, m, selected_indexes);
    for (const int32_t index : selected_indexes) {
      sat.relevance_sum +=
          context.candidate(index).member_relevance[static_cast<size_t>(m)];
    }
    response.members.push_back(sat);
  }
  return response;
}

}  // namespace serve
}  // namespace fairrec
