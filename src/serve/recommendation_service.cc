#include "serve/recommendation_service.h"

#include <string>
#include <unordered_set>
#include <utility>

#include "common/logging.h"
#include "core/selector_registry.h"

namespace fairrec {
namespace serve {
namespace {

/// The option-bag spec carrying the service's typed options into the registry
/// factory for `name`; empty (factory defaults) for the rest of the zoo.
std::string ConfiguredSpec(const std::string& name,
                           const RecommendationServiceOptions& options) {
  const auto flag = [](bool b) { return b ? std::string("true") : std::string("false"); };
  if (name == "algorithm1") {
    return "pick_from_a_ux=" + flag(options.algorithm1.pick_from_a_ux) +
           ",fill_shortfall=" + flag(options.algorithm1.fill_shortfall);
  }
  if (name == "local-search") {
    return "seed_with_algorithm1=" + flag(options.local_search.seed_with_algorithm1) +
           ",max_swaps=" + std::to_string(options.local_search.max_swaps) +
           ",pick_from_a_ux=" + flag(options.local_search.heuristic.pick_from_a_ux) +
           ",fill_shortfall=" + flag(options.local_search.heuristic.fill_shortfall);
  }
  return "";
}

}  // namespace

RecommendationService::RecommendationService(
    const SnapshotSource* source, RecommendationServiceOptions options)
    : source_(source), options_(options) {
  FAIRREC_CHECK(source != nullptr);
  const SelectorRegistry& registry = SelectorRegistry::Global();
  for (const SelectorInfo& info : registry.List()) {
    Result<SelectorOptionBag> bag =
        SelectorOptionBag::Parse(ConfiguredSpec(info.name, options_));
    FAIRREC_CHECK(bag.ok());
    Result<std::unique_ptr<ItemSetSelector>> created =
        registry.Create(info.name, *bag);
    FAIRREC_CHECK(created.ok());
    owned_selectors_.push_back(std::move(created).value());
    const ItemSetSelector* instance = owned_selectors_.back().get();
    selectors_.emplace(info.name, instance);
    for (const std::string& alias : info.aliases) {
      selectors_.emplace(alias, instance);
    }
  }
}

Result<const ItemSetSelector*> RecommendationService::selector(
    std::string_view name) const {
  const auto it = selectors_.find(name);
  if (it == selectors_.end()) {
    return Status::InvalidArgument("unknown selector: " + std::string(name));
  }
  return it->second;
}

std::vector<std::string> RecommendationService::selector_names() const {
  std::vector<std::string> names;
  for (const auto& [name, instance] : selectors_) {
    if (name == instance->name()) names.push_back(name);
  }
  return names;
}

Result<UserRecResponse> RecommendationService::RecommendUser(
    const UserRecRequest& request) const {
  Scratch scratch;
  return RecommendUser(request, scratch);
}

Result<UserRecResponse> RecommendationService::RecommendUser(
    const UserRecRequest& request, Scratch& scratch) const {
  return RecommendUserOn(source_->Acquire(), request, scratch);
}

Result<UserRecResponse> RecommendationService::RecommendUserOn(
    const ServingSnapshot& snapshot, const UserRecRequest& request,
    Scratch& scratch) const {
  FAIRREC_CHECK(snapshot.valid());
  if (request.top_k < 0) {
    return Status::InvalidArgument("top_k override must be >= 0, got " +
                                   std::to_string(request.top_k));
  }
  // NotFound, not InvalidArgument: the request is well-formed, the corpus
  // has no such user. (The Recommender beneath reports its own population
  // check as InvalidArgument; the service pre-empts it to keep the code
  // distinct from malformed-request errors.)
  if (!snapshot.matrix->IsValidUser(request.user)) {
    return Status::NotFound("unknown user id: " + std::to_string(request.user));
  }
  RecommenderOptions rec_options = options_.recommender;
  if (request.top_k > 0) rec_options.top_k = request.top_k;
  const Recommender recommender = snapshot.MakeRecommender(rec_options);

  UserRecResponse response;
  response.generation = snapshot.generation;
  FAIRREC_ASSIGN_OR_RETURN(response.items,
                           recommender.RecommendForUser(request.user, scratch));
  return response;
}

Result<GroupRecResponse> RecommendationService::RecommendGroup(
    const GroupRecRequest& request) const {
  Scratch scratch;
  return RecommendGroup(request, scratch);
}

Result<GroupRecResponse> RecommendationService::RecommendGroup(
    const GroupRecRequest& request, Scratch& scratch) const {
  return RecommendGroupOn(source_->Acquire(), request, scratch);
}

Result<GroupRecResponse> RecommendationService::RecommendGroupOn(
    const ServingSnapshot& snapshot, const GroupRecRequest& request,
    Scratch& scratch) const {
  FAIRREC_CHECK(snapshot.valid());
  if (request.members.empty()) {
    return Status::InvalidArgument("group must not be empty");
  }
  if (request.z <= 0) {
    return Status::InvalidArgument("z must be positive, got " +
                                   std::to_string(request.z));
  }
  FAIRREC_ASSIGN_OR_RETURN(const ItemSetSelector* selector_impl,
                           selector(request.selector));
  std::unordered_set<UserId> seen;
  for (const UserId u : request.members) {
    if (!snapshot.matrix->IsValidUser(u)) {
      return Status::NotFound("unknown user id in group: " + std::to_string(u));
    }
    if (!seen.insert(u).second) {
      return Status::InvalidArgument("duplicate user id in group: " +
                                     std::to_string(u));
    }
  }

  const Recommender recommender =
      snapshot.MakeRecommender(options_.recommender);
  FAIRREC_ASSIGN_OR_RETURN(
      const std::vector<MemberRelevance> members,
      recommender.RelevanceForGroup(request.members, scratch));
  FAIRREC_ASSIGN_OR_RETURN(const GroupContext context,
                           GroupContext::Build(members, options_.context));
  // OutOfRange, not InvalidArgument: z was a legal request, this corpus
  // just cannot seat it — the group has fewer candidate items (items no
  // member rated, with a defined group relevance) than z. Retry with a
  // smaller z.
  if (request.z > context.num_candidates()) {
    return Status::OutOfRange(
        "z = " + std::to_string(request.z) + " exceeds the group's " +
        std::to_string(context.num_candidates()) + " candidate items");
  }
  FAIRREC_ASSIGN_OR_RETURN(const Selection selection,
                           selector_impl->Select(context, request.z));

  GroupRecResponse response;
  response.generation = snapshot.generation;
  response.selector = selector_impl->name();
  response.score = selection.score;

  response.items.reserve(selection.items.size());
  for (const ItemId item : selection.items) {
    const int32_t index = context.CandidateIndexOf(item);
    FAIRREC_CHECK(index >= 0);
    response.items.push_back({item, context.candidate(index).group_relevance});
  }

  FAIRREC_CHECK(static_cast<int32_t>(selection.members.size()) ==
                context.group_size());
  response.members.reserve(request.members.size());
  for (int32_t m = 0; m < context.group_size(); ++m) {
    const MemberBreakdown& row = selection.members[static_cast<size_t>(m)];
    MemberSatisfaction sat;
    sat.user = context.members()[static_cast<size_t>(m)];
    sat.satisfied = row.satisfied;
    sat.relevance_sum = row.relevance_sum;
    sat.satisfaction = row.satisfaction;
    response.members.push_back(sat);
  }
  return response;
}

}  // namespace serve
}  // namespace fairrec
