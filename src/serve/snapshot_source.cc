#include "serve/snapshot_source.h"

#include "common/logging.h"
#include "sim/pairwise_engine.h"

namespace fairrec {
namespace serve {

StaticSnapshotSource::StaticSnapshotSource(
    std::shared_ptr<const RatingMatrix> matrix,
    std::shared_ptr<const PeerProvider> peers) {
  FAIRREC_CHECK(matrix != nullptr);
  FAIRREC_CHECK(peers != nullptr);
  FAIRREC_CHECK(peers->num_users() == matrix->num_users());
  snapshot_.generation = 1;
  snapshot_.matrix = std::move(matrix);
  snapshot_.peers = std::move(peers);
}

Result<StaticSnapshotSource> StaticSnapshotSource::FromMatrix(
    RatingMatrix matrix, RatingSimilarityOptions similarity,
    PeerIndexOptions peers) {
  auto owned = std::make_shared<const RatingMatrix>(std::move(matrix));
  const PairwiseSimilarityEngine engine(owned.get(), similarity);
  FAIRREC_ASSIGN_OR_RETURN(PeerIndex index, engine.BuildPeerIndex(peers));
  return StaticSnapshotSource(
      std::move(owned), std::make_shared<const PeerIndex>(std::move(index)));
}

LivePeerGraph::LivePeerGraph(IncrementalPeerGraph graph)
    : graph_(std::move(graph)) {
  current_.generation = 1;
  current_.matrix = graph_.matrix_snapshot();
  current_.peers = graph_.index();
}

ServingSnapshot LivePeerGraph::Acquire() const {
  std::lock_guard<std::mutex> lock(publish_mu_);
  return current_;
}

Result<DeltaApplyStats> LivePeerGraph::ApplyDelta(const RatingDelta& delta) {
  // One writer at a time through the graph; readers are not blocked by this
  // mutex — they only contend on publish_mu_, held below for two pointer
  // copies.
  std::lock_guard<std::mutex> update_lock(update_mu_);
  FAIRREC_ASSIGN_OR_RETURN(DeltaApplyStats stats, graph_.ApplyDelta(delta));

  ServingSnapshot next;
  next.matrix = graph_.matrix_snapshot();
  next.peers = graph_.index();
  {
    std::lock_guard<std::mutex> publish_lock(publish_mu_);
    next.generation = current_.generation + 1;
    current_ = std::move(next);
  }
  return stats;
}

uint64_t LivePeerGraph::generation() const {
  std::lock_guard<std::mutex> lock(publish_mu_);
  return current_.generation;
}

}  // namespace serve
}  // namespace fairrec
