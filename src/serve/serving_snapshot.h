#ifndef FAIRREC_SERVE_SERVING_SNAPSHOT_H_
#define FAIRREC_SERVE_SERVING_SNAPSHOT_H_

#include <cstdint>
#include <memory>

#include "cf/recommender.h"
#include "core/group_recommender.h"
#include "ratings/rating_matrix.h"
#include "sim/peer_provider.h"

namespace fairrec {
namespace serve {

/// One immutable generation of the serving artifacts: the rating corpus and
/// the Def. 1 peer graph that was built from it, tagged with the generation
/// id that published them together.
///
/// This is the unit of consistency of the serving layer. A request acquires
/// one snapshot up front and runs every step of its query against it, so a
/// multi-step flow (peers -> Eq. 1 relevance -> Def. 2 aggregation ->
/// selector) can never straddle an index swap: even if LivePeerGraph
/// publishes ten new generations mid-query, the holder's matrix and peers
/// stay the mutually consistent pair they were published as. Both payloads
/// are shared_ptr<const ...>, so a snapshot is cheap to copy, trivially
/// destructible in any order, and safe to read from any number of threads.
struct ServingSnapshot {
  /// Publication counter of the source. Generations start at 1 and increase
  /// by one per applied delta batch; 0 marks a default-constructed (invalid)
  /// snapshot.
  uint64_t generation = 0;
  std::shared_ptr<const RatingMatrix> matrix;
  std::shared_ptr<const PeerProvider> peers;

  bool valid() const { return generation != 0 && matrix != nullptr && peers != nullptr; }

  /// A single-user recommender bound to this generation. The returned object
  /// holds raw pointers into the snapshot's artifacts: keep the snapshot
  /// alive for as long as the recommender.
  Recommender MakeRecommender(RecommenderOptions options = {}) const {
    return Recommender(matrix.get(), peers.get(), options);
  }

  /// A group-recommendation facade bound to this generation. Same lifetime
  /// rule: the snapshot must outlive the returned object.
  GroupRecommender MakeGroupRecommender(RecommenderOptions rec_options = {},
                                        GroupContextOptions options = {}) const {
    return GroupRecommender(matrix.get(), peers.get(), rec_options, options);
  }
};

}  // namespace serve
}  // namespace fairrec

#endif  // FAIRREC_SERVE_SERVING_SNAPSHOT_H_
