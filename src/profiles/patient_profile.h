#ifndef FAIRREC_PROFILES_PATIENT_PROFILE_H_
#define FAIRREC_PROFILES_PATIENT_PROFILE_H_

#include <string>
#include <vector>

#include "ontology/ontology.h"
#include "ratings/types.h"

namespace fairrec {

enum class Gender { kUnknown = 0, kFemale, kMale };

std::string_view GenderToString(Gender gender);

/// A patient's PHR profile, mirroring the fields of the paper's Table I:
/// problems (SNOMED-CT terms), medication, gender, procedure, age. Problems
/// are ontology concept ids so the semantic similarity (§V-C) can walk the
/// hierarchy; all fields contribute to the profile-as-document rendering
/// consumed by the TF-IDF similarity (§V-B).
struct PatientProfile {
  UserId user = kInvalidUserId;
  /// Health problems as ontology concepts ("Problem" rows of Table I).
  std::vector<ConceptId> problems;
  /// Free-text medication lines, e.g. "Ramipril 10 MG Oral Capsule".
  std::vector<std::string> medications;
  /// Free-text procedure lines (may be empty, as in Table I).
  std::vector<std::string> procedures;
  Gender gender = Gender::kUnknown;
  int32_t age = 0;

  /// Renders the profile as a single text document (§V-B: "we consider all
  /// the information contained in a profile as a single document"). Problem
  /// concept ids are expanded to their ontology names.
  std::string RenderAsDocument(const Ontology& ontology) const;
};

}  // namespace fairrec

#endif  // FAIRREC_PROFILES_PATIENT_PROFILE_H_
