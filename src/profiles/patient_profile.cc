#include "profiles/patient_profile.h"

namespace fairrec {

std::string_view GenderToString(Gender gender) {
  switch (gender) {
    case Gender::kUnknown:
      return "unknown";
    case Gender::kFemale:
      return "female";
    case Gender::kMale:
      return "male";
  }
  return "unknown";
}

std::string PatientProfile::RenderAsDocument(const Ontology& ontology) const {
  std::string doc;
  auto append_line = [&doc](std::string_view text) {
    if (text.empty()) return;
    if (!doc.empty()) doc += ' ';
    doc += text;
  };
  for (const ConceptId problem : problems) {
    if (ontology.IsValid(problem)) append_line(ontology.NameOf(problem));
  }
  for (const std::string& medication : medications) append_line(medication);
  for (const std::string& procedure : procedures) append_line(procedure);
  append_line(GenderToString(gender));
  if (age > 0) append_line("age " + std::to_string(age));
  return doc;
}

}  // namespace fairrec
