#ifndef FAIRREC_PROFILES_PROFILE_STORE_H_
#define FAIRREC_PROFILES_PROFILE_STORE_H_

#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "profiles/patient_profile.h"
#include "ratings/types.h"

namespace fairrec {

/// Dense store of patient profiles indexed by UserId — the library's stand-in
/// for the iPHR record system of the paper's architecture (Fig. 1).
class ProfileStore {
 public:
  ProfileStore() = default;

  /// Inserts a profile. The profile's user id must be non-negative and not
  /// already present. Gaps are allowed (absent users have empty profiles and
  /// Contains() == false).
  Status Add(PatientProfile profile);

  bool Contains(UserId u) const;

  /// Precondition: Contains(u).
  const PatientProfile& Get(UserId u) const;

  /// Number of stored profiles.
  int32_t size() const { return count_; }

  /// One past the largest stored user id (0 when empty).
  int32_t capacity_users() const { return static_cast<int32_t>(profiles_.size()); }

  /// User ids of all stored profiles, ascending.
  std::vector<UserId> Users() const;

  /// Renders every stored profile (ascending user id order) as a document;
  /// feed to TfIdfVectorizer::Fit. Returns one document per *stored* user.
  std::vector<std::string> RenderAllDocuments(const Ontology& ontology) const;

 private:
  std::vector<PatientProfile> profiles_;  // indexed by user id
  std::vector<bool> present_;
  int32_t count_ = 0;
};

}  // namespace fairrec

#endif  // FAIRREC_PROFILES_PROFILE_STORE_H_
