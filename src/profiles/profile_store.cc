#include "profiles/profile_store.h"

#include <string>

#include "common/logging.h"

namespace fairrec {

Status ProfileStore::Add(PatientProfile profile) {
  if (profile.user < 0) {
    return Status::InvalidArgument("profile user id must be non-negative");
  }
  const auto index = static_cast<size_t>(profile.user);
  if (index >= profiles_.size()) {
    profiles_.resize(index + 1);
    present_.resize(index + 1, false);
  }
  if (present_[index]) {
    return Status::AlreadyExists("profile already stored for user " +
                                 std::to_string(profile.user));
  }
  profiles_[index] = std::move(profile);
  present_[index] = true;
  ++count_;
  return Status::OK();
}

bool ProfileStore::Contains(UserId u) const {
  return u >= 0 && static_cast<size_t>(u) < present_.size() &&
         present_[static_cast<size_t>(u)];
}

const PatientProfile& ProfileStore::Get(UserId u) const {
  FAIRREC_CHECK(Contains(u));
  return profiles_[static_cast<size_t>(u)];
}

std::vector<UserId> ProfileStore::Users() const {
  std::vector<UserId> out;
  out.reserve(static_cast<size_t>(count_));
  for (size_t i = 0; i < present_.size(); ++i) {
    if (present_[i]) out.push_back(static_cast<UserId>(i));
  }
  return out;
}

std::vector<std::string> ProfileStore::RenderAllDocuments(
    const Ontology& ontology) const {
  std::vector<std::string> docs;
  docs.reserve(static_cast<size_t>(count_));
  for (size_t i = 0; i < present_.size(); ++i) {
    if (present_[i]) docs.push_back(profiles_[i].RenderAsDocument(ontology));
  }
  return docs;
}

}  // namespace fairrec
