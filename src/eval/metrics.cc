#include "eval/metrics.h"

#include <algorithm>
#include <cmath>

namespace fairrec {

double MemberSatisfaction(const GroupContext& context, int32_t member_index,
                          const std::vector<int32_t>& candidate_indexes) {
  const auto m = static_cast<size_t>(member_index);
  double best_possible = 0.0;
  bool any_defined = false;
  for (const GroupCandidate& c : context.candidates()) {
    const double score = c.member_relevance[m];
    if (std::isnan(score)) continue;
    best_possible = any_defined ? std::max(best_possible, score) : score;
    any_defined = true;
  }
  if (!any_defined || best_possible <= 0.0) return -1.0;

  double best_in_d = 0.0;
  for (const int32_t c : candidate_indexes) {
    const double score = context.candidate(c).member_relevance[m];
    if (std::isnan(score)) continue;
    best_in_d = std::max(best_in_d, score);
  }
  return best_in_d / best_possible;
}

SatisfactionStats GroupSatisfaction(const GroupContext& context,
                                    const std::vector<int32_t>& candidate_indexes) {
  SatisfactionStats stats;
  double total = 0.0;
  for (int32_t m = 0; m < context.group_size(); ++m) {
    const double s = MemberSatisfaction(context, m, candidate_indexes);
    if (s < 0.0) continue;
    if (stats.members_counted == 0) {
      stats.min = s;
      stats.max = s;
    } else {
      stats.min = std::min(stats.min, s);
      stats.max = std::max(stats.max, s);
    }
    total += s;
    ++stats.members_counted;
  }
  if (stats.members_counted > 0) stats.mean = total / stats.members_counted;
  return stats;
}

SatisfactionStats GroupSatisfactionByItems(const GroupContext& context,
                                           const std::vector<ItemId>& items) {
  std::vector<int32_t> indexes;
  indexes.reserve(items.size());
  for (const ItemId item : items) {
    const int32_t index = context.CandidateIndexOf(item);
    if (index >= 0) indexes.push_back(index);
  }
  return GroupSatisfaction(context, indexes);
}

}  // namespace fairrec
