#ifndef FAIRREC_EVAL_METRICS_H_
#define FAIRREC_EVAL_METRICS_H_

#include <vector>

#include "core/group_context.h"
#include "ratings/types.h"

namespace fairrec {

/// Per-group satisfaction statistics for a recommendation set D, used by the
/// EXT-B aggregation ablation. A member's satisfaction is the best relevance
/// D offers them, normalized by the best any candidate could offer them
/// (1.0 = D contains their single favourite candidate; members with no
/// defined relevance anywhere are skipped).
struct SatisfactionStats {
  double min = 0.0;   // the least-misery reading
  double mean = 0.0;  // the majority reading
  double max = 0.0;
  int32_t members_counted = 0;
};

/// Satisfaction of one member for the item set D (candidate-id based).
/// Returns -1.0 when the member has no defined relevance at all.
double MemberSatisfaction(const GroupContext& context, int32_t member_index,
                          const std::vector<int32_t>& candidate_indexes);

/// Satisfaction stats across the whole group.
SatisfactionStats GroupSatisfaction(const GroupContext& context,
                                    const std::vector<int32_t>& candidate_indexes);

/// Convenience overload resolving item ids into candidate indexes (ids not
/// in the candidate universe are ignored).
SatisfactionStats GroupSatisfactionByItems(const GroupContext& context,
                                           const std::vector<ItemId>& items);

}  // namespace fairrec

#endif  // FAIRREC_EVAL_METRICS_H_
