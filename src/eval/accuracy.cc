#include "eval/accuracy.h"

#include <cmath>

namespace fairrec {

AccuracyStats EvaluatePredictor(const std::vector<RatingTriple>& test,
                                const RatingPredictor& predict) {
  AccuracyStats stats;
  if (test.empty()) return stats;
  double squared = 0.0;
  double absolute = 0.0;
  for (const RatingTriple& t : test) {
    const std::optional<double> prediction = predict(t.user, t.item);
    if (!prediction.has_value()) continue;
    const double error = *prediction - t.value;
    squared += error * error;
    absolute += std::abs(error);
    ++stats.predicted;
  }
  if (stats.predicted > 0) {
    stats.rmse = std::sqrt(squared / static_cast<double>(stats.predicted));
    stats.mae = absolute / static_cast<double>(stats.predicted);
  }
  stats.coverage =
      static_cast<double>(stats.predicted) / static_cast<double>(test.size());
  return stats;
}

}  // namespace fairrec
