#ifndef FAIRREC_EVAL_TIMING_H_
#define FAIRREC_EVAL_TIMING_H_

#include <functional>

namespace fairrec {

/// Wall-clock statistics over repeated runs of a workload.
struct TimingResult {
  double min_ms = 0.0;
  double mean_ms = 0.0;
  double max_ms = 0.0;
  int repetitions = 0;
};

/// Runs `fn` `repetitions` times (>= 1) and reports wall-clock statistics.
/// The paper's Table II reports single-run times; the harness defaults to
/// best-of-3 for the fast heuristic cells and 1 for brute-force cells.
TimingResult MeasureMs(const std::function<void()>& fn, int repetitions = 3);

}  // namespace fairrec

#endif  // FAIRREC_EVAL_TIMING_H_
