#ifndef FAIRREC_EVAL_ACCURACY_H_
#define FAIRREC_EVAL_ACCURACY_H_

#include <functional>
#include <optional>
#include <vector>

#include "ratings/types.h"

namespace fairrec {

/// Point-prediction accuracy over a held-out rating set.
struct AccuracyStats {
  double rmse = 0.0;
  double mae = 0.0;
  /// Held-out points the predictor could score at all.
  int64_t predicted = 0;
  /// Fraction of held-out points with a defined prediction — CF estimators
  /// (Eq. 1, content-based) abstain where they lack evidence, MF never does.
  double coverage = 0.0;
};

/// A predictor: nullopt means "no estimate for this cell".
using RatingPredictor =
    std::function<std::optional<double>(UserId user, ItemId item)>;

/// Scores `predict` on every held-out triple. Abstentions reduce coverage
/// but do not count toward the error sums.
AccuracyStats EvaluatePredictor(const std::vector<RatingTriple>& test,
                                const RatingPredictor& predict);

}  // namespace fairrec

#endif  // FAIRREC_EVAL_ACCURACY_H_
