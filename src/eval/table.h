#ifndef FAIRREC_EVAL_TABLE_H_
#define FAIRREC_EVAL_TABLE_H_

#include <string>
#include <vector>

namespace fairrec {

/// Minimal aligned ASCII table used by the benchmark harness to print
/// paper-style tables (Table II and the ablation series).
class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> headers);

  /// Rows shorter than the header are padded with empty cells; longer rows
  /// are truncated.
  void AddRow(std::vector<std::string> cells);

  /// Renders with column alignment, a header rule, and `|` separators.
  std::string ToString() const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace fairrec

#endif  // FAIRREC_EVAL_TABLE_H_
