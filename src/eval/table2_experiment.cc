#include "eval/table2_experiment.h"

#include <memory>
#include <string>
#include <utility>

#include "cf/recommender.h"
#include "common/string_util.h"
#include "core/brute_force.h"
#include "core/group_recommender.h"
#include "core/selector_registry.h"
#include "eval/fairness_metrics.h"
#include "eval/table.h"
#include "eval/timing.h"
#include "sim/pairwise_engine.h"
#include "sim/peer_index.h"
#include "sim/rating_similarity.h"

namespace fairrec {

Result<Table2Result> RunTable2Experiment(const Table2Config& config) {
  FAIRREC_ASSIGN_OR_RETURN(const Scenario scenario,
                           BuildScenario(config.scenario));
  const Group group = scenario.MakeGroup(config.group_shape, config.group_size,
                                         config.scenario.seed + 99);
  if (static_cast<int32_t>(group.size()) != config.group_size) {
    return Status::FailedPrecondition("could not form a group of size " +
                                      std::to_string(config.group_size));
  }

  // The experiment only ever consumes thresholded peers (Def. 1), so they
  // come from the engine-built sparse PeerIndex instead of an O(U)
  // similarity scan per member — the serving-path stack, with no dense
  // similarity structure anywhere in the eval.
  RatingSimilarityOptions sim_options;
  sim_options.shift_to_unit_interval = true;
  const PairwiseSimilarityEngine engine(&scenario.ratings, sim_options);
  PeerIndexOptions peer_options;
  peer_options.delta = config.delta;
  FAIRREC_ASSIGN_OR_RETURN(const PeerIndex peers,
                           engine.BuildPeerIndex(peer_options));

  RecommenderOptions rec_options;
  rec_options.peers.delta = config.delta;
  rec_options.top_k = config.top_k;
  const Recommender recommender(&scenario.ratings, &peers, rec_options);

  GroupContextOptions context_options;
  context_options.aggregation = AggregationKind::kAverage;
  context_options.top_k = config.top_k;
  const GroupRecommender group_recommender(&recommender, context_options);
  FAIRREC_ASSIGN_OR_RETURN(const GroupContext full_context,
                           group_recommender.BuildContext(group));

  Table2Result result;
  result.candidate_pool_size = full_context.num_candidates();

  FAIRREC_ASSIGN_OR_RETURN(
      const std::unique_ptr<ItemSetSelector> heuristic,
      SelectorRegistry::Global().CreateFromSpec(config.heuristic_selector));
  const BruteForceSelector brute_force;

  for (const int32_t m : config.m_values) {
    if (m > full_context.num_candidates()) {
      return Status::FailedPrecondition(
          "candidate pool too small: need m=" + std::to_string(m) + ", have " +
          std::to_string(full_context.num_candidates()));
    }
    const GroupContext context = full_context.RestrictToTopM(m);
    for (const int32_t z : config.z_values) {
      if (z >= m) continue;  // the paper reports only z < m cells
      Table2Row row;
      row.m = m;
      row.z = z;
      row.combinations = BruteForceSelector::CountCombinations(m, z);

      Selection heuristic_selection;
      const TimingResult heuristic_time = MeasureMs(
          [&] {
            heuristic_selection =
                heuristic->Select(context, z).ValueOrDie();
          },
          config.heuristic_repetitions);
      row.heuristic_ms = heuristic_time.min_ms;
      row.heuristic_value = heuristic_selection.score.value;
      row.heuristic_fairness = heuristic_selection.score.fairness;

      const FairnessReport report =
          ComputeFairnessReport(context, heuristic_selection);
      row.heuristic_min_max_ratio = report.min_max_ratio;
      row.heuristic_satisfaction_spread = report.satisfaction_spread;
      row.heuristic_envy_mean = report.envy_mean;
      row.heuristic_package_feasibility = report.package_feasibility;

      const bool run_bf =
          config.run_brute_force &&
          (config.max_combinations == 0 ||
           row.combinations <= config.max_combinations);
      if (run_bf) {
        Selection brute_selection;
        const TimingResult brute_time = MeasureMs(
            [&] { brute_selection = brute_force.Select(context, z).ValueOrDie(); },
            1);
        row.brute_force_ms = brute_time.min_ms;
        row.brute_force_value = brute_selection.score.value;
        row.brute_force_fairness = brute_selection.score.fairness;
      }
      result.rows.push_back(row);
    }
  }
  return result;
}

std::string FormatTable2(const Table2Result& result) {
  AsciiTable table({"m", "z", "C(m,z)", "Brute-force (ms)", "Heuristic (ms)",
                    "BF fairness", "H fairness", "BF value", "H value",
                    "H min/max", "H envy", "Paper BF (ms)", "Paper H (ms)"});
  for (const Table2Row& row : result.rows) {
    const double paper_bf = PaperTable2BruteForceMs(row.m, row.z);
    const double paper_h = PaperTable2HeuristicMs(row.m, row.z);
    table.AddRow(
        {std::to_string(row.m), std::to_string(row.z),
         FormatWithThousands(static_cast<int64_t>(row.combinations)),
         row.brute_force_ms < 0 ? "skipped" : FormatDouble(row.brute_force_ms, 2),
         FormatDouble(row.heuristic_ms, 3),
         row.brute_force_fairness < 0 ? "-"
                                      : FormatDouble(row.brute_force_fairness, 2),
         FormatDouble(row.heuristic_fairness, 2),
         row.brute_force_ms < 0 ? "-" : FormatDouble(row.brute_force_value, 3),
         FormatDouble(row.heuristic_value, 3),
         FormatDouble(row.heuristic_min_max_ratio, 2),
         FormatDouble(row.heuristic_envy_mean, 3),
         paper_bf < 0 ? "-" : FormatWithThousands(static_cast<int64_t>(paper_bf)),
         paper_h < 0 ? "-" : FormatDouble(paper_h, 0)});
  }
  return table.ToString();
}

namespace {
struct PaperCell {
  int32_t m;
  int32_t z;
  double brute_force_ms;
  double heuristic_ms;
};
// Verbatim from Table II of the paper.
constexpr PaperCell kPaperTable2[] = {
    {10, 4, 37, 10},           {10, 8, 41, 13},
    {20, 4, 712, 19},          {20, 8, 72254, 23},
    {20, 12, 171414, 34},      {20, 16, 13340, 46},
    {30, 4, 3981, 23},         {30, 8, 3425266, 33},
    {30, 12, 116735821, 45},   {30, 16, 322371457, 65},
    {30, 20, 124219934, 83},
};
}  // namespace

double PaperTable2BruteForceMs(int32_t m, int32_t z) {
  for (const PaperCell& cell : kPaperTable2) {
    if (cell.m == m && cell.z == z) return cell.brute_force_ms;
  }
  return -1.0;
}

double PaperTable2HeuristicMs(int32_t m, int32_t z) {
  for (const PaperCell& cell : kPaperTable2) {
    if (cell.m == m && cell.z == z) return cell.heuristic_ms;
  }
  return -1.0;
}

}  // namespace fairrec
