#include "eval/timing.h"

#include <algorithm>

#include "common/stopwatch.h"

namespace fairrec {

TimingResult MeasureMs(const std::function<void()>& fn, int repetitions) {
  repetitions = std::max(1, repetitions);
  TimingResult out;
  out.repetitions = repetitions;
  out.min_ms = 0.0;
  double total = 0.0;
  for (int rep = 0; rep < repetitions; ++rep) {
    Stopwatch watch;
    fn();
    const double ms = watch.ElapsedMillis();
    if (rep == 0 || ms < out.min_ms) out.min_ms = ms;
    out.max_ms = std::max(out.max_ms, ms);
    total += ms;
  }
  out.mean_ms = total / repetitions;
  return out;
}

}  // namespace fairrec
