#ifndef FAIRREC_EVAL_TABLE2_EXPERIMENT_H_
#define FAIRREC_EVAL_TABLE2_EXPERIMENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/group_context.h"
#include "data/scenario.h"

namespace fairrec {

/// One (m, z) cell of Table II.
struct Table2Row {
  int32_t m = 0;
  int32_t z = 0;
  uint64_t combinations = 0;  // C(m, z) enumerated by the brute force
  double brute_force_ms = -1.0;  // -1 when the brute force was skipped
  double heuristic_ms = 0.0;
  double brute_force_value = 0.0;
  double heuristic_value = 0.0;
  double brute_force_fairness = -1.0;
  double heuristic_fairness = 0.0;
  /// Per-member fairness of the heuristic's selection (eval/fairness_metrics.h).
  double heuristic_min_max_ratio = 1.0;
  double heuristic_satisfaction_spread = 0.0;
  double heuristic_envy_mean = 0.0;
  double heuristic_package_feasibility = 0.0;
};

/// Configuration of the Table II reproduction ("§VI Preliminary Evaluation").
struct Table2Config {
  /// The paper's sweep: m in {10, 20, 30}, z in {4, 8, 12, 16, 20}, cells
  /// restricted to z < m.
  std::vector<int32_t> m_values = {10, 20, 30};
  std::vector<int32_t> z_values = {4, 8, 12, 16, 20};
  /// |G| — the paper does not state it; 4 keeps z >= |G| true for every
  /// reported cell, which is what makes "fairness identical in both cases"
  /// (Prop. 1) observable.
  int32_t group_size = 4;
  /// Who sits in the group (data/scenario.h): cohesive is the paper's
  /// caregiver setting; skewed/coldstart/adversarial stress the fairness
  /// metrics.
  GroupShape group_shape = GroupShape::kCohesive;
  /// SelectorRegistry spec of the heuristic under test ("algorithm1",
  /// "least-misery", "local-search:max_swaps=50", ...). The brute force
  /// column always runs the exact enumerator.
  std::string heuristic_selector = "algorithm1";
  /// The synthetic world the candidates come from.
  ScenarioConfig scenario;
  /// A_u size for the fairness sets.
  int32_t top_k = 10;
  /// Peer threshold on the shifted-Pearson [0,1] scale.
  double delta = 0.55;
  /// Timing repetitions for the (fast) heuristic; the brute force runs once.
  int32_t heuristic_repetitions = 3;
  /// Skip brute-force cells above this combination count (0 = run all).
  uint64_t max_combinations = 0;
  bool run_brute_force = true;
};

/// The experiment result: one row per (m, z) cell plus the context used.
struct Table2Result {
  std::vector<Table2Row> rows;
  int32_t candidate_pool_size = 0;  // available m before restriction
};

/// Builds a scenario, forms a caregiver group, assembles the group candidate
/// context once, then times the heuristic vs the brute force on every (m, z)
/// cell (restricting the context to the top-m candidates, as the paper's "m
/// candidate recommendations to choose from").
Result<Table2Result> RunTable2Experiment(const Table2Config& config);

/// Renders rows in the paper's Table II layout (plus value columns).
std::string FormatTable2(const Table2Result& result);

/// The paper's own Table II measurements (msec), for side-by-side printing.
/// Returns -1 for cells the paper does not report.
double PaperTable2BruteForceMs(int32_t m, int32_t z);
double PaperTable2HeuristicMs(int32_t m, int32_t z);

}  // namespace fairrec

#endif  // FAIRREC_EVAL_TABLE2_EXPERIMENT_H_
