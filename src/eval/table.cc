#include "eval/table.h"

#include <algorithm>

namespace fairrec {

AsciiTable::AsciiTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void AsciiTable::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string AsciiTable::ToString() const {
  std::vector<size_t> widths(headers_.size(), 0);
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : headers_[c];
      line += ' ';
      line += cell;
      line.append(widths[c] - cell.size(), ' ');
      line += " |";
    }
    return line + "\n";
  };
  std::string out = render_row(headers_);
  std::string rule = "|";
  for (size_t c = 0; c < headers_.size(); ++c) {
    rule.append(widths[c] + 2, '-');
    rule += '|';
  }
  out += rule + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

}  // namespace fairrec
