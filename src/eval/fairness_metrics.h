#ifndef FAIRREC_EVAL_FAIRNESS_METRICS_H_
#define FAIRREC_EVAL_FAIRNESS_METRICS_H_

#include <cstdint>
#include <vector>

#include "core/group_context.h"
#include "core/selector.h"
#include "ratings/types.h"

namespace fairrec {

/// Offline fairness metrics of a selection D beyond the paper's single
/// Def. 3 proportion — the group-vs-individual measures the related work
/// maps out (Rampisela et al., "Stairway to Fairness"; Sato, "Enumerating
/// Fair Packages"; Pellegrini et al. on within-group harm). All satisfaction
/// figures use the normalized per-member measure of eval/metrics.h: the best
/// relevance D offers the member divided by the best relevance any candidate
/// could offer them (1.0 = D contains their favourite candidate). Members
/// with no defined relevance anywhere are excluded from every statistic.
struct FairnessReport {
  /// Members with at least one defined relevance (the statistic population).
  int32_t members_counted = 0;
  /// Def. 3 hits: members with at least one A_u item in D.
  int32_t satisfied_members = 0;
  /// satisfied_members / group size — the paper's fairness(G, D).
  double proportion_satisfied = 0.0;

  /// Distribution of normalized per-member satisfaction over D.
  double satisfaction_min = 0.0;
  double satisfaction_max = 0.0;
  double satisfaction_mean = 0.0;
  /// max - min: the individual-fairness spread (0 = perfectly even).
  double satisfaction_spread = 0.0;
  /// min / max satisfaction (Rampisela et al.'s min-max group fairness;
  /// 1.0 when the group is perfectly even or empty, 0.0 when someone gets
  /// nothing while another member is served).
  double min_max_ratio = 1.0;

  /// Pairwise envy over normalized satisfaction: e(u, v) = max(0, s_v - s_u).
  double envy_total = 0.0;  // sum over ordered pairs u != v
  double envy_max = 0.0;    // the worst single member-to-member envy
  double envy_mean = 0.0;   // envy_total / (counted * (counted - 1))

  /// Sato-style package feasibility at `package_quota`: the fraction of
  /// members with at least quota of their A_u items in D (quota capped at
  /// |A_u| per member, so an impossible demand does not mark the member
  /// infeasible forever). 1.0 = the package is fair to everyone.
  int32_t package_quota = 1;
  double package_feasibility = 0.0;
};

/// Computes the report from a finalized Selection (uses Selection::members
/// when populated and consistent, recomputing otherwise).
FairnessReport ComputeFairnessReport(const GroupContext& context,
                                     const Selection& selection,
                                     int32_t package_quota = 1);

/// Same, from raw candidate indexes.
FairnessReport ComputeFairnessReportFromIndexes(
    const GroupContext& context, const std::vector<int32_t>& candidate_indexes,
    int32_t package_quota = 1);

}  // namespace fairrec

#endif  // FAIRREC_EVAL_FAIRNESS_METRICS_H_
