#include "eval/fairness_metrics.h"

#include <algorithm>

#include "core/fairness.h"

namespace fairrec {
namespace {

FairnessReport ReportFromBreakdowns(const GroupContext& context,
                                    const std::vector<MemberBreakdown>& members,
                                    int32_t package_quota) {
  FairnessReport report;
  report.package_quota = package_quota;
  const int32_t n = context.group_size();

  double total = 0.0;
  int32_t feasible = 0;
  std::vector<double> satisfactions;
  satisfactions.reserve(members.size());
  for (int32_t m = 0; m < n; ++m) {
    const MemberBreakdown& row = members[static_cast<size_t>(m)];
    if (row.satisfied) ++report.satisfied_members;
    // The member's personal quota: they cannot be asked for more A_u items
    // than they have.
    const int32_t quota = std::min(
        package_quota,
        static_cast<int32_t>(context.MemberTopK(m).size()));
    if (row.top_k_hits >= quota) ++feasible;
    if (row.satisfaction < 0.0) continue;  // nothing defined for this member
    satisfactions.push_back(row.satisfaction);
    total += row.satisfaction;
  }
  report.members_counted = static_cast<int32_t>(satisfactions.size());
  report.proportion_satisfied =
      n > 0 ? static_cast<double>(report.satisfied_members) /
                  static_cast<double>(n)
            : 0.0;
  report.package_feasibility =
      n > 0 ? static_cast<double>(feasible) / static_cast<double>(n) : 0.0;
  if (satisfactions.empty()) return report;

  const auto [min_it, max_it] =
      std::minmax_element(satisfactions.begin(), satisfactions.end());
  report.satisfaction_min = *min_it;
  report.satisfaction_max = *max_it;
  report.satisfaction_mean = total / static_cast<double>(satisfactions.size());
  report.satisfaction_spread = *max_it - *min_it;
  report.min_max_ratio = *max_it > 0.0 ? *min_it / *max_it : 1.0;

  for (const double su : satisfactions) {
    for (const double sv : satisfactions) {
      if (sv > su) {
        report.envy_total += sv - su;
        report.envy_max = std::max(report.envy_max, sv - su);
      }
    }
  }
  const auto counted = static_cast<double>(report.members_counted);
  if (report.members_counted > 1) {
    report.envy_mean = report.envy_total / (counted * (counted - 1.0));
  }
  return report;
}

}  // namespace

FairnessReport ComputeFairnessReport(const GroupContext& context,
                                     const Selection& selection,
                                     int32_t package_quota) {
  if (static_cast<int32_t>(selection.members.size()) == context.group_size()) {
    return ReportFromBreakdowns(context, selection.members, package_quota);
  }
  // A hand-built Selection without breakdowns: derive them from the items.
  std::vector<int32_t> indexes;
  indexes.reserve(selection.items.size());
  for (const ItemId item : selection.items) {
    const int32_t index = context.CandidateIndexOf(item);
    if (index >= 0) indexes.push_back(index);
  }
  return ComputeFairnessReportFromIndexes(context, indexes, package_quota);
}

FairnessReport ComputeFairnessReportFromIndexes(
    const GroupContext& context, const std::vector<int32_t>& candidate_indexes,
    int32_t package_quota) {
  return ReportFromBreakdowns(
      context, ComputeMemberBreakdowns(context, candidate_indexes),
      package_quota);
}

}  // namespace fairrec
