#ifndef FAIRREC_RATINGS_RATING_MATRIX_H_
#define FAIRREC_RATINGS_RATING_MATRIX_H_

#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "ratings/types.h"

namespace fairrec {

/// Immutable sparse user-item rating matrix, stored CSR-style in *both*
/// orientations so that the two access patterns of collaborative filtering are
/// O(degree): I(u) = items rated by a user (rows) and U(i) = users who rated
/// an item (columns). Per-user rating means (the µ_u of Eq. 2) are
/// precomputed at build time.
///
/// Construct via RatingMatrixBuilder. Copyable; cheap to move.
class RatingMatrix {
 public:
  RatingMatrix() = default;

  int32_t num_users() const { return num_users_; }
  int32_t num_items() const { return num_items_; }
  int64_t num_ratings() const { return static_cast<int64_t>(by_user_entries_.size()); }

  /// Fraction of the num_users x num_items grid that is populated.
  double Density() const;

  /// I(u): items rated by `u`, sorted by item id. Precondition: valid id.
  std::span<const ItemRating> ItemsRatedBy(UserId u) const;

  /// U(i): users who rated `i`, sorted by user id. Precondition: valid id.
  std::span<const UserRating> UsersWhoRated(ItemId i) const;

  /// The sub-span of U(i) whose user ids fall in [first, last). O(log |U(i)|).
  /// This is the column access pattern of the sufficient-statistics similarity
  /// sweep, which tiles the user-pair triangle into id ranges.
  /// Precondition: valid item id.
  std::span<const UserRating> UsersWhoRatedInRange(ItemId i, UserId first,
                                                   UserId last) const;

  /// rating(u, i), or nullopt if u has not rated i. O(log |I(u)|).
  std::optional<Rating> GetRating(UserId u, ItemId i) const;

  bool HasRating(UserId u, ItemId i) const { return GetRating(u, i).has_value(); }

  /// µ_u: mean of u's ratings; 0.0 for users with no ratings.
  double UserMean(UserId u) const;

  /// Number of ratings by user u.
  int32_t UserDegree(UserId u) const;

  /// Number of ratings on item i.
  int32_t ItemDegree(ItemId i) const;

  /// Items that *no* member of `group` has rated — the group candidate set of
  /// the paper's Job 1 ("if no user in the group has rated that item ... it
  /// will be considered as a recommendation"). Sorted ascending.
  std::vector<ItemId> ItemsUnratedByAll(const Group& group) const;

  /// Items that user `u` has not rated. Sorted ascending.
  std::vector<ItemId> ItemsUnratedBy(UserId u) const;

  /// All stored triples in (user, item) order.
  std::vector<RatingTriple> ToTriples() const;

  bool IsValidUser(UserId u) const { return u >= 0 && u < num_users_; }
  bool IsValidItem(ItemId i) const { return i >= 0 && i < num_items_; }

  /// Appends the matrix in snapshot wire form: grid size, the by-user CSR,
  /// and the stored per-user means. The by-item CSR is *not* written — it is
  /// a deterministic transpose (columns ascend in user id in every
  /// construction path) and is rebuilt on load. The means are written
  /// verbatim, never recomputed, because their exact bits are
  /// summation-order-dependent and the recovery parity guarantee is bitwise.
  void SerializeTo(std::string& out) const;

  /// Rebuilds a matrix from SerializeTo bytes, validating the CSR shape
  /// (monotone offsets, ids in range, rows sorted strictly ascending) and
  /// every value finite. DataLoss on anything a builder could not have
  /// produced.
  static Result<RatingMatrix> Deserialize(std::string_view bytes);

  /// Bitwise logical equality: same grid, same cells, identical rating and
  /// mean bits.
  friend bool operator==(const RatingMatrix& a, const RatingMatrix& b);

 private:
  friend class RatingMatrixBuilder;
  // RatingDelta::ApplyTo splices a batch of upserts into a copy of the CSR
  // arrays in O(ratings + batch), bypassing the builder's global re-sort.
  friend class RatingDelta;

  int32_t num_users_ = 0;
  int32_t num_items_ = 0;
  // CSR by user.
  std::vector<int64_t> by_user_offsets_;  // size num_users_+1
  std::vector<ItemRating> by_user_entries_;
  // CSR by item.
  std::vector<int64_t> by_item_offsets_;  // size num_items_+1
  std::vector<UserRating> by_item_entries_;
  std::vector<double> user_means_;  // size num_users_
};

/// Accumulates rating triples and produces an immutable RatingMatrix.
///
/// Duplicate (user, item) pairs are rejected at Build() time; ratings outside
/// [1, 5] are rejected at Add() time unless allow_any_scale(true) is set
/// (useful for unit tests of the math kernels).
class RatingMatrixBuilder {
 public:
  RatingMatrixBuilder() = default;

  /// Pre-declares the grid size; ids beyond it still grow the grid.
  RatingMatrixBuilder& Reserve(int32_t num_users, int32_t num_items);

  /// Accepts ratings outside the 1..5 scale (default false).
  RatingMatrixBuilder& allow_any_scale(bool allow);

  /// Adds one observation. Returns InvalidArgument for negative ids or
  /// off-scale values.
  Status Add(UserId user, ItemId item, Rating value);

  /// Adds a batch; stops at the first error.
  Status AddAll(const std::vector<RatingTriple>& triples);

  /// Validates (no duplicate cells) and builds. The builder is left empty.
  Result<RatingMatrix> Build();

 private:
  std::vector<RatingTriple> triples_;
  int32_t num_users_ = 0;
  int32_t num_items_ = 0;
  bool allow_any_scale_ = false;
};

}  // namespace fairrec

#endif  // FAIRREC_RATINGS_RATING_MATRIX_H_
