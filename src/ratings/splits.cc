#include "ratings/splits.h"

#include "common/random.h"

namespace fairrec {

namespace {

Result<TrainTestSplit> BuildSplit(const RatingMatrix& matrix,
                                  std::vector<RatingTriple> train_triples,
                                  std::vector<RatingTriple> test_triples) {
  RatingMatrixBuilder builder;
  // Preserve the original grid so user/item ids keep meaning even when a
  // user's entire row was held out.
  builder.Reserve(matrix.num_users(), matrix.num_items());
  builder.allow_any_scale(true);  // already validated at original build time
  FAIRREC_RETURN_NOT_OK(builder.AddAll(train_triples));
  TrainTestSplit split;
  FAIRREC_ASSIGN_OR_RETURN(split.train, builder.Build());
  split.test = std::move(test_triples);
  return split;
}

}  // namespace

Result<TrainTestSplit> RandomHoldoutSplit(const RatingMatrix& matrix,
                                          double test_fraction, uint64_t seed) {
  if (test_fraction <= 0.0 || test_fraction >= 1.0) {
    return Status::InvalidArgument("test_fraction must be in (0, 1)");
  }
  if (matrix.num_ratings() == 0) {
    return Status::InvalidArgument("cannot split an empty rating matrix");
  }
  Rng rng(seed);
  std::vector<RatingTriple> train;
  std::vector<RatingTriple> test;
  for (const RatingTriple& t : matrix.ToTriples()) {
    (rng.NextBool(test_fraction) ? test : train).push_back(t);
  }
  return BuildSplit(matrix, std::move(train), std::move(test));
}

Result<TrainTestSplit> LeaveKOutSplit(const RatingMatrix& matrix,
                                      int32_t k_per_user, uint64_t seed) {
  if (k_per_user <= 0) {
    return Status::InvalidArgument("k_per_user must be positive");
  }
  if (matrix.num_ratings() == 0) {
    return Status::InvalidArgument("cannot split an empty rating matrix");
  }
  Rng rng(seed);
  std::vector<RatingTriple> train;
  std::vector<RatingTriple> test;
  for (UserId u = 0; u < matrix.num_users(); ++u) {
    const auto row = matrix.ItemsRatedBy(u);
    if (static_cast<int32_t>(row.size()) <= k_per_user) {
      for (const ItemRating& entry : row) train.push_back({u, entry.item, entry.value});
      continue;
    }
    std::vector<uint8_t> held(row.size(), 0);
    for (const int32_t index : rng.SampleWithoutReplacement(
             static_cast<int32_t>(row.size()), k_per_user)) {
      held[static_cast<size_t>(index)] = 1;
    }
    for (size_t i = 0; i < row.size(); ++i) {
      (held[i] != 0 ? test : train).push_back({u, row[i].item, row[i].value});
    }
  }
  return BuildSplit(matrix, std::move(train), std::move(test));
}

}  // namespace fairrec
