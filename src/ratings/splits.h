#ifndef FAIRREC_RATINGS_SPLITS_H_
#define FAIRREC_RATINGS_SPLITS_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "ratings/rating_matrix.h"
#include "ratings/types.h"

namespace fairrec {

/// A train/test partition of a rating matrix. Every observation appears in
/// exactly one side; the train side is rebuilt into a matrix, the held-out
/// side stays a triple list (the shape accuracy evaluation consumes).
struct TrainTestSplit {
  RatingMatrix train;
  std::vector<RatingTriple> test;
};

/// Uniformly random holdout: each rating lands in the test side with
/// probability `test_fraction`. Deterministic in `seed`. Fails unless
/// 0 < test_fraction < 1 or if the matrix is empty.
Result<TrainTestSplit> RandomHoldoutSplit(const RatingMatrix& matrix,
                                          double test_fraction, uint64_t seed);

/// Leave-k-out per user: k randomly chosen ratings of every user with more
/// than `k_per_user` ratings are held out (users at or below the threshold
/// keep all their ratings in train). Deterministic in `seed`.
Result<TrainTestSplit> LeaveKOutSplit(const RatingMatrix& matrix,
                                      int32_t k_per_user, uint64_t seed);

}  // namespace fairrec

#endif  // FAIRREC_RATINGS_SPLITS_H_
