#include "ratings/dataset.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "common/csv.h"
#include "common/string_util.h"

namespace fairrec {

DatasetStats Dataset::ComputeStats() const {
  DatasetStats stats;
  stats.num_users = matrix.num_users();
  stats.num_items = matrix.num_items();
  stats.num_ratings = matrix.num_ratings();
  stats.density = matrix.Density();

  double sum = 0.0;
  int32_t min_deg = stats.num_users > 0 ? matrix.UserDegree(0) : 0;
  int32_t max_deg = 0;
  int64_t total_deg = 0;
  for (UserId u = 0; u < stats.num_users; ++u) {
    const int32_t deg = matrix.UserDegree(u);
    min_deg = std::min(min_deg, deg);
    max_deg = std::max(max_deg, deg);
    total_deg += deg;
    for (const ItemRating& entry : matrix.ItemsRatedBy(u)) {
      sum += entry.value;
      const int bucket =
          std::clamp(static_cast<int>(std::lround(entry.value)), 1, 5) - 1;
      stats.histogram[static_cast<size_t>(bucket)]++;
    }
  }
  stats.mean_rating =
      stats.num_ratings > 0 ? sum / static_cast<double>(stats.num_ratings) : 0.0;
  stats.min_user_degree = stats.num_users > 0 ? min_deg : 0;
  stats.max_user_degree = max_deg;
  stats.mean_user_degree =
      stats.num_users > 0
          ? static_cast<double>(total_deg) / static_cast<double>(stats.num_users)
          : 0.0;
  return stats;
}

namespace {

bool ParseInt32(const std::string& text, int32_t* out) {
  const std::string trimmed(Trim(text));
  if (trimmed.empty()) return false;
  char* end = nullptr;
  const long value = std::strtol(trimmed.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return false;
  if (value < INT32_MIN || value > INT32_MAX) return false;
  *out = static_cast<int32_t>(value);
  return true;
}

bool ParseDouble(const std::string& text, double* out) {
  const std::string trimmed(Trim(text));
  if (trimmed.empty()) return false;
  char* end = nullptr;
  const double value = std::strtod(trimmed.c_str(), &end);
  if (end == nullptr || *end != '\0') return false;
  *out = value;
  return true;
}

}  // namespace

Result<Dataset> LoadDatasetCsv(const std::string& path) {
  FAIRREC_ASSIGN_OR_RETURN(std::vector<CsvRow> rows, ReadCsvFile(path));
  Dataset dataset;
  RatingMatrixBuilder builder;
  bool first = true;
  for (const CsvRow& row : rows) {
    if (row.size() != 3) {
      return Status::InvalidArgument("expected 3 columns, got " +
                                     std::to_string(row.size()));
    }
    int32_t user = 0;
    int32_t item = 0;
    double value = 0.0;
    const bool parsed = ParseInt32(row[0], &user) && ParseInt32(row[1], &item) &&
                        ParseDouble(row[2], &value);
    if (!parsed) {
      if (first) {
        first = false;  // header row
        continue;
      }
      return Status::InvalidArgument("unparseable CSV row: " + Join(row, ","));
    }
    first = false;
    FAIRREC_RETURN_NOT_OK(builder.Add(user, item, value));
  }
  FAIRREC_ASSIGN_OR_RETURN(dataset.matrix, builder.Build());
  return dataset;
}

Status SaveDatasetCsv(const Dataset& dataset, const std::string& path) {
  std::vector<CsvRow> rows;
  rows.push_back({"user", "item", "rating"});
  for (const RatingTriple& t : dataset.matrix.ToTriples()) {
    rows.push_back({std::to_string(t.user), std::to_string(t.item),
                    FormatDouble(t.value, 3)});
  }
  return WriteCsvFile(path, rows);
}

}  // namespace fairrec
