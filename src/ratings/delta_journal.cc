#include "ratings/delta_journal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/blob_io.h"
#include "common/crc32c.h"
#include "common/failpoint.h"

namespace fairrec {

namespace {

/// Record magic: "FRJ1" little-endian.
constexpr uint32_t kRecordMagic = 0x314a5246u;
/// magic + payload_len + seq + payload_crc; the header CRC follows.
constexpr size_t kRecordHeaderBytes =
    sizeof(uint32_t) * 2 + sizeof(uint64_t) + sizeof(uint32_t);
constexpr size_t kRecordFrameBytes = kRecordHeaderBytes + sizeof(uint32_t);

std::string ErrnoMessage(const std::string& op, const std::string& path) {
  return op + " " + path + ": " + std::strerror(errno);
}

Status WriteAll(int fd, const char* data, size_t n, const std::string& path) {
  while (n > 0) {
    const ssize_t written = ::write(fd, data, n);
    if (written < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(ErrnoMessage("write", path));
    }
    data += written;
    n -= static_cast<size_t>(written);
  }
  return Status::OK();
}

Result<std::string> ReadWholeFile(int fd, const std::string& path) {
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    return Status::IOError(ErrnoMessage("fstat", path));
  }
  std::string bytes;
  bytes.resize(static_cast<size_t>(st.st_size));
  size_t read_so_far = 0;
  while (read_so_far < bytes.size()) {
    const ssize_t got = ::pread(fd, bytes.data() + read_so_far,
                                bytes.size() - read_so_far,
                                static_cast<off_t>(read_so_far));
    if (got < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(ErrnoMessage("pread", path));
    }
    if (got == 0) break;
    read_so_far += static_cast<size_t>(got);
  }
  bytes.resize(read_so_far);
  return bytes;
}

void AppendRecordBytes(std::string& out, uint64_t seq,
                       std::string_view payload) {
  const size_t header_at = out.size();
  BlobWriter writer(&out);
  writer.U32(kRecordMagic);
  writer.U32(static_cast<uint32_t>(payload.size()));
  writer.U64(seq);
  writer.U32(MaskCrc32c(Crc32c(payload.data(), payload.size())));
  writer.U32(MaskCrc32c(Crc32c(out.data() + header_at, kRecordHeaderBytes)));
  writer.Bytes(payload);
}

}  // namespace

Result<DeltaJournal> DeltaJournal::Open(std::string path) {
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_APPEND, 0644);
  if (fd < 0) return Status::IOError(ErrnoMessage("open", path));

  auto bytes = ReadWholeFile(fd, path);
  if (!bytes.ok()) {
    ::close(fd);
    return bytes.status();
  }
  auto parsed = ParseBytes(*bytes);
  if (!parsed.ok()) {
    ::close(fd);
    return parsed.status();
  }

  DeltaJournal journal(std::move(path), fd, parsed->valid_bytes,
                       parsed->records.empty() ? 0
                                               : parsed->records.back().seq);
  if (parsed->torn_tail_bytes > 0) {
    // A crash mid-append left a partial record; drop it so the next append
    // starts on a clean boundary.
    FAIRREC_RETURN_NOT_OK(journal.TruncateToBytes(parsed->valid_bytes));
    journal.recovered_torn_bytes_ = parsed->torn_tail_bytes;
  }
  return journal;
}

DeltaJournal::DeltaJournal(DeltaJournal&& other) noexcept
    : path_(std::move(other.path_)),
      fd_(other.fd_),
      size_bytes_(other.size_bytes_),
      last_seq_(other.last_seq_),
      recovered_torn_bytes_(other.recovered_torn_bytes_),
      pre_append_bytes_(other.pre_append_bytes_),
      pre_append_seq_(other.pre_append_seq_) {
  other.fd_ = -1;
}

DeltaJournal& DeltaJournal::operator=(DeltaJournal&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    path_ = std::move(other.path_);
    fd_ = other.fd_;
    size_bytes_ = other.size_bytes_;
    last_seq_ = other.last_seq_;
    recovered_torn_bytes_ = other.recovered_torn_bytes_;
    pre_append_bytes_ = other.pre_append_bytes_;
    pre_append_seq_ = other.pre_append_seq_;
    other.fd_ = -1;
  }
  return *this;
}

DeltaJournal::~DeltaJournal() {
  if (fd_ >= 0) ::close(fd_);
}

Status DeltaJournal::Append(uint64_t seq, const RatingDelta& delta) {
  if (fd_ < 0) return Status::FailedPrecondition("journal moved-from");
  if (seq <= last_seq_) {
    return Status::InvalidArgument("journal seq not increasing: " +
                                   std::to_string(seq) + " after " +
                                   std::to_string(last_seq_));
  }
  if (failpoint::Triggered(kFailpointJournalAppendBegin)) {
    return failpoint::InjectedCrash(kFailpointJournalAppendBegin);
  }

  std::string payload;
  delta.SerializeTo(payload);
  if (payload.size() > UINT32_MAX) {
    return Status::InvalidArgument("delta batch too large for one record");
  }
  std::string record;
  record.reserve(kRecordFrameBytes + payload.size());
  AppendRecordBytes(record, seq, payload);

  // A torn append is the kill mid-write: a prefix reaches the disk and
  // Open must truncate it away on recovery.
  const bool torn = failpoint::Triggered(kFailpointJournalAppendTorn);
  const size_t to_write = torn ? record.size() / 2 : record.size();
  FAIRREC_RETURN_NOT_OK(WriteAll(fd_, record.data(), to_write, path_));
  if (torn) {
    size_bytes_ += to_write;  // torn bytes are on disk until truncated
    return failpoint::InjectedCrash(kFailpointJournalAppendTorn);
  }
  if (failpoint::Triggered(kFailpointJournalAppendBeforeFsync)) {
    size_bytes_ += record.size();
    return failpoint::InjectedCrash(kFailpointJournalAppendBeforeFsync);
  }
  if (::fsync(fd_) != 0) {
    return Status::IOError(ErrnoMessage("fsync", path_));
  }
  pre_append_bytes_ = size_bytes_;
  pre_append_seq_ = last_seq_;
  size_bytes_ += record.size();
  last_seq_ = seq;
  return Status::OK();
}

Status DeltaJournal::RollbackLastAppend() {
  FAIRREC_RETURN_NOT_OK(TruncateToBytes(pre_append_bytes_));
  last_seq_ = pre_append_seq_;
  return Status::OK();
}

Status DeltaJournal::Clear() {
  FAIRREC_RETURN_NOT_OK(TruncateToBytes(0));
  pre_append_bytes_ = 0;
  // The seq floor resets with the records: cross-checkpoint monotonicity is
  // the facade's job (it appends at applied_seq + 1, which always exceeds
  // the checkpoint it just wrote), and an emptied file holds nothing a
  // fresh record could alias.
  last_seq_ = 0;
  pre_append_seq_ = 0;
  return Status::OK();
}

Status DeltaJournal::TruncateToBytes(uint64_t bytes) {
  if (fd_ < 0) return Status::FailedPrecondition("journal moved-from");
  if (::ftruncate(fd_, static_cast<off_t>(bytes)) != 0) {
    return Status::IOError(ErrnoMessage("ftruncate", path_));
  }
  if (::fsync(fd_) != 0) {
    return Status::IOError(ErrnoMessage("fsync", path_));
  }
  size_bytes_ = bytes;
  return Status::OK();
}

Result<DeltaJournal::ReplayResult> DeltaJournal::Replay() const {
  if (fd_ < 0) return Status::FailedPrecondition("journal moved-from");
  FAIRREC_ASSIGN_OR_RETURN(const std::string bytes,
                           ReadWholeFile(fd_, path_));
  return ParseBytes(bytes);
}

Result<DeltaJournal::ReplayResult> DeltaJournal::ParseBytes(
    std::string_view bytes) {
  ReplayResult result;
  size_t pos = 0;
  uint64_t prev_seq = 0;
  while (pos < bytes.size()) {
    const size_t remaining = bytes.size() - pos;
    if (remaining < kRecordFrameBytes) {
      // Not even a full frame: the classic torn tail.
      result.torn_tail_bytes = remaining;
      break;
    }
    BlobReader reader(bytes.substr(pos, kRecordFrameBytes));
    uint32_t magic = 0;
    uint32_t payload_len = 0;
    uint64_t seq = 0;
    uint32_t payload_crc = 0;
    uint32_t header_crc = 0;
    reader.U32(&magic);
    reader.U32(&payload_len);
    reader.U64(&seq);
    reader.U32(&payload_crc);
    reader.U32(&header_crc);
    // The header CRC is what distinguishes corruption from tearing: a bit
    // flip anywhere in the frame (including the length, which would
    // otherwise misdirect the scan) fails here.
    if (Crc32c(bytes.data() + pos, kRecordHeaderBytes) !=
        UnmaskCrc32c(header_crc)) {
      return Status::DataLoss("journal record header checksum mismatch at " +
                              std::to_string(pos));
    }
    if (magic != kRecordMagic) {
      return Status::DataLoss("bad journal record magic at " +
                              std::to_string(pos));
    }
    if (remaining - kRecordFrameBytes < payload_len) {
      // Valid header, incomplete payload: the append died mid-payload.
      result.torn_tail_bytes = remaining;
      break;
    }
    const std::string_view payload =
        bytes.substr(pos + kRecordFrameBytes, payload_len);
    if (Crc32c(payload.data(), payload.size()) != UnmaskCrc32c(payload_crc)) {
      return Status::DataLoss("journal record payload checksum mismatch at " +
                              std::to_string(pos));
    }
    if (seq <= prev_seq) {
      return Status::DataLoss("journal seq not increasing at " +
                              std::to_string(pos));
    }
    auto delta = RatingDelta::Deserialize(payload);
    if (!delta.ok()) return delta.status();
    prev_seq = seq;
    result.records.push_back({seq, std::move(*delta)});
    pos += kRecordFrameBytes + payload_len;
    result.valid_bytes = pos;
  }
  return result;
}

}  // namespace fairrec
