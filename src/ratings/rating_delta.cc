#include "ratings/rating_delta.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "common/blob_io.h"
#include "common/logging.h"

namespace fairrec {

RatingDelta& RatingDelta::allow_any_scale(bool allow) {
  allow_any_scale_ = allow;
  return *this;
}

Status RatingDelta::Add(UserId user, ItemId item, Rating value) {
  if (user < 0) {
    return Status::InvalidArgument("negative user id: " + std::to_string(user));
  }
  if (item < 0) {
    return Status::InvalidArgument("negative item id: " + std::to_string(item));
  }
  if (!allow_any_scale_ && !IsValidRating(value)) {
    return Status::InvalidArgument("rating outside [1,5]: " +
                                   std::to_string(value));
  }
  upserts_.push_back({user, item, value});
  finalized_ = upserts_.size() == 1;
  return Status::OK();
}

Status RatingDelta::AddAll(std::span<const RatingTriple> triples) {
  for (const RatingTriple& t : triples) {
    FAIRREC_RETURN_NOT_OK(Add(t.user, t.item, t.value));
  }
  return Status::OK();
}

void RatingDelta::Finalize() const {
  if (finalized_) return;
  // Stable sort keeps insertion order within a (user, item) cell, so
  // "last upsert wins" is the last element of each equal run.
  std::stable_sort(upserts_.begin(), upserts_.end(),
                   [](const RatingTriple& a, const RatingTriple& b) {
                     return a.user != b.user ? a.user < b.user
                                             : a.item < b.item;
                   });
  size_t out = 0;
  for (size_t k = 0; k < upserts_.size(); ++k) {
    if (k + 1 < upserts_.size() && upserts_[k + 1].user == upserts_[k].user &&
        upserts_[k + 1].item == upserts_[k].item) {
      continue;  // superseded by a later upsert of the same cell
    }
    upserts_[out++] = upserts_[k];
  }
  upserts_.resize(out);
  finalized_ = true;
}

std::span<const RatingTriple> RatingDelta::upserts() const {
  Finalize();
  return upserts_;
}

std::vector<ItemId> RatingDelta::TouchedItems() const {
  Finalize();
  std::vector<ItemId> items;
  items.reserve(upserts_.size());
  for (const RatingTriple& t : upserts_) items.push_back(t.item);
  std::sort(items.begin(), items.end());
  items.erase(std::unique(items.begin(), items.end()), items.end());
  return items;
}

std::vector<UserId> RatingDelta::TouchedUsers() const {
  Finalize();
  std::vector<UserId> users;
  users.reserve(upserts_.size());
  for (const RatingTriple& t : upserts_) {
    // upserts_ is (user, item)-ordered, so users arrive grouped.
    if (users.empty() || users.back() != t.user) users.push_back(t.user);
  }
  return users;
}

void RatingDelta::SerializeTo(std::string& out) const {
  Finalize();
  BlobWriter writer(&out);
  writer.U32(allow_any_scale_ ? 1 : 0);
  writer.U64(static_cast<uint64_t>(upserts_.size()));
  for (const RatingTriple& t : upserts_) {
    writer.I32(t.user);
    writer.I32(t.item);
    writer.F64(t.value);
  }
}

Result<RatingDelta> RatingDelta::Deserialize(std::string_view bytes) {
  BlobReader reader(bytes);
  uint32_t scale_flag = 0;
  uint64_t count = 0;
  if (!reader.U32(&scale_flag) || !reader.U64(&count)) {
    return Status::DataLoss("truncated delta header");
  }
  if (scale_flag > 1) {
    return Status::DataLoss("invalid delta scale flag");
  }
  constexpr size_t kTripleBytes = sizeof(int32_t) * 2 + sizeof(double);
  if (count * kTripleBytes != reader.remaining()) {
    return Status::DataLoss("delta upsert count disagrees with bytes present");
  }
  RatingDelta delta;
  delta.allow_any_scale(scale_flag == 1);
  for (uint64_t k = 0; k < count; ++k) {
    int32_t user = 0;
    int32_t item = 0;
    double value = 0.0;
    if (!reader.I32(&user) || !reader.I32(&item) || !reader.F64(&value)) {
      return Status::DataLoss("truncated delta upsert");
    }
    if (!std::isfinite(value)) {
      return Status::DataLoss("non-finite delta rating");
    }
    // Re-validate through Add so a corrupted payload that still frames
    // correctly (negative id, off-scale or non-finite value) is rejected.
    const Status added = delta.Add(user, item, value);
    if (!added.ok()) {
      return Status::DataLoss("invalid delta upsert: " +
                              std::string(added.message()));
    }
  }
  return delta;
}

Result<RatingMatrix> RatingDelta::ApplyTo(const RatingMatrix& base) const {
  Finalize();

  int32_t num_users = base.num_users();
  int32_t num_items = base.num_items();
  for (const RatingTriple& t : upserts_) {
    num_users = std::max(num_users, t.user + 1);
    num_items = std::max(num_items, t.item + 1);
  }

  RatingMatrix m;
  m.num_users_ = num_users;
  m.num_items_ = num_items;

  // ---- Rows: per-user sorted merge of the base row with the user's
  // upserts (both item-ascending). Matching items overwrite in place. ----
  m.by_user_offsets_.assign(static_cast<size_t>(num_users) + 1, 0);
  m.by_user_entries_.reserve(static_cast<size_t>(base.num_ratings()) +
                             upserts_.size());
  size_t d = 0;  // cursor into upserts_
  for (UserId u = 0; u < num_users; ++u) {
    m.by_user_offsets_[static_cast<size_t>(u)] =
        static_cast<int64_t>(m.by_user_entries_.size());
    const std::span<const ItemRating> row =
        u < base.num_users() ? base.ItemsRatedBy(u)
                             : std::span<const ItemRating>();
    size_t r = 0;
    while (r < row.size() || (d < upserts_.size() && upserts_[d].user == u)) {
      const bool has_upsert = d < upserts_.size() && upserts_[d].user == u;
      if (!has_upsert || (r < row.size() && row[r].item < upserts_[d].item)) {
        m.by_user_entries_.push_back(row[r++]);
      } else {
        if (r < row.size() && row[r].item == upserts_[d].item) ++r;  // update
        m.by_user_entries_.push_back({upserts_[d].item, upserts_[d].value});
        ++d;
      }
    }
  }
  m.by_user_offsets_[static_cast<size_t>(num_users)] =
      static_cast<int64_t>(m.by_user_entries_.size());

  // ---- Columns: the same merge item-major, against an (item, user)-sorted
  // copy of the batch. ----
  std::vector<RatingTriple> by_item(upserts_.begin(), upserts_.end());
  std::sort(by_item.begin(), by_item.end(),
            [](const RatingTriple& a, const RatingTriple& b) {
              return a.item != b.item ? a.item < b.item : a.user < b.user;
            });
  m.by_item_offsets_.assign(static_cast<size_t>(num_items) + 1, 0);
  m.by_item_entries_.reserve(m.by_user_entries_.size());
  d = 0;
  for (ItemId i = 0; i < num_items; ++i) {
    m.by_item_offsets_[static_cast<size_t>(i)] =
        static_cast<int64_t>(m.by_item_entries_.size());
    const std::span<const UserRating> column =
        i < base.num_items() ? base.UsersWhoRated(i)
                             : std::span<const UserRating>();
    size_t c = 0;
    while (c < column.size() || (d < by_item.size() && by_item[d].item == i)) {
      const bool has_upsert = d < by_item.size() && by_item[d].item == i;
      if (!has_upsert ||
          (c < column.size() && column[c].user < by_item[d].user)) {
        m.by_item_entries_.push_back(column[c++]);
      } else {
        if (c < column.size() && column[c].user == by_item[d].user) ++c;
        m.by_item_entries_.push_back({by_item[d].user, by_item[d].value});
        ++d;
      }
    }
  }
  m.by_item_offsets_[static_cast<size_t>(num_items)] =
      static_cast<int64_t>(m.by_item_entries_.size());

  // ---- Means: copy, then recompute only the touched rows. ----
  m.user_means_.assign(static_cast<size_t>(num_users), 0.0);
  std::copy(base.user_means_.begin(), base.user_means_.end(),
            m.user_means_.begin());
  for (const UserId u : TouchedUsers()) {
    const auto row = m.ItemsRatedBy(u);
    double sum = 0.0;
    for (const ItemRating& entry : row) sum += entry.value;
    m.user_means_[static_cast<size_t>(u)] =
        row.empty() ? 0.0 : sum / static_cast<double>(row.size());
  }
  return m;
}

}  // namespace fairrec
