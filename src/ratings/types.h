#ifndef FAIRREC_RATINGS_TYPES_H_
#define FAIRREC_RATINGS_TYPES_H_

#include <cstdint>
#include <vector>

namespace fairrec {

/// Dense, zero-based identifiers. The library indexes users and items
/// contiguously; dataset loaders are responsible for remapping external ids.
using UserId = int32_t;
using ItemId = int32_t;

/// Raw rating scale used throughout the paper: integers 1..5, stored as
/// double so that predicted relevances (Eq. 1) share the type.
using Rating = double;

inline constexpr Rating kMinRating = 1.0;
inline constexpr Rating kMaxRating = 5.0;

inline constexpr UserId kInvalidUserId = -1;
inline constexpr ItemId kInvalidItemId = -1;

/// One observation: user `user` rated item `item` with `value`.
struct RatingTriple {
  UserId user = kInvalidUserId;
  ItemId item = kInvalidItemId;
  Rating value = 0.0;

  friend bool operator==(const RatingTriple&, const RatingTriple&) = default;
};

/// (item, rating) entry in a user's row.
struct ItemRating {
  ItemId item = kInvalidItemId;
  Rating value = 0.0;

  friend bool operator==(const ItemRating&, const ItemRating&) = default;
};

/// (user, rating) entry in an item's column.
struct UserRating {
  UserId user = kInvalidUserId;
  Rating value = 0.0;

  friend bool operator==(const UserRating&, const UserRating&) = default;
};

/// (item, score) pair produced by relevance estimation and top-k selection.
struct ScoredItem {
  ItemId item = kInvalidItemId;
  double score = 0.0;

  friend bool operator==(const ScoredItem&, const ScoredItem&) = default;
};

/// A caregiver's patient group G (dense user ids, no duplicates).
using Group = std::vector<UserId>;

/// True iff `value` lies on the paper's 1..5 scale.
inline bool IsValidRating(Rating value) {
  return value >= kMinRating && value <= kMaxRating;
}

}  // namespace fairrec

#endif  // FAIRREC_RATINGS_TYPES_H_
