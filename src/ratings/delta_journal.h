#ifndef FAIRREC_RATINGS_DELTA_JOURNAL_H_
#define FAIRREC_RATINGS_DELTA_JOURNAL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "ratings/rating_delta.h"

namespace fairrec {

/// Failpoint sites of the journal append path (see common/failpoint.h).
/// "begin" dies before any byte is written (the record is simply lost, as
/// when the process is killed before the write syscall); "torn" writes a
/// prefix of the record and dies (recovery must truncate the tail);
/// "before_fsync" dies after the write but before fsync — on a real kernel
/// the bytes may or may not survive, and the torn/begin cases already cover
/// both outcomes, so this site models the "bytes survived" one.
inline constexpr std::string_view kFailpointJournalAppendBegin =
    "journal.append.begin";
inline constexpr std::string_view kFailpointJournalAppendTorn =
    "journal.append.torn";
inline constexpr std::string_view kFailpointJournalAppendBeforeFsync =
    "journal.append.before_fsync";

/// Write-ahead log of RatingDelta batches, the durability half of the
/// incremental peer-graph pipeline (the other half is the checkpoint
/// container in sim/durable_peer_graph.h).
///
/// Protocol: every batch is appended — checksummed and fsync'd — *before*
/// IncrementalPeerGraph::ApplyDelta consumes it. A checkpoint snapshots the
/// full in-memory state and clears the journal; recovery loads the last
/// checkpoint and replays the journal tail in sequence order, which by the
/// engine's determinism reproduces the never-crashed state byte for byte.
///
/// Record wire form (little-endian):
///   u32 magic  u32 payload_len  u64 seq  u32 masked payload CRC32C
///   u32 masked header CRC32C (over the preceding 20 bytes)  payload
/// where the payload is RatingDelta::SerializeTo bytes.
///
/// Torn tail vs corruption: a record whose bytes are *incomplete* at end of
/// file is the normal signature of a crash mid-append — replay stops there
/// and Open truncates it away. A record whose bytes are all present but fail
/// a CRC (or whose header fields are impossible) is corruption, reported as
/// DataLoss and never silently skipped. The header carries its own CRC so a
/// bit flip in the length field cannot masquerade as a torn tail.
///
/// Not thread-safe; the owning DurablePeerGraph serializes access.
class DeltaJournal {
 public:
  /// One replayed record: the batch plus the monotone sequence number the
  /// writer stamped it with.
  struct Record {
    uint64_t seq = 0;
    RatingDelta delta;
  };

  /// The parse of a journal byte stream: the complete, checksum-verified
  /// records, and how many trailing bytes formed an incomplete record
  /// (torn tail).
  struct ReplayResult {
    std::vector<Record> records;
    uint64_t valid_bytes = 0;
    uint64_t torn_tail_bytes = 0;
  };

  /// Opens (creating if absent) the journal at `path`. Scans the existing
  /// bytes: a torn tail is truncated away (a crash mid-append is normal);
  /// any corruption among the complete records fails the open with
  /// DataLoss. The next Append continues after the highest stored seq.
  static Result<DeltaJournal> Open(std::string path);

  DeltaJournal(DeltaJournal&& other) noexcept;
  DeltaJournal& operator=(DeltaJournal&& other) noexcept;
  DeltaJournal(const DeltaJournal&) = delete;
  DeltaJournal& operator=(const DeltaJournal&) = delete;
  ~DeltaJournal();

  /// Appends `delta` under sequence number `seq` (must exceed every seq
  /// already in the file) and fsyncs. On return the record is durable.
  Status Append(uint64_t seq, const RatingDelta& delta);

  /// Undoes the most recent successful Append (used when the in-memory
  /// apply the record was written ahead of fails: the journal must not
  /// replay a batch the state never absorbed).
  Status RollbackLastAppend();

  /// Empties the journal (checkpoint took ownership of everything in it).
  Status Clear();

  /// Parses all complete records currently in the file. Torn tails are
  /// reported, not errors; corruption is DataLoss.
  Result<ReplayResult> Replay() const;

  /// Parses journal bytes without touching the filesystem (the engine of
  /// both Open and Replay; exposed for the corruption test suite).
  static Result<ReplayResult> ParseBytes(std::string_view bytes);

  const std::string& path() const { return path_; }
  uint64_t size_bytes() const { return size_bytes_; }
  /// Highest seq appended or recovered; 0 when the journal is empty.
  uint64_t last_seq() const { return last_seq_; }
  /// Bytes of torn tail Open() found and truncated (0 on a clean open).
  uint64_t recovered_torn_bytes() const { return recovered_torn_bytes_; }

 private:
  DeltaJournal(std::string path, int fd, uint64_t size_bytes,
               uint64_t last_seq)
      : path_(std::move(path)),
        fd_(fd),
        size_bytes_(size_bytes),
        last_seq_(last_seq) {}

  Status TruncateToBytes(uint64_t bytes);

  std::string path_;
  int fd_ = -1;
  uint64_t size_bytes_ = 0;
  uint64_t last_seq_ = 0;
  uint64_t recovered_torn_bytes_ = 0;
  // Byte size before the last successful Append, for RollbackLastAppend.
  uint64_t pre_append_bytes_ = 0;
  uint64_t pre_append_seq_ = 0;
};

}  // namespace fairrec

#endif  // FAIRREC_RATINGS_DELTA_JOURNAL_H_
