#ifndef FAIRREC_RATINGS_RATING_DELTA_H_
#define FAIRREC_RATINGS_RATING_DELTA_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/result.h"
#include "ratings/rating_matrix.h"
#include "ratings/types.h"

namespace fairrec {

/// One batch of rating arrivals against an existing corpus: brand-new
/// ratings, updates of existing cells, and ratings from brand-new users
/// (ids at or beyond the base matrix's num_users grow the population; new
/// item ids grow the item universe the same way).
///
/// This is the unit of change the incremental peer-graph maintenance
/// subsystem consumes (see sim/incremental_peer_graph.h): a delta names
/// exactly which item columns moved, so the similarity refresh can re-sweep
/// only those columns instead of the whole corpus. Semantics are upsert-only
/// — a (user, item) cell is inserted or overwritten, never deleted — which
/// matches the serving reality of continuously arriving ratings.
///
/// Thread-compatibility: unlike the library's read-only artifacts, the
/// const accessors here finalize the batch lazily (sort + last-wins dedup
/// of the mutable upsert list), so concurrent first reads of a shared delta
/// race. Build a delta on one thread; if it must be shared, call upserts()
/// once before publishing it.
class RatingDelta {
 public:
  RatingDelta() = default;

  /// Records one arrival. The last upsert wins when the same (user, item)
  /// cell appears twice in one batch. Returns InvalidArgument for negative
  /// ids or (unless allow_any_scale) off-scale values.
  Status Add(UserId user, ItemId item, Rating value);

  /// Adds a batch; stops at the first error.
  Status AddAll(std::span<const RatingTriple> triples);

  /// Accepts ratings outside the 1..5 scale (default false). Must match the
  /// base matrix's scale policy.
  RatingDelta& allow_any_scale(bool allow);
  bool allows_any_scale() const { return allow_any_scale_; }

  bool empty() const { return upserts_.empty(); }
  int64_t size() const { return static_cast<int64_t>(upserts_.size()); }

  /// The batch as deduplicated triples in (user, item) order.
  /// Finalized lazily; calling Add afterwards re-finalizes.
  std::span<const RatingTriple> upserts() const;

  /// Distinct items with at least one upsert, ascending — the columns the
  /// incremental sweep re-reads.
  std::vector<ItemId> TouchedItems() const;

  /// Distinct users with at least one upsert, ascending.
  std::vector<UserId> TouchedUsers() const;

  /// The batch folded into `base`: every upsert inserted or overwritten,
  /// num_users/num_items grown to cover new ids. Rows, columns, and per-user
  /// means are merged in O(ratings + batch) — no global re-sort — so
  /// applying a small delta to a large corpus costs one linear pass, not a
  /// from-scratch RatingMatrixBuilder::Build.
  Result<RatingMatrix> ApplyTo(const RatingMatrix& base) const;

  /// Appends the batch in the journal wire form (scale flag, count, then
  /// the finalized triples) — the payload of one DeltaJournal record.
  void SerializeTo(std::string& out) const;

  /// Rebuilds a batch from SerializeTo bytes, re-validating every triple
  /// (ids, scale) on the way in, so a corrupted-but-well-framed journal
  /// payload is rejected with a clean error instead of poisoning the
  /// replay. DataLoss on truncation or an invalid triple.
  static Result<RatingDelta> Deserialize(std::string_view bytes);

 private:
  void Finalize() const;

  // Raw arrivals in insertion order; finalized (sorted, last-wins dedup)
  // into a (user, item)-ordered batch on first read.
  mutable std::vector<RatingTriple> upserts_;
  mutable bool finalized_ = true;
  bool allow_any_scale_ = false;
};

}  // namespace fairrec

#endif  // FAIRREC_RATINGS_RATING_DELTA_H_
