#ifndef FAIRREC_RATINGS_DATASET_H_
#define FAIRREC_RATINGS_DATASET_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "ratings/rating_matrix.h"
#include "ratings/types.h"

namespace fairrec {

/// Aggregate statistics about a rating matrix, for dataset reports.
struct DatasetStats {
  int32_t num_users = 0;
  int32_t num_items = 0;
  int64_t num_ratings = 0;
  double density = 0.0;
  double mean_rating = 0.0;
  /// histogram[s-1] counts ratings with round(value) == s, s in 1..5.
  std::vector<int64_t> histogram = std::vector<int64_t>(5, 0);
  int32_t min_user_degree = 0;
  int32_t max_user_degree = 0;
  double mean_user_degree = 0.0;
};

/// A rating matrix together with optional display names, as produced by the
/// synthetic generators or loaded from disk.
struct Dataset {
  RatingMatrix matrix;
  std::vector<std::string> user_names;  // may be empty
  std::vector<std::string> item_names;  // may be empty

  DatasetStats ComputeStats() const;
};

/// Loads a `user,item,rating` CSV (optional single header row is detected and
/// skipped). Ids must be non-negative integers; ratings must be in [1,5].
Result<Dataset> LoadDatasetCsv(const std::string& path);

/// Writes `user,item,rating` rows with a header.
Status SaveDatasetCsv(const Dataset& dataset, const std::string& path);

}  // namespace fairrec

#endif  // FAIRREC_RATINGS_DATASET_H_
