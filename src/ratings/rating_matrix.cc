#include "ratings/rating_matrix.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/blob_io.h"
#include "common/logging.h"

namespace fairrec {

double RatingMatrix::Density() const {
  const double cells = static_cast<double>(num_users_) * num_items_;
  return cells == 0.0 ? 0.0 : static_cast<double>(num_ratings()) / cells;
}

std::span<const ItemRating> RatingMatrix::ItemsRatedBy(UserId u) const {
  FAIRREC_DCHECK(IsValidUser(u));
  const auto begin = static_cast<size_t>(by_user_offsets_[static_cast<size_t>(u)]);
  const auto end = static_cast<size_t>(by_user_offsets_[static_cast<size_t>(u) + 1]);
  return {by_user_entries_.data() + begin, end - begin};
}

std::span<const UserRating> RatingMatrix::UsersWhoRated(ItemId i) const {
  FAIRREC_DCHECK(IsValidItem(i));
  const auto begin = static_cast<size_t>(by_item_offsets_[static_cast<size_t>(i)]);
  const auto end = static_cast<size_t>(by_item_offsets_[static_cast<size_t>(i) + 1]);
  return {by_item_entries_.data() + begin, end - begin};
}

std::span<const UserRating> RatingMatrix::UsersWhoRatedInRange(
    ItemId i, UserId first, UserId last) const {
  const auto column = UsersWhoRated(i);
  const auto user_less = [](const UserRating& entry, UserId target) {
    return entry.user < target;
  };
  const auto begin = std::lower_bound(column.begin(), column.end(), first, user_less);
  const auto end = std::lower_bound(begin, column.end(), last, user_less);
  return {begin, end};
}

std::optional<Rating> RatingMatrix::GetRating(UserId u, ItemId i) const {
  if (!IsValidUser(u) || !IsValidItem(i)) return std::nullopt;
  const auto row = ItemsRatedBy(u);
  const auto it = std::lower_bound(
      row.begin(), row.end(), i,
      [](const ItemRating& entry, ItemId target) { return entry.item < target; });
  if (it == row.end() || it->item != i) return std::nullopt;
  return it->value;
}

double RatingMatrix::UserMean(UserId u) const {
  FAIRREC_DCHECK(IsValidUser(u));
  return user_means_[static_cast<size_t>(u)];
}

int32_t RatingMatrix::UserDegree(UserId u) const {
  FAIRREC_DCHECK(IsValidUser(u));
  return static_cast<int32_t>(by_user_offsets_[static_cast<size_t>(u) + 1] -
                              by_user_offsets_[static_cast<size_t>(u)]);
}

int32_t RatingMatrix::ItemDegree(ItemId i) const {
  FAIRREC_DCHECK(IsValidItem(i));
  return static_cast<int32_t>(by_item_offsets_[static_cast<size_t>(i) + 1] -
                              by_item_offsets_[static_cast<size_t>(i)]);
}

std::vector<ItemId> RatingMatrix::ItemsUnratedByAll(const Group& group) const {
  std::vector<bool> rated(static_cast<size_t>(num_items_), false);
  for (UserId u : group) {
    if (!IsValidUser(u)) continue;
    for (const ItemRating& entry : ItemsRatedBy(u)) {
      rated[static_cast<size_t>(entry.item)] = true;
    }
  }
  std::vector<ItemId> out;
  for (ItemId i = 0; i < num_items_; ++i) {
    if (!rated[static_cast<size_t>(i)]) out.push_back(i);
  }
  return out;
}

std::vector<ItemId> RatingMatrix::ItemsUnratedBy(UserId u) const {
  return ItemsUnratedByAll(Group{u});
}

std::vector<RatingTriple> RatingMatrix::ToTriples() const {
  std::vector<RatingTriple> out;
  out.reserve(static_cast<size_t>(num_ratings()));
  for (UserId u = 0; u < num_users_; ++u) {
    for (const ItemRating& entry : ItemsRatedBy(u)) {
      out.push_back({u, entry.item, entry.value});
    }
  }
  return out;
}

void RatingMatrix::SerializeTo(std::string& out) const {
  BlobWriter writer(&out);
  writer.I32(num_users_);
  writer.I32(num_items_);
  writer.U64(static_cast<uint64_t>(by_user_entries_.size()));
  for (UserId u = 0; u < num_users_; ++u) {
    const auto row = ItemsRatedBy(u);
    writer.U64(static_cast<uint64_t>(row.size()));
    for (const ItemRating& entry : row) {
      writer.I32(entry.item);
      writer.F64(entry.value);
    }
  }
  for (const double mean : user_means_) writer.F64(mean);
}

Result<RatingMatrix> RatingMatrix::Deserialize(std::string_view bytes) {
  BlobReader reader(bytes);
  int32_t num_users = 0;
  int32_t num_items = 0;
  uint64_t num_ratings = 0;
  if (!reader.I32(&num_users) || !reader.I32(&num_items) ||
      !reader.U64(&num_ratings)) {
    return Status::DataLoss("truncated rating matrix header");
  }
  if (num_users < 0 || num_items < 0) {
    return Status::DataLoss("impossible rating matrix grid");
  }
  constexpr size_t kCellBytes = sizeof(int32_t) + sizeof(double);
  if (num_ratings > reader.remaining() / kCellBytes) {
    return Status::DataLoss("rating count exceeds the bytes present");
  }

  RatingMatrix m;
  m.num_users_ = num_users;
  m.num_items_ = num_items;
  m.by_user_offsets_.assign(static_cast<size_t>(num_users) + 1, 0);
  m.by_user_entries_.reserve(static_cast<size_t>(num_ratings));
  for (UserId u = 0; u < num_users; ++u) {
    uint64_t row_len = 0;
    if (!reader.U64(&row_len)) {
      return Status::DataLoss("truncated rating matrix row");
    }
    ItemId prev_item = kInvalidItemId;
    for (uint64_t k = 0; k < row_len; ++k) {
      int32_t item = 0;
      double value = 0.0;
      if (!reader.I32(&item) || !reader.F64(&value)) {
        return Status::DataLoss("truncated rating matrix row");
      }
      if (item < 0 || item >= num_items || item <= prev_item) {
        return Status::DataLoss("rating matrix row not sorted in range");
      }
      if (!std::isfinite(value)) {
        return Status::DataLoss("non-finite rating value");
      }
      prev_item = item;
      m.by_user_entries_.push_back({item, value});
    }
    m.by_user_offsets_[static_cast<size_t>(u) + 1] =
        static_cast<int64_t>(m.by_user_entries_.size());
  }
  if (m.by_user_entries_.size() != num_ratings) {
    return Status::DataLoss("rating matrix row lengths disagree with total");
  }
  m.user_means_.assign(static_cast<size_t>(num_users), 0.0);
  for (double& mean : m.user_means_) {
    if (!reader.F64(&mean)) {
      return Status::DataLoss("truncated rating matrix means");
    }
    if (!std::isfinite(mean)) {
      return Status::DataLoss("non-finite user mean");
    }
  }
  if (!reader.exhausted()) {
    return Status::DataLoss("trailing bytes in rating matrix");
  }

  // The by-item CSR is not stored: every construction path (builder sort,
  // ApplyTo merge) leaves columns ascending in user id, so the stable
  // counting-sort transpose reproduces it exactly.
  m.by_item_offsets_.assign(static_cast<size_t>(num_items) + 1, 0);
  for (const ItemRating& entry : m.by_user_entries_) {
    m.by_item_offsets_[static_cast<size_t>(entry.item) + 1]++;
  }
  for (size_t i = 0; i < static_cast<size_t>(num_items); ++i) {
    m.by_item_offsets_[i + 1] += m.by_item_offsets_[i];
  }
  m.by_item_entries_.resize(m.by_user_entries_.size());
  {
    std::vector<int64_t> cursor(m.by_item_offsets_.begin(),
                                m.by_item_offsets_.end() - 1);
    for (UserId u = 0; u < num_users; ++u) {
      for (const ItemRating& entry : m.ItemsRatedBy(u)) {
        m.by_item_entries_[static_cast<size_t>(
            cursor[static_cast<size_t>(entry.item)]++)] = {u, entry.value};
      }
    }
  }
  return m;
}

bool operator==(const RatingMatrix& a, const RatingMatrix& b) {
  return a.num_users_ == b.num_users_ && a.num_items_ == b.num_items_ &&
         a.by_user_offsets_ == b.by_user_offsets_ &&
         a.by_user_entries_ == b.by_user_entries_ &&
         a.user_means_ == b.user_means_;
}

RatingMatrixBuilder& RatingMatrixBuilder::Reserve(int32_t num_users,
                                                  int32_t num_items) {
  num_users_ = std::max(num_users_, num_users);
  num_items_ = std::max(num_items_, num_items);
  return *this;
}

RatingMatrixBuilder& RatingMatrixBuilder::allow_any_scale(bool allow) {
  allow_any_scale_ = allow;
  return *this;
}

Status RatingMatrixBuilder::Add(UserId user, ItemId item, Rating value) {
  if (user < 0) {
    return Status::InvalidArgument("negative user id: " + std::to_string(user));
  }
  if (item < 0) {
    return Status::InvalidArgument("negative item id: " + std::to_string(item));
  }
  if (!allow_any_scale_ && !IsValidRating(value)) {
    return Status::InvalidArgument("rating outside [1,5]: " +
                                   std::to_string(value));
  }
  triples_.push_back({user, item, value});
  num_users_ = std::max(num_users_, user + 1);
  num_items_ = std::max(num_items_, item + 1);
  return Status::OK();
}

Status RatingMatrixBuilder::AddAll(const std::vector<RatingTriple>& triples) {
  for (const RatingTriple& t : triples) {
    FAIRREC_RETURN_NOT_OK(Add(t.user, t.item, t.value));
  }
  return Status::OK();
}

Result<RatingMatrix> RatingMatrixBuilder::Build() {
  std::sort(triples_.begin(), triples_.end(),
            [](const RatingTriple& a, const RatingTriple& b) {
              return a.user != b.user ? a.user < b.user : a.item < b.item;
            });
  for (size_t k = 1; k < triples_.size(); ++k) {
    if (triples_[k].user == triples_[k - 1].user &&
        triples_[k].item == triples_[k - 1].item) {
      return Status::AlreadyExists(
          "duplicate rating for user " + std::to_string(triples_[k].user) +
          ", item " + std::to_string(triples_[k].item));
    }
  }

  RatingMatrix m;
  m.num_users_ = num_users_;
  m.num_items_ = num_items_;

  // CSR by user (triples are already user-major sorted).
  m.by_user_offsets_.assign(static_cast<size_t>(num_users_) + 1, 0);
  m.by_user_entries_.reserve(triples_.size());
  for (const RatingTriple& t : triples_) {
    m.by_user_offsets_[static_cast<size_t>(t.user) + 1]++;
  }
  for (size_t u = 0; u < static_cast<size_t>(num_users_); ++u) {
    m.by_user_offsets_[u + 1] += m.by_user_offsets_[u];
  }
  for (const RatingTriple& t : triples_) {
    m.by_user_entries_.push_back({t.item, t.value});
  }

  // CSR by item via counting sort on item id (stable, preserves user order).
  m.by_item_offsets_.assign(static_cast<size_t>(num_items_) + 1, 0);
  for (const RatingTriple& t : triples_) {
    m.by_item_offsets_[static_cast<size_t>(t.item) + 1]++;
  }
  for (size_t i = 0; i < static_cast<size_t>(num_items_); ++i) {
    m.by_item_offsets_[i + 1] += m.by_item_offsets_[i];
  }
  m.by_item_entries_.resize(triples_.size());
  {
    std::vector<int64_t> cursor(m.by_item_offsets_.begin(),
                                m.by_item_offsets_.end() - 1);
    for (const RatingTriple& t : triples_) {
      m.by_item_entries_[static_cast<size_t>(
          cursor[static_cast<size_t>(t.item)]++)] = {t.user, t.value};
    }
  }

  // Per-user means (µ_u of Eq. 2).
  m.user_means_.assign(static_cast<size_t>(num_users_), 0.0);
  for (UserId u = 0; u < num_users_; ++u) {
    const auto row = m.ItemsRatedBy(u);
    if (row.empty()) continue;
    double sum = 0.0;
    for (const ItemRating& entry : row) sum += entry.value;
    m.user_means_[static_cast<size_t>(u)] = sum / static_cast<double>(row.size());
  }

  triples_.clear();
  num_users_ = 0;
  num_items_ = 0;
  return m;
}

}  // namespace fairrec
