#include "ratings/rating_matrix.h"

#include <algorithm>
#include <string>

#include "common/logging.h"

namespace fairrec {

double RatingMatrix::Density() const {
  const double cells = static_cast<double>(num_users_) * num_items_;
  return cells == 0.0 ? 0.0 : static_cast<double>(num_ratings()) / cells;
}

std::span<const ItemRating> RatingMatrix::ItemsRatedBy(UserId u) const {
  FAIRREC_DCHECK(IsValidUser(u));
  const auto begin = static_cast<size_t>(by_user_offsets_[static_cast<size_t>(u)]);
  const auto end = static_cast<size_t>(by_user_offsets_[static_cast<size_t>(u) + 1]);
  return {by_user_entries_.data() + begin, end - begin};
}

std::span<const UserRating> RatingMatrix::UsersWhoRated(ItemId i) const {
  FAIRREC_DCHECK(IsValidItem(i));
  const auto begin = static_cast<size_t>(by_item_offsets_[static_cast<size_t>(i)]);
  const auto end = static_cast<size_t>(by_item_offsets_[static_cast<size_t>(i) + 1]);
  return {by_item_entries_.data() + begin, end - begin};
}

std::span<const UserRating> RatingMatrix::UsersWhoRatedInRange(
    ItemId i, UserId first, UserId last) const {
  const auto column = UsersWhoRated(i);
  const auto user_less = [](const UserRating& entry, UserId target) {
    return entry.user < target;
  };
  const auto begin = std::lower_bound(column.begin(), column.end(), first, user_less);
  const auto end = std::lower_bound(begin, column.end(), last, user_less);
  return {begin, end};
}

std::optional<Rating> RatingMatrix::GetRating(UserId u, ItemId i) const {
  if (!IsValidUser(u) || !IsValidItem(i)) return std::nullopt;
  const auto row = ItemsRatedBy(u);
  const auto it = std::lower_bound(
      row.begin(), row.end(), i,
      [](const ItemRating& entry, ItemId target) { return entry.item < target; });
  if (it == row.end() || it->item != i) return std::nullopt;
  return it->value;
}

double RatingMatrix::UserMean(UserId u) const {
  FAIRREC_DCHECK(IsValidUser(u));
  return user_means_[static_cast<size_t>(u)];
}

int32_t RatingMatrix::UserDegree(UserId u) const {
  FAIRREC_DCHECK(IsValidUser(u));
  return static_cast<int32_t>(by_user_offsets_[static_cast<size_t>(u) + 1] -
                              by_user_offsets_[static_cast<size_t>(u)]);
}

int32_t RatingMatrix::ItemDegree(ItemId i) const {
  FAIRREC_DCHECK(IsValidItem(i));
  return static_cast<int32_t>(by_item_offsets_[static_cast<size_t>(i) + 1] -
                              by_item_offsets_[static_cast<size_t>(i)]);
}

std::vector<ItemId> RatingMatrix::ItemsUnratedByAll(const Group& group) const {
  std::vector<bool> rated(static_cast<size_t>(num_items_), false);
  for (UserId u : group) {
    if (!IsValidUser(u)) continue;
    for (const ItemRating& entry : ItemsRatedBy(u)) {
      rated[static_cast<size_t>(entry.item)] = true;
    }
  }
  std::vector<ItemId> out;
  for (ItemId i = 0; i < num_items_; ++i) {
    if (!rated[static_cast<size_t>(i)]) out.push_back(i);
  }
  return out;
}

std::vector<ItemId> RatingMatrix::ItemsUnratedBy(UserId u) const {
  return ItemsUnratedByAll(Group{u});
}

std::vector<RatingTriple> RatingMatrix::ToTriples() const {
  std::vector<RatingTriple> out;
  out.reserve(static_cast<size_t>(num_ratings()));
  for (UserId u = 0; u < num_users_; ++u) {
    for (const ItemRating& entry : ItemsRatedBy(u)) {
      out.push_back({u, entry.item, entry.value});
    }
  }
  return out;
}

RatingMatrixBuilder& RatingMatrixBuilder::Reserve(int32_t num_users,
                                                  int32_t num_items) {
  num_users_ = std::max(num_users_, num_users);
  num_items_ = std::max(num_items_, num_items);
  return *this;
}

RatingMatrixBuilder& RatingMatrixBuilder::allow_any_scale(bool allow) {
  allow_any_scale_ = allow;
  return *this;
}

Status RatingMatrixBuilder::Add(UserId user, ItemId item, Rating value) {
  if (user < 0) {
    return Status::InvalidArgument("negative user id: " + std::to_string(user));
  }
  if (item < 0) {
    return Status::InvalidArgument("negative item id: " + std::to_string(item));
  }
  if (!allow_any_scale_ && !IsValidRating(value)) {
    return Status::InvalidArgument("rating outside [1,5]: " +
                                   std::to_string(value));
  }
  triples_.push_back({user, item, value});
  num_users_ = std::max(num_users_, user + 1);
  num_items_ = std::max(num_items_, item + 1);
  return Status::OK();
}

Status RatingMatrixBuilder::AddAll(const std::vector<RatingTriple>& triples) {
  for (const RatingTriple& t : triples) {
    FAIRREC_RETURN_NOT_OK(Add(t.user, t.item, t.value));
  }
  return Status::OK();
}

Result<RatingMatrix> RatingMatrixBuilder::Build() {
  std::sort(triples_.begin(), triples_.end(),
            [](const RatingTriple& a, const RatingTriple& b) {
              return a.user != b.user ? a.user < b.user : a.item < b.item;
            });
  for (size_t k = 1; k < triples_.size(); ++k) {
    if (triples_[k].user == triples_[k - 1].user &&
        triples_[k].item == triples_[k - 1].item) {
      return Status::AlreadyExists(
          "duplicate rating for user " + std::to_string(triples_[k].user) +
          ", item " + std::to_string(triples_[k].item));
    }
  }

  RatingMatrix m;
  m.num_users_ = num_users_;
  m.num_items_ = num_items_;

  // CSR by user (triples are already user-major sorted).
  m.by_user_offsets_.assign(static_cast<size_t>(num_users_) + 1, 0);
  m.by_user_entries_.reserve(triples_.size());
  for (const RatingTriple& t : triples_) {
    m.by_user_offsets_[static_cast<size_t>(t.user) + 1]++;
  }
  for (size_t u = 0; u < static_cast<size_t>(num_users_); ++u) {
    m.by_user_offsets_[u + 1] += m.by_user_offsets_[u];
  }
  for (const RatingTriple& t : triples_) {
    m.by_user_entries_.push_back({t.item, t.value});
  }

  // CSR by item via counting sort on item id (stable, preserves user order).
  m.by_item_offsets_.assign(static_cast<size_t>(num_items_) + 1, 0);
  for (const RatingTriple& t : triples_) {
    m.by_item_offsets_[static_cast<size_t>(t.item) + 1]++;
  }
  for (size_t i = 0; i < static_cast<size_t>(num_items_); ++i) {
    m.by_item_offsets_[i + 1] += m.by_item_offsets_[i];
  }
  m.by_item_entries_.resize(triples_.size());
  {
    std::vector<int64_t> cursor(m.by_item_offsets_.begin(),
                                m.by_item_offsets_.end() - 1);
    for (const RatingTriple& t : triples_) {
      m.by_item_entries_[static_cast<size_t>(
          cursor[static_cast<size_t>(t.item)]++)] = {t.user, t.value};
    }
  }

  // Per-user means (µ_u of Eq. 2).
  m.user_means_.assign(static_cast<size_t>(num_users_), 0.0);
  for (UserId u = 0; u < num_users_; ++u) {
    const auto row = m.ItemsRatedBy(u);
    if (row.empty()) continue;
    double sum = 0.0;
    for (const ItemRating& entry : row) sum += entry.value;
    m.user_means_[static_cast<size_t>(u)] = sum / static_cast<double>(row.size());
  }

  triples_.clear();
  num_users_ = 0;
  num_items_ = 0;
  return m;
}

}  // namespace fairrec
