#ifndef FAIRREC_MF_MATRIX_FACTORIZATION_H_
#define FAIRREC_MF_MATRIX_FACTORIZATION_H_

#include <cstdint>
#include <vector>

#include "cf/recommender.h"
#include "common/result.h"
#include "ratings/rating_matrix.h"
#include "ratings/types.h"

namespace fairrec {

/// Hyperparameters for the SGD matrix-factorization trainer.
struct MfConfig {
  int32_t num_factors = 16;
  int32_t num_epochs = 30;
  double learning_rate = 0.01;
  double regularization = 0.05;
  /// Factor entries initialized uniformly in [-init_scale, init_scale].
  double init_scale = 0.1;
  /// Learn per-user and per-item bias terms in addition to the global mean.
  bool use_biases = true;
  /// Reshuffle the training triples before every epoch.
  bool shuffle_each_epoch = true;
  uint64_t seed = 17;
};

/// Biased matrix factorization trained with plain SGD:
///
///   r̂(u, i) = µ + b_u + b_i + p_u · q_i
///
/// This is the "machine learning approaches for recommending ... useful
/// information" the paper leaves as future work (§VIII), implemented so it
/// can slot into the same group-recommendation flow as the Eq. 1 estimator:
/// RelevanceForGroup() produces MemberRelevance tables consumable by
/// GroupContext::Build, and the ablation benches compare held-out accuracy
/// of the two estimators.
class MatrixFactorizationModel {
 public:
  /// Trains on every rating in `matrix`. If `epoch_rmse` is non-null it
  /// receives the train-set RMSE after each epoch (monitoring/tests).
  /// Fails on an empty matrix or non-positive hyperparameters.
  static Result<MatrixFactorizationModel> Train(
      const RatingMatrix& matrix, const MfConfig& config = {},
      std::vector<double>* epoch_rmse = nullptr);

  /// r̂(u, i), clamped to the paper's [1, 5] rating scale. Ids outside the
  /// training grid predict the global mean (clamped).
  double Predict(UserId u, ItemId i) const;

  /// Unclamped model output (diagnostics).
  double PredictRaw(UserId u, ItemId i) const;

  /// Per-member relevance over the items unrated by every group member —
  /// the MF counterpart of cf::Recommender::RelevanceForGroup. MF predicts
  /// every cell, so peers are not involved and `peers` is left empty.
  Result<std::vector<MemberRelevance>> RelevanceForGroup(
      const RatingMatrix& matrix, const Group& group, int32_t top_k) const;

  int32_t num_users() const { return num_users_; }
  int32_t num_items() const { return num_items_; }
  int32_t num_factors() const { return config_.num_factors; }
  double global_mean() const { return global_mean_; }
  const MfConfig& config() const { return config_; }

 private:
  MatrixFactorizationModel() = default;

  std::span<const double> UserFactors(UserId u) const;
  std::span<const double> ItemFactors(ItemId i) const;

  MfConfig config_;
  int32_t num_users_ = 0;
  int32_t num_items_ = 0;
  double global_mean_ = 0.0;
  std::vector<double> user_factors_;  // num_users x num_factors, row-major
  std::vector<double> item_factors_;  // num_items x num_factors, row-major
  std::vector<double> user_bias_;
  std::vector<double> item_bias_;
};

}  // namespace fairrec

#endif  // FAIRREC_MF_MATRIX_FACTORIZATION_H_
