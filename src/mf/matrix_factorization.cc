#include "mf/matrix_factorization.h"

#include <algorithm>
#include <cmath>
#include <span>
#include <string>
#include <unordered_set>

#include "cf/top_k.h"
#include "common/logging.h"
#include "common/random.h"

namespace fairrec {

std::span<const double> MatrixFactorizationModel::UserFactors(UserId u) const {
  const auto k = static_cast<size_t>(config_.num_factors);
  return {user_factors_.data() + static_cast<size_t>(u) * k, k};
}

std::span<const double> MatrixFactorizationModel::ItemFactors(ItemId i) const {
  const auto k = static_cast<size_t>(config_.num_factors);
  return {item_factors_.data() + static_cast<size_t>(i) * k, k};
}

Result<MatrixFactorizationModel> MatrixFactorizationModel::Train(
    const RatingMatrix& matrix, const MfConfig& config,
    std::vector<double>* epoch_rmse) {
  if (matrix.num_ratings() == 0) {
    return Status::InvalidArgument("cannot train on an empty rating matrix");
  }
  if (config.num_factors <= 0) {
    return Status::InvalidArgument("num_factors must be positive");
  }
  if (config.num_epochs <= 0) {
    return Status::InvalidArgument("num_epochs must be positive");
  }
  if (config.learning_rate <= 0.0) {
    return Status::InvalidArgument("learning_rate must be positive");
  }
  if (config.regularization < 0.0) {
    return Status::InvalidArgument("regularization must be non-negative");
  }

  MatrixFactorizationModel model;
  model.config_ = config;
  model.num_users_ = matrix.num_users();
  model.num_items_ = matrix.num_items();

  std::vector<RatingTriple> triples = matrix.ToTriples();
  double sum = 0.0;
  for (const RatingTriple& t : triples) sum += t.value;
  model.global_mean_ = sum / static_cast<double>(triples.size());

  Rng rng(config.seed);
  const auto k = static_cast<size_t>(config.num_factors);
  auto init = [&rng, &config](std::vector<double>& v, size_t n) {
    v.resize(n);
    for (double& x : v) x = rng.UniformReal(-config.init_scale, config.init_scale);
  };
  init(model.user_factors_, static_cast<size_t>(model.num_users_) * k);
  init(model.item_factors_, static_cast<size_t>(model.num_items_) * k);
  model.user_bias_.assign(static_cast<size_t>(model.num_users_), 0.0);
  model.item_bias_.assign(static_cast<size_t>(model.num_items_), 0.0);

  const double lr = config.learning_rate;
  const double reg = config.regularization;
  for (int32_t epoch = 0; epoch < config.num_epochs; ++epoch) {
    if (config.shuffle_each_epoch) rng.Shuffle(triples);
    double squared_error = 0.0;
    for (const RatingTriple& t : triples) {
      double* p = model.user_factors_.data() + static_cast<size_t>(t.user) * k;
      double* q = model.item_factors_.data() + static_cast<size_t>(t.item) * k;
      double& bu = model.user_bias_[static_cast<size_t>(t.user)];
      double& bi = model.item_bias_[static_cast<size_t>(t.item)];

      double dot = 0.0;
      for (size_t f = 0; f < k; ++f) dot += p[f] * q[f];
      const double prediction = model.global_mean_ + bu + bi + dot;
      const double error = t.value - prediction;
      squared_error += error * error;

      if (config.use_biases) {
        bu += lr * (error - reg * bu);
        bi += lr * (error - reg * bi);
      }
      for (size_t f = 0; f < k; ++f) {
        const double pf = p[f];
        p[f] += lr * (error * q[f] - reg * pf);
        q[f] += lr * (error * pf - reg * q[f]);
      }
    }
    if (epoch_rmse != nullptr) {
      epoch_rmse->push_back(
          std::sqrt(squared_error / static_cast<double>(triples.size())));
    }
  }
  return model;
}

double MatrixFactorizationModel::PredictRaw(UserId u, ItemId i) const {
  if (u < 0 || u >= num_users_ || i < 0 || i >= num_items_) {
    return global_mean_;
  }
  double dot = 0.0;
  const auto p = UserFactors(u);
  const auto q = ItemFactors(i);
  for (size_t f = 0; f < p.size(); ++f) dot += p[f] * q[f];
  return global_mean_ + user_bias_[static_cast<size_t>(u)] +
         item_bias_[static_cast<size_t>(i)] + dot;
}

double MatrixFactorizationModel::Predict(UserId u, ItemId i) const {
  return std::clamp(PredictRaw(u, i), kMinRating, kMaxRating);
}

Result<std::vector<MemberRelevance>> MatrixFactorizationModel::RelevanceForGroup(
    const RatingMatrix& matrix, const Group& group, int32_t top_k) const {
  if (group.empty()) {
    return Status::InvalidArgument("group must not be empty");
  }
  if (top_k <= 0) {
    return Status::InvalidArgument("top_k must be positive");
  }
  std::unordered_set<UserId> seen;
  for (const UserId u : group) {
    if (!matrix.IsValidUser(u)) {
      return Status::InvalidArgument("unknown user id in group: " +
                                     std::to_string(u));
    }
    if (!seen.insert(u).second) {
      return Status::InvalidArgument("duplicate user id in group: " +
                                     std::to_string(u));
    }
  }
  const std::vector<ItemId> candidates = matrix.ItemsUnratedByAll(group);
  std::vector<MemberRelevance> out;
  out.reserve(group.size());
  for (const UserId u : group) {
    MemberRelevance member;
    member.user = u;
    member.relevance.reserve(candidates.size());
    for (const ItemId i : candidates) {
      member.relevance.push_back({i, Predict(u, i)});
    }
    member.top_k = SelectTopK(member.relevance, top_k);
    out.push_back(std::move(member));
  }
  return out;
}

}  // namespace fairrec
