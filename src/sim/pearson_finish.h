#ifndef FAIRREC_SIM_PEARSON_FINISH_H_
#define FAIRREC_SIM_PEARSON_FINISH_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <utility>

#include "sim/rating_similarity.h"

namespace fairrec {

/// Relative threshold below which a cancelled variance is treated as zero.
/// The raw-moment expansion of sum((r - mean)^2) cancels a value of the order
/// of sum(r^2) down to the true variance; when the result is this small
/// relative to the cancelled magnitude it is rounding noise from an exactly
/// constant row (e.g. every co-rating 3.1), not a real variance, and must
/// yield 0 like FinishPearson's centered form does. On the paper's 1..5
/// scale the smallest genuine nonzero variance is far above this threshold.
constexpr double kPearsonRelativeVarianceEpsilon = 1e-12;

/// The six sufficient statistics of one user pair's co-ratings:
///
///   n, sum(r_a), sum(r_b), sum(r_a^2), sum(r_b^2), sum(r_a * r_b)
///
/// This is the unit of accumulation shared by the in-memory
/// PairwiseSimilarityEngine (one PairMoments per pair per tile) and the
/// MapReduce similarity pipeline (one PairMoments per pair per item shard,
/// merged by the Job 2 reducers). Moments are additive, so a pair's
/// statistics can be accumulated anywhere co-ratings live and summed later —
/// the property that lets the sharded flow ship 48-byte records instead of
/// raw rating pairs. On integer rating scales (the paper's 1..5) every
/// moment is exactly representable, so merge order does not affect the sums
/// and any sharding finishes to bit-identical similarities.
struct PairMoments {
  double sum_a = 0.0;
  double sum_b = 0.0;
  double sum_aa = 0.0;
  double sum_bb = 0.0;
  double sum_ab = 0.0;
  int32_t n = 0;

  /// Folds one co-rating (r_a, r_b) into the statistics.
  void Add(double ra, double rb) {
    sum_a += ra;
    sum_b += rb;
    sum_aa += ra * ra;
    sum_bb += rb * rb;
    sum_ab += ra * rb;
    n += 1;
  }

  /// Removes one co-rating (r_a, r_b) — the inverse of Add, used when an
  /// updated rating supersedes the value a previous accumulation folded in.
  /// On integer rating scales every moment is exactly representable, so a
  /// Remove exactly cancels the matching Add regardless of what was folded
  /// in between.
  void Remove(double ra, double rb) {
    sum_a -= ra;
    sum_b -= rb;
    sum_aa -= ra * ra;
    sum_bb -= rb * rb;
    sum_ab -= ra * rb;
    n -= 1;
  }

  /// Sums another pair's worth of statistics into this one (the reducer-side
  /// merge of per-shard partials).
  void Merge(const PairMoments& other) {
    sum_a += other.sum_a;
    sum_b += other.sum_b;
    sum_aa += other.sum_aa;
    sum_bb += other.sum_bb;
    sum_ab += other.sum_ab;
    n += other.n;
  }

  /// The same statistics with the a/b roles exchanged. Pearson is symmetric
  /// in exact arithmetic but not bit-for-bit in floating point, so callers
  /// that must match the engine (which always accumulates with a < b)
  /// canonicalize orientation before finishing.
  PairMoments Swapped() const {
    return {sum_b, sum_a, sum_bb, sum_aa, sum_ab, n};
  }

  friend bool operator==(const PairMoments&, const PairMoments&) = default;
};

/// The overlap guard of the moment finish: true when pair statistics with
/// `n` co-ratings must finish to 0 without evaluating Eq. 2. n == 0 (no
/// co-ratings) is always "no evidence", even when min_overlap <= 0 disables
/// the guard. Shared by the scalar finish below, its batched counterpart
/// (sim/pearson_finish_batch.h), and callers that skip staging guarded
/// pairs into a batch.
inline bool PearsonOverlapGuardFails(int32_t n,
                                     const RatingSimilarityOptions& options) {
  return n < options.min_overlap || n == 0;
}

/// Finishes Eq. 2 from raw sufficient statistics — the single finish
/// implementation behind both the engine's tile sweep and the MapReduce
/// Job 2 reducers, so the two paths agree bit-for-bit on identical moments.
/// The batched kernel (sim/pearson_finish_batch.h) reproduces this function
/// bit-for-bit, lane by lane; any edit to the arithmetic below must be
/// mirrored there (the batch parity suite fails otherwise).
///
/// `global_mean_a` / `global_mean_b` are the users' means over their full
/// rating rows (Eq. 2 as printed); they are ignored under
/// options.intersection_means, where the means come from the moments
/// themselves. Degenerate cases (overlap below min_overlap, no co-ratings,
/// zero variance after the relative-epsilon guard) return 0 exactly, like
/// FinishPearson's centered form.
inline double FinishPearsonFromMoments(const PairMoments& stats,
                                       double global_mean_a,
                                       double global_mean_b,
                                       const RatingSimilarityOptions& options) {
  const int32_t n = stats.n;
  // Overlap guard first, then the undefined-variance guard.
  if (PearsonOverlapGuardFails(n, options)) return 0.0;

  double mean_a;
  double mean_b;
  if (options.intersection_means) {
    mean_a = stats.sum_a / static_cast<double>(n);
    mean_b = stats.sum_b / static_cast<double>(n);
  } else {
    mean_a = global_mean_a;
    mean_b = global_mean_b;
  }

  // Expanded centered sums: sum((ra - ma)(rb - mb)) etc. in raw moments.
  const double nn = static_cast<double>(n);
  const double num = stats.sum_ab - mean_b * stats.sum_a -
                     mean_a * stats.sum_b + nn * mean_a * mean_b;
  const double den_a =
      stats.sum_aa - 2.0 * mean_a * stats.sum_a + nn * mean_a * mean_a;
  const double den_b =
      stats.sum_bb - 2.0 * mean_b * stats.sum_b + nn * mean_b * mean_b;
  // <= rather than ==: the expansion can round an exactly-zero variance to a
  // tiny value of either sign, which must not reach sqrt. The relative guard
  // catches constant rows whose values are not exactly representable, where
  // the cancellation leaves positive rounding noise instead of 0.
  const double scale_a = stats.sum_aa + nn * mean_a * mean_a;
  const double scale_b = stats.sum_bb + nn * mean_b * mean_b;
  if (den_a <= kPearsonRelativeVarianceEpsilon * scale_a ||
      den_b <= kPearsonRelativeVarianceEpsilon * scale_b) {
    return 0.0;
  }
  double r = num / (std::sqrt(den_a) * std::sqrt(den_b));
  r = std::clamp(r, -1.0, 1.0);
  return options.shift_to_unit_interval ? (r + 1.0) / 2.0 : r;
}

}  // namespace fairrec

#endif  // FAIRREC_SIM_PEARSON_FINISH_H_
