#ifndef FAIRREC_SIM_PEARSON_FINISH_BATCH_H_
#define FAIRREC_SIM_PEARSON_FINISH_BATCH_H_

#include <cstdint>

#include "sim/pearson_finish.h"
#include "sim/rating_similarity.h"

namespace fairrec {

/// Batched, vectorizable counterpart of FinishPearsonFromMoments.
///
/// Every similarity artifact the system serves funnels through the O(U^2)
/// per-pair finish: the packed triangle, the PeerIndex top-k lists, the
/// incremental re-finish, and the MapReduce Job 2 reducers. This kernel cuts
/// that constant by finishing many staged pairs at once — the overlap and
/// zero-variance guards become a branch-free mask pass and the arithmetic
/// runs four lanes per iteration on AVX2 hosts.
///
/// Bit-parity contract: FinishPearsonBatch reproduces
/// FinishPearsonFromMoments *bit-for-bit* on every lane, for every option
/// combination (min_overlap, intersection_means, shift_to_unit_interval, the
/// kPearsonRelativeVarianceEpsilon cancellation guard). Both the AVX2 path
/// and the portable fallback execute the exact operation sequence of the
/// scalar expansion — every multiply, subtract, divide, and sqrt is a single
/// correctly-rounded IEEE-754 operation in both scalar and packed form, so
/// evaluating the same expression tree yields the same bits. The one thing
/// that would break this is floating-point contraction: fusing a*b + c into
/// an FMA skips the intermediate rounding and changes the result, so the
/// build disables contraction project-wide (`-ffp-contract=off` — the
/// scalar finish is header-inline and compiles into every TU, so the flag
/// must cover them all) and the AVX2 kernel uses no FMA intrinsics. The
/// parity suite
/// (tests/sim/pearson_finish_batch_test.cc) asserts bit equality of both
/// kernels against the scalar finish; artifacts built through the batch
/// (triangle, peer index, incremental patches, sharded Job 2) therefore stay
/// byte-identical to their scalar-finished counterparts.
///
/// Staging buffer: per-lane sufficient statistics plus the two per-lane
/// global means (ignored under intersection_means, where the kernel derives
/// means from the sums). Lanes are staged as whole PairMoments records —
/// Push is a handful of wide stores, which matters because every caller
/// stages pair-by-pair from scalar control flow — and the AVX2 kernel
/// transposes four records at a time into structure-of-arrays registers
/// with shuffles that hide under the divide/sqrt latency.
///
/// Callers that finish a stream of pairs should not drive this directly —
/// PearsonFinishStream (below) owns the stage/flush lifecycle, including
/// the ragged-tail flush.
class FinishBatch {
 public:
  /// Lanes per flush. 128 keeps the whole buffer (8 arrays x 1 KiB) inside
  /// L1 while amortizing the per-flush loop overhead; must be a multiple of
  /// the AVX2 lane width (4).
  static constexpr int32_t kCapacity = 128;

  int32_t size() const { return size_; }
  bool full() const { return size_ == kCapacity; }
  bool empty() const { return size_ == 0; }
  void Clear() { size_ = 0; }

  /// The two global means of one lane, staged as a single 16-byte record
  /// (one wide store instead of two scattered ones).
  struct Means {
    double a;
    double b;
  };

  /// Stages one pair's statistics and the two users' global means into the
  /// next lane. Precondition: !full(). Returns the lane index so callers
  /// can keep per-lane metadata (pair ids, output offsets) alongside.
  int32_t Push(const PairMoments& m, double global_mean_a,
               double global_mean_b) {
    const int32_t lane = size_++;
    moments[lane] = m;
    means[lane] = {global_mean_a, global_mean_b};
    return lane;
  }

  // The lanes, public for the kernels (and the parity tests).
  alignas(32) PairMoments moments[kCapacity];
  alignas(32) Means means[kCapacity];

 private:
  int32_t size_ = 0;
};

/// Finishes every staged lane: out[i] receives the Eq. 2 similarity of lane
/// i for i in [0, batch.size()). Dispatches once per process (cpuid) to the
/// AVX2 kernel when it was compiled in (FAIRREC_ENABLE_AVX2) and the host
/// supports it, else to the portable scalar kernel; both produce bits
/// identical to FinishPearsonFromMoments per lane. `out` must hold at least
/// batch.size() entries. Does not clear the batch.
void FinishPearsonBatch(const FinishBatch& batch,
                        const RatingSimilarityOptions& options, double* out);

/// Owns the stage -> flush lifecycle every batch caller otherwise
/// hand-rolls: the batch, a parallel per-lane metadata array (pair ids,
/// output slots — whatever the caller needs back per similarity), and the
/// flush that finishes full batches through FinishPearsonBatch and hands
/// each lane to `consume(meta, sim)`. The ragged-tail flush is structural:
/// the destructor flushes whatever is still staged, so a caller cannot
/// silently drop the tail (Flush() may also be called explicitly, e.g.
/// before reading results; flushing an empty stream is a no-op). Construct
/// via MakePearsonFinishStream<Meta>(options, consume).
template <typename Meta, typename Consume>
class PearsonFinishStream {
 public:
  PearsonFinishStream(const RatingSimilarityOptions& options, Consume consume)
      : options_(options), consume_(std::move(consume)) {}
  PearsonFinishStream(const PearsonFinishStream&) = delete;
  PearsonFinishStream& operator=(const PearsonFinishStream&) = delete;
  ~PearsonFinishStream() { Flush(); }

  /// Stages one pair plus the metadata to return with its similarity;
  /// flushes automatically when the batch fills.
  void Stage(const PairMoments& moments, double mean_a, double mean_b,
             Meta meta) {
    const int32_t lane = batch_.Push(moments, mean_a, mean_b);
    meta_[lane] = meta;
    if (batch_.full()) Flush();
  }

  /// Finishes every staged lane and delivers (meta, sim) in staging order.
  void Flush() {
    if (batch_.empty()) return;
    double out[FinishBatch::kCapacity];
    FinishPearsonBatch(batch_, options_, out);
    for (int32_t i = 0; i < batch_.size(); ++i) consume_(meta_[i], out[i]);
    batch_.Clear();
  }

 private:
  RatingSimilarityOptions options_;
  Consume consume_;
  FinishBatch batch_;
  Meta meta_[FinishBatch::kCapacity];
};

/// Deduction helper: the metadata type is explicit, the consumer deduced.
template <typename Meta, typename Consume>
PearsonFinishStream<Meta, Consume> MakePearsonFinishStream(
    const RatingSimilarityOptions& options, Consume consume) {
  return {options, std::move(consume)};
}

/// Name of the kernel FinishPearsonBatch dispatches to on this host:
/// "avx2" or "scalar".
const char* FinishPearsonBatchKernel();

namespace internal {

/// The portable kernel: an unrolled scalar loop executing the exact
/// operation sequence of the vector path (and of
/// FinishPearsonFromMoments). Public-in-internal so the bench and the
/// parity tests can pin a specific kernel regardless of dispatch.
void FinishPearsonBatchScalar(const FinishBatch& batch,
                              const RatingSimilarityOptions& options,
                              double* out);

/// True when the AVX2 kernel is compiled in and the host cpuid reports
/// AVX2. The dispatcher and the tests/bench share this one predicate.
bool FinishPearsonBatchHasAvx2();

#if defined(FAIRREC_ENABLE_AVX2)
/// The AVX2 kernel (4 lanes per iteration, no FMA contraction). Only call
/// when FinishPearsonBatchHasAvx2() is true.
void FinishPearsonBatchAvx2(const FinishBatch& batch,
                            const RatingSimilarityOptions& options,
                            double* out);
#endif

/// Finishes one staged lane with the shared scalar operation sequence —
/// the single definition both kernels use (the scalar kernel for every
/// lane, the AVX2 kernel for the ragged tail after its 4-wide groups).
///
/// The expression tree below is FinishPearsonFromMoments's, term for term;
/// the guards are evaluated as masks instead of early returns so the
/// sequence matches the vector path. std::max(den, 0.0) before sqrt only
/// rewrites lanes the variance mask already forces to 0 (a passing lane has
/// den > eps * scale >= 0), keeping negative rounding noise out of sqrt.
inline double FinishPearsonLane(const FinishBatch& batch, int32_t lane,
                                const RatingSimilarityOptions& options) {
  const PairMoments& m = batch.moments[lane];
  const double nn = static_cast<double>(m.n);
  const bool overlap_ok =
      nn >= static_cast<double>(options.min_overlap) && nn != 0.0;
  const double mean_a =
      options.intersection_means ? m.sum_a / nn : batch.means[lane].a;
  const double mean_b =
      options.intersection_means ? m.sum_b / nn : batch.means[lane].b;
  const double n_mean_a = nn * mean_a;
  const double n_mean_b = nn * mean_b;
  const double n_mean_aa = n_mean_a * mean_a;
  const double n_mean_bb = n_mean_b * mean_b;
  const double num =
      m.sum_ab - mean_b * m.sum_a - mean_a * m.sum_b + n_mean_a * mean_b;
  const double den_a = m.sum_aa - 2.0 * mean_a * m.sum_a + n_mean_aa;
  const double den_b = m.sum_bb - 2.0 * mean_b * m.sum_b + n_mean_bb;
  const double scale_a = m.sum_aa + n_mean_aa;
  const double scale_b = m.sum_bb + n_mean_bb;
  const bool variance_ok =
      den_a > kPearsonRelativeVarianceEpsilon * scale_a &&
      den_b > kPearsonRelativeVarianceEpsilon * scale_b;
  const double sd = std::sqrt(std::max(den_a, 0.0)) *
                    std::sqrt(std::max(den_b, 0.0));
  double r = num / sd;
  r = std::clamp(r, -1.0, 1.0);
  if (options.shift_to_unit_interval) r = (r + 1.0) / 2.0;
  return (overlap_ok && variance_ok) ? r : 0.0;
}

}  // namespace internal

}  // namespace fairrec

#endif  // FAIRREC_SIM_PEARSON_FINISH_BATCH_H_
