#ifndef FAIRREC_SIM_PROFILE_SIMILARITY_H_
#define FAIRREC_SIM_PROFILE_SIMILARITY_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "ontology/ontology.h"
#include "profiles/profile_store.h"
#include "sim/user_similarity.h"
#include "text/sparse_vector.h"
#include "text/tfidf.h"

namespace fairrec {

/// CS(u, u'): cosine similarity between TF-IDF vectors of the users' profiles
/// rendered as documents (§V-B, Eq. 3 with Definition 4 idf).
///
/// The vectorizer is fitted on *all* stored profiles at construction time and
/// every profile vector is precomputed, so Compute() is a sparse dot product.
class ProfileSimilarity final : public UserSimilarity {
 public:
  /// Fits TF-IDF on the store's profiles. `store` and `ontology` are only
  /// read during construction. Fails if the store is empty.
  static Result<std::unique_ptr<ProfileSimilarity>> Create(
      const ProfileStore& store, const Ontology& ontology,
      TfIdfOptions options = {});

  double Compute(UserId a, UserId b) const override;
  std::string name() const override { return "tfidf-cosine"; }

  /// The fitted vectorizer (for diagnostics and tests).
  const TfIdfVectorizer& vectorizer() const { return vectorizer_; }

  /// The precomputed vector for a user (zero vector for unknown users).
  const SparseVector& VectorOf(UserId u) const;

 private:
  ProfileSimilarity() = default;

  TfIdfVectorizer vectorizer_;
  std::vector<SparseVector> vectors_;  // indexed by user id
  SparseVector empty_;
};

}  // namespace fairrec

#endif  // FAIRREC_SIM_PROFILE_SIMILARITY_H_
