#include "sim/pearson_finish_batch.h"

namespace fairrec {

namespace internal {

void FinishPearsonBatchScalar(const FinishBatch& batch,
                              const RatingSimilarityOptions& options,
                              double* out) {
  const int32_t size = batch.size();
  // Unrolled by four to mirror the AVX2 kernel's lane groups: the four
  // chains are independent, so the divide/sqrt latencies overlap even
  // without packed instructions.
  int32_t i = 0;
  for (; i + 4 <= size; i += 4) {
    out[i] = FinishPearsonLane(batch, i, options);
    out[i + 1] = FinishPearsonLane(batch, i + 1, options);
    out[i + 2] = FinishPearsonLane(batch, i + 2, options);
    out[i + 3] = FinishPearsonLane(batch, i + 3, options);
  }
  for (; i < size; ++i) {
    out[i] = FinishPearsonLane(batch, i, options);
  }
}

bool FinishPearsonBatchHasAvx2() {
#if defined(FAIRREC_ENABLE_AVX2) && (defined(__x86_64__) || defined(__i386__))
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

}  // namespace internal

namespace {

using FinishKernelFn = void (*)(const FinishBatch&,
                                const RatingSimilarityOptions&, double*);

/// Resolved once per process: the compiled-in AVX2 kernel when the host
/// cpuid reports AVX2, else the portable scalar kernel. Both are
/// bit-identical, so the choice is invisible to everything but the clock.
FinishKernelFn ResolveFinishKernel() {
#if defined(FAIRREC_ENABLE_AVX2)
  if (internal::FinishPearsonBatchHasAvx2()) {
    return internal::FinishPearsonBatchAvx2;
  }
#endif
  return internal::FinishPearsonBatchScalar;
}

const FinishKernelFn kFinishKernel = ResolveFinishKernel();

}  // namespace

void FinishPearsonBatch(const FinishBatch& batch,
                        const RatingSimilarityOptions& options, double* out) {
  kFinishKernel(batch, options, out);
}

const char* FinishPearsonBatchKernel() {
  return kFinishKernel == internal::FinishPearsonBatchScalar ? "scalar"
                                                             : "avx2";
}

}  // namespace fairrec
