#ifndef FAIRREC_SIM_DURABLE_PEER_GRAPH_H_
#define FAIRREC_SIM_DURABLE_PEER_GRAPH_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "common/result.h"
#include "ratings/delta_journal.h"
#include "ratings/rating_delta.h"
#include "ratings/rating_matrix.h"
#include "sim/incremental_peer_graph.h"

namespace fairrec {

/// Failpoint sites of the durable facade (see common/failpoint.h).
/// "apply.after_journal" dies between the WAL append and the in-memory
/// apply — the batch is durable but unapplied, and recovery must replay it.
/// "checkpoint.begin" dies before the checkpoint write starts (the old
/// checkpoint plus the full journal remain the truth). "checkpoint.
/// before_truncate" dies after the new checkpoint is durable but before the
/// journal is cleared — recovery must skip journal records the checkpoint
/// already contains.
inline constexpr std::string_view kFailpointDurableApplyAfterJournal =
    "durable.apply.after_journal";
inline constexpr std::string_view kFailpointDurableCheckpointBegin =
    "durable.checkpoint.begin";
inline constexpr std::string_view kFailpointDurableCheckpointBeforeTruncate =
    "durable.checkpoint.before_truncate";

/// Crash-safe wrapper around IncrementalPeerGraph: the write-ahead
/// DeltaJournal plus a checksummed full-state checkpoint, both under `dir`.
///
/// Protocol (docs/durability.md walks the invariants):
///
///   * ApplyDelta appends the batch to the journal — checksummed, fsync'd —
///     *before* the in-memory apply runs. A crash at any instant loses at
///     most work the caller was never told succeeded.
///   * Checkpoint() snapshots matrix + moment store + peer index into one
///     atomic blob container (write temp, fsync, rename, fsync dir), then
///     clears the journal. A crash between the two leaves both the new
///     checkpoint and the stale journal; recovery skips records whose seq
///     the checkpoint already covers.
///   * Open() recovers: load the checkpoint (or seed from the provided
///     matrix when none exists — writing the initial checkpoint before
///     returning), then replay the journal tail in sequence order. Because
///     the incremental engine is deterministic and its patch path is
///     byte-identical to a rebuild on integer rating scales, the recovered
///     state equals the never-crashed state bit for bit.
///
/// Torn journal tails (a crash mid-append) are truncated silently — that is
/// the normal crash signature. Anything else that fails a checksum is
/// DataLoss and never silently skipped.
///
/// Not thread-safe: ApplyDelta / Checkpoint are exclusive, like the
/// underlying graph's ApplyDelta. Served snapshots (graph().index()) remain
/// freely concurrent.
class DurablePeerGraph {
 public:
  /// What Open() found on disk, for observability and the recovery tests.
  struct RecoveryInfo {
    /// False when no checkpoint existed and the graph was seeded fresh.
    bool recovered = false;
    /// The sequence number stored in the loaded checkpoint (0 when seeded).
    uint64_t checkpoint_seq = 0;
    /// Journal records replayed on top of the checkpoint.
    int64_t replayed_batches = 0;
    /// Journal records the checkpoint already covered (a crash landed
    /// between checkpoint write and journal truncation).
    int64_t skipped_batches = 0;
    /// Bytes of torn journal tail truncated away (crash mid-append).
    uint64_t torn_tail_bytes = 0;
  };

  /// Opens the durable state under directory `dir` (created if missing).
  /// With a checkpoint present, `seed` is ignored and the state is
  /// recovered (checkpoint + journal tail). Without one, the graph is
  /// seeded by a full Build on `seed` and the initial checkpoint is written
  /// before Open returns, so a crash at any later instant recovers.
  /// DataLoss when the checkpoint or a complete journal record fails its
  /// integrity checks.
  static Result<DurablePeerGraph> Open(std::string dir, RatingMatrix seed,
                                       IncrementalPeerGraphOptions options);

  DurablePeerGraph(DurablePeerGraph&&) noexcept = default;
  DurablePeerGraph& operator=(DurablePeerGraph&&) noexcept = default;

  /// Journals the batch (fsync'd), then folds it into the in-memory graph.
  /// On an apply failure the journal append is rolled back, so the journal
  /// never replays a batch the state never absorbed. On an injected crash
  /// the in-memory object must be abandoned and Open() run again — exactly
  /// like a process kill.
  Result<DeltaApplyStats> ApplyDelta(const RatingDelta& delta);

  /// Snapshots the full state atomically and clears the journal. Recovery
  /// cost drops to the checkpoint load; the journal restarts empty.
  Status Checkpoint();

  const IncrementalPeerGraph& graph() const { return graph_; }
  /// Mutable access (cost-model injection in tests/benches). Mutating the
  /// graph's *state* outside ApplyDelta would desynchronize the journal.
  IncrementalPeerGraph& graph() { return graph_; }

  /// Sequence number of the last batch applied in memory (journaled batches
  /// that crashed before applying do not count until recovery replays them).
  uint64_t applied_seq() const { return applied_seq_; }

  const RecoveryInfo& recovery_info() const { return recovery_info_; }
  const std::string& dir() const { return dir_; }
  uint64_t journal_bytes() const { return journal_.size_bytes(); }

  static std::string CheckpointPathOf(const std::string& dir);
  static std::string JournalPathOf(const std::string& dir);

 private:
  DurablePeerGraph(std::string dir, IncrementalPeerGraph graph,
                   DeltaJournal journal)
      : dir_(std::move(dir)),
        graph_(std::move(graph)),
        journal_(std::move(journal)) {}

  /// Serializes seq + matrix + store + index into the checkpoint container
  /// and atomically replaces the checkpoint file.
  Status WriteCheckpoint();

  std::string dir_;
  IncrementalPeerGraph graph_;
  DeltaJournal journal_;
  uint64_t applied_seq_ = 0;
  RecoveryInfo recovery_info_;
};

}  // namespace fairrec

#endif  // FAIRREC_SIM_DURABLE_PEER_GRAPH_H_
