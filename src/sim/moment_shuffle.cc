#include "sim/moment_shuffle.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <queue>
#include <utility>

#include "common/blob_io.h"
#include "common/logging.h"
#include "common/run_file.h"

namespace fairrec {

namespace {

/// Wire footprint of one record: a, b, shard, item, n as i32 + five sums as
/// f64. Written field-by-field so struct padding never reaches the runs.
constexpr size_t kRecordWireBytes = sizeof(int32_t) * 5 + sizeof(double) * 5;

/// Records per framed run chunk (~3.7 MiB): big enough to amortize the CRC
/// and fread costs, small enough that a k-way merge holds k modest chunk
/// buffers, not k whole runs.
constexpr size_t kChunkRecords = 64 * 1024;

std::atomic<uint64_t> g_shuffle_sequence{0};

/// The total order of the shuffle: (a, b, shard, item). Keys are unique
/// (a pair co-rates an item at most once; combined records carry disjoint
/// item intervals), so this order is deterministic regardless of Add
/// interleaving or run boundaries.
bool RecordLess(const PairMomentShuffle::Record& x,
                const PairMomentShuffle::Record& y) {
  if (x.a != y.a) return x.a < y.a;
  if (x.b != y.b) return x.b < y.b;
  if (x.shard != y.shard) return x.shard < y.shard;
  return x.item < y.item;
}

void EncodeRecord(const PairMomentShuffle::Record& r, std::string& out) {
  const auto append = [&out](const void* data, size_t bytes) {
    out.append(static_cast<const char*>(data), bytes);
  };
  append(&r.a, sizeof(r.a));
  append(&r.b, sizeof(r.b));
  append(&r.shard, sizeof(r.shard));
  append(&r.item, sizeof(r.item));
  append(&r.moments.n, sizeof(r.moments.n));
  append(&r.moments.sum_a, sizeof(double));
  append(&r.moments.sum_b, sizeof(double));
  append(&r.moments.sum_aa, sizeof(double));
  append(&r.moments.sum_bb, sizeof(double));
  append(&r.moments.sum_ab, sizeof(double));
}

void DecodeRecord(const char* in, PairMomentShuffle::Record& r) {
  const auto read = [&in](void* data, size_t bytes) {
    std::memcpy(data, in, bytes);
    in += bytes;
  };
  read(&r.a, sizeof(r.a));
  read(&r.b, sizeof(r.b));
  read(&r.shard, sizeof(r.shard));
  read(&r.item, sizeof(r.item));
  read(&r.moments.n, sizeof(r.moments.n));
  read(&r.moments.sum_a, sizeof(double));
  read(&r.moments.sum_b, sizeof(double));
  read(&r.moments.sum_aa, sizeof(double));
  read(&r.moments.sum_bb, sizeof(double));
  read(&r.moments.sum_ab, sizeof(double));
}

/// One run's merge cursor: the current record plus a chunk buffer refilled
/// from the run file as it empties.
struct RunCursor {
  RunFileReader reader;
  std::string chunk;
  size_t offset = 0;
  PairMomentShuffle::Record current;
  bool exhausted = false;

  explicit RunCursor(RunFileReader r) : reader(std::move(r)) {}

  Status Advance() {
    if (offset == chunk.size()) {
      bool eof = false;
      FAIRREC_RETURN_NOT_OK(reader.NextChunk(&chunk, &eof));
      offset = 0;
      if (eof || chunk.empty()) {
        exhausted = true;
        return Status::OK();
      }
      if (chunk.size() % kRecordWireBytes != 0) {
        return Status::DataLoss("run chunk is not a whole number of records: " +
                                reader.path());
      }
    }
    DecodeRecord(chunk.data() + offset, current);
    offset += kRecordWireBytes;
    return Status::OK();
  }
};

}  // namespace

Result<PairMomentShuffle> PairMomentShuffle::Create(
    MomentShuffleOptions options) {
  if (options.max_buffer_bytes > 0) {
    if (options.temp_dir.empty()) {
      return Status::InvalidArgument(
          "a bounded shuffle needs a temp_dir to spill runs into");
    }
    FAIRREC_RETURN_NOT_OK(EnsureDirectory(options.temp_dir));
    if (options.max_buffer_bytes < sizeof(Record)) {
      return Status::InvalidArgument(
          "max_buffer_bytes below one record; no buffer can hold that");
    }
  }
  return PairMomentShuffle(
      std::move(options),
      g_shuffle_sequence.fetch_add(1, std::memory_order_relaxed));
}

PairMomentShuffle::~PairMomentShuffle() { RemoveRuns(); }

std::string PairMomentShuffle::RunPath(size_t run_index) const {
  return options_.temp_dir + "/shuffle_" + std::to_string(sequence_) +
         "_run_" + std::to_string(run_index) + ".spill";
}

void PairMomentShuffle::RemoveRuns() {
  for (const std::string& path : runs_) {
    RemovePath(path).ok();  // best-effort temp cleanup
  }
  runs_.clear();
}

Status PairMomentShuffle::Add(UserId a, UserId b, int32_t shard, ItemId item,
                              const PairMoments& moments) {
  FAIRREC_DCHECK(!drained_);
  if (options_.max_buffer_bytes > 0 &&
      (buffer_.size() + 1) * sizeof(Record) > options_.max_buffer_bytes &&
      !buffer_.empty()) {
    FAIRREC_RETURN_NOT_OK(SpillRun());
  }
  buffer_.push_back({a, b, shard, item, moments});
  ++stats_.records_in;
  stats_.peak_buffer_bytes =
      std::max(stats_.peak_buffer_bytes, buffer_.size() * sizeof(Record));
  return Status::OK();
}

Status PairMomentShuffle::SpillRun() {
  std::sort(buffer_.begin(), buffer_.end(), RecordLess);
  if (options_.combine_on_spill) {
    // Fold equal (a, b, shard) groups in place, in the ascending item order
    // the sort established. The combined record keeps its first item, so
    // combined intervals from successive runs still merge in ascending item
    // order downstream.
    size_t write = 0;
    for (size_t read = 0; read < buffer_.size();) {
      Record group = buffer_[read];
      size_t next = read + 1;
      while (next < buffer_.size() && buffer_[next].a == group.a &&
             buffer_[next].b == group.b && buffer_[next].shard == group.shard) {
        group.moments.Merge(buffer_[next].moments);
        ++next;
      }
      buffer_[write++] = group;
      read = next;
    }
    buffer_.resize(write);
  }

  const std::string path = RunPath(runs_.size());
  FAIRREC_ASSIGN_OR_RETURN(RunFileWriter writer, RunFileWriter::Create(path));
  // Track the file before writing: a failed write must still be cleaned up.
  runs_.push_back(path);
  std::string chunk;
  chunk.reserve(std::min(buffer_.size(), kChunkRecords) * kRecordWireBytes);
  for (size_t i = 0; i < buffer_.size(); ++i) {
    EncodeRecord(buffer_[i], chunk);
    if (chunk.size() >= kChunkRecords * kRecordWireBytes) {
      FAIRREC_RETURN_NOT_OK(writer.AppendChunk(chunk));
      chunk.clear();
    }
  }
  if (!chunk.empty()) {
    FAIRREC_RETURN_NOT_OK(writer.AppendChunk(chunk));
  }
  FAIRREC_RETURN_NOT_OK(writer.Close());
  stats_.spilled_bytes += writer.bytes_written();
  ++stats_.runs_spilled;
  buffer_.clear();
  return Status::OK();
}

Status PairMomentShuffle::Drain(const GroupConsumer& consume) {
  FAIRREC_CHECK(!drained_);
  drained_ = true;

  // Everything fit in the buffer: the classic in-memory path — one sort,
  // one consecutive-group fold. The spilled path below reproduces this
  // order and association exactly.
  if (runs_.empty()) {
    std::sort(buffer_.begin(), buffer_.end(), RecordLess);
    for (size_t first = 0; first < buffer_.size();) {
      PairMoments total = buffer_[first].moments;
      size_t last = first + 1;
      while (last < buffer_.size() && buffer_[last].a == buffer_[first].a &&
             buffer_[last].b == buffer_[first].b &&
             buffer_[last].shard == buffer_[first].shard) {
        total.Merge(buffer_[last].moments);
        ++last;
      }
      ++stats_.groups_out;
      FAIRREC_RETURN_NOT_OK(consume(buffer_[first].a, buffer_[first].b,
                                    buffer_[first].shard, total));
      first = last;
    }
    std::vector<Record>().swap(buffer_);
    return Status::OK();
  }

  // Spill the tail so the merge sees one uniform source shape, then release
  // the buffer — the merge's working set is k chunk buffers, not the
  // shuffle budget plus them.
  if (!buffer_.empty()) {
    FAIRREC_RETURN_NOT_OK(SpillRun());
  }
  std::vector<Record>().swap(buffer_);

  std::vector<RunCursor> cursors;
  cursors.reserve(runs_.size());
  for (const std::string& path : runs_) {
    FAIRREC_ASSIGN_OR_RETURN(RunFileReader reader, RunFileReader::Open(path));
    cursors.emplace_back(std::move(reader));
    FAIRREC_RETURN_NOT_OK(cursors.back().Advance());
  }

  // K-way merge over the cursors' heads. Keys are globally unique, so the
  // pop order *is* the unspilled sort order; the run-index tiebreak only
  // keeps the comparator a total order.
  const auto heap_greater = [&cursors](size_t x, size_t y) {
    const RunCursor& cx = cursors[x];
    const RunCursor& cy = cursors[y];
    if (RecordLess(cx.current, cy.current)) return false;
    if (RecordLess(cy.current, cx.current)) return true;
    return x > y;
  };
  std::priority_queue<size_t, std::vector<size_t>, decltype(heap_greater)>
      heap(heap_greater);
  for (size_t i = 0; i < cursors.size(); ++i) {
    if (!cursors[i].exhausted) heap.push(i);
  }

  bool have_group = false;
  Record group;
  while (!heap.empty()) {
    const size_t i = heap.top();
    heap.pop();
    const Record& r = cursors[i].current;
    if (have_group && r.a == group.a && r.b == group.b &&
        r.shard == group.shard) {
      group.moments.Merge(r.moments);
    } else {
      if (have_group) {
        ++stats_.groups_out;
        FAIRREC_RETURN_NOT_OK(
            consume(group.a, group.b, group.shard, group.moments));
      }
      group = r;
      have_group = true;
    }
    FAIRREC_RETURN_NOT_OK(cursors[i].Advance());
    if (!cursors[i].exhausted) heap.push(i);
  }
  if (have_group) {
    ++stats_.groups_out;
    FAIRREC_RETURN_NOT_OK(
        consume(group.a, group.b, group.shard, group.moments));
  }
  RemoveRuns();
  return Status::OK();
}

}  // namespace fairrec
