#include "sim/hybrid_similarity.h"

namespace fairrec {

Result<std::unique_ptr<HybridSimilarity>> HybridSimilarity::Create(
    std::vector<WeightedComponent> components) {
  if (components.empty()) {
    return Status::InvalidArgument("hybrid similarity needs >= 1 component");
  }
  double total = 0.0;
  for (const WeightedComponent& c : components) {
    if (c.measure == nullptr) {
      return Status::InvalidArgument("hybrid similarity component is null");
    }
    if (c.weight < 0.0) {
      return Status::InvalidArgument("hybrid similarity weight is negative");
    }
    total += c.weight;
  }
  if (total <= 0.0) {
    return Status::InvalidArgument("hybrid similarity weights sum to zero");
  }
  for (WeightedComponent& c : components) c.weight /= total;
  return std::unique_ptr<HybridSimilarity>(
      new HybridSimilarity(std::move(components)));
}

HybridSimilarity::HybridSimilarity(std::vector<WeightedComponent> components)
    : components_(std::move(components)) {}

double HybridSimilarity::Compute(UserId a, UserId b) const {
  double sum = 0.0;
  for (const WeightedComponent& c : components_) {
    if (c.weight == 0.0) continue;
    sum += c.weight * c.measure->Compute(a, b);
  }
  return sum;
}

std::string HybridSimilarity::name() const {
  std::string out = "hybrid(";
  for (size_t i = 0; i < components_.size(); ++i) {
    if (i > 0) out += "+";
    out += components_[i].measure->name();
  }
  out += ")";
  return out;
}

}  // namespace fairrec
