#include "sim/peer_adapter.h"

#include <utility>

#include "common/thread_pool.h"

namespace fairrec {

DensePeerAdapter::DensePeerAdapter(const UserSimilarity& similarity,
                                   int32_t num_users, PeerIndexOptions options,
                                   size_t num_threads)
    : name_("peers(" + similarity.name() + ")") {
  PeerIndex::Builder builder(num_users, options);
  if (num_users > 1) {
    ThreadPool pool(num_threads);
    // One task per triangle row; symmetry means each pair is evaluated once
    // and offered in both directions.
    const UserSimilarity* base = &similarity;
    PeerIndex::Builder* sink = &builder;
    const double delta = options.delta;
    pool.ParallelFor(static_cast<size_t>(num_users) - 1,
                     [base, sink, delta, num_users](size_t row) {
                       const auto a = static_cast<UserId>(row);
                       for (UserId b = a + 1; b < num_users; ++b) {
                         const double sim = base->Compute(a, b);
                         if (sim >= delta) sink->OfferPair(a, b, sim);
                       }
                     });
  }
  index_ = std::move(builder).Build();
}

}  // namespace fairrec
