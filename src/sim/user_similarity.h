#ifndef FAIRREC_SIM_USER_SIMILARITY_H_
#define FAIRREC_SIM_USER_SIMILARITY_H_

#include <string>

#include "ratings/types.h"

namespace fairrec {

/// Interface for the simU(u, u') functions of §V. Implementations must be
/// symmetric (Compute(a,b) == Compute(b,a)) and return scores where larger
/// means more similar. The range convention is implementation-specific:
/// Pearson (Eq. 2) lies in [-1, 1]; cosine (Eq. 3) and the semantic measure
/// (Eq. 4) lie in [0, 1]. Peer selection (Def. 1) compares the raw score
/// against the threshold delta, so pick delta on the measure's own scale.
class UserSimilarity {
 public:
  virtual ~UserSimilarity() = default;

  /// simU(a, b). Must be thread-safe for concurrent calls.
  virtual double Compute(UserId a, UserId b) const = 0;

  /// Short diagnostic name ("pearson", "tfidf-cosine", "semantic", ...).
  virtual std::string name() const = 0;
};

}  // namespace fairrec

#endif  // FAIRREC_SIM_USER_SIMILARITY_H_
