#include "sim/profile_similarity.h"

namespace fairrec {

Result<std::unique_ptr<ProfileSimilarity>> ProfileSimilarity::Create(
    const ProfileStore& store, const Ontology& ontology, TfIdfOptions options) {
  if (store.size() == 0) {
    return Status::InvalidArgument(
        "profile similarity requires at least one stored profile");
  }
  auto sim = std::unique_ptr<ProfileSimilarity>(new ProfileSimilarity());
  sim->vectorizer_ = TfIdfVectorizer(options);
  const std::vector<UserId> users = store.Users();
  std::vector<std::string> documents;
  documents.reserve(users.size());
  for (const UserId u : users) {
    documents.push_back(store.Get(u).RenderAsDocument(ontology));
  }
  FAIRREC_RETURN_NOT_OK(sim->vectorizer_.Fit(documents));
  sim->vectors_.resize(static_cast<size_t>(store.capacity_users()));
  for (size_t k = 0; k < users.size(); ++k) {
    sim->vectors_[static_cast<size_t>(users[k])] =
        sim->vectorizer_.Transform(documents[k]);
  }
  return sim;
}

const SparseVector& ProfileSimilarity::VectorOf(UserId u) const {
  if (u < 0 || static_cast<size_t>(u) >= vectors_.size()) return empty_;
  return vectors_[static_cast<size_t>(u)];
}

double ProfileSimilarity::Compute(UserId a, UserId b) const {
  return SparseVector::Cosine(VectorOf(a), VectorOf(b));
}

}  // namespace fairrec
