#ifndef FAIRREC_SIM_PEER_INDEX_H_
#define FAIRREC_SIM_PEER_INDEX_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "sim/peer_provider.h"

namespace fairrec {

/// Build-time knobs for the sparse peer graph.
struct PeerIndexOptions {
  /// The delta of Definition 1: pairs with simU >= delta enter the graph.
  double delta = 0.1;
  /// Bound on each user's stored list (0 = unlimited). When capped, each
  /// user keeps the top max_peers_per_user qualifying peers under the
  /// BetterPeer order, so memory is O(num_users * cap) no matter how dense
  /// the similarity distribution is. Consumers that exclude users at query
  /// time (group flows drop fellow members) should build with headroom:
  /// cap >= query max_peers + the largest exclusion list, since discarded
  /// entries cannot be recovered after the build.
  int32_t max_peers_per_user = 0;
};

/// Sparse peer graph: per-user thresholded top-k peer lists in CSR form.
///
/// This is the serving-path replacement for the packed U^2 similarity
/// triangle. PairwiseSimilarityEngine::BuildPeerIndex feeds qualifying pairs
/// straight from its tile sweep into Builder, so peak memory is the peer
/// lists plus one accumulator tile per worker — the triangle is never
/// materialized. The MapReduce Job 2 peer-list output mode produces the same
/// artifact, so the §IV flow and the in-memory flow share one structure.
class PeerIndex final : public PeerProvider {
 public:
  /// Thread-safe accumulation of peer candidates into bounded per-user
  /// lists. Offer/OfferPair may be called concurrently from any number of
  /// threads; each user's list is guarded by a striped lock and maintained
  /// as a bounded min-heap (worst retained peer on top) when capped, so an
  /// insert is O(log cap) and never allocates after the list's first
  /// reservation. Build() then sorts each list into the BetterPeer order and
  /// compacts everything into the CSR arrays.
  class Builder {
   public:
    Builder(int32_t num_users, PeerIndexOptions options);

    /// Records v as a peer candidate of u (one direction; the similarity
    /// must already satisfy the caller's threshold). Out-of-range ids and
    /// self-pairs are ignored.
    void Offer(UserId u, UserId v, double similarity);

    /// Records both directions of the unordered pair (a, b).
    void OfferPair(UserId a, UserId b, double similarity);

    /// Sorts, compacts, and returns the finished index. The builder is left
    /// empty.
    PeerIndex Build() &&;

    /// High-water mark of bytes held in peer storage (list capacities plus,
    /// during Build(), the CSR arrays). Approximate to within allocator
    /// slack; the point is the contrast with the packed triangle's
    /// 8 * U * (U - 1) / 2.
    size_t peak_bytes() const { return peak_bytes_.load(std::memory_order_relaxed); }

   private:
    void TrackBytes(int64_t delta);

    int32_t num_users_ = 0;
    PeerIndexOptions options_;
    std::vector<std::vector<Peer>> lists_;
    std::vector<std::mutex> stripes_;
    std::atomic<size_t> current_bytes_{0};
    std::atomic<size_t> peak_bytes_{0};
  };

  /// Splices replacement rows into an existing index without re-finishing
  /// the untouched ones — the output stage of incremental peer-graph
  /// maintenance (sim/incremental_peer_graph.h). ReplaceRow hands over the
  /// fully re-finished list of one affected user (already thresholded,
  /// capped, and in BetterPeer order, exactly as Builder would have stored
  /// it); Build() assembles a fresh CSR whose untouched rows are byte copies
  /// of the base and whose patched rows are the replacements. The population
  /// may grow (new users' rows default to empty), never shrink.
  class PatchBuilder {
   public:
    /// `base` must outlive Build(). num_users >= base->num_users().
    PatchBuilder(const PeerIndex* base, int32_t num_users);

    /// Replaces user `u`'s peer list wholesale. `row` must be sorted by
    /// BetterPeer and obey the index's delta / max_peers_per_user contract;
    /// replacing the same row twice keeps the last call.
    void ReplaceRow(UserId u, std::vector<Peer> row);

    /// Number of rows replaced so far.
    int64_t num_replaced() const { return static_cast<int64_t>(rows_.size()); }

    /// Assembles the patched index. The builder is left empty.
    PeerIndex Build() &&;

   private:
    const PeerIndex* base_;
    int32_t num_users_ = 0;
    /// Replacement rows, indexed into by replaced_slot_: one slot per user,
    /// -1 = keep the base row.
    std::vector<std::vector<Peer>> rows_;
    std::vector<int32_t> replaced_slot_;
  };

  /// An empty index (no users, no peers). Replace via Builder.
  PeerIndex() = default;

  std::span<const Peer> PeersOf(UserId u) const override;
  int32_t num_users() const override { return num_users_; }
  std::string name() const override { return "peer-index"; }

  const PeerIndexOptions& options() const { return options_; }
  int64_t num_entries() const { return static_cast<int64_t>(entries_.size()); }

  /// Bytes held by the finished CSR arrays.
  size_t StorageBytes() const;

  /// The builder's peak_bytes() at the time Build() finished — the peak
  /// similarity-storage cost of constructing this index (reported by
  /// bench_peer_index.cc as the sparse counterpart of the triangle bytes).
  size_t build_peak_bytes() const { return build_peak_bytes_; }

  /// Appends the index in snapshot wire form: options, population, and the
  /// CSR arrays, for the durable checkpoint container.
  void SerializeTo(std::string& out) const;

  /// Rebuilds an index from SerializeTo bytes, validating everything a
  /// Builder guarantees: row lengths within the cap, peers in range and
  /// never the row's own user, each row in strict BetterPeer order, every
  /// similarity finite and at or above delta. DataLoss on any violation.
  static Result<PeerIndex> Deserialize(std::string_view bytes);

  /// Logical equality: same options, population, and bitwise-identical peer
  /// lists. build_peak_bytes is excluded — telemetry, not state.
  friend bool operator==(const PeerIndex& a, const PeerIndex& b);

 private:
  PeerIndexOptions options_;
  int32_t num_users_ = 0;
  std::vector<size_t> offsets_;  // size num_users_ + 1 (empty when no users)
  std::vector<Peer> entries_;    // per-user runs in BetterPeer order
  size_t build_peak_bytes_ = 0;
};

}  // namespace fairrec

#endif  // FAIRREC_SIM_PEER_INDEX_H_
