#ifndef FAIRREC_SIM_INCREMENTAL_PEER_GRAPH_H_
#define FAIRREC_SIM_INCREMENTAL_PEER_GRAPH_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/result.h"
#include "ratings/rating_delta.h"
#include "ratings/rating_matrix.h"
#include "sim/cost_model.h"
#include "sim/moment_store.h"
#include "sim/pairwise_engine.h"
#include "sim/peer_index.h"
#include "sim/rating_similarity.h"
#include "sim/tile_residency.h"

namespace fairrec {

/// Configuration of the incremental peer-graph maintenance subsystem.
struct IncrementalPeerGraphOptions {
  /// Similarity semantics (Eq. 2 variant, min_overlap, ...) shared by the
  /// seeding sweep and every incremental re-finish.
  RatingSimilarityOptions similarity;
  /// Sweep tuning for the seeding full build.
  PairwiseEngineOptions engine;
  /// Def. 1 threshold and per-user cap of the maintained index. delta must
  /// be positive: with delta <= 0 every pair — co-rated or not — qualifies,
  /// and a graph dense in no-evidence pairs has no sparse incremental form.
  PeerIndexOptions peers;
  /// Spill/accounting granularity of the persistent moment store.
  MomentStoreOptions store;

  // --- Memory-budgeted residency (sim/tile_residency.h). ---

  /// Byte budget over the moment store's resident tiles. 0 (the default)
  /// keeps the whole store in memory, exactly as before budgets existed.
  /// With a budget, ApplyDelta pins the tiles its touched rows live in,
  /// faults spilled ones back from disk, and re-enforces the budget after
  /// the patch — so a corpus whose pair moments exceed RAM still maintains
  /// its peer graph incrementally. Note the seeding Build still sweeps the
  /// dense engine path; to *build* beyond RAM, seed via
  /// BuildMomentStoreOutOfCore + FromArtifacts.
  size_t store_budget_bytes = 0;
  /// Directory for spilled tile blobs. Required when store_budget_bytes > 0.
  std::string store_spill_dir;

  // --- Batch-size-aware delta planning. ---
  // Past some touched fraction of the item universe a from-scratch engine
  // sweep beats patching (the patch path pays hash-map folds, store merges,
  // and row splices per touched pair; the sweep pays ~one fused
  // multiply-add per co-rating). ApplyDelta estimates both costs from the
  // batch shape and falls back to a full rebuild past the crossover; the
  // decision and both estimates surface in DeltaApplyStats.

  /// Relative cost of touching one (changed cell, column rater) pair on the
  /// patch path versus sweeping one co-rating in a full rebuild. Hand-fit on
  /// the 10k-user/2k-item/1% bench shape (measured crossover around half
  /// the item universe touched) — but only the *cold-start prior*: the
  /// subsystem re-calibrates it from the wall time of its own patches and
  /// rebuilds (see sim/cost_model.h), so the planner's crossover tracks the
  /// actual machine. Set calibrate_planner = false to pin this value.
  double patch_pair_cost = 150.0;
  /// Feed observed patch/rebuild timings into the cost model and plan with
  /// the calibrated exchange rate. Off, the hand-fit patch_pair_cost is
  /// used verbatim (deterministic planning for tests and benches).
  bool calibrate_planner = true;
  /// Fall back to a full rebuild when
  /// estimated_patch_cost > rebuild_fallback_ratio * estimated_rebuild_cost.
  /// <= 0 disables planning (always patch).
  double rebuild_fallback_ratio = 1.0;
  /// Planning engages only when the estimated rebuild cost exceeds this
  /// floor. Below it a rebuild completes in microseconds and the patch
  /// path's correctness coverage (unit-scale corpora, the parity suites)
  /// matters more than the planner's choice.
  double planner_min_rebuild_cost = 1.0e6;
};

/// Counters of one ApplyDelta, for observability and the incremental bench.
struct DeltaApplyStats {
  /// Upserts in the batch after last-wins dedup.
  int64_t num_upserts = 0;
  /// Distinct item columns the delta sweep re-read.
  int64_t touched_items = 0;
  /// Pairs whose sufficient statistics changed (moment-store folds).
  int64_t changed_pairs = 0;
  /// Pairs erased from the store (overlap count returned to zero).
  int64_t erased_pairs = 0;
  /// Pairs re-finished through Eq. 2 (changed moments, plus — under global
  /// means — every stored pair of a delta user, whose µ_u moved).
  int64_t refinished_pairs = 0;
  /// Rows rebuilt in full from the moment store (delta users, and capped
  /// rows where an entry was demoted or evicted so the stored top-k no
  /// longer determines the next-best candidate).
  int64_t rows_refinished = 0;
  /// Rows patched at entry level (insert / replace / remove against the
  /// stored list, no store row scan).
  int64_t rows_patched = 0;
  /// The planner's cost estimates for this batch: touched-item column mass
  /// times patch_pair_cost, versus total co-rating accumulation plus the
  /// vectorized finish pass of a from-scratch sweep. Unitless relative
  /// work, comparable only to each other; both stay 0 when planning is
  /// disabled (rebuild_fallback_ratio <= 0 skips the estimate scan).
  double estimated_patch_cost = 0.0;
  double estimated_rebuild_cost = 0.0;
  /// The patch_pair_cost the planner actually multiplied by this batch: the
  /// cost model's calibrated exchange rate once both a patch and a rebuild
  /// have been timed, the configured prior before that (0 when planning is
  /// disabled).
  double patch_pair_cost_used = 0.0;
  /// True when the planner chose a from-scratch Build over patching (the
  /// patch counters above are then all zero; the rebuilt artifacts are the
  /// parity reference itself).
  bool used_full_rebuild = false;

  // --- Residency traffic of a budgeted apply (store_budget_bytes > 0;
  // all zero when unbounded). ---

  /// Tiles faulted in from spill blobs for this batch's touched rows.
  int64_t tile_restores = 0;
  /// Tiles evicted re-enforcing the budget after the patch.
  int64_t tile_spills = 0;
  /// Spill blob bytes written during this apply.
  uint64_t spill_bytes_written = 0;
  /// The store's resident bytes after the apply (post-enforcement).
  size_t resident_bytes = 0;
};

/// Incremental maintenance of the Def. 1 peer graph under continuously
/// arriving ratings.
///
/// The static pipeline (PairwiseSimilarityEngine::BuildPeerIndex) re-sweeps
/// every co-rating on any change. This subsystem keeps, alongside the served
/// PeerIndex, the persistent per-pair sufficient statistics (MomentStore)
/// that the index was finished from. A RatingDelta batch then costs work
/// proportional to the change, not the corpus:
///
///   0. the batch-size-aware planner estimates the patch cost (touched-item
///      column mass x patch_pair_cost) against a from-scratch sweep and
///      falls back to a full rebuild past the crossover (see the planning
///      fields of IncrementalPeerGraphOptions; the decision is reported in
///      DeltaApplyStats::used_full_rebuild). The steps below are the patch
///      path;
///   1. the base RatingMatrix absorbs the upserts in O(ratings + batch)
///      (RatingDelta::ApplyTo — no global re-sort);
///   2. only the item columns the batch touched are re-swept, pairing each
///      changed rating against the column's raters to produce additive
///      PairMoments deltas (updated ratings Remove the superseded co-rating
///      and Add the new one);
///   3. the deltas fold into the MomentStore (pairs whose overlap drops to
///      zero are erased);
///   4. affected pairs are re-finished through the engine's FinishPair — the
///      byte-identical finish path of the full build. Under the paper's
///      global-means Eq. 2 a delta user's µ_u moves, so *all* of that user's
///      stored pairs re-finish; under intersection means only pairs with
///      changed moments do;
///   5. affected rows are patched: delta users (and capped rows where an
///      entry was demoted or evicted — the stored top-k cannot reveal the
///      next-best candidate, the store row can) are rebuilt in full from
///      their MomentStore row; every other affected row takes an O(k)
///      entry-level edit. PeerIndex::PatchBuilder splices the new rows into
///      a fresh CSR without re-finishing untouched users;
///   6. the served index is swapped: index() hands out a
///      shared_ptr<const PeerIndex>, so in-flight readers (Recommender /
///      GroupRecommender hold PeerProvider pointers) keep the snapshot they
///      started with and new queries see the refreshed graph.
///
/// Parity contract: after any sequence of ApplyDelta calls, index() is
/// byte-identical to PairwiseSimilarityEngine::BuildPeerIndex run from
/// scratch on the post-delta corpus — same pairs, same similarities, same
/// order — on integer rating scales (where the additive moments are exact;
/// tests/sim/incremental_peer_graph_test.cc asserts this for every delta
/// shape). On non-representable rating values the two can differ by
/// reassociation rounding, the same ~1e-15 caveat the sharded MapReduce
/// flow documents.
///
/// Thread-compatibility: ApplyDelta is exclusive; PeersOf on a snapshot is
/// freely concurrent with it (snapshots are immutable).
class IncrementalPeerGraph {
 public:
  /// Seeds the subsystem with one full sweep: the moment store and the
  /// initial peer index. `matrix` is taken by value (the subsystem owns the
  /// evolving corpus).
  static Result<IncrementalPeerGraph> Build(
      RatingMatrix matrix, IncrementalPeerGraphOptions options);

  /// Assembles the subsystem from already-built artifacts without any
  /// sweep — the recovery path of sim/durable_peer_graph.h, which loads the
  /// three from a checkpoint. The artifacts must be mutually consistent
  /// (same population; the store and index derived from this matrix under
  /// these options) — population mismatches are rejected, deeper
  /// inconsistencies are the caller's contract.
  static Result<IncrementalPeerGraph> FromArtifacts(
      RatingMatrix matrix, MomentStore store, PeerIndex index,
      IncrementalPeerGraphOptions options);

  IncrementalPeerGraph(IncrementalPeerGraph&&) = default;
  IncrementalPeerGraph& operator=(IncrementalPeerGraph&&) = default;

  /// Folds one batch of rating arrivals into the corpus, the moment store,
  /// and the served index. Returns the patch accounting, or InvalidArgument
  /// when the batch is malformed.
  Result<DeltaApplyStats> ApplyDelta(const RatingDelta& delta);

  /// The served peer graph. The snapshot is immutable; ApplyDelta replaces
  /// the pointer, so long-lived readers re-fetch per query (or keep their
  /// snapshot for a consistent view).
  std::shared_ptr<const PeerIndex> index() const { return index_; }

  /// The evolving corpus. The reference tracks the latest generation: after
  /// the next ApplyDelta it names a *different* matrix. Callers that must
  /// not observe a swap mid-query hold matrix_snapshot() instead.
  const RatingMatrix& matrix() const { return *matrix_; }

  /// The corpus as an immutable snapshot, paired with index(): ApplyDelta
  /// never mutates a published matrix in place — it builds the merged corpus
  /// and swaps the pointer — so a holder keeps a self-consistent generation
  /// for as long as it keeps the pointer. This is what the serving layer's
  /// ServingSnapshot is assembled from (serve/snapshot_source.h).
  ///
  /// Note the accessor itself is unsynchronized, like index(): callers that
  /// read while another thread is inside ApplyDelta must order the two
  /// (the serving layer publishes under its own lock).
  std::shared_ptr<const RatingMatrix> matrix_snapshot() const {
    return matrix_;
  }

  /// The persistent sufficient-statistics store backing the patches. Under
  /// a residency budget, spilled tiles are not readable until
  /// EnsureStoreResident (whole-store consumers) or the next ApplyDelta
  /// pins them (row consumers).
  const MomentStore& store() const { return *store_; }

  /// The residency manager enforcing options().store_budget_bytes, or null
  /// when unbounded.
  const TileResidencyManager* residency() const { return residency_.get(); }

  /// Restores every spilled tile — the precondition of whole-store reads
  /// (checkpoint serialization, operator== against a reference store).
  /// The budget is re-enforced by the next ApplyDelta. No-op when
  /// unbounded.
  Status EnsureStoreResident();

  const IncrementalPeerGraphOptions& options() const { return options_; }

  /// The self-tuning planner calibration (see sim/cost_model.h). The
  /// mutable overload lets tests and harnesses inject deterministic
  /// observations instead of depending on wall-clock noise.
  const PatchCostModel& cost_model() const { return cost_model_; }
  PatchCostModel& cost_model() { return cost_model_; }

 private:
  IncrementalPeerGraph() = default;

  /// Rebuilds user `v`'s full peer list from its MomentStore row, finishing
  /// the stored moments through the batched kernel.
  std::vector<Peer> RefinishRow(const PairwiseSimilarityEngine& engine,
                                UserId v) const;

  /// The planner's fallback: swaps in `new_matrix` and rebuilds the moment
  /// store and peer index with a from-scratch engine sweep.
  Status RebuildFromScratch(RatingMatrix new_matrix);

  /// The planner's rebuild-cost estimate for the current corpus: co-rating
  /// mass plus the finish-pass term (also the unit count rebuild timings
  /// are normalized by).
  double RebuildCostUnits() const;

  /// Creates the residency manager when a budget is configured (store_ must
  /// already hold the final store) and brings residency under the budget.
  Status AttachResidency();

  IncrementalPeerGraphOptions options_;
  PatchCostModel cost_model_;
  // shared_ptr, const payload: the address is stable across moves of the
  // graph (PairwiseSimilarityEngine instances hold a pointer to it during a
  // call), and each generation is immutable once published — ApplyDelta
  // swaps in the merged corpus instead of assigning through the pointer, so
  // matrix_snapshot() holders never see a matrix change under them.
  std::shared_ptr<const RatingMatrix> matrix_;
  // unique_ptr for the same address stability: the residency manager holds
  // a pointer to the store across moves of the graph.
  std::unique_ptr<MomentStore> store_;
  std::unique_ptr<TileResidencyManager> residency_;
  std::shared_ptr<const PeerIndex> index_;
};

}  // namespace fairrec

#endif  // FAIRREC_SIM_INCREMENTAL_PEER_GRAPH_H_
