#ifndef FAIRREC_SIM_TILE_RESIDENCY_H_
#define FAIRREC_SIM_TILE_RESIDENCY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "ratings/rating_matrix.h"
#include "sim/moment_shuffle.h"
#include "sim/moment_store.h"
#include "sim/pairwise_engine.h"
#include "sim/peer_index.h"
#include "sim/rating_similarity.h"

namespace fairrec {

/// Failpoint site inside TileResidencyManager's spill write, hit after the
/// tile is serialized but before its blob reaches disk — the instant where a
/// crash leaves a tile resident in a process that is about to die, so
/// recovery must never depend on the spill having landed. The atomic blob
/// write behind it additionally exposes the kFailpointBlobWrite* sites.
inline constexpr std::string_view kFailpointResidencySpill =
    "residency.spill.begin";

/// Controls for TileResidencyManager.
struct TileResidencyOptions {
  /// Target on the store's resident bytes. 0 = unbounded: nothing ever
  /// spills and every call is a cheap no-op, so a budget-aware caller can
  /// run the same code path either way.
  size_t budget_bytes = 0;
  /// Directory for spilled tile blobs (created if missing). Required when
  /// budget_bytes > 0.
  std::string spill_dir;
  /// Sweep-order lookahead of Prefetch: how many tiles past the one under
  /// maintenance a sweep warms up, when the budget has room.
  size_t prefetch_tiles = 1;
};

/// Accounting of one manager's lifetime. Deltas of these counters are what
/// PairwiseEngineStats / DeltaApplyStats surface per operation.
struct TileResidencyStats {
  /// Tiles re-materialized from their spill blob.
  int64_t restores = 0;
  /// Spill blobs written (clean evictions of an unchanged tile reuse the
  /// existing blob and skip the write).
  int64_t spill_writes = 0;
  /// Tiles evicted (with or without a fresh blob write).
  int64_t evictions = 0;
  uint64_t spill_bytes_written = 0;
  uint64_t restore_bytes_read = 0;
  /// High-water of the store's resident bytes while under management — the
  /// figure bench_outofcore gates against the budget.
  size_t peak_resident_bytes = 0;
  /// Bytes currently held in valid spill blobs on disk.
  size_t spilled_blob_bytes = 0;
};

/// Explicit-byte-budget residency manager over a MomentStore's user-range
/// tiles.
///
/// The store itself only mechanizes tile movement (SerializeTile / EvictTile
/// / RestoreTile); this class owns the policy: which tiles stay resident
/// under a byte budget, when a tile's spill blob can be reused versus
/// rewritten, and which tile to sacrifice when the budget is exceeded (least
/// recently used, never pinned, never empty). Spill blobs go through the
/// checksummed atomic container of common/blob_io, so a torn spill is
/// invisible (the old blob or none survives, never a mix) and a bit-flipped
/// one fails restore as DataLoss instead of resurrecting wrong moments.
///
/// Pinning: callers doing multi-step maintenance (the incremental patch
/// path, the out-of-core assembly) pin the tiles they are about to read or
/// write; EnforceBudget never evicts a pinned tile, so the budget is
/// best-effort while pins are held and re-established when they drop.
///
/// Construct via MomentStore::WithBudget. The store must outlive the
/// manager and must not move while it exists. Not thread-safe: residency
/// transitions are exclusive, like store writes (concurrent *reads* of
/// resident tiles are fine — the manager only moves tiles inside its
/// mutating calls).
class TileResidencyManager {
 public:
  static Result<TileResidencyManager> Create(MomentStore* store,
                                             TileResidencyOptions options);

  TileResidencyManager(TileResidencyManager&&) noexcept = default;
  TileResidencyManager& operator=(TileResidencyManager&&) noexcept = default;
  /// Removes this manager's spill blobs (best-effort; they are caches of
  /// resident state plus restorable spill state, never the only copy of
  /// anything durable).
  ~TileResidencyManager();

  size_t TileOfUser(UserId u) const;

  /// Faults tile `t` in from its spill blob if evicted, touches its LRU
  /// clock, and re-enforces the budget against the *other* tiles. DataLoss
  /// on a corrupt blob; FailedPrecondition for a tile evicted outside the
  /// manager (no blob to restore from).
  Status EnsureResident(size_t t);
  Status EnsureRowResident(UserId u);

  /// EnsureResident + pin: the tile cannot be evicted until Unpin. Pins
  /// nest.
  Status Pin(size_t t);
  void Unpin(size_t t);

  /// Sweep-order warm-up: restores tile `t` only when it fits the budget
  /// without evicting anything — the lookahead of a tile sweep, never a
  /// displacement. No-op past the last tile or when unbounded.
  Status Prefetch(size_t t);

  /// Marks tile `t`'s spill blob stale after its rows changed (a fold, an
  /// assembly append). The next eviction re-serializes; restoring the stale
  /// blob is no longer possible, so forgetting this call would resurrect
  /// pre-fold moments — hence the store's mutation paths in this repo call
  /// it through their residency hooks, not ad hoc.
  void NoteTileDirty(size_t t);

  /// Evicts least-recently-used unpinned tiles until resident bytes +
  /// `headroom_bytes` fit the budget (or only pinned/empty tiles remain —
  /// best-effort under pins). No-op when unbounded.
  Status EnforceBudget(size_t headroom_bytes = 0);

  /// Restores every spilled tile, ignoring the budget — the precondition of
  /// whole-store operations (checkpoint serialization, operator==).
  Status RestoreAll();

  /// Recomputes tile `t`'s byte accounting from its live rows and notes the
  /// residency peak — the mid-fill accounting hook of the out-of-core
  /// assembly, whose appends otherwise defer accounting to
  /// FinalizeAssembledTile.
  void RecomputeTileBytes(size_t t);

  /// Grows the per-tile state after the store's population grew
  /// (EnsureNumUsers). New tiles start resident with no blob.
  void SyncShape();

  MomentStore& store() { return *store_; }
  const MomentStore& store() const { return *store_; }
  const TileResidencyOptions& options() const { return options_; }
  const TileResidencyStats& stats() const { return stats_; }

 private:
  struct TileState {
    /// True when the on-disk blob reflects the tile's current rows.
    bool spill_valid = false;
    int32_t pins = 0;
    /// LRU clock of the last touch.
    uint64_t last_use = 0;
    /// Size of the valid spill blob (0 when none).
    size_t blob_bytes = 0;
  };

  TileResidencyManager(MomentStore* store, TileResidencyOptions options);

  std::string SpillPath(size_t t) const;
  void Touch(size_t t);
  void NoteResidentPeak();
  /// Writes tile `t`'s blob if stale, then evicts it.
  Status SpillTile(size_t t);
  /// EnforceBudget that additionally never evicts tile `keep` (the tile the
  /// caller is in the middle of touching).
  Status EnforceBudgetExcept(size_t keep, size_t headroom_bytes);

  MomentStore* store_ = nullptr;
  TileResidencyOptions options_;
  std::vector<TileState> tiles_;
  uint64_t clock_ = 0;
  TileResidencyStats stats_;
};

// ---------------------------------------------------------------------------
// Out-of-core build: corpus -> budgeted MomentStore -> PeerIndex.
// ---------------------------------------------------------------------------

/// Knobs of BuildMomentStoreOutOfCore.
struct OutOfCoreBuildOptions {
  /// Tile granularity of the assembled store.
  MomentStoreOptions store;
  /// Residency budget over the assembled tiles (0 = unbounded — the build
  /// then degenerates to an external-sorted in-memory assembly).
  size_t budget_bytes = 0;
  /// Directory for spilled tile blobs and shuffle runs. Required when
  /// budget_bytes or shuffle_buffer_bytes is set.
  std::string spill_dir;
  /// Buffer bound of the co-rating shuffle. 0 with budget_bytes set
  /// defaults to budget_bytes / 4; 0 without a budget keeps the shuffle
  /// fully in memory.
  size_t shuffle_buffer_bytes = 0;
};

/// Accounting of one out-of-core build.
struct OutOfCoreBuildStats {
  MomentShuffleStats shuffle;
  /// Wall seconds of the item-sweep emission into the shuffle.
  double emit_seconds = 0.0;
  /// Wall seconds of the merge-drain tile assembly.
  double assemble_seconds = 0.0;
};

/// The assembled store plus its residency manager (null when unbounded).
/// unique_ptr because the manager pins the store's address.
struct OutOfCoreStore {
  std::unique_ptr<MomentStore> store;
  std::unique_ptr<TileResidencyManager> residency;
};

/// Builds the MomentStore of `matrix` without ever holding the dense
/// adjacency in memory: the item-inverted sweep emits each co-rated pair's
/// per-item moments (both row orientations) into a spilling external-sort
/// shuffle, and the merged (row, other)-ordered stream assembles tiles one
/// at a time, evicting finished tiles to disk as the budget demands. The
/// assembled store is bit-identical to
/// PairwiseSimilarityEngine::BuildMomentStore on the same matrix — same
/// canonical per-pair moments, exact on integer scales at any budget.
Result<OutOfCoreStore> BuildMomentStoreOutOfCore(
    const RatingMatrix& matrix, const OutOfCoreBuildOptions& options,
    OutOfCoreBuildStats* stats = nullptr);

/// Finishes the Def. 1 peer graph from an already-built MomentStore: a
/// sweep over the store's tiles (faulting each in through `residency` when
/// budgeted, with sweep-order prefetch) that stages every stored pair's
/// moments through the batched Pearson kernel and offers qualifying peers
/// to PeerIndex::Builder. Byte-identical to
/// PairwiseSimilarityEngine::BuildPeerIndex on the matrix the store was
/// built from: identical moments, identical finish kernel, identical
/// BetterPeer selection. `residency` may be null (fully resident store).
/// `stats`, when non-null, receives the finish timing plus the sweep's
/// residency traffic.
Result<PeerIndex> BuildPeerIndexFromStore(
    const RatingMatrix& matrix, const MomentStore& store,
    TileResidencyManager* residency,
    const RatingSimilarityOptions& sim_options,
    const PeerIndexOptions& peer_options,
    PairwiseEngineStats* stats = nullptr);

}  // namespace fairrec

#endif  // FAIRREC_SIM_TILE_RESIDENCY_H_
