#ifndef FAIRREC_SIM_MOMENT_SHUFFLE_H_
#define FAIRREC_SIM_MOMENT_SHUFFLE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "ratings/types.h"
#include "sim/pearson_finish.h"

namespace fairrec {

/// Controls for PairMomentShuffle.
struct MomentShuffleOptions {
  /// Upper bound on the in-memory record buffer. When an Add would exceed
  /// it, the buffer is sorted and spilled as one run file; 0 keeps
  /// everything in memory (the classic single-buffer shuffle — no temp
  /// files, no I/O).
  size_t max_buffer_bytes = 0;
  /// Directory for spilled run files (created if missing). Required when
  /// max_buffer_bytes > 0.
  std::string temp_dir;
  /// Pre-fold records of equal (a, b, shard) before writing a run — the
  /// map-side combine. Sound only when the caller Adds each group's records
  /// in ascending item order (the engine's canonical fold order); the
  /// out-of-core store build does, the Job 1 boundary (whose emission order
  /// follows partition scheduling, not items) must leave this off to keep
  /// the merged fold order — and therefore the finished artifact — byte-
  /// identical to the unspilled sort.
  bool combine_on_spill = false;
};

/// Accounting of one shuffle's lifetime.
struct MomentShuffleStats {
  /// Records offered to Add.
  int64_t records_in = 0;
  /// Distinct (a, b, shard) groups Drain delivered.
  int64_t groups_out = 0;
  /// Run files written (0 = the whole shuffle fit in the buffer).
  int64_t runs_spilled = 0;
  /// Framed bytes written across all runs.
  uint64_t spilled_bytes = 0;
  /// High-water of the in-memory record buffer.
  size_t peak_buffer_bytes = 0;
};

/// Memory-bounded external-sort shuffle over (user pair, item shard, item)
/// keyed PairMoments records — the spilling counterpart of the in-memory
/// "collect, sort, fold consecutive groups" pattern the MapReduce Job 1
/// boundary and the out-of-core MomentStore build both use.
///
/// Records accumulate in a bounded buffer; when it fills, the buffer is
/// sorted by the total key (a, b, shard, item) and written to a CRC-framed
/// run file (common/run_file.h). Drain k-way-merges the runs: because every
/// record's key is unique (a pair co-rates an item at most once, and
/// combined records carry disjoint ascending item intervals), the merge
/// reproduces the exact global sort order of the unspilled path, so folding
/// consecutive equal-(a, b, shard) records yields bit-identical group
/// moments at every budget — the property that keeps the spilled MapReduce
/// pipeline byte-identical to the in-memory one.
///
/// Not thread-safe: callers emitting from concurrent reducers serialize
/// Add externally (the output is order-independent — the sort owns the
/// order, so interleaving never reaches the artifact).
class PairMomentShuffle {
 public:
  /// One shuffle record: the canonical sort key plus the moments payload.
  struct Record {
    UserId a = kInvalidUserId;
    UserId b = kInvalidUserId;
    int32_t shard = 0;
    ItemId item = kInvalidItemId;
    PairMoments moments;
  };

  static Result<PairMomentShuffle> Create(MomentShuffleOptions options);

  PairMomentShuffle(PairMomentShuffle&&) noexcept = default;
  PairMomentShuffle& operator=(PairMomentShuffle&&) noexcept = default;
  /// Removes any run files still on disk.
  ~PairMomentShuffle();

  /// Buffers one record, spilling a sorted run first when the buffer is at
  /// its budget. IOError when a spill write fails.
  Status Add(UserId a, UserId b, int32_t shard, ItemId item,
             const PairMoments& moments);

  /// Delivered once per distinct (a, b, shard) group, in ascending key
  /// order, with the group's moments folded in ascending item order (first
  /// record copied, later records Merged — the in-memory combine's exact
  /// association). A non-OK return aborts the drain and propagates.
  using GroupConsumer = std::function<Status(
      UserId a, UserId b, int32_t shard, const PairMoments& total)>;

  /// Sorts/merges everything Added and streams the folded groups. One-shot:
  /// the shuffle is spent afterwards (buffer released, runs deleted).
  Status Drain(const GroupConsumer& consume);

  const MomentShuffleStats& stats() const { return stats_; }
  const MomentShuffleOptions& options() const { return options_; }

 private:
  explicit PairMomentShuffle(MomentShuffleOptions options, uint64_t sequence)
      : options_(std::move(options)), sequence_(sequence) {}

  /// Sorts the buffer, optionally combines, writes it as one run file, and
  /// clears the buffer (capacity retained — it is the budget).
  Status SpillRun();
  std::string RunPath(size_t run_index) const;
  void RemoveRuns();

  MomentShuffleOptions options_;
  /// Process-unique shuffle id, so shuffles sharing a temp_dir never
  /// collide on run file names.
  uint64_t sequence_ = 0;
  std::vector<Record> buffer_;
  std::vector<std::string> runs_;
  MomentShuffleStats stats_;
  bool drained_ = false;
};

}  // namespace fairrec

#endif  // FAIRREC_SIM_MOMENT_SHUFFLE_H_
