// AVX2 Pearson finish kernel: four lanes per iteration over the
// FinishBatch staging buffer. Compiled only when FAIRREC_ENABLE_AVX2 is
// on, with `-mavx2` (see CMakeLists.txt): the flag pins the target for
// this one TU so the intrinsics build inside a portable baseline binary.
// Floating-point contraction is disabled project-wide, so no mul/add pair
// fuses into an FMA here or in the scalar finish — fusing would skip an
// intermediate rounding and break the bit-parity contract with
// FinishPearsonFromMoments (sim/pearson_finish_batch.h documents the
// contract; tests/sim/pearson_finish_batch_test.cc enforces it).
//
// Lanes are staged as whole PairMoments records (cheap wide stores on the
// caller's scalar side); this kernel transposes four records at a time
// into structure-of-arrays registers. The shuffles run on ports the
// divide/sqrt unit leaves idle, so the transpose hides under the finish
// arithmetic instead of adding to it.
//
// Callers never reach this TU directly: FinishPearsonBatch dispatches here
// after a runtime cpuid check, so the binary stays runnable on pre-AVX2
// hosts.

#include "sim/pearson_finish_batch.h"

#if defined(FAIRREC_ENABLE_AVX2) && defined(__AVX2__)

#include <immintrin.h>

#include <cstddef>

namespace fairrec {
namespace internal {

namespace {

// The transpose below addresses PairMoments as six 8-byte slots (the sixth
// holds the int32 n plus padding).
static_assert(sizeof(PairMoments) == 48);
static_assert(offsetof(PairMoments, sum_a) == 0);
static_assert(offsetof(PairMoments, sum_ab) == 32);
static_assert(offsetof(PairMoments, n) == 40);
static_assert(sizeof(FinishBatch::Means) == 16);

}  // namespace

void FinishPearsonBatchAvx2(const FinishBatch& batch,
                            const RatingSimilarityOptions& options,
                            double* out) {
  const __m256d zero = _mm256_setzero_pd();
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d neg_one = _mm256_set1_pd(-1.0);
  const __m256d two = _mm256_set1_pd(2.0);
  const __m256d epsilon = _mm256_set1_pd(kPearsonRelativeVarianceEpsilon);
  const __m256d min_overlap =
      _mm256_set1_pd(static_cast<double>(options.min_overlap));
  // Dword positions of the four int32 n fields inside the transposed
  // [n | padding] vector (upper four positions are don't-care).
  const __m256i n_dwords = _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0);
  const bool intersection = options.intersection_means;
  const bool shift = options.shift_to_unit_interval;

  const int32_t size = batch.size();
  const auto finish4 = [&](int32_t i) {
    // ---- Transpose four 6-slot records into SoA registers. The rows of
    // record pairs (0,2) and (1,3) line up 128-bit-lane-wise, so six
    // vperm2f128 + six vunpck moves produce the six field vectors in lane
    // order [l0 l1 l2 l3]. ----
    const double* p = reinterpret_cast<const double*>(batch.moments + i);
    const __m256d r0 = _mm256_loadu_pd(p + 0);    // l0: sa sb saa sbb
    const __m256d r1 = _mm256_loadu_pd(p + 4);    // l0: sab n | l1: sa sb
    const __m256d r2 = _mm256_loadu_pd(p + 8);    // l1: saa sbb sab n
    const __m256d r3 = _mm256_loadu_pd(p + 12);   // l2: sa sb saa sbb
    const __m256d r4 = _mm256_loadu_pd(p + 16);   // l2: sab n | l3: sa sb
    const __m256d r5 = _mm256_loadu_pd(p + 20);   // l3: saa sbb sab n
    const __m256d t01 = _mm256_permute2f128_pd(r0, r3, 0x20);
    const __m256d t23 = _mm256_permute2f128_pd(r0, r3, 0x31);
    const __m256d u01 = _mm256_permute2f128_pd(r1, r4, 0x20);
    const __m256d u23 = _mm256_permute2f128_pd(r1, r4, 0x31);
    const __m256d v01 = _mm256_permute2f128_pd(r2, r5, 0x20);
    const __m256d v23 = _mm256_permute2f128_pd(r2, r5, 0x31);
    const __m256d sa = _mm256_unpacklo_pd(t01, u23);
    const __m256d sb = _mm256_unpackhi_pd(t01, u23);
    const __m256d saa = _mm256_unpacklo_pd(t23, v01);
    const __m256d sbb = _mm256_unpackhi_pd(t23, v01);
    const __m256d sab = _mm256_unpacklo_pd(u01, v23);
    const __m256d n_raw = _mm256_unpackhi_pd(u01, v23);  // [n | pad] per lane
    const __m256i n_ints = _mm256_permutevar8x32_epi32(
        _mm256_castpd_si256(n_raw), n_dwords);
    const __m256d nn =
        _mm256_cvtepi32_pd(_mm256_castsi256_si128(n_ints));  // exact

    // ---- Branch-free guard pass #1: the overlap guard. Guarded lanes
    // still flow through the arithmetic (their intermediate NaN/inf never
    // escapes the final mask), exactly like the scalar lane sequence. ----
    const __m256d overlap_ok =
        _mm256_and_pd(_mm256_cmp_pd(nn, min_overlap, _CMP_GE_OQ),
                      _mm256_cmp_pd(nn, zero, _CMP_NEQ_OQ));

    __m256d mean_a;
    __m256d mean_b;
    if (intersection) {
      mean_a = _mm256_div_pd(sa, nn);
      mean_b = _mm256_div_pd(sb, nn);
    } else {
      const double* q = reinterpret_cast<const double*>(batch.means + i);
      const __m256d m01 = _mm256_loadu_pd(q + 0);  // l0.a l0.b l1.a l1.b
      const __m256d m23 = _mm256_loadu_pd(q + 4);  // l2.a l2.b l3.a l3.b
      const __m256d lo = _mm256_unpacklo_pd(m01, m23);  // l0.a l2.a l1.a l3.a
      const __m256d hi = _mm256_unpackhi_pd(m01, m23);  // l0.b l2.b l1.b l3.b
      mean_a = _mm256_permute4x64_pd(lo, _MM_SHUFFLE(3, 1, 2, 0));
      mean_b = _mm256_permute4x64_pd(hi, _MM_SHUFFLE(3, 1, 2, 0));
    }

    // The scalar expansion's expression tree, term for term; every
    // intrinsic is one correctly-rounded operation and nothing fuses.
    const __m256d n_mean_a = _mm256_mul_pd(nn, mean_a);
    const __m256d n_mean_b = _mm256_mul_pd(nn, mean_b);
    const __m256d n_mean_aa = _mm256_mul_pd(n_mean_a, mean_a);
    const __m256d n_mean_bb = _mm256_mul_pd(n_mean_b, mean_b);
    const __m256d num = _mm256_add_pd(
        _mm256_sub_pd(_mm256_sub_pd(sab, _mm256_mul_pd(mean_b, sa)),
                      _mm256_mul_pd(mean_a, sb)),
        _mm256_mul_pd(n_mean_a, mean_b));
    const __m256d den_a = _mm256_add_pd(
        _mm256_sub_pd(saa, _mm256_mul_pd(_mm256_mul_pd(two, mean_a), sa)),
        n_mean_aa);
    const __m256d den_b = _mm256_add_pd(
        _mm256_sub_pd(sbb, _mm256_mul_pd(_mm256_mul_pd(two, mean_b), sb)),
        n_mean_bb);
    const __m256d scale_a = _mm256_add_pd(saa, n_mean_aa);
    const __m256d scale_b = _mm256_add_pd(sbb, n_mean_bb);

    // ---- Guard pass #2: the relative-epsilon cancellation guard. ----
    const __m256d variance_ok = _mm256_and_pd(
        _mm256_cmp_pd(den_a, _mm256_mul_pd(epsilon, scale_a), _CMP_GT_OQ),
        _mm256_cmp_pd(den_b, _mm256_mul_pd(epsilon, scale_b), _CMP_GT_OQ));

    // max(den, 0) only rewrites lanes variance_ok already masks off (a
    // passing lane has den > eps * scale >= 0), keeping negative rounding
    // noise out of sqrt — the same guard the scalar lane applies.
    const __m256d sd =
        _mm256_mul_pd(_mm256_sqrt_pd(_mm256_max_pd(den_a, zero)),
                      _mm256_sqrt_pd(_mm256_max_pd(den_b, zero)));
    __m256d r = _mm256_div_pd(num, sd);
    r = _mm256_max_pd(_mm256_min_pd(r, one), neg_one);
    if (shift) r = _mm256_div_pd(_mm256_add_pd(r, one), two);

    // Masked lanes collapse to +0.0 — the exact value the scalar guards
    // return.
    const __m256d result =
        _mm256_and_pd(r, _mm256_and_pd(overlap_ok, variance_ok));
    _mm256_storeu_pd(out + i, result);
  };
  // Two independent 4-lane groups per iteration keep a second divide/sqrt
  // chain in flight while the first drains.
  int32_t i = 0;
  for (; i + 8 <= size; i += 8) {
    finish4(i);
    finish4(i + 4);
  }
  for (; i + 4 <= size; i += 4) finish4(i);
  // Ragged tail: the shared scalar lane sequence, so out[] is written only
  // up to size() and the tail bits still match the packed lanes.
  for (; i < size; ++i) {
    out[i] = FinishPearsonLane(batch, i, options);
  }
}

}  // namespace internal
}  // namespace fairrec

#endif  // FAIRREC_ENABLE_AVX2 && __AVX2__
