#include "sim/semantic_similarity.h"

#include "common/logging.h"

namespace fairrec {

SemanticSimilarity::SemanticSimilarity(const ProfileStore* store,
                                       const Ontology* ontology)
    : store_(store),
      oracle_(std::make_unique<ConceptDistanceOracle>(ontology)) {
  FAIRREC_CHECK(store != nullptr);
}

double SemanticSimilarity::ProblemSimilarity(ConceptId p, ConceptId q) const {
  return oracle_->Similarity(p, q);
}

double SemanticSimilarity::Compute(UserId a, UserId b) const {
  if (!store_->Contains(a) || !store_->Contains(b)) return 0.0;
  const PatientProfile& pa = store_->Get(a);
  const PatientProfile& pb = store_->Get(b);
  if (pa.problems.empty() || pb.problems.empty()) return 0.0;

  // Harmonic mean of all cross-pair similarities (Eq. 4). Every x_i is
  // strictly positive (1/(1+hops) > 0), so the sum of reciprocals is finite.
  double reciprocal_sum = 0.0;
  int64_t n = 0;
  for (const ConceptId p : pa.problems) {
    for (const ConceptId q : pb.problems) {
      const double x = oracle_->Similarity(p, q);
      FAIRREC_DCHECK(x > 0.0);
      reciprocal_sum += 1.0 / x;
      ++n;
    }
  }
  return static_cast<double>(n) / reciprocal_sum;
}

}  // namespace fairrec
