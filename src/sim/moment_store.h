#ifndef FAIRREC_SIM_MOMENT_STORE_H_
#define FAIRREC_SIM_MOMENT_STORE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "ratings/types.h"
#include "sim/pearson_finish.h"

namespace fairrec {

class TileResidencyManager;

/// One neighbour of a user in the moment store: the other user of the pair
/// and the pair's six sufficient statistics. `moments` is always stored in
/// the canonical (min id = a, max id = b) orientation — the orientation the
/// engine's tile sweep accumulates — so finishing through
/// FinishPearsonFromMoments(moments, mean(min), mean(max), ...) reproduces
/// the engine's similarity bit-for-bit on identical moments.
struct MomentEntry {
  UserId other = kInvalidUserId;
  PairMoments moments;

  friend bool operator==(const MomentEntry&, const MomentEntry&) = default;
};

/// One canonical pair delta for MomentStore::ApplyPairDeltas: the additive
/// change of pair (a, b)'s sufficient statistics (a < b required). Negative
/// sums / negative n express removal of superseded co-ratings (an updated
/// rating folds in as "subtract the old co-rating, add the new one").
struct PairMomentsDelta {
  UserId a = kInvalidUserId;
  UserId b = kInvalidUserId;
  PairMoments delta;
};

/// Build-time knobs for MomentStore.
struct MomentStoreOptions {
  /// Rows per tile — the spill/accounting granularity. Each tile owns the
  /// rows of one contiguous user-id range and is independently serializable,
  /// evictable, and restorable, so a corpus whose pair moments exceed RAM
  /// can keep only the tiles under maintenance resident.
  int32_t tile_users = 2048;
};

/// Persistent sparse per-pair sufficient-statistics store: for every
/// co-rated user pair, the six additive Pearson moments of
/// sim/pearson_finish.h, held across rating arrivals so a delta batch can be
/// folded in without re-sweeping the corpus.
///
/// Storage is a bidirectional adjacency: pair (a, b) appears in row a (entry
/// `other == b`) and in row b (entry `other == a`), both carrying the same
/// canonically-oriented moments. The 2x constant buys O(degree) access to
/// *all* of one user's pairs — exactly what the incremental peer-graph patch
/// needs to re-finish an affected user's peer list without scanning the
/// store (see sim/incremental_peer_graph.h). Total memory stays
/// O(co-rated pairs); pairs whose overlap count returns to zero are erased.
///
/// Rows are grouped into user-range tiles (MomentStoreOptions::tile_users).
/// A tile is the spill unit: SerializeTile/EvictTile/RestoreTile move one
/// tile between resident rows and a compact byte blob, and byte accounting
/// is tracked per tile, so callers can bound residency for corpora whose
/// moment set exceeds memory.
///
/// Writers: either the thread-safe Builder (one full engine sweep or the
/// MapReduce Job 1 moment stream — see
/// PairwiseSimilarityEngine::BuildMomentStore and
/// BuildMomentStoreFromPartialMoments), or ApplyPairDeltas for incremental
/// folds. Readers may call RowOf/FindPair concurrently with each other but
/// not with writers.
class MomentStore {
 public:
  /// Thread-safe accumulation of canonical pair moments. Add may be called
  /// concurrently; rows are striped-locked and sorted by Build().
  class Builder {
   public:
    Builder(int32_t num_users, MomentStoreOptions options = {});

    /// Records the moments of pair (a, b); a < b and the canonical
    /// orientation are required. Each pair must be added exactly once —
    /// callers holding per-shard partials merge them (in a deterministic
    /// order) before Add, so stored moments never depend on builder thread
    /// interleaving. Pairs with n == 0 are ignored.
    void Add(UserId a, UserId b, const PairMoments& moments);

    /// Sorts rows, merges per-pair partials, and returns the finished
    /// store. The builder is left empty.
    MomentStore Build() &&;

   private:
    int32_t num_users_ = 0;
    MomentStoreOptions options_;
    std::vector<std::vector<MomentEntry>> rows_;
    std::vector<std::mutex> stripes_;
  };

  /// An empty store (no users). Replace via Builder or EnsureNumUsers.
  MomentStore() = default;

  /// An empty store with the given tile granularity; grow via
  /// EnsureNumUsers. The streaming-assembly entry point (the out-of-core
  /// build fills rows with AppendRowEntry instead of a Builder, whose
  /// per-row slack reservation would charge every empty row up front).
  explicit MomentStore(MomentStoreOptions options) : options_(options) {}

  int32_t num_users() const { return num_users_; }
  const MomentStoreOptions& options() const { return options_; }

  /// Number of stored pairs (each counted once, not per direction).
  int64_t num_pairs() const { return num_pairs_; }

  /// All pairs of user `u`, sorted by ascending `other` id. Precondition:
  /// the row's tile is resident. Out-of-range ids yield an empty span.
  std::span<const MomentEntry> RowOf(UserId u) const;

  /// The canonical moments of pair (a, b), or nullptr when the pair has no
  /// co-ratings. Order of a/b does not matter. O(log degree).
  const PairMoments* FindPair(UserId a, UserId b) const;

  /// Grows the population to at least `num_users` (new rows empty). Existing
  /// rows and tiles are untouched; new tiles start resident.
  void EnsureNumUsers(int32_t num_users);

  /// Appends one entry to the end of row `u` — the streaming assembly path
  /// of the out-of-core build (sim/tile_residency.h), which fills rows in
  /// ascending (row, other) order from a merged spill stream instead of
  /// holding a whole Builder's worth of rows. `other` must exceed the row's
  /// current last entry and the row's tile must be resident. Byte accounting
  /// is deferred to FinalizeAssembledTile, called once per completed tile.
  void AppendRowEntry(UserId u, UserId other, const PairMoments& moments);

  /// Compacts every row of tile `t` to the Builder's size-plus-slack
  /// capacity policy (so evict/restore stays byte-accounting neutral) and
  /// recomputes the tile's bytes. Pairs with AppendRowEntry.
  void FinalizeAssembledTile(size_t t);

  /// Folds a batch of canonical pair deltas into the store: existing pairs
  /// are additively merged (and erased when their overlap count reaches
  /// zero), unknown pairs are inserted. `deltas` must be sorted by (a, b)
  /// with no duplicate pair and a < b, and every referenced row's tile must
  /// be resident. Cost: O(sum of affected rows' degrees + batch).
  void ApplyPairDeltas(std::span<const PairMomentsDelta> deltas);

  // --- Tiles: the spill granularity. ---

  size_t num_tiles() const { return tiles_.size(); }
  /// The user-id range [first, last) of tile `t`.
  std::pair<UserId, UserId> TileUserRange(size_t t) const;
  /// True when tile `t`'s rows are in memory (queryable / foldable).
  bool TileResident(size_t t) const;
  /// Resident heap bytes of tile `t` (0 when evicted).
  size_t TileBytes(size_t t) const;

  /// Serializes tile `t`'s rows into a compact blob (row lengths + entries).
  /// The tile stays resident; pair with EvictTile to spill.
  std::string SerializeTile(size_t t) const;
  /// Releases tile `t`'s rows. Reads and folds touching the tile are invalid
  /// until RestoreTile. Returns the bytes freed.
  size_t EvictTile(size_t t);
  /// Re-materializes tile `t` from a SerializeTile blob. The tile must be
  /// evicted (restoring over live rows would silently drop updates —
  /// FailedPrecondition). Beyond shape checks, every entry is validated:
  /// `other` in range and strictly ascending within its row, never the row's
  /// own user, overlap count positive, all six moments finite. Returns
  /// InvalidArgument on a malformed blob; the tile stays evicted on error.
  Status RestoreTile(size_t t, std::string_view blob);

  // --- Full-artifact snapshot (checkpointing). ---

  /// Serializes the whole store — options, population, and every tile as an
  /// independently CRC-framed section — for the durable checkpoint
  /// container (see sim/durable_peer_graph.h). Precondition: every tile
  /// resident.
  void SerializeTo(std::string& out) const;

  /// Rebuilds a store from SerializeTo bytes. Each tile section's CRC is
  /// verified and its entries re-validated through the hardened RestoreTile,
  /// and the recomputed pair count must match the stored one. DataLoss on
  /// any mismatch.
  static Result<MomentStore> Deserialize(std::string_view bytes);

  /// Logical equality: same population, same pairs, bitwise-identical
  /// moments. Precondition: every tile of both stores resident. Byte
  /// accounting (peak_bytes) is excluded — it is telemetry, not state.
  friend bool operator==(const MomentStore& a, const MomentStore& b);

  /// Budget-aware facade: a TileResidencyManager enforcing `budget_bytes`
  /// of residency over this store's tiles, spilling least-recently-used
  /// tiles to checksummed blob files under `spill_dir` (created if missing)
  /// and faulting them back on access. The store must outlive the manager
  /// and must not move while it exists (the manager holds a pointer).
  /// Defined in sim/tile_residency.cc.
  Result<TileResidencyManager> WithBudget(size_t budget_bytes,
                                          std::string spill_dir);

  /// Resident heap bytes across all tiles (entry storage only).
  size_t ResidentBytes() const;
  /// High-water mark of the store's memory footprint over its lifetime —
  /// the metric bench_incremental_update gates with --check-peak-bytes-max.
  /// Includes the transient cost of spill traffic: while SerializeTile
  /// holds a tile's blob the footprint is resident + blob, and while
  /// RestoreTile re-materializes rows next to the caller's blob it is
  /// resident + blob + incoming rows — evict→restore cycles would otherwise
  /// under-report the true high-water mark.
  size_t peak_bytes() const { return peak_bytes_; }

 private:
  /// The residency manager recomputes tile accounting mid-assembly and
  /// drives the spill lifecycle through the private tile internals.
  friend class TileResidencyManager;

  struct Tile {
    /// One vector per user id in the tile's range, sorted by `other`.
    std::vector<std::vector<MomentEntry>> rows;
    bool resident = true;
    size_t bytes = 0;
  };

  Tile& TileOf(UserId u);
  const Tile& TileOf(UserId u) const;
  std::vector<MomentEntry>& MutableRow(UserId u);
  void RecomputeTileBytes(size_t t);
  void NotePeak();
  /// Notes ResidentBytes() + `extra_bytes` as a footprint high-water —
  /// the spill paths' transient blob/row buffers (const: SerializeTile is
  /// logically read-only; the peak is telemetry, not state).
  void NoteTransientPeak(size_t extra_bytes) const;

  MomentStoreOptions options_;
  int32_t num_users_ = 0;
  int64_t num_pairs_ = 0;
  std::vector<Tile> tiles_;
  mutable size_t peak_bytes_ = 0;
};

}  // namespace fairrec

#endif  // FAIRREC_SIM_MOMENT_STORE_H_
