#ifndef FAIRREC_SIM_PEER_ADAPTER_H_
#define FAIRREC_SIM_PEER_ADAPTER_H_

#include <cstdint>
#include <span>
#include <string>

#include "sim/peer_index.h"
#include "sim/peer_provider.h"
#include "sim/user_similarity.h"

namespace fairrec {

/// PeerProvider over an arbitrary dense similarity measure.
///
/// Rating-based (Pearson) peer graphs should come straight from
/// PairwiseSimilarityEngine::BuildPeerIndex, which never materializes the
/// pair triangle. This adapter covers every other simU — profile cosine,
/// semantic, hybrid, or an already-precomputed SimilarityMatrix — by
/// evaluating the measure once per pair at construction (parallelized over
/// rows) and storing the thresholded top-k lists in the same CSR shape, so
/// downstream layers see one interface regardless of the base.
class DensePeerAdapter final : public PeerProvider {
 public:
  /// Evaluates `similarity` on all pairs of [0, num_users) with
  /// `num_threads` workers (0 = hardware concurrency). The measure must be
  /// symmetric and thread-safe (UserSimilarity contract); it is not retained
  /// after construction.
  DensePeerAdapter(const UserSimilarity& similarity, int32_t num_users,
                   PeerIndexOptions options = {}, size_t num_threads = 0);

  std::span<const Peer> PeersOf(UserId u) const override {
    return index_.PeersOf(u);
  }
  int32_t num_users() const override { return index_.num_users(); }
  std::string name() const override { return name_; }

  const PeerIndexOptions& options() const { return index_.options(); }
  int64_t num_entries() const { return index_.num_entries(); }

 private:
  PeerIndex index_;
  std::string name_;
};

}  // namespace fairrec

#endif  // FAIRREC_SIM_PEER_ADAPTER_H_
