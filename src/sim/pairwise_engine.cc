#include "sim/pairwise_engine.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/logging.h"
#include "common/thread_pool.h"

namespace fairrec {

namespace {

/// Relative threshold below which a cancelled variance is treated as zero.
/// The raw-moment expansion of sum((r - mean)^2) cancels a value of the order
/// of sum(r^2) down to the true variance; when the result is this small
/// relative to the cancelled magnitude it is rounding noise from an exactly
/// constant row (e.g. every co-rating 3.1), not a real variance, and must
/// yield 0 like FinishPearson's centered form does. On the paper's 1..5
/// scale the smallest genuine nonzero variance is far above this threshold.
constexpr double kRelativeVarianceEpsilon = 1e-12;

}  // namespace

size_t PairwiseSimilarityEngine::PackedTriangleIndex(UserId a, UserId b,
                                                     int32_t num_users) {
  const size_t n = static_cast<size_t>(num_users);
  const size_t row = static_cast<size_t>(a);
  const size_t row_offset = row * (n - 1) - row * (row - 1) / 2;
  return row_offset + static_cast<size_t>(b) - row - 1;
}

PairwiseSimilarityEngine::PairwiseSimilarityEngine(
    const RatingMatrix* matrix, RatingSimilarityOptions options,
    PairwiseEngineOptions engine_options)
    : matrix_(matrix),
      options_(options),
      engine_options_(engine_options) {
  FAIRREC_CHECK(matrix != nullptr);
}

size_t PairwiseSimilarityEngine::PackedTriangleSize(int32_t num_users) {
  if (num_users <= 1) return 0;
  const size_t n = static_cast<size_t>(num_users);
  return n * (n - 1) / 2;
}

double PairwiseSimilarityEngine::Finish(const PairStats& stats, UserId a,
                                        UserId b) const {
  const int32_t n = stats.n;
  // Mirrors FinishPearson: overlap guard first, then the undefined-variance
  // guard. n == 0 (no co-ratings) is always "no evidence", even when
  // min_overlap <= 0 disables the guard.
  if (n < options_.min_overlap || n == 0) return 0.0;

  double mean_a;
  double mean_b;
  if (options_.intersection_means) {
    mean_a = stats.sum_a / static_cast<double>(n);
    mean_b = stats.sum_b / static_cast<double>(n);
  } else {
    mean_a = matrix_->UserMean(a);
    mean_b = matrix_->UserMean(b);
  }

  // Expanded centered sums: sum((ra - ma)(rb - mb)) etc. in raw moments.
  const double nn = static_cast<double>(n);
  const double num = stats.sum_ab - mean_b * stats.sum_a - mean_a * stats.sum_b +
                     nn * mean_a * mean_b;
  const double den_a =
      stats.sum_aa - 2.0 * mean_a * stats.sum_a + nn * mean_a * mean_a;
  const double den_b =
      stats.sum_bb - 2.0 * mean_b * stats.sum_b + nn * mean_b * mean_b;
  // <= rather than ==: the expansion can round an exactly-zero variance to a
  // tiny value of either sign, which must not reach sqrt. The relative guard
  // catches constant rows whose values are not exactly representable, where
  // the cancellation leaves positive rounding noise instead of 0.
  const double scale_a = stats.sum_aa + nn * mean_a * mean_a;
  const double scale_b = stats.sum_bb + nn * mean_b * mean_b;
  if (den_a <= kRelativeVarianceEpsilon * scale_a ||
      den_b <= kRelativeVarianceEpsilon * scale_b) {
    return 0.0;
  }
  double r = num / (std::sqrt(den_a) * std::sqrt(den_b));
  r = std::clamp(r, -1.0, 1.0);
  return options_.shift_to_unit_interval ? (r + 1.0) / 2.0 : r;
}

void PairwiseSimilarityEngine::SweepTile(const Tile& tile,
                                         std::vector<PairStats>& acc,
                                         std::span<double> out) const {
  const size_t cols = static_cast<size_t>(tile.col_last - tile.col_first);
  const bool diagonal = tile.row_first == tile.col_first;

  // ---- Accumulation: one pass over the item-inverted index. ----
  const int32_t num_items = matrix_->num_items();
  for (ItemId i = 0; i < num_items; ++i) {
    const auto rows =
        matrix_->UsersWhoRatedInRange(i, tile.row_first, tile.row_last);
    if (rows.empty()) continue;
    const auto col_span =
        diagonal ? rows
                 : matrix_->UsersWhoRatedInRange(i, tile.col_first, tile.col_last);
    if (col_span.empty()) continue;
    for (size_t p = 0; p < rows.size(); ++p) {
      const size_t row_base =
          static_cast<size_t>(rows[p].user - tile.row_first) * cols;
      const double ra = rows[p].value;
      // On the diagonal only pairs a < b exist; off the diagonal every
      // (row user, col user) combination is a distinct pair.
      for (size_t q = diagonal ? p + 1 : 0; q < col_span.size(); ++q) {
        PairStats& cell =
            acc[row_base + static_cast<size_t>(col_span[q].user - tile.col_first)];
        const double rb = col_span[q].value;
        cell.sum_a += ra;
        cell.sum_b += rb;
        cell.sum_aa += ra * ra;
        cell.sum_bb += rb * rb;
        cell.sum_ab += ra * rb;
        cell.n += 1;
      }
    }
  }

  // ---- Finish: one allocation-free pass over the tile's pairs. ----
  const int32_t num_users = matrix_->num_users();
  for (UserId a = tile.row_first; a < tile.row_last; ++a) {
    const UserId b_first = diagonal ? a + 1 : tile.col_first;
    const size_t row_base = static_cast<size_t>(a - tile.row_first) * cols;
    size_t packed = PackedTriangleIndex(a, b_first, num_users);
    for (UserId b = b_first; b < tile.col_last; ++b, ++packed) {
      PairStats& cell =
          acc[row_base + static_cast<size_t>(b - tile.col_first)];
      out[packed] = Finish(cell, a, b);
      cell = PairStats{};  // reset for the worker's next tile
    }
  }
}

Status PairwiseSimilarityEngine::ComputeAll(std::span<double> out) const {
  const int32_t num_users = matrix_->num_users();
  if (out.size() != PackedTriangleSize(num_users)) {
    return Status::InvalidArgument(
        "output span holds " + std::to_string(out.size()) +
        " entries; packed triangle needs " +
        std::to_string(PackedTriangleSize(num_users)));
  }
  if (engine_options_.block_users <= 0) {
    return Status::InvalidArgument("block_users must be positive");
  }
  if (num_users <= 1) return Status::OK();

  // Tile the strict upper triangle into block_users x block_users ranges.
  // Clamping to the population keeps small-corpus scratch proportional to the
  // real tile size instead of the configured block.
  const int32_t block = std::min(engine_options_.block_users, num_users);
  std::vector<Tile> tiles;
  for (UserId r = 0; r < num_users; r += block) {
    const UserId r_last = std::min<UserId>(r + block, num_users);
    for (UserId c = r; c < num_users; c += block) {
      tiles.push_back({r, r_last, c, std::min<UserId>(c + block, num_users)});
    }
  }

  ThreadPool pool(engine_options_.num_threads);
  // Per-worker-slot accumulator blocks, allocated lazily on first tile. The
  // finish pass leaves every visited cell zeroed, so no per-tile memset is
  // needed: untouched cells stay default-constructed across tiles.
  std::vector<std::vector<PairStats>> scratch(
      std::min(pool.num_threads(), tiles.size()));
  const size_t cells = static_cast<size_t>(block) * static_cast<size_t>(block);
  pool.ParallelForIndexed(tiles.size(), [&](size_t worker, size_t t) {
    std::vector<PairStats>& acc = scratch[worker];
    if (acc.size() != cells) acc.assign(cells, PairStats{});
    SweepTile(tiles[t], acc, out);
  });
  return Status::OK();
}

Result<std::vector<double>> PairwiseSimilarityEngine::ComputeAll() const {
  std::vector<double> out(PackedTriangleSize(matrix_->num_users()), 0.0);
  FAIRREC_RETURN_NOT_OK(ComputeAll(std::span<double>(out)));
  return out;
}

}  // namespace fairrec
