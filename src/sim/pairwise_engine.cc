#include "sim/pairwise_engine.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"

namespace fairrec {

namespace {

/// Sink for ComputeAll: writes each finished pair into the packed triangle.
/// The drain delivers row runs out of strict order (guarded pairs emit
/// immediately, staged pairs on batch flush), so the sink caches the row
/// base offset and re-derives it only when the row changes — a handful of
/// times per flush.
class TriangleSink {
 public:
  static constexpr bool kFinishesPairs = true;

  TriangleSink(std::span<double> out, int32_t num_users)
      : out_(out), num_users_(num_users) {}

  void OnFinished(UserId a, UserId b, double sim) {
    if (a != row_) {
      row_ = a;
      const int64_t n = num_users_;
      const int64_t r = a;
      // PackedTriangleIndex(a, b) == row_base_ + b for this row; the base
      // is negative for row 0 (b >= 1 restores a valid offset).
      row_base_ = r * (n - 1) - r * (r - 1) / 2 - r - 1;
    }
    out_[static_cast<size_t>(row_base_ + b)] = sim;
  }

 private:
  std::span<double> out_;
  int32_t num_users_;
  UserId row_ = kInvalidUserId;
  int64_t row_base_ = 0;
};

/// Sink for BuildPeerIndex: Def. 1's threshold, then both directions of the
/// pair into the concurrent builder. Filtering before the builder keeps the
/// lock stripes out of the (overwhelmingly common) non-qualifying case.
struct PeerSink {
  static constexpr bool kFinishesPairs = true;

  PeerIndex::Builder* builder;
  double delta;

  void OnFinished(UserId a, UserId b, double sim) const {
    if (sim >= delta) builder->OfferPair(a, b, sim);
  }
};

/// Sink for BuildMomentStore: keeps the raw statistics of co-rated pairs —
/// the one sweep mode that does not finish, so it bypasses the batch
/// kernel. The n == 0 filter makes the store O(co-rated pairs); pairs
/// without co-ratings finish to 0 from an empty PairMoments anyway.
struct MomentSink {
  static constexpr bool kFinishesPairs = false;

  MomentStore::Builder* builder;

  void operator()(UserId a, UserId b, const PairMoments& stats) const {
    if (stats.n > 0) builder->Add(a, b, stats);
  }
};

}  // namespace

size_t PairwiseSimilarityEngine::PackedTriangleIndex(UserId a, UserId b,
                                                     int32_t num_users) {
  const size_t n = static_cast<size_t>(num_users);
  const size_t row = static_cast<size_t>(a);
  const size_t row_offset = row * (n - 1) - row * (row - 1) / 2;
  return row_offset + static_cast<size_t>(b) - row - 1;
}

PairwiseSimilarityEngine::PairwiseSimilarityEngine(
    const RatingMatrix* matrix, RatingSimilarityOptions options,
    PairwiseEngineOptions engine_options)
    : matrix_(matrix),
      options_(options),
      engine_options_(engine_options) {
  FAIRREC_CHECK(matrix != nullptr);
  // The invariant every finish path relies on: with min_overlap >= 1 the
  // overlap guard subsumes the n == 0 no-evidence case, so FinishPair /
  // SkipsFinish are a single comparison. min_overlap <= 0 would not widen
  // semantics anyway (1 already disables the guard).
  FAIRREC_CHECK(options.min_overlap >= 1);
}

size_t PairwiseSimilarityEngine::PackedTriangleSize(int32_t num_users) {
  if (num_users <= 1) return 0;
  const size_t n = static_cast<size_t>(num_users);
  return n * (n - 1) / 2;
}

double PairwiseSimilarityEngine::FinishPair(const PairMoments& stats, UserId a,
                                            UserId b) const {
  // Overlap guard before the mean lookups: most pairs in the O(U^2) finish
  // pass have no co-ratings at all, and the shared finish would repeat the
  // same guard only after two memory loads per pair. min_overlap >= 1 is
  // validated at construction, so this single comparison also covers n == 0.
  if (SkipsFinish(stats)) return 0.0;
  // The shared moment-finish (sim/pearson_finish.h) — the same function the
  // MapReduce Job 2 reducers call, so the two flows agree bit-for-bit on
  // identical moments. Global means come from the matrix's precomputed
  // per-user means (ignored under intersection_means).
  return FinishPearsonFromMoments(stats, matrix_->UserMean(a),
                                  matrix_->UserMean(b), options_);
}

PairwiseSimilarityEngine::ColumnBlockIndex
PairwiseSimilarityEngine::BuildColumnIndex(int32_t block,
                                           ThreadPool& pool) const {
  ColumnBlockIndex index;
  index.block = block;
  const int32_t num_users = matrix_->num_users();
  const int32_t num_items = matrix_->num_items();
  index.num_blocks =
      static_cast<size_t>((num_users + block - 1) / block);
  const size_t stride = index.num_blocks + 1;
  index.offsets.assign(static_cast<size_t>(num_items) * stride, 0);
  if (num_items == 0) return index;

  // One merge of U(i) against the block boundaries per item: O(|U(i)| +
  // num_blocks), versus a binary search per (item, tile) in the sweep.
  const RatingMatrix* matrix = matrix_;
  uint32_t* offsets = index.offsets.data();
  const size_t num_blocks = index.num_blocks;
  pool.ParallelFor(static_cast<size_t>(num_items), [matrix, offsets, stride,
                                                    num_blocks, block,
                                                    num_users](size_t item) {
    const auto column = matrix->UsersWhoRated(static_cast<ItemId>(item));
    uint32_t* row = offsets + item * stride;
    size_t j = 0;
    for (size_t b = 0; b <= num_blocks; ++b) {
      const UserId boundary = static_cast<UserId>(
          std::min<int64_t>(static_cast<int64_t>(b) * block, num_users));
      while (j < column.size() && column[j].user < boundary) ++j;
      row[b] = static_cast<uint32_t>(j);
    }
  });
  return index;
}

template <typename Sink>
void PairwiseSimilarityEngine::SweepTile(const Tile& tile,
                                         const ColumnBlockIndex& columns,
                                         std::vector<PairMoments>& acc,
                                         Sink& sink,
                                         PairwiseEngineStats& stats) const {
  const size_t cols = static_cast<size_t>(tile.col_last - tile.col_first);
  const bool diagonal = tile.row_first == tile.col_first;
  const size_t stride = columns.num_blocks + 1;
  const size_t rb = static_cast<size_t>(tile.row_first / columns.block);
  const size_t cb = static_cast<size_t>(tile.col_first / columns.block);

  // ---- Accumulation: one pass over the item-inverted index. ----
  Stopwatch clock;
  const int32_t num_items = matrix_->num_items();
  for (ItemId i = 0; i < num_items; ++i) {
    const uint32_t* off = &columns.offsets[static_cast<size_t>(i) * stride];
    const uint32_t row_first = off[rb];
    const uint32_t row_last = off[rb + 1];
    if (row_first == row_last) continue;
    const auto column = matrix_->UsersWhoRated(i);
    const auto rows = column.subspan(row_first, row_last - row_first);
    const auto col_span =
        diagonal ? rows : column.subspan(off[cb], off[cb + 1] - off[cb]);
    if (col_span.empty()) continue;
    for (size_t p = 0; p < rows.size(); ++p) {
      const size_t row_base =
          static_cast<size_t>(rows[p].user - tile.row_first) * cols;
      const double ra = rows[p].value;
      // On the diagonal only pairs a < b exist; off the diagonal every
      // (row user, col user) combination is a distinct pair.
      for (size_t q = diagonal ? p + 1 : 0; q < col_span.size(); ++q) {
        PairMoments& cell =
            acc[row_base + static_cast<size_t>(col_span[q].user - tile.col_first)];
        cell.Add(ra, col_span[q].value);
      }
    }
  }
  stats.accumulate_seconds += clock.ElapsedSeconds();

  // ---- Drain: one allocation-free pass over the tile's pairs. ----
  clock.Restart();
  if constexpr (Sink::kFinishesPairs) {
    // Stage pairs that pass the overlap guard into the batched kernel;
    // guarded pairs (the overwhelming majority on sparse corpora)
    // short-circuit to a literal 0 — the exact value the kernel's mask
    // pass would produce for them.
    struct PairRef {
      UserId a, b;
    };
    auto stream = MakePearsonFinishStream<PairRef>(
        options_,
        [&sink](PairRef pair, double sim) {
          sink.OnFinished(pair.a, pair.b, sim);
        });
    for (UserId a = tile.row_first; a < tile.row_last; ++a) {
      const UserId b_first = diagonal ? a + 1 : tile.col_first;
      const size_t row_base = static_cast<size_t>(a - tile.row_first) * cols;
      const double mean_a = matrix_->UserMean(a);
      for (UserId b = b_first; b < tile.col_last; ++b) {
        PairMoments& cell =
            acc[row_base + static_cast<size_t>(b - tile.col_first)];
        if (SkipsFinish(cell)) {
          sink.OnFinished(a, b, 0.0);
        } else {
          stream.Stage(cell, mean_a, matrix_->UserMean(b), {a, b});
        }
        cell = PairMoments{};  // reset for the worker's next tile
      }
    }
    stream.Flush();  // the tile's ragged tail, inside the timed drain
  } else {
    for (UserId a = tile.row_first; a < tile.row_last; ++a) {
      const UserId b_first = diagonal ? a + 1 : tile.col_first;
      const size_t row_base = static_cast<size_t>(a - tile.row_first) * cols;
      for (UserId b = b_first; b < tile.col_last; ++b) {
        PairMoments& cell =
            acc[row_base + static_cast<size_t>(b - tile.col_first)];
        sink(a, b, cell);
        cell = PairMoments{};  // reset for the worker's next tile
      }
    }
  }
  stats.finish_seconds += clock.ElapsedSeconds();

  // Drained pair count, from the tile shape (no per-pair counter).
  if (diagonal) {
    const int64_t edge = tile.row_last - tile.row_first;
    stats.pairs_finished += edge * (edge - 1) / 2;
  } else {
    stats.pairs_finished +=
        static_cast<int64_t>(tile.row_last - tile.row_first) *
        static_cast<int64_t>(tile.col_last - tile.col_first);
  }
}

template <typename SinkFactory>
Status PairwiseSimilarityEngine::SweepAllTiles(
    const SinkFactory& make_sink, PairwiseEngineStats* stats) const {
  const int32_t num_users = matrix_->num_users();
  if (engine_options_.block_users <= 0) {
    return Status::InvalidArgument("block_users must be positive");
  }
  if (num_users <= 1) return Status::OK();

  // Tile the strict upper triangle into block_users x block_users ranges.
  // Clamping to the population keeps small-corpus scratch proportional to the
  // real tile size instead of the configured block.
  const int32_t block = std::min(engine_options_.block_users, num_users);
  std::vector<Tile> tiles;
  for (UserId r = 0; r < num_users; r += block) {
    const UserId r_last = std::min<UserId>(r + block, num_users);
    for (UserId c = r; c < num_users; c += block) {
      tiles.push_back({r, r_last, c, std::min<UserId>(c + block, num_users)});
    }
  }

  ThreadPool pool(engine_options_.num_threads);
  const ColumnBlockIndex columns = BuildColumnIndex(block, pool);
  // Per-worker-slot accumulator blocks, allocated lazily on first tile. The
  // finish pass leaves every visited cell zeroed, so no per-tile memset is
  // needed: untouched cells stay default-constructed across tiles.
  const size_t num_slots = std::min(pool.num_threads(), tiles.size());
  std::vector<std::vector<PairMoments>> scratch(num_slots);
  std::vector<PairwiseEngineStats> worker_stats(num_slots);
  const size_t cells = static_cast<size_t>(block) * static_cast<size_t>(block);
  pool.ParallelForIndexed(tiles.size(), [&](size_t worker, size_t t) {
    std::vector<PairMoments>& acc = scratch[worker];
    if (acc.size() != cells) acc.assign(cells, PairMoments{});
    auto sink = make_sink();
    SweepTile(tiles[t], columns, acc, sink, worker_stats[worker]);
  });
  if (stats != nullptr) {
    for (const PairwiseEngineStats& w : worker_stats) {
      stats->accumulate_seconds += w.accumulate_seconds;
      stats->finish_seconds += w.finish_seconds;
      stats->pairs_finished += w.pairs_finished;
    }
  }
  return Status::OK();
}

Status PairwiseSimilarityEngine::ComputeAll(std::span<double> out,
                                            PairwiseEngineStats* stats) const {
  const int32_t num_users = matrix_->num_users();
  if (out.size() != PackedTriangleSize(num_users)) {
    return Status::InvalidArgument(
        "output span holds " + std::to_string(out.size()) +
        " entries; packed triangle needs " +
        std::to_string(PackedTriangleSize(num_users)));
  }
  return SweepAllTiles([&] { return TriangleSink(out, num_users); }, stats);
}

Result<PeerIndex> PairwiseSimilarityEngine::BuildPeerIndex(
    const PeerIndexOptions& peer_options, PairwiseEngineStats* stats) const {
  if (peer_options.max_peers_per_user < 0) {
    return Status::InvalidArgument("max_peers_per_user must be >= 0");
  }
  PeerIndex::Builder builder(matrix_->num_users(), peer_options);
  FAIRREC_RETURN_NOT_OK(SweepAllTiles(
      [&] { return PeerSink{&builder, peer_options.delta}; }, stats));
  return std::move(builder).Build();
}

Result<MomentStore> PairwiseSimilarityEngine::BuildMomentStore(
    const MomentStoreOptions& store_options,
    PairwiseEngineStats* stats) const {
  if (store_options.tile_users <= 0) {
    return Status::InvalidArgument("tile_users must be positive");
  }
  MomentStore::Builder builder(matrix_->num_users(), store_options);
  FAIRREC_RETURN_NOT_OK(
      SweepAllTiles([&] { return MomentSink{&builder}; }, stats));
  return std::move(builder).Build();
}

Result<std::vector<double>> PairwiseSimilarityEngine::ComputeAll() const {
  std::vector<double> out(PackedTriangleSize(matrix_->num_users()), 0.0);
  FAIRREC_RETURN_NOT_OK(ComputeAll(std::span<double>(out)));
  return out;
}

}  // namespace fairrec
