#include "sim/incremental_peer_graph.h"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <utility>

#include "common/logging.h"
#include "common/thread_pool.h"

namespace fairrec {

namespace {

/// Canonical pair (a < b) packed into one map key.
uint64_t PairKey(UserId a, UserId b) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(a)) << 32) |
         static_cast<uint32_t>(b);
}

UserId KeyA(uint64_t key) { return static_cast<UserId>(key >> 32); }
UserId KeyB(uint64_t key) {
  return static_cast<UserId>(key & 0xffffffffull);
}

/// One upsert with the value it supersedes (absent for brand-new cells).
struct CellChange {
  UserId user = kInvalidUserId;
  ItemId item = kInvalidItemId;
  double value = 0.0;
  bool has_old = false;
  double old_value = 0.0;
};

/// One similarity change delivered to a row: the neighbour whose entry
/// moves and its freshly finished similarity.
struct RowChange {
  UserId row = kInvalidUserId;
  UserId other = kInvalidUserId;
  double sim = 0.0;
};

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

Status ValidateOptions(const IncrementalPeerGraphOptions& options) {
  if (!(options.peers.delta > 0.0)) {
    return Status::InvalidArgument(
        "incremental maintenance requires a positive peer delta: with "
        "delta <= 0 every no-co-rating pair qualifies and the graph has no "
        "sparse form");
  }
  if (options.peers.max_peers_per_user < 0) {
    return Status::InvalidArgument("max_peers_per_user must be >= 0");
  }
  if (options.store.tile_users <= 0) {
    return Status::InvalidArgument("store.tile_users must be positive");
  }
  if (options.store_budget_bytes > 0 && options.store_spill_dir.empty()) {
    return Status::InvalidArgument(
        "store_budget_bytes needs a store_spill_dir to evict tiles into");
  }
  return Status::OK();
}

}  // namespace

Result<IncrementalPeerGraph> IncrementalPeerGraph::Build(
    RatingMatrix matrix, IncrementalPeerGraphOptions options) {
  FAIRREC_RETURN_NOT_OK(ValidateOptions(options));

  IncrementalPeerGraph graph;
  graph.options_ = options;
  graph.cost_model_ = PatchCostModel(options.patch_pair_cost);
  graph.matrix_ = std::make_shared<const RatingMatrix>(std::move(matrix));
  const PairwiseSimilarityEngine engine(graph.matrix_.get(),
                                        options.similarity, options.engine);
  const auto start = std::chrono::steady_clock::now();
  FAIRREC_ASSIGN_OR_RETURN(MomentStore store,
                           engine.BuildMomentStore(options.store));
  graph.store_ = std::make_unique<MomentStore>(std::move(store));
  FAIRREC_ASSIGN_OR_RETURN(PeerIndex index,
                           engine.BuildPeerIndex(options.peers));
  if (options.calibrate_planner) {
    // The seeding sweep is a free rebuild sample: the cost model's rebuild
    // side is primed before the first delta ever arrives.
    graph.cost_model_.ObserveRebuild(graph.RebuildCostUnits(),
                                     SecondsSince(start));
  }
  graph.index_ = std::make_shared<const PeerIndex>(std::move(index));
  FAIRREC_RETURN_NOT_OK(graph.AttachResidency());
  return graph;
}

Result<IncrementalPeerGraph> IncrementalPeerGraph::FromArtifacts(
    RatingMatrix matrix, MomentStore store, PeerIndex index,
    IncrementalPeerGraphOptions options) {
  FAIRREC_RETURN_NOT_OK(ValidateOptions(options));
  if (store.num_users() != matrix.num_users() ||
      index.num_users() != matrix.num_users()) {
    return Status::InvalidArgument(
        "artifact population mismatch: matrix " +
        std::to_string(matrix.num_users()) + " users, store " +
        std::to_string(store.num_users()) + ", index " +
        std::to_string(index.num_users()));
  }
  IncrementalPeerGraph graph;
  graph.options_ = options;
  graph.cost_model_ = PatchCostModel(options.patch_pair_cost);
  graph.matrix_ = std::make_shared<const RatingMatrix>(std::move(matrix));
  graph.store_ = std::make_unique<MomentStore>(std::move(store));
  graph.index_ = std::make_shared<const PeerIndex>(std::move(index));
  FAIRREC_RETURN_NOT_OK(graph.AttachResidency());
  return graph;
}

Status IncrementalPeerGraph::AttachResidency() {
  if (options_.store_budget_bytes == 0) return Status::OK();
  FAIRREC_ASSIGN_OR_RETURN(
      TileResidencyManager manager,
      store_->WithBudget(options_.store_budget_bytes,
                         options_.store_spill_dir));
  residency_ = std::make_unique<TileResidencyManager>(std::move(manager));
  return residency_->EnforceBudget();
}

Status IncrementalPeerGraph::EnsureStoreResident() {
  if (residency_ == nullptr) return Status::OK();
  return residency_->RestoreAll();
}

std::vector<Peer> IncrementalPeerGraph::RefinishRow(
    const PairwiseSimilarityEngine& engine, UserId v) const {
  std::vector<Peer> row;
  const auto entries = store_->RowOf(v);
  row.reserve(entries.size());
  // Stage the row's stored moments into the batched kernel — the
  // bit-identical vectorized form of the finish the full sweep applies.
  // Stored moments are canonically oriented, so each stages as (min, max)
  // with the matching global means, the exact call the full sweep makes.
  // Guarded pairs finish to 0 exactly and delta > 0 (validated in Build),
  // so they are dropped without occupying a lane.
  {
    const double threshold = options_.peers.delta;
    auto stream = MakePearsonFinishStream<UserId>(
        engine.options(), [&row, threshold](UserId other, double sim) {
          if (sim >= threshold) row.push_back({other, sim});
        });
    for (const MomentEntry& entry : entries) {
      if (engine.SkipsFinish(entry.moments)) continue;
      const UserId a = std::min(v, entry.other);
      const UserId b = std::max(v, entry.other);
      stream.Stage(entry.moments, matrix_->UserMean(a), matrix_->UserMean(b),
                   entry.other);
    }
  }  // stream destruction flushes the tail
  const int32_t cap = options_.peers.max_peers_per_user;
  if (cap > 0 && row.size() > static_cast<size_t>(cap)) {
    std::nth_element(row.begin(), row.begin() + cap, row.end(), BetterPeer);
    row.resize(static_cast<size_t>(cap));
  }
  std::sort(row.begin(), row.end(), BetterPeer);
  return row;
}

Status IncrementalPeerGraph::RebuildFromScratch(RatingMatrix new_matrix) {
  // The planner's fallback is exactly the seeding build: swap the corpus,
  // re-sweep store and index. The result *is* the parity reference the
  // patch path is tested against, so the contract holds trivially here.
  // A fresh shared_ptr, not assignment through the old one: published
  // matrix snapshots stay immutable.
  matrix_ = std::make_shared<const RatingMatrix>(std::move(new_matrix));
  const PairwiseSimilarityEngine engine(matrix_.get(), options_.similarity,
                                        options_.engine);
  const auto start = std::chrono::steady_clock::now();
  // The rebuild replaces every tile, so the old manager's spill blobs are
  // all stale: drop the manager (its destructor removes the blobs) before
  // assigning through the stable store address, then re-attach.
  residency_.reset();
  FAIRREC_ASSIGN_OR_RETURN(*store_, engine.BuildMomentStore(options_.store));
  FAIRREC_ASSIGN_OR_RETURN(PeerIndex index,
                           engine.BuildPeerIndex(options_.peers));
  if (options_.calibrate_planner) {
    cost_model_.ObserveRebuild(RebuildCostUnits(), SecondsSince(start));
  }
  index_ = std::make_shared<const PeerIndex>(std::move(index));
  return AttachResidency();
}

double IncrementalPeerGraph::RebuildCostUnits() const {
  double co_rating_mass = 0.0;
  for (ItemId i = 0; i < matrix_->num_items(); ++i) {
    const double column = static_cast<double>(matrix_->UsersWhoRated(i).size());
    co_rating_mass += column * (column - 1.0) / 2.0;
  }
  // The finish pass touches every pair, but the batched kernel plus the
  // overlap fast path make it ~an order of magnitude cheaper per pair than
  // a patch-side touch.
  return co_rating_mass +
         static_cast<double>(PairwiseSimilarityEngine::PackedTriangleSize(
             matrix_->num_users())) /
             8.0;
}

Result<DeltaApplyStats> IncrementalPeerGraph::ApplyDelta(
    const RatingDelta& delta) {
  DeltaApplyStats stats;
  const std::span<const RatingTriple> upserts = delta.upserts();
  stats.num_upserts = static_cast<int64_t>(upserts.size());
  if (upserts.empty()) return stats;

  // ---- 0. Superseded values, read against the pre-delta corpus. ----
  std::vector<CellChange> cells;
  cells.reserve(upserts.size());
  for (const RatingTriple& t : upserts) {
    const std::optional<Rating> old = matrix_->GetRating(t.user, t.item);
    cells.push_back(
        {t.user, t.item, t.value, old.has_value(), old.value_or(0.0)});
  }

  // ---- 0.5. Batch-size-aware planning: patch or rebuild? The patch cost
  // scales with the touched-item column mass (each changed cell pairs
  // against its whole column, and each such pair pays the hash-map fold /
  // store merge / re-finish constants); the rebuild cost is the full
  // sweep's co-rating accumulation plus its vectorized finish pass. Past
  // the crossover, patching does strictly more expensive work than
  // re-sweeping — fall back to Build. With planning disabled the O(items)
  // estimate scan is skipped entirely and the stats estimates stay 0.
  double touched_mass = 0.0;
  if (options_.rebuild_fallback_ratio > 0.0) {
    for (const CellChange& cell : cells) {
      // Brand-new items have no pre-delta column (their first raters pair
      // only against the batch itself, a negligible mass).
      if (cell.item < 0 || cell.item >= matrix_->num_items()) continue;
      touched_mass +=
          static_cast<double>(matrix_->UsersWhoRated(cell.item).size());
    }
    // The exchange rate: the cost model's calibrated ratio once it has
    // timed at least one patch and one rebuild, the configured prior until
    // then (and always, when calibration is off).
    const double pair_cost = options_.calibrate_planner
                                 ? cost_model_.pair_cost()
                                 : options_.patch_pair_cost;
    stats.patch_pair_cost_used = pair_cost;
    stats.estimated_patch_cost = touched_mass * pair_cost;
    stats.estimated_rebuild_cost = RebuildCostUnits();
    if (stats.estimated_rebuild_cost >= options_.planner_min_rebuild_cost &&
        stats.estimated_patch_cost >
            options_.rebuild_fallback_ratio * stats.estimated_rebuild_cost) {
      FAIRREC_ASSIGN_OR_RETURN(RatingMatrix new_matrix,
                               delta.ApplyTo(*matrix_));
      FAIRREC_RETURN_NOT_OK(RebuildFromScratch(std::move(new_matrix)));
      stats.used_full_rebuild = true;
      if (residency_ != nullptr) stats.resident_bytes = store_->ResidentBytes();
      return stats;
    }
  }
  const auto patch_start = std::chrono::steady_clock::now();

  // ---- 1. Fold the batch into the corpus. ----
  FAIRREC_ASSIGN_OR_RETURN(RatingMatrix new_matrix, delta.ApplyTo(*matrix_));
  const std::vector<UserId> delta_users = delta.TouchedUsers();
  std::vector<uint8_t> in_delta(static_cast<size_t>(new_matrix.num_users()), 0);
  for (const UserId u : delta_users) in_delta[static_cast<size_t>(u)] = 1;
  if (residency_ != nullptr && new_matrix.num_users() > store_->num_users() &&
      store_->num_tiles() > 0) {
    // Growing the population resizes the tail tile's row vector, which
    // requires it resident — and stales any spill blob of its old shape.
    const size_t tail = store_->num_tiles() - 1;
    FAIRREC_RETURN_NOT_OK(residency_->EnsureResident(tail));
    store_->EnsureNumUsers(new_matrix.num_users());
    residency_->SyncShape();
    residency_->NoteTileDirty(tail);
  } else {
    store_->EnsureNumUsers(new_matrix.num_users());
    if (residency_ != nullptr) residency_->SyncShape();
  }

  // ---- 2. Delta sweep: only the touched item columns. ----
  // Each changed rating pairs against its item's post-delta column; the
  // superseded value (if any) is removed from the same pairs. Pairs between
  // two changed ratings of one item are handled once, on the canonical
  // orientation.
  std::vector<const CellChange*> by_item;
  by_item.reserve(cells.size());
  for (const CellChange& cell : cells) by_item.push_back(&cell);
  std::sort(by_item.begin(), by_item.end(),
            [](const CellChange* x, const CellChange* y) {
              return x->item != y->item ? x->item < y->item
                                        : x->user < y->user;
            });

  std::unordered_map<uint64_t, PairMoments> pair_deltas;
  std::vector<int32_t> change_at;  // column position -> index into the group
  for (size_t first = 0; first < by_item.size();) {
    size_t last = first;
    while (last < by_item.size() &&
           by_item[last]->item == by_item[first]->item) {
      ++last;
    }
    ++stats.touched_items;
    const ItemId item = by_item[first]->item;
    const auto column = new_matrix.UsersWhoRated(item);

    // Mark which column entries belong to this item's changed cells (both
    // are user-ascending, so one merge suffices).
    change_at.assign(column.size(), -1);
    {
      size_t g = first;
      for (size_t c = 0; c < column.size() && g < last; ++c) {
        if (column[c].user == by_item[g]->user) {
          change_at[c] = static_cast<int32_t>(g);
          ++g;
        }
      }
    }

    for (size_t g = first; g < last; ++g) {
      const CellChange& cell = *by_item[g];
      for (size_t c = 0; c < column.size(); ++c) {
        const UserId v = column[c].user;
        if (v == cell.user) continue;
        if (change_at[c] >= 0) {
          // Both sides of the pair changed on this item: fold once, from
          // the smaller user id.
          if (cell.user > v) continue;
          const CellChange& other = *by_item[static_cast<size_t>(change_at[c])];
          PairMoments& d = pair_deltas[PairKey(cell.user, v)];
          d.Add(cell.value, other.value);
          if (cell.has_old && other.has_old) {
            d.Remove(cell.old_value, other.old_value);
          }
        } else {
          // The neighbour's rating is unchanged; orient the co-rating so
          // the smaller user id is the 'a' role, as the full sweep does.
          const double r_v = column[c].value;
          if (cell.user < v) {
            PairMoments& d = pair_deltas[PairKey(cell.user, v)];
            d.Add(cell.value, r_v);
            if (cell.has_old) d.Remove(cell.old_value, r_v);
          } else {
            PairMoments& d = pair_deltas[PairKey(v, cell.user)];
            d.Add(r_v, cell.value);
            if (cell.has_old) d.Remove(r_v, cell.old_value);
          }
        }
      }
    }
    first = last;
  }

  std::vector<PairMomentsDelta> moment_deltas;
  moment_deltas.reserve(pair_deltas.size());
  for (const auto& [key, d] : pair_deltas) {
    moment_deltas.push_back({KeyA(key), KeyB(key), d});
  }
  std::sort(moment_deltas.begin(), moment_deltas.end(),
            [](const PairMomentsDelta& x, const PairMomentsDelta& y) {
              return x.a != y.a ? x.a < y.a : x.b < y.b;
            });
  stats.changed_pairs = static_cast<int64_t>(moment_deltas.size());

  // ---- 2.5. Under a residency budget, fault in and pin every tile the
  // patch reads or writes: the delta users' rows (the changed_sim expansion
  // below), and both rows of every changed pair (the store fold and the
  // re-finish reads). Pinned tiles cannot be evicted mid-patch; the budget
  // is re-enforced once the pins drop after the index swap. ----
  std::vector<size_t> pinned_tiles;
  std::vector<uint8_t> pin_mark;
  TileResidencyStats residency_before;
  const auto pin_user_tile = [&](UserId u) -> Status {
    const size_t t = residency_->TileOfUser(u);
    if (pin_mark[t] != 0) return Status::OK();
    pin_mark[t] = 1;
    FAIRREC_RETURN_NOT_OK(residency_->Pin(t));
    pinned_tiles.push_back(t);
    return Status::OK();
  };
  if (residency_ != nullptr) {
    residency_before = residency_->stats();
    pin_mark.assign(store_->num_tiles(), 0);
    for (const PairMomentsDelta& d : moment_deltas) {
      FAIRREC_RETURN_NOT_OK(pin_user_tile(d.a));
      FAIRREC_RETURN_NOT_OK(pin_user_tile(d.b));
    }
    for (const UserId u : delta_users) {
      FAIRREC_RETURN_NOT_OK(pin_user_tile(u));
    }
  }

  // ---- 3. The pairs whose similarity must be re-finished, gathered
  // *before* the fold (erased pairs must still reach their rows as
  // removals). Under global means a delta user's µ_u moved, so every stored
  // pair of that user re-finishes; under intersection means only changed
  // moments matter. ----
  std::vector<uint64_t> changed_sim;
  changed_sim.reserve(moment_deltas.size());
  for (const PairMomentsDelta& d : moment_deltas) {
    const PairMoments* existing = store_->FindPair(d.a, d.b);
    if (existing != nullptr && existing->n + d.delta.n == 0) {
      ++stats.erased_pairs;
    }
    changed_sim.push_back(PairKey(d.a, d.b));
  }
  if (!options_.similarity.intersection_means) {
    for (const UserId u : delta_users) {
      for (const MomentEntry& entry : store_->RowOf(u)) {
        changed_sim.push_back(u < entry.other ? PairKey(u, entry.other)
                                              : PairKey(entry.other, u));
      }
    }
  }
  std::sort(changed_sim.begin(), changed_sim.end());
  changed_sim.erase(std::unique(changed_sim.begin(), changed_sim.end()),
                    changed_sim.end());
  if (residency_ != nullptr) {
    // The re-finish also reads the *partner* rows of changed pairs (their
    // peer lists absorb the new similarities, and capped partners may
    // rebuild in full from their store row): pin those tiles too.
    for (const uint64_t key : changed_sim) {
      FAIRREC_RETURN_NOT_OK(pin_user_tile(KeyA(key)));
      FAIRREC_RETURN_NOT_OK(pin_user_tile(KeyB(key)));
    }
  }

  // ---- 4. Fold the moment deltas and swap in the new corpus. ----
  store_->ApplyPairDeltas(moment_deltas);
  if (residency_ != nullptr) {
    // The fold rewrote rows in both tiles of every changed pair: their
    // spill blobs (if any) predate the fold and must never be restored.
    for (const PairMomentsDelta& d : moment_deltas) {
      residency_->NoteTileDirty(residency_->TileOfUser(d.a));
      residency_->NoteTileDirty(residency_->TileOfUser(d.b));
    }
  }
  // A fresh shared_ptr, not assignment through the old one: holders of the
  // previous matrix_snapshot() keep their generation.
  matrix_ = std::make_shared<const RatingMatrix>(std::move(new_matrix));
  const PairwiseSimilarityEngine engine(matrix_.get(), options_.similarity,
                                        options_.engine);

  // ---- 5. Re-finish the changed pairs through the full build's finish:
  // stage into the batched kernel (bit-identical to FinishPair), with
  // erased and guarded pairs short-circuiting to the literal 0 the kernel's
  // mask pass would produce. ----
  std::vector<RowChange> row_changes;
  row_changes.reserve(changed_sim.size() * 2);
  {
    struct PairRef {
      UserId a, b;
    };
    auto stream = MakePearsonFinishStream<PairRef>(
        engine.options(), [&row_changes](PairRef pair, double sim) {
          row_changes.push_back({pair.a, pair.b, sim});
          row_changes.push_back({pair.b, pair.a, sim});
        });
    for (const uint64_t key : changed_sim) {
      const UserId a = KeyA(key);
      const UserId b = KeyB(key);
      const PairMoments* moments = store_->FindPair(a, b);
      if (moments == nullptr || engine.SkipsFinish(*moments)) {
        row_changes.push_back({a, b, 0.0});
        row_changes.push_back({b, a, 0.0});
        continue;
      }
      stream.Stage(*moments, matrix_->UserMean(a), matrix_->UserMean(b),
                   {a, b});
    }
  }  // stream destruction flushes the tail
  stats.refinished_pairs = static_cast<int64_t>(changed_sim.size());
  std::sort(row_changes.begin(), row_changes.end(),
            [](const RowChange& x, const RowChange& y) {
              return x.row != y.row ? x.row < y.row : x.other < y.other;
            });

  // ---- 6. Partition affected rows: delta users rebuild from the store
  // (their whole row moved); capped rows that lost or demoted an entry
  // rebuild too (the stored top-k cannot name the next-best candidate);
  // everything else takes an O(k) entry edit. ----
  const std::shared_ptr<const PeerIndex> base = index_;
  const int32_t cap = options_.peers.max_peers_per_user;
  const double threshold = options_.peers.delta;

  struct RowTask {
    UserId row = kInvalidUserId;
    size_t first = 0;
    size_t last = 0;
    bool full_refinish = false;
  };
  std::vector<RowTask> tasks;
  for (size_t first = 0; first < row_changes.size();) {
    size_t last = first;
    while (last < row_changes.size() &&
           row_changes[last].row == row_changes[first].row) {
      ++last;
    }
    const UserId v = row_changes[first].row;
    bool full_refinish = in_delta[static_cast<size_t>(v)] != 0;
    if (!full_refinish && cap > 0) {
      const auto old_row = base->PeersOf(v);
      if (old_row.size() == static_cast<size_t>(cap)) {
        for (size_t k = first; k < last && !full_refinish; ++k) {
          for (const Peer& entry : old_row) {
            if (entry.user != row_changes[k].other) continue;
            const Peer updated{row_changes[k].other, row_changes[k].sim};
            // A removal or demotion opens a slot the evicted candidates
            // would compete for — only the store row knows who wins.
            if (row_changes[k].sim < threshold || BetterPeer(entry, updated)) {
              full_refinish = true;
            }
            break;
          }
        }
      }
    }
    tasks.push_back({v, first, last, full_refinish});
    first = last;
  }

  // ---- 7. Build the replacement rows (rows are independent; the result
  // does not depend on scheduling). ----
  std::vector<std::vector<Peer>> new_rows(tasks.size());
  std::vector<uint8_t> replace(tasks.size(), 0);
  ThreadPool pool(options_.engine.num_threads);
  pool.ParallelFor(tasks.size(), [&](size_t t) {
    const RowTask& task = tasks[t];
    if (task.full_refinish) {
      new_rows[t] = RefinishRow(engine, task.row);
      replace[t] = 1;
      return;
    }
    const auto old_row = base->PeersOf(task.row);
    const bool was_full =
        cap > 0 && old_row.size() == static_cast<size_t>(cap);
    const auto changed_entry = [&](UserId user) -> const RowChange* {
      for (size_t k = task.first; k < task.last; ++k) {
        if (row_changes[k].other == user) return &row_changes[k];
      }
      return nullptr;
    };

    std::vector<Peer> row;
    row.reserve(old_row.size() + (task.last - task.first));
    for (const Peer& entry : old_row) {
      if (changed_entry(entry.user) == nullptr) row.push_back(entry);
    }
    for (size_t k = task.first; k < task.last; ++k) {
      const Peer candidate{row_changes[k].other, row_changes[k].sim};
      if (candidate.similarity < threshold) continue;  // removed / never in
      // A full row only admits new candidates that beat its worst kept
      // peer: anything else lost to the cap before the delta and still
      // loses now (insertions can only raise the cap-th best). Demotions
      // never reach this path — they force a full re-finish above.
      if (was_full && !BetterPeer(candidate, old_row.back()) &&
          std::find_if(old_row.begin(), old_row.end(), [&](const Peer& p) {
            return p.user == candidate.user;
          }) == old_row.end()) {
        continue;
      }
      row.push_back(candidate);
    }
    std::sort(row.begin(), row.end(), BetterPeer);
    if (cap > 0 && row.size() > static_cast<size_t>(cap)) {
      row.resize(static_cast<size_t>(cap));
    }
    const bool unchanged =
        row.size() == old_row.size() &&
        std::equal(row.begin(), row.end(), old_row.begin());
    if (!unchanged) {
      new_rows[t] = std::move(row);
      replace[t] = 1;
    }
  });

  // ---- 8. Splice and swap the served index. ----
  PeerIndex::PatchBuilder patch(base.get(), matrix_->num_users());
  for (size_t t = 0; t < tasks.size(); ++t) {
    if (replace[t] == 0) continue;
    patch.ReplaceRow(tasks[t].row, std::move(new_rows[t]));
    if (tasks[t].full_refinish) {
      ++stats.rows_refinished;
    } else {
      ++stats.rows_patched;
    }
  }
  index_ = std::make_shared<const PeerIndex>(std::move(patch).Build());

  // ---- 9. Drop the pins, re-enforce the budget, and report the apply's
  // residency traffic. ----
  if (residency_ != nullptr) {
    for (const size_t t : pinned_tiles) residency_->Unpin(t);
    FAIRREC_RETURN_NOT_OK(residency_->EnforceBudget());
    const TileResidencyStats& after = residency_->stats();
    stats.tile_restores = after.restores - residency_before.restores;
    stats.tile_spills = after.evictions - residency_before.evictions;
    stats.spill_bytes_written =
        after.spill_bytes_written - residency_before.spill_bytes_written;
    stats.resident_bytes = store_->ResidentBytes();
  }

  // Close the calibration loop: this patch's wall time, normalized by the
  // planner units it was predicted with, feeds the next decision.
  if (options_.calibrate_planner && options_.rebuild_fallback_ratio > 0.0) {
    cost_model_.ObservePatch(touched_mass, SecondsSince(patch_start));
  }
  return stats;
}

}  // namespace fairrec
