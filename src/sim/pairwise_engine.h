#ifndef FAIRREC_SIM_PAIRWISE_ENGINE_H_
#define FAIRREC_SIM_PAIRWISE_ENGINE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/result.h"
#include "ratings/rating_matrix.h"
#include "sim/moment_store.h"
#include "sim/pearson_finish.h"
#include "sim/pearson_finish_batch.h"
#include "sim/peer_index.h"
#include "sim/rating_similarity.h"

namespace fairrec {

class ThreadPool;

/// Tuning knobs for PairwiseSimilarityEngine.
struct PairwiseEngineOptions {
  /// Worker threads for the tile sweep (0 = hardware concurrency).
  size_t num_threads = 0;
  /// Edge length of one user-range tile. Each worker owns one B x B block of
  /// sufficient-statistics accumulators at a time (48 bytes per pair, so the
  /// default costs ~12.6 MiB per worker). Larger tiles amortize the inverted-
  /// index scan over more pairs; smaller tiles cap scratch memory.
  int32_t block_users = 512;
};

/// Phase split of one sweep, for the perf trajectory
/// (bench_similarity_precompute reports it as accumulate_seconds /
/// finish_seconds). Seconds are summed across workers' tile loops: with one
/// worker they are the wall split; with N workers divide by the achieved
/// parallelism for a wall estimate.
struct PairwiseEngineStats {
  /// Item-inverted-index accumulation (the O(co-ratings) phase).
  double accumulate_seconds = 0.0;
  /// Drain of the accumulated tiles through the batched Pearson finish
  /// kernel and the sink (the O(pairs) phase).
  double finish_seconds = 0.0;
  /// Pairs drained (every pair of the strict upper triangle, guarded or
  /// not; for the store-backed sweep of sim/tile_residency.h, every stored
  /// pair).
  int64_t pairs_finished = 0;

  // --- Residency traffic of a budgeted store-backed sweep
  // (BuildPeerIndexFromStore over a TileResidencyManager). The in-memory
  // engine paths never touch these; they stay zero there. ---

  /// Tiles faulted in from spill blobs during the sweep.
  int64_t tile_restores = 0;
  /// Tiles evicted to stay under the residency budget.
  int64_t tile_spills = 0;
  /// Spill blob bytes written during the sweep.
  uint64_t spill_bytes_written = 0;
  /// High-water of the moment store's resident bytes — the figure
  /// bench_outofcore gates against the configured budget.
  size_t peak_resident_bytes = 0;
};

/// All-pairs Pearson (Eq. 2) in O(co-ratings), not O(pairs).
///
/// The naive precompute evaluates RS(a, b) for every user pair via a sorted
/// merge of the two rating rows: O(U^2 * avg row) work and one heap-allocated
/// intersection per pair. This engine inverts the loop order: for each item i,
/// every pair (a, b) in U(i) x U(i) contributes one co-rating, so sweeping the
/// item-inverted index and accumulating the six sufficient statistics
///
///   n, sum(r_a), sum(r_b), sum(r_a^2), sum(r_b^2), sum(r_a * r_b)
///
/// touches each co-rating exactly once — total accumulation work
/// O(sum_i |U(i)|^2), which for the sparse matrices of collaborative
/// filtering is orders of magnitude below U^2 merges. Pearson is then
/// finished from the statistics (PairMoments, shared with the MapReduce
/// Job 2 reducers via sim/pearson_finish.h) in a single allocation-free
/// pass: pairs passing the overlap guard are staged into a FinishBatch and
/// flushed through the vectorized FinishPearsonBatch kernel
/// (sim/pearson_finish_batch.h — bit-identical to the scalar finish), the
/// rest short-circuit to 0. Both the global-means form the paper prints and
/// the GroupLens intersection-means variant are honoured, along with
/// min_overlap and shift_to_unit_interval.
///
/// Parallelism: the strict upper triangle of the pair matrix is tiled into
/// user-range blocks; each ThreadPool worker slot owns one tile at a time
/// plus a private accumulator block, so there are no locks and no shared
/// cache lines. Output entries are written exactly once. A per-item-block
/// column index (num_items x num_blocks offsets, built once per sweep)
/// replaces the per-tile binary search into every item's column, so a tile
/// locates its item sub-spans with two array loads.
///
/// Two output modes share the sweep:
///
///   * ComputeAll — the packed U^2/2 triangle, for callers that genuinely
///     need every pair (SimilarityMatrix::Precompute);
///   * BuildPeerIndex — each worker finishes its tile's pairs and feeds the
///     qualifying ones (sim >= delta, per-user bounded top-k heaps) straight
///     into PeerIndex::Builder, so the serving path's peer graph costs
///     O(U * k) memory and the triangle is never materialized.
///
/// Numerical note: finishing from raw moments is algebraically identical to
/// FinishPearson's centered two-pass form but rounds differently, so results
/// match to ~1e-12 (bit-for-bit on rating values whose sums and means are
/// exactly representable, e.g. the paper's 1..5 integer scale with power-of-
/// two overlap counts). Degenerate cases (overlap below min_overlap, zero
/// variance) return 0 exactly, as FinishPearson does. One deliberate
/// divergence: a constant co-rating row whose value is not exactly
/// representable (e.g. every rating 3.1) has true variance 0, which the
/// engine's relative-epsilon guard detects and maps to 0, while the centered
/// two-pass form can round the variance to ~1e-32 and report a spurious
/// correlation of +-1.
class PairwiseSimilarityEngine {
 public:
  /// `matrix` must outlive the engine. options.min_overlap must be >= 1
  /// (checked here, where the options are validated): 1 already disables
  /// the guard, since a pair with no co-ratings is "no evidence"
  /// regardless, and the invariant lets every finish path collapse the
  /// overlap and no-co-ratings guards into one comparison.
  explicit PairwiseSimilarityEngine(const RatingMatrix* matrix,
                                    RatingSimilarityOptions options = {},
                                    PairwiseEngineOptions engine_options = {});

  /// Entries in the packed strict upper triangle for `num_users` users.
  static size_t PackedTriangleSize(int32_t num_users);

  /// Offset of pair (a, b), a < b, in the packed row-major strict upper
  /// triangle. The single definition of the layout; SimilarityMatrix indexes
  /// its storage through this too.
  static size_t PackedTriangleIndex(UserId a, UserId b, int32_t num_users);

  /// Computes RS(a, b) for every pair a < b of the matrix's users into `out`,
  /// the packed row-major strict upper triangle (entry (a, b) at
  /// a*(n-1) - a*(a-1)/2 + b - a - 1). `out.size()` must equal
  /// PackedTriangleSize(matrix->num_users()). `stats`, when non-null,
  /// receives the sweep's accumulate/finish phase split.
  Status ComputeAll(std::span<double> out,
                    PairwiseEngineStats* stats = nullptr) const;

  /// Allocating convenience wrapper around the span overload.
  Result<std::vector<double>> ComputeAll() const;

  /// Runs the same tiled sweep but emits the sparse peer graph of Def. 1
  /// directly: every pair with RS(a, b) >= peer_options.delta enters both
  /// users' lists, bounded to the top max_peers_per_user by the BetterPeer
  /// order. The packed triangle is never allocated; peak memory is the
  /// per-worker accumulator tiles plus the peer lists themselves.
  Result<PeerIndex> BuildPeerIndex(const PeerIndexOptions& peer_options,
                                   PairwiseEngineStats* stats = nullptr) const;

  /// Runs the sweep once more, but captures the raw per-pair sufficient
  /// statistics of every co-rated pair (n > 0) instead of finishing them:
  /// the persistent MomentStore that seeds incremental peer-graph
  /// maintenance (sim/incremental_peer_graph.h). Each pair's moments come
  /// from exactly one tile, so the stored statistics are identical to what
  /// the triangle and peer-index modes finish from.
  Result<MomentStore> BuildMomentStore(
      const MomentStoreOptions& store_options = {},
      PairwiseEngineStats* stats = nullptr) const;

  /// Finishes Eq. 2 for pair (a, b) from its raw moments — the exact finish
  /// the sweep applies (shared guard order, global means from the matrix).
  /// `stats` must be accumulated in (a, b) orientation with a < b. Public so
  /// the incremental maintenance path re-finishes patched pairs through the
  /// byte-identical code path the full build used. Batch-heavy callers use
  /// SkipsFinish + StagePair instead and flush through FinishPearsonBatch —
  /// the kernel is bit-identical to this scalar path.
  double FinishPair(const PairMoments& stats, UserId a, UserId b) const;

  /// True when FinishPair would return 0 at the overlap guard without
  /// evaluating Eq. 2 — the staging fast path: callers drop such pairs (or
  /// record a literal 0) instead of occupying a batch lane. min_overlap >= 1
  /// is validated at construction, so the single comparison also covers the
  /// no-co-ratings case.
  bool SkipsFinish(const PairMoments& stats) const {
    return stats.n < options_.min_overlap;
  }

  const RatingSimilarityOptions& options() const { return options_; }
  const PairwiseEngineOptions& engine_options() const { return engine_options_; }

 private:
  /// One tile of the pair triangle: rows [row_first, row_last) x
  /// cols [col_first, col_last), with col_first >= row_first.
  struct Tile {
    UserId row_first = 0;
    UserId row_last = 0;
    UserId col_first = 0;
    UserId col_last = 0;
  };

  /// Per-item-block column offsets: offsets[i * (num_blocks + 1) + b] is the
  /// index into U(i) of the first entry with user id >= b * block. Built once
  /// per sweep so tiles slice their row/column sub-spans with two loads
  /// instead of a binary search per (item, tile).
  struct ColumnBlockIndex {
    int32_t block = 0;
    size_t num_blocks = 0;
    std::vector<uint32_t> offsets;
  };

  ColumnBlockIndex BuildColumnIndex(int32_t block, ThreadPool& pool) const;

  /// Accumulates one tile, then drains it. Sinks come in two shapes,
  /// selected at compile time by Sink::kFinishesPairs:
  ///
  ///   * finishing sinks (triangle writer, peer-index offers) receive
  ///     `sink.OnFinished(a, b, sim)`: the drain stages each pair that
  ///     passes the overlap guard into a FinishBatch and flushes through
  ///     the vectorized FinishPearsonBatch kernel, emitting guarded pairs
  ///     as literal 0 immediately (so OnFinished calls are not globally
  ///     ordered — only batches of them are);
  ///   * raw sinks (the moment store) receive `sink(a, b, stats)` with the
  ///     untouched statistics in (a asc, b asc) row-major order.
  ///
  /// `stats` (never null; per-worker) accrues the accumulate/finish phase
  /// split and the drained pair count.
  template <typename Sink>
  void SweepTile(const Tile& tile, const ColumnBlockIndex& columns,
                 std::vector<PairMoments>& acc, Sink& sink,
                 PairwiseEngineStats& stats) const;

  /// Shared driver: validates options, tiles the triangle, builds the column
  /// index, and sweeps every tile across the pool. `make_sink()` produces a
  /// fresh sink per tile. `stats`, when non-null, receives the per-worker
  /// phase splits summed over the whole sweep.
  template <typename SinkFactory>
  Status SweepAllTiles(const SinkFactory& make_sink,
                       PairwiseEngineStats* stats) const;

  const RatingMatrix* matrix_;
  RatingSimilarityOptions options_;
  PairwiseEngineOptions engine_options_;
};

}  // namespace fairrec

#endif  // FAIRREC_SIM_PAIRWISE_ENGINE_H_
