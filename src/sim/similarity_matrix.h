#ifndef FAIRREC_SIM_SIMILARITY_MATRIX_H_
#define FAIRREC_SIM_SIMILARITY_MATRIX_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "sim/user_similarity.h"

namespace fairrec {

/// Precomputed symmetric user-user similarity cache.
///
/// Peer discovery (Def. 1) evaluates simU for every (group member, user)
/// pair; precomputing into a triangular dense array makes repeated lookups
/// O(1) and deterministic. For a RatingSimilarity base over the full user
/// population, Precompute delegates to the sufficient-statistics engine,
/// whose values agree with the direct measure (and the MapReduce pipeline's
/// FinishPearson) to ~1e-12 rather than bit-for-bit — a pair sitting exactly
/// on the peer threshold delta can in principle flip sides between the
/// cached and direct paths (see pairwise_engine.h). Every other base is
/// evaluated through the measure itself and agrees exactly.
/// Self-similarity is defined as 1.0 by convention but is never used for
/// peer selection (a user is not their own peer).
///
/// Itself a UserSimilarity, so it can be dropped into any simU slot.
class SimilarityMatrix final : public UserSimilarity {
 public:
  /// Evaluates `base` on all pairs of [0, num_users). Computation is
  /// parallelized across rows with `num_threads` workers (0 = hardware).
  static Result<std::unique_ptr<SimilarityMatrix>> Precompute(
      const UserSimilarity& base, int32_t num_users, size_t num_threads = 0);

  double Compute(UserId a, UserId b) const override;
  std::string name() const override { return name_; }

  int32_t num_users() const { return num_users_; }

 private:
  SimilarityMatrix(int32_t num_users, std::string name);

  size_t IndexOf(UserId a, UserId b) const;

  int32_t num_users_;
  std::string name_;
  // Strict upper triangle, row-major: entry (a, b) with a < b.
  std::vector<double> values_;
};

}  // namespace fairrec

#endif  // FAIRREC_SIM_SIMILARITY_MATRIX_H_
