#include "sim/peer_index.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/blob_io.h"
#include "common/logging.h"

namespace fairrec {

namespace {

/// Stripe count for the builder's per-user locks. Power of two so the stripe
/// of a user id is a mask, sized to keep contention negligible even when
/// every hardware thread offers concurrently.
constexpr size_t kLockStripes = 256;

}  // namespace

PeerIndex::Builder::Builder(int32_t num_users, PeerIndexOptions options)
    : num_users_(num_users),
      options_(options),
      lists_(num_users > 0 ? static_cast<size_t>(num_users) : 0),
      stripes_(kLockStripes) {
  FAIRREC_CHECK(options.max_peers_per_user >= 0);
}

void PeerIndex::Builder::TrackBytes(int64_t delta) {
  const size_t now =
      current_bytes_.fetch_add(static_cast<size_t>(delta),
                               std::memory_order_relaxed) +
      static_cast<size_t>(delta);
  size_t peak = peak_bytes_.load(std::memory_order_relaxed);
  while (peak < now && !peak_bytes_.compare_exchange_weak(
                           peak, now, std::memory_order_relaxed)) {
  }
}

void PeerIndex::Builder::Offer(UserId u, UserId v, double similarity) {
  if (u < 0 || u >= num_users_ || v < 0 || v >= num_users_ || u == v) return;
  const Peer candidate{v, similarity};
  const size_t cap = static_cast<size_t>(options_.max_peers_per_user);

  std::lock_guard<std::mutex> lock(
      stripes_[static_cast<size_t>(u) & (kLockStripes - 1)]);
  std::vector<Peer>& list = lists_[static_cast<size_t>(u)];
  const size_t capacity_before = list.capacity();
  if (cap == 0) {
    // Unlimited: collect now, order in Build().
    list.push_back(candidate);
  } else {
    // Bounded min-heap under BetterPeer: the front is the worst retained
    // peer (max-heap where "larger" means "worse"), so the eviction test is
    // one comparison and ties at the boundary resolve by the same total
    // order PeerFinder's nth_element uses.
    if (list.empty()) list.reserve(cap);
    if (list.size() < cap) {
      list.push_back(candidate);
      std::push_heap(list.begin(), list.end(), BetterPeer);
    } else if (BetterPeer(candidate, list.front())) {
      std::pop_heap(list.begin(), list.end(), BetterPeer);
      list.back() = candidate;
      std::push_heap(list.begin(), list.end(), BetterPeer);
    }
  }
  if (list.capacity() != capacity_before) {
    TrackBytes(static_cast<int64_t>(
        (list.capacity() - capacity_before) * sizeof(Peer)));
  }
}

void PeerIndex::Builder::OfferPair(UserId a, UserId b, double similarity) {
  Offer(a, b, similarity);
  Offer(b, a, similarity);
}

PeerIndex PeerIndex::Builder::Build() && {
  PeerIndex index;
  index.options_ = options_;
  index.num_users_ = num_users_;
  if (num_users_ <= 0) {
    index.build_peak_bytes_ = peak_bytes();
    return index;
  }

  index.offsets_.assign(static_cast<size_t>(num_users_) + 1, 0);
  size_t total = 0;
  for (size_t u = 0; u < lists_.size(); ++u) {
    index.offsets_[u] = total;
    total += lists_[u].size();
  }
  index.offsets_[lists_.size()] = total;

  index.entries_.reserve(total);
  TrackBytes(static_cast<int64_t>(total * sizeof(Peer) +
                                  index.offsets_.size() * sizeof(size_t)));
  for (std::vector<Peer>& list : lists_) {
    std::sort(list.begin(), list.end(), BetterPeer);
    index.entries_.insert(index.entries_.end(), list.begin(), list.end());
    // Release each source list as soon as it is copied so the transient
    // lists + CSR overlap stays one list wide, not the whole graph.
    const size_t freed = list.capacity() * sizeof(Peer);
    std::vector<Peer>().swap(list);
    TrackBytes(-static_cast<int64_t>(freed));
  }
  index.build_peak_bytes_ = peak_bytes();
  return index;
}

PeerIndex::PatchBuilder::PatchBuilder(const PeerIndex* base, int32_t num_users)
    : base_(base), num_users_(num_users) {
  FAIRREC_CHECK(base != nullptr);
  FAIRREC_CHECK(num_users >= base->num_users());
  replaced_slot_.assign(static_cast<size_t>(num_users), -1);
}

void PeerIndex::PatchBuilder::ReplaceRow(UserId u, std::vector<Peer> row) {
  FAIRREC_CHECK(u >= 0 && u < num_users_);
#ifndef NDEBUG
  for (size_t k = 1; k < row.size(); ++k) {
    FAIRREC_DCHECK(BetterPeer(row[k - 1], row[k]));
  }
#endif
  int32_t& slot = replaced_slot_[static_cast<size_t>(u)];
  if (slot >= 0) {
    rows_[static_cast<size_t>(slot)] = std::move(row);
    return;
  }
  slot = static_cast<int32_t>(rows_.size());
  rows_.push_back(std::move(row));
}

PeerIndex PeerIndex::PatchBuilder::Build() && {
  PeerIndex index;
  index.options_ = base_->options_;
  index.num_users_ = num_users_;
  if (num_users_ <= 0) {
    index.build_peak_bytes_ = base_->build_peak_bytes_;
    return index;
  }

  index.offsets_.assign(static_cast<size_t>(num_users_) + 1, 0);
  size_t total = 0;
  for (UserId u = 0; u < num_users_; ++u) {
    index.offsets_[static_cast<size_t>(u)] = total;
    const int32_t slot = replaced_slot_[static_cast<size_t>(u)];
    total += slot >= 0 ? rows_[static_cast<size_t>(slot)].size()
                       : base_->PeersOf(u).size();
  }
  index.offsets_[static_cast<size_t>(num_users_)] = total;

  index.entries_.reserve(total);
  for (UserId u = 0; u < num_users_; ++u) {
    const int32_t slot = replaced_slot_[static_cast<size_t>(u)];
    if (slot >= 0) {
      const std::vector<Peer>& row = rows_[static_cast<size_t>(slot)];
      index.entries_.insert(index.entries_.end(), row.begin(), row.end());
    } else {
      const auto row = base_->PeersOf(u);
      index.entries_.insert(index.entries_.end(), row.begin(), row.end());
    }
  }
  // The patch's transient cost: the base CSR plus the new CSR plus the
  // replacement rows coexist until the swap. Report it the same way
  // Builder::Build reports its high-water mark so the incremental bench can
  // contrast the two.
  size_t replacement_bytes = 0;
  for (const std::vector<Peer>& row : rows_) {
    replacement_bytes += row.capacity() * sizeof(Peer);
  }
  index.build_peak_bytes_ = base_->StorageBytes() + index.StorageBytes() +
                            replacement_bytes;
  rows_.clear();
  replaced_slot_.clear();
  return index;
}

std::span<const Peer> PeerIndex::PeersOf(UserId u) const {
  if (u < 0 || u >= num_users_) return {};
  const size_t first = offsets_[static_cast<size_t>(u)];
  const size_t last = offsets_[static_cast<size_t>(u) + 1];
  return std::span<const Peer>(entries_).subspan(first, last - first);
}

size_t PeerIndex::StorageBytes() const {
  return entries_.size() * sizeof(Peer) + offsets_.size() * sizeof(size_t);
}

void PeerIndex::SerializeTo(std::string& out) const {
  BlobWriter writer(&out);
  writer.F64(options_.delta);
  writer.I32(options_.max_peers_per_user);
  writer.I32(num_users_);
  writer.U64(static_cast<uint64_t>(entries_.size()));
  for (UserId u = 0; u < num_users_; ++u) {
    const auto row = PeersOf(u);
    writer.U64(static_cast<uint64_t>(row.size()));
    for (const Peer& peer : row) {
      writer.I32(peer.user);
      writer.F64(peer.similarity);
    }
  }
}

Result<PeerIndex> PeerIndex::Deserialize(std::string_view bytes) {
  BlobReader reader(bytes);
  PeerIndexOptions options;
  int32_t num_users = 0;
  uint64_t num_entries = 0;
  if (!reader.F64(&options.delta) || !reader.I32(&options.max_peers_per_user) ||
      !reader.I32(&num_users) || !reader.U64(&num_entries)) {
    return Status::DataLoss("truncated peer index header");
  }
  if (!std::isfinite(options.delta) || options.max_peers_per_user < 0 ||
      num_users < 0) {
    return Status::DataLoss("impossible peer index header");
  }
  constexpr size_t kPeerWireBytes = sizeof(int32_t) + sizeof(double);
  if (num_entries > reader.remaining() / kPeerWireBytes) {
    return Status::DataLoss("peer count exceeds the bytes present");
  }

  PeerIndex index;
  index.options_ = options;
  index.num_users_ = num_users;
  if (num_users > 0) {
    index.offsets_.assign(static_cast<size_t>(num_users) + 1, 0);
    index.entries_.reserve(static_cast<size_t>(num_entries));
  }
  for (UserId u = 0; u < num_users; ++u) {
    uint64_t row_len = 0;
    if (!reader.U64(&row_len)) {
      return Status::DataLoss("truncated peer index row");
    }
    if (options.max_peers_per_user > 0 &&
        row_len > static_cast<uint64_t>(options.max_peers_per_user)) {
      return Status::DataLoss("peer row exceeds the index cap");
    }
    Peer prev{kInvalidUserId, 0.0};
    for (uint64_t k = 0; k < row_len; ++k) {
      Peer peer;
      if (!reader.I32(&peer.user) || !reader.F64(&peer.similarity)) {
        return Status::DataLoss("truncated peer index row");
      }
      if (peer.user < 0 || peer.user >= num_users || peer.user == u) {
        return Status::DataLoss("peer id out of range");
      }
      if (!std::isfinite(peer.similarity) ||
          peer.similarity < options.delta) {
        return Status::DataLoss("peer similarity below the index threshold");
      }
      // Strict BetterPeer order: equal (similarity, user) duplicates are
      // impossible too.
      if (k > 0 && !BetterPeer(prev, peer)) {
        return Status::DataLoss("peer row not in BetterPeer order");
      }
      prev = peer;
      index.entries_.push_back(peer);
    }
    index.offsets_[static_cast<size_t>(u) + 1] = index.entries_.size();
  }
  if (index.entries_.size() != num_entries) {
    return Status::DataLoss("peer row lengths disagree with total");
  }
  if (!reader.exhausted()) {
    return Status::DataLoss("trailing bytes in peer index");
  }
  return index;
}

bool operator==(const PeerIndex& a, const PeerIndex& b) {
  return a.num_users_ == b.num_users_ &&
         a.options_.delta == b.options_.delta &&
         a.options_.max_peers_per_user == b.options_.max_peers_per_user &&
         a.offsets_ == b.offsets_ && a.entries_ == b.entries_;
}

}  // namespace fairrec
