#include "sim/similarity_matrix.h"

#include <span>
#include <utility>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "sim/pairwise_engine.h"
#include "sim/rating_similarity.h"

namespace fairrec {

SimilarityMatrix::SimilarityMatrix(int32_t num_users, std::string name)
    : num_users_(num_users), name_("cached-" + std::move(name)) {
  const size_t n = static_cast<size_t>(num_users);
  values_.assign(n * (n - 1) / 2, 0.0);
}

size_t SimilarityMatrix::IndexOf(UserId a, UserId b) const {
  FAIRREC_DCHECK(a >= 0 && b >= 0 && a < num_users_ && b < num_users_ && a != b);
  if (a > b) std::swap(a, b);
  // Shared with the engine so the packed layout has a single definition.
  return PairwiseSimilarityEngine::PackedTriangleIndex(a, b, num_users_);
}

Result<std::unique_ptr<SimilarityMatrix>> SimilarityMatrix::Precompute(
    const UserSimilarity& base, int32_t num_users, size_t num_threads) {
  if (num_users <= 0) {
    return Status::InvalidArgument("similarity matrix needs >= 1 user");
  }
  auto matrix = std::unique_ptr<SimilarityMatrix>(
      new SimilarityMatrix(num_users, base.name()));
  if (num_users == 1) return matrix;

  // Fast path: for a plain Pearson base over the full user population, the
  // sufficient-statistics engine fills the packed triangle in O(co-ratings)
  // instead of O(pairs * merge). Results agree with the generic path to
  // ~1e-12 (see pairwise_engine.h for the rounding note).
  if (const auto* rating = dynamic_cast<const RatingSimilarity*>(&base);
      rating != nullptr && rating->matrix().num_users() == num_users) {
    PairwiseEngineOptions engine_options;
    engine_options.num_threads = num_threads;
    const PairwiseSimilarityEngine engine(&rating->matrix(), rating->options(),
                                          engine_options);
    FAIRREC_RETURN_NOT_OK(engine.ComputeAll(std::span<double>(matrix->values_)));
    return matrix;
  }

  ThreadPool pool(num_threads);
  // One task per row; the base measure must be thread-safe (interface
  // contract).
  SimilarityMatrix* m = matrix.get();
  const UserSimilarity* src = &base;
  pool.ParallelFor(static_cast<size_t>(num_users) - 1, [m, src](size_t row) {
    const auto a = static_cast<UserId>(row);
    for (UserId b = a + 1; b < m->num_users_; ++b) {
      m->values_[m->IndexOf(a, b)] = src->Compute(a, b);
    }
  });
  return matrix;
}

double SimilarityMatrix::Compute(UserId a, UserId b) const {
  if (a < 0 || b < 0 || a >= num_users_ || b >= num_users_) return 0.0;
  if (a == b) return 1.0;
  return values_[IndexOf(a, b)];
}

}  // namespace fairrec
