#ifndef FAIRREC_SIM_HYBRID_SIMILARITY_H_
#define FAIRREC_SIM_HYBRID_SIMILARITY_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "sim/user_similarity.h"

namespace fairrec {

/// Convex combination of similarity measures. The paper presents the three
/// measures of §V as alternatives for the simU slot; combining them is the
/// natural deployment mode (ratings for taste, profile text for context,
/// ontology for clinical proximity), and the EXT-A ablation compares the
/// blend against each component.
///
/// All components should be on a [0, 1] scale (use
/// RatingSimilarityOptions::shift_to_unit_interval for Pearson) so that the
/// blend stays interpretable; this is the caller's responsibility.
class HybridSimilarity final : public UserSimilarity {
 public:
  /// Component measure plus its blend weight.
  struct WeightedComponent {
    const UserSimilarity* measure = nullptr;  // not owned; must outlive
    double weight = 0.0;
  };

  /// Validates: at least one component, non-null measures, non-negative
  /// weights summing to something positive. Weights are normalized to sum 1.
  static Result<std::unique_ptr<HybridSimilarity>> Create(
      std::vector<WeightedComponent> components);

  double Compute(UserId a, UserId b) const override;
  std::string name() const override;

  const std::vector<WeightedComponent>& components() const { return components_; }

 private:
  explicit HybridSimilarity(std::vector<WeightedComponent> components);

  std::vector<WeightedComponent> components_;
};

}  // namespace fairrec

#endif  // FAIRREC_SIM_HYBRID_SIMILARITY_H_
