#ifndef FAIRREC_SIM_RATING_SIMILARITY_H_
#define FAIRREC_SIM_RATING_SIMILARITY_H_

#include <span>
#include <string>
#include <utility>
#include <vector>

#include "ratings/rating_matrix.h"
#include "sim/user_similarity.h"

namespace fairrec {

/// Controls for RatingSimilarity.
struct RatingSimilarityOptions {
  /// Minimum number of co-rated items for the correlation to be defined;
  /// below it the similarity is 0. The paper does not guard this; 1 disables
  /// the guard. With 1 co-rated item the numerator/denominator are degenerate
  /// (zero variance), which already yields 0.
  int32_t min_overlap = 2;
  /// Use means over the co-rated intersection instead of each user's global
  /// mean. Eq. 2 as printed uses the *global* mean of I(u) (default false);
  /// the intersection variant is the classic GroupLens form, exposed for the
  /// EXT-A ablation.
  bool intersection_means = false;
  /// Map the correlation from [-1, 1] to [0, 1] via (r + 1) / 2. Useful when
  /// the score feeds Eq. 1 weights or a hybrid combination, both of which
  /// assume non-negative weights.
  bool shift_to_unit_interval = false;
};

/// Finishes Eq. 2 from the co-rated rating pairs of two users.
///
/// `shared` holds (rating_a, rating_b) for every co-rated item, in ascending
/// item order; `global_mean_a` / `global_mean_b` are the users' means over
/// their full rating rows (ignored under options.intersection_means). This is
/// the single implementation both the serial RatingSimilarity and the
/// MapReduce Job 2 call, so the two paths agree bit-for-bit.
double FinishPearson(std::span<const std::pair<Rating, Rating>> shared,
                     double global_mean_a, double global_mean_b,
                     const RatingSimilarityOptions& options);

/// RS(u, u'): Pearson correlation over co-rated items (Eq. 2).
///
/// Undefined cases (overlap below min_overlap, or zero variance on either
/// side) return 0, i.e. "no evidence of similarity".
class RatingSimilarity final : public UserSimilarity {
 public:
  /// The matrix must outlive this object.
  explicit RatingSimilarity(const RatingMatrix* matrix,
                            RatingSimilarityOptions options = {});

  /// Reusable co-rated pair buffer for the allocation-free Compute overload.
  /// One per calling thread; grows to the longest intersection seen.
  using PairScratch = std::vector<std::pair<Rating, Rating>>;

  /// Uses a thread-local PairScratch, so repeated calls do not allocate after
  /// the first on each thread.
  double Compute(UserId a, UserId b) const override;

  /// Same computation with a caller-provided scratch buffer (cleared here).
  /// The all-pairs fallback path passes one buffer for the whole sweep.
  double Compute(UserId a, UserId b, PairScratch& scratch) const;

  std::string name() const override { return "pearson"; }

  const RatingSimilarityOptions& options() const { return options_; }
  const RatingMatrix& matrix() const { return *matrix_; }

 private:
  const RatingMatrix* matrix_;
  RatingSimilarityOptions options_;
};

}  // namespace fairrec

#endif  // FAIRREC_SIM_RATING_SIMILARITY_H_
