#include "sim/moment_store.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <utility>

#include "common/blob_io.h"
#include "common/logging.h"

namespace fairrec {

namespace {

/// Stripe count for the builder's row locks (power of two, see
/// PeerIndex::Builder).
constexpr size_t kLockStripes = 256;

/// Serialized footprint of one MomentEntry: other id + n + five sums.
/// Written field-by-field, so struct padding never reaches the blob.
constexpr size_t kEntryWireBytes =
    sizeof(int32_t) * 2 + sizeof(double) * 5;

/// Capacity slack kept on compacted rows (a few entries, ~0.2% of a typical
/// row's bytes). Incremental folds mostly add one pair to a row; headroom
/// turns that insert into a tail shift instead of a reallocation-plus-copy
/// of the whole row — the dominant cost of ApplyPairDeltas otherwise.
constexpr size_t kRowSlackEntries = 4;

void AppendRaw(std::string& out, const void* data, size_t bytes) {
  out.append(static_cast<const char*>(data), bytes);
}

bool ReadRaw(std::string_view in, size_t& cursor, void* data, size_t bytes) {
  if (cursor + bytes > in.size()) return false;
  std::memcpy(data, in.data() + cursor, bytes);
  cursor += bytes;
  return true;
}

size_t RowBytes(const std::vector<MomentEntry>& row) {
  return row.capacity() * sizeof(MomentEntry);
}

}  // namespace

// ---------------------------------------------------------------------------
// Builder
// ---------------------------------------------------------------------------

MomentStore::Builder::Builder(int32_t num_users, MomentStoreOptions options)
    : num_users_(num_users),
      options_(options),
      rows_(num_users > 0 ? static_cast<size_t>(num_users) : 0),
      stripes_(kLockStripes) {
  FAIRREC_CHECK(options.tile_users > 0);
}

void MomentStore::Builder::Add(UserId a, UserId b, const PairMoments& moments) {
  FAIRREC_DCHECK(a < b);
  if (a < 0 || b >= num_users_ || moments.n == 0) return;
  {
    std::lock_guard<std::mutex> lock(
        stripes_[static_cast<size_t>(a) & (kLockStripes - 1)]);
    rows_[static_cast<size_t>(a)].push_back({b, moments});
  }
  {
    std::lock_guard<std::mutex> lock(
        stripes_[static_cast<size_t>(b) & (kLockStripes - 1)]);
    rows_[static_cast<size_t>(b)].push_back({a, moments});
  }
}

MomentStore MomentStore::Builder::Build() && {
  MomentStore store;
  store.options_ = options_;
  store.EnsureNumUsers(num_users_);
  for (size_t u = 0; u < rows_.size(); ++u) {
    std::vector<MomentEntry>& row = rows_[u];
    std::sort(row.begin(), row.end(),
              [](const MomentEntry& x, const MomentEntry& y) {
                return x.other < y.other;
              });
#ifndef NDEBUG
    for (size_t k = 1; k < row.size(); ++k) {
      // Each pair is added exactly once; callers with per-shard partials
      // merge them (in a deterministic order) before Add, so the stored
      // moments never depend on builder thread interleaving.
      FAIRREC_DCHECK(row[k].other != row[k - 1].other);
    }
#endif
    const auto user = static_cast<UserId>(u);
    for (const MomentEntry& entry : row) {
      if (user < entry.other) ++store.num_pairs_;
    }
    // Compact to size + a little slack (instead of shrink_to_fit) so the
    // first incremental insert into a row shifts instead of reallocating.
    std::vector<MomentEntry> compact;
    compact.reserve(row.size() + kRowSlackEntries);
    compact.assign(row.begin(), row.end());
    std::vector<MomentEntry>().swap(row);
    store.MutableRow(user) = std::move(compact);
  }
  rows_.clear();
  for (size_t t = 0; t < store.tiles_.size(); ++t) {
    store.RecomputeTileBytes(t);
  }
  store.NotePeak();
  return store;
}

// ---------------------------------------------------------------------------
// MomentStore
// ---------------------------------------------------------------------------

MomentStore::Tile& MomentStore::TileOf(UserId u) {
  return tiles_[static_cast<size_t>(u) /
                static_cast<size_t>(options_.tile_users)];
}

const MomentStore::Tile& MomentStore::TileOf(UserId u) const {
  return tiles_[static_cast<size_t>(u) /
                static_cast<size_t>(options_.tile_users)];
}

std::vector<MomentEntry>& MomentStore::MutableRow(UserId u) {
  Tile& tile = TileOf(u);
  FAIRREC_DCHECK(tile.resident);
  return tile.rows[static_cast<size_t>(u) %
                   static_cast<size_t>(options_.tile_users)];
}

std::span<const MomentEntry> MomentStore::RowOf(UserId u) const {
  if (u < 0 || u >= num_users_) return {};
  const Tile& tile = TileOf(u);
  FAIRREC_DCHECK(tile.resident);
  return tile.rows[static_cast<size_t>(u) %
                   static_cast<size_t>(options_.tile_users)];
}

const PairMoments* MomentStore::FindPair(UserId a, UserId b) const {
  const auto row = RowOf(a);
  const auto it = std::lower_bound(
      row.begin(), row.end(), b,
      [](const MomentEntry& entry, UserId target) {
        return entry.other < target;
      });
  if (it == row.end() || it->other != b) return nullptr;
  return &it->moments;
}

void MomentStore::EnsureNumUsers(int32_t num_users) {
  FAIRREC_CHECK(options_.tile_users > 0);
  if (num_users <= num_users_) return;
  num_users_ = num_users;
  const size_t tile = static_cast<size_t>(options_.tile_users);
  const size_t needed_tiles =
      (static_cast<size_t>(num_users) + tile - 1) / tile;
  if (tiles_.size() < needed_tiles) tiles_.resize(needed_tiles);
  for (size_t t = 0; t < tiles_.size(); ++t) {
    const size_t rows_in_tile =
        std::min(tile, static_cast<size_t>(num_users) - t * tile);
    if (tiles_[t].rows.size() < rows_in_tile) {
      FAIRREC_CHECK(tiles_[t].resident);
      tiles_[t].rows.resize(rows_in_tile);
    }
  }
}

void MomentStore::AppendRowEntry(UserId u, UserId other,
                                 const PairMoments& moments) {
  FAIRREC_DCHECK(u >= 0 && u < num_users_);
  FAIRREC_DCHECK(other >= 0 && other < num_users_ && other != u);
  FAIRREC_DCHECK(moments.n > 0);
  std::vector<MomentEntry>& row = MutableRow(u);
  FAIRREC_DCHECK(row.empty() || row.back().other < other);
  row.push_back({other, moments});
  if (u < other) ++num_pairs_;
}

void MomentStore::FinalizeAssembledTile(size_t t) {
  FAIRREC_DCHECK(t < tiles_.size());
  Tile& tile = tiles_[t];
  FAIRREC_CHECK(tile.resident);
  for (std::vector<MomentEntry>& row : tile.rows) {
    // push_back growth leaves geometric capacity; compact to the Builder's
    // size + slack policy so evict/restore is byte-accounting neutral and
    // the resident budget reflects real entry mass, not growth slack.
    if (row.capacity() > row.size() + kRowSlackEntries) {
      std::vector<MomentEntry> compact;
      compact.reserve(row.size() + kRowSlackEntries);
      compact.assign(row.begin(), row.end());
      row = std::move(compact);
    }
  }
  RecomputeTileBytes(t);
  NotePeak();
}

void MomentStore::ApplyPairDeltas(std::span<const PairMomentsDelta> deltas) {
  if (deltas.empty()) return;

  // Scatter the canonical deltas into per-row change lists: each pair
  // (a, b) lands in row a keyed by b and in row b keyed by a. Sorting by
  // (row, other) lets every affected row absorb its changes in one sorted
  // merge against its existing entries.
  struct RowChange {
    UserId row = kInvalidUserId;
    UserId other = kInvalidUserId;
    const PairMoments* delta = nullptr;
  };
  std::vector<RowChange> changes;
  changes.reserve(deltas.size() * 2);
  for (const PairMomentsDelta& d : deltas) {
    FAIRREC_DCHECK(d.a >= 0 && d.a < d.b && d.b < num_users_);
    changes.push_back({d.a, d.b, &d.delta});
    changes.push_back({d.b, d.a, &d.delta});
  }
  std::sort(changes.begin(), changes.end(),
            [](const RowChange& x, const RowChange& y) {
              return x.row != y.row ? x.row < y.row : x.other < y.other;
            });

  // Per affected row, one merge walk classifies the changes: moment merges
  // of existing pairs are written in place (no movement at all — the common
  // case for rows that already co-rate the delta users), a single insert
  // into a row with capacity headroom is a tail shift, and only rows with
  // several structural edits pay a scratch rebuild. This keeps the fold's
  // byte traffic proportional to the edits, not to three copies of every
  // affected row.
  struct PendingInsert {
    size_t pos = 0;  // position in the pre-edit row
    UserId other = kInvalidUserId;
    const PairMoments* delta = nullptr;
  };
  std::vector<PendingInsert> inserts;
  std::vector<size_t> erases;  // ascending positions in the pre-edit row
  std::vector<MomentEntry> scratch;
  for (size_t first = 0; first < changes.size();) {
    size_t last = first;
    while (last < changes.size() && changes[last].row == changes[first].row) {
      ++last;
    }
    const UserId u = changes[first].row;
    std::vector<MomentEntry>& row = MutableRow(u);
    inserts.clear();
    erases.clear();
    size_t pos = 0;
    for (size_t c = first; c < last; ++c) {
      const UserId other = changes[c].other;
      pos = static_cast<size_t>(
          std::lower_bound(row.begin() + static_cast<ptrdiff_t>(pos),
                           row.end(), other,
                           [](const MomentEntry& entry, UserId target) {
                             return entry.other < target;
                           }) -
          row.begin());
      if (pos < row.size() && row[pos].other == other) {
        PairMoments merged = row[pos].moments;
        merged.Merge(*changes[c].delta);
        FAIRREC_DCHECK(merged.n >= 0);
        if (merged.n > 0) {
          row[pos].moments = merged;  // in place
        } else {
          erases.push_back(pos);
          if (u < other) --num_pairs_;  // count once, on the canonical side
        }
      } else {
        // Inserting a brand-new pair: the delta must describe real
        // co-ratings, not the removal of ones we never stored.
        FAIRREC_DCHECK(changes[c].delta->n > 0);
        inserts.push_back({pos, other, changes[c].delta});
        if (u < other) ++num_pairs_;
      }
    }

    if (inserts.empty() && erases.empty()) {
      first = last;
      continue;  // merges only: the row was edited in place
    }
    if (inserts.empty()) {
      // Erases only: one forward compaction from the first hole.
      size_t write = erases[0];
      size_t next_erase = 0;
      for (size_t read = erases[0]; read < row.size(); ++read) {
        if (next_erase < erases.size() && erases[next_erase] == read) {
          ++next_erase;
          continue;
        }
        row[write++] = row[read];
      }
      row.resize(write);
    } else if (erases.empty() && inserts.size() == 1 &&
               row.size() < row.capacity()) {
      row.insert(row.begin() + static_cast<ptrdiff_t>(inserts[0].pos),
                 {inserts[0].other, *inserts[0].delta});
    } else {
      // General case: rebuild through a shared scratch buffer, then move it
      // into a row sized with slack so the next fold's insert is cheap.
      scratch.clear();
      scratch.reserve(row.size() + inserts.size());
      size_t read = 0;
      size_t next_erase = 0;
      for (const PendingInsert& pending : inserts) {
        while (read < pending.pos) {
          if (next_erase < erases.size() && erases[next_erase] == read) {
            ++next_erase;
            ++read;
            continue;
          }
          scratch.push_back(row[read++]);
        }
        scratch.push_back({pending.other, *pending.delta});
      }
      while (read < row.size()) {
        if (next_erase < erases.size() && erases[next_erase] == read) {
          ++next_erase;
          ++read;
          continue;
        }
        scratch.push_back(row[read++]);
      }
      if (row.capacity() < scratch.size()) {
        std::vector<MomentEntry> grown;
        grown.reserve(scratch.size() + kRowSlackEntries);
        row = std::move(grown);
      }
      row.assign(scratch.begin(), scratch.end());
    }
    first = last;
  }

  // Affected tiles: recompute byte accounting once per tile.
  const size_t tile = static_cast<size_t>(options_.tile_users);
  size_t prev_tile = tiles_.size();
  for (const RowChange& change : changes) {
    const size_t t = static_cast<size_t>(change.row) / tile;
    if (t != prev_tile) {
      RecomputeTileBytes(t);
      prev_tile = t;
    }
  }
  NotePeak();
}

std::pair<UserId, UserId> MomentStore::TileUserRange(size_t t) const {
  FAIRREC_DCHECK(t < tiles_.size());
  const auto first =
      static_cast<UserId>(t * static_cast<size_t>(options_.tile_users));
  const auto last = static_cast<UserId>(
      std::min<size_t>(static_cast<size_t>(first) + options_.tile_users,
                       static_cast<size_t>(num_users_)));
  return {first, last};
}

bool MomentStore::TileResident(size_t t) const {
  FAIRREC_DCHECK(t < tiles_.size());
  return tiles_[t].resident;
}

size_t MomentStore::TileBytes(size_t t) const {
  FAIRREC_DCHECK(t < tiles_.size());
  return tiles_[t].bytes;
}

std::string MomentStore::SerializeTile(size_t t) const {
  FAIRREC_DCHECK(t < tiles_.size());
  const Tile& tile = tiles_[t];
  FAIRREC_CHECK(tile.resident);
  std::string blob;
  const auto num_rows = static_cast<uint32_t>(tile.rows.size());
  AppendRaw(blob, &num_rows, sizeof(num_rows));
  for (const std::vector<MomentEntry>& row : tile.rows) {
    const auto count = static_cast<uint64_t>(row.size());
    AppendRaw(blob, &count, sizeof(count));
    for (const MomentEntry& entry : row) {
      AppendRaw(blob, &entry.other, sizeof(entry.other));
      AppendRaw(blob, &entry.moments.n, sizeof(entry.moments.n));
      AppendRaw(blob, &entry.moments.sum_a, sizeof(double));
      AppendRaw(blob, &entry.moments.sum_b, sizeof(double));
      AppendRaw(blob, &entry.moments.sum_aa, sizeof(double));
      AppendRaw(blob, &entry.moments.sum_bb, sizeof(double));
      AppendRaw(blob, &entry.moments.sum_ab, sizeof(double));
    }
  }
  // While the caller holds this blob the process carries both the resident
  // rows and their serialized copy — the spill path's transient footprint.
  NoteTransientPeak(blob.size());
  return blob;
}

size_t MomentStore::EvictTile(size_t t) {
  FAIRREC_DCHECK(t < tiles_.size());
  Tile& tile = tiles_[t];
  if (!tile.resident) return 0;
  const size_t freed = tile.bytes;
  const size_t rows = tile.rows.size();
  std::vector<std::vector<MomentEntry>>().swap(tile.rows);
  tile.rows.resize(rows);  // keep the shape; entries are gone
  tile.resident = false;
  tile.bytes = 0;
  return freed;
}

Status MomentStore::RestoreTile(size_t t, std::string_view blob) {
  if (t >= tiles_.size()) {
    return Status::InvalidArgument("tile index out of range");
  }
  Tile& tile = tiles_[t];
  if (tile.resident) {
    // Restoring over live rows would silently discard any fold applied
    // since the blob was serialized.
    return Status::FailedPrecondition(
        "restore into a resident tile; evict it first");
  }
  const auto [first_user, last_user] = TileUserRange(t);
  size_t cursor = 0;
  uint32_t num_rows = 0;
  if (!ReadRaw(blob, cursor, &num_rows, sizeof(num_rows)) ||
      num_rows != tile.rows.size()) {
    return Status::InvalidArgument("moment tile blob has the wrong row count");
  }
  std::vector<std::vector<MomentEntry>> rows(num_rows);
  for (uint32_t row_index = 0; row_index < num_rows; ++row_index) {
    uint64_t count = 0;
    // Divide instead of multiply: a corrupt count like 2^60 must fail the
    // bound check, not wrap modulo 2^64 and reach reserve().
    if (!ReadRaw(blob, cursor, &count, sizeof(count)) ||
        count > (blob.size() - cursor) / kEntryWireBytes) {
      return Status::InvalidArgument("truncated moment tile blob");
    }
    const UserId row_user = first_user + static_cast<UserId>(row_index);
    std::vector<MomentEntry>& row = rows[row_index];
    // Same capacity policy as Builder's compaction, so evict + restore is
    // byte-accounting neutral and restored rows keep the insert headroom.
    row.reserve(static_cast<size_t>(count) + kRowSlackEntries);
    row.resize(static_cast<size_t>(count));
    UserId prev_other = kInvalidUserId;
    for (MomentEntry& entry : row) {
      if (!ReadRaw(blob, cursor, &entry.other, sizeof(entry.other)) ||
          !ReadRaw(blob, cursor, &entry.moments.n, sizeof(entry.moments.n)) ||
          !ReadRaw(blob, cursor, &entry.moments.sum_a, sizeof(double)) ||
          !ReadRaw(blob, cursor, &entry.moments.sum_b, sizeof(double)) ||
          !ReadRaw(blob, cursor, &entry.moments.sum_aa, sizeof(double)) ||
          !ReadRaw(blob, cursor, &entry.moments.sum_bb, sizeof(double)) ||
          !ReadRaw(blob, cursor, &entry.moments.sum_ab, sizeof(double))) {
        return Status::InvalidArgument("truncated moment tile blob");
      }
      // A blob that frames correctly can still carry flipped bits in its
      // values; reject anything the store could never have produced.
      if (entry.other < 0 || entry.other >= num_users_ ||
          entry.other == row_user) {
        return Status::InvalidArgument("moment tile entry id out of range");
      }
      if (prev_other != kInvalidUserId && entry.other <= prev_other) {
        return Status::InvalidArgument("moment tile row not sorted");
      }
      prev_other = entry.other;
      if (entry.moments.n <= 0) {
        return Status::InvalidArgument(
            "moment tile entry with non-positive overlap");
      }
      if (!std::isfinite(entry.moments.sum_a) ||
          !std::isfinite(entry.moments.sum_b) ||
          !std::isfinite(entry.moments.sum_aa) ||
          !std::isfinite(entry.moments.sum_bb) ||
          !std::isfinite(entry.moments.sum_ab)) {
        return Status::InvalidArgument("non-finite moment in tile blob");
      }
    }
  }
  if (cursor != blob.size()) {
    return Status::InvalidArgument("trailing bytes in moment tile blob");
  }
  (void)last_user;
  // The re-materialization high-water: the freshly decoded rows and the
  // caller's blob coexist with everything already resident before the
  // install below — the footprint an evict→restore cycle actually reaches.
  // Noting only the post-install residency would under-report it.
  {
    size_t incoming = 0;
    for (const std::vector<MomentEntry>& row : rows) incoming += RowBytes(row);
    NoteTransientPeak(incoming + blob.size());
  }
  tile.rows = std::move(rows);
  tile.resident = true;
  RecomputeTileBytes(t);
  NotePeak();
  return Status::OK();
}

void MomentStore::SerializeTo(std::string& out) const {
  BlobWriter writer(&out);
  writer.I32(options_.tile_users);
  writer.I32(num_users_);
  writer.U64(static_cast<uint64_t>(num_pairs_));
  writer.U64(static_cast<uint64_t>(tiles_.size()));
  for (size_t t = 0; t < tiles_.size(); ++t) {
    FAIRREC_CHECK(tiles_[t].resident);
    writer.Framed(SerializeTile(t));
  }
}

Result<MomentStore> MomentStore::Deserialize(std::string_view bytes) {
  BlobReader reader(bytes);
  int32_t tile_users = 0;
  int32_t num_users = 0;
  uint64_t num_pairs = 0;
  uint64_t num_tiles = 0;
  if (!reader.I32(&tile_users) || !reader.I32(&num_users) ||
      !reader.U64(&num_pairs) || !reader.U64(&num_tiles)) {
    return Status::DataLoss("truncated moment store header");
  }
  if (tile_users <= 0 || num_users < 0) {
    return Status::DataLoss("impossible moment store header");
  }
  MomentStore store;
  store.options_.tile_users = tile_users;
  store.EnsureNumUsers(num_users);
  if (num_tiles != store.tiles_.size()) {
    return Status::DataLoss("moment store tile count mismatch");
  }
  int64_t counted_pairs = 0;
  for (size_t t = 0; t < store.tiles_.size(); ++t) {
    std::string_view tile_blob;
    FAIRREC_RETURN_NOT_OK(reader.FramedSection(&tile_blob));
    store.EvictTile(t);  // EnsureNumUsers created the tile resident-empty
    const Status restored = store.RestoreTile(t, tile_blob);
    if (!restored.ok()) {
      // Framing was intact but the values were not; surface it as the
      // integrity failure it is.
      return Status::DataLoss(std::string(restored.message()));
    }
    const auto [first_user, last_user] = store.TileUserRange(t);
    for (UserId u = first_user; u < last_user; ++u) {
      for (const MomentEntry& entry : store.RowOf(u)) {
        if (u < entry.other) ++counted_pairs;
      }
    }
  }
  if (!reader.exhausted()) {
    return Status::DataLoss("trailing bytes in moment store");
  }
  if (counted_pairs != static_cast<int64_t>(num_pairs)) {
    return Status::DataLoss("moment store pair count mismatch");
  }
  store.num_pairs_ = counted_pairs;
  return store;
}

bool operator==(const MomentStore& a, const MomentStore& b) {
  if (a.num_users_ != b.num_users_ || a.num_pairs_ != b.num_pairs_ ||
      a.options_.tile_users != b.options_.tile_users) {
    return false;
  }
  for (UserId u = 0; u < a.num_users_; ++u) {
    const auto row_a = a.RowOf(u);
    const auto row_b = b.RowOf(u);
    if (!std::equal(row_a.begin(), row_a.end(), row_b.begin(), row_b.end())) {
      return false;
    }
  }
  return true;
}

size_t MomentStore::ResidentBytes() const {
  size_t total = 0;
  for (const Tile& tile : tiles_) total += tile.bytes;
  return total;
}

void MomentStore::RecomputeTileBytes(size_t t) {
  Tile& tile = tiles_[t];
  size_t bytes = 0;
  for (const std::vector<MomentEntry>& row : tile.rows) bytes += RowBytes(row);
  tile.bytes = bytes;
}

void MomentStore::NotePeak() {
  peak_bytes_ = std::max(peak_bytes_, ResidentBytes());
}

void MomentStore::NoteTransientPeak(size_t extra_bytes) const {
  peak_bytes_ = std::max(peak_bytes_, ResidentBytes() + extra_bytes);
}

}  // namespace fairrec
