#include "sim/durable_peer_graph.h"

#include <utility>

#include "common/blob_io.h"
#include "common/failpoint.h"

namespace fairrec {

namespace {

/// Container type tag of the checkpoint blob ("PC" for peer checkpoint).
constexpr uint32_t kCheckpointTypeTag = 0x43500001u;

}  // namespace

std::string DurablePeerGraph::CheckpointPathOf(const std::string& dir) {
  return dir + "/checkpoint.frb";
}

std::string DurablePeerGraph::JournalPathOf(const std::string& dir) {
  return dir + "/journal.frj";
}

Result<DurablePeerGraph> DurablePeerGraph::Open(
    std::string dir, RatingMatrix seed, IncrementalPeerGraphOptions options) {
  FAIRREC_RETURN_NOT_OK(EnsureDirectory(dir));
  const std::string checkpoint_path = CheckpointPathOf(dir);

  // Recovery branch: a checkpoint on disk is the state of record.
  if (PathExists(checkpoint_path)) {
    FAIRREC_ASSIGN_OR_RETURN(
        const std::string payload,
        ReadBlobFile(checkpoint_path, kCheckpointTypeTag));
    BlobReader reader(payload);
    uint64_t checkpoint_seq = 0;
    if (!reader.U64(&checkpoint_seq)) {
      return Status::DataLoss("truncated checkpoint payload");
    }
    std::string_view matrix_bytes;
    std::string_view store_bytes;
    std::string_view index_bytes;
    FAIRREC_RETURN_NOT_OK(reader.FramedSection(&matrix_bytes));
    FAIRREC_RETURN_NOT_OK(reader.FramedSection(&store_bytes));
    FAIRREC_RETURN_NOT_OK(reader.FramedSection(&index_bytes));
    if (!reader.exhausted()) {
      return Status::DataLoss("trailing bytes in checkpoint payload");
    }
    FAIRREC_ASSIGN_OR_RETURN(RatingMatrix matrix,
                             RatingMatrix::Deserialize(matrix_bytes));
    FAIRREC_ASSIGN_OR_RETURN(MomentStore store,
                             MomentStore::Deserialize(store_bytes));
    FAIRREC_ASSIGN_OR_RETURN(PeerIndex index,
                             PeerIndex::Deserialize(index_bytes));
    FAIRREC_ASSIGN_OR_RETURN(
        IncrementalPeerGraph graph,
        IncrementalPeerGraph::FromArtifacts(
            std::move(matrix), std::move(store), std::move(index), options));

    // Journal tail: Open truncates any torn tail; complete records replay
    // in sequence order. Records at or below the checkpoint seq were
    // already folded into the checkpoint — the signature of a crash between
    // checkpoint write and journal truncation — and are skipped.
    FAIRREC_ASSIGN_OR_RETURN(DeltaJournal journal,
                             DeltaJournal::Open(JournalPathOf(dir)));
    FAIRREC_ASSIGN_OR_RETURN(DeltaJournal::ReplayResult replay,
                             journal.Replay());

    DurablePeerGraph durable(std::move(dir), std::move(graph),
                             std::move(journal));
    durable.recovery_info_.recovered = true;
    durable.recovery_info_.checkpoint_seq = checkpoint_seq;
    durable.applied_seq_ = checkpoint_seq;
    for (DeltaJournal::Record& record : replay.records) {
      if (record.seq <= checkpoint_seq) {
        ++durable.recovery_info_.skipped_batches;
        continue;
      }
      const auto applied = durable.graph_.ApplyDelta(record.delta);
      if (!applied.ok()) return applied.status();
      durable.applied_seq_ = record.seq;
      ++durable.recovery_info_.replayed_batches;
    }
    durable.recovery_info_.torn_tail_bytes =
        durable.journal_.recovered_torn_bytes();
    return durable;
  }

  // Seeding branch: full build, then the initial checkpoint, so every
  // later crash has a state of record to recover to.
  FAIRREC_ASSIGN_OR_RETURN(
      IncrementalPeerGraph graph,
      IncrementalPeerGraph::Build(std::move(seed), options));
  FAIRREC_ASSIGN_OR_RETURN(DeltaJournal journal,
                           DeltaJournal::Open(JournalPathOf(dir)));
  DurablePeerGraph durable(std::move(dir), std::move(graph),
                           std::move(journal));
  FAIRREC_RETURN_NOT_OK(durable.WriteCheckpoint());
  // A pre-existing journal without a checkpoint can only be the residue of
  // a crash before the *initial* checkpoint landed; those batches were
  // never acknowledged against any recoverable state, and the fresh seed
  // supersedes them.
  FAIRREC_RETURN_NOT_OK(durable.journal_.Clear());
  return durable;
}

Result<DeltaApplyStats> DurablePeerGraph::ApplyDelta(
    const RatingDelta& delta) {
  const uint64_t seq = applied_seq_ + 1;
  // WAL first: the batch must be durable before any in-memory state moves.
  FAIRREC_RETURN_NOT_OK(journal_.Append(seq, delta));
  if (failpoint::Triggered(kFailpointDurableApplyAfterJournal)) {
    // Journaled but never applied: recovery replays it, and the caller —
    // who was never told the apply succeeded — observes exactly-once.
    return failpoint::InjectedCrash(kFailpointDurableApplyAfterJournal);
  }
  auto stats = graph_.ApplyDelta(delta);
  if (!stats.ok()) {
    // The apply rejected the batch (malformed delta, ...). Take it back out
    // of the journal or recovery would replay a batch the state never
    // absorbed.
    FAIRREC_RETURN_NOT_OK(journal_.RollbackLastAppend());
    return stats.status();
  }
  applied_seq_ = seq;
  return stats;
}

Status DurablePeerGraph::Checkpoint() {
  if (failpoint::Triggered(kFailpointDurableCheckpointBegin)) {
    return failpoint::InjectedCrash(kFailpointDurableCheckpointBegin);
  }
  FAIRREC_RETURN_NOT_OK(WriteCheckpoint());
  if (failpoint::Triggered(kFailpointDurableCheckpointBeforeTruncate)) {
    // The new checkpoint is durable but the journal still holds its
    // records; recovery skips them by seq.
    return failpoint::InjectedCrash(kFailpointDurableCheckpointBeforeTruncate);
  }
  return journal_.Clear();
}

Status DurablePeerGraph::WriteCheckpoint() {
  // A budgeted store may hold spilled tiles; the checkpoint serializes the
  // whole artifact, so fault everything back in first (the budget is
  // re-enforced by the next apply).
  FAIRREC_RETURN_NOT_OK(graph_.EnsureStoreResident());
  std::string payload;
  {
    BlobWriter writer(&payload);
    writer.U64(applied_seq_);
    std::string section;
    graph_.matrix().SerializeTo(section);
    writer.Framed(section);
    section.clear();
    graph_.store().SerializeTo(section);
    writer.Framed(section);
    section.clear();
    graph_.index()->SerializeTo(section);
    writer.Framed(section);
  }
  return WriteBlobFileAtomic(CheckpointPathOf(dir_), kCheckpointTypeTag,
                             payload);
}

}  // namespace fairrec
