#ifndef FAIRREC_SIM_COST_MODEL_H_
#define FAIRREC_SIM_COST_MODEL_H_

#include <algorithm>
#include <cstdint>

namespace fairrec {

/// Self-tuning estimate of IncrementalPeerGraphOptions::patch_pair_cost —
/// the planner's exchange rate between one (changed cell, column rater)
/// touch on the patch path and one co-rating swept by a full rebuild.
///
/// The hand-fit constant (150, calibrated on one bench shape) is kept only
/// as the cold-start prior. Every ApplyDelta that patches reports its
/// touched-mass and wall time; every full rebuild (the planner's fallback,
/// or the seeding Build) reports its rebuild-unit count and wall time. Each
/// side maintains a decaying average of seconds-per-unit, and the ratio of
/// the two *is* the machine's actual exchange rate — so the crossover tracks
/// the hardware and corpus shape instead of the shape the constant was fit
/// on. Until both sides have been observed the prior is returned unchanged.
class PatchCostModel {
 public:
  explicit PatchCostModel(double prior_pair_cost = 150.0)
      : prior_(prior_pair_cost) {}

  /// Records one patch-path ApplyDelta: `touched_mass` planner units
  /// (touched-item column mass) completed in `seconds`. Degenerate samples
  /// (empty mass, unmeasurably fast) are dropped — they carry timer noise,
  /// not signal.
  void ObservePatch(double touched_mass, double seconds) {
    if (touched_mass <= 0.0 || seconds <= 0.0) return;
    Fold(patch_sec_per_unit_, patch_samples_, seconds / touched_mass);
  }

  /// Records one full rebuild: `rebuild_units` planner units (co-rating
  /// mass plus the finish-pass term) swept in `seconds`.
  void ObserveRebuild(double rebuild_units, double seconds) {
    if (rebuild_units <= 0.0 || seconds <= 0.0) return;
    Fold(rebuild_sec_per_unit_, rebuild_samples_, seconds / rebuild_units);
  }

  /// The calibrated patch_pair_cost: observed patch seconds-per-mass over
  /// observed rebuild seconds-per-unit, clamped to a sane band; the prior
  /// until both sides have at least one sample.
  double pair_cost() const {
    if (!calibrated()) return prior_;
    return std::clamp(patch_sec_per_unit_ / rebuild_sec_per_unit_, 1e-2,
                      1e7);
  }

  bool calibrated() const {
    return patch_samples_ > 0 && rebuild_samples_ > 0;
  }

  double prior() const { return prior_; }
  int64_t patch_samples() const { return patch_samples_; }
  int64_t rebuild_samples() const { return rebuild_samples_; }

 private:
  /// Exponential decay: recent batches dominate (the corpus grows and cache
  /// behaviour shifts), old ones fade with weight (1 - kAlpha)^age.
  static constexpr double kAlpha = 0.3;

  static void Fold(double& average, int64_t& samples, double value) {
    average = samples == 0 ? value : kAlpha * value + (1.0 - kAlpha) * average;
    ++samples;
  }

  double prior_ = 150.0;
  double patch_sec_per_unit_ = 0.0;
  double rebuild_sec_per_unit_ = 0.0;
  int64_t patch_samples_ = 0;
  int64_t rebuild_samples_ = 0;
};

}  // namespace fairrec

#endif  // FAIRREC_SIM_COST_MODEL_H_
