#include "sim/rating_similarity.h"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "common/logging.h"

namespace fairrec {

double FinishPearson(std::span<const std::pair<Rating, Rating>> shared,
                     double global_mean_a, double global_mean_b,
                     const RatingSimilarityOptions& options) {
  if (static_cast<int32_t>(shared.size()) < options.min_overlap) return 0.0;

  double mean_a;
  double mean_b;
  if (options.intersection_means) {
    mean_a = 0.0;
    mean_b = 0.0;
    for (const auto& [ra, rb] : shared) {
      mean_a += ra;
      mean_b += rb;
    }
    mean_a /= static_cast<double>(shared.size());
    mean_b /= static_cast<double>(shared.size());
  } else {
    // Eq. 2 as printed: µ_u is the mean over all of I(u).
    mean_a = global_mean_a;
    mean_b = global_mean_b;
  }

  double num = 0.0;
  double den_a = 0.0;
  double den_b = 0.0;
  for (const auto& [ra, rb] : shared) {
    const double da = ra - mean_a;
    const double db = rb - mean_b;
    num += da * db;
    den_a += da * da;
    den_b += db * db;
  }
  if (den_a == 0.0 || den_b == 0.0) return 0.0;
  double r = num / (std::sqrt(den_a) * std::sqrt(den_b));
  // With global means, |r| can exceed 1 by construction; clamp to the
  // correlation range so downstream thresholds behave.
  r = std::clamp(r, -1.0, 1.0);
  return options.shift_to_unit_interval ? (r + 1.0) / 2.0 : r;
}

RatingSimilarity::RatingSimilarity(const RatingMatrix* matrix,
                                   RatingSimilarityOptions options)
    : matrix_(matrix), options_(options) {
  FAIRREC_CHECK(matrix != nullptr);
}

double RatingSimilarity::Compute(UserId a, UserId b) const {
  thread_local PairScratch scratch;
  return Compute(a, b, scratch);
}

double RatingSimilarity::Compute(UserId a, UserId b, PairScratch& scratch) const {
  if (!matrix_->IsValidUser(a) || !matrix_->IsValidUser(b)) return 0.0;
  const auto row_a = matrix_->ItemsRatedBy(a);
  const auto row_b = matrix_->ItemsRatedBy(b);

  // Sorted-merge over the two rows to find co-rated items (ascending item
  // order, the canonical order FinishPearson documents).
  scratch.clear();
  size_t i = 0;
  size_t j = 0;
  while (i < row_a.size() && j < row_b.size()) {
    if (row_a[i].item == row_b[j].item) {
      scratch.emplace_back(row_a[i].value, row_b[j].value);
      ++i;
      ++j;
    } else if (row_a[i].item < row_b[j].item) {
      ++i;
    } else {
      ++j;
    }
  }
  return FinishPearson(scratch, matrix_->UserMean(a), matrix_->UserMean(b),
                       options_);
}

}  // namespace fairrec
