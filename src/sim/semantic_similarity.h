#ifndef FAIRREC_SIM_SEMANTIC_SIMILARITY_H_
#define FAIRREC_SIM_SEMANTIC_SIMILARITY_H_

#include <memory>
#include <string>

#include "ontology/distance_oracle.h"
#include "ontology/ontology.h"
#include "profiles/profile_store.h"
#include "sim/user_similarity.h"

namespace fairrec {

/// SS(u, u'): semantic similarity over the users' health problems (§V-C).
///
/// Phase 1 scores every cross pair of problems (p, q), p from u and q from
/// u', with the path measure 1 / (1 + hops(p, q)); phase 2 aggregates the
/// pair scores with the harmonic mean of Eq. 4:
///   SS = n / sum_i (1 / x_i),   n = |problems(u)| * |problems(u')|.
///
/// Users with no recorded problems score 0 against everyone — with no
/// clinical signal there is no evidence of similarity.
class SemanticSimilarity final : public UserSimilarity {
 public:
  /// `store` and `ontology` must outlive this object. A fresh memoizing
  /// distance oracle is created internally.
  SemanticSimilarity(const ProfileStore* store, const Ontology* ontology);

  double Compute(UserId a, UserId b) const override;
  std::string name() const override { return "semantic"; }

  /// Similarity between two individual problems (phase 1), exposed for tests
  /// and for the similarity_study example.
  double ProblemSimilarity(ConceptId p, ConceptId q) const;

 private:
  const ProfileStore* store_;
  std::unique_ptr<ConceptDistanceOracle> oracle_;
};

}  // namespace fairrec

#endif  // FAIRREC_SIM_SEMANTIC_SIMILARITY_H_
