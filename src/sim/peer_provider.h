#ifndef FAIRREC_SIM_PEER_PROVIDER_H_
#define FAIRREC_SIM_PEER_PROVIDER_H_

#include <span>
#include <string>

#include "ratings/types.h"

namespace fairrec {

/// A peer of a user together with the similarity that qualified it (Def. 1).
struct Peer {
  UserId user = kInvalidUserId;
  double similarity = 0.0;

  friend bool operator==(const Peer&, const Peer&) = default;
};

/// The total order every peer list in the library uses: descending
/// similarity, ties broken by ascending user id. Strict-weak and total, so
/// top-k selection is deterministic regardless of how a list was produced.
inline bool BetterPeer(const Peer& a, const Peer& b) {
  if (a.similarity != b.similarity) return a.similarity > b.similarity;
  return a.user < b.user;
}

/// Read seam for the peer graph of Definition 1.
///
/// Peer discovery only ever consumes pairs with simU >= delta, so the graph —
/// per-user candidate lists, not the dense U x U similarity matrix — is the
/// first-class serving artifact. Implementations store each user's
/// qualifying peers contiguously (CSR-style) and hand them out as spans:
///
///   * PeerIndex — sparse, built directly by the sufficient-statistics
///     engine's tile sweep (O(U * k) memory, no packed triangle) or by the
///     MapReduce Job 2 peer-list output mode;
///   * DensePeerAdapter — scans an arbitrary UserSimilarity (profile,
///     semantic, hybrid, or a cached SimilarityMatrix) once at construction,
///     for bases with no sufficient-statistics decomposition.
///
/// Implementations must be safe for concurrent PeersOf calls.
class PeerProvider {
 public:
  virtual ~PeerProvider() = default;

  /// The stored peer list of `u`: every retained peer with
  /// simU(u, v) >= the provider's build threshold, sorted by BetterPeer
  /// (descending similarity, ties ascending id) and never containing `u`
  /// itself. The span stays valid as long as the provider. Out-of-range ids
  /// yield an empty span.
  virtual std::span<const Peer> PeersOf(UserId u) const = 0;

  /// Size of the user population the provider indexes.
  virtual int32_t num_users() const = 0;

  /// Short diagnostic name ("peer-index", "peers(pearson)", ...).
  virtual std::string name() const = 0;
};

}  // namespace fairrec

#endif  // FAIRREC_SIM_PEER_PROVIDER_H_
