#include "sim/tile_residency.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/blob_io.h"
#include "common/failpoint.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "sim/pearson_finish_batch.h"

namespace fairrec {

namespace {

/// Container type tag of a spilled moment tile ("TS" + version), so a spill
/// blob can never be loaded as a checkpoint or journal and vice versa.
constexpr uint32_t kTileSpillTypeTag = 0x53540001u;

/// Appends between budget re-checks during out-of-core assembly: small
/// enough that the fill overshoots the budget by at most a few hundred KiB
/// of fresh entries, large enough that the re-accounting walk (one pass over
/// the tile's row capacities) stays negligible against the appends.
constexpr int64_t kAppendsPerBudgetCheck = 4096;

/// Headroom each assembly budget check reserves for the appends until the
/// next one: the entries themselves plus the worst-case push_back capacity
/// doubling (capacity <= 2 x size), so resident bytes stay under the budget
/// *between* checks, not only at them.
constexpr size_t kAssemblyHeadroomBytes =
    2 * static_cast<size_t>(kAppendsPerBudgetCheck) * sizeof(MomentEntry);

}  // namespace

// ---------------------------------------------------------------------------
// TileResidencyManager
// ---------------------------------------------------------------------------

Result<TileResidencyManager> TileResidencyManager::Create(
    MomentStore* store, TileResidencyOptions options) {
  FAIRREC_CHECK(store != nullptr);
  if (options.budget_bytes > 0) {
    if (options.spill_dir.empty()) {
      return Status::InvalidArgument(
          "a residency budget needs a spill_dir to evict tiles into");
    }
    FAIRREC_RETURN_NOT_OK(EnsureDirectory(options.spill_dir));
  }
  return TileResidencyManager(store, std::move(options));
}

TileResidencyManager::TileResidencyManager(MomentStore* store,
                                           TileResidencyOptions options)
    : store_(store), options_(std::move(options)) {
  SyncShape();
  NoteResidentPeak();
}

TileResidencyManager::~TileResidencyManager() {
  for (size_t t = 0; t < tiles_.size(); ++t) {
    if (tiles_[t].spill_valid) RemovePath(SpillPath(t)).ok();
  }
}

Result<TileResidencyManager> MomentStore::WithBudget(size_t budget_bytes,
                                                     std::string spill_dir) {
  return TileResidencyManager::Create(
      this, {budget_bytes, std::move(spill_dir), /*prefetch_tiles=*/1});
}

void TileResidencyManager::SyncShape() {
  if (tiles_.size() < store_->num_tiles()) tiles_.resize(store_->num_tiles());
}

size_t TileResidencyManager::TileOfUser(UserId u) const {
  return static_cast<size_t>(u) /
         static_cast<size_t>(store_->options().tile_users);
}

std::string TileResidencyManager::SpillPath(size_t t) const {
  return options_.spill_dir + "/tile_" + std::to_string(t) + ".spill";
}

void TileResidencyManager::Touch(size_t t) { tiles_[t].last_use = ++clock_; }

void TileResidencyManager::NoteResidentPeak() {
  stats_.peak_resident_bytes =
      std::max(stats_.peak_resident_bytes, store_->ResidentBytes());
}

Status TileResidencyManager::EnsureResident(size_t t) {
  FAIRREC_CHECK(t < tiles_.size());
  Touch(t);
  if (store_->TileResident(t)) return Status::OK();
  TileState& state = tiles_[t];
  if (!state.spill_valid) {
    return Status::FailedPrecondition(
        "tile " + std::to_string(t) +
        " was evicted outside the residency manager; no spill blob to "
        "restore from");
  }
  FAIRREC_ASSIGN_OR_RETURN(std::string blob,
                           ReadBlobFile(SpillPath(t), kTileSpillTypeTag));
  // Make room *before* re-materializing, so the budget holds through the
  // restore, not just after it — resident bytes never overshoot while
  // unpinned victims remain. Blob bytes are wire entries (48 each); 3/2
  // over-approximates the resident inflation (sizeof entry + row slack).
  FAIRREC_RETURN_NOT_OK(
      EnforceBudgetExcept(t, state.blob_bytes + state.blob_bytes / 2));
  const Status restored = store_->RestoreTile(t, blob);
  if (!restored.ok()) {
    // The container CRC passed but the tile payload failed validation:
    // integrity loss, not caller error.
    return Status::DataLoss("spilled tile " + std::to_string(t) +
                            " failed restore: " +
                            std::string(restored.message()));
  }
  ++stats_.restores;
  stats_.restore_bytes_read += blob.size();
  NoteResidentPeak();
  // The blob still matches the rows (restores do not dirty); a future clean
  // eviction reuses it without rewriting.
  return EnforceBudgetExcept(t, 0);
}

Status TileResidencyManager::EnsureRowResident(UserId u) {
  return EnsureResident(TileOfUser(u));
}

Status TileResidencyManager::Pin(size_t t) {
  FAIRREC_RETURN_NOT_OK(EnsureResident(t));
  ++tiles_[t].pins;
  return Status::OK();
}

void TileResidencyManager::Unpin(size_t t) {
  FAIRREC_CHECK(t < tiles_.size());
  FAIRREC_CHECK(tiles_[t].pins > 0);
  --tiles_[t].pins;
}

Status TileResidencyManager::Prefetch(size_t t) {
  if (t >= tiles_.size() || options_.budget_bytes == 0) return Status::OK();
  if (store_->TileResident(t)) {
    Touch(t);  // keep the upcoming tile off the eviction list
    return Status::OK();
  }
  const TileState& state = tiles_[t];
  if (!state.spill_valid) return Status::OK();
  // Blob bytes are wire entries (48 each); resident rows cost
  // sizeof(MomentEntry) plus slack per entry. 3/2 over-approximates the
  // inflation so a prefetch never lands the sweep over budget.
  const size_t resident_estimate = state.blob_bytes + state.blob_bytes / 2;
  if (store_->ResidentBytes() + resident_estimate > options_.budget_bytes) {
    return Status::OK();  // lookahead never displaces anything
  }
  return EnsureResident(t);
}

void TileResidencyManager::NoteTileDirty(size_t t) {
  FAIRREC_CHECK(t < tiles_.size());
  TileState& state = tiles_[t];
  if (!state.spill_valid) return;
  state.spill_valid = false;
  stats_.spilled_blob_bytes -= state.blob_bytes;
  state.blob_bytes = 0;
  // The stale file is left in place; the next spill atomically replaces it.
}

Status TileResidencyManager::SpillTile(size_t t) {
  TileState& state = tiles_[t];
  if (!store_->TileResident(t)) return Status::OK();
  if (!state.spill_valid) {
#if FAIRREC_FAILPOINTS_ENABLED
    // The mid-spill crash window: the tile is serialized (or about to be)
    // but its blob has not landed. A real kill here must leave recovery
    // working from the previous durable state — the killpoint suite walks
    // this site like the blob-write ones.
    if (failpoint::Triggered(kFailpointResidencySpill)) {
      return failpoint::InjectedCrash(kFailpointResidencySpill);
    }
#endif
    const std::string blob = store_->SerializeTile(t);
    FAIRREC_RETURN_NOT_OK(
        WriteBlobFileAtomic(SpillPath(t), kTileSpillTypeTag, blob));
    state.spill_valid = true;
    state.blob_bytes = blob.size();
    ++stats_.spill_writes;
    stats_.spill_bytes_written += blob.size();
    stats_.spilled_blob_bytes += blob.size();
  }
  store_->EvictTile(t);
  ++stats_.evictions;
  return Status::OK();
}

Status TileResidencyManager::EnforceBudget(size_t headroom_bytes) {
  return EnforceBudgetExcept(std::numeric_limits<size_t>::max(),
                             headroom_bytes);
}

Status TileResidencyManager::EnforceBudgetExcept(size_t keep,
                                                 size_t headroom_bytes) {
  if (options_.budget_bytes == 0) return Status::OK();
  NoteResidentPeak();
  while (store_->ResidentBytes() + headroom_bytes > options_.budget_bytes) {
    size_t victim = tiles_.size();
    uint64_t oldest = std::numeric_limits<uint64_t>::max();
    for (size_t t = 0; t < tiles_.size(); ++t) {
      if (t == keep || tiles_[t].pins > 0) continue;
      if (!store_->TileResident(t) || store_->TileBytes(t) == 0) continue;
      if (tiles_[t].last_use < oldest) {
        oldest = tiles_[t].last_use;
        victim = t;
      }
    }
    if (victim == tiles_.size()) break;  // only pinned/empty left: best-effort
    FAIRREC_RETURN_NOT_OK(SpillTile(victim));
  }
  return Status::OK();
}

Status TileResidencyManager::RestoreAll() {
  for (size_t t = 0; t < tiles_.size(); ++t) {
    if (store_->TileResident(t)) continue;
    Touch(t);
    TileState& state = tiles_[t];
    if (!state.spill_valid) {
      return Status::FailedPrecondition(
          "tile " + std::to_string(t) +
          " was evicted outside the residency manager");
    }
    FAIRREC_ASSIGN_OR_RETURN(std::string blob,
                             ReadBlobFile(SpillPath(t), kTileSpillTypeTag));
    const Status restored = store_->RestoreTile(t, blob);
    if (!restored.ok()) {
      return Status::DataLoss("spilled tile " + std::to_string(t) +
                              " failed restore: " +
                              std::string(restored.message()));
    }
    ++stats_.restores;
    stats_.restore_bytes_read += blob.size();
  }
  NoteResidentPeak();
  return Status::OK();
}

void TileResidencyManager::RecomputeTileBytes(size_t t) {
  FAIRREC_CHECK(t < tiles_.size());
  store_->RecomputeTileBytes(t);
  store_->NotePeak();
  NoteResidentPeak();
}

// ---------------------------------------------------------------------------
// Out-of-core build
// ---------------------------------------------------------------------------

Result<OutOfCoreStore> BuildMomentStoreOutOfCore(
    const RatingMatrix& matrix, const OutOfCoreBuildOptions& options,
    OutOfCoreBuildStats* stats) {
  if (options.store.tile_users <= 0) {
    return Status::InvalidArgument("store.tile_users must be positive");
  }
  size_t shuffle_buffer = options.shuffle_buffer_bytes;
  if (shuffle_buffer == 0 && options.budget_bytes > 0) {
    shuffle_buffer = options.budget_bytes / 4;
  }
  if ((options.budget_bytes > 0 || shuffle_buffer > 0) &&
      options.spill_dir.empty()) {
    return Status::InvalidArgument(
        "an out-of-core build needs a spill_dir for tiles and shuffle runs");
  }

  OutOfCoreStore out;
  out.store = std::make_unique<MomentStore>(options.store);
  out.store->EnsureNumUsers(matrix.num_users());
  if (options.budget_bytes > 0) {
    FAIRREC_ASSIGN_OR_RETURN(
        TileResidencyManager manager,
        out.store->WithBudget(options.budget_bytes, options.spill_dir));
    out.residency = std::make_unique<TileResidencyManager>(std::move(manager));
  }

  MomentShuffleOptions shuffle_options;
  shuffle_options.max_buffer_bytes = shuffle_buffer;
  shuffle_options.temp_dir = options.spill_dir;
  // The item sweep below emits each group's records in ascending item
  // order, which is exactly the precondition that makes the map-side
  // combine sound (see MomentShuffleOptions::combine_on_spill).
  shuffle_options.combine_on_spill = true;
  FAIRREC_ASSIGN_OR_RETURN(PairMomentShuffle shuffle,
                           PairMomentShuffle::Create(shuffle_options));

  // Emit: the engine's item-inverted accumulation, flattened into streamed
  // per-item singleton moments. Both row orientations of a pair carry the
  // *canonical* (min-id as a) moments — the store's bidirectional adjacency
  // invariant — so the merged fold reproduces the engine's accumulation
  // exactly (bit-identical on integer scales, where every partial sum is
  // exactly representable regardless of fold association).
  Stopwatch emit_watch;
  for (ItemId item = 0; item < matrix.num_items(); ++item) {
    const auto column = matrix.UsersWhoRated(item);
    for (size_t x = 0; x < column.size(); ++x) {
      for (size_t y = x + 1; y < column.size(); ++y) {
        // Columns ascend in user id, so column[x].user is the canonical a.
        PairMoments m;
        m.Add(column[x].value, column[y].value);
        FAIRREC_RETURN_NOT_OK(
            shuffle.Add(column[x].user, column[y].user, 0, item, m));
        FAIRREC_RETURN_NOT_OK(
            shuffle.Add(column[y].user, column[x].user, 0, item, m));
      }
    }
  }
  if (stats != nullptr) stats->emit_seconds = emit_watch.ElapsedSeconds();

  // Assemble: the drain delivers (row, other) groups in ascending order, so
  // rows fill front-to-back and tiles complete one at a time. The tile
  // being filled is pinned; finished tiles are dirtied (their blob, if any,
  // predates the fill) and become eviction candidates as the budget
  // demands.
  Stopwatch assemble_watch;
  MomentStore& store = *out.store;
  TileResidencyManager* residency = out.residency.get();
  const auto tile_users = static_cast<size_t>(options.store.tile_users);
  size_t current_tile = std::numeric_limits<size_t>::max();
  int64_t appends_since_check = 0;
  const auto close_tile = [&]() -> Status {
    if (current_tile == std::numeric_limits<size_t>::max()) {
      return Status::OK();
    }
    store.FinalizeAssembledTile(current_tile);
    if (residency != nullptr) {
      residency->NoteTileDirty(current_tile);
      residency->Unpin(current_tile);
      FAIRREC_RETURN_NOT_OK(residency->EnforceBudget(0));
    }
    return Status::OK();
  };
  FAIRREC_RETURN_NOT_OK(shuffle.Drain(
      [&](UserId row, UserId other, int32_t /*shard*/,
          const PairMoments& total) -> Status {
        const size_t t = static_cast<size_t>(row) / tile_users;
        if (t != current_tile) {
          FAIRREC_RETURN_NOT_OK(close_tile());
          if (residency != nullptr) {
            FAIRREC_RETURN_NOT_OK(residency->Pin(t));
            FAIRREC_RETURN_NOT_OK(
                residency->EnforceBudget(kAssemblyHeadroomBytes));
          }
          current_tile = t;
          appends_since_check = 0;
        }
        store.AppendRowEntry(row, other, total);
        if (residency != nullptr &&
            ++appends_since_check >= kAppendsPerBudgetCheck) {
          appends_since_check = 0;
          residency->RecomputeTileBytes(t);
          FAIRREC_RETURN_NOT_OK(
              residency->EnforceBudget(kAssemblyHeadroomBytes));
        }
        return Status::OK();
      }));
  FAIRREC_RETURN_NOT_OK(close_tile());
  if (stats != nullptr) {
    stats->assemble_seconds = assemble_watch.ElapsedSeconds();
    stats->shuffle = shuffle.stats();
  }
  return out;
}

Result<PeerIndex> BuildPeerIndexFromStore(
    const RatingMatrix& matrix, const MomentStore& store,
    TileResidencyManager* residency,
    const RatingSimilarityOptions& sim_options,
    const PeerIndexOptions& peer_options, PairwiseEngineStats* stats) {
  if (store.num_users() != matrix.num_users()) {
    return Status::InvalidArgument(
        "store/matrix population mismatch: store " +
        std::to_string(store.num_users()) + " users, matrix " +
        std::to_string(matrix.num_users()));
  }
  // The engine validates the similarity options and supplies the exact
  // finish semantics (SkipsFinish guard + the batched kernel) the full
  // sweep uses, so the finished index is byte-identical to its output.
  const PairwiseSimilarityEngine engine(&matrix, sim_options);
  const TileResidencyStats residency_before =
      residency != nullptr ? residency->stats() : TileResidencyStats{};

  Stopwatch finish_watch;
  PeerIndex::Builder builder(store.num_users(), peer_options);
  int64_t pairs_finished = 0;
  const double threshold = peer_options.delta;
  struct RowPeer {
    UserId row;
    UserId other;
  };
  for (size_t t = 0; t < store.num_tiles(); ++t) {
    if (residency != nullptr) {
      FAIRREC_RETURN_NOT_OK(residency->Pin(t));
      for (size_t ahead = 1; ahead <= residency->options().prefetch_tiles;
           ++ahead) {
        FAIRREC_RETURN_NOT_OK(residency->Prefetch(t + ahead));
      }
    }
    {
      auto stream = MakePearsonFinishStream<RowPeer>(
          engine.options(), [&builder, threshold](RowPeer rp, double sim) {
            if (sim >= threshold) builder.Offer(rp.row, rp.other, sim);
          });
      const auto [first_user, last_user] = store.TileUserRange(t);
      for (UserId u = first_user; u < last_user; ++u) {
        for (const MomentEntry& entry : store.RowOf(u)) {
          if (u < entry.other) ++pairs_finished;
          if (engine.SkipsFinish(entry.moments)) continue;
          // Stored moments are canonically oriented: stage with the
          // matching (min, max) global means, the full sweep's exact call.
          const UserId a = std::min(u, entry.other);
          const UserId b = std::max(u, entry.other);
          stream.Stage(entry.moments, matrix.UserMean(a), matrix.UserMean(b),
                       {u, entry.other});
        }
      }
    }  // stream destruction flushes the tail
    if (residency != nullptr) {
      residency->Unpin(t);
      FAIRREC_RETURN_NOT_OK(residency->EnforceBudget(0));
    }
  }
  if (stats != nullptr) {
    stats->finish_seconds += finish_watch.ElapsedSeconds();
    stats->pairs_finished += pairs_finished;
    if (residency != nullptr) {
      const TileResidencyStats& after = residency->stats();
      stats->tile_restores += after.restores - residency_before.restores;
      stats->tile_spills += after.evictions - residency_before.evictions;
      stats->spill_bytes_written +=
          after.spill_bytes_written - residency_before.spill_bytes_written;
      stats->peak_resident_bytes =
          std::max(stats->peak_resident_bytes, after.peak_resident_bytes);
    }
  }
  return std::move(builder).Build();
}

}  // namespace fairrec
