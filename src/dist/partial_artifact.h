#ifndef FAIRREC_DIST_PARTIAL_ARTIFACT_H_
#define FAIRREC_DIST_PARTIAL_ARTIFACT_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "ratings/rating_matrix.h"
#include "ratings/types.h"
#include "sim/peer_index.h"
#include "sim/rating_similarity.h"

namespace fairrec {

/// Distributed peer-graph build, stage 1: the durable unit of work.
///
/// A worker owns one contiguous user-id partition and computes, alone, every
/// Def. 1 pair the partition is responsible for: pair (a, b) with a < b
/// belongs to the partition containing `a`. Because a pair's co-ratings all
/// live in the rating matrix (which every worker has), the worker accumulates
/// the pair's *complete* Pearson sufficient statistics — no cross-worker
/// moment exchange — and finishes them through the exact scalar finish the
/// in-memory engine uses. Qualifying pairs (sim >= delta) are offered, both
/// directions, into a worker-local bounded PeerIndex::Builder.
///
/// Exactness of the merge (no overflow frontier needed): each unordered pair
/// is owned by exactly one partition, so the union of the workers' offer
/// multisets equals the single-process engine's offer multiset, pair for
/// pair, bit for bit. A worker's per-user top-k cap can only drop an entry
/// that at least max_peers_per_user better entries (under the strict total
/// BetterPeer order) in the *same* row already beat — entries that are also
/// all in the global row — so nothing in the global top-k is ever dropped
/// from a partial. Re-offering every retained partial entry into a fresh
/// Builder therefore reproduces the single-process index byte-identically at
/// every partition layout.
///
/// The artifact rides the checksummed blob container (common/blob_io.h):
/// manifest and rows are separately CRC-framed inside the payload, the
/// container adds the whole-payload CRC, and Deserialize re-validates every
/// structural invariant — so a truncated, bit-flipped, or garbage artifact
/// is DataLoss, never UB and never a silently wrong graph.

/// Failpoint sites of the worker emit / merge consume path (debug builds).
/// `dist.worker.emit` dies before any byte is written; `dist.worker.finalize`
/// dies after the artifact is durably committed but before the worker reports
/// success (the classic ack-loss double-emission window); `dist.merge.consume`
/// dies between consuming two partials.
inline constexpr std::string_view kFailpointDistWorkerEmit = "dist.worker.emit";
inline constexpr std::string_view kFailpointDistWorkerFinalize =
    "dist.worker.finalize";
inline constexpr std::string_view kFailpointDistMergeConsume =
    "dist.merge.consume";

/// Blob container type tag of PartialPeerArtifact files ("PPA1").
inline constexpr uint32_t kPartialPeerArtifactBlobType = 0x31415050;

/// Identity of the corpus an artifact was computed from. Workers and the
/// merge must agree on all four fields; a mismatch means the artifact
/// belongs to a different (or stale) corpus and can never be merged —
/// InvalidArgument, not a retryable fault.
struct CorpusFingerprint {
  int32_t num_users = 0;
  int32_t num_items = 0;
  int64_t num_ratings = 0;
  /// CRC32C of the matrix's canonical serialized bytes.
  uint32_t content_crc = 0;

  friend bool operator==(const CorpusFingerprint&,
                         const CorpusFingerprint&) = default;
};

/// Fingerprints `matrix` (serializes it once; O(num_ratings)).
CorpusFingerprint FingerprintCorpus(const RatingMatrix& matrix);

/// One contiguous user-id slice of a `count`-way partitioning: this worker
/// owns every pair (a, b), a < b, with a in [user_first, user_last).
struct PartitionDescriptor {
  int32_t index = 0;
  int32_t count = 1;
  UserId user_first = 0;
  UserId user_last = 0;  // exclusive

  friend bool operator==(const PartitionDescriptor&,
                         const PartitionDescriptor&) = default;
};

/// The canonical even split of [0, num_users) into `count` contiguous
/// ranges (the first num_users % count ranges get one extra user).
/// Precondition: 0 <= index < count, num_users >= 0.
PartitionDescriptor MakePartition(int32_t index, int32_t count,
                                  int32_t num_users);

/// Everything the merge needs to decide whether an artifact is admissible:
/// which corpus, which slice, which attempt, and under which options the
/// rows were built. Serialized ahead of the rows inside the artifact.
struct PartialArtifactManifest {
  CorpusFingerprint fingerprint;
  PartitionDescriptor partition;
  /// Worker attempt id: retries and speculative launches of the same
  /// partition emit distinct attempts; the merge dedupes by (partition,
  /// attempt), keeping the lowest attempt, so duplicates are idempotent.
  int32_t attempt = 0;
  RatingSimilarityOptions similarity;
  PeerIndexOptions peers;
};

/// The blob a worker emits: manifest + its partition's partial peer rows.
struct PartialPeerArtifact {
  PartialArtifactManifest manifest;
  /// Worker-local bounded top-k rows over the full user population (a pair
  /// owned here enters both endpoints' rows; rows of users whose every peer
  /// pair is owned elsewhere are empty).
  PeerIndex rows;

  /// Appends the wire form: a CRC-framed manifest section, then a CRC-framed
  /// PeerIndex snapshot section.
  void SerializeTo(std::string& out) const;

  /// Parses and fully re-validates SerializeTo bytes: framing and CRCs,
  /// manifest field ranges, every PeerIndex invariant, manifest/rows option
  /// agreement, and pair ownership (each entry's lower endpoint inside the
  /// partition slice). DataLoss on any violation.
  static Result<PartialPeerArtifact> Deserialize(std::string_view bytes);

  /// Writes the artifact atomically under the blob container. Hits the
  /// dist.worker.emit / dist.worker.finalize failpoints.
  Status WriteFile(const std::string& path) const;

  /// Reads a WriteFile artifact: NotFound when absent, DataLoss on any
  /// corruption (message carries the path).
  static Result<PartialPeerArtifact> ReadFile(const std::string& path);
};

/// Worker-side build knobs. similarity/peers must match across every worker
/// of one build (the merge enforces it).
struct DistWorkerOptions {
  RatingSimilarityOptions similarity;
  PeerIndexOptions peers;
  /// Edge length of the accumulation tiles (same meaning as
  /// PairwiseEngineOptions::block_users).
  int32_t block_users = 512;
};

/// Computes partition `partition`'s partial artifact from `matrix`: the
/// restricted tile sweep described above, finished through
/// PairwiseSimilarityEngine::FinishPair. Does not touch the filesystem.
Result<PartialPeerArtifact> BuildPartialPeerArtifact(
    const RatingMatrix& matrix, const PartitionDescriptor& partition,
    int32_t attempt, const DistWorkerOptions& options);

/// Stage 2: the bounded per-user-row union across N partials.
///
/// Validates the set before consuming a single row: non-empty; identical
/// fingerprints, options, and partition count everywhere (InvalidArgument on
/// mismatch — wrong inputs, not data corruption, so never retried); after
/// deduping by partition (lowest attempt wins), exactly one artifact per
/// partition index with slices that tile [0, num_users) contiguously. Then
/// re-offers every retained entry into a fresh Builder — byte-identical to
/// the single-process BuildPeerIndex by the ownership argument above. Hits
/// dist.merge.consume once per artifact consumed.
Result<PeerIndex> MergePartialArtifacts(
    std::span<const PartialPeerArtifact> partials);

/// File-level merge: reads and validates every path (DataLoss with the path
/// on corruption), then merges. The subprocess path (`fairrec_cli
/// merge-partials`) and the coordinator's final pass both go through this,
/// so post-write corruption is caught at merge time too.
Result<PeerIndex> MergePartialArtifactFiles(
    const std::vector<std::string>& paths);

/// Canonical artifact file name: "partial_p<index>_a<attempt>.blob",
/// zero-padded so lexicographic order is (partition, attempt) order.
std::string PartialArtifactFileName(int32_t partition_index, int32_t attempt);

/// Every partial-artifact file in `dir` (by name pattern), sorted; IOError
/// when the directory cannot be read.
Result<std::vector<std::string>> ListPartialArtifactFiles(
    const std::string& dir);

}  // namespace fairrec

#endif  // FAIRREC_DIST_PARTIAL_ARTIFACT_H_
