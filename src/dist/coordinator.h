#ifndef FAIRREC_DIST_COORDINATOR_H_
#define FAIRREC_DIST_COORDINATOR_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "common/retry.h"
#include "common/status.h"
#include "dist/partial_artifact.h"
#include "ratings/rating_matrix.h"
#include "sim/peer_index.h"

namespace fairrec {

/// Distributed peer-graph build, stage 3: the failure-aware orchestrator.
///
/// DistBuildCoordinator runs one worker task per user partition (in-process
/// threads here; `fairrec_cli build-worker` / `merge-partials` are the same
/// protocol for the subprocess path), validates every emitted artifact by
/// reading it back, merges, and hands out the PeerIndex that is byte-identical
/// to the single-process BuildPeerIndex. The failure matrix it absorbs:
///
///   * worker crash (failpoint::InjectedCrash), I/O error, or resource
///     exhaustion — retryable: the task is requeued under the capped
///     exponential backoff of options.retry;
///   * corrupt or truncated artifact (DataLoss, from the worker, the
///     read-back validation, or the merge's re-read) — the bad file is
///     deleted and the task requeued;
///   * fingerprint / descriptor mismatch in a produced artifact
///     (InvalidArgument) — wrong inputs, never retried: Run fails with the
///     typed error;
///   * straggler (no result within options.task_timeout_millis) — a
///     speculative attempt with a fresh attempt id launches alongside;
///     whichever finishes first wins, and the loser's late artifact is the
///     duplicate the merge's (partition, attempt) dedup absorbs;
///   * retry budget exhausted — Run fails with ResourceExhausted carrying
///     the partition's last error;
///   * coordinator death mid-merge (the dist.merge.consume failpoint) — Run
///     returns the injected crash; a re-run recovers by adopting the
///     already-valid artifacts from the directory instead of rebuilding.
///
/// All waiting goes through the injectable Clock (options.clock), so the
/// whole schedule — backoffs, timeouts, speculation — is unit-testable in
/// virtual time with a FakeClock and no real sleeps.
///
/// Run() blocks until every worker attempt it launched has returned (crashed
/// attempts are simulated by Status, not detached threads), so a custom
/// worker_fn must eventually return on every code path.

/// Worker seam: computes partition `partition` of `matrix` under `options`
/// and leaves the artifact at `path`. The default runs
/// BuildPartialPeerArtifact + WriteFile in-process; tests and benches
/// substitute fault-injecting or blocking wrappers.
using DistWorkerFn = std::function<Status(
    const RatingMatrix& matrix, const PartitionDescriptor& partition,
    int32_t attempt, const DistWorkerOptions& options,
    const std::string& path)>;

struct DistBuildOptions {
  /// Contiguous user partitions, one worker task each (>= 1).
  int32_t num_partitions = 1;
  /// Concurrent worker attempts (0 = num_partitions).
  size_t worker_slots = 0;
  /// Directory the partial artifacts live in (required; created if absent).
  std::string artifact_dir;
  /// Build knobs every worker shares.
  DistWorkerOptions worker;
  /// Per-partition retry budget + backoff schedule. max_attempts also bounds
  /// the merge passes a corrupt-artifact requeue can trigger.
  RetryPolicy retry;
  /// Seed of the backoff jitter stream (deterministic for a fixed seed).
  uint64_t retry_jitter_seed = 0x5eed;
  /// Straggler threshold: a partition whose only running attempt is older
  /// than this gets a speculative second attempt. 0 disables speculation.
  int64_t task_timeout_millis = 0;
  /// Control-loop sleep when idle (virtual time under a FakeClock).
  int64_t poll_interval_millis = 1;
  /// Clock seam; nullptr = Clock::Real().
  Clock* clock = nullptr;
  /// Adopt valid artifacts already in artifact_dir before launching any
  /// worker — the recovery path after a coordinator death. Artifacts for a
  /// different corpus or different options are stale garbage from an earlier
  /// configuration and are deleted (counted in stale_artifacts_ignored);
  /// corrupt ones are deleted and rebuilt.
  bool reuse_existing_artifacts = true;
};

struct DistBuildStats {
  int32_t attempts_launched = 0;
  /// Retryable worker failures observed (crashes, I/O errors, rejected
  /// artifacts).
  int32_t attempts_failed = 0;
  int32_t speculative_attempts = 0;
  int32_t artifacts_reused = 0;
  /// Artifacts that failed read-back validation (DataLoss) and were deleted.
  int32_t artifacts_rejected = 0;
  /// Pre-existing artifacts for a different corpus/options, deleted on
  /// startup.
  int32_t stale_artifacts_ignored = 0;
  /// Merge passes run (> 1 when a merge-time DataLoss requeued a task).
  int32_t merge_passes = 0;
  /// Total backoff scheduled (virtual milliseconds under a FakeClock).
  int64_t backoff_waited_millis = 0;
};

struct DistBuildResult {
  /// Byte-identical to the single-process engine build at these options.
  PeerIndex index;
  DistBuildStats stats;
  /// The validated artifact file per partition, in partition order.
  std::vector<std::string> artifact_paths;
};

class DistBuildCoordinator {
 public:
  /// `matrix` must outlive the coordinator.
  DistBuildCoordinator(const RatingMatrix* matrix, DistBuildOptions options);

  /// Replaces the in-process worker (fault injection, subprocess dispatch).
  void set_worker_fn(DistWorkerFn worker_fn);

  /// Builds, validates, and merges. One-shot: construct a fresh coordinator
  /// per run.
  Result<DistBuildResult> Run();

 private:
  struct Event {
    int32_t partition = 0;
    int32_t attempt = 0;
    Status status;
  };
  struct Attempt {
    int32_t attempt = 0;
    int64_t started_millis = 0;
  };
  struct TaskState {
    bool done = false;
    int32_t done_attempt = -1;
    std::string artifact_path;
    int32_t failures = 0;
    int32_t next_attempt = 0;
    /// A (re)launch is due once not_before_millis passes.
    bool relaunch_pending = true;
    int64_t not_before_millis = 0;
    std::vector<Attempt> running;
    Status permanent;  // OK while the task can still succeed
  };

  Result<DistBuildResult> RunInternal();
  void ReuseExistingArtifacts();
  Status RunBuildLoop();
  void HandleEvent(const Event& event);
  void RecordRetryableFailure(int32_t partition, const Status& status);
  bool LaunchReady();
  void LaunchAttempt(int32_t partition);
  void InvalidateCorruptArtifacts();
  std::string PathFor(int32_t partition, int32_t attempt) const;
  void JoinWorkers();

  const RatingMatrix* matrix_;
  DistBuildOptions options_;
  DistWorkerFn worker_fn_;
  Clock* clock_ = nullptr;
  Rng jitter_rng_;
  CorpusFingerprint fingerprint_;
  std::vector<TaskState> tasks_;
  DistBuildStats stats_;
  size_t running_attempts_ = 0;

  std::vector<std::thread> workers_;
  std::mutex events_mu_;
  std::deque<Event> events_;
};

}  // namespace fairrec

#endif  // FAIRREC_DIST_COORDINATOR_H_
