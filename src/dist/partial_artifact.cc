#include "dist/partial_artifact.h"

#include <dirent.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "common/blob_io.h"
#include "common/crc32c.h"
#include "common/failpoint.h"
#include "sim/pairwise_engine.h"
#include "sim/pearson_finish.h"

namespace fairrec {

namespace {

/// Manifest wire version, bumped on layout changes.
constexpr uint32_t kManifestVersion = 1;

Status ManifestLoss(const std::string& what) {
  return Status::DataLoss("partial-artifact manifest: " + what);
}

void SerializeManifest(const PartialArtifactManifest& m, std::string& out) {
  BlobWriter writer(&out);
  writer.U32(kManifestVersion);
  writer.I32(m.fingerprint.num_users);
  writer.I32(m.fingerprint.num_items);
  writer.I64(m.fingerprint.num_ratings);
  writer.U32(m.fingerprint.content_crc);
  writer.I32(m.partition.index);
  writer.I32(m.partition.count);
  writer.I32(m.partition.user_first);
  writer.I32(m.partition.user_last);
  writer.I32(m.attempt);
  writer.I32(m.similarity.min_overlap);
  writer.U32(m.similarity.intersection_means ? 1 : 0);
  writer.U32(m.similarity.shift_to_unit_interval ? 1 : 0);
  writer.F64(m.peers.delta);
  writer.I32(m.peers.max_peers_per_user);
}

Result<PartialArtifactManifest> DeserializeManifest(std::string_view bytes) {
  BlobReader reader(bytes);
  PartialArtifactManifest m;
  uint32_t version = 0;
  uint32_t intersection_means = 0;
  uint32_t shift_to_unit_interval = 0;
  if (!reader.U32(&version) || !reader.I32(&m.fingerprint.num_users) ||
      !reader.I32(&m.fingerprint.num_items) ||
      !reader.I64(&m.fingerprint.num_ratings) ||
      !reader.U32(&m.fingerprint.content_crc) ||
      !reader.I32(&m.partition.index) || !reader.I32(&m.partition.count) ||
      !reader.I32(&m.partition.user_first) ||
      !reader.I32(&m.partition.user_last) || !reader.I32(&m.attempt) ||
      !reader.I32(&m.similarity.min_overlap) ||
      !reader.U32(&intersection_means) ||
      !reader.U32(&shift_to_unit_interval) || !reader.F64(&m.peers.delta) ||
      !reader.I32(&m.peers.max_peers_per_user)) {
    return ManifestLoss("truncated");
  }
  if (!reader.exhausted()) return ManifestLoss("trailing bytes");
  if (version != kManifestVersion) {
    return ManifestLoss("unknown version " + std::to_string(version));
  }
  if (m.fingerprint.num_users < 0 || m.fingerprint.num_items < 0 ||
      m.fingerprint.num_ratings < 0) {
    return ManifestLoss("negative corpus shape");
  }
  if (m.partition.count < 1 || m.partition.index < 0 ||
      m.partition.index >= m.partition.count) {
    return ManifestLoss("partition index out of range");
  }
  if (m.partition.user_first < 0 ||
      m.partition.user_first > m.partition.user_last ||
      m.partition.user_last > m.fingerprint.num_users) {
    return ManifestLoss("partition slice outside the user range");
  }
  if (m.attempt < 0) return ManifestLoss("negative attempt id");
  if (m.similarity.min_overlap < 1) return ManifestLoss("min_overlap < 1");
  if (intersection_means > 1 || shift_to_unit_interval > 1) {
    return ManifestLoss("corrupt bool flag");
  }
  m.similarity.intersection_means = intersection_means == 1;
  m.similarity.shift_to_unit_interval = shift_to_unit_interval == 1;
  if (!std::isfinite(m.peers.delta) || m.peers.max_peers_per_user < 0) {
    return ManifestLoss("corrupt peer options");
  }
  return m;
}

bool SameSimilarityOptions(const RatingSimilarityOptions& a,
                           const RatingSimilarityOptions& b) {
  return a.min_overlap == b.min_overlap &&
         a.intersection_means == b.intersection_means &&
         a.shift_to_unit_interval == b.shift_to_unit_interval;
}

bool SamePeerOptions(const PeerIndexOptions& a, const PeerIndexOptions& b) {
  return a.delta == b.delta && a.max_peers_per_user == b.max_peers_per_user;
}

}  // namespace

CorpusFingerprint FingerprintCorpus(const RatingMatrix& matrix) {
  std::string bytes;
  matrix.SerializeTo(bytes);
  CorpusFingerprint fingerprint;
  fingerprint.num_users = matrix.num_users();
  fingerprint.num_items = matrix.num_items();
  fingerprint.num_ratings = matrix.num_ratings();
  fingerprint.content_crc = Crc32c(bytes.data(), bytes.size());
  return fingerprint;
}

PartitionDescriptor MakePartition(int32_t index, int32_t count,
                                  int32_t num_users) {
  PartitionDescriptor partition;
  partition.index = index;
  partition.count = count;
  const int32_t base = num_users / count;
  const int32_t extra = num_users % count;
  partition.user_first = index * base + std::min(index, extra);
  partition.user_last =
      partition.user_first + base + (index < extra ? 1 : 0);
  return partition;
}

void PartialPeerArtifact::SerializeTo(std::string& out) const {
  std::string manifest_bytes;
  SerializeManifest(manifest, manifest_bytes);
  std::string row_bytes;
  rows.SerializeTo(row_bytes);
  BlobWriter writer(&out);
  writer.Framed(manifest_bytes);
  writer.Framed(row_bytes);
}

Result<PartialPeerArtifact> PartialPeerArtifact::Deserialize(
    std::string_view bytes) {
  BlobReader reader(bytes);
  std::string_view manifest_bytes;
  FAIRREC_RETURN_NOT_OK(reader.FramedSection(&manifest_bytes));
  std::string_view row_bytes;
  FAIRREC_RETURN_NOT_OK(reader.FramedSection(&row_bytes));
  if (!reader.exhausted()) {
    return Status::DataLoss("partial artifact: trailing bytes");
  }
  PartialPeerArtifact artifact;
  FAIRREC_ASSIGN_OR_RETURN(artifact.manifest,
                           DeserializeManifest(manifest_bytes));
  FAIRREC_ASSIGN_OR_RETURN(artifact.rows, PeerIndex::Deserialize(row_bytes));

  // Cross-checks between the two sections: the rows must be the population
  // and options the manifest claims, and every entry must be a pair this
  // partition owns (lower endpoint inside the slice). Violations mean the
  // sections were recombined or tampered with — DataLoss, like any other
  // integrity failure.
  if (artifact.rows.num_users() != artifact.manifest.fingerprint.num_users) {
    return Status::DataLoss(
        "partial artifact: row population disagrees with the manifest");
  }
  if (!SamePeerOptions(artifact.rows.options(), artifact.manifest.peers)) {
    return Status::DataLoss(
        "partial artifact: row options disagree with the manifest");
  }
  const PartitionDescriptor& partition = artifact.manifest.partition;
  for (UserId u = 0; u < artifact.rows.num_users(); ++u) {
    for (const Peer& peer : artifact.rows.PeersOf(u)) {
      const UserId owner = std::min(u, peer.user);
      if (owner < partition.user_first || owner >= partition.user_last) {
        return Status::DataLoss(
            "partial artifact: entry outside the partition slice");
      }
    }
  }
  return artifact;
}

Status PartialPeerArtifact::WriteFile(const std::string& path) const {
  if (failpoint::Triggered(kFailpointDistWorkerEmit)) {
    return failpoint::InjectedCrash(kFailpointDistWorkerEmit);
  }
  std::string payload;
  SerializeTo(payload);
  FAIRREC_RETURN_NOT_OK(
      WriteBlobFileAtomic(path, kPartialPeerArtifactBlobType, payload));
  // The artifact is durable but the worker has not reported success yet: a
  // crash here makes the coordinator retry an attempt whose output already
  // exists — the duplicate the merge's (partition, attempt) dedup absorbs.
  if (failpoint::Triggered(kFailpointDistWorkerFinalize)) {
    return failpoint::InjectedCrash(kFailpointDistWorkerFinalize);
  }
  return Status::OK();
}

Result<PartialPeerArtifact> PartialPeerArtifact::ReadFile(
    const std::string& path) {
  FAIRREC_ASSIGN_OR_RETURN(std::string payload,
                           ReadBlobFile(path, kPartialPeerArtifactBlobType));
  auto artifact = Deserialize(payload);
  if (!artifact.ok()) {
    return Status::DataLoss(path + ": " +
                            std::string(artifact.status().message()));
  }
  return artifact;
}

Result<PartialPeerArtifact> BuildPartialPeerArtifact(
    const RatingMatrix& matrix, const PartitionDescriptor& partition,
    int32_t attempt, const DistWorkerOptions& options) {
  if (partition.count < 1 || partition.index < 0 ||
      partition.index >= partition.count) {
    return Status::InvalidArgument("partition index out of range");
  }
  if (partition.user_first < 0 ||
      partition.user_first > partition.user_last ||
      partition.user_last > matrix.num_users()) {
    return Status::InvalidArgument("partition slice outside the user range");
  }
  if (attempt < 0) return Status::InvalidArgument("attempt must be >= 0");
  if (options.similarity.min_overlap < 1) {
    return Status::InvalidArgument("min_overlap must be >= 1");
  }
  if (options.block_users < 1) {
    return Status::InvalidArgument("block_users must be >= 1");
  }

  // Scalar-finish engine seam: FinishPair is bit-identical to the batched
  // kernel the full sweep drains through, so the partial rows finish to the
  // exact bytes the single-process build would produce.
  PairwiseEngineOptions engine_options;
  engine_options.num_threads = 1;
  engine_options.block_users = options.block_users;
  const PairwiseSimilarityEngine engine(&matrix, options.similarity,
                                        engine_options);
  PeerIndex::Builder builder(matrix.num_users(), options.peers);
  const double delta = options.peers.delta;
  const int32_t num_users = matrix.num_users();
  const int32_t num_items = matrix.num_items();
  const auto block = static_cast<UserId>(options.block_users);

  // Accumulate one row-block x col-block tile of complete pair moments, then
  // drain it. Item-ascending accumulation order matches the engine's sweep;
  // on the 1..5 integer scale the moments are exactly representable anyway,
  // so tile geometry cannot perturb the sums.
  std::vector<PairMoments> acc;
  const auto drain_pair = [&](UserId a, UserId b, const PairMoments& moments) {
    const double sim =
        engine.SkipsFinish(moments) ? 0.0 : engine.FinishPair(moments, a, b);
    if (sim >= delta) builder.OfferPair(a, b, sim);
  };

  for (UserId r0 = partition.user_first; r0 < partition.user_last; r0 += block) {
    const UserId r1 = std::min<UserId>(r0 + block, partition.user_last);
    const size_t rows = static_cast<size_t>(r1 - r0);

    // Diagonal tile: pairs a < b inside [r0, r1).
    acc.assign(rows * rows, PairMoments{});
    for (ItemId i = 0; i < num_items; ++i) {
      const auto span = matrix.UsersWhoRatedInRange(i, r0, r1);
      for (size_t p = 0; p < span.size(); ++p) {
        const double ra = span[p].value;
        PairMoments* acc_row = &acc[static_cast<size_t>(span[p].user - r0) * rows];
        for (size_t q = p + 1; q < span.size(); ++q) {
          acc_row[span[q].user - r0].Add(ra, span[q].value);
        }
      }
    }
    for (UserId a = r0; a < r1; ++a) {
      for (UserId b = a + 1; b < r1; ++b) {
        drain_pair(a, b,
                   acc[static_cast<size_t>(a - r0) * rows +
                       static_cast<size_t>(b - r0)]);
      }
    }

    // Off-diagonal tiles: rows [r0, r1) x cols [c0, c1) for every column
    // block to the right — the rest of this partition's owned pairs.
    for (UserId c0 = r1; c0 < num_users; c0 += block) {
      const UserId c1 = std::min<UserId>(c0 + block, num_users);
      const size_t cols = static_cast<size_t>(c1 - c0);
      acc.assign(rows * cols, PairMoments{});
      for (ItemId i = 0; i < num_items; ++i) {
        const auto row_span = matrix.UsersWhoRatedInRange(i, r0, r1);
        if (row_span.empty()) continue;
        const auto col_span = matrix.UsersWhoRatedInRange(i, c0, c1);
        if (col_span.empty()) continue;
        for (const UserRating& row_entry : row_span) {
          PairMoments* acc_row =
              &acc[static_cast<size_t>(row_entry.user - r0) * cols];
          for (const UserRating& col_entry : col_span) {
            acc_row[col_entry.user - c0].Add(row_entry.value, col_entry.value);
          }
        }
      }
      for (UserId a = r0; a < r1; ++a) {
        for (UserId b = c0; b < c1; ++b) {
          drain_pair(a, b,
                     acc[static_cast<size_t>(a - r0) * cols +
                         static_cast<size_t>(b - c0)]);
        }
      }
    }
  }

  PartialPeerArtifact artifact;
  artifact.manifest.fingerprint = FingerprintCorpus(matrix);
  artifact.manifest.partition = partition;
  artifact.manifest.attempt = attempt;
  artifact.manifest.similarity = options.similarity;
  artifact.manifest.peers = options.peers;
  artifact.rows = std::move(builder).Build();
  return artifact;
}

Result<PeerIndex> MergePartialArtifacts(
    std::span<const PartialPeerArtifact> partials) {
  if (partials.empty()) {
    return Status::InvalidArgument("no partial artifacts to merge");
  }
  const PartialArtifactManifest& reference = partials[0].manifest;
  for (const PartialPeerArtifact& partial : partials) {
    const PartialArtifactManifest& m = partial.manifest;
    if (!(m.fingerprint == reference.fingerprint)) {
      return Status::InvalidArgument(
          "corpus fingerprint mismatch across partial artifacts");
    }
    if (m.partition.count != reference.partition.count) {
      return Status::InvalidArgument(
          "partition count mismatch across partial artifacts");
    }
    if (!SameSimilarityOptions(m.similarity, reference.similarity)) {
      return Status::InvalidArgument(
          "similarity options mismatch across partial artifacts");
    }
    if (!SamePeerOptions(m.peers, reference.peers)) {
      return Status::InvalidArgument(
          "peer options mismatch across partial artifacts");
    }
    if (m.partition.index < 0 || m.partition.index >= m.partition.count) {
      return Status::InvalidArgument("partition index out of range");
    }
  }

  // Dedup speculative / retried duplicates: one artifact per partition, the
  // lowest attempt id winning (any attempt's rows are identical by
  // determinism; the rule just makes the choice order-independent).
  const auto count = static_cast<size_t>(reference.partition.count);
  std::vector<const PartialPeerArtifact*> chosen(count, nullptr);
  for (const PartialPeerArtifact& partial : partials) {
    const auto index = static_cast<size_t>(partial.manifest.partition.index);
    if (chosen[index] == nullptr ||
        partial.manifest.attempt < chosen[index]->manifest.attempt) {
      if (chosen[index] != nullptr &&
          !(chosen[index]->manifest.partition == partial.manifest.partition)) {
        return Status::InvalidArgument(
            "conflicting slices for partition " +
            std::to_string(partial.manifest.partition.index));
      }
      chosen[index] = &partial;
    }
  }
  UserId expected_first = 0;
  for (size_t index = 0; index < count; ++index) {
    if (chosen[index] == nullptr) {
      return Status::InvalidArgument(
          "missing partition " + std::to_string(index) + " of " +
          std::to_string(count));
    }
    const PartitionDescriptor& slice = chosen[index]->manifest.partition;
    if (slice.user_first != expected_first) {
      return Status::InvalidArgument(
          "partition slices do not tile the user range");
    }
    expected_first = slice.user_last;
  }
  if (expected_first != reference.fingerprint.num_users) {
    return Status::InvalidArgument(
        "partition slices do not cover every user");
  }

  // The bounded per-user-row union: re-offer every retained entry. Each
  // partial's rows are already thresholded and capped under the same strict
  // total order, so the union's top-k per row is the global top-k (see the
  // header's exactness argument).
  PeerIndex::Builder builder(reference.fingerprint.num_users, reference.peers);
  for (size_t index = 0; index < count; ++index) {
    if (failpoint::Triggered(kFailpointDistMergeConsume)) {
      return failpoint::InjectedCrash(kFailpointDistMergeConsume);
    }
    const PeerIndex& rows = chosen[index]->rows;
    for (UserId u = 0; u < rows.num_users(); ++u) {
      for (const Peer& peer : rows.PeersOf(u)) {
        builder.Offer(u, peer.user, peer.similarity);
      }
    }
  }
  return std::move(builder).Build();
}

Result<PeerIndex> MergePartialArtifactFiles(
    const std::vector<std::string>& paths) {
  std::vector<PartialPeerArtifact> partials;
  partials.reserve(paths.size());
  for (const std::string& path : paths) {
    FAIRREC_ASSIGN_OR_RETURN(PartialPeerArtifact artifact,
                             PartialPeerArtifact::ReadFile(path));
    partials.push_back(std::move(artifact));
  }
  return MergePartialArtifacts(partials);
}

std::string PartialArtifactFileName(int32_t partition_index, int32_t attempt) {
  char name[64];
  std::snprintf(name, sizeof(name), "partial_p%05d_a%04d.blob",
                partition_index, attempt);
  return name;
}

Result<std::vector<std::string>> ListPartialArtifactFiles(
    const std::string& dir) {
  DIR* handle = ::opendir(dir.c_str());
  if (handle == nullptr) {
    return Status::IOError("cannot list artifact directory: " + dir);
  }
  std::vector<std::string> paths;
  while (const struct dirent* entry = ::readdir(handle)) {
    const std::string_view name = entry->d_name;
    if (name.starts_with("partial_p") && name.ends_with(".blob")) {
      paths.push_back(dir + "/" + std::string(name));
    }
  }
  ::closedir(handle);
  std::sort(paths.begin(), paths.end());
  return paths;
}

}  // namespace fairrec
