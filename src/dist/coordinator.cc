#include "dist/coordinator.h"

#include <algorithm>
#include <utility>

#include "common/blob_io.h"
#include "common/failpoint.h"

namespace fairrec {

namespace {

Status DefaultWorker(const RatingMatrix& matrix,
                     const PartitionDescriptor& partition, int32_t attempt,
                     const DistWorkerOptions& options,
                     const std::string& path) {
  FAIRREC_ASSIGN_OR_RETURN(
      PartialPeerArtifact artifact,
      BuildPartialPeerArtifact(matrix, partition, attempt, options));
  return artifact.WriteFile(path);
}

/// Worker-level errors that a retry can plausibly fix: simulated process
/// deaths, transient I/O, corrupt output, exhausted resources. Anything else
/// (notably InvalidArgument) is a bug in the inputs and fails the build.
bool IsRetryable(const Status& status) {
  return failpoint::IsInjectedCrash(status) || status.IsIOError() ||
         status.IsDataLoss() || status.IsResourceExhausted();
}

}  // namespace

DistBuildCoordinator::DistBuildCoordinator(const RatingMatrix* matrix,
                                           DistBuildOptions options)
    : matrix_(matrix),
      options_(std::move(options)),
      worker_fn_(DefaultWorker),
      jitter_rng_(options_.retry_jitter_seed) {}

void DistBuildCoordinator::set_worker_fn(DistWorkerFn worker_fn) {
  worker_fn_ = std::move(worker_fn);
}

Result<DistBuildResult> DistBuildCoordinator::Run() {
  auto result = RunInternal();
  // Every launched attempt must be reaped before Run returns, whatever the
  // outcome — late straggler results after this point would dangle.
  JoinWorkers();
  return result;
}

Result<DistBuildResult> DistBuildCoordinator::RunInternal() {
  if (options_.num_partitions < 1) {
    return Status::InvalidArgument("num_partitions must be >= 1");
  }
  if (options_.artifact_dir.empty()) {
    return Status::InvalidArgument("artifact_dir is required");
  }
  if (options_.retry.max_attempts < 1) {
    return Status::InvalidArgument("retry.max_attempts must be >= 1");
  }
  if (options_.worker_slots == 0) {
    options_.worker_slots = static_cast<size_t>(options_.num_partitions);
  }
  clock_ = options_.clock != nullptr ? options_.clock : Clock::Real();
  FAIRREC_RETURN_NOT_OK(EnsureDirectory(options_.artifact_dir));
  fingerprint_ = FingerprintCorpus(*matrix_);
  tasks_.assign(static_cast<size_t>(options_.num_partitions), TaskState{});

  if (options_.reuse_existing_artifacts) ReuseExistingArtifacts();

  // Build -> merge, re-entering the build loop when the merge's re-read
  // catches an artifact that went bad after validation (requeued like any
  // other corruption). The pass budget mirrors the per-task retry budget.
  for (int32_t pass = 0; pass < options_.retry.max_attempts; ++pass) {
    FAIRREC_RETURN_NOT_OK(RunBuildLoop());
    stats_.merge_passes += 1;
    std::vector<std::string> paths;
    paths.reserve(tasks_.size());
    for (const TaskState& task : tasks_) paths.push_back(task.artifact_path);
    auto merged = MergePartialArtifactFiles(paths);
    if (merged.ok()) {
      DistBuildResult result;
      result.index = std::move(*merged);
      result.stats = stats_;
      result.artifact_paths = std::move(paths);
      return result;
    }
    // An injected crash in the merge is the coordinator's own death: fail
    // the run as a kill would; the next Run recovers through artifact reuse.
    if (failpoint::IsInjectedCrash(merged.status())) return merged.status();
    if (!merged.status().IsDataLoss()) return merged.status();
    InvalidateCorruptArtifacts();
  }
  return Status::DataLoss("merge kept finding corrupt artifacts after " +
                          std::to_string(options_.retry.max_attempts) +
                          " passes");
}

void DistBuildCoordinator::ReuseExistingArtifacts() {
  for (int32_t p = 0; p < options_.num_partitions; ++p) {
    TaskState& task = tasks_[static_cast<size_t>(p)];
    const PartitionDescriptor expected =
        MakePartition(p, options_.num_partitions, matrix_->num_users());
    for (int32_t attempt = 0; attempt < options_.retry.max_attempts;
         ++attempt) {
      const std::string path = PathFor(p, attempt);
      if (!PathExists(path)) continue;
      auto artifact = PartialPeerArtifact::ReadFile(path);
      if (!artifact.ok()) {
        stats_.artifacts_rejected += 1;
        (void)RemovePath(path);
        continue;
      }
      const PartialArtifactManifest& m = artifact->manifest;
      if (!(m.fingerprint == fingerprint_) || !(m.partition == expected) ||
          m.similarity.min_overlap != options_.worker.similarity.min_overlap ||
          m.similarity.intersection_means !=
              options_.worker.similarity.intersection_means ||
          m.similarity.shift_to_unit_interval !=
              options_.worker.similarity.shift_to_unit_interval ||
          m.peers.delta != options_.worker.peers.delta ||
          m.peers.max_peers_per_user !=
              options_.worker.peers.max_peers_per_user) {
        stats_.stale_artifacts_ignored += 1;
        (void)RemovePath(path);
        continue;
      }
      task.done = true;
      task.done_attempt = attempt;
      task.artifact_path = path;
      task.relaunch_pending = false;
      task.next_attempt = attempt + 1;
      stats_.artifacts_reused += 1;
      break;
    }
  }
}

Status DistBuildCoordinator::RunBuildLoop() {
  while (true) {
    bool all_done = true;
    for (const TaskState& task : tasks_) {
      if (!task.permanent.ok()) return task.permanent;
      if (!task.done) all_done = false;
    }
    if (all_done) return Status::OK();

    bool progressed = false;
    std::deque<Event> events;
    {
      std::lock_guard<std::mutex> lock(events_mu_);
      events.swap(events_);
    }
    for (const Event& event : events) {
      HandleEvent(event);
      progressed = true;
    }
    if (LaunchReady()) progressed = true;
    if (!progressed) clock_->SleepMillis(options_.poll_interval_millis);
  }
}

void DistBuildCoordinator::HandleEvent(const Event& event) {
  TaskState& task = tasks_[static_cast<size_t>(event.partition)];
  const auto running = std::find_if(
      task.running.begin(), task.running.end(),
      [&](const Attempt& a) { return a.attempt == event.attempt; });
  if (running != task.running.end()) {
    task.running.erase(running);
    running_attempts_ -= 1;
  }
  // A result for an already-complete partition is a late straggler losing
  // the speculation race; its artifact (if it produced one) is exactly the
  // duplicate the merge's (partition, attempt) dedup exists for.
  if (task.done) return;

  if (event.status.ok()) {
    // Trust nothing a worker reports: adopt the artifact only after it
    // re-reads clean and matches this build's identity.
    const std::string path = PathFor(event.partition, event.attempt);
    auto artifact = PartialPeerArtifact::ReadFile(path);
    if (!artifact.ok()) {
      stats_.artifacts_rejected += 1;
      (void)RemovePath(path);
      RecordRetryableFailure(event.partition, artifact.status());
      return;
    }
    const PartialArtifactManifest& m = artifact->manifest;
    if (!(m.fingerprint == fingerprint_)) {
      task.permanent = Status::InvalidArgument(
          "partition " + std::to_string(event.partition) +
          " emitted an artifact for a different corpus (fingerprint "
          "mismatch)");
      return;
    }
    const PartitionDescriptor expected = MakePartition(
        event.partition, options_.num_partitions, matrix_->num_users());
    if (!(m.partition == expected)) {
      task.permanent = Status::InvalidArgument(
          "partition " + std::to_string(event.partition) +
          " emitted an artifact with the wrong partition descriptor");
      return;
    }
    task.done = true;
    task.done_attempt = event.attempt;
    task.artifact_path = path;
    task.relaunch_pending = false;
    return;
  }

  if (IsRetryable(event.status)) {
    RecordRetryableFailure(event.partition, event.status);
  } else {
    task.permanent = event.status;
  }
}

void DistBuildCoordinator::RecordRetryableFailure(int32_t partition,
                                                  const Status& status) {
  TaskState& task = tasks_[static_cast<size_t>(partition)];
  task.failures += 1;
  stats_.attempts_failed += 1;
  if (task.failures >= options_.retry.max_attempts) {
    task.permanent = Status::ResourceExhausted(
        "partition " + std::to_string(partition) + " failed after " +
        std::to_string(task.failures) + " attempts; last error: " +
        status.ToString());
    return;
  }
  const int64_t backoff =
      BackoffWithJitterMillis(options_.retry, task.failures, jitter_rng_);
  stats_.backoff_waited_millis += backoff;
  task.relaunch_pending = true;
  task.not_before_millis = clock_->NowMillis() + backoff;
}

bool DistBuildCoordinator::LaunchReady() {
  bool launched = false;
  const int64_t now = clock_->NowMillis();
  for (int32_t p = 0; p < options_.num_partitions; ++p) {
    TaskState& task = tasks_[static_cast<size_t>(p)];
    if (task.done || !task.permanent.ok()) continue;
    if (running_attempts_ >= options_.worker_slots) break;
    // At most two concurrent attempts per partition: the incumbent plus one
    // speculative or replacement attempt.
    if (task.running.size() >= 2) continue;
    if (task.relaunch_pending) {
      if (now < task.not_before_millis) continue;
      LaunchAttempt(p);
      task.relaunch_pending = false;
      launched = true;
    } else if (options_.task_timeout_millis > 0 && task.running.size() == 1 &&
               now - task.running.front().started_millis >=
                   options_.task_timeout_millis) {
      stats_.speculative_attempts += 1;
      LaunchAttempt(p);
      launched = true;
    }
  }
  return launched;
}

void DistBuildCoordinator::LaunchAttempt(int32_t partition) {
  TaskState& task = tasks_[static_cast<size_t>(partition)];
  const int32_t attempt = task.next_attempt++;
  task.running.push_back({attempt, clock_->NowMillis()});
  running_attempts_ += 1;
  stats_.attempts_launched += 1;
  workers_.emplace_back([this, partition, attempt] {
    const PartitionDescriptor descriptor =
        MakePartition(partition, options_.num_partitions, matrix_->num_users());
    const std::string path = PathFor(partition, attempt);
    Status status =
        worker_fn_(*matrix_, descriptor, attempt, options_.worker, path);
    std::lock_guard<std::mutex> lock(events_mu_);
    events_.push_back({partition, attempt, std::move(status)});
  });
}

void DistBuildCoordinator::InvalidateCorruptArtifacts() {
  for (int32_t p = 0; p < options_.num_partitions; ++p) {
    TaskState& task = tasks_[static_cast<size_t>(p)];
    if (!task.done) continue;
    auto artifact = PartialPeerArtifact::ReadFile(task.artifact_path);
    if (artifact.ok() && artifact->manifest.fingerprint == fingerprint_) {
      continue;
    }
    stats_.artifacts_rejected += 1;
    (void)RemovePath(task.artifact_path);
    task.done = false;
    task.done_attempt = -1;
    task.artifact_path.clear();
    task.relaunch_pending = true;
    task.not_before_millis = 0;
  }
}

std::string DistBuildCoordinator::PathFor(int32_t partition,
                                          int32_t attempt) const {
  return options_.artifact_dir + "/" +
         PartialArtifactFileName(partition, attempt);
}

void DistBuildCoordinator::JoinWorkers() {
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

}  // namespace fairrec
