#include "data/cohort_generator.h"

#include <algorithm>
#include <array>
#include <string>

#include "common/random.h"

namespace fairrec {

namespace {

constexpr std::array<std::string_view, 8> kMedicationStems = {
    "Ramipril",   "Niacin",     "Metformin", "Atorvastatin",
    "Salbutamol", "Omeprazole", "Cisplatin", "Levothyroxine"};
constexpr std::array<std::string_view, 4> kMedicationForms = {
    "10 MG Oral Capsule", "500 MG Extended Release Tablet",
    "25 MG Oral Tablet", "100 MG Inhalation Solution"};
constexpr std::array<std::string_view, 6> kProcedures = {
    "chest radiograph",    "blood panel",        "biopsy",
    "physical therapy",    "cardiac ultrasound", "endoscopy"};

}  // namespace

Result<Cohort> GenerateCohort(const CohortConfig& config,
                              const SyntheticOntology& ontology) {
  if (config.num_patients <= 0) {
    return Status::InvalidArgument("num_patients must be positive");
  }
  if (config.min_primary_problems < 1 ||
      config.max_primary_problems < config.min_primary_problems) {
    return Status::InvalidArgument("invalid primary problem range");
  }
  if (ontology.cluster_roots.empty()) {
    return Status::InvalidArgument("ontology has no condition clusters");
  }
  for (const auto& cluster : ontology.cluster_concepts) {
    if (cluster.empty()) {
      return Status::InvalidArgument("ontology cluster with no concepts");
    }
  }

  Rng rng(config.seed);
  Cohort cohort;
  cohort.num_clusters = static_cast<int32_t>(ontology.cluster_roots.size());
  cohort.cluster_of_user.reserve(static_cast<size_t>(config.num_patients));

  for (UserId u = 0; u < config.num_patients; ++u) {
    const auto cluster = static_cast<int32_t>(
        rng.UniformInt(0, cohort.num_clusters - 1));
    cohort.cluster_of_user.push_back(cluster);

    PatientProfile profile;
    profile.user = u;

    // Primary problems: distinct concepts from the patient's own cluster.
    const auto& pool =
        ontology.cluster_concepts[static_cast<size_t>(cluster)];
    const auto want = static_cast<int32_t>(rng.UniformInt(
        config.min_primary_problems, config.max_primary_problems));
    const int32_t take =
        std::min<int32_t>(want, static_cast<int32_t>(pool.size()));
    for (const int32_t index : rng.SampleWithoutReplacement(
             static_cast<int32_t>(pool.size()), take)) {
      profile.problems.push_back(pool[static_cast<size_t>(index)]);
    }
    // Comorbidity noise: one concept from a different cluster.
    if (cohort.num_clusters > 1 && rng.NextBool(config.comorbidity_prob)) {
      auto other = static_cast<int32_t>(
          rng.UniformInt(0, cohort.num_clusters - 2));
      if (other >= cluster) ++other;
      const auto& other_pool =
          ontology.cluster_concepts[static_cast<size_t>(other)];
      profile.problems.push_back(other_pool[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(other_pool.size()) - 1))]);
    }

    // Medications biased by cluster so that profile text correlates with the
    // clinical cluster (gives the TF-IDF measure signal to find).
    const auto num_meds = static_cast<int32_t>(
        rng.UniformInt(config.min_medications, config.max_medications));
    for (int32_t k = 0; k < num_meds; ++k) {
      const size_t stem =
          (static_cast<size_t>(cluster) + static_cast<size_t>(k)) %
          kMedicationStems.size();
      const size_t form = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(kMedicationForms.size()) - 1));
      profile.medications.push_back(std::string(kMedicationStems[stem]) + " " +
                                    std::string(kMedicationForms[form]));
    }
    if (rng.NextBool(config.procedure_prob)) {
      profile.procedures.push_back(std::string(kProcedures[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(kProcedures.size()) - 1))]));
    }
    profile.gender = rng.NextBool() ? Gender::kFemale : Gender::kMale;
    profile.age =
        static_cast<int32_t>(rng.UniformInt(config.min_age, config.max_age));

    FAIRREC_RETURN_NOT_OK(cohort.profiles.Add(std::move(profile)));
  }
  return cohort;
}

}  // namespace fairrec
