#ifndef FAIRREC_DATA_RATING_GENERATOR_H_
#define FAIRREC_DATA_RATING_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "data/corpus_generator.h"
#include "ratings/rating_matrix.h"

namespace fairrec {

/// Knobs for the latent-cluster rating generator.
struct RatingGeneratorConfig {
  /// Expected fraction of the user x item grid that gets a rating.
  double density = 0.05;
  /// How much more likely a user is to rate a document of their own topic
  /// (cluster-aligned) than an off-topic one.
  double on_topic_boost = 3.0;
  /// Mean rating for on-topic documents of average quality; off-topic
  /// documents center `off_topic_penalty` lower.
  double on_topic_mean = 4.0;
  double off_topic_penalty = 1.5;
  /// How strongly document quality shifts the rating (in stars per unit
  /// quality deviation from 0.5).
  double quality_gain = 1.0;
  /// Gaussian observation noise, in stars.
  double noise_sigma = 0.7;
  uint64_t seed = 23;
};

/// Generates a rating matrix where users rate documents of their own latent
/// cluster more often and more favourably. Ratings are integers 1..5.
///
/// `cluster_of_user[u]` assigns each user a latent interest (the cohort's
/// condition cluster); document topics come from `corpus`. Cluster-aligned
/// behaviour guarantees real peer structure, so Def. 1 / Eq. 1 operate on the
/// same kind of signal the paper's real deployment would see.
Result<RatingMatrix> GenerateRatings(const RatingGeneratorConfig& config,
                                     const std::vector<int32_t>& cluster_of_user,
                                     const Corpus& corpus);

}  // namespace fairrec

#endif  // FAIRREC_DATA_RATING_GENERATOR_H_
