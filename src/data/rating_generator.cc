#include "data/rating_generator.h"

#include <algorithm>
#include <cmath>

#include "common/random.h"

namespace fairrec {

Result<RatingMatrix> GenerateRatings(const RatingGeneratorConfig& config,
                                     const std::vector<int32_t>& cluster_of_user,
                                     const Corpus& corpus) {
  if (cluster_of_user.empty()) {
    return Status::InvalidArgument("no users to generate ratings for");
  }
  if (corpus.documents.empty()) {
    return Status::InvalidArgument("corpus is empty");
  }
  if (config.density <= 0.0 || config.density > 1.0) {
    return Status::InvalidArgument("density must be in (0, 1]");
  }
  if (config.on_topic_boost < 1.0) {
    return Status::InvalidArgument("on_topic_boost must be >= 1");
  }

  Rng rng(config.seed);
  const auto num_users = static_cast<int32_t>(cluster_of_user.size());
  const auto num_items = static_cast<int32_t>(corpus.documents.size());

  // Per-user rating probability, split so that the *overall* density matches
  // the configured value while on-topic items are boosted. With topic share
  // s (≈ 1/num_topics): p_on * s + p_off * (1 - s) = density and
  // p_on = boost * p_off.
  const double share = 1.0 / std::max(1, corpus.num_topics);
  const double p_off =
      config.density / (config.on_topic_boost * share + (1.0 - share));
  const double p_on = std::min(1.0, config.on_topic_boost * p_off);

  RatingMatrixBuilder builder;
  builder.Reserve(num_users, num_items);
  for (UserId u = 0; u < num_users; ++u) {
    const int32_t cluster = cluster_of_user[static_cast<size_t>(u)];
    for (ItemId i = 0; i < num_items; ++i) {
      const Document& doc = corpus.documents[static_cast<size_t>(i)];
      // Users' interest clusters map onto document topics modulo the
      // available topic count.
      const bool on_topic = doc.topic == cluster % corpus.num_topics;
      if (!rng.NextBool(on_topic ? p_on : p_off)) continue;
      const double base =
          on_topic ? config.on_topic_mean
                   : config.on_topic_mean - config.off_topic_penalty;
      const double mean =
          base + config.quality_gain * (doc.quality - 0.5);
      const double drawn = mean + config.noise_sigma * rng.NextGaussian();
      const double stars =
          std::clamp(std::round(drawn), kMinRating, kMaxRating);
      FAIRREC_RETURN_NOT_OK(builder.Add(u, i, stars));
    }
  }
  return builder.Build();
}

}  // namespace fairrec
