#ifndef FAIRREC_DATA_CORPUS_GENERATOR_H_
#define FAIRREC_DATA_CORPUS_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "ratings/types.h"

namespace fairrec {

/// One synthetic health document in the expert-curated corpus stand-in.
struct Document {
  ItemId item = kInvalidItemId;
  std::string title;
  /// Latent topic (aligned with the cohort's condition clusters).
  int32_t topic = 0;
  /// Latent editorial quality in [0, 1]; shifts every user's rating of the
  /// document up or down regardless of topic match.
  double quality = 0.5;
};

/// Knobs for the synthetic corpus.
struct CorpusConfig {
  int32_t num_documents = 200;
  int32_t num_topics = 8;
  uint64_t seed = 7;
};

/// The generated corpus.
struct Corpus {
  std::vector<Document> documents;  // item id == index
  int32_t num_topics = 0;
};

/// Generates documents with topics distributed round-robin (so every topic is
/// populated) and Beta-ish quality draws. Deterministic in the seed.
Result<Corpus> GenerateCorpus(const CorpusConfig& config);

}  // namespace fairrec

#endif  // FAIRREC_DATA_CORPUS_GENERATOR_H_
