#include "data/scenario.h"

#include <algorithm>

#include "common/random.h"

namespace fairrec {

SnomedGeneratorConfig ScenarioConfig::MakeOntologyConfig() const {
  SnomedGeneratorConfig out;
  out.num_clusters = num_clusters;
  out.cluster_depth = 4;
  out.seed = seed * 31 + 1;
  return out;
}

CohortConfig ScenarioConfig::MakeCohortConfig() const {
  CohortConfig out;
  out.num_patients = num_patients;
  out.seed = seed * 31 + 2;
  return out;
}

CorpusConfig ScenarioConfig::MakeCorpusConfig() const {
  CorpusConfig out;
  out.num_documents = num_documents;
  out.num_topics = num_clusters;
  out.seed = seed * 31 + 3;
  return out;
}

RatingGeneratorConfig ScenarioConfig::MakeRatingConfig() const {
  RatingGeneratorConfig out;
  out.density = rating_density;
  out.seed = seed * 31 + 4;
  return out;
}

Result<Scenario> BuildScenario(const ScenarioConfig& config) {
  Scenario scenario;
  FAIRREC_ASSIGN_OR_RETURN(scenario.ontology,
                           GenerateSnomedLikeOntology(config.MakeOntologyConfig()));
  FAIRREC_ASSIGN_OR_RETURN(
      scenario.cohort, GenerateCohort(config.MakeCohortConfig(), scenario.ontology));
  FAIRREC_ASSIGN_OR_RETURN(scenario.corpus,
                           GenerateCorpus(config.MakeCorpusConfig()));
  FAIRREC_ASSIGN_OR_RETURN(
      scenario.ratings,
      GenerateRatings(config.MakeRatingConfig(), scenario.cohort.cluster_of_user,
                      scenario.corpus));
  return scenario;
}

Group Scenario::MakeCohesiveGroup(int32_t size, uint64_t seed) const {
  Rng rng(seed);
  const int32_t num_clusters = cohort.num_clusters;
  // Pick the cluster with enough patients, starting from a random one.
  const auto start =
      static_cast<int32_t>(rng.UniformInt(0, std::max(0, num_clusters - 1)));
  for (int32_t offset = 0; offset < num_clusters; ++offset) {
    const int32_t cluster = (start + offset) % num_clusters;
    std::vector<UserId> pool;
    for (size_t u = 0; u < cohort.cluster_of_user.size(); ++u) {
      if (cohort.cluster_of_user[u] == cluster) {
        pool.push_back(static_cast<UserId>(u));
      }
    }
    if (static_cast<int32_t>(pool.size()) < size) continue;
    Group group;
    for (const int32_t index : rng.SampleWithoutReplacement(
             static_cast<int32_t>(pool.size()), size)) {
      group.push_back(pool[static_cast<size_t>(index)]);
    }
    std::sort(group.begin(), group.end());
    return group;
  }
  // No cluster is large enough; fall back to a random group.
  return MakeRandomGroup(size, seed);
}

Group Scenario::MakeRandomGroup(int32_t size, uint64_t seed) const {
  Rng rng(seed ^ 0x5bd1e995u);
  const auto num_users = static_cast<int32_t>(cohort.cluster_of_user.size());
  Group group;
  for (const int32_t u :
       rng.SampleWithoutReplacement(num_users, std::min(size, num_users))) {
    group.push_back(u);
  }
  std::sort(group.begin(), group.end());
  return group;
}

}  // namespace fairrec
