#include "data/scenario.h"

#include <algorithm>

#include "common/random.h"

namespace fairrec {

SnomedGeneratorConfig ScenarioConfig::MakeOntologyConfig() const {
  SnomedGeneratorConfig out;
  out.num_clusters = num_clusters;
  out.cluster_depth = 4;
  out.seed = seed * 31 + 1;
  return out;
}

CohortConfig ScenarioConfig::MakeCohortConfig() const {
  CohortConfig out;
  out.num_patients = num_patients;
  out.seed = seed * 31 + 2;
  return out;
}

CorpusConfig ScenarioConfig::MakeCorpusConfig() const {
  CorpusConfig out;
  out.num_documents = num_documents;
  out.num_topics = num_clusters;
  out.seed = seed * 31 + 3;
  return out;
}

RatingGeneratorConfig ScenarioConfig::MakeRatingConfig() const {
  RatingGeneratorConfig out;
  out.density = rating_density;
  out.seed = seed * 31 + 4;
  return out;
}

Result<Scenario> BuildScenario(const ScenarioConfig& config) {
  Scenario scenario;
  FAIRREC_ASSIGN_OR_RETURN(scenario.ontology,
                           GenerateSnomedLikeOntology(config.MakeOntologyConfig()));
  FAIRREC_ASSIGN_OR_RETURN(
      scenario.cohort, GenerateCohort(config.MakeCohortConfig(), scenario.ontology));
  FAIRREC_ASSIGN_OR_RETURN(scenario.corpus,
                           GenerateCorpus(config.MakeCorpusConfig()));
  FAIRREC_ASSIGN_OR_RETURN(
      scenario.ratings,
      GenerateRatings(config.MakeRatingConfig(), scenario.cohort.cluster_of_user,
                      scenario.corpus));
  return scenario;
}

Group Scenario::MakeCohesiveGroup(int32_t size, uint64_t seed) const {
  Rng rng(seed);
  const int32_t num_clusters = cohort.num_clusters;
  // Pick the cluster with enough patients, starting from a random one.
  const auto start =
      static_cast<int32_t>(rng.UniformInt(0, std::max(0, num_clusters - 1)));
  for (int32_t offset = 0; offset < num_clusters; ++offset) {
    const int32_t cluster = (start + offset) % num_clusters;
    std::vector<UserId> pool;
    for (size_t u = 0; u < cohort.cluster_of_user.size(); ++u) {
      if (cohort.cluster_of_user[u] == cluster) {
        pool.push_back(static_cast<UserId>(u));
      }
    }
    if (static_cast<int32_t>(pool.size()) < size) continue;
    Group group;
    for (const int32_t index : rng.SampleWithoutReplacement(
             static_cast<int32_t>(pool.size()), size)) {
      group.push_back(pool[static_cast<size_t>(index)]);
    }
    std::sort(group.begin(), group.end());
    return group;
  }
  // No cluster is large enough; fall back to a random group.
  return MakeRandomGroup(size, seed);
}

Group Scenario::MakeRandomGroup(int32_t size, uint64_t seed) const {
  Rng rng(seed ^ 0x5bd1e995u);
  const auto num_users = static_cast<int32_t>(cohort.cluster_of_user.size());
  Group group;
  for (const int32_t u :
       rng.SampleWithoutReplacement(num_users, std::min(size, num_users))) {
    group.push_back(u);
  }
  std::sort(group.begin(), group.end());
  return group;
}

namespace {

/// Users of one cluster, ascending id.
std::vector<UserId> ClusterPool(const Cohort& cohort, int32_t cluster) {
  std::vector<UserId> pool;
  for (size_t u = 0; u < cohort.cluster_of_user.size(); ++u) {
    if (cohort.cluster_of_user[u] == cluster) {
      pool.push_back(static_cast<UserId>(u));
    }
  }
  return pool;
}

/// Samples `count` members from `pool` into `group`.
void SampleInto(Rng& rng, const std::vector<UserId>& pool, int32_t count,
                Group* group) {
  for (const int32_t index : rng.SampleWithoutReplacement(
           static_cast<int32_t>(pool.size()), count)) {
    group->push_back(pool[static_cast<size_t>(index)]);
  }
}

}  // namespace

Group Scenario::MakeSkewedGroup(int32_t size, uint64_t seed) const {
  if (size < 2) return MakeCohesiveGroup(size, seed);
  Rng rng(seed ^ 0x9e3779b9u);
  const int32_t num_clusters = cohort.num_clusters;
  const auto start =
      static_cast<int32_t>(rng.UniformInt(0, std::max(0, num_clusters - 1)));
  for (int32_t offset = 0; offset < num_clusters; ++offset) {
    const int32_t majority = (start + offset) % num_clusters;
    const std::vector<UserId> majority_pool = ClusterPool(cohort, majority);
    if (static_cast<int32_t>(majority_pool.size()) < size - 1) continue;
    for (int32_t other = 1; other < num_clusters; ++other) {
      const int32_t minority = (majority + other) % num_clusters;
      const std::vector<UserId> minority_pool = ClusterPool(cohort, minority);
      if (minority_pool.empty()) continue;
      Group group;
      SampleInto(rng, majority_pool, size - 1, &group);
      SampleInto(rng, minority_pool, 1, &group);
      std::sort(group.begin(), group.end());
      return group;
    }
  }
  return MakeRandomGroup(size, seed);
}

Group Scenario::MakeColdStartGroup(int32_t size, uint64_t seed) const {
  const auto num_users = static_cast<int32_t>(cohort.cluster_of_user.size());
  const int32_t cold_count = std::min((size + 1) / 2, num_users);
  // The coldest raters: fewest ratings, ties toward the smaller id.
  std::vector<UserId> by_degree(static_cast<size_t>(num_users));
  for (int32_t u = 0; u < num_users; ++u) {
    by_degree[static_cast<size_t>(u)] = u;
  }
  std::sort(by_degree.begin(), by_degree.end(), [this](UserId a, UserId b) {
    const size_t da = ratings.ItemsRatedBy(a).size();
    const size_t db = ratings.ItemsRatedBy(b).size();
    if (da != db) return da < db;
    return a < b;
  });
  Group group(by_degree.begin(), by_degree.begin() + cold_count);

  // Seat the remainder in one cluster, skipping already-picked users.
  Rng rng(seed ^ 0xc2b2ae35u);
  const int32_t warm_count = size - cold_count;
  if (warm_count > 0) {
    const Group warm = MakeCohesiveGroup(
        std::min(warm_count + cold_count, num_users), seed ^ 0x85ebca6bu);
    for (const UserId u : warm) {
      if (static_cast<int32_t>(group.size()) >= size) break;
      if (std::find(group.begin(), group.end(), u) == group.end()) {
        group.push_back(u);
      }
    }
    // Cohesive overlap with the cold set can leave a shortfall; top up
    // uniformly.
    while (static_cast<int32_t>(group.size()) < std::min(size, num_users)) {
      const auto u =
          static_cast<UserId>(rng.UniformInt(0, num_users - 1));
      if (std::find(group.begin(), group.end(), u) == group.end()) {
        group.push_back(u);
      }
    }
  }
  std::sort(group.begin(), group.end());
  return group;
}

Group Scenario::MakeAdversarialGroup(int32_t size, uint64_t seed) const {
  if (size < 2) return MakeCohesiveGroup(size, seed);
  Rng rng(seed ^ 0x27d4eb2fu);
  const int32_t num_clusters = cohort.num_clusters;
  const int32_t half_a = (size + 1) / 2;
  const int32_t half_b = size - half_a;
  const auto start =
      static_cast<int32_t>(rng.UniformInt(0, std::max(0, num_clusters - 1)));
  for (int32_t offset = 0; offset < num_clusters; ++offset) {
    const int32_t a = (start + offset) % num_clusters;
    const std::vector<UserId> pool_a = ClusterPool(cohort, a);
    if (static_cast<int32_t>(pool_a.size()) < half_a) continue;
    // The "farthest" cluster stand-in: the most distant index in the ring,
    // then closer ones, so the two halves are maximally unrelated.
    for (int32_t dist = num_clusters / 2; dist >= 1; --dist) {
      const int32_t b = (a + dist) % num_clusters;
      if (b == a) continue;
      const std::vector<UserId> pool_b = ClusterPool(cohort, b);
      if (static_cast<int32_t>(pool_b.size()) < half_b) continue;
      Group group;
      SampleInto(rng, pool_a, half_a, &group);
      SampleInto(rng, pool_b, half_b, &group);
      std::sort(group.begin(), group.end());
      return group;
    }
  }
  return MakeRandomGroup(size, seed);
}

Group Scenario::MakeGroup(GroupShape shape, int32_t size,
                          uint64_t seed) const {
  switch (shape) {
    case GroupShape::kCohesive:
      return MakeCohesiveGroup(size, seed);
    case GroupShape::kRandom:
      return MakeRandomGroup(size, seed);
    case GroupShape::kSkewed:
      return MakeSkewedGroup(size, seed);
    case GroupShape::kColdStart:
      return MakeColdStartGroup(size, seed);
    case GroupShape::kAdversarial:
      return MakeAdversarialGroup(size, seed);
  }
  return MakeRandomGroup(size, seed);
}

const char* GroupShapeName(GroupShape shape) {
  switch (shape) {
    case GroupShape::kCohesive:
      return "cohesive";
    case GroupShape::kRandom:
      return "random";
    case GroupShape::kSkewed:
      return "skewed";
    case GroupShape::kColdStart:
      return "coldstart";
    case GroupShape::kAdversarial:
      return "adversarial";
  }
  return "unknown";
}

}  // namespace fairrec
