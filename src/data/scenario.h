#ifndef FAIRREC_DATA_SCENARIO_H_
#define FAIRREC_DATA_SCENARIO_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "data/cohort_generator.h"
#include "data/corpus_generator.h"
#include "data/rating_generator.h"
#include "ontology/snomed_generator.h"
#include "profiles/profile_store.h"
#include "ratings/rating_matrix.h"
#include "ratings/types.h"

namespace fairrec {

/// The group-composition shapes the fairness evaluation sweeps: who sits in
/// the group determines how hard fair selection is.
enum class GroupShape {
  /// One condition cluster (the natural caregiver workload).
  kCohesive,
  /// Uniform draw (heterogeneous needs).
  kRandom,
  /// A majority cluster plus a single minority-cluster member — the member
  /// a group-aggregate objective most easily sacrifices.
  kSkewed,
  /// Half the members are the corpus's coldest raters (fewest ratings), so
  /// their relevance estimates rest on the thinnest peer evidence.
  kColdStart,
  /// An even split across two different clusters: the adversarial taste
  /// split where every item serves at most half the group well.
  kAdversarial,
};

/// "cohesive", "random", "skewed", "coldstart", "adversarial".
const char* GroupShapeName(GroupShape shape);

/// One fully materialized synthetic world: ontology, cohort, corpus, and
/// ratings, all generated from a single master seed. The benchmarks, tests,
/// and examples all start here.
struct Scenario {
  SyntheticOntology ontology;
  Cohort cohort;
  Corpus corpus;
  RatingMatrix ratings;

  /// A group of `size` patients sharing one condition cluster (the natural
  /// caregiver workload: "my bronchitis patients"). Deterministic in `seed`.
  Group MakeCohesiveGroup(int32_t size, uint64_t seed) const;

  /// A group of `size` patients drawn uniformly (the stress case for
  /// fairness: heterogeneous needs). Deterministic in `seed`.
  Group MakeRandomGroup(int32_t size, uint64_t seed) const;

  /// A skewed group: size - 1 members from one cluster plus one member from
  /// a different cluster. Falls back to MakeRandomGroup when the cohort
  /// cannot seat the majority. Deterministic in `seed`.
  Group MakeSkewedGroup(int32_t size, uint64_t seed) const;

  /// A group where ceil(size / 2) members are the users with the fewest
  /// ratings (ties toward the smaller id) and the rest come from one
  /// cluster. Deterministic in `seed`.
  Group MakeColdStartGroup(int32_t size, uint64_t seed) const;

  /// An adversarial taste split: members drawn half from one cluster, half
  /// from another. Falls back to MakeRandomGroup when two clusters cannot
  /// seat the halves. Deterministic in `seed`.
  Group MakeAdversarialGroup(int32_t size, uint64_t seed) const;

  /// Shape-dispatched construction, the sweep entry point.
  Group MakeGroup(GroupShape shape, int32_t size, uint64_t seed) const;
};

/// Master configuration; sub-configs inherit the master seed (offset so the
/// streams are independent).
struct ScenarioConfig {
  int32_t num_patients = 400;
  int32_t num_documents = 200;
  int32_t num_clusters = 6;
  double rating_density = 0.08;
  uint64_t seed = 1234;

  SnomedGeneratorConfig MakeOntologyConfig() const;
  CohortConfig MakeCohortConfig() const;
  CorpusConfig MakeCorpusConfig() const;
  RatingGeneratorConfig MakeRatingConfig() const;
};

/// Builds the whole world. Deterministic in config.seed.
Result<Scenario> BuildScenario(const ScenarioConfig& config);

}  // namespace fairrec

#endif  // FAIRREC_DATA_SCENARIO_H_
