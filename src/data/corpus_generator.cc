#include "data/corpus_generator.h"

#include <algorithm>
#include <array>

#include "common/random.h"

namespace fairrec {

namespace {
constexpr std::array<std::string_view, 10> kTitleStems = {
    "Managing",          "Understanding",   "Living with",
    "Treatment options for", "Nutrition advice for", "Exercise guidance for",
    "Side effects of therapy for", "Caregiver guide to", "Early signs of",
    "Recovery after"};
}  // namespace

Result<Corpus> GenerateCorpus(const CorpusConfig& config) {
  if (config.num_documents <= 0) {
    return Status::InvalidArgument("num_documents must be positive");
  }
  if (config.num_topics <= 0) {
    return Status::InvalidArgument("num_topics must be positive");
  }
  Rng rng(config.seed);
  Corpus corpus;
  corpus.num_topics = config.num_topics;
  corpus.documents.reserve(static_cast<size_t>(config.num_documents));
  for (int32_t i = 0; i < config.num_documents; ++i) {
    Document doc;
    doc.item = i;
    doc.topic = i % config.num_topics;
    // Quality concentrated around 0.5 with occasional standouts: the mean of
    // two uniforms is triangular on [0, 1].
    doc.quality = (rng.NextDouble() + rng.NextDouble()) / 2.0;
    doc.title = std::string(kTitleStems[static_cast<size_t>(
                    rng.UniformInt(0, static_cast<int64_t>(kTitleStems.size()) - 1))]) +
                " condition " + std::to_string(doc.topic) + " (doc " +
                std::to_string(i) + ")";
    corpus.documents.push_back(std::move(doc));
  }
  return corpus;
}

}  // namespace fairrec
