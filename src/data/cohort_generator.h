#ifndef FAIRREC_DATA_COHORT_GENERATOR_H_
#define FAIRREC_DATA_COHORT_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "ontology/snomed_generator.h"
#include "profiles/profile_store.h"

namespace fairrec {

/// Knobs for the synthetic patient cohort.
struct CohortConfig {
  int32_t num_patients = 500;
  /// Problems sampled from the patient's primary condition cluster.
  int32_t min_primary_problems = 1;
  int32_t max_primary_problems = 3;
  /// Probability of one extra problem from a random other cluster
  /// (comorbidity noise).
  double comorbidity_prob = 0.25;
  /// Medications/procedures per patient (cluster-specific string pools).
  int32_t min_medications = 1;
  int32_t max_medications = 3;
  double procedure_prob = 0.4;
  int32_t min_age = 18;
  int32_t max_age = 90;
  uint64_t seed = 11;
};

/// The generated cohort: profiles plus the latent cluster assignment that
/// the rating generator aligns document topics with.
struct Cohort {
  ProfileStore profiles;
  /// cluster[u]: the primary condition cluster of user u.
  std::vector<int32_t> cluster_of_user;
  int32_t num_clusters = 0;
};

/// Generates patients whose problems come from `ontology`'s condition
/// clusters. This is the stand-in for the iManageCancer PHR population: the
/// cluster structure guarantees that meaningful peers exist for every user,
/// which is what the similarity measures of §V need to discriminate.
Result<Cohort> GenerateCohort(const CohortConfig& config,
                              const SyntheticOntology& ontology);

}  // namespace fairrec

#endif  // FAIRREC_DATA_COHORT_GENERATOR_H_
