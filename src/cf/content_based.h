#ifndef FAIRREC_CF_CONTENT_BASED_H_
#define FAIRREC_CF_CONTENT_BASED_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/result.h"
#include "ratings/rating_matrix.h"
#include "ratings/types.h"
#include "text/sparse_vector.h"

namespace fairrec {

/// Controls for ContentBasedEstimator.
struct ContentBasedOptions {
  /// Neighbours below this content similarity contribute nothing.
  double min_similarity = 0.05;
  /// Keep only the most similar rated items (0 = all qualifying).
  int32_t max_neighbors = 20;
};

/// The content-based alternative of §III-A ("the estimation of the rating of
/// an item is based on the ratings that the user has assigned to similar
/// items", the paper's [16]): item-item kNN over content feature vectors.
///
///   r̂(u, i) = sum_{j in I(u)} cos(f_i, f_j) * rating(u, j)
///             ------------------------------------------
///                      sum_{j in I(u)} cos(f_i, f_j)
///
/// Feature vectors typically come from TF-IDF over document text (see the
/// ablation bench, which embeds the synthetic corpus titles). Undefined when
/// the user rated nothing content-similar to i — the same "cannot recommend"
/// convention as the Eq. 1 estimator.
class ContentBasedEstimator {
 public:
  /// `item_features[i]` is the feature vector of item i; must cover every
  /// item of the matrix. The matrix must outlive this object.
  static Result<ContentBasedEstimator> Create(
      const RatingMatrix* matrix, std::vector<SparseVector> item_features,
      ContentBasedOptions options = {});

  /// r̂(u, i); nullopt when undefined (also for ids outside the grid or
  /// items the user already rated — nothing to predict there... callers
  /// asking anyway get the honest estimate).
  std::optional<double> Predict(UserId u, ItemId i) const;

  /// Predictions for many items, skipping undefined ones; preserves the
  /// order of `items`.
  std::vector<ScoredItem> PredictAll(UserId u, const std::vector<ItemId>& items) const;

  const ContentBasedOptions& options() const { return options_; }

 private:
  ContentBasedEstimator(const RatingMatrix* matrix,
                        std::vector<SparseVector> item_features,
                        ContentBasedOptions options);

  const RatingMatrix* matrix_;
  std::vector<SparseVector> item_features_;  // L2-normalized at construction
  ContentBasedOptions options_;
};

}  // namespace fairrec

#endif  // FAIRREC_CF_CONTENT_BASED_H_
