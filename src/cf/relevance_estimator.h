#ifndef FAIRREC_CF_RELEVANCE_ESTIMATOR_H_
#define FAIRREC_CF_RELEVANCE_ESTIMATOR_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "cf/peer_finder.h"
#include "ratings/rating_matrix.h"
#include "ratings/types.h"

namespace fairrec {

/// Implements Eq. 1:
///
///   relevance(u, i) = sum_{u' in P_u ∩ U(i)} simU(u,u') * rating(u',i)
///                     -----------------------------------------------
///   	               sum_{u' in P_u ∩ U(i)} simU(u,u')
///
/// The estimate is *undefined* when no peer rated the item (or when the
/// qualifying similarity mass is zero); such items cannot be recommended to
/// the user, mirroring the paper's implicit behaviour.
class RelevanceEstimator {
 public:
  /// `matrix` must outlive this object.
  explicit RelevanceEstimator(const RatingMatrix* matrix);

  /// Relevance of a single item; nullopt when undefined. `peers` must be the
  /// output of PeerFinder::FindPeers(u).
  std::optional<double> Estimate(const std::vector<Peer>& peers, ItemId item) const;

  /// Reusable dense accumulators for EstimateAll. Entries are valid only when
  /// their stamp equals the current generation, so a call invalidates the
  /// previous call's state by bumping `generation` instead of reallocating or
  /// clearing three max_item+1 vectors. Safe to share across estimators (the
  /// vectors grow monotonically to the largest item id seen).
  struct Scratch {
    std::vector<double> weighted_sum;
    std::vector<double> weight_total;
    /// Stamp of the last generation that marked the item as requested.
    std::vector<uint64_t> wanted;
    /// Stamp of the last generation that wrote the item's accumulators.
    std::vector<uint64_t> written;
    uint64_t generation = 0;
  };

  /// Relevance for each of `items`; undefined items are skipped. The output
  /// preserves the order of `items`. Uses a thread-local Scratch, so repeated
  /// group queries do not churn the allocator.
  std::vector<ScoredItem> EstimateAll(const std::vector<Peer>& peers,
                                      const std::vector<ItemId>& items) const;

  /// Same, accumulating through a caller-owned Scratch.
  std::vector<ScoredItem> EstimateAll(const std::vector<Peer>& peers,
                                      const std::vector<ItemId>& items,
                                      Scratch& scratch) const;

 private:
  const RatingMatrix* matrix_;
};

}  // namespace fairrec

#endif  // FAIRREC_CF_RELEVANCE_ESTIMATOR_H_
