#ifndef FAIRREC_CF_RELEVANCE_ESTIMATOR_H_
#define FAIRREC_CF_RELEVANCE_ESTIMATOR_H_

#include <optional>
#include <vector>

#include "cf/peer_finder.h"
#include "ratings/rating_matrix.h"
#include "ratings/types.h"

namespace fairrec {

/// Implements Eq. 1:
///
///   relevance(u, i) = sum_{u' in P_u ∩ U(i)} simU(u,u') * rating(u',i)
///                     -----------------------------------------------
///   	               sum_{u' in P_u ∩ U(i)} simU(u,u')
///
/// The estimate is *undefined* when no peer rated the item (or when the
/// qualifying similarity mass is zero); such items cannot be recommended to
/// the user, mirroring the paper's implicit behaviour.
class RelevanceEstimator {
 public:
  /// `matrix` must outlive this object.
  explicit RelevanceEstimator(const RatingMatrix* matrix);

  /// Relevance of a single item; nullopt when undefined. `peers` must be the
  /// output of PeerFinder::FindPeers(u).
  std::optional<double> Estimate(const std::vector<Peer>& peers, ItemId item) const;

  /// Relevance for each of `items`; undefined items are skipped. The output
  /// preserves the order of `items`.
  std::vector<ScoredItem> EstimateAll(const std::vector<Peer>& peers,
                                      const std::vector<ItemId>& items) const;

 private:
  const RatingMatrix* matrix_;
};

}  // namespace fairrec

#endif  // FAIRREC_CF_RELEVANCE_ESTIMATOR_H_
