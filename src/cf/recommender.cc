#include "cf/recommender.h"

#include <string>
#include <unordered_set>
#include <utility>

#include "cf/top_k.h"
#include "common/logging.h"

namespace fairrec {

Recommender::Recommender(const RatingMatrix* matrix,
                         const UserSimilarity* similarity,
                         RecommenderOptions options)
    : matrix_(matrix),
      peer_finder_(similarity, matrix->num_users(), options.peers),
      estimator_(matrix),
      options_(options) {
  FAIRREC_CHECK(matrix != nullptr);
}

Recommender Recommender::ForSimilarityScan(const RatingMatrix* matrix,
                                           const UserSimilarity* similarity,
                                           RecommenderOptions options) {
  return Recommender(matrix, similarity, options);
}

Recommender::Recommender(const RatingMatrix* matrix, const PeerProvider* peers,
                         RecommenderOptions options)
    : matrix_(matrix),
      peer_finder_(peers, options.peers),
      estimator_(matrix),
      options_(options) {
  FAIRREC_CHECK(matrix != nullptr);
  // Peers index straight into the rating matrix (Eq. 1 walks their rows), so
  // the two populations must agree.
  FAIRREC_CHECK(peers->num_users() == matrix->num_users());
}

Result<std::vector<ScoredItem>> Recommender::RecommendForUser(UserId u) const {
  if (!matrix_->IsValidUser(u)) {
    return Status::InvalidArgument("unknown user id: " + std::to_string(u));
  }
  const std::vector<Peer> peers = peer_finder_.FindPeers(u);
  const std::vector<ItemId> unrated = matrix_->ItemsUnratedBy(u);
  const std::vector<ScoredItem> scored = estimator_.EstimateAll(peers, unrated);
  return SelectTopK(scored, options_.top_k);
}

Result<std::vector<ScoredItem>> Recommender::RecommendForUser(
    UserId u, RelevanceEstimator::Scratch& scratch) const {
  if (!matrix_->IsValidUser(u)) {
    return Status::InvalidArgument("unknown user id: " + std::to_string(u));
  }
  const std::vector<Peer> peers = peer_finder_.FindPeers(u);
  const std::vector<ItemId> unrated = matrix_->ItemsUnratedBy(u);
  const std::vector<ScoredItem> scored =
      estimator_.EstimateAll(peers, unrated, scratch);
  return SelectTopK(scored, options_.top_k);
}

Result<std::vector<MemberRelevance>> Recommender::RelevanceForGroup(
    const Group& group) const {
  RelevanceEstimator::Scratch scratch;
  return RelevanceForGroupWith(group, peer_finder_, scratch);
}

Result<std::vector<MemberRelevance>> Recommender::RelevanceForGroup(
    const Group& group, RelevanceEstimator::Scratch& scratch) const {
  return RelevanceForGroupWith(group, peer_finder_, scratch);
}

Result<std::vector<MemberRelevance>> Recommender::RelevanceForGroup(
    const Group& group, const PeerProvider& peers) const {
  RelevanceEstimator::Scratch scratch;
  return RelevanceForGroup(group, peers, scratch);
}

Result<std::vector<MemberRelevance>> Recommender::RelevanceForGroup(
    const Group& group, const PeerProvider& peers,
    RelevanceEstimator::Scratch& scratch) const {
  FAIRREC_CHECK(peers.num_users() == matrix_->num_users());
  return RelevanceForGroupWith(group, PeerFinder(&peers, options_.peers),
                               scratch);
}

Result<std::vector<MemberRelevance>> Recommender::RelevanceForGroupWith(
    const Group& group, const PeerFinder& finder,
    RelevanceEstimator::Scratch& scratch) const {
  if (group.empty()) {
    return Status::InvalidArgument("group must not be empty");
  }
  std::unordered_set<UserId> seen;
  for (const UserId u : group) {
    if (!matrix_->IsValidUser(u)) {
      return Status::InvalidArgument("unknown user id in group: " +
                                     std::to_string(u));
    }
    if (!seen.insert(u).second) {
      return Status::InvalidArgument("duplicate user id in group: " +
                                     std::to_string(u));
    }
  }

  // Job-1 semantics: candidates are the items no member has rated.
  const std::vector<ItemId> candidates = matrix_->ItemsUnratedByAll(group);

  // One caregiver query = one scratch: every member's Eq. 1 accumulation
  // reuses the same dense buffers (the serving layer passes a per-worker
  // scratch so even consecutive queries share them).
  std::vector<MemberRelevance> out;
  out.reserve(group.size());
  for (const UserId u : group) {
    MemberRelevance member;
    member.user = u;
    // Job-1 semantics: potential peers are users outside the group.
    member.peers = finder.FindPeers(u, group);
    member.relevance = estimator_.EstimateAll(member.peers, candidates, scratch);
    member.top_k = SelectTopK(member.relevance, options_.top_k);
    out.push_back(std::move(member));
  }
  return out;
}

}  // namespace fairrec
