#ifndef FAIRREC_CF_TOP_K_H_
#define FAIRREC_CF_TOP_K_H_

#include <vector>

#include "ratings/types.h"

namespace fairrec {

/// Selects the k highest-scoring items with a deterministic total order:
/// descending score, ties broken by ascending item id. Uses a bounded heap,
/// O(n log k); returns fewer than k when the input is smaller.
///
/// This is the centralized top-k step of §IV ("trivial when k elements are
/// small enough to fit in memory"); the distributed variant lives in
/// mapreduce/topk_mapreduce.h.
std::vector<ScoredItem> SelectTopK(const std::vector<ScoredItem>& scored, int32_t k);

/// Comparison used everywhere a "better" item must be chosen: true when `a`
/// precedes `b` (higher score first; ascending id on ties).
bool ScoredItemBetter(const ScoredItem& a, const ScoredItem& b);

}  // namespace fairrec

#endif  // FAIRREC_CF_TOP_K_H_
