#include "cf/peer_finder.h"

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/logging.h"

namespace fairrec {

namespace {

/// Reusable exclusion mark-set: excluded(v) iff stamp[v] == epoch. Bumping
/// the epoch invalidates every mark in O(1), so repeated FindPeers calls
/// reuse the allocation instead of building a fresh bitmap. One per calling
/// thread, shared across PeerFinder instances (it grows to the largest user
/// population seen on the thread).
struct ExclusionScratch {
  std::vector<uint64_t> stamp;
  uint64_t epoch = 0;
};

ExclusionScratch& StampExclusions(int32_t num_users, const Group& exclude) {
  thread_local ExclusionScratch scratch;
  if (scratch.stamp.size() < static_cast<size_t>(num_users)) {
    scratch.stamp.resize(static_cast<size_t>(num_users), 0);
  }
  ++scratch.epoch;
  for (const UserId e : exclude) {
    if (e >= 0 && e < num_users) {
      scratch.stamp[static_cast<size_t>(e)] = scratch.epoch;
    }
  }
  return scratch;
}

}  // namespace

PeerFinder::PeerFinder(const UserSimilarity* similarity, int32_t num_users,
                       PeerFinderOptions options)
    : similarity_(similarity), num_users_(num_users), options_(options) {
  FAIRREC_CHECK(similarity != nullptr);
}

PeerFinder::PeerFinder(const PeerProvider* provider, PeerFinderOptions options)
    : provider_(provider),
      num_users_(provider != nullptr ? provider->num_users() : 0),
      options_(options) {
  FAIRREC_CHECK(provider != nullptr);
}

std::vector<Peer> PeerFinder::FindPeers(UserId u, const Group& exclude) const {
  const ExclusionScratch& scratch = StampExclusions(num_users_, exclude);

  if (provider_ != nullptr) {
    // Sparse mode: the stored list is already thresholded at the provider's
    // build delta and sorted by BetterPeer, so entries with sim >= delta form
    // a prefix and the first max_peers survivors after exclusion are exactly
    // the dense path's top-k.
    const std::span<const Peer> stored = provider_->PeersOf(u);
    const size_t cap = options_.max_peers > 0
                           ? static_cast<size_t>(options_.max_peers)
                           : stored.size();
    std::vector<Peer> peers;
    peers.reserve(std::min(cap, stored.size()));
    for (const Peer& p : stored) {
      if (p.similarity < options_.delta) break;
      if (p.user == u ||
          scratch.stamp[static_cast<size_t>(p.user)] == scratch.epoch) {
        continue;
      }
      peers.push_back(p);
      if (peers.size() == cap) break;
    }
    return peers;
  }

  std::vector<Peer> peers;
  for (UserId v = 0; v < num_users_; ++v) {
    if (v == u || scratch.stamp[static_cast<size_t>(v)] == scratch.epoch) {
      continue;
    }
    const double sim = similarity_->Compute(u, v);
    if (sim >= options_.delta) peers.push_back({v, sim});
  }

  const size_t cap = static_cast<size_t>(options_.max_peers);
  if (options_.max_peers > 0 && peers.size() > cap) {
    // Selecting the top cap then sorting only that prefix is
    // O(n + cap log cap) vs O(n log n) for a full sort. The comparator is a
    // total order (ties broken by id), so the result is identical to
    // sort-then-truncate.
    std::nth_element(peers.begin(), peers.begin() + static_cast<ptrdiff_t>(cap),
                     peers.end(), BetterPeer);
    peers.resize(cap);
  }
  std::sort(peers.begin(), peers.end(), BetterPeer);
  return peers;
}

}  // namespace fairrec
