#include "cf/peer_finder.h"

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/logging.h"

namespace fairrec {

namespace {

/// Reusable exclusion mark-set: excluded(v) iff stamp[v] == epoch. Bumping
/// the epoch invalidates every mark in O(1), so repeated FindPeers calls
/// reuse the allocation instead of building a fresh bitmap. One per calling
/// thread, shared across PeerFinder instances (it grows to the largest user
/// population seen on the thread).
struct ExclusionScratch {
  std::vector<uint64_t> stamp;
  uint64_t epoch = 0;
};

bool DescendingSimilarity(const Peer& a, const Peer& b) {
  if (a.similarity != b.similarity) return a.similarity > b.similarity;
  return a.user < b.user;
}

}  // namespace

PeerFinder::PeerFinder(const UserSimilarity* similarity, int32_t num_users,
                       PeerFinderOptions options)
    : similarity_(similarity), num_users_(num_users), options_(options) {
  FAIRREC_CHECK(similarity != nullptr);
}

std::vector<Peer> PeerFinder::FindPeers(UserId u, const Group& exclude) const {
  thread_local ExclusionScratch scratch;
  if (scratch.stamp.size() < static_cast<size_t>(num_users_)) {
    scratch.stamp.resize(static_cast<size_t>(num_users_), 0);
  }
  ++scratch.epoch;
  for (const UserId e : exclude) {
    if (e >= 0 && e < num_users_) {
      scratch.stamp[static_cast<size_t>(e)] = scratch.epoch;
    }
  }

  std::vector<Peer> peers;
  for (UserId v = 0; v < num_users_; ++v) {
    if (v == u || scratch.stamp[static_cast<size_t>(v)] == scratch.epoch) {
      continue;
    }
    const double sim = similarity_->Compute(u, v);
    if (sim >= options_.delta) peers.push_back({v, sim});
  }

  const size_t cap = static_cast<size_t>(options_.max_peers);
  if (options_.max_peers > 0 && peers.size() > cap) {
    // Selecting the top cap then sorting only that prefix is
    // O(n + cap log cap) vs O(n log n) for a full sort. The comparator is a
    // total order (ties broken by id), so the result is identical to
    // sort-then-truncate.
    std::nth_element(peers.begin(), peers.begin() + static_cast<ptrdiff_t>(cap),
                     peers.end(), DescendingSimilarity);
    peers.resize(cap);
  }
  std::sort(peers.begin(), peers.end(), DescendingSimilarity);
  return peers;
}

}  // namespace fairrec
