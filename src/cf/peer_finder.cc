#include "cf/peer_finder.h"

#include <algorithm>

#include "common/logging.h"

namespace fairrec {

PeerFinder::PeerFinder(const UserSimilarity* similarity, int32_t num_users,
                       PeerFinderOptions options)
    : similarity_(similarity), num_users_(num_users), options_(options) {
  FAIRREC_CHECK(similarity != nullptr);
}

std::vector<Peer> PeerFinder::FindPeers(UserId u, const Group& exclude) const {
  std::vector<bool> excluded(static_cast<size_t>(num_users_), false);
  for (const UserId e : exclude) {
    if (e >= 0 && e < num_users_) excluded[static_cast<size_t>(e)] = true;
  }
  std::vector<Peer> peers;
  for (UserId v = 0; v < num_users_; ++v) {
    if (v == u || excluded[static_cast<size_t>(v)]) continue;
    const double sim = similarity_->Compute(u, v);
    if (sim >= options_.delta) peers.push_back({v, sim});
  }
  std::sort(peers.begin(), peers.end(), [](const Peer& a, const Peer& b) {
    if (a.similarity != b.similarity) return a.similarity > b.similarity;
    return a.user < b.user;
  });
  if (options_.max_peers > 0 &&
      peers.size() > static_cast<size_t>(options_.max_peers)) {
    peers.resize(static_cast<size_t>(options_.max_peers));
  }
  return peers;
}

}  // namespace fairrec
