#include "cf/content_based.h"

#include <algorithm>
#include <string>

#include "common/logging.h"

namespace fairrec {

Result<ContentBasedEstimator> ContentBasedEstimator::Create(
    const RatingMatrix* matrix, std::vector<SparseVector> item_features,
    ContentBasedOptions options) {
  if (matrix == nullptr) {
    return Status::InvalidArgument("matrix must not be null");
  }
  if (static_cast<int32_t>(item_features.size()) < matrix->num_items()) {
    return Status::InvalidArgument(
        "item_features must cover every item: have " +
        std::to_string(item_features.size()) + ", need " +
        std::to_string(matrix->num_items()));
  }
  if (options.max_neighbors < 0) {
    return Status::InvalidArgument("max_neighbors must be >= 0");
  }
  return ContentBasedEstimator(matrix, std::move(item_features), options);
}

ContentBasedEstimator::ContentBasedEstimator(
    const RatingMatrix* matrix, std::vector<SparseVector> item_features,
    ContentBasedOptions options)
    : matrix_(matrix),
      item_features_(std::move(item_features)),
      options_(options) {
  // Normalizing once turns every cosine into a plain dot product.
  for (SparseVector& v : item_features_) v.Normalize();
}

std::optional<double> ContentBasedEstimator::Predict(UserId u, ItemId i) const {
  if (!matrix_->IsValidUser(u) || !matrix_->IsValidItem(i)) return std::nullopt;
  const SparseVector& target = item_features_[static_cast<size_t>(i)];
  if (target.empty()) return std::nullopt;

  // Score every rated item by content similarity to the target.
  std::vector<std::pair<double, Rating>> neighbors;  // (similarity, rating)
  for (const ItemRating& entry : matrix_->ItemsRatedBy(u)) {
    if (entry.item == i) continue;
    const double sim = target.Dot(item_features_[static_cast<size_t>(entry.item)]);
    if (sim >= options_.min_similarity) neighbors.emplace_back(sim, entry.value);
  }
  if (neighbors.empty()) return std::nullopt;
  if (options_.max_neighbors > 0 &&
      neighbors.size() > static_cast<size_t>(options_.max_neighbors)) {
    std::partial_sort(neighbors.begin(),
                      neighbors.begin() + options_.max_neighbors,
                      neighbors.end(), [](const auto& a, const auto& b) {
                        return a.first > b.first;
                      });
    neighbors.resize(static_cast<size_t>(options_.max_neighbors));
  }
  double weighted = 0.0;
  double total = 0.0;
  for (const auto& [sim, rating] : neighbors) {
    weighted += sim * rating;
    total += sim;
  }
  if (total <= 0.0) return std::nullopt;
  return weighted / total;
}

std::vector<ScoredItem> ContentBasedEstimator::PredictAll(
    UserId u, const std::vector<ItemId>& items) const {
  std::vector<ScoredItem> out;
  out.reserve(items.size());
  for (const ItemId i : items) {
    const std::optional<double> prediction = Predict(u, i);
    if (prediction.has_value()) out.push_back({i, *prediction});
  }
  return out;
}

}  // namespace fairrec
