#include "cf/relevance_estimator.h"

#include <algorithm>

#include "common/logging.h"

namespace fairrec {

RelevanceEstimator::RelevanceEstimator(const RatingMatrix* matrix)
    : matrix_(matrix) {
  FAIRREC_CHECK(matrix != nullptr);
}

std::optional<double> RelevanceEstimator::Estimate(const std::vector<Peer>& peers,
                                                   ItemId item) const {
  if (!matrix_->IsValidItem(item)) return std::nullopt;
  double weighted_sum = 0.0;
  double weight_total = 0.0;
  for (const Peer& peer : peers) {
    const std::optional<Rating> rating = matrix_->GetRating(peer.user, item);
    if (!rating.has_value()) continue;
    weighted_sum += peer.similarity * *rating;
    weight_total += peer.similarity;
  }
  if (weight_total <= 0.0) return std::nullopt;
  return weighted_sum / weight_total;
}

std::vector<ScoredItem> RelevanceEstimator::EstimateAll(
    const std::vector<Peer>& peers, const std::vector<ItemId>& items) const {
  thread_local Scratch scratch;
  return EstimateAll(peers, items, scratch);
}

std::vector<ScoredItem> RelevanceEstimator::EstimateAll(
    const std::vector<Peer>& peers, const std::vector<ItemId>& items,
    Scratch& scratch) const {
  // For more than a handful of items it is cheaper to scan each peer's row
  // once than to binary-search per (peer, item) pair.
  std::vector<ScoredItem> out;
  if (items.empty() || peers.empty()) return out;

  const ItemId max_item = *std::max_element(items.begin(), items.end());
  const size_t size = static_cast<size_t>(max_item) + 1;
  if (scratch.wanted.size() < size) {
    scratch.wanted.resize(size, 0);
    scratch.written.resize(size, 0);
    scratch.weighted_sum.resize(size, 0.0);
    scratch.weight_total.resize(size, 0.0);
  }
  const uint64_t gen = ++scratch.generation;
  for (const ItemId i : items) {
    if (i >= 0) scratch.wanted[static_cast<size_t>(i)] = gen;
  }
  for (const Peer& peer : peers) {
    for (const ItemRating& entry : matrix_->ItemsRatedBy(peer.user)) {
      if (entry.item > max_item) continue;
      const size_t slot = static_cast<size_t>(entry.item);
      if (scratch.wanted[slot] != gen) continue;
      if (scratch.written[slot] != gen) {
        scratch.written[slot] = gen;
        scratch.weighted_sum[slot] = 0.0;
        scratch.weight_total[slot] = 0.0;
      }
      scratch.weighted_sum[slot] += peer.similarity * entry.value;
      scratch.weight_total[slot] += peer.similarity;
    }
  }
  out.reserve(items.size());
  for (const ItemId i : items) {
    if (i < 0) continue;
    const size_t slot = static_cast<size_t>(i);
    if (scratch.written[slot] != gen) continue;
    const double total = scratch.weight_total[slot];
    if (total <= 0.0) continue;
    out.push_back({i, scratch.weighted_sum[slot] / total});
  }
  return out;
}

}  // namespace fairrec
