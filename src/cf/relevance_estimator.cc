#include "cf/relevance_estimator.h"

#include <algorithm>

#include "common/logging.h"

namespace fairrec {

RelevanceEstimator::RelevanceEstimator(const RatingMatrix* matrix)
    : matrix_(matrix) {
  FAIRREC_CHECK(matrix != nullptr);
}

std::optional<double> RelevanceEstimator::Estimate(const std::vector<Peer>& peers,
                                                   ItemId item) const {
  if (!matrix_->IsValidItem(item)) return std::nullopt;
  double weighted_sum = 0.0;
  double weight_total = 0.0;
  for (const Peer& peer : peers) {
    const std::optional<Rating> rating = matrix_->GetRating(peer.user, item);
    if (!rating.has_value()) continue;
    weighted_sum += peer.similarity * *rating;
    weight_total += peer.similarity;
  }
  if (weight_total <= 0.0) return std::nullopt;
  return weighted_sum / weight_total;
}

std::vector<ScoredItem> RelevanceEstimator::EstimateAll(
    const std::vector<Peer>& peers, const std::vector<ItemId>& items) const {
  // For more than a handful of items it is cheaper to scan each peer's row
  // once than to binary-search per (peer, item) pair.
  std::vector<ScoredItem> out;
  if (items.empty() || peers.empty()) return out;

  const ItemId max_item =
      *std::max_element(items.begin(), items.end());
  std::vector<double> weighted_sum(static_cast<size_t>(max_item) + 1, 0.0);
  std::vector<double> weight_total(static_cast<size_t>(max_item) + 1, 0.0);
  std::vector<bool> wanted(static_cast<size_t>(max_item) + 1, false);
  for (const ItemId i : items) {
    if (i >= 0) wanted[static_cast<size_t>(i)] = true;
  }
  for (const Peer& peer : peers) {
    for (const ItemRating& entry : matrix_->ItemsRatedBy(peer.user)) {
      if (entry.item > max_item || !wanted[static_cast<size_t>(entry.item)]) {
        continue;
      }
      weighted_sum[static_cast<size_t>(entry.item)] +=
          peer.similarity * entry.value;
      weight_total[static_cast<size_t>(entry.item)] += peer.similarity;
    }
  }
  out.reserve(items.size());
  for (const ItemId i : items) {
    if (i < 0) continue;
    const double total = weight_total[static_cast<size_t>(i)];
    if (total <= 0.0) continue;
    out.push_back({i, weighted_sum[static_cast<size_t>(i)] / total});
  }
  return out;
}

}  // namespace fairrec
