#ifndef FAIRREC_CF_PEER_FINDER_H_
#define FAIRREC_CF_PEER_FINDER_H_

#include <vector>

#include "ratings/types.h"
#include "sim/user_similarity.h"

namespace fairrec {

/// A peer of a user together with the similarity that qualified it.
struct Peer {
  UserId user = kInvalidUserId;
  double similarity = 0.0;

  friend bool operator==(const Peer&, const Peer&) = default;
};

/// Controls for PeerFinder.
struct PeerFinderOptions {
  /// The delta of Definition 1: users with simU >= delta become peers.
  double delta = 0.1;
  /// Optional cap: keep only the top max_peers most similar qualifying
  /// peers (0 = unlimited, the paper's definition). A safety valve for very
  /// dense similarity distributions.
  int32_t max_peers = 0;
};

/// Implements Definition 1: P_u = { u' != u : simU(u, u') >= delta }.
class PeerFinder {
 public:
  /// `similarity` must outlive this object.
  PeerFinder(const UserSimilarity* similarity, int32_t num_users,
             PeerFinderOptions options = {});

  /// Peers of `u`, sorted by descending similarity (ties: ascending id).
  /// Users listed in `exclude` are never returned — the MapReduce flow of
  /// §IV computes similarities between a member and users *outside* the
  /// group, so group recommendation passes the group here.
  std::vector<Peer> FindPeers(UserId u, const Group& exclude = {}) const;

  const PeerFinderOptions& options() const { return options_; }
  int32_t num_users() const { return num_users_; }

 private:
  const UserSimilarity* similarity_;
  int32_t num_users_;
  PeerFinderOptions options_;
};

}  // namespace fairrec

#endif  // FAIRREC_CF_PEER_FINDER_H_
