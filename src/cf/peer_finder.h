#ifndef FAIRREC_CF_PEER_FINDER_H_
#define FAIRREC_CF_PEER_FINDER_H_

#include <vector>

#include "ratings/types.h"
#include "sim/peer_provider.h"
#include "sim/user_similarity.h"

namespace fairrec {

/// Controls for PeerFinder.
struct PeerFinderOptions {
  /// The delta of Definition 1: users with simU >= delta become peers.
  double delta = 0.1;
  /// Optional cap: keep only the top max_peers most similar qualifying
  /// peers (0 = unlimited, the paper's definition). A safety valve for very
  /// dense similarity distributions.
  int32_t max_peers = 0;
};

/// Implements Definition 1: P_u = { u' != u : simU(u, u') >= delta }.
///
/// Two modes share one query surface:
///
///   * sparse — constructed over a PeerProvider (an engine-built PeerIndex
///     or a DensePeerAdapter): FindPeers is a thin filter over the stored
///     PeersOf(u) list (exclusion + max_peers), O(|peers| + |exclude|);
///   * scan — constructed over a raw UserSimilarity: the original O(U)
///     similarity scan per call, kept for ad-hoc measures nobody indexed.
class PeerFinder {
 public:
  /// Scan mode. `similarity` must outlive this object.
  PeerFinder(const UserSimilarity* similarity, int32_t num_users,
             PeerFinderOptions options = {});

  /// Sparse mode. `provider` must outlive this object. options.delta may be
  /// *stricter* than the provider's build threshold (stored entries below it
  /// are dropped at query time); it cannot be looser, since pairs discarded
  /// at build time cannot reappear. Likewise max_peers is applied after
  /// exclusion, so providers serving group queries should be built with
  /// headroom (build cap >= max_peers + largest exclusion list) or
  /// unbounded for exact Def. 1 semantics.
  explicit PeerFinder(const PeerProvider* provider,
                      PeerFinderOptions options = {});

  /// Peers of `u`, sorted by descending similarity (ties: ascending id).
  /// Users listed in `exclude` are never returned — the MapReduce flow of
  /// §IV computes similarities between a member and users *outside* the
  /// group, so group recommendation passes the group here.
  std::vector<Peer> FindPeers(UserId u, const Group& exclude = {}) const;

  const PeerFinderOptions& options() const { return options_; }
  int32_t num_users() const { return num_users_; }

 private:
  const UserSimilarity* similarity_ = nullptr;  // scan mode
  const PeerProvider* provider_ = nullptr;      // sparse mode
  int32_t num_users_ = 0;
  PeerFinderOptions options_;
};

}  // namespace fairrec

#endif  // FAIRREC_CF_PEER_FINDER_H_
