#include "cf/top_k.h"

#include <algorithm>
#include <queue>

namespace fairrec {

bool ScoredItemBetter(const ScoredItem& a, const ScoredItem& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.item < b.item;
}

std::vector<ScoredItem> SelectTopK(const std::vector<ScoredItem>& scored,
                                   int32_t k) {
  if (k <= 0) return {};
  // Min-heap on "better": the root is the worst of the current top-k.
  auto worse = [](const ScoredItem& a, const ScoredItem& b) {
    return ScoredItemBetter(a, b);
  };
  std::priority_queue<ScoredItem, std::vector<ScoredItem>, decltype(worse)> heap(
      worse);
  for (const ScoredItem& s : scored) {
    if (heap.size() < static_cast<size_t>(k)) {
      heap.push(s);
    } else if (ScoredItemBetter(s, heap.top())) {
      heap.pop();
      heap.push(s);
    }
  }
  std::vector<ScoredItem> out(heap.size());
  for (size_t slot = heap.size(); slot-- > 0;) {
    out[slot] = heap.top();
    heap.pop();
  }
  return out;
}

}  // namespace fairrec
