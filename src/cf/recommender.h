#ifndef FAIRREC_CF_RECOMMENDER_H_
#define FAIRREC_CF_RECOMMENDER_H_

#include <vector>

#include "cf/peer_finder.h"
#include "cf/relevance_estimator.h"
#include "common/result.h"
#include "ratings/rating_matrix.h"
#include "ratings/types.h"
#include "sim/peer_provider.h"
#include "sim/user_similarity.h"

namespace fairrec {

/// Controls for Recommender.
struct RecommenderOptions {
  PeerFinderOptions peers;
  /// Size of the single-user recommendation list A_u (§III-A).
  int32_t top_k = 10;
};

/// Relevance estimates of one group member for the shared candidate items.
struct MemberRelevance {
  UserId user = kInvalidUserId;
  /// Peers used for this member (Def. 1, excluding the group).
  std::vector<Peer> peers;
  /// relevance(u, i) for each candidate item with a defined estimate,
  /// ordered by ascending item id.
  std::vector<ScoredItem> relevance;
  /// The member's A_u: top-k of `relevance`.
  std::vector<ScoredItem> top_k;
};

/// Single-user collaborative-filtering recommender (§III-A): peers via
/// Def. 1, relevance via Eq. 1, A_u via top-k.
///
/// Construction has exactly one primary path — the sparse serving
/// constructor over a prebuilt PeerProvider, which is what a
/// serve::ServingSnapshot hands out — plus one explicitly-named factory,
/// ForSimilarityScan, for evaluation code that wants the original O(U)
/// similarity sweep over a measure nobody indexed.
///
/// Queries are const and safe to run concurrently from many threads against
/// one instance (the underlying matrix and peer graph are immutable); the
/// Scratch-taking overloads let a serving worker reuse one set of dense
/// accumulators across requests instead of leaning on the estimator's
/// thread-local fallback.
class Recommender {
 public:
  /// Sparse mode — the serving path that never touches a dense similarity
  /// structure: peers come from a prebuilt peer graph (an engine-built
  /// PeerIndex or a DensePeerAdapter). `peers->num_users()` must match the
  /// matrix. `matrix` and `peers` must outlive this object.
  Recommender(const RatingMatrix* matrix, const PeerProvider* peers,
              RecommenderOptions options = {});

  /// Scan mode, for eval code and ad-hoc measures: peers found by an O(U)
  /// similarity sweep per query. Deliberately a named factory, not a
  /// constructor — serving code should never pick it up by overload
  /// accident. `matrix` and `similarity` must outlive the result.
  static Recommender ForSimilarityScan(const RatingMatrix* matrix,
                                       const UserSimilarity* similarity,
                                       RecommenderOptions options = {});

  /// A_u over the items `u` has not rated. Returns InvalidArgument for an
  /// unknown user.
  Result<std::vector<ScoredItem>> RecommendForUser(UserId u) const;

  /// Same, accumulating Eq. 1 through a caller-owned scratch (one per
  /// serving worker).
  Result<std::vector<ScoredItem>> RecommendForUser(
      UserId u, RelevanceEstimator::Scratch& scratch) const;

  /// Per-member relevance over the *group candidate set* (items unrated by
  /// every member — the output of the paper's Job 1), with peers drawn from
  /// outside the group (§IV). This is the input both to the group
  /// aggregation (Def. 2) and to Algorithm 1's A_u lists. One relevance
  /// scratch is shared across all members of the query.
  Result<std::vector<MemberRelevance>> RelevanceForGroup(const Group& group) const;

  /// Same, through a caller-owned scratch.
  Result<std::vector<MemberRelevance>> RelevanceForGroup(
      const Group& group, RelevanceEstimator::Scratch& scratch) const;

  /// Same flow, but peers come from `peers` instead of the recommender's own
  /// finder — e.g. the PeerIndex the MapReduce Job 2 emitted for exactly this
  /// group. Group members are still excluded from each other's peer sets and
  /// this recommender's PeerFinderOptions still apply. Delegates to the one
  /// shared query path.
  Result<std::vector<MemberRelevance>> RelevanceForGroup(
      const Group& group, const PeerProvider& peers) const;

  /// Per-query provider and caller-owned scratch together.
  Result<std::vector<MemberRelevance>> RelevanceForGroup(
      const Group& group, const PeerProvider& peers,
      RelevanceEstimator::Scratch& scratch) const;

  const RecommenderOptions& options() const { return options_; }
  const RatingMatrix& matrix() const { return *matrix_; }

 private:
  /// Scan-mode guts behind ForSimilarityScan.
  Recommender(const RatingMatrix* matrix, const UserSimilarity* similarity,
              RecommenderOptions options);

  Result<std::vector<MemberRelevance>> RelevanceForGroupWith(
      const Group& group, const PeerFinder& finder,
      RelevanceEstimator::Scratch& scratch) const;

  const RatingMatrix* matrix_;
  PeerFinder peer_finder_;
  RelevanceEstimator estimator_;
  RecommenderOptions options_;
};

}  // namespace fairrec

#endif  // FAIRREC_CF_RECOMMENDER_H_
