#ifndef FAIRREC_CF_RECOMMENDER_H_
#define FAIRREC_CF_RECOMMENDER_H_

#include <vector>

#include "cf/peer_finder.h"
#include "cf/relevance_estimator.h"
#include "common/result.h"
#include "ratings/rating_matrix.h"
#include "ratings/types.h"
#include "sim/peer_provider.h"
#include "sim/user_similarity.h"

namespace fairrec {

/// Controls for Recommender.
struct RecommenderOptions {
  PeerFinderOptions peers;
  /// Size of the single-user recommendation list A_u (§III-A).
  int32_t top_k = 10;
};

/// Relevance estimates of one group member for the shared candidate items.
struct MemberRelevance {
  UserId user = kInvalidUserId;
  /// Peers used for this member (Def. 1, excluding the group).
  std::vector<Peer> peers;
  /// relevance(u, i) for each candidate item with a defined estimate,
  /// ordered by ascending item id.
  std::vector<ScoredItem> relevance;
  /// The member's A_u: top-k of `relevance`.
  std::vector<ScoredItem> top_k;
};

/// Single-user collaborative-filtering recommender (§III-A): peers via
/// Def. 1, relevance via Eq. 1, A_u via top-k.
class Recommender {
 public:
  /// Scan mode: peers found by an O(U) similarity sweep per query.
  /// `matrix` and `similarity` must outlive this object.
  Recommender(const RatingMatrix* matrix, const UserSimilarity* similarity,
              RecommenderOptions options = {});

  /// Sparse mode: peers served from a prebuilt peer graph (an engine-built
  /// PeerIndex or a DensePeerAdapter) — the serving path that never touches
  /// a dense similarity structure. `peers->num_users()` must match the
  /// matrix. `matrix` and `peers` must outlive this object.
  Recommender(const RatingMatrix* matrix, const PeerProvider* peers,
              RecommenderOptions options = {});

  /// A_u over the items `u` has not rated. Returns InvalidArgument for an
  /// unknown user.
  Result<std::vector<ScoredItem>> RecommendForUser(UserId u) const;

  /// Per-member relevance over the *group candidate set* (items unrated by
  /// every member — the output of the paper's Job 1), with peers drawn from
  /// outside the group (§IV). This is the input both to the group
  /// aggregation (Def. 2) and to Algorithm 1's A_u lists. One relevance
  /// scratch is shared across all members of the query.
  Result<std::vector<MemberRelevance>> RelevanceForGroup(const Group& group) const;

  /// Same flow, but peers come from `peers` instead of the recommender's own
  /// finder — e.g. the PeerIndex the MapReduce Job 2 emitted for exactly this
  /// group. Group members are still excluded from each other's peer sets and
  /// this recommender's PeerFinderOptions still apply.
  Result<std::vector<MemberRelevance>> RelevanceForGroup(
      const Group& group, const PeerProvider& peers) const;

  const RecommenderOptions& options() const { return options_; }
  const RatingMatrix& matrix() const { return *matrix_; }

 private:
  Result<std::vector<MemberRelevance>> RelevanceForGroupWith(
      const Group& group, const PeerFinder& finder) const;

  const RatingMatrix* matrix_;
  PeerFinder peer_finder_;
  RelevanceEstimator estimator_;
  RecommenderOptions options_;
};

}  // namespace fairrec

#endif  // FAIRREC_CF_RECOMMENDER_H_
