#ifndef FAIRREC_COMMON_RUN_FILE_H_
#define FAIRREC_COMMON_RUN_FILE_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"

namespace fairrec {

/// Streaming CRC-framed chunk files — the spill format of the external-sort
/// shuffle (sim/moment_shuffle.h).
///
/// WriteBlobFileAtomic buffers its whole payload before the rename, which is
/// exactly wrong for a sorted run that exists *because* the payload does not
/// fit in memory. A run file is instead an append-only sequence of
/// independently framed chunks (u64 length + masked CRC32C + bytes, the
/// BlobWriter::Framed layout), written and read through a bounded buffer: at
/// no point does either side hold more than one chunk. Runs are temporary
/// files — they live for one shuffle and are deleted after the merge — so
/// they trade the atomic-rename ceremony for streaming, but keep the CRC
/// framing: a torn or bit-flipped run surfaces as DataLoss at merge time,
/// never as silently wrong moments.
class RunFileWriter {
 public:
  /// Creates (truncates) `path` for writing.
  static Result<RunFileWriter> Create(const std::string& path);

  RunFileWriter(RunFileWriter&&) noexcept = default;
  RunFileWriter& operator=(RunFileWriter&&) noexcept = default;

  /// Appends one framed chunk. The payload is the caller's record block;
  /// framing (length + masked CRC) is added here.
  Status AppendChunk(std::string_view payload);

  /// Flushes and closes the file. Idempotent; the destructor closes without
  /// error reporting, so finished runs should Close explicitly.
  Status Close();

  const std::string& path() const { return path_; }
  /// Framed bytes written so far (payloads + chunk headers).
  uint64_t bytes_written() const { return bytes_written_; }

 private:
  struct FileCloser {
    void operator()(std::FILE* f) const {
      if (f != nullptr) std::fclose(f);
    }
  };

  RunFileWriter(std::string path, std::FILE* file)
      : path_(std::move(path)), file_(file) {}

  std::string path_;
  std::unique_ptr<std::FILE, FileCloser> file_;
  std::string frame_;  // reused framing scratch
  uint64_t bytes_written_ = 0;
};

/// Sequential reader over a RunFileWriter file: one framed chunk at a time,
/// CRC-verified. DataLoss on truncation or checksum mismatch.
class RunFileReader {
 public:
  static Result<RunFileReader> Open(const std::string& path);

  RunFileReader(RunFileReader&&) noexcept = default;
  RunFileReader& operator=(RunFileReader&&) noexcept = default;

  /// Reads the next chunk's payload into `payload` (replacing its
  /// contents). Sets *eof = true (payload untouched) at a clean end of
  /// file; a partial chunk header or body is DataLoss, not EOF.
  Status NextChunk(std::string* payload, bool* eof);

  const std::string& path() const { return path_; }

 private:
  struct FileCloser {
    void operator()(std::FILE* f) const {
      if (f != nullptr) std::fclose(f);
    }
  };

  RunFileReader(std::string path, std::FILE* file)
      : path_(std::move(path)), file_(file) {}

  std::string path_;
  std::unique_ptr<std::FILE, FileCloser> file_;
};

}  // namespace fairrec

#endif  // FAIRREC_COMMON_RUN_FILE_H_
