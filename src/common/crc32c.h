#ifndef FAIRREC_COMMON_CRC32C_H_
#define FAIRREC_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace fairrec {

/// CRC-32C (Castagnoli, polynomial 0x1EDC6F41 reflected) — the checksum
/// every durable artifact in the library frames its bytes with (see
/// common/blob_io.h and ratings/delta_journal.h). Chosen over plain CRC-32
/// for its strictly better Hamming distance at the blob sizes the moment
/// store and checkpoint container produce; implemented as a portable
/// slice-by-8 table walk (no SSE4.2 dependency — the durability layer must
/// verify blobs on any host the artifacts migrate to).
///
/// `ExtendCrc32c` continues a running checksum so multi-section containers
/// can checksum without concatenating; `Crc32c` is the one-shot form.
/// Values match the RFC 3720 / iSCSI reference vectors.
uint32_t ExtendCrc32c(uint32_t crc, const void* data, size_t n);

inline uint32_t Crc32c(const void* data, size_t n) {
  return ExtendCrc32c(0, data, n);
}

/// Masked form for stored checksums, after the RocksDB/LevelDB convention:
/// a CRC of bytes that themselves embed a CRC is pathologically structured,
/// so persisted checksums are rotated and offset. Verifiers unmask before
/// comparing.
inline uint32_t MaskCrc32c(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + 0xa282ead8u;
}

inline uint32_t UnmaskCrc32c(uint32_t masked) {
  const uint32_t rot = masked - 0xa282ead8u;
  return (rot >> 17) | (rot << 15);
}

}  // namespace fairrec

#endif  // FAIRREC_COMMON_CRC32C_H_
