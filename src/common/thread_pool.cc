#include "common/thread_pool.h"

#include <atomic>

namespace fairrec {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    num_threads = hw == 0 ? 1 : hw;
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(size_t count, const std::function<void(size_t)>& fn) {
  ParallelForIndexed(count, [&fn](size_t, size_t i) { fn(i); });
}

void ThreadPool::ParallelForIndexed(
    size_t count, const std::function<void(size_t, size_t)>& fn) {
  if (count == 0) return;
  // Dynamic self-scheduling over a shared counter: balanced even when task
  // costs are skewed (e.g. brute-force cells vs heuristic cells).
  auto next = std::make_shared<std::atomic<size_t>>(0);
  const size_t workers = std::min(count, num_threads());
  for (size_t w = 0; w < workers; ++w) {
    Submit([next, count, w, &fn] {
      for (size_t i = next->fetch_add(1); i < count; i = next->fetch_add(1)) {
        fn(w, i);
      }
    });
  }
  WaitIdle();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock,
                           [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace fairrec
