#ifndef FAIRREC_COMMON_FAILPOINT_H_
#define FAIRREC_COMMON_FAILPOINT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

/// Fault-injection points for the durability layer, compiled away in release
/// builds (NDEBUG): a Release binary contains no registry, no string
/// compares, and no branches at the sites — `failpoint::Triggered` folds to
/// a constant false. Debug and RelWithDebInfo-with-assertions builds (the
/// configurations CI runs the kill-point recovery suite under) keep the real
/// registry.
///
/// Sites are fixed, named places in blob_io / delta_journal /
/// durable_peer_graph where a crash, a torn write, or a bit flip can be
/// injected (the site decides what its fault *means*; the registry only
/// answers "fire here, now?"). Tests arm a site one-shot — optionally after
/// skipping the first k hits, which is how the kill-point suite walks every
/// boundary of a scripted run — and treat the resulting
/// `failpoint::InjectedCrash` status as the process death: the in-memory
/// object is abandoned and recovery runs from disk, exactly like a real
/// kill.
#ifndef NDEBUG
#define FAIRREC_FAILPOINTS_ENABLED 1
#else
#define FAIRREC_FAILPOINTS_ENABLED 0
#endif

namespace fairrec {
namespace failpoint {

/// The Status a site returns when an armed crash fires. Callers that script
/// fault injection recognize it via IsInjectedCrash and discard the
/// in-memory state, as a real crash would.
Status InjectedCrash(std::string_view site);
bool IsInjectedCrash(const Status& status);

#if FAIRREC_FAILPOINTS_ENABLED

/// Arms `site` to fire exactly once, after skipping its next `skip` hits.
/// Re-arming an armed site replaces the previous arming.
void Arm(std::string_view site, int64_t skip = 0);

/// Removes the arming of `site` (hit counting continues).
void Disarm(std::string_view site);

/// Removes every arming and zeroes every hit counter.
void Reset();

/// Hits `site`: increments its counter and reports whether an arming fired
/// (firing disarms). Sites call this; tests never need to.
bool Triggered(std::string_view site);

/// Hits of `site` since the last Reset, armed or not. The kill-point suite
/// dry-runs a script with counting alone to enumerate how many kill
/// opportunities each site offers.
int64_t HitCount(std::string_view site);

/// Every site hit since the last Reset, sorted. With HitCount this is the
/// kill-point enumeration: the suite asserts the set is nonempty and walks
/// (site, k) for k in [0, HitCount(site)).
std::vector<std::string> HitSites();

#else  // !FAIRREC_FAILPOINTS_ENABLED

inline void Arm(std::string_view, int64_t = 0) {}
inline void Disarm(std::string_view) {}
inline void Reset() {}
inline bool Triggered(std::string_view) { return false; }
inline int64_t HitCount(std::string_view) { return 0; }
inline std::vector<std::string> HitSites() { return {}; }

#endif  // FAIRREC_FAILPOINTS_ENABLED

}  // namespace failpoint
}  // namespace fairrec

#endif  // FAIRREC_COMMON_FAILPOINT_H_
