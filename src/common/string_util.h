#ifndef FAIRREC_COMMON_STRING_UTIL_H_
#define FAIRREC_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace fairrec {

/// Splits on a single-character delimiter; adjacent delimiters yield empty
/// fields; the empty input yields a single empty field.
std::vector<std::string> Split(std::string_view input, char delimiter);

/// Joins with a separator.
std::string Join(const std::vector<std::string>& parts, std::string_view separator);

/// Strips ASCII whitespace from both ends.
std::string_view Trim(std::string_view input);

/// ASCII lowercase copy.
std::string ToLower(std::string_view input);

bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

/// Fixed-precision decimal formatting without locale surprises.
std::string FormatDouble(double value, int precision);

/// 12345678 -> "12,345,678" (used by the benchmark tables).
std::string FormatWithThousands(int64_t value);

}  // namespace fairrec

#endif  // FAIRREC_COMMON_STRING_UTIL_H_
