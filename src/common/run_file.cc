#include "common/run_file.h"

#include <cerrno>
#include <cstring>

#include "common/crc32c.h"

namespace fairrec {

namespace {

/// Chunk header: u64 payload length + u32 masked CRC32C of the payload —
/// the BlobWriter::Framed layout, written little-endian (the project's wire
/// convention throughout).
constexpr size_t kChunkHeaderBytes = sizeof(uint64_t) + sizeof(uint32_t);

std::string ErrnoMessage(const std::string& what, const std::string& path) {
  return what + " " + path + ": " + std::strerror(errno);
}

}  // namespace

Result<RunFileWriter> RunFileWriter::Create(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return Status::IOError(ErrnoMessage("cannot create run file", path));
  }
  return RunFileWriter(path, file);
}

Status RunFileWriter::AppendChunk(std::string_view payload) {
  if (file_ == nullptr) {
    return Status::FailedPrecondition("run file already closed: " + path_);
  }
  frame_.clear();
  const auto length = static_cast<uint64_t>(payload.size());
  const uint32_t masked =
      MaskCrc32c(Crc32c(payload.data(), payload.size()));
  frame_.append(reinterpret_cast<const char*>(&length), sizeof(length));
  frame_.append(reinterpret_cast<const char*>(&masked), sizeof(masked));
  if (std::fwrite(frame_.data(), 1, frame_.size(), file_.get()) !=
          frame_.size() ||
      std::fwrite(payload.data(), 1, payload.size(), file_.get()) !=
          payload.size()) {
    return Status::IOError(ErrnoMessage("short write to run file", path_));
  }
  bytes_written_ += frame_.size() + payload.size();
  return Status::OK();
}

Status RunFileWriter::Close() {
  if (file_ == nullptr) return Status::OK();
  const bool flushed = std::fflush(file_.get()) == 0;
  file_.reset();
  if (!flushed) {
    return Status::IOError(ErrnoMessage("cannot flush run file", path_));
  }
  return Status::OK();
}

Result<RunFileReader> RunFileReader::Open(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::IOError(ErrnoMessage("cannot open run file", path));
  }
  return RunFileReader(path, file);
}

Status RunFileReader::NextChunk(std::string* payload, bool* eof) {
  *eof = false;
  char header[kChunkHeaderBytes];
  const size_t got = std::fread(header, 1, sizeof(header), file_.get());
  if (got == 0 && std::feof(file_.get())) {
    *eof = true;
    return Status::OK();
  }
  if (got != sizeof(header)) {
    return Status::DataLoss("torn chunk header in run file " + path_);
  }
  uint64_t length = 0;
  uint32_t masked = 0;
  std::memcpy(&length, header, sizeof(length));
  std::memcpy(&masked, header + sizeof(length), sizeof(masked));
  // A corrupt length must fail the read, not reach a huge allocation: the
  // resize below is bounded by what fread can actually deliver, so a bad
  // length lands in the short-read branch. Still reject the absurd early.
  if (length > (uint64_t{1} << 40)) {
    return Status::DataLoss("implausible chunk length in run file " + path_);
  }
  payload->resize(static_cast<size_t>(length));
  if (std::fread(payload->data(), 1, payload->size(), file_.get()) !=
      payload->size()) {
    return Status::DataLoss("torn chunk body in run file " + path_);
  }
  if (MaskCrc32c(Crc32c(payload->data(), payload->size())) != masked) {
    return Status::DataLoss("chunk checksum mismatch in run file " + path_);
  }
  return Status::OK();
}

}  // namespace fairrec
