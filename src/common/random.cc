#include "common/random.h"

#include <cmath>
#include <numbers>

namespace fairrec {

namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
  // Guard against the all-zero state, which is a fixed point of xoshiro.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 top bits -> uniform double in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  FAIRREC_DCHECK(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(NextUint64());  // full range
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  uint64_t draw = NextUint64();
  while (draw >= limit) draw = NextUint64();
  return lo + static_cast<int64_t>(draw % span);
}

double Rng::UniformReal(double lo, double hi) {
  FAIRREC_DCHECK(lo < hi);
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = NextDouble();
  while (u1 <= 1e-300) u1 = NextDouble();
  const double u2 = NextDouble();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_gaussian_ = radius * std::sin(theta);
  has_cached_gaussian_ = true;
  return radius * std::cos(theta);
}

bool Rng::NextBool(double p_true) { return NextDouble() < p_true; }

std::vector<int32_t> Rng::SampleWithoutReplacement(int32_t n, int32_t k) {
  FAIRREC_DCHECK(k >= 0 && k <= n);
  // Partial Fisher-Yates over an index array; O(n) space, O(n + k) time.
  std::vector<int32_t> pool(static_cast<size_t>(n));
  for (int32_t i = 0; i < n; ++i) pool[static_cast<size_t>(i)] = i;
  std::vector<int32_t> out;
  out.reserve(static_cast<size_t>(k));
  for (int32_t i = 0; i < k; ++i) {
    const auto j =
        static_cast<size_t>(UniformInt(i, static_cast<int64_t>(n) - 1));
    std::swap(pool[static_cast<size_t>(i)], pool[j]);
    out.push_back(pool[static_cast<size_t>(i)]);
  }
  return out;
}

size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  FAIRREC_DCHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    FAIRREC_DCHECK(w >= 0.0);
    total += w;
  }
  FAIRREC_DCHECK(total > 0.0);
  double draw = NextDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    draw -= weights[i];
    if (draw < 0.0) return i;
  }
  return weights.size() - 1;  // numeric edge: fell off the end
}

}  // namespace fairrec
