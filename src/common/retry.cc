#include "common/retry.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

#include "common/logging.h"

namespace fairrec {

namespace {

class RealClock final : public Clock {
 public:
  int64_t NowMillis() override {
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  void SleepMillis(int64_t millis) override {
    if (millis > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(millis));
    }
  }
};

}  // namespace

Clock* Clock::Real() {
  static RealClock* const clock = new RealClock();
  return clock;
}

void FakeClock::SleepMillis(int64_t millis) {
  AdvanceMillis(millis);
  // Let threads blocked on real primitives run while virtual time passes —
  // the seam a fake-clock coordinator test leans on to observe stragglers.
  std::this_thread::yield();
}

int64_t BackoffMillis(const RetryPolicy& policy, int32_t failures) {
  FAIRREC_CHECK(failures >= 1);
  FAIRREC_CHECK(policy.initial_backoff_millis > 0);
  FAIRREC_CHECK(policy.backoff_multiplier >= 1.0);
  FAIRREC_CHECK(policy.max_backoff_millis >= policy.initial_backoff_millis);
  // Multiply up in double with an early cap check: the product reaches the
  // cap long before it could overflow, and the loop keeps the schedule
  // exactly hand-computable (no pow() rounding surprises).
  double backoff = static_cast<double>(policy.initial_backoff_millis);
  const auto cap = static_cast<double>(policy.max_backoff_millis);
  for (int32_t f = 1; f < failures && backoff < cap; ++f) {
    backoff *= policy.backoff_multiplier;
  }
  backoff = std::min(backoff, cap);
  return std::llround(backoff);
}

int64_t BackoffWithJitterMillis(const RetryPolicy& policy, int32_t failures,
                                Rng& rng) {
  FAIRREC_CHECK(policy.jitter_fraction >= 0.0 && policy.jitter_fraction <= 1.0);
  const int64_t base = BackoffMillis(policy, failures);
  // One draw regardless of jitter, so a jitter-free policy replays the same
  // Rng stream as a jittered one.
  const double unit = rng.NextDouble();  // [0, 1)
  if (policy.jitter_fraction == 0.0) return base;
  const double spread = policy.jitter_fraction * (2.0 * unit - 1.0);  // [-j, j)
  const double jittered = static_cast<double>(base) * (1.0 + spread);
  const double ceiling = static_cast<double>(policy.max_backoff_millis) *
                         (1.0 + policy.jitter_fraction);
  return std::llround(std::clamp(jittered, 0.0, ceiling));
}

}  // namespace fairrec
