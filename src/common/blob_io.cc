#include "common/blob_io.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/crc32c.h"
#include "common/failpoint.h"

namespace fairrec {

namespace {

/// Container magic: "FRB1" little-endian.
constexpr uint32_t kBlobMagic = 0x31425246u;
constexpr uint32_t kBlobVersion = 1;

/// magic + version + type + payload_len + payload_crc, all little-endian;
/// the header CRC follows these 24 bytes.
constexpr size_t kHeaderBytes =
    sizeof(uint32_t) * 3 + sizeof(uint64_t) + sizeof(uint32_t);

std::string ErrnoMessage(const std::string& op, const std::string& path) {
  return op + " " + path + ": " + std::strerror(errno);
}

/// write(2) until done; short writes continue, EINTR retries.
Status WriteAll(int fd, const char* data, size_t n, const std::string& path) {
  while (n > 0) {
    const ssize_t written = ::write(fd, data, n);
    if (written < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(ErrnoMessage("write", path));
    }
    data += written;
    n -= static_cast<size_t>(written);
  }
  return Status::OK();
}

Status FsyncPath(const std::string& path, bool directory) {
  const int fd = ::open(path.c_str(), directory ? O_RDONLY | O_DIRECTORY
                                                : O_RDONLY);
  if (fd < 0) return Status::IOError(ErrnoMessage("open for fsync", path));
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return Status::IOError(ErrnoMessage("fsync", path));
  return Status::OK();
}

std::string DirectoryOf(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

/// Flips one bit of `path` in place at a deterministic payload offset —
/// the silent-corruption injection behind kFailpointBlobWriteBitFlip.
Status FlipOneBit(const std::string& path, size_t file_bytes) {
  const int fd = ::open(path.c_str(), O_RDWR);
  if (fd < 0) return Status::IOError(ErrnoMessage("open for bit flip", path));
  // Middle of the payload region (past the header when one exists).
  const size_t offset =
      file_bytes > kHeaderBytes + sizeof(uint32_t)
          ? kHeaderBytes + sizeof(uint32_t) +
                (file_bytes - kHeaderBytes - sizeof(uint32_t)) / 2
          : file_bytes / 2;
  unsigned char byte = 0;
  if (::pread(fd, &byte, 1, static_cast<off_t>(offset)) != 1) {
    ::close(fd);
    return Status::IOError(ErrnoMessage("pread for bit flip", path));
  }
  byte ^= 0x10u;
  if (::pwrite(fd, &byte, 1, static_cast<off_t>(offset)) != 1) {
    ::close(fd);
    return Status::IOError(ErrnoMessage("pwrite for bit flip", path));
  }
  ::close(fd);
  return Status::OK();
}

}  // namespace

// ---------------------------------------------------------------------------
// BlobWriter / BlobReader
// ---------------------------------------------------------------------------

void BlobWriter::Raw(const void* data, size_t bytes) {
  out_->append(static_cast<const char*>(data), bytes);
}

void BlobWriter::Framed(std::string_view payload) {
  U64(static_cast<uint64_t>(payload.size()));
  U32(MaskCrc32c(Crc32c(payload.data(), payload.size())));
  Bytes(payload);
}

bool BlobReader::Raw(void* out, size_t bytes) {
  if (data_.size() - pos_ < bytes) return false;
  std::memcpy(out, data_.data() + pos_, bytes);
  pos_ += bytes;
  return true;
}

Status BlobReader::FramedSection(std::string_view* payload) {
  uint64_t length = 0;
  uint32_t masked_crc = 0;
  if (!U64(&length) || !U32(&masked_crc)) {
    return Status::DataLoss("truncated section frame");
  }
  if (length > remaining()) {
    return Status::DataLoss("section length exceeds the bytes present");
  }
  const std::string_view bytes = data_.substr(pos_, length);
  if (Crc32c(bytes.data(), bytes.size()) != UnmaskCrc32c(masked_crc)) {
    return Status::DataLoss("section checksum mismatch");
  }
  pos_ += length;
  *payload = bytes;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// File container
// ---------------------------------------------------------------------------

Status WriteBlobFileAtomic(const std::string& path, uint32_t type_tag,
                           std::string_view payload) {
  if (failpoint::Triggered(kFailpointBlobWriteBegin)) {
    return failpoint::InjectedCrash(kFailpointBlobWriteBegin);
  }

  std::string file;
  file.reserve(kHeaderBytes + sizeof(uint32_t) + payload.size());
  {
    BlobWriter writer(&file);
    writer.U32(kBlobMagic);
    writer.U32(kBlobVersion);
    writer.U32(type_tag);
    writer.U64(static_cast<uint64_t>(payload.size()));
    writer.U32(MaskCrc32c(Crc32c(payload.data(), payload.size())));
    writer.U32(MaskCrc32c(Crc32c(file.data(), kHeaderBytes)));
    writer.Bytes(payload);
  }

  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Status::IOError(ErrnoMessage("open", tmp));

  // A torn write models the kill mid-write: a prefix of the bytes reaches
  // the disk, the rename never happens, and recovery must shrug the temp
  // file off.
  const bool torn = failpoint::Triggered(kFailpointBlobWriteTorn);
  const size_t to_write = torn ? file.size() / 2 : file.size();
  const Status write_status = WriteAll(fd, file.data(), to_write, tmp);
  if (!write_status.ok()) {
    ::close(fd);
    return write_status;
  }
  if (torn) {
    ::close(fd);
    return failpoint::InjectedCrash(kFailpointBlobWriteTorn);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    return Status::IOError(ErrnoMessage("fsync", tmp));
  }
  if (::close(fd) != 0) return Status::IOError(ErrnoMessage("close", tmp));

  if (failpoint::Triggered(kFailpointBlobWriteBeforeRename)) {
    return failpoint::InjectedCrash(kFailpointBlobWriteBeforeRename);
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::IOError(ErrnoMessage("rename", tmp));
  }
  if (failpoint::Triggered(kFailpointBlobWriteBeforeDirSync)) {
    return failpoint::InjectedCrash(kFailpointBlobWriteBeforeDirSync);
  }
  // The rename itself must be durable: fsync the containing directory.
  FAIRREC_RETURN_NOT_OK(FsyncPath(DirectoryOf(path), /*directory=*/true));

  if (failpoint::Triggered(kFailpointBlobWriteBitFlip)) {
    FAIRREC_RETURN_NOT_OK(FlipOneBit(path, file.size()));
  }
  return Status::OK();
}

Result<std::string> ReadBlobFile(const std::string& path, uint32_t type_tag) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return Status::NotFound("no such blob file: " + path);
    return Status::IOError(ErrnoMessage("open", path));
  }
  std::string file;
  {
    struct stat st{};
    if (::fstat(fd, &st) != 0) {
      ::close(fd);
      return Status::IOError(ErrnoMessage("fstat", path));
    }
    file.resize(static_cast<size_t>(st.st_size));
  }
  size_t read_so_far = 0;
  while (read_so_far < file.size()) {
    const ssize_t got = ::read(fd, file.data() + read_so_far,
                               file.size() - read_so_far);
    if (got < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Status::IOError(ErrnoMessage("read", path));
    }
    if (got == 0) break;  // shrank underneath us; caught by the frame check
    read_so_far += static_cast<size_t>(got);
  }
  ::close(fd);
  file.resize(read_so_far);

  BlobReader reader(file);
  uint32_t magic = 0;
  uint32_t version = 0;
  uint32_t type = 0;
  uint64_t payload_len = 0;
  uint32_t payload_crc = 0;
  uint32_t header_crc = 0;
  if (!reader.U32(&magic) || !reader.U32(&version) || !reader.U32(&type) ||
      !reader.U64(&payload_len) || !reader.U32(&payload_crc) ||
      !reader.U32(&header_crc)) {
    return Status::DataLoss("truncated blob header: " + path);
  }
  if (Crc32c(file.data(), kHeaderBytes) != UnmaskCrc32c(header_crc)) {
    return Status::DataLoss("blob header checksum mismatch: " + path);
  }
  if (magic != kBlobMagic) {
    return Status::DataLoss("bad blob magic: " + path);
  }
  if (version != kBlobVersion) {
    return Status::DataLoss("unsupported blob version: " + path);
  }
  if (type != type_tag) {
    return Status::DataLoss("blob type tag mismatch: " + path);
  }
  if (payload_len != reader.remaining()) {
    return Status::DataLoss("blob payload length mismatch: " + path);
  }
  std::string payload = file.substr(file.size() - reader.remaining());
  if (Crc32c(payload.data(), payload.size()) != UnmaskCrc32c(payload_crc)) {
    return Status::DataLoss("blob payload checksum mismatch: " + path);
  }
  return payload;
}

bool PathExists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

Status RemovePath(const std::string& path) {
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    return Status::IOError(ErrnoMessage("unlink", path));
  }
  return Status::OK();
}

Status EnsureDirectory(const std::string& path) {
  if (::mkdir(path.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::IOError(ErrnoMessage("mkdir", path));
  }
  return Status::OK();
}

}  // namespace fairrec
