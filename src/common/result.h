#ifndef FAIRREC_COMMON_RESULT_H_
#define FAIRREC_COMMON_RESULT_H_

#include <cstdio>
#include <cstdlib>
#include <utility>
#include <variant>

#include "common/status.h"

namespace fairrec {

/// Value-or-error holder, the return type of fallible operations that produce
/// a value. Mirrors arrow::Result / absl::StatusOr.
///
/// A Result is in exactly one of two states: it either holds a value of type T
/// (and status().ok() is true) or a non-OK Status. Constructing a Result from
/// an OK status is a programming error and is converted to an Internal error.
template <typename T>
class Result {
 public:
  /// Constructs from a value (implicit so `return value;` works).
  Result(T value) : rep_(std::in_place_index<1>, std::move(value)) {}

  /// Constructs from a non-OK status (implicit so `return st;` works).
  Result(Status status) : rep_(std::in_place_index<0>, std::move(status)) {
    if (std::get<0>(rep_).ok()) {
      rep_.template emplace<0>(
          Status::Internal("Result constructed from an OK status"));
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(Result&&) noexcept = default;

  bool ok() const { return rep_.index() == 1; }

  /// The error status, or OK if a value is held.
  Status status() const {
    return ok() ? Status::OK() : std::get<0>(rep_);
  }

  /// Precondition: ok(). Enforced: aborts otherwise.
  const T& value() const& {
    DieIfError();
    return std::get<1>(rep_);
  }
  T& value() & {
    DieIfError();
    return std::get<1>(rep_);
  }
  T&& value() && {
    DieIfError();
    return std::move(std::get<1>(rep_));
  }

  /// Moves the value out, aborting with the status message on error. Intended
  /// for examples/benchmarks where errors are unrecoverable.
  T ValueOrDie() && {
    DieIfError();
    return std::move(std::get<1>(rep_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void DieIfError() const {
    if (!ok()) {
      std::fprintf(stderr, "FATAL: Result accessed with error: %s\n",
                   std::get<0>(rep_).ToString().c_str());
      std::abort();
    }
  }

  std::variant<Status, T> rep_;
};

}  // namespace fairrec

/// Evaluates a Result-returning expression; on error propagates the Status,
/// otherwise assigns the unwrapped value to `lhs` (which may be a declaration).
#define FAIRREC_ASSIGN_OR_RETURN(lhs, expr)                         \
  FAIRREC_ASSIGN_OR_RETURN_IMPL_(                                   \
      FAIRREC_RESULT_CONCAT_(_fairrec_result_, __LINE__), lhs, expr)

#define FAIRREC_RESULT_CONCAT_INNER_(a, b) a##b
#define FAIRREC_RESULT_CONCAT_(a, b) FAIRREC_RESULT_CONCAT_INNER_(a, b)

#define FAIRREC_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                   \
  if (!tmp.ok()) return tmp.status();                  \
  lhs = std::move(tmp).value();

#endif  // FAIRREC_COMMON_RESULT_H_
