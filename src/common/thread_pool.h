#ifndef FAIRREC_COMMON_THREAD_POOL_H_
#define FAIRREC_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace fairrec {

/// Fixed-size worker pool used by the MapReduce engine and the similarity
/// matrix precomputation. Tasks are plain std::function<void()>; exceptions
/// must not escape tasks (library code does not throw).
class ThreadPool {
 public:
  /// num_threads == 0 selects std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues a task. Never blocks.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished executing.
  void WaitIdle();

  /// Runs fn(i) for i in [0, count) across the pool and waits for completion.
  /// fn must be safe to invoke concurrently for distinct i.
  void ParallelFor(size_t count, const std::function<void(size_t)>& fn);

  /// Like ParallelFor, but fn also receives a stable worker slot in
  /// [0, min(count, num_threads())). All indices handed to the same slot are
  /// processed sequentially, so fn may keep per-slot scratch (accumulator
  /// tiles, reusable buffers) without locks or false sharing.
  void ParallelForIndexed(size_t count,
                          const std::function<void(size_t, size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;  // queued + executing
  bool shutting_down_ = false;
};

}  // namespace fairrec

#endif  // FAIRREC_COMMON_THREAD_POOL_H_
