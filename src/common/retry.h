#ifndef FAIRREC_COMMON_RETRY_H_
#define FAIRREC_COMMON_RETRY_H_

#include <cstdint>
#include <mutex>

#include "common/random.h"

namespace fairrec {

/// Wall-clock seam for retry/backoff logic. Production code talks to the
/// process clock through this interface so tests (and the distributed-build
/// coordinator's unit suite) can substitute a FakeClock and walk timeout +
/// backoff schedules deterministically, in virtual time, with no real sleeps.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Monotonic milliseconds. Only differences are meaningful; the epoch is
  /// unspecified (the real clock uses steady_clock).
  virtual int64_t NowMillis() = 0;

  /// Blocks the calling thread for `millis` (no-op when <= 0).
  virtual void SleepMillis(int64_t millis) = 0;

  /// The process-wide real monotonic clock (never null, never destroyed).
  static Clock* Real();
};

/// Deterministic clock: SleepMillis advances virtual time instead of
/// blocking, so a retry schedule that would wait minutes of wall time runs
/// in microseconds. Thread-safe — a coordinator's control loop and a test
/// driving AdvanceMillis may race benignly.
class FakeClock final : public Clock {
 public:
  explicit FakeClock(int64_t start_millis = 0) : now_millis_(start_millis) {}

  int64_t NowMillis() override {
    std::lock_guard<std::mutex> lock(mu_);
    return now_millis_;
  }

  /// Advances virtual time by `millis` and yields the thread once, so
  /// worker threads blocked on real primitives still make progress while a
  /// control loop "sleeps".
  void SleepMillis(int64_t millis) override;

  /// Test-side advance (identical to SleepMillis without the yield).
  void AdvanceMillis(int64_t millis) {
    std::lock_guard<std::mutex> lock(mu_);
    if (millis > 0) now_millis_ += millis;
  }

 private:
  std::mutex mu_;
  int64_t now_millis_ = 0;
};

/// Capped exponential backoff: how a failed task is re-tried.
///
/// After the f-th consecutive failure (f >= 1) the caller waits
///
///   min(initial_backoff_millis * backoff_multiplier^(f-1), max_backoff_millis)
///
/// optionally spread by +-jitter_fraction (uniform, off the caller's seeded
/// Rng — deterministic for a fixed seed, decorrelated across tasks that use
/// distinct seeds). max_attempts bounds the total tries of one task: the
/// first attempt plus max_attempts - 1 retries; when it is exhausted the
/// task's last error becomes permanent.
struct RetryPolicy {
  int32_t max_attempts = 4;
  int64_t initial_backoff_millis = 100;
  double backoff_multiplier = 2.0;
  int64_t max_backoff_millis = 10'000;
  /// 0 disables jitter; 0.5 spreads each wait uniformly over
  /// [0.5 * backoff, 1.5 * backoff]. Must be in [0, 1].
  double jitter_fraction = 0.0;
};

/// The deterministic (jitter-free) wait after `failures` consecutive
/// failures. Precondition: failures >= 1 and a sane policy (positive initial
/// backoff, multiplier >= 1, cap >= initial).
int64_t BackoffMillis(const RetryPolicy& policy, int32_t failures);

/// BackoffMillis spread by the policy's jitter_fraction using one draw from
/// `rng`. Consumes exactly one NextDouble() even when jitter is disabled, so
/// schedules stay aligned across policies that differ only in jitter. The
/// result is clamped to [0, max_backoff_millis * (1 + jitter_fraction)].
int64_t BackoffWithJitterMillis(const RetryPolicy& policy, int32_t failures,
                                Rng& rng);

}  // namespace fairrec

#endif  // FAIRREC_COMMON_RETRY_H_
