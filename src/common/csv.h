#ifndef FAIRREC_COMMON_CSV_H_
#define FAIRREC_COMMON_CSV_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace fairrec {

/// One parsed CSV record.
using CsvRow = std::vector<std::string>;

/// Parses RFC-4180-style CSV text: comma-separated, double-quote quoting with
/// "" escapes, LF or CRLF line endings. Empty trailing line is ignored.
/// Returns InvalidArgument on an unterminated quoted field.
Result<std::vector<CsvRow>> ParseCsv(std::string_view text);

/// Reads and parses a CSV file. Returns IOError if the file cannot be read.
Result<std::vector<CsvRow>> ReadCsvFile(const std::string& path);

/// Serializes rows to CSV text, quoting fields that contain commas, quotes,
/// or newlines.
std::string WriteCsvString(const std::vector<CsvRow>& rows);

/// Writes rows to a file. Returns IOError on failure.
Status WriteCsvFile(const std::string& path, const std::vector<CsvRow>& rows);

}  // namespace fairrec

#endif  // FAIRREC_COMMON_CSV_H_
