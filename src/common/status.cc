#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace fairrec {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDataLoss:
      return "DataLoss";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

Status::Status(StatusCode code, std::string message) {
  if (code != StatusCode::kOk) {
    rep_ = std::make_unique<Rep>(Rep{code, std::move(message)});
  }
}

Status::Status(const Status& other) {
  if (other.rep_ != nullptr) rep_ = std::make_unique<Rep>(*other.rep_);
}

Status& Status::operator=(const Status& other) {
  if (this != &other) {
    rep_ = other.rep_ == nullptr ? nullptr : std::make_unique<Rep>(*other.rep_);
  }
  return *this;
}

Status Status::InvalidArgument(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}
Status Status::NotFound(std::string message) {
  return Status(StatusCode::kNotFound, std::move(message));
}
Status Status::AlreadyExists(std::string message) {
  return Status(StatusCode::kAlreadyExists, std::move(message));
}
Status Status::OutOfRange(std::string message) {
  return Status(StatusCode::kOutOfRange, std::move(message));
}
Status Status::FailedPrecondition(std::string message) {
  return Status(StatusCode::kFailedPrecondition, std::move(message));
}
Status Status::IOError(std::string message) {
  return Status(StatusCode::kIOError, std::move(message));
}
Status Status::Internal(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}
Status Status::DataLoss(std::string message) {
  return Status(StatusCode::kDataLoss, std::move(message));
}
Status Status::ResourceExhausted(std::string message) {
  return Status(StatusCode::kResourceExhausted, std::move(message));
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code()));
  out += ": ";
  out += rep_->message;
  return out;
}

void Status::CheckOK() const {
  if (!ok()) {
    std::fprintf(stderr, "FATAL: %s\n", ToString().c_str());
    std::abort();
  }
}

}  // namespace fairrec
