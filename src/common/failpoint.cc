#include "common/failpoint.h"

#include <algorithm>
#include <map>
#include <mutex>

namespace fairrec {
namespace failpoint {

namespace {

constexpr std::string_view kCrashPrefix = "injected crash at ";

}  // namespace

Status InjectedCrash(std::string_view site) {
  return Status::Internal(std::string(kCrashPrefix) + std::string(site));
}

bool IsInjectedCrash(const Status& status) {
  return status.IsInternal() &&
         status.message().substr(0, kCrashPrefix.size()) == kCrashPrefix;
}

#if FAIRREC_FAILPOINTS_ENABLED

namespace {

struct SiteState {
  int64_t hits = 0;
  bool armed = false;
  int64_t skip_remaining = 0;
};

// Transparent comparator: Triggered looks up by string_view without
// materializing a std::string per hit.
std::mutex& RegistryMutex() {
  static std::mutex mutex;
  return mutex;
}

std::map<std::string, SiteState, std::less<>>& Registry() {
  static auto* registry = new std::map<std::string, SiteState, std::less<>>();
  return *registry;
}

}  // namespace

void Arm(std::string_view site, int64_t skip) {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  SiteState& state = Registry()[std::string(site)];
  state.armed = true;
  state.skip_remaining = skip;
}

void Disarm(std::string_view site) {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  const auto it = Registry().find(site);
  if (it != Registry().end()) it->second.armed = false;
}

void Reset() {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  Registry().clear();
}

bool Triggered(std::string_view site) {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  auto it = Registry().find(site);
  if (it == Registry().end()) {
    it = Registry().emplace(std::string(site), SiteState{}).first;
  }
  SiteState& state = it->second;
  ++state.hits;
  if (!state.armed) return false;
  if (state.skip_remaining > 0) {
    --state.skip_remaining;
    return false;
  }
  state.armed = false;  // one-shot
  return true;
}

int64_t HitCount(std::string_view site) {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  const auto it = Registry().find(site);
  return it == Registry().end() ? 0 : it->second.hits;
}

std::vector<std::string> HitSites() {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  std::vector<std::string> sites;
  sites.reserve(Registry().size());
  for (const auto& [name, state] : Registry()) {
    if (state.hits > 0) sites.push_back(name);
  }
  return sites;
}

#endif  // FAIRREC_FAILPOINTS_ENABLED

}  // namespace failpoint
}  // namespace fairrec
