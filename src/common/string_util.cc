#include "common/string_util.h"

#include <cctype>
#include <cstdio>

namespace fairrec {

std::vector<std::string> Split(std::string_view input, char delimiter) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    const size_t pos = input.find(delimiter, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(input.substr(start));
      return out;
    }
    out.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string Join(const std::vector<std::string>& parts, std::string_view separator) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += separator;
    out += parts[i];
  }
  return out;
}

std::string_view Trim(std::string_view input) {
  size_t begin = 0;
  size_t end = input.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(input[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(input[end - 1]))) --end;
  return input.substr(begin, end - begin);
}

std::string ToLower(std::string_view input) {
  std::string out(input);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string FormatWithThousands(int64_t value) {
  const bool negative = value < 0;
  std::string digits = std::to_string(negative ? -value : value);
  std::string out;
  const size_t n = digits.size();
  for (size_t i = 0; i < n; ++i) {
    if (i > 0 && (n - i) % 3 == 0) out += ',';
    out += digits[i];
  }
  return negative ? "-" + out : out;
}

}  // namespace fairrec
