#ifndef FAIRREC_COMMON_STATUS_H_
#define FAIRREC_COMMON_STATUS_H_

#include <memory>
#include <string>
#include <string_view>
#include <utility>

namespace fairrec {

/// Machine-readable error category carried by a Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kIOError,
  kInternal,
  /// Persisted bytes fail an integrity check (CRC mismatch, torn frame,
  /// impossible field value). Distinct from kIOError (the filesystem refused
  /// the operation) and kInvalidArgument (the caller misused the API): data
  /// loss means the artifact itself can no longer be trusted.
  kDataLoss,
  /// A bounded resource is saturated and the operation was declined rather
  /// than queued — the serving layer's overload-shedding verdict (request
  /// queue full). Unlike kInvalidArgument, the identical call is expected to
  /// succeed once load subsides: it is the one retryable code.
  kResourceExhausted,
};

/// Returns a stable human-readable name for a status code (e.g. "InvalidArgument").
std::string_view StatusCodeToString(StatusCode code);

/// Arrow/RocksDB-style status object used by every fallible operation in the
/// library. Library code never throws; all error paths return Status or
/// Result<T> (see result.h).
///
/// The OK status carries no allocation: it is represented by a null rep.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message);

  Status(const Status& other);
  Status& operator=(const Status& other);
  Status(Status&& other) noexcept = default;
  Status& operator=(Status&& other) noexcept = default;

  /// Factory helpers, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string message);
  static Status NotFound(std::string message);
  static Status AlreadyExists(std::string message);
  static Status OutOfRange(std::string message);
  static Status FailedPrecondition(std::string message);
  static Status IOError(std::string message);
  static Status Internal(std::string message);
  static Status DataLoss(std::string message);
  static Status ResourceExhausted(std::string message);

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return rep_ == nullptr ? StatusCode::kOk : rep_->code; }
  /// Empty for OK statuses.
  std::string_view message() const {
    return rep_ == nullptr ? std::string_view() : std::string_view(rep_->message);
  }

  bool IsInvalidArgument() const { return code() == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsFailedPrecondition() const { return code() == StatusCode::kFailedPrecondition; }
  bool IsIOError() const { return code() == StatusCode::kIOError; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsDataLoss() const { return code() == StatusCode::kDataLoss; }
  bool IsResourceExhausted() const {
    return code() == StatusCode::kResourceExhausted;
  }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  /// Aborts the process with the status message unless ok(). Intended for
  /// examples and benchmarks where an error is unrecoverable.
  void CheckOK() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code() == b.code() && a.message() == b.message();
  }

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };
  // Null means OK.
  std::unique_ptr<Rep> rep_;
};

}  // namespace fairrec

/// Propagates a non-OK Status from the evaluated expression to the caller.
#define FAIRREC_RETURN_NOT_OK(expr)                 \
  do {                                              \
    ::fairrec::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                      \
  } while (false)

#endif  // FAIRREC_COMMON_STATUS_H_
