#ifndef FAIRREC_COMMON_RANDOM_H_
#define FAIRREC_COMMON_RANDOM_H_

#include <cstdint>
#include <vector>

#include "common/logging.h"

namespace fairrec {

/// Deterministic, seedable PRNG (xoshiro256**, seeded via SplitMix64).
///
/// Every stochastic component in the library takes an explicit seed and builds
/// one of these, so all experiments are bit-reproducible across runs and
/// platforms. Not cryptographically secure; not thread-safe (use one Rng per
/// thread).
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform on the full 64-bit range.
  uint64_t NextUint64();

  /// Uniform in [0, 1).
  double NextDouble();

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform real in [lo, hi). Precondition: lo < hi.
  double UniformReal(double lo, double hi);

  /// Standard normal via Box-Muller.
  double NextGaussian();

  /// Bernoulli draw.
  bool NextBool(double p_true = 0.5);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Samples k distinct values from [0, n) (order unspecified but
  /// deterministic). Precondition: 0 <= k <= n.
  std::vector<int32_t> SampleWithoutReplacement(int32_t n, int32_t k);

  /// Picks one index in [0, weights.size()) proportionally to weights.
  /// Precondition: weights non-empty, all non-negative, sum > 0.
  size_t WeightedIndex(const std::vector<double>& weights);

 private:
  uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace fairrec

#endif  // FAIRREC_COMMON_RANDOM_H_
