#ifndef FAIRREC_COMMON_LOGGING_H_
#define FAIRREC_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace fairrec {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// Sets the minimum level that reaches stderr (default kInfo). Messages of
/// level kFatal always abort after printing regardless of the threshold.
void SetLogThreshold(LogLevel level);
LogLevel GetLogThreshold();

namespace internal {

/// Stream-style single-message logger; flushes (and for kFatal, aborts) on
/// destruction. Use through the FAIRREC_LOG macro.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace fairrec

#define FAIRREC_LOG(LEVEL)                                                  \
  ::fairrec::internal::LogMessage(::fairrec::LogLevel::k##LEVEL, __FILE__, \
                                  __LINE__)

/// Debug-only invariant check: compiled out in NDEBUG builds.
#ifdef NDEBUG
#define FAIRREC_DCHECK(cond) \
  while (false) FAIRREC_LOG(Fatal)
#else
#define FAIRREC_DCHECK(cond) \
  if (cond) {                \
  } else                     \
    FAIRREC_LOG(Fatal) << "DCHECK failed: " #cond " "
#endif

/// Always-on invariant check, for cheap conditions guarding memory safety.
#define FAIRREC_CHECK(cond) \
  if (cond) {               \
  } else                    \
    FAIRREC_LOG(Fatal) << "CHECK failed: " #cond " "

#endif  // FAIRREC_COMMON_LOGGING_H_
