#include "common/crc32c.h"

#include <array>

namespace fairrec {

namespace {

/// Reflected Castagnoli polynomial.
constexpr uint32_t kPoly = 0x82f63b78u;

/// Eight lookup tables for the slice-by-8 walk: table[0] is the classic
/// byte-at-a-time table, table[k] advances a byte seen k positions earlier.
/// Built at compile time so the .rodata image is deterministic.
constexpr std::array<std::array<uint32_t, 256>, 8> BuildTables() {
  std::array<std::array<uint32_t, 256>, 8> tables{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? kPoly : 0u);
    }
    tables[0][i] = crc;
  }
  for (uint32_t i = 0; i < 256; ++i) {
    for (size_t t = 1; t < 8; ++t) {
      tables[t][i] =
          (tables[t - 1][i] >> 8) ^ tables[0][tables[t - 1][i] & 0xffu];
    }
  }
  return tables;
}

constexpr std::array<std::array<uint32_t, 256>, 8> kTables = BuildTables();

}  // namespace

uint32_t ExtendCrc32c(uint32_t crc, const void* data, size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  crc = ~crc;
  // Head: align to 8 bytes one byte at a time.
  while (n > 0 && (reinterpret_cast<uintptr_t>(p) & 7u) != 0) {
    crc = (crc >> 8) ^ kTables[0][(crc ^ *p++) & 0xffu];
    --n;
  }
  // Body: eight bytes per iteration, one table load per byte, no carry
  // chain between the eight loads.
  while (n >= 8) {
    const uint32_t lo = crc ^ (static_cast<uint32_t>(p[0]) |
                               (static_cast<uint32_t>(p[1]) << 8) |
                               (static_cast<uint32_t>(p[2]) << 16) |
                               (static_cast<uint32_t>(p[3]) << 24));
    crc = kTables[7][lo & 0xffu] ^ kTables[6][(lo >> 8) & 0xffu] ^
          kTables[5][(lo >> 16) & 0xffu] ^ kTables[4][lo >> 24] ^
          kTables[3][p[4]] ^ kTables[2][p[5]] ^ kTables[1][p[6]] ^
          kTables[0][p[7]];
    p += 8;
    n -= 8;
  }
  // Tail.
  while (n > 0) {
    crc = (crc >> 8) ^ kTables[0][(crc ^ *p++) & 0xffu];
    --n;
  }
  return ~crc;
}

}  // namespace fairrec
