#ifndef FAIRREC_COMMON_BLOB_IO_H_
#define FAIRREC_COMMON_BLOB_IO_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"

namespace fairrec {

/// Checksummed binary container I/O — the framing every durable artifact in
/// the tree goes through (MomentStore / PeerIndex / RatingMatrix snapshots,
/// the checkpoint container, the delta journal's records).
///
/// Two layers:
///
///   * BlobWriter / BlobReader: raw little-endian field primitives over a
///     byte string, plus CRC32C-framed sections (u64 length + masked CRC +
///     bytes) so a multi-part payload can localize corruption to one
///     section. Readers never trust a length field: every read is bounded
///     by the bytes actually present, so a corrupt count fails cleanly
///     instead of reaching an allocation or a memcpy overrun.
///
///   * the blob file container: magic + version + caller type tag +
///     payload length + payload CRC32C + header CRC32C, then the payload.
///     WriteBlobFileAtomic writes a temp sibling, fsyncs it, renames it
///     over the target, and fsyncs the directory — so a crash at any point
///     leaves either the old file or the new file, never a torn mix — and
///     ReadBlobFile verifies the full chain before handing bytes back
///     (DataLoss on any mismatch; a half-written temp file is invisible by
///     construction).
///
/// Fault injection (debug builds only — see common/failpoint.h) hooks the
/// file path at the sites named kFailpoint* below.

/// Failpoint sites of the atomic write path. A "crash" site abandons the
/// operation returning failpoint::InjectedCrash, leaving the filesystem
/// exactly as a process kill at that instant would; the bit-flip site
/// corrupts one payload byte of the *final* file and reports success,
/// modelling silent media corruption that only the CRC layer can catch.
inline constexpr std::string_view kFailpointBlobWriteBegin = "blob.write.begin";
inline constexpr std::string_view kFailpointBlobWriteTorn = "blob.write.torn";
inline constexpr std::string_view kFailpointBlobWriteBeforeRename =
    "blob.write.before_rename";
/// Between the rename and the directory fsync: the new name is in the page
/// cache but the directory entry is not yet durable, so a power cut here can
/// silently un-commit an artifact the caller was about to acknowledge. The
/// site makes the rename/dir-fsync gap walkable by the kill-point suite —
/// note that unlike the earlier crash sites, the renamed file *is* present
/// after this crash, so recovery must tolerate "reported failure, artifact
/// valid".
inline constexpr std::string_view kFailpointBlobWriteBeforeDirSync =
    "blob.write.before_dirsync";
inline constexpr std::string_view kFailpointBlobWriteBitFlip =
    "blob.write.bit_flip";

// ---------------------------------------------------------------------------
// Field primitives.
// ---------------------------------------------------------------------------

/// Appends little-endian fields to a growing byte string. All artifact
/// serializers write through this so the wire layout never inherits struct
/// padding or host struct order.
class BlobWriter {
 public:
  explicit BlobWriter(std::string* out) : out_(out) {}

  void U32(uint32_t v) { Raw(&v, sizeof(v)); }
  void U64(uint64_t v) { Raw(&v, sizeof(v)); }
  void I32(int32_t v) { Raw(&v, sizeof(v)); }
  void I64(int64_t v) { Raw(&v, sizeof(v)); }
  void F64(double v) { Raw(&v, sizeof(v)); }
  void Bytes(std::string_view bytes) { Raw(bytes.data(), bytes.size()); }

  /// Appends a CRC32C-framed section: u64 length, u32 masked CRC of the
  /// bytes, the bytes. Readers pair with BlobReader::FramedSection.
  void Framed(std::string_view payload);

 private:
  void Raw(const void* data, size_t bytes);

  std::string* out_;
};

/// Bounded cursor over serialized bytes. Every accessor returns false (and
/// moves nothing) when fewer bytes remain than the field needs, so callers
/// turn truncation into a clean Status instead of UB.
class BlobReader {
 public:
  explicit BlobReader(std::string_view data) : data_(data) {}

  bool U32(uint32_t* v) { return Raw(v, sizeof(*v)); }
  bool U64(uint64_t* v) { return Raw(v, sizeof(*v)); }
  bool I32(int32_t* v) { return Raw(v, sizeof(*v)); }
  bool I64(int64_t* v) { return Raw(v, sizeof(*v)); }
  bool F64(double* v) { return Raw(v, sizeof(*v)); }

  /// Reads a Framed section: bounds-checks the length against the bytes
  /// present, verifies the CRC, and yields a view into the underlying
  /// buffer (valid while the buffer lives). DataLoss on truncation or
  /// checksum mismatch.
  Status FramedSection(std::string_view* payload);

  size_t remaining() const { return data_.size() - pos_; }
  bool exhausted() const { return pos_ == data_.size(); }

 private:
  bool Raw(void* out, size_t bytes);

  std::string_view data_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// File container.
// ---------------------------------------------------------------------------

/// Writes `payload` to `path` under the checksummed container header,
/// atomically (temp sibling + fsync + rename + directory fsync). `type_tag`
/// is the caller's artifact discriminator, verified on read so a journal
/// can never be loaded as a checkpoint.
Status WriteBlobFileAtomic(const std::string& path, uint32_t type_tag,
                           std::string_view payload);

/// Reads and fully verifies a container written by WriteBlobFileAtomic:
/// NotFound when the file does not exist, DataLoss on any framing/CRC/type
/// mismatch, the payload bytes otherwise.
Result<std::string> ReadBlobFile(const std::string& path, uint32_t type_tag);

/// True when `path` exists (any file type).
bool PathExists(const std::string& path);

/// Removes `path` if it exists; OK when already absent.
Status RemovePath(const std::string& path);

/// Creates directory `path` (one level); OK when it already exists.
Status EnsureDirectory(const std::string& path);

}  // namespace fairrec

#endif  // FAIRREC_COMMON_BLOB_IO_H_
