#include "common/csv.h"

#include <fstream>
#include <sstream>

namespace fairrec {

Result<std::vector<CsvRow>> ParseCsv(std::string_view text) {
  std::vector<CsvRow> rows;
  CsvRow row;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;  // tracks whether the current row has content

  size_t i = 0;
  const size_t n = text.size();
  auto end_field = [&] {
    row.push_back(std::move(field));
    field.clear();
  };
  auto end_row = [&] {
    end_field();
    rows.push_back(std::move(row));
    row.clear();
    field_started = false;
  };

  while (i < n) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < n && text[i + 1] == '"') {
          field += '"';
          i += 2;
        } else {
          in_quotes = false;
          ++i;
        }
      } else {
        field += c;
        ++i;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_quotes = true;
        field_started = true;
        ++i;
        break;
      case ',':
        end_field();
        field_started = true;
        ++i;
        break;
      case '\r':
        // Swallow; the following '\n' (if any) ends the row.
        ++i;
        break;
      case '\n':
        end_row();
        ++i;
        break;
      default:
        field += c;
        field_started = true;
        ++i;
        break;
    }
  }
  if (in_quotes) {
    return Status::InvalidArgument("unterminated quoted CSV field");
  }
  if (field_started || !field.empty() || !row.empty()) end_row();
  return rows;
}

Result<std::vector<CsvRow>> ReadCsvFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open file for reading: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseCsv(buffer.str());
}

namespace {
bool NeedsQuoting(std::string_view field) {
  return field.find_first_of(",\"\r\n") != std::string_view::npos;
}

void AppendField(std::string& out, std::string_view field) {
  if (!NeedsQuoting(field)) {
    out += field;
    return;
  }
  out += '"';
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
}
}  // namespace

std::string WriteCsvString(const std::vector<CsvRow>& rows) {
  std::string out;
  for (const CsvRow& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += ',';
      AppendField(out, row[i]);
    }
    out += '\n';
  }
  return out;
}

Status WriteCsvFile(const std::string& path, const std::vector<CsvRow>& rows) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open file for writing: " + path);
  out << WriteCsvString(rows);
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

}  // namespace fairrec
