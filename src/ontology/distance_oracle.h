#ifndef FAIRREC_ONTOLOGY_DISTANCE_ORACLE_H_
#define FAIRREC_ONTOLOGY_DISTANCE_ORACLE_H_

#include <cstdint>
#include <mutex>
#include <unordered_map>

#include "ontology/ontology.h"

namespace fairrec {

/// Memoizing shortest-path oracle over an ontology (§V-C-1): the semantic
/// similarity measure issues O(|problems_u| * |problems_v|) distance queries
/// per user pair, and clinical profiles reuse a small set of concepts, so
/// caching pays off.
///
/// Distances come from the tree LCA closed form (equal to undirected BFS on a
/// tree); a standalone BFS is exposed for verification.
///
/// Thread-safe: the cache is guarded by a mutex.
class ConceptDistanceOracle {
 public:
  /// The ontology must outlive the oracle.
  explicit ConceptDistanceOracle(const Ontology* ontology);

  /// Shortest path length in edges between two concepts.
  int32_t Distance(ConceptId a, ConceptId b);

  /// Path-based similarity used by Eq. 4's x_i terms: 1 / (1 + hops), so an
  /// identical concept scores 1 and similarity decays with distance.
  double Similarity(ConceptId a, ConceptId b);

  /// Reference BFS over undirected parent/child edges. O(V + E); used by
  /// tests to cross-check the LCA closed form.
  int32_t DistanceByBfs(ConceptId a, ConceptId b) const;

  size_t cache_size() const;

 private:
  const Ontology* ontology_;
  mutable std::mutex mu_;
  std::unordered_map<uint64_t, int32_t> cache_;
};

}  // namespace fairrec

#endif  // FAIRREC_ONTOLOGY_DISTANCE_ORACLE_H_
