#include "ontology/ontology.h"

#include <algorithm>

#include "common/logging.h"

namespace fairrec {

ConceptId Ontology::ParentOf(ConceptId c) const {
  FAIRREC_DCHECK(IsValid(c));
  return parents_[static_cast<size_t>(c)];
}

std::span<const ConceptId> Ontology::ChildrenOf(ConceptId c) const {
  FAIRREC_DCHECK(IsValid(c));
  return children_[static_cast<size_t>(c)];
}

int32_t Ontology::DepthOf(ConceptId c) const {
  FAIRREC_DCHECK(IsValid(c));
  return depths_[static_cast<size_t>(c)];
}

const std::string& Ontology::NameOf(ConceptId c) const {
  FAIRREC_DCHECK(IsValid(c));
  return names_[static_cast<size_t>(c)];
}

ConceptId Ontology::FindByName(std::string_view name) const {
  const auto it = by_name_.find(std::string(name));
  return it == by_name_.end() ? kInvalidConceptId : it->second;
}

bool Ontology::IsAncestorOf(ConceptId ancestor, ConceptId c) const {
  FAIRREC_DCHECK(IsValid(ancestor) && IsValid(c));
  while (c != kInvalidConceptId) {
    if (c == ancestor) return true;
    c = parents_[static_cast<size_t>(c)];
  }
  return false;
}

ConceptId Ontology::LowestCommonAncestor(ConceptId a, ConceptId b) const {
  FAIRREC_DCHECK(IsValid(a) && IsValid(b));
  // Climb the deeper node first, then walk both up in lockstep.
  while (DepthOf(a) > DepthOf(b)) a = ParentOf(a);
  while (DepthOf(b) > DepthOf(a)) b = ParentOf(b);
  while (a != b) {
    a = ParentOf(a);
    b = ParentOf(b);
  }
  return a;
}

int32_t Ontology::PathLength(ConceptId a, ConceptId b) const {
  const ConceptId lca = LowestCommonAncestor(a, b);
  return DepthOf(a) + DepthOf(b) - 2 * DepthOf(lca);
}

Result<ConceptId> OntologyBuilder::AddRoot(std::string name) {
  if (!names_.empty()) {
    return Status::FailedPrecondition("root already added");
  }
  parents_.push_back(kInvalidConceptId);
  by_name_.emplace(name, 0);
  names_.push_back(std::move(name));
  return ConceptId{0};
}

Result<ConceptId> OntologyBuilder::AddChild(ConceptId parent, std::string name) {
  if (names_.empty()) {
    return Status::FailedPrecondition("add the root before adding children");
  }
  if (parent < 0 || parent >= static_cast<ConceptId>(names_.size())) {
    return Status::InvalidArgument("unknown parent concept id: " +
                                   std::to_string(parent));
  }
  if (by_name_.contains(name)) {
    return Status::AlreadyExists("duplicate concept name: " + name);
  }
  const auto id = static_cast<ConceptId>(names_.size());
  parents_.push_back(parent);
  by_name_.emplace(name, id);
  names_.push_back(std::move(name));
  return id;
}

Result<Ontology> OntologyBuilder::Build() {
  if (names_.empty()) {
    return Status::FailedPrecondition("ontology must contain a root concept");
  }
  Ontology out;
  out.parents_ = std::move(parents_);
  out.names_ = std::move(names_);
  out.by_name_ = std::move(by_name_);
  const auto n = out.parents_.size();
  out.children_.assign(n, {});
  out.depths_.assign(n, 0);
  // Parents always precede children (AddChild requires an existing parent),
  // so one forward pass fixes depths and children lists.
  for (size_t c = 1; c < n; ++c) {
    const auto parent = static_cast<size_t>(out.parents_[c]);
    out.children_[parent].push_back(static_cast<ConceptId>(c));
    out.depths_[c] = out.depths_[parent] + 1;
  }
  parents_.clear();
  names_.clear();
  by_name_.clear();
  return out;
}

}  // namespace fairrec
